// Command vgen-lint runs synthesizability and style checks on Verilog
// files (combinational loops, inferred latches, incomplete sensitivity
// lists, multiple drivers, blocking/nonblocking style).
//
// Usage:
//
//	vgen-lint [-top name] file.v [more.v ...]
//
// Exit status: 0 clean, 1 findings with error severity, 2 usage/compile
// problems. Warnings alone keep status 0 unless -strict is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

func main() {
	top := flag.String("top", "", "top module (default: lint each module standalone)")
	strict := flag.Bool("strict", false, "treat warnings as errors")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vgen-lint [-top module] file.v [more.v ...]")
		os.Exit(2)
	}
	var parts []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vgen-lint: %v\n", err)
			os.Exit(2)
		}
		parts = append(parts, string(data))
	}
	f, err := vlog.Parse(strings.Join(parts, "\n"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgen-lint: %v\n", err)
		os.Exit(2)
	}

	tops := []string{}
	if *top != "" {
		tops = append(tops, *top)
	} else {
		for _, m := range f.Modules {
			tops = append(tops, m.Name)
		}
	}
	errs, warns := 0, 0
	for _, name := range tops {
		d, err := elab.Elaborate(f, name, elab.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vgen-lint: %v\n", err)
			os.Exit(2)
		}
		for _, fd := range lint.Check(d) {
			fmt.Println(fd)
			if fd.Severity == lint.Error {
				errs++
			} else {
				warns++
			}
		}
	}
	fmt.Printf("-- %d error(s), %d warning(s)\n", errs, warns)
	if errs > 0 || (*strict && warns > 0) {
		os.Exit(1)
	}
}
