// Command vgen-coord runs a supervised distributed sweep: it plans the
// shards, drives them through internal/coord's retry state machine —
// per-attempt timeouts, exponential backoff, worker quarantine,
// work-stealing of stragglers — and renders the merged tables, which are
// byte-identical to a monolithic vgen-eval run of the same sweep.
//
// Usage:
//
//	vgen-coord -dir STATE [-backend NAME] [-seed N] [-n N] [-quick]
//	           [-experiment all|table3|table4|fig6|fig7|headline|passk|problems]
//	           [-shards N] [-parallel N] [-proc]
//	           [-plan-cache BYTES] [-unshared-plans]
//	           [-timeout D] [-max-attempts N] [-backoff D] [-backoff-cap D]
//	           [-steal-after D] [-unhealthy-after N]
//	           [-endpoint URL] [-auth-env VAR] [-batch N] [-batch-linger D]
//	           [-remote-timeout D] [-remote-budget D] [-remote-attempts N]
//	           [-remote-backoff D] [-remote-backoff-cap D] [-remote-inflight N]
//	           [-breaker-threshold N] [-breaker-cooldown D]
//	           [-fault kind:shard:attempt,...] [-allow-partial] [-quiet]
//	           [-store DIR]
//
// -dir is the durable state directory: shard plans, validated shard
// results, and in-progress attempt files live there. Rerunning on the
// same directory resumes — shards whose result files decode-validate are
// adopted without execution, so a killed coordinator costs only the work
// in flight.
//
// -store points at a persistent result store (DESIGN.md Section 14):
// cells already resident under this sweep's identity are adopted before
// shards are planned — a fully warm sweep completes without launching a
// single worker — and validated shard results merge back into the store
// afterward. Only the coordinator touches the store directory; workers
// never do, preserving the one-writer-per-directory contract.
//
// By default attempts run in-process. -proc launches each attempt as a
// worker subprocess (this same binary in a hidden worker mode), so a
// worker crash, OOM kill, or hang is isolated from the coordinator; the
// supervision behavior is identical either way.
//
// Workers share compiled simulation artifacts within their own process
// (DESIGN.md Section 15). -plan-cache bounds those caches in accounted
// bytes (0 = 4 MiB each, negative = unbounded) and -unshared-plans
// compiles every sample fresh, the differential baseline; both thread
// through to -proc worker subprocesses. Sharing never changes results.
//
// -fault injects deterministic failures (crash, hang, truncate, corrupt;
// "*" for every attempt of a shard) at the supervision boundary — the
// fault-injection harness, exposed for demos and CI gates. Injected or
// real, a failure is retried with backoff until -max-attempts; a shard
// that exhausts its budget degrades the run to an explicit partial
// result, which exits non-zero unless -allow-partial.
//
// -endpoint points every worker at a vgen-serve instance (implies
// -backend remote; DESIGN.md Section 13). The remote knobs thread
// through to -proc worker subprocesses on their command line — except
// the auth token, which travels only as the inherited environment
// variable named by -auth-env. The two retry layers compose: transport
// retries (-remote-attempts, with backoff and circuit breaking) absorb
// transient network faults inside a shard attempt; anything that
// outlives them surfaces as missing cells, fails the shard's validation,
// and spends one shard-level retry (-max-attempts) — the shard budget is
// never consumed by a fault the transport already healed.
//
// The per-shard event stream (plan/resume/start/steal/retry/quarantine/
// done) goes to stderr as it happens; tables go to stdout at the end.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/harness"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vgen-coord: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	// Sweep/backend flags, mirroring vgen-eval so the supervised and
	// monolithic runs of one sweep are configured identically.
	seed := flag.Int64("seed", 1, "determinism seed for corpus, models and sampling")
	n := flag.Int("n", 10, "completions per prompt")
	quick := flag.Bool("quick", false, "sweep only t=0.1 (fast; matches best-t tables)")
	experiment := flag.String("experiment", "all", "which cell-based artifact(s) to sweep and render")
	corpusFiles := flag.Int("corpus-files", 0, "synthetic corpus size (0 = default)")
	workers := flag.Int("workers", 0, "per-attempt evaluation pool width (0 = GOMAXPROCS)")
	planCache := flag.Int64("plan-cache", 0, "shared compiled plan/design cache budget in accounted bytes, each (0 = 4 MiB, negative = unbounded)")
	unsharedPlans := flag.Bool("unshared-plans", false, "compile every sample fresh instead of sharing plans and designs across evaluations (identical output, slower)")
	backend := flag.String("backend", "family", "generation backend by name")

	// Remote backend flags, mirroring vgen-eval. Transport retries compose
	// *under* shard retries: a remote worker first retries each request up
	// to -remote-attempts; only when a cell still cannot be served does the
	// shard result come up short, fail validation, and consume one of the
	// shard's -max-attempts. The shard-level budget is unchanged by any
	// remote knob.
	endpoint := flag.String("endpoint", "", "remote backend: completion service URL (implies -backend remote)")
	authEnv := flag.String("auth-env", "", "remote backend: environment variable holding the bearer token")
	remoteTimeout := flag.Duration("remote-timeout", 0, "remote backend: per-attempt HTTP deadline (0 = 30s)")
	remoteBudget := flag.Duration("remote-budget", 0, "remote backend: per-worker request deadline budget (0 = none)")
	remoteAttempts := flag.Int("remote-attempts", 0, "remote backend: per-request attempt budget (0 = 4)")
	remoteBackoff := flag.Duration("remote-backoff", 0, "remote backend: base retry backoff (0 = 50ms)")
	remoteBackoffCap := flag.Duration("remote-backoff-cap", 0, "remote backend: retry backoff cap (0 = 2s)")
	remoteInflight := flag.Int("remote-inflight", 0, "remote backend: max concurrent HTTP requests per worker (0 = 16)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "remote backend: consecutive failures that trip the circuit breaker (0 = 5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "remote backend: open-breaker cooldown before a half-open probe (0 = 1s)")
	batchSize := flag.Int("batch", 0, "batch-capable backends: work items coalesced per CompleteBatch call (0 = 16)")
	batchLinger := flag.Duration("batch-linger", 0, "batch-capable backends: max wait before flushing a partial batch (0 = flush when the feed drains)")

	// Supervision flags.
	shards := flag.Int("shards", 4, "partition count of the sweep")
	parallel := flag.Int("parallel", 2, "concurrent worker slots")
	dir := flag.String("dir", "", "durable state directory (required); rerun on the same directory resumes")
	timeout := flag.Duration("timeout", 0, "per-attempt wall-clock budget (0 = none)")
	maxAttempts := flag.Int("max-attempts", 3, "per-shard attempt budget, speculative duplicates included")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base retry delay, doubling per attempt")
	backoffCap := flag.Duration("backoff-cap", 5*time.Second, "retry delay ceiling")
	stealAfter := flag.Duration("steal-after", 0, "age after which an idle slot speculatively duplicates a straggler (0 = off)")
	unhealthyAfter := flag.Int("unhealthy-after", 3, "consecutive failures that quarantine a worker slot")
	proc := flag.Bool("proc", false, "run each attempt as a worker subprocess instead of in-process")
	storeDir := flag.String("store", "", "persistent result store directory: resident cells are adopted before shards are planned, and validated results merge back (coordinator-only; workers never touch the store)")
	faultSpec := flag.String("fault", "", "inject failures: kind:shard:attempt[,...] with kind crash|hang|truncate|corrupt and '*' for every attempt")
	allowPartial := flag.Bool("allow-partial", false, "exit 0 on a partial result (missing shards/cells are reported either way)")
	quiet := flag.Bool("quiet", false, "suppress the per-shard event stream")

	// Hidden worker mode: what -proc execs. Deliberately undocumented in
	// the usage string — the coordinator builds these command lines.
	workerPlan := flag.String("worker-plan", "", "worker mode: execute this serialized shard plan")
	workerOut := flag.String("worker-out", "", "worker mode: write the shard result file here")
	flag.Parse()

	sweep := eval.SweepOptions{N: *n}
	if *quick {
		sweep.Temperatures = []float64{0.1}
		if *n > 6 {
			sweep.N = 6
		}
	}

	if *endpoint != "" {
		switch *backend {
		case "family": // default value: -endpoint alone implies the remote backend
			*backend = "remote"
		case "remote":
		default:
			fail("-endpoint conflicts with -backend %s (the endpoint would be ignored)", *backend)
		}
	}
	if *backend == "remote" && *endpoint == "" {
		fail("-backend remote needs -endpoint (the vgen-serve URL)")
	}
	var authToken string
	if *authEnv != "" {
		authToken = os.Getenv(*authEnv)
		if authToken == "" {
			fail("-auth-env: environment variable %s is empty or unset", *authEnv)
		}
	}

	coreCfg := core.Config{
		Seed: *seed, CorpusFiles: *corpusFiles, Sweep: sweep,
		Workers: *workers, Backend: *backend,
		PlanCacheBytes: *planCache, UnsharedPlans: *unsharedPlans,
		Remote: gen.RemoteOptions{
			Endpoint: *endpoint, AuthToken: authToken,
			Timeout: *remoteTimeout, Budget: *remoteBudget,
			MaxAttempts: *remoteAttempts, BackoffBase: *remoteBackoff, BackoffCap: *remoteBackoffCap,
			MaxInFlight:      *remoteInflight,
			BreakerThreshold: *breakerThreshold, BreakerCooldown: *breakerCooldown,
		},
		BatchSize: *batchSize, BatchLinger: *batchLinger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerPlan != "" || *workerOut != "" {
		if *workerPlan == "" || *workerOut == "" {
			fail("worker mode needs both -worker-plan and -worker-out")
		}
		runWorker(ctx, *workerPlan, *workerOut, coreCfg)
		return
	}

	if *dir == "" {
		fail("-dir is required: the durable state directory is what makes a coordinator resumable")
	}
	rejectNonCell(*experiment)
	faults, err := coord.ParseFaultPlan(*faultSpec)
	if err != nil {
		fail("%v", err)
	}

	// The store attaches to the coordinator only: -proc workers never get
	// -store, preserving the one-writer-per-directory discipline. Their
	// validated results reach the store through the coordinator's merge.
	coreCfg.StoreDir = *storeDir
	fw, err := core.New(coreCfg)
	if err != nil {
		fail("%v", err)
	}

	var launcher coord.Launcher = &coord.FrameworkLauncher{FW: fw}
	if *proc {
		exe, err := os.Executable()
		if err != nil {
			fail("-proc: %v", err)
		}
		base := []string{
			exe,
			"-seed", strconv.FormatInt(*seed, 10),
			"-corpus-files", strconv.Itoa(*corpusFiles),
			"-workers", strconv.Itoa(*workers),
			"-backend", *backend,
			"-plan-cache", strconv.FormatInt(*planCache, 10),
		}
		if *unsharedPlans {
			base = append(base, "-unshared-plans")
		}
		if *backend == "remote" {
			// Thread the transport config through to worker subprocesses.
			// The auth token travels by env var name — subprocesses inherit
			// the environment, so the secret itself stays out of argv.
			base = append(base,
				"-endpoint", *endpoint,
				"-remote-timeout", remoteTimeout.String(),
				"-remote-budget", remoteBudget.String(),
				"-remote-attempts", strconv.Itoa(*remoteAttempts),
				"-remote-backoff", remoteBackoff.String(),
				"-remote-backoff-cap", remoteBackoffCap.String(),
				"-remote-inflight", strconv.Itoa(*remoteInflight),
				"-breaker-threshold", strconv.Itoa(*breakerThreshold),
				"-breaker-cooldown", breakerCooldown.String(),
				"-batch", strconv.Itoa(*batchSize),
				"-batch-linger", batchLinger.String(),
			)
			if *authEnv != "" {
				base = append(base, "-auth-env", *authEnv)
			}
		}
		launcher = &coord.ProcLauncher{Argv: func(a coord.Attempt) []string {
			return append(append([]string(nil), base...),
				"-worker-plan", a.PlanPath, "-worker-out", a.OutPath)
		}}
	}
	if !faults.Empty() {
		launcher = &coord.FaultyLauncher{Inner: launcher, Plan: faults}
	}

	cfg := coord.Config{
		Experiments: []string{*experiment},
		Shards:      *shards,
		Workers:     *parallel,
		Dir:         *dir,
		Timeout:     *timeout,
		MaxAttempts: *maxAttempts,
		BackoffBase: *backoff,
		BackoffCap:  *backoffCap,
		StealAfter:  *stealAfter,

		UnhealthyAfter: *unhealthyAfter,
		Seed:           *seed,
	}
	if !*quiet {
		cfg.Events = streamEvent
	}

	res, err := coord.Run(ctx, fw, cfg, launcher)
	if err != nil {
		fw.Close()
		fail("%v", err)
	}
	fmt.Fprint(os.Stderr, res.Report())
	renderExperiments(harness.FromResults(res.Set, sweep), *experiment)
	if err := fw.Close(); err != nil {
		fail("%v", err)
	}
	if !res.Complete() && !*allowPartial {
		os.Exit(1)
	}
}

// runWorker is the subprocess side of -proc: execute one serialized
// shard plan under signal cancellation, exactly as vgen-eval -from-plan
// would. Its output counts only after the coordinator's own validation.
func runWorker(ctx context.Context, planPath, outPath string, cfg core.Config) {
	fw, err := core.New(cfg)
	if err != nil {
		fail("worker: %v", err)
	}
	if err := fw.RunPlanFileCtx(ctx, planPath, outPath); err != nil {
		fail("worker: %v", err)
	}
}

// streamEvent renders one supervision event for the live stderr stream.
func streamEvent(e coord.Event) {
	switch e.Kind {
	case coord.EventPlanned:
		fmt.Fprintf(os.Stderr, "coord: shard %d planned\n", e.Shard)
	case coord.EventResume:
		fmt.Fprintf(os.Stderr, "coord: shard %d resumed from durable result\n", e.Shard)
	case coord.EventStart:
		fmt.Fprintf(os.Stderr, "coord: shard %d attempt %d -> slot %d\n", e.Shard, e.Attempt, e.Slot)
	case coord.EventSteal:
		fmt.Fprintf(os.Stderr, "coord: shard %d attempt %d -> slot %d (stolen straggler)\n", e.Shard, e.Attempt, e.Slot)
	case coord.EventDone:
		fmt.Fprintf(os.Stderr, "coord: shard %d done (attempt %d, slot %d)\n", e.Shard, e.Attempt, e.Slot)
	case coord.EventRetry:
		fmt.Fprintf(os.Stderr, "coord: shard %d attempt %d failed: %s; retry in %s\n", e.Shard, e.Attempt, e.Err, e.Delay.Round(time.Millisecond))
	case coord.EventGiveUp:
		fmt.Fprintf(os.Stderr, "coord: shard %d FAILED after %d attempts: %s\n", e.Shard, e.Attempt, e.Err)
	case coord.EventQuarantine:
		fmt.Fprintf(os.Stderr, "coord: slot %d quarantined: %s\n", e.Slot, e.Err)
	default:
		fmt.Fprintf(os.Stderr, "coord: %s %+v\n", e.Kind, e)
	}
}

// rejectNonCell exits 2 unless the experiment is cell-based ("all"
// expands to every cell-based artifact) — only those shard.
func rejectNonCell(experiment string) {
	if experiment == "all" {
		return
	}
	for _, e := range harness.CellExperiments() {
		if e == experiment {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "vgen-coord sweeps cell-based artifacts %v, not %q\n",
		harness.CellExperiments(), experiment)
	os.Exit(2)
}

// renderExperiments prints the selected cell-based artifacts in the
// registry's fixed order, matching vgen-eval -merge output byte for byte.
func renderExperiments(h *harness.Harness, experiment string) {
	for _, r := range harness.Renderers() {
		if !r.Cell {
			continue
		}
		if experiment != "all" && experiment != r.Name {
			continue
		}
		fmt.Println(r.Render(h))
	}
}
