// Command vgen-eval runs the paper's evaluation sweeps and regenerates its
// tables and figures.
//
// Usage:
//
//	vgen-eval [-seed N] [-n N] [-quick] [-workers N] [-map-sampler]
//	          [-backend NAME] [-record FILE] [-replay FILE]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	          [-experiment all|table1|table2|table3|table4|fig6|fig7|headline|ablation|corpus|gallery|list]
//
// -quick restricts the sweep to t=0.1 and small n, which preserves the
// best-temperature table values (best is t=0.1 by construction and in the
// paper) while running in seconds.
//
// -backend selects the generation backend by registered name (family,
// mutant, replay — `-backend list` prints them). -record captures every
// produced sample to a JSONL file; -replay serves a recording back
// through the replay backend, reproducing the recorded sweep's statistics
// exactly (giving -replay alone implies -backend replay).
//
// -cpuprofile/-memprofile capture pprof profiles from the real binary
// under real sweep traffic, so hot spots can be read off production-shaped
// runs rather than microbenches.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/harness"
)

func main() {
	seed := flag.Int64("seed", 1, "determinism seed for corpus, models and sampling")
	n := flag.Int("n", 10, "completions per prompt")
	quick := flag.Bool("quick", false, "sweep only t=0.1 (fast; matches best-t tables)")
	experiment := flag.String("experiment", "all", "which artifact to regenerate")
	corpusFiles := flag.Int("corpus-files", 0, "synthetic corpus size (0 = default)")
	workers := flag.Int("workers", 0, "evaluation worker pool width (0 = GOMAXPROCS, 1 = serial); results are identical at any width")
	mapSampler := flag.Bool("map-sampler", false, "sample from the map-backed n-gram baseline instead of the frozen tables (identical output, slower)")
	backend := flag.String("backend", "family", "generation backend by name ('list' prints the registry)")
	record := flag.String("record", "", "capture every produced sample to this JSONL file")
	replay := flag.String("replay", "", "JSONL recording served by the replay backend (implies -backend replay)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	sweep := eval.SweepOptions{N: *n}
	if *quick {
		sweep.Temperatures = []float64{0.1}
		if *n > 6 {
			sweep.N = 6
		}
	}

	if *backend == "list" {
		for _, name := range core.Backends() {
			fmt.Println(name)
		}
		return
	}
	if *replay != "" {
		switch *backend {
		case "family": // default value: -replay alone implies the replay backend
			*backend = "replay"
		case "replay":
		default:
			fmt.Fprintf(os.Stderr, "-replay conflicts with -backend %s (the recording would be ignored)\n", *backend)
			os.Exit(2)
		}
	}

	if *experiment == "list" {
		for _, it := range harness.ExperimentIndex() {
			fmt.Println(it)
		}
		return
	}

	switch *experiment {
	case "all", "table1", "table2", "table3", "table4", "fig6", "fig7",
		"headline", "ablation", "corpus", "gallery", "passk", "problems", "lint":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -experiment list)\n", *experiment)
		os.Exit(2)
	}

	stopCPU := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	fw, err := core.New(core.Config{
		Seed: *seed, CorpusFiles: *corpusFiles, Sweep: sweep,
		Workers: *workers, MapSampler: *mapSampler,
		Backend: *backend, Record: *record, Replay: *replay,
	})
	if err != nil {
		stopCPU()
		fmt.Fprintf(os.Stderr, "vgen-eval: %v\n", err)
		os.Exit(1)
	}
	h := fw.Harness

	run := func(name string, f func() string) {
		if *experiment != "all" && *experiment != name {
			return
		}
		fmt.Println(f())
	}
	run("table1", h.TableI)
	run("table2", h.TableII)
	run("table3", h.TableIII)
	run("table4", h.TableIV)
	run("fig6", h.Figure6)
	run("fig7", h.Figure7)
	run("headline", h.HeadlineReport)
	run("ablation", h.Ablation)
	run("corpus", h.CorpusStats)
	run("gallery", h.FailureGallery)
	run("passk", h.PassAtKTable)
	run("problems", h.ProblemBreakdown)
	run("lint", h.LintReport)

	// Finish the CPU profile before anything that can exit, so a
	// memprofile failure never leaves a truncated cpuprofile behind.
	stopCPU()

	if err := fw.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "vgen-eval: record: %v\n", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}
