// Command vgen-eval runs the paper's evaluation sweeps and regenerates its
// tables and figures — in one process, or sharded across many.
//
// Usage:
//
//	vgen-eval [-seed N] [-n N] [-quick] [-workers N] [-map-sampler]
//	          [-backend NAME] [-record FILE] [-replay FILE]
//	          [-endpoint URL] [-auth-env VAR] [-batch N] [-batch-linger D]
//	          [-remote-timeout D] [-remote-budget D] [-remote-attempts N]
//	          [-remote-backoff D] [-remote-backoff-cap D] [-remote-inflight N]
//	          [-breaker-threshold N] [-breaker-cooldown D]
//	          [-shards N -shard I -emit out.jsonl]
//	          [-emit-plan plan.jsonl] [-from-plan plan.jsonl -emit out.jsonl]
//	          [-merge a.jsonl,b.jsonl,... [-allow-partial]]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	          [-experiment all|table1|table2|table3|table4|fig6|fig7|headline|ablation|corpus|gallery|passk|problems|lint|list]
//
// -quick restricts the sweep to t=0.1 and small n, which preserves the
// best-temperature table values (best is t=0.1 by construction and in the
// paper) while running in seconds.
//
// -backend selects the generation backend by registered name (family,
// mutant, remote, replay — `-backend list` prints names with
// descriptions). -record captures every produced sample to a JSONL file;
// -replay serves a recording back through the replay backend,
// reproducing the recorded sweep's statistics exactly (giving -replay
// alone implies -backend replay).
//
// -endpoint dials a vgen-serve instance and implies -backend remote
// (DESIGN.md Section 13): completions run through the retrying,
// circuit-broken, batch-coalescing HTTP transport, tuned by the
// -remote-*, -breaker-*, and -batch* knobs. -remote-attempts bounds
// transport retries per request, composing *under* the coordinator's
// shard retries: a cell whose transport budget exhausts renders as an
// explicit missing cell (non-zero exit), which a supervised run then
// retries at shard granularity. -auth-env names the environment variable
// holding the bearer token (the secret never appears on a command line).
// Remote runs auto-record to remote-record.jsonl (or <emit>.rec.jsonl
// when sharded) so they replay offline; -record='' disables.
//
// Distributed sweeps (see DESIGN.md, "Sharded sweep execution"): -shards
// N -shard I -emit runs the I-th of N partitions of the selected
// experiments' query plan and serializes its per-cell stats; -merge
// combines the N result files and renders the tables byte-identically to
// the monolithic run, with no backend construction at all. -emit-plan
// writes the shard's serialized plan instead of executing it, and
// -from-plan executes such a plan file (validating it addresses this
// worker's backend and seed) — the coordinator/worker split for running
// shards on machines that don't share flags. Only cell-based experiments
// (table3, table4, fig6, fig7, headline, passk, problems) shard;
// -experiment all selects exactly those in emit/merge modes.
//
// A -merge missing some of its sweep's shards fails by default (a table
// silently rendered from partial data is the worst outcome a distributed
// sweep can have). -allow-partial instead renders what is present and
// prints a deterministic report of the missing shards and exactly which
// cells their absence left uncovered. Supervised end-to-end runs —
// retry, work-stealing, resume — live in the vgen-coord command.
//
// -cpuprofile/-memprofile capture pprof profiles from the real binary
// under real sweep traffic, so hot spots can be read off production-shaped
// runs rather than microbenches.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/harness"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vgen-eval: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	seed := flag.Int64("seed", 1, "determinism seed for corpus, models and sampling")
	n := flag.Int("n", 10, "completions per prompt")
	quick := flag.Bool("quick", false, "sweep only t=0.1 (fast; matches best-t tables)")
	experiment := flag.String("experiment", "all", "which artifact to regenerate")
	corpusFiles := flag.Int("corpus-files", 0, "synthetic corpus size (0 = default)")
	workers := flag.Int("workers", 0, "evaluation worker pool width (0 = GOMAXPROCS, 1 = serial); results are identical at any width")
	mapSampler := flag.Bool("map-sampler", false, "sample from the map-backed n-gram baseline instead of the frozen tables (identical output, slower)")
	backend := flag.String("backend", "family", "generation backend by name ('list' prints the registry)")
	record := flag.String("record", "", "capture every produced sample to this JSONL file")
	replay := flag.String("replay", "", "JSONL recording served by the replay backend (implies -backend replay)")
	shards := flag.Int("shards", 1, "total shard count of a distributed sweep")
	shard := flag.Int("shard", 0, "this worker's shard index (0-based)")
	emit := flag.String("emit", "", "run one shard and write its wire result file here (requires cell-based -experiment)")
	emitPlan := flag.String("emit-plan", "", "write this shard's serialized query plan here instead of executing it")
	fromPlan := flag.String("from-plan", "", "execute a serialized shard plan file (validates backend tag and seed; requires -emit)")
	merge := flag.String("merge", "", "comma-separated shard result files to merge and render (no backend is built)")
	allowPartial := flag.Bool("allow-partial", false, "merge whatever shards are present, report the missing shards/cells to stderr, and exit 0 (default: missing shards are an error)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	endpoint := flag.String("endpoint", "", "remote backend: completion service URL, e.g. http://127.0.0.1:8473 (implies -backend remote)")
	authEnv := flag.String("auth-env", "", "remote backend: environment variable holding the bearer token (the token never appears in argv)")
	remoteTimeout := flag.Duration("remote-timeout", 0, "remote backend: per-attempt HTTP deadline (0 = 30s)")
	remoteBudget := flag.Duration("remote-budget", 0, "remote backend: sweep-level deadline shared by every request (0 = none)")
	remoteAttempts := flag.Int("remote-attempts", 0, "remote backend: per-request attempt budget, composing under coord's shard retries (0 = 4)")
	remoteBackoff := flag.Duration("remote-backoff", 0, "remote backend: base retry backoff, doubling per attempt (0 = 50ms)")
	remoteBackoffCap := flag.Duration("remote-backoff-cap", 0, "remote backend: retry backoff cap (0 = 2s)")
	remoteInflight := flag.Int("remote-inflight", 0, "remote backend: max concurrent HTTP requests (0 = 16)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "remote backend: consecutive failures that trip the circuit breaker (0 = 5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "remote backend: open-breaker cooldown before a half-open probe (0 = 1s)")
	batchSize := flag.Int("batch", 0, "batch-capable backends: work items coalesced per CompleteBatch call (0 = 16)")
	batchLinger := flag.Duration("batch-linger", 0, "batch-capable backends: max wait before flushing a partial batch (0 = flush when the feed drains)")
	flag.Parse()

	sweep := eval.SweepOptions{N: *n}
	if *quick {
		sweep.Temperatures = []float64{0.1}
		if *n > 6 {
			sweep.N = 6
		}
	}

	if *backend == "list" {
		for _, info := range gen.List() {
			fmt.Printf("%s\t%s\n", info.Name, info.Desc)
		}
		return
	}
	if *replay != "" {
		switch *backend {
		case "family": // default value: -replay alone implies the replay backend
			*backend = "replay"
		case "replay":
		default:
			fmt.Fprintf(os.Stderr, "-replay conflicts with -backend %s (the recording would be ignored)\n", *backend)
			os.Exit(2)
		}
	}
	if *endpoint != "" {
		switch *backend {
		case "family": // default value: -endpoint alone implies the remote backend
			*backend = "remote"
		case "remote":
		default:
			fmt.Fprintf(os.Stderr, "-endpoint conflicts with -backend %s (the endpoint would be ignored)\n", *backend)
			os.Exit(2)
		}
	}
	if *backend == "remote" && *endpoint == "" {
		fmt.Fprintln(os.Stderr, "-backend remote needs -endpoint (the vgen-serve URL)")
		os.Exit(2)
	}
	var authToken string
	if *authEnv != "" {
		authToken = os.Getenv(*authEnv)
		if authToken == "" {
			fmt.Fprintf(os.Stderr, "-auth-env: environment variable %s is empty or unset\n", *authEnv)
			os.Exit(2)
		}
	}

	if *experiment == "list" {
		for _, it := range harness.ExperimentIndex() {
			fmt.Println(it)
		}
		return
	}

	if *experiment != "all" && !knownExperiment(*experiment) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -experiment list)\n", *experiment)
		os.Exit(2)
	}

	sharded := *emit != "" || *emitPlan != "" || *fromPlan != ""
	if sharded && *merge != "" {
		fmt.Fprintln(os.Stderr, "-merge runs coordinator-side; it conflicts with -emit/-emit-plan/-from-plan")
		os.Exit(2)
	}
	if *fromPlan != "" && *emit == "" {
		fmt.Fprintln(os.Stderr, "-from-plan needs -emit for the shard's result file")
		os.Exit(2)
	}
	if *emitPlan != "" && *emit != "" {
		fmt.Fprintln(os.Stderr, "-emit-plan writes the plan without executing it; it conflicts with -emit (run the plan later with -from-plan)")
		os.Exit(2)
	}
	if *fromPlan != "" {
		// The plan file's header defines the cell set and shard identity; a
		// -shard/-shards/-experiment given alongside would be silently
		// overridden — the same misconfiguration class as -shards without
		// -emit, so reject it rather than let two workers compute one shard.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "shard", "shards", "experiment":
				fmt.Fprintf(os.Stderr, "-%s is defined by the plan file's header; drop it when using -from-plan\n", f.Name)
				os.Exit(2)
			}
		})
	}
	if (*shards != 1 || *shard != 0) && !sharded {
		// Silently running the full sweep would make N workers each do N
		// times the intended work with no error.
		fmt.Fprintln(os.Stderr, "-shards/-shard select a partition to run; add -emit out.jsonl (or -emit-plan) to execute it")
		os.Exit(2)
	}
	if sharded && *fromPlan == "" {
		// Fail the non-cell case here, in milliseconds, not after core.New
		// has built the corpus and trained the model family.
		rejectNonCellShard(*experiment)
	}

	// Merge mode: combine shard results and render. No backend, corpus, or
	// model is constructed — the tables regenerate from serialized stats.
	if *merge != "" {
		rejectNonCellMerge(*experiment) // before any file work
		paths := strings.Split(*merge, ",")
		h, rs, m, missingShards, err := core.HarnessFromShardsPartial(paths, sweep)
		if err != nil {
			fail("%v", err)
		}
		if len(missingShards) > 0 && !*allowPartial {
			fail("shard %d of %d missing (its cells are unserved); rerun it, or pass -allow-partial to render what is here",
				missingShards[0], m.Shards)
		}
		fmt.Fprintf(os.Stderr, "merged %d of %d shards (backend %q, seed %d): %d cells\n",
			m.Shards-len(missingShards), m.Shards, m.Backend, m.Seed, rs.Len())
		renderExperiments(h, *experiment, true)
		missing := rs.Missing()
		if len(missingShards) > 0 {
			// Deterministic partial report: which shards are absent and
			// exactly which cells their absence left uncovered.
			fmt.Fprintf(os.Stderr, "PARTIAL merge: missing shard(s) %v\n", missingShards)
			sort.Slice(missing, func(i, j int) bool { return missing[i].Less(missing[j]) })
		}
		if len(missing) > 0 {
			for i, c := range missing {
				if i == 8 {
					fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(missing)-8)
					break
				}
				fmt.Fprintf(os.Stderr, "  missing cell %+v\n", c)
			}
			if !*allowPartial {
				fail("merged shards do not cover %d cell(s) of the requested artifacts", len(missing))
			}
			fmt.Fprintf(os.Stderr, "rendered with %d cell(s) missing (zeros in their place)\n", len(missing))
		}
		return
	}

	stopCPU := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	if *backend == "remote" && *emitPlan == "" {
		// Every remote run auto-pairs with a recording so it is replayable
		// offline (-replay serves it back with no server at all). An explicit
		// -record — including -record="" to opt out — wins; the default name
		// is shard-qualified so supervised workers never clobber each other.
		recordSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "record" {
				recordSet = true
			}
		})
		if !recordSet {
			*record = "remote-record.jsonl"
			if *emit != "" {
				*record = *emit + ".rec.jsonl"
			}
			fmt.Fprintf(os.Stderr, "recording remote samples to %s (disable with -record='')\n", *record)
		}
	}

	fw, err := core.New(core.Config{
		Seed: *seed, CorpusFiles: *corpusFiles, Sweep: sweep,
		Workers: *workers, MapSampler: *mapSampler,
		Backend: *backend, Record: *record, Replay: *replay,
		Remote: gen.RemoteOptions{
			Endpoint: *endpoint, AuthToken: authToken,
			Timeout: *remoteTimeout, Budget: *remoteBudget,
			MaxAttempts: *remoteAttempts, BackoffBase: *remoteBackoff, BackoffCap: *remoteBackoffCap,
			MaxInFlight: *remoteInflight,
			BreakerThreshold: *breakerThreshold, BreakerCooldown: *breakerCooldown,
		},
		BatchSize: *batchSize, BatchLinger: *batchLinger,
	})
	if err != nil {
		stopCPU()
		fail("%v", err)
	}

	if sharded {
		// SIGINT/SIGTERM cancel the evaluation pool promptly — in-flight
		// work stops and no partial result file appears, so a supervising
		// coordinator (or an impatient operator) can kill a worker without
		// leaving state a later merge could trip over.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		exps := []string{*experiment}
		switch {
		case *fromPlan != "":
			err = fw.RunPlanFileCtx(ctx, *fromPlan, *emit)
		case *emitPlan != "":
			err = fw.WriteShardPlan(*emitPlan, exps, *shard, *shards)
		default:
			err = fw.WriteShardCtx(ctx, *emit, exps, *shard, *shards)
		}
		stop()
		if err != nil {
			stopCPU()
			fail("%v", err)
		}
	} else {
		renderExperiments(fw.Harness, *experiment, false)
	}

	// Finish the CPU profile before anything that can exit, so a
	// memprofile failure never leaves a truncated cpuprofile behind.
	stopCPU()

	if err := fw.Close(); err != nil {
		fail("record: %v", err)
	}

	// A backend that failed to produce cells (a remote transport out of
	// retries) rendered zeros in their place. Render first so the partial
	// output exists, then fail loudly — a silently short table is the
	// worst outcome a degraded backend can have.
	if fails := fw.Runner.Failures(); len(fails) > 0 {
		for i, f := range fails {
			if i == 8 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(fails)-8)
				break
			}
			fmt.Fprintf(os.Stderr, "  unserved cell %+v: %v\n", f.Coord, f.Err)
		}
		fail("backend failed to serve %d cell(s); their stats rendered as zeros", len(fails))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("memprofile: %v", err)
		}
		f.Close()
	}
}

// knownExperiment reports whether the harness has a renderer by name.
func knownExperiment(name string) bool {
	for _, r := range harness.Renderers() {
		if r.Name == name {
			return true
		}
	}
	return false
}

// rejectNonCell exits 2 when -experiment selects an artifact the sharded
// paths cannot handle: "all" means every cell-based artifact, anything
// else must itself be cell-based.
func rejectNonCell(experiment, what string) {
	if experiment == "all" {
		return
	}
	for _, e := range harness.CellExperiments() {
		if e == experiment {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "%s only handles cell-based artifacts %v, not %q\n",
		what, harness.CellExperiments(), experiment)
	os.Exit(2)
}

func rejectNonCellMerge(experiment string) { rejectNonCell(experiment, "-merge") }
func rejectNonCellShard(experiment string) { rejectNonCell(experiment, "-emit/-emit-plan") }

// renderExperiments prints the selected artifacts in the harness
// registry's fixed order; cellOnly restricts to cell-based artifacts
// (the merged-results path, where nothing else is computable).
func renderExperiments(h *harness.Harness, experiment string, cellOnly bool) {
	for _, r := range harness.Renderers() {
		if experiment != "all" && experiment != r.Name {
			continue
		}
		if cellOnly && !r.Cell {
			continue
		}
		fmt.Println(r.Render(h))
	}
}
