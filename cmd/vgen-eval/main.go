// Command vgen-eval runs the paper's evaluation sweeps and regenerates its
// tables and figures — in one process, or sharded across many.
//
// Usage:
//
//	vgen-eval [-seed N] [-n N] [-quick] [-workers N] [-map-sampler]
//	          [-plan-cache BYTES] [-unshared-plans] [-cache-stats]
//	          [-backend NAME] [-record FILE] [-replay FILE]
//	          [-endpoint URL] [-auth-env VAR] [-batch N] [-batch-linger D]
//	          [-remote-timeout D] [-remote-budget D] [-remote-attempts N]
//	          [-remote-backoff D] [-remote-backoff-cap D] [-remote-inflight N]
//	          [-breaker-threshold N] [-breaker-cooldown D]
//	          [-shards N -shard I -emit out.jsonl]
//	          [-emit-plan plan.jsonl] [-from-plan plan.jsonl -emit out.jsonl]
//	          [-merge a.jsonl,b.jsonl,... [-allow-partial]]
//	          [-store DIR [-store-stats]]
//	          [-store DIR -store-query k=v,... | -store-diff A..B]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	          [-experiment all|table1|table2|table3|table4|fig6|fig7|headline|ablation|corpus|gallery|passk|problems|lint|list]
//
// -quick restricts the sweep to t=0.1 and small n, which preserves the
// best-temperature table values (best is t=0.1 by construction and in the
// paper) while running in seconds.
//
// -backend selects the generation backend by registered name (family,
// mutant, remote, replay — `-backend list` prints names with
// descriptions). -record captures every produced sample to a JSONL file;
// -replay serves a recording back through the replay backend,
// reproducing the recorded sweep's statistics exactly (giving -replay
// alone implies -backend replay).
//
// -endpoint dials a vgen-serve instance and implies -backend remote
// (DESIGN.md Section 13): completions run through the retrying,
// circuit-broken, batch-coalescing HTTP transport, tuned by the
// -remote-*, -breaker-*, and -batch* knobs. -remote-attempts bounds
// transport retries per request, composing *under* the coordinator's
// shard retries: a cell whose transport budget exhausts renders as an
// explicit missing cell (non-zero exit), which a supervised run then
// retries at shard granularity. -auth-env names the environment variable
// holding the bearer token (the secret never appears on a command line).
// Remote runs auto-record to remote-record.jsonl (or <emit>.rec.jsonl
// when sharded) so they replay offline; -record=” disables.
//
// Distributed sweeps (see DESIGN.md, "Sharded sweep execution"): -shards
// N -shard I -emit runs the I-th of N partitions of the selected
// experiments' query plan and serializes its per-cell stats; -merge
// combines the N result files and renders the tables byte-identically to
// the monolithic run, with no backend construction at all. -emit-plan
// writes the shard's serialized plan instead of executing it, and
// -from-plan executes such a plan file (validating it addresses this
// worker's backend and seed) — the coordinator/worker split for running
// shards on machines that don't share flags. Only cell-based experiments
// (table3, table4, fig6, fig7, headline, passk, problems) shard;
// -experiment all selects exactly those in emit/merge modes.
//
// A -merge missing some of its sweep's shards fails by default (a table
// silently rendered from partial data is the worst outcome a distributed
// sweep can have). -allow-partial instead renders what is present and
// prints a deterministic report of the missing shards and exactly which
// cells their absence left uncovered. Supervised end-to-end runs —
// retry, work-stealing, resume — live in the vgen-coord command.
//
// Evaluation shares compiled artifacts process-wide (DESIGN.md Section
// 15): testbenches elaborate once per (problem, level), candidate designs
// and compiled expression plans are cached content-addressed, and
// simulator state is pooled — identical output, far less compile work.
// -plan-cache bounds each shared cache in accounted bytes (default 4 MiB
// each, negative = unbounded); -unshared-plans compiles every sample
// fresh, the differential baseline; -cache-stats prints the shared-cache
// and outcome-cache counters to stderr after the run.
//
// -store DIR attaches the persistent result store (DESIGN.md Section 14):
// evaluated cells persist under the sweep identity (backend tag + seed),
// warm cells are served from disk with zero backend calls, and an
// interrupted run resumes from the last durable cell. -store-stats prints
// the hit/miss/persist counters after the run — a fully warm sweep
// reports 0 misses. With -merge, shard results additionally merge back
// into the store. -store-query lists resident cells by filter and
// -store-diff compares two sweep identities ('[backend@]seed..[backend@]seed'),
// both without building any backend.
//
// -cpuprofile/-memprofile capture pprof profiles from the real binary
// under real sweep traffic, so hot spots can be read off production-shaped
// runs rather than microbenches.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/store"
	"repro/internal/wire"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vgen-eval: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	seed := flag.Int64("seed", 1, "determinism seed for corpus, models and sampling")
	n := flag.Int("n", 10, "completions per prompt")
	quick := flag.Bool("quick", false, "sweep only t=0.1 (fast; matches best-t tables)")
	experiment := flag.String("experiment", "all", "which artifact to regenerate")
	corpusFiles := flag.Int("corpus-files", 0, "synthetic corpus size (0 = default)")
	workers := flag.Int("workers", 0, "evaluation worker pool width (0 = GOMAXPROCS, 1 = serial); results are identical at any width")
	mapSampler := flag.Bool("map-sampler", false, "sample from the map-backed n-gram baseline instead of the frozen tables (identical output, slower)")
	planCache := flag.Int64("plan-cache", 0, "shared compiled plan/design cache budget in accounted bytes, each (0 = 4 MiB, negative = unbounded)")
	unsharedPlans := flag.Bool("unshared-plans", false, "compile every sample fresh instead of sharing plans and designs across evaluations (identical output, slower)")
	cacheStats := flag.Bool("cache-stats", false, "print shared plan/design cache and outcome cache counters to stderr after the run")
	backend := flag.String("backend", "family", "generation backend by name ('list' prints the registry)")
	record := flag.String("record", "", "capture every produced sample to this JSONL file")
	replay := flag.String("replay", "", "JSONL recording served by the replay backend (implies -backend replay)")
	shards := flag.Int("shards", 1, "total shard count of a distributed sweep")
	shard := flag.Int("shard", 0, "this worker's shard index (0-based)")
	emit := flag.String("emit", "", "run one shard and write its wire result file here (requires cell-based -experiment)")
	emitPlan := flag.String("emit-plan", "", "write this shard's serialized query plan here instead of executing it")
	fromPlan := flag.String("from-plan", "", "execute a serialized shard plan file (validates backend tag and seed; requires -emit)")
	merge := flag.String("merge", "", "comma-separated shard result files to merge and render (no backend is built)")
	allowPartial := flag.Bool("allow-partial", false, "merge whatever shards are present, report the missing shards/cells to stderr, and exit 0 (default: missing shards are an error)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	endpoint := flag.String("endpoint", "", "remote backend: completion service URL, e.g. http://127.0.0.1:8473 (implies -backend remote)")
	authEnv := flag.String("auth-env", "", "remote backend: environment variable holding the bearer token (the token never appears in argv)")
	remoteTimeout := flag.Duration("remote-timeout", 0, "remote backend: per-attempt HTTP deadline (0 = 30s)")
	remoteBudget := flag.Duration("remote-budget", 0, "remote backend: sweep-level deadline shared by every request (0 = none)")
	remoteAttempts := flag.Int("remote-attempts", 0, "remote backend: per-request attempt budget, composing under coord's shard retries (0 = 4)")
	remoteBackoff := flag.Duration("remote-backoff", 0, "remote backend: base retry backoff, doubling per attempt (0 = 50ms)")
	remoteBackoffCap := flag.Duration("remote-backoff-cap", 0, "remote backend: retry backoff cap (0 = 2s)")
	remoteInflight := flag.Int("remote-inflight", 0, "remote backend: max concurrent HTTP requests (0 = 16)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "remote backend: consecutive failures that trip the circuit breaker (0 = 5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "remote backend: open-breaker cooldown before a half-open probe (0 = 1s)")
	batchSize := flag.Int("batch", 0, "batch-capable backends: work items coalesced per CompleteBatch call (0 = 16)")
	batchLinger := flag.Duration("batch-linger", 0, "batch-capable backends: max wait before flushing a partial batch (0 = flush when the feed drains)")
	storeDir := flag.String("store", "", "persistent result store directory: warm cells are served from disk, new cells persist for later runs")
	storeStats := flag.Bool("store-stats", false, "print the store's hit/miss/persist counters to stderr after the run")
	storeQuery := flag.String("store-query", "", "list store cells matching a key=value,... filter (backend, seed, model, variant, problem, level, temp, n; 'all' lists everything) and exit")
	storeDiff := flag.String("store-diff", "", "compare two sweep identities in the store, 'A..B' with each side '[backend@]seed', and exit")
	flag.Parse()

	sweep := eval.SweepOptions{N: *n}
	if *quick {
		sweep.Temperatures = []float64{0.1}
		if *n > 6 {
			sweep.N = 6
		}
	}

	if *backend == "list" {
		for _, info := range gen.List() {
			fmt.Printf("%s\t%s\n", info.Name, info.Desc)
		}
		return
	}
	if *replay != "" {
		switch *backend {
		case "family": // default value: -replay alone implies the replay backend
			*backend = "replay"
		case "replay":
		default:
			fmt.Fprintf(os.Stderr, "-replay conflicts with -backend %s (the recording would be ignored)\n", *backend)
			os.Exit(2)
		}
	}
	if *endpoint != "" {
		switch *backend {
		case "family": // default value: -endpoint alone implies the remote backend
			*backend = "remote"
		case "remote":
		default:
			fmt.Fprintf(os.Stderr, "-endpoint conflicts with -backend %s (the endpoint would be ignored)\n", *backend)
			os.Exit(2)
		}
	}
	if *backend == "remote" && *endpoint == "" {
		fmt.Fprintln(os.Stderr, "-backend remote needs -endpoint (the vgen-serve URL)")
		os.Exit(2)
	}
	var authToken string
	if *authEnv != "" {
		authToken = os.Getenv(*authEnv)
		if authToken == "" {
			fmt.Fprintf(os.Stderr, "-auth-env: environment variable %s is empty or unset\n", *authEnv)
			os.Exit(2)
		}
	}

	if *experiment == "list" {
		for _, it := range harness.ExperimentIndex() {
			fmt.Println(it)
		}
		return
	}

	// Store query modes: read-only inspection of a result store, no
	// framework (backend, corpus, models) construction at all.
	if *storeQuery != "" || *storeDiff != "" {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "-store-query/-store-diff need -store DIR (the store to inspect)")
			os.Exit(2)
		}
		st, err := store.Open(*storeDir)
		if err != nil {
			fail("%v", err)
		}
		defer st.Close()
		switch {
		case *storeQuery != "":
			runStoreQuery(st, *storeQuery)
		default:
			runStoreDiff(st, *storeDiff)
		}
		return
	}

	if *experiment != "all" && !knownExperiment(*experiment) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -experiment list)\n", *experiment)
		os.Exit(2)
	}

	sharded := *emit != "" || *emitPlan != "" || *fromPlan != ""
	if sharded && *merge != "" {
		fmt.Fprintln(os.Stderr, "-merge runs coordinator-side; it conflicts with -emit/-emit-plan/-from-plan")
		os.Exit(2)
	}
	if *fromPlan != "" && *emit == "" {
		fmt.Fprintln(os.Stderr, "-from-plan needs -emit for the shard's result file")
		os.Exit(2)
	}
	if *emitPlan != "" && *emit != "" {
		fmt.Fprintln(os.Stderr, "-emit-plan writes the plan without executing it; it conflicts with -emit (run the plan later with -from-plan)")
		os.Exit(2)
	}
	if *fromPlan != "" {
		// The plan file's header defines the cell set and shard identity; a
		// -shard/-shards/-experiment given alongside would be silently
		// overridden — the same misconfiguration class as -shards without
		// -emit, so reject it rather than let two workers compute one shard.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "shard", "shards", "experiment":
				fmt.Fprintf(os.Stderr, "-%s is defined by the plan file's header; drop it when using -from-plan\n", f.Name)
				os.Exit(2)
			}
		})
	}
	if (*shards != 1 || *shard != 0) && !sharded {
		// Silently running the full sweep would make N workers each do N
		// times the intended work with no error.
		fmt.Fprintln(os.Stderr, "-shards/-shard select a partition to run; add -emit out.jsonl (or -emit-plan) to execute it")
		os.Exit(2)
	}
	if sharded && *fromPlan == "" {
		// Fail the non-cell case here, in milliseconds, not after core.New
		// has built the corpus and trained the model family.
		rejectNonCellShard(*experiment)
	}

	// Merge mode: combine shard results and render. No backend, corpus, or
	// model is constructed — the tables regenerate from serialized stats.
	if *merge != "" {
		rejectNonCellMerge(*experiment) // before any file work
		paths := strings.Split(*merge, ",")
		shardFiles, err := core.ReadShardFiles(paths)
		if err != nil {
			fail("%v", err)
		}
		rs, m, missingShards, err := wire.MergePartial(shardFiles)
		if err != nil {
			fail("%v", err)
		}
		h := harness.FromResults(rs, sweep)
		if len(missingShards) > 0 && !*allowPartial {
			fail("shard %d of %d missing (its cells are unserved); rerun it, or pass -allow-partial to render what is here",
				missingShards[0], m.Shards)
		}
		fmt.Fprintf(os.Stderr, "merged %d of %d shards (backend %q, seed %d): %d cells\n",
			m.Shards-len(missingShards), m.Shards, m.Backend, m.Seed, rs.Len())
		mergeShardSummary(shardFiles, m, *storeDir)
		renderExperiments(h, *experiment, true)
		missing := rs.Missing()
		if len(missingShards) > 0 {
			// Deterministic partial report: which shards are absent and
			// exactly which cells their absence left uncovered.
			fmt.Fprintf(os.Stderr, "PARTIAL merge: missing shard(s) %v\n", missingShards)
			sort.Slice(missing, func(i, j int) bool { return missing[i].Less(missing[j]) })
		}
		if len(missing) > 0 {
			for i, c := range missing {
				if i == 8 {
					fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(missing)-8)
					break
				}
				fmt.Fprintf(os.Stderr, "  missing cell %+v\n", c)
			}
			if !*allowPartial {
				fail("merged shards do not cover %d cell(s) of the requested artifacts", len(missing))
			}
			fmt.Fprintf(os.Stderr, "rendered with %d cell(s) missing (zeros in their place)\n", len(missing))
		}
		return
	}

	stopCPU := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	if *backend == "remote" && *emitPlan == "" {
		// Every remote run auto-pairs with a recording so it is replayable
		// offline (-replay serves it back with no server at all). An explicit
		// -record — including -record="" to opt out — wins; the default name
		// is shard-qualified so supervised workers never clobber each other.
		recordSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "record" {
				recordSet = true
			}
		})
		if !recordSet {
			*record = "remote-record.jsonl"
			if *emit != "" {
				*record = *emit + ".rec.jsonl"
			}
			fmt.Fprintf(os.Stderr, "recording remote samples to %s (disable with -record='')\n", *record)
		}
	}

	fw, err := core.New(core.Config{
		Seed: *seed, CorpusFiles: *corpusFiles, Sweep: sweep,
		Workers: *workers, MapSampler: *mapSampler,
		PlanCacheBytes: *planCache, UnsharedPlans: *unsharedPlans,
		Backend: *backend, Record: *record, Replay: *replay,
		Remote: gen.RemoteOptions{
			Endpoint: *endpoint, AuthToken: authToken,
			Timeout: *remoteTimeout, Budget: *remoteBudget,
			MaxAttempts: *remoteAttempts, BackoffBase: *remoteBackoff, BackoffCap: *remoteBackoffCap,
			MaxInFlight:      *remoteInflight,
			BreakerThreshold: *breakerThreshold, BreakerCooldown: *breakerCooldown,
		},
		BatchSize: *batchSize, BatchLinger: *batchLinger,
		StoreDir: *storeDir,
	})
	if err != nil {
		stopCPU()
		fail("%v", err)
	}

	if sharded {
		// SIGINT/SIGTERM cancel the evaluation pool promptly — in-flight
		// work stops and no partial result file appears, so a supervising
		// coordinator (or an impatient operator) can kill a worker without
		// leaving state a later merge could trip over.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		exps := []string{*experiment}
		switch {
		case *fromPlan != "":
			err = fw.RunPlanFileCtx(ctx, *fromPlan, *emit)
		case *emitPlan != "":
			err = fw.WriteShardPlan(*emitPlan, exps, *shard, *shards)
		default:
			err = fw.WriteShardCtx(ctx, *emit, exps, *shard, *shards)
		}
		stop()
		if err != nil {
			stopCPU()
			fail("%v", err)
		}
	} else {
		renderExperiments(fw.Harness, *experiment, false)
	}

	// Finish the CPU profile before anything that can exit, so a
	// memprofile failure never leaves a truncated cpuprofile behind.
	stopCPU()

	if *cacheStats {
		printCacheStats(fw.Runner)
	}

	// Store accounting comes before Close (which seals the store). A
	// persistence failure is loud: the rendered output above is correct,
	// but the warmth it should have banked is not durable.
	if fw.StoreSource != nil {
		if *storeStats {
			s := fw.StoreSource.Stats()
			fmt.Fprintf(os.Stderr, "store: %d hits, %d misses, %d persisted, %d resident\n",
				s.Hits, s.Misses, s.Persisted, fw.Store.Len())
		}
		if err := fw.StoreSource.Err(); err != nil {
			fw.Close()
			fail("%v", err)
		}
	}

	if err := fw.Close(); err != nil {
		fail("%v", err)
	}

	// A backend that failed to produce cells (a remote transport out of
	// retries) rendered zeros in their place. Render first so the partial
	// output exists, then fail loudly — a silently short table is the
	// worst outcome a degraded backend can have.
	if fails := fw.Runner.Failures(); len(fails) > 0 {
		for i, f := range fails {
			if i == 8 {
				fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(fails)-8)
				break
			}
			fmt.Fprintf(os.Stderr, "  unserved cell %+v: %v\n", f.Coord, f.Err)
		}
		fail("backend failed to serve %d cell(s); their stats rendered as zeros", len(fails))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("memprofile: %v", err)
		}
		f.Close()
	}
}

// knownExperiment reports whether the harness has a renderer by name.
// printCacheStats reports the shared compiled-artifact caches (DESIGN.md
// Section 15) next to the per-runner outcome cache, all to stderr: a warm
// sweep shows plan/design hits dominating misses, a -plan-cache squeeze
// shows evictions.
func printCacheStats(r *eval.Runner) {
	ss := eval.SharedStats()
	fmt.Fprintf(os.Stderr, "plan cache: %d hits, %d misses, %d evicted, %d entries, %d bytes\n",
		ss.Plans.Hits, ss.Plans.Misses, ss.Plans.Evictions, ss.Plans.Entries, ss.Plans.Bytes)
	fmt.Fprintf(os.Stderr, "design cache: %d hits, %d misses, %d evicted, %d designs (%d skeletons), %d bytes\n",
		ss.DesignHits, ss.DesignMisses, ss.DesignEvicted, ss.Designs, ss.Skeletons, ss.DesignBytes)
	oc := r.CacheStats()
	fmt.Fprintf(os.Stderr, "outcome cache: %d entries, %d bytes, %d evicted\n",
		oc.Entries, oc.Bytes, oc.Evicted)
	fmt.Fprintf(os.Stderr, "cell memo: %d cells, %d hits\n", oc.Cells, oc.CellHits)
}

func knownExperiment(name string) bool {
	for _, r := range harness.Renderers() {
		if r.Name == name {
			return true
		}
	}
	return false
}

// rejectNonCell exits 2 when -experiment selects an artifact the sharded
// paths cannot handle: "all" means every cell-based artifact, anything
// else must itself be cell-based.
func rejectNonCell(experiment, what string) {
	if experiment == "all" {
		return
	}
	for _, e := range harness.CellExperiments() {
		if e == experiment {
			return
		}
	}
	fmt.Fprintf(os.Stderr, "%s only handles cell-based artifacts %v, not %q\n",
		what, harness.CellExperiments(), experiment)
	os.Exit(2)
}

func rejectNonCellMerge(experiment string) { rejectNonCell(experiment, "-merge") }
func rejectNonCellShard(experiment string) { rejectNonCell(experiment, "-emit/-emit-plan") }

// renderExperiments prints the selected artifacts in the harness
// registry's fixed order; cellOnly restricts to cell-based artifacts
// (the merged-results path, where nothing else is computable).
func renderExperiments(h *harness.Harness, experiment string, cellOnly bool) {
	for _, r := range harness.Renderers() {
		if experiment != "all" && experiment != r.Name {
			continue
		}
		if cellOnly && !r.Cell {
			continue
		}
		fmt.Println(r.Render(h))
	}
}

// mergeShardSummary prints one line per merged shard, ascending by shard
// index: its cell count and — when a store is attached — how many of its
// cells the store already held versus newly banked by this merge. Shard
// results merge back into the store so a later sweep under the same
// identity starts warm from distributed work too.
func mergeShardSummary(shardFiles []wire.Shard, m wire.Meta, storeDir string) {
	var st *store.Store
	id := store.Identity{Backend: m.Backend, Seed: m.Seed}
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir)
		if err != nil {
			fail("%v", err)
		}
	}
	sort.Slice(shardFiles, func(i, j int) bool { return shardFiles[i].Meta.Shard < shardFiles[j].Meta.Shard })
	for _, sh := range shardFiles {
		if st == nil {
			fmt.Fprintf(os.Stderr, "shard %d: %d cell(s)\n", sh.Meta.Shard, sh.Set.Len())
			continue
		}
		resident, fresh := 0, 0
		for _, c := range sh.Set.Coords() {
			cs, _ := sh.Set.Get(c)
			if cs.Samples == 0 {
				continue // unserved cell: nothing durable to bank
			}
			if old, ok := st.Get(id, c); ok && old == cs {
				resident++
				continue
			}
			if err := st.Put(id, c, cs); err != nil {
				fail("%v", err)
			}
			fresh++
		}
		fmt.Fprintf(os.Stderr, "shard %d: %d cell(s), %d already in store, %d newly persisted\n",
			sh.Meta.Shard, sh.Set.Len(), resident, fresh)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			fail("%v", err)
		}
	}
}

// parseFilter parses the -store-query spec: a comma-separated key=value
// list over backend, seed, model, variant, problem, level, temp (a float
// temperature, keyed in thousandths like everything else), and n. "all"
// (or empty) matches everything.
func parseFilter(spec string) (store.Filter, error) {
	var f store.Filter
	if spec == "all" || spec == "" {
		return f, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("filter term %q is not key=value", kv)
		}
		switch k {
		case "backend":
			f.Backend = v
		case "model":
			f.Model = v
		case "variant":
			f.Variant = v
		case "seed":
			i, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return f, fmt.Errorf("filter seed %q: %w", v, err)
			}
			f.Seed = &i
		case "temp":
			t, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return f, fmt.Errorf("filter temp %q: %w", v, err)
			}
			milli := gen.TempMilli(t)
			f.TempMilli = &milli
		case "problem", "level", "n":
			i, err := strconv.Atoi(v)
			if err != nil {
				return f, fmt.Errorf("filter %s %q: %w", k, v, err)
			}
			switch k {
			case "problem":
				f.Problem = &i
			case "level":
				f.Level = &i
			default:
				f.N = &i
			}
		default:
			return f, fmt.Errorf("unknown filter key %q (have backend, seed, model, variant, problem, level, temp, n)", k)
		}
	}
	return f, nil
}

// runStoreQuery lists matching cells, one deterministic line each.
func runStoreQuery(st *store.Store, spec string) {
	f, err := parseFilter(spec)
	if err != nil {
		fail("-store-query: %v", err)
	}
	entries := st.Query(f)
	for _, e := range entries {
		fmt.Printf("%s\t%s/%s p%02d L%d t%.3f n%d\tsamples=%d compiled=%d passed=%d sum_lat=%g\n",
			e.ID, e.Coord.Model, e.Coord.Variant, e.Coord.Problem, e.Coord.Level,
			e.Coord.Temperature(), e.Coord.N,
			e.Stats.Samples, e.Stats.Compiled, e.Stats.Passed, e.Stats.SumLat)
	}
	fmt.Fprintf(os.Stderr, "%d of %d cell(s) matched\n", len(entries), st.Len())
}

// resolveIdentity parses one -store-diff side, filling in the backend
// tag when the side is a bare seed and exactly one resident identity
// carries that seed (backend tags can embed seed-derived detail, so
// distinct seeds routinely mean distinct tags).
func resolveIdentity(st *store.Store, s string) (store.Identity, error) {
	id, err := store.ParseIdentity(s)
	if err != nil {
		return id, err
	}
	if id.Backend == "" {
		var tags []string
		for _, have := range st.Identities() {
			if have.Seed == id.Seed {
				tags = append(tags, have.Backend)
			}
		}
		if len(tags) != 1 {
			return id, fmt.Errorf("store holds %d identit(ies) with seed %d; qualify the seed as 'backend@seed'", len(tags), id.Seed)
		}
		id.Backend = tags[0]
	}
	return id, nil
}

// runStoreDiff renders the coordinate-aligned comparison of two sweep
// identities — the incremental-recompute view: what a seed or backend
// change actually moved.
func runStoreDiff(st *store.Store, spec string) {
	aStr, bStr, ok := strings.Cut(spec, "..")
	if !ok {
		fail("-store-diff: %q is not 'A..B' (each side '[backend@]seed')", spec)
	}
	a, err := resolveIdentity(st, aStr)
	if err != nil {
		fail("-store-diff: %v", err)
	}
	b, err := resolveIdentity(st, bStr)
	if err != nil {
		fail("-store-diff: %v", err)
	}
	d := st.Diff(a, b)
	fmt.Printf("diff %s .. %s: %d same, %d changed, %d only in A, %d only in B\n",
		a, b, d.Same, len(d.Changed), len(d.OnlyA), len(d.OnlyB))
	for _, e := range d.Changed {
		fmt.Printf("changed %s/%s p%02d L%d t%.3f n%d\tA samples=%d compiled=%d passed=%d sum_lat=%g\tB samples=%d compiled=%d passed=%d sum_lat=%g\n",
			e.Coord.Model, e.Coord.Variant, e.Coord.Problem, e.Coord.Level, e.Coord.Temperature(), e.Coord.N,
			e.A.Samples, e.A.Compiled, e.A.Passed, e.A.SumLat,
			e.B.Samples, e.B.Compiled, e.B.Passed, e.B.SumLat)
	}
	for _, c := range d.OnlyA {
		fmt.Printf("only-A  %s/%s p%02d L%d t%.3f n%d\n", c.Model, c.Variant, c.Problem, c.Level, c.Temperature(), c.N)
	}
	for _, c := range d.OnlyB {
		fmt.Printf("only-B  %s/%s p%02d L%d t%.3f n%d\n", c.Model, c.Variant, c.Problem, c.Level, c.Temperature(), c.N)
	}
}
