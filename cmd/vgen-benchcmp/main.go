// Command vgen-benchcmp diffs two BENCH_<date>.json files (the test2json
// streams `make bench` writes) with benchstat-style aggregation: samples
// are grouped per benchmark, summarized by median, and compared
// old-vs-new. It exits non-zero when any pinned hot-path bench regresses
// more than 10% in ns/op, which is what `make bench-compare` gates on.
//
// Usage:
//
//	vgen-benchcmp [old.json new.json]
//
// With no arguments it picks the two most recently modified BENCH_*.json
// files in the working directory (older = baseline).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// hotPathBenches are the pinned generation/evaluation hot paths: a >10%
// ns/op regression in any of them fails the comparison. Benches absent
// from either file (e.g. pre-refactor baselines) are skipped.
var hotPathBenches = []string{
	"BenchmarkHeadline",
	"BenchmarkFullPipelineEvaluation",
	"BenchmarkSchedulerRegions",
	"BenchmarkEvaluateBatch",
	"BenchmarkFrozenSample",
	"BenchmarkEncodeInto",
	"BenchmarkParseReference",
	// backend-tagged sweep throughput plus the shard decode+merge tax:
	// distributed-sweep overhead regressions gate like the hot paths
	"BenchmarkSweepThroughput/backend=family",
	"BenchmarkSweepThroughput/backend=replay",
	"BenchmarkShardMerge",
	// remote transport rows: loopback wire-stack tax at the pinned batch
	// sizes, and the per-attempt retry bookkeeping (breaker + backoff),
	// which must stay allocation-free
	"BenchmarkSweepThroughput/backend=remote/batch=1",
	"BenchmarkSweepThroughput/backend=remote/batch=8",
	"BenchmarkSweepThroughput/backend=remote/batch=32",
	"BenchmarkRetryBookkeeping",
	// persistent result store rows: the cold (compute + persist) and warm
	// (disk cache hit) sweep paths plus the raw resident-cell probe — a
	// regression here erodes exactly the speedup the store exists for
	"BenchmarkSweepThroughput/store=cold",
	"BenchmarkSweepThroughput/store=warm",
	"BenchmarkStoreLookup",
	// shared compiled-artifact rows (DESIGN.md Section 15): the cold and
	// warm per-sample compile paths and the plan-sharing sweep ablation —
	// the warm rows are the speedup the shared tiers exist for
	"BenchmarkEvaluateColdCompile",
	"BenchmarkEvaluateWarmCompile",
	"BenchmarkSweepThroughput/plans=fresh",
	"BenchmarkSweepThroughput/plans=shared",
}

const regressionLimit = 0.10

type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
	n           int
}

// parseFile reassembles the test2json Output fragments into text and
// extracts one sample per benchmark result line.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return parseBenchText(text.String()), nil
}

var cpuSuffixRe = regexp.MustCompile(`-\d+$`)

func parseBenchText(text string) map[string][]sample {
	out := map[string][]sample{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := cpuSuffixRe.ReplaceAllString(fields[0], "")
		var s sample
		ok := false
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				s.nsPerOp, ok = v, true
			case "allocs/op":
				s.allocsPerOp, s.hasAllocs = v, true
			}
		}
		if ok {
			out[name] = append(out[name], s)
		}
	}
	return out
}

// summarize reduces a benchmark's samples to their median ns/op (and
// median allocs/op), the benchstat aggregation for small sample counts.
func summarize(ss []sample) result {
	ns := make([]float64, 0, len(ss))
	allocs := make([]float64, 0, len(ss))
	for _, s := range ss {
		ns = append(ns, s.nsPerOp)
		if s.hasAllocs {
			allocs = append(allocs, s.allocsPerOp)
		}
	}
	r := result{nsPerOp: median(ns), n: len(ns)}
	if len(allocs) > 0 {
		r.allocsPerOp, r.hasAllocs = median(allocs), true
	}
	return r
}

func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func latestTwo() (string, string, error) {
	names, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", "", err
	}
	type benchFile struct {
		name string
		mod  time.Time
	}
	var files []benchFile
	for _, name := range names {
		if fi, err := os.Stat(name); err == nil {
			files = append(files, benchFile{name: name, mod: fi.ModTime()})
		}
	}
	if len(files) < 2 {
		return "", "", fmt.Errorf("need two BENCH_*.json files to compare, found %d", len(files))
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	return files[len(files)-2].name, files[len(files)-1].name, nil
}

func pct(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new/old-1))
}

func main() {
	var oldPath, newPath string
	switch len(os.Args) {
	case 1:
		var err error
		oldPath, newPath, err = latestTwo()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case 3:
		oldPath, newPath = os.Args[1], os.Args[2]
	default:
		fmt.Fprintln(os.Stderr, "usage: vgen-benchcmp [old.json new.json]")
		os.Exit(2)
	}

	oldSamples, err := parseFile(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", oldPath, err)
		os.Exit(2)
	}
	newSamples, err := parseFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", newPath, err)
		os.Exit(2)
	}

	var names []string
	for name := range oldSamples {
		if _, ok := newSamples[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "no common benchmarks between the two files")
		os.Exit(2)
	}

	pinned := map[string]bool{}
	for _, n := range hotPathBenches {
		pinned[n] = true
	}

	fmt.Printf("benchcmp %s -> %s\n", oldPath, newPath)
	fmt.Printf("%-34s %14s %14s %9s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op old->new")
	var regressions []string
	for _, name := range names {
		o := summarize(oldSamples[name])
		n := summarize(newSamples[name])
		allocCol := ""
		if o.hasAllocs && n.hasAllocs {
			allocCol = fmt.Sprintf("%.0f -> %.0f (%s)", o.allocsPerOp, n.allocsPerOp, pct(o.allocsPerOp, n.allocsPerOp))
		}
		mark := ""
		if pinned[name] {
			mark = " *"
			if o.nsPerOp > 0 && n.nsPerOp/o.nsPerOp-1 > regressionLimit {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.0f -> %.0f ns/op (%s)", name, o.nsPerOp, n.nsPerOp, pct(o.nsPerOp, n.nsPerOp)))
				mark = " !"
			}
		}
		fmt.Printf("%-34s %14.1f %14.1f %9s  %s%s\n",
			name, o.nsPerOp, n.nsPerOp, pct(o.nsPerOp, n.nsPerOp), allocCol, mark)
	}
	fmt.Println("(* pinned hot path, ! pinned regression)")

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nFAIL: %d pinned hot-path bench(es) regressed >%.0f%% ns/op:\n",
			len(regressions), 100*regressionLimit)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}
