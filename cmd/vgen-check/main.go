// vgen-check runs the project's invariant-enforcing static analyzers
// (internal/goanalysis) over the module: map-order determinism, ambient
// nondeterminism, durable-write discipline, context threading, and the
// single-merge-path rule. It exits 0 only on a clean tree; findings and
// the suppression inventory print in deterministic order so CI diffs are
// stable.
//
// Usage:
//
//	vgen-check [packages]      # default ./...
//	vgen-check -list           # registered analyzers, one per line
//	vgen-check -json [pkgs]    # machine-readable findings + inventory
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/goanalysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and suppression inventory as JSON")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	analyzers := goanalysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\t%s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, prefix, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgen-check: %v\n", err)
		os.Exit(2)
	}
	for i, p := range patterns {
		patterns[i] = rebase(prefix, p)
	}

	m, err := goanalysis.LoadModule(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgen-check: %v\n", err)
		os.Exit(2)
	}
	res := goanalysis.Analyze(m, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "vgen-check: %v\n", err)
			os.Exit(2)
		}
	} else {
		res.Format(os.Stdout)
	}
	if !res.Clean() {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod
// and returns the root plus the working directory's root-relative prefix,
// so `vgen-check ./internal/...` works from any subdirectory.
func moduleRoot() (root, prefix string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			rel, err := filepath.Rel(d, dir)
			if err != nil || rel == "." {
				rel = ""
			}
			return d, filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// rebase prepends the working directory's module-relative prefix to a
// pattern typed relative to the working directory.
func rebase(prefix, pattern string) string {
	if prefix == "" {
		return pattern
	}
	p := filepath.ToSlash(pattern)
	if after, ok := cutDot(p); ok {
		if after == "" {
			return prefix
		}
		return prefix + "/" + after
	}
	return prefix + "/" + p
}

// cutDot strips a leading "." or "./" from a pattern.
func cutDot(p string) (string, bool) {
	switch {
	case p == ".":
		return "", true
	case len(p) >= 2 && p[:2] == "./":
		return p[2:], true
	}
	return p, false
}
