// Command vgen-sim compiles and simulates Verilog files on the built-in
// event-driven simulator (the reproduction's Icarus Verilog stand-in).
//
// Usage:
//
//	vgen-sim [-top tb] [-max-time N] [-compile-only] file.v [more.v ...]
//
// All files are concatenated into one compilation unit. Exit status: 0 on
// success, 1 on compile/simulation error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/sim"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

func main() {
	top := flag.String("top", "tb", "top-level module to elaborate")
	maxTime := flag.Uint64("max-time", 0, "simulation time horizon (0 = default)")
	compileOnly := flag.Bool("compile-only", false, "stop after the compile check")
	seed := flag.Int64("seed", 1, "$random seed")
	vcdPath := flag.String("vcd", "", "write a waveform dump to this file")
	interp := flag.Bool("interp", false, "evaluate by AST interpretation instead of compiled plans (debug)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vgen-sim [-top module] file.v [more.v ...]")
		os.Exit(2)
	}
	var parts []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vgen-sim: %v\n", err)
			os.Exit(1)
		}
		parts = append(parts, string(data))
	}
	src := strings.Join(parts, "\n")

	f, err := vlog.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgen-sim: %v\n", err)
		os.Exit(1)
	}
	if *compileOnly {
		if err := elab.CompileCheck(f); err != nil {
			fmt.Fprintf(os.Stderr, "vgen-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("compile check passed")
		return
	}
	d, err := elab.Elaborate(f, *top, elab.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgen-sim: %v\n", err)
		os.Exit(1)
	}
	res, err := sim.New(d, sim.Options{
		MaxTime: *maxTime, RandomSeed: *seed, DumpVCD: *vcdPath != "", Interpret: *interp,
	}).Run()
	fmt.Print(res.Output)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgen-sim: %v\n", err)
		os.Exit(1)
	}
	if *vcdPath != "" {
		if werr := os.WriteFile(*vcdPath, []byte(res.VCD), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "vgen-sim: %v\n", werr)
			os.Exit(1)
		}
	}
	fmt.Printf("-- simulation ended at time %d (finish=%v, steps=%d)\n",
		res.Time, res.Finished, res.Steps)
}
