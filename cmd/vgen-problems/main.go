// Command vgen-problems lists the 17-problem benchmark (Table II), dumps
// prompts and test benches, and self-checks every reference solution on
// the built-in simulator.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/problems"
)

func main() {
	num := flag.Int("n", 0, "problem number to dump (0 = list all)")
	level := flag.String("level", "L", "prompt level to dump: L, M or H")
	check := flag.Bool("check", false, "run every reference solution against its test bench")
	showTB := flag.Bool("tb", false, "include the test bench in the dump")
	flag.Parse()

	if *check {
		failed := 0
		for _, p := range problems.All() {
			o := eval.Evaluate(p, problems.LevelLow, p.RefBody)
			status := "PASS"
			if !o.Passes {
				status = "FAIL"
				failed++
			}
			fmt.Printf("problem %2d %-18s %s\n", p.Number, p.Slug, status)
		}
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	if *num == 0 {
		fmt.Printf("%-7s %-13s %s\n", "Prob.#", "Difficulty", "Description")
		for _, p := range problems.All() {
			fmt.Printf("%-7d %-13s %s\n", p.Number, p.Difficulty, p.Description)
		}
		return
	}

	p := problems.ByNumber(*num)
	if p == nil {
		fmt.Fprintf(os.Stderr, "no problem %d\n", *num)
		os.Exit(2)
	}
	var lvl problems.Level
	switch *level {
	case "L", "l":
		lvl = problems.LevelLow
	case "M", "m":
		lvl = problems.LevelMedium
	case "H", "h":
		lvl = problems.LevelHigh
	default:
		fmt.Fprintf(os.Stderr, "bad level %q\n", *level)
		os.Exit(2)
	}
	fmt.Printf("// Problem %d (%s), difficulty %s, prompt level %s\n",
		p.Number, p.Slug, p.Difficulty, lvl)
	fmt.Println(p.Prompt(lvl))
	fmt.Println("// --- reference completion ---")
	fmt.Println(p.RefBody)
	if *showTB {
		fmt.Println("// --- test bench ---")
		fmt.Println(p.Testbench)
	}
}
