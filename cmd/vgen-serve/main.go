// Command vgen-serve exposes any registered generation backend over the
// wire protocol (internal/remote), so a `vgen-eval -backend remote` on
// another machine — or the same one — draws its samples from this
// process. Samples are pure functions of their coordinates, so a remote
// sweep against vgen-serve reproduces the in-process run byte for byte
// (`make serve-check` proves it end to end).
//
// Usage:
//
//	vgen-serve [-backend family] [-seed N] [-corpus-files N] [-replay FILE]
//	           [-addr 127.0.0.1:0] [-auth-env NAME] [-url-file PATH]
//
// -addr defaults to an ephemeral loopback port; -url-file writes the
// bound URL (durably, via the atomic write path) once the listener is
// up, which is how scripts learn the port without racing the log line.
// -auth-env names an environment variable holding a bearer token that
// every client must present — the token itself never appears in argv.
// The server runs until SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/remote"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vgen-serve: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	backend := flag.String("backend", "family", "generation backend to serve, by registered name ('list' prints the registry)")
	seed := flag.Int64("seed", 1, "determinism seed for corpus, models and sampling")
	corpusFiles := flag.Int("corpus-files", 0, "synthetic corpus size (0 = default)")
	replay := flag.String("replay", "", "JSONL recording served by the replay backend (implies -backend replay)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address; port 0 picks an ephemeral port")
	authEnv := flag.String("auth-env", "", "environment variable holding the bearer token clients must present")
	urlFile := flag.String("url-file", "", "write the bound URL to this file once listening")
	flag.Parse()

	if *backend == "list" {
		for _, info := range gen.List() {
			fmt.Printf("%s\t%s\n", info.Name, info.Desc)
		}
		return
	}
	if *replay != "" && *backend == "family" {
		*backend = "replay"
	}
	if *backend == "remote" {
		// Proxying a proxy only adds a hop of failure modes.
		fail("-backend remote would chain the proxy onto itself; serve the real backend instead")
	}

	var token string
	if *authEnv != "" {
		token = os.Getenv(*authEnv)
		if token == "" {
			fail("auth: environment variable %s is empty or unset", *authEnv)
		}
	}

	b, err := gen.New(*backend, gen.Options{
		Family:     model.Config{Seed: *seed, CorpusFiles: *corpusFiles},
		ReplayPath: *replay,
	})
	if err != nil {
		fail("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := remote.NewServer(remote.NewHandler(b, remote.ServerOptions{AuthToken: token}))
	url, err := srv.Start(ctx, *addr)
	if err != nil {
		fail("listen: %v", err)
	}
	if *urlFile != "" {
		err := core.WriteFileAtomic(*urlFile, func(f *os.File) error {
			_, err := fmt.Fprintln(f, url)
			return err
		})
		if err != nil {
			srv.Close()
			fail("url-file: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "vgen-serve: serving %s (%s) at %s\n", *backend, b.Describe(), url)

	<-ctx.Done()
	if err := srv.Close(); err != nil {
		fail("shutdown: %v", err)
	}
}
