// Command vgen-corpus runs the Section III-A training-corpus pipeline:
// synthetic GitHub snapshot, filters, MinHash dedup, textbook extraction,
// and tokenizer training, printing the statistics the paper reports.
package main

import (
	"flag"
	"fmt"

	"repro/internal/bpe"
	"repro/internal/corpus"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed")
	files := flag.Int("files", 500, "synthetic GitHub snapshot size")
	books := flag.Int("books", 7, "synthetic textbook count")
	vocab := flag.Int("vocab", 512, "BPE vocabulary size")
	showSample := flag.Bool("sample", false, "print one curated file")
	flag.Parse()

	raw := corpus.GenerateGitHub(corpus.GitHubOptions{
		NumFiles: *files, DupRate: 0.12, NearDupRate: 0.08,
		NoiseRate: 0.06, OversizeRate: 0.04, Seed: *seed,
	})
	kept, st := corpus.Curate(raw, corpus.FilterOptions{})
	fmt.Println("GitHub pipeline (synthetic snapshot):")
	fmt.Printf("  raw files:           %d\n", st.Input)
	fmt.Printf("  dropped no-module:   %d\n", st.DroppedNoPair)
	fmt.Printf("  dropped >=20K chars: %d\n", st.DroppedTooBig)
	fmt.Printf("  dropped duplicates:  %d\n", st.DroppedDup)
	fmt.Printf("  kept:                %d files, %d bytes\n", st.Kept, st.KeptBytes)

	bk := corpus.GenerateBooks(corpus.BookOptions{NumBooks: *books, Seed: *seed + 1})
	wins := corpus.ExtractWindows(bk, corpus.WindowOptions{})
	fmt.Println("Textbook pipeline:")
	fmt.Printf("  books:               %d\n", len(bk))
	fmt.Printf("  windows kept:        %d\n", len(wins))

	var texts []string
	for _, f := range kept {
		texts = append(texts, corpus.NormalizeForLM(f.Content))
	}
	for _, w := range wins {
		texts = append(texts, corpus.NormalizeForLM(w))
	}
	tok := bpe.Train(texts, *vocab)
	fmt.Println("Tokenizer:")
	fmt.Printf("  vocabulary:          %d tokens (%d merges)\n", tok.VocabSize(), tok.NumMerges())
	if len(texts) > 0 {
		// token counts over the whole stream, one reused buffer
		var ids []int
		total, sample := 0, 0
		for i, t := range texts {
			ids = tok.EncodeInto(ids[:0], t)
			total += len(ids)
			if i == 0 {
				sample = len(ids)
			}
		}
		fmt.Printf("  sample compression:  %d bytes -> %d tokens\n", len(texts[0]), sample)
		fmt.Printf("  corpus tokens:       %d\n", total)
	}

	if *showSample && len(kept) > 0 {
		fmt.Println("\nSample curated file:")
		fmt.Println(kept[0].Content)
	}
}
