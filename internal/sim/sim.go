// Package sim implements an event-driven four-state simulator for
// elaborated Verilog designs. It follows the IEEE 1364 stratified event
// queue: an active region, an inactive (#0) region, a nonblocking-update
// region, and a time wheel for future events. Behavioural processes run as
// coroutine goroutines under a strict one-at-a-time handshake, so
// simulation is fully deterministic.
//
// In the reproduction pipeline this package plays the role Icarus Verilog
// plays in the paper: it executes each problem's test bench against a
// candidate completion and produces the output the harness inspects for
// the functional-correctness verdict.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/vcd"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
	"repro/internal/vnum"
)

// Limit errors reported by Run.
var (
	// ErrTimeLimit is returned when simulated time exceeds Options.MaxTime.
	ErrTimeLimit = errors.New("sim: simulation time limit exceeded")
	// ErrStepLimit is returned when the statement/evaluation budget is
	// exhausted (runaway loops in generated code).
	ErrStepLimit = errors.New("sim: execution step limit exceeded")
	// ErrOutputLimit is returned when simulation output exceeds the cap.
	ErrOutputLimit = errors.New("sim: output limit exceeded")
)

// RuntimeError is a fatal runtime condition (e.g. an always block that can
// never block again).
type RuntimeError struct {
	Pos vlog.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

// Options configure a simulation run.
type Options struct {
	MaxTime    uint64 // simulated time horizon; 0 = 10_000_000
	MaxSteps   int    // statement + assignment evaluation budget; 0 = 2_000_000
	MaxOutput  int    // bytes of captured $display output; 0 = 1 << 20
	RandomSeed int64  // seed for $random; 0 = 1
	DumpVCD    bool   // record a waveform from time 0 ($dumpvars also enables this at runtime)

	// Interpret evaluates expressions by AST interpretation instead of
	// compiled plans. The two engines are bit-for-bit equivalent; the
	// interpreter exists as the differential baseline and for debugging.
	Interpret bool

	// Plans, when non-nil, shares immutable compiled expression plans
	// across simulators (see PlanCache). Binding to runtime state stays
	// per-simulator, so output is byte-identical with or without sharing.
	Plans *PlanCache
}

func (o Options) maxTime() uint64 {
	if o.MaxTime == 0 {
		return 10_000_000
	}
	return o.MaxTime
}

func (o Options) maxSteps() int {
	if o.MaxSteps == 0 {
		return 2_000_000
	}
	return o.MaxSteps
}

func (o Options) maxOutput() int {
	if o.MaxOutput == 0 {
		return 1 << 20
	}
	return o.MaxOutput
}

// Result summarizes a completed simulation.
type Result struct {
	Output   string // captured $display/$write text
	Time     uint64 // final simulation time
	Finished bool   // true if $finish executed
	Steps    int    // statements + evaluations executed
	VCD      string // waveform dump, when enabled
}

// sigState is the runtime state of one signal.
type sigState struct {
	decl  *elab.Signal
	scope *elab.Inst
	val   vnum.Value
	// watchers notified on value changes
	cas   []*caState
	waits []*waitReg
}

// memState is the runtime state of one memory.
type memState struct {
	decl  *elab.Mem
	words []vnum.Value
}

// caState is a continuous assignment plus its cached dependency list and,
// in compiled mode, its bound RHS plan and target writer.
type caState struct {
	ca     *elab.CA
	queued bool
	rhs    compiledExpr
	write  compiledWrite
}

// waitReg links a blocked process to the signals it watches.
type waitReg struct {
	proc      *process
	items     []waitItem
	level     vlog.Expr    // non-nil for wait(cond)
	levelPlan compiledExpr // compiled level condition, nil under Interpret
	scope     *elab.Inst
	active    bool
}

// waitItem is one event-control term with its last sampled value. plan is
// the bound expression plan (nil under Interpret).
type waitItem struct {
	edge vlog.EdgeKind
	expr vlog.Expr
	plan compiledExpr
	last vnum.Value
}

// Simulator executes one elaborated design.
type Simulator struct {
	design *elab.Design
	opts   Options

	signals map[*elab.Inst]map[string]*sigState
	mems    map[*elab.Inst]map[string]*memState
	cas     []*caState
	procs   []*process

	time       uint64
	active     []activation
	activeHead int // consumed prefix of active; avoids reslicing away capacity
	inactive   []activation
	nba        []nbaUpdate
	future     futureQueue

	out       strings.Builder
	steps     int
	finished  bool
	rng       uint64
	futureSeq int

	wave      *vcd.Writer
	waveIDs   map[*sigState]string
	waveOrder []*sigState

	monitor *monitorState

	// starCache holds the @* sensitivity list per event control, as stable
	// synthesized Ident nodes so their compiled plans cache across
	// re-registrations of the same block.
	starCache map[*vlog.EventCtrl][]*vlog.Ident

	// compiled-plan state: bound plans plus memos for the static facts the
	// inner loop would otherwise re-derive (case-label widths, part-select
	// bounds, lvalue widths, assignment and wait-site bindings). Unused
	// under Options.Interpret.
	plans      map[planKey]compiledExpr
	widthMemo  map[exprScope]int
	boundsMemo map[exprScope]boundsRes
	lvwMemo    map[exprScope]int
	assigns    map[stmtKey]*assignPlan
	waitSites  map[stmtKey]*waitSite
	levelSites map[exprScope]*levelSite
}

// activation is one schedulable work item in the active region.
type activation struct {
	ca   *caState
	proc *process
}

// nbaUpdate applies one nonblocking assignment.
type nbaUpdate struct {
	apply func()
}

// monitorState implements $monitor: at the end of every time step in
// which any monitored value changed, the format line prints again
// (postponed region of the stratified queue).
type monitorState struct {
	args  []vlog.Expr
	scope *elab.Inst
	last  []vnum.Value
	fresh bool
}

// triggerValues evaluates the arguments that participate in change
// detection: everything except string literals and $time/$stime (the time
// advancing does not by itself re-trigger a monitor).
func (s *Simulator) triggerValues(m *monitorState) []vnum.Value {
	var vals []vnum.Value
	for _, a := range m.args {
		switch n := a.(type) {
		case *vlog.Str:
			continue
		case *vlog.SysCallExpr:
			if n.Name == "$time" || n.Name == "$stime" {
				continue
			}
		}
		vals = append(vals, s.eval(a, m.scope, 0))
	}
	return vals
}

// futureEntry is a time-wheel slot.
type futureEntry struct {
	time uint64
	seq  int
	act  activation
}

type futureQueue []*futureEntry

func (q futureQueue) Len() int { return len(q) }
func (q futureQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q futureQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *futureQueue) Push(x any)   { *q = append(*q, x.(*futureEntry)) }
func (q *futureQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// New prepares a simulator for the design.
func New(d *elab.Design, opts Options) *Simulator {
	s := &Simulator{
		design:     d,
		opts:       opts,
		signals:    map[*elab.Inst]map[string]*sigState{},
		mems:       map[*elab.Inst]map[string]*memState{},
		rng:        uint64(opts.RandomSeed),
		starCache:  map[*vlog.EventCtrl][]*vlog.Ident{},
		plans:      map[planKey]compiledExpr{},
		widthMemo:  map[exprScope]int{},
		boundsMemo: map[exprScope]boundsRes{},
		lvwMemo:    map[exprScope]int{},
		assigns:    map[stmtKey]*assignPlan{},
		waitSites:  map[stmtKey]*waitSite{},
		levelSites: map[exprScope]*levelSite{},
	}
	if s.rng == 0 {
		s.rng = 1
	}
	s.initInstance(d.Top)
	for _, ca := range d.Assigns {
		cs := &caState{ca: ca}
		s.cas = append(s.cas, cs)
		s.registerCADeps(cs)
	}
	for _, p := range d.Procs {
		s.procs = append(s.procs, newProcess(s, p))
	}
	return s
}

// Reset returns the simulator to its pre-Run state so the same design can
// run again without rebuilding runtime objects or recompiling plans:
// signal/memory/assignment state objects, compiled plans, bound writers,
// and all static memos are preserved (the closures captured them), while
// values, scheduler queues, output, and processes start fresh. The result
// is byte-identical to a newly constructed simulator for the same design.
// opts must agree with the construction options on Interpret and Plans;
// seeds and limits may differ.
func (s *Simulator) Reset(opts Options) {
	s.opts = opts
	var walk func(in *elab.Inst)
	walk = func(in *elab.Inst) {
		// value resets are per-signal and order-independent, mirroring the
		// map traversal initInstance uses to build this state
		for _, st := range s.signals[in] {
			v := vnum.AllX(st.decl.Width)
			if st.decl.Signed {
				v = v.AsSigned()
			}
			st.val = v
			st.waits = st.waits[:0]
		}
		for _, ms := range s.mems[in] {
			for i := range ms.words {
				w := vnum.AllX(ms.decl.Width)
				if ms.decl.Signed {
					w = w.AsSigned()
				}
				ms.words[i] = w
			}
		}
		for _, c := range s.design.ChildrenOf(in) {
			walk(c)
		}
	}
	walk(s.design.Top)
	for _, ca := range s.cas {
		ca.queued = false
	}
	for i, p := range s.procs {
		p.kill()
		s.procs[i] = newProcess(s, p.proc)
	}
	s.time = 0
	s.active = s.active[:0]
	s.activeHead = 0
	s.inactive = s.inactive[:0]
	s.nba = nil
	s.future = s.future[:0]
	s.futureSeq = 0
	s.out.Reset()
	s.steps = 0
	s.finished = false
	s.rng = uint64(opts.RandomSeed)
	if s.rng == 0 {
		s.rng = 1
	}
	s.wave = nil
	s.waveIDs = nil
	s.waveOrder = nil
	s.monitor = nil
}

// registerCADeps subscribes a continuous assignment to every signal its
// right-hand side (and any lvalue index expressions) reads.
func (s *Simulator) registerCADeps(cs *caState) {
	deps := map[*sigState]bool{}
	for _, name := range collectIdents(cs.ca.RHS, nil) {
		if st := s.sig(cs.ca.RScope, name); st != nil {
			deps[st] = true
		}
	}
	// index expressions on the LHS are reads too, but the written signal
	// itself must not retrigger its own driver
	var writtenName string
	if id, ok := rootIdent(cs.ca.LHS); ok {
		writtenName = id
	}
	for _, name := range lvalueReadIdents(cs.ca.LHS) {
		if name == writtenName {
			continue
		}
		if st := s.sig(cs.ca.LScope, name); st != nil {
			deps[st] = true
		}
	}
	for st := range deps {
		st.cas = append(st.cas, cs)
	}
}

func (s *Simulator) initInstance(in *elab.Inst) {
	sigs := map[string]*sigState{}
	for name, decl := range in.Signals {
		v := vnum.AllX(decl.Width)
		if decl.Signed {
			v = v.AsSigned()
		}
		sigs[name] = &sigState{decl: decl, scope: in, val: v}
	}
	s.signals[in] = sigs
	mems := map[string]*memState{}
	for name, decl := range in.Mems {
		words := make([]vnum.Value, decl.Depth)
		for i := range words {
			w := vnum.AllX(decl.Width)
			if decl.Signed {
				w = w.AsSigned()
			}
			words[i] = w
		}
		mems[name] = &memState{decl: decl, words: words}
	}
	s.mems[in] = mems
	for _, c := range s.design.ChildrenOf(in) {
		s.initInstance(c)
	}
}

func (s *Simulator) sig(in *elab.Inst, name string) *sigState {
	return s.signals[in][name]
}

func (s *Simulator) mem(in *elab.Inst, name string) *memState {
	return s.mems[in][name]
}

// charge consumes one unit of the step budget.
func (s *Simulator) charge() {
	s.steps++
	if s.steps > s.opts.maxSteps() {
		panic(simAbort{err: ErrStepLimit})
	}
}

// simAbort unwinds a process or the scheduler on fatal conditions.
type simAbort struct {
	err error
}

// write appends display output.
func (s *Simulator) write(text string) {
	if s.out.Len()+len(text) > s.opts.maxOutput() {
		panic(simAbort{err: ErrOutputLimit})
	}
	s.out.WriteString(text)
}

// Run executes the simulation to completion ($finish, event starvation, or
// a limit). The Result is valid even when err is non-nil: it reflects the
// state at the point the limit fired.
func (s *Simulator) Run() (res Result, err error) {
	defer s.killAll()
	defer func() {
		if r := recover(); r != nil {
			if ab, ok := r.(simAbort); ok {
				res = s.result()
				err = ab.err
				return
			}
			panic(r)
		}
	}()

	if s.opts.DumpVCD {
		s.enableVCD()
	}

	// declaration-time reg initializers
	for _, ri := range s.design.RegInits {
		v, cerr := elab.ConstEval(ri.Value, ri.Scope)
		if cerr != nil {
			// non-constant initializers evaluate against initial state
			v = s.eval(ri.Value, ri.Scope, 0)
		}
		st := s.sig(ri.Scope, ri.Name)
		s.setSignal(st, v)
	}

	// schedule initial evaluation of every continuous assignment, then all
	// processes
	for _, ca := range s.cas {
		s.queueCA(ca)
	}
	for _, p := range s.procs {
		s.active = append(s.active, activation{proc: p})
	}

	for !s.finished {
		if s.activeHead > 0 && s.activeHead == len(s.active) {
			// drained: recycle the backing array instead of reslicing it away
			s.active = s.active[:0]
			s.activeHead = 0
		}
		switch {
		case s.activeHead < len(s.active):
			a := s.active[s.activeHead]
			s.activeHead++
			s.dispatch(a)
		case len(s.inactive) > 0:
			s.active = append(s.active, s.inactive...)
			s.inactive = s.inactive[:0]
		case len(s.nba) > 0:
			updates := s.nba
			s.nba = nil
			for _, u := range updates {
				u.apply()
			}
		case s.future.Len() > 0:
			s.runMonitor() // postponed region: end of the current instant
			e := heap.Pop(&s.future).(*futureEntry)
			if e.time > s.opts.maxTime() {
				return s.result(), ErrTimeLimit
			}
			s.time = e.time
			s.active = append(s.active, e.act)
			// pull everything else scheduled for the same instant
			for s.future.Len() > 0 && s.future[0].time == e.time {
				e2 := heap.Pop(&s.future).(*futureEntry)
				s.active = append(s.active, e2.act)
			}
		default:
			s.runMonitor()
			return s.result(), nil // event starvation: normal end
		}
	}
	return s.result(), nil
}

// runMonitor prints the $monitor line when any monitored value changed
// since the last instant (or on first arming).
func (s *Simulator) runMonitor() {
	m := s.monitor
	if m == nil {
		return
	}
	vals := s.triggerValues(m)
	changed := m.fresh || len(vals) != len(m.last)
	if !changed {
		for i := range vals {
			if !vals[i].Equal(m.last[i]) {
				changed = true
				break
			}
		}
	}
	if changed {
		s.write(s.formatArgs(m.args, m.scope) + "\n")
		m.last = vals
		m.fresh = false
	}
}

func (s *Simulator) result() Result {
	r := Result{Output: s.out.String(), Time: s.time, Finished: s.finished, Steps: s.steps}
	if s.wave != nil {
		r.VCD = s.wave.String()
	}
	return r
}

// enableVCD starts waveform collection: declares every signal in the
// hierarchy and records current values at the current time.
func (s *Simulator) enableVCD() {
	if s.wave != nil {
		return
	}
	s.wave = vcd.NewWriter("1ns")
	s.waveIDs = map[*sigState]string{}
	var declare func(in *elab.Inst, name string)
	declare = func(in *elab.Inst, name string) {
		s.wave.BeginScope(name)
		names := make([]string, 0, len(s.signals[in]))
		for n := range s.signals[in] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			st := s.signals[in][n]
			kind := "wire"
			if st.decl.IsReg {
				kind = "reg"
			}
			s.waveIDs[st] = s.wave.DeclareVar(kind, st.decl.Width, n)
			s.waveOrder = append(s.waveOrder, st)
		}
		for _, c := range s.design.ChildrenOf(in) {
			leaf := c.Path
			if i := strings.LastIndexByte(leaf, '.'); i >= 0 {
				leaf = leaf[i+1:]
			}
			declare(c, leaf)
		}
		s.wave.EndScope()
	}
	top := s.design.Top.Path
	if top == "" {
		top = s.design.Top.Mod.Name
	}
	declare(s.design.Top, top)
	s.wave.EndDefinitions()
	for _, st := range s.waveOrder {
		s.wave.Change(s.waveIDs[st], s.time, st.val.BinString())
	}
}

func (s *Simulator) dispatch(a activation) {
	if a.ca != nil {
		a.ca.queued = false
		s.evalCA(a.ca)
		return
	}
	if a.proc != nil && !a.proc.done {
		a.proc.stepOnce()
	}
}

// queueCA schedules a continuous assignment evaluation if not already
// pending.
func (s *Simulator) queueCA(ca *caState) {
	if ca.queued {
		return
	}
	ca.queued = true
	s.active = append(s.active, activation{ca: ca})
}

// scheduleFuture puts an activation on the time wheel at now+delay.
func (s *Simulator) scheduleFuture(delay uint64, act activation) {
	if delay == 0 {
		s.inactive = append(s.inactive, act)
		return
	}
	s.futureSeq++
	heap.Push(&s.future, &futureEntry{time: s.time + delay, seq: s.futureSeq, act: act})
}

// evalCA re-evaluates one continuous assignment and drives its target. In
// compiled mode the RHS plan and target writer bind on first evaluation
// and stick to the caState.
func (s *Simulator) evalCA(ca *caState) {
	s.charge()
	if s.opts.Interpret {
		w := s.lvalueWidth(ca.ca.LHS, ca.ca.LScope)
		v := s.eval(ca.ca.RHS, ca.ca.RScope, w)
		s.writeLValue(ca.ca.LHS, ca.ca.LScope, v, false)
		return
	}
	if ca.rhs == nil {
		w := s.lvalueWidth(ca.ca.LHS, ca.ca.LScope)
		ca.rhs = s.planFor(ca.ca.RHS, ca.ca.RScope, w)
		ca.write = s.bindLValue(ca.ca.LHS, ca.ca.LScope)
	}
	ca.write(ca.rhs())
}

// setSignal updates a signal value and propagates change events.
func (s *Simulator) setSignal(st *sigState, v vnum.Value) {
	// normalize to the declaration's width and signedness; values already
	// in shape (the common case with compiled plans) skip the clones —
	// Values are immutable, so sharing is safe
	if v.Width() != st.decl.Width {
		v = v.Resize(st.decl.Width)
	}
	if v.Signed() != st.decl.Signed {
		if st.decl.Signed {
			v = v.AsSigned()
		} else {
			v = v.AsUnsigned()
		}
	}
	if v.Equal(st.val) {
		return
	}
	st.val = v
	if s.wave != nil {
		if id, ok := s.waveIDs[st]; ok {
			s.wave.Change(id, s.time, v.BinString())
		}
	}
	// wake continuous assignments
	for _, ca := range st.cas {
		s.queueCA(ca)
	}
	// re-check blocked processes
	if len(st.waits) > 0 {
		regs := st.waits
		for _, wr := range regs {
			if wr.active {
				s.checkWait(wr)
			}
		}
		// compact dead registrations
		live := st.waits[:0]
		for _, wr := range regs {
			if wr.active {
				live = append(live, wr)
			}
		}
		st.waits = live
	}
}

// checkWait re-evaluates a blocked process's wait condition and wakes the
// process when it triggers.
func (s *Simulator) checkWait(wr *waitReg) {
	if wr.level != nil {
		var t bool
		if wr.levelPlan != nil {
			t = wr.levelPlan().IsTrue()
		} else {
			t = s.eval(wr.level, wr.scope, 0).IsTrue()
		}
		if t {
			s.wake(wr)
		}
		return
	}
	for i := range wr.items {
		it := &wr.items[i]
		var now vnum.Value
		if it.plan != nil {
			now = it.plan()
		} else {
			now = s.eval(it.expr, wr.scope, 0)
		}
		old := it.last
		it.last = now
		if triggered(it.edge, old, now) {
			s.wake(wr)
			return
		}
	}
}

// triggered implements the LRM edge tables on the LSB of the expression.
func triggered(edge vlog.EdgeKind, old, now vnum.Value) bool {
	if old.Equal(now) {
		return false
	}
	switch edge {
	case vlog.EdgeAny:
		return true
	case vlog.EdgePos:
		o, n := old.Bit(0), now.Bit(0)
		if o == n {
			return false
		}
		return (o == vnum.B0 && n != vnum.B0) || (o != vnum.B1 && n == vnum.B1)
	default: // EdgeNeg
		o, n := old.Bit(0), now.Bit(0)
		if o == n {
			return false
		}
		return (o == vnum.B1 && n != vnum.B1) || (o != vnum.B0 && n == vnum.B0)
	}
}

func (s *Simulator) wake(wr *waitReg) {
	if !wr.active {
		return
	}
	wr.active = false
	s.active = append(s.active, activation{proc: wr.proc})
}

// random is a xorshift64 $random (deterministic per seed).
func (s *Simulator) random() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

func (s *Simulator) killAll() {
	for _, p := range s.procs {
		p.kill()
	}
}
