package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// TestManyProcessesStress runs 100 concurrent always blocks plus a clock
// generator through thousands of events, checking the coroutine handshake
// and wakeup machinery under load (and that no goroutines deadlock).
func TestManyProcessesStress(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("module m;\n  reg clk;\n  integer total;\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "  integer c%d;\n", i)
		fmt.Fprintf(&sb, "  always @(posedge clk) c%d = c%d + 1;\n", i, i)
	}
	sb.WriteString("  initial begin\n    clk = 0;\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "    c%d = 0;\n", i)
	}
	sb.WriteString("  end\n")
	sb.WriteString("  always #5 clk = ~clk;\n")
	sb.WriteString(`  initial begin
    repeat (50) @(posedge clk);
    total = c0 + c50 + c99;
    $display("total=%d", total);
    $finish;
  end
`)
	sb.WriteString("endmodule\n")

	f, err := vlog.Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(f, "m", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(d, Options{}).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// every counter saw the same 50 posedges; the sampling initial block
	// runs before or after the counters within the 50th edge, so accept
	// both 147 (3*49) and 150 (3*50)
	if res.Output != "total=150\n" && res.Output != "total=147\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

// TestDeterministicOutputAcrossRuns re-simulates an order-sensitive design
// several times and requires identical output (scheduler determinism).
func TestDeterministicOutputAcrossRuns(t *testing.T) {
	src := `module m;
  reg clk;
  integer a, b;
  always @(posedge clk) a = a + 1;
  always @(posedge clk) b = a; // reads a in the same region: order-sensitive
  initial begin clk = 0; a = 0; b = 0; end
  always #5 clk = ~clk;
  initial begin
    repeat (10) @(posedge clk);
    #1 $display("a=%d b=%d", a, b);
    $finish;
  end
endmodule`
	f, _ := vlog.Parse(src)
	var first string
	for i := 0; i < 5; i++ {
		d, err := elab.Elaborate(f, "m", elab.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := New(d, Options{}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Output
			continue
		}
		if res.Output != first {
			t.Fatalf("run %d output %q differs from %q", i, res.Output, first)
		}
	}
}
