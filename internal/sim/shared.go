package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// PlanCache shares immutable compiled expression plans (elab.Plan trees)
// across Simulators. Plans are pure functions of (expression node,
// instance, width, mode); AST nodes and skeleton-shared Inst objects are
// pointer-stable across evaluations of the same testbench, so worker N's
// simulation reuses the plan worker M compiled. Only the compile step is
// shared — binding a plan to runtime state (closures over *sigState)
// stays per-Simulator, so sharing cannot leak state between runs and the
// bound closure tree is identical whether the plan came from the cache or
// from a fresh CompileExpr call. Byte-identity of simulation output is
// therefore structural, not incidental.
//
// The cache is bounded by accounted bytes with FIFO eviction, mirroring
// the outcome cache's CacheBytes discipline: the budget is a bound, not a
// profile. Evicting an entry another simulator still uses is harmless
// (plans are immutable; a later miss recompiles an equivalent plan), so
// eviction never affects output.
type PlanCache struct {
	hits   atomic.Uint64
	misses atomic.Uint64

	mu      sync.RWMutex
	budget  int64 // <0 = unbounded
	plans   map[planKey]*elab.Plan
	stars   map[*vlog.EventCtrl][]*vlog.Ident
	order   []sharedEntry // FIFO insertion order; order[head:] is live
	head    int
	bytes   int64
	evicted uint64
}

// sharedEntry is one FIFO accounting record: a plan entry, or (when star
// is non-nil) a synthesized @* sensitivity list.
type sharedEntry struct {
	pk   planKey
	star *vlog.EventCtrl
	cost int64
}

// DefaultPlanCacheBytes is the default shared plan cache budget. Plan
// trees are small (a few hundred bytes each), so 4 MiB holds the
// compiled testbench cones of every problem/level plus a working set of
// candidate cones. The bound is kept modest on purpose: resident plan
// trees are pointer-dense and the collector re-marks them every cycle,
// so an oversized cache taxes the whole process even when it never hits.
const DefaultPlanCacheBytes = 4 << 20

// planNodeCost is the accounted size of one plan node: the Plan struct,
// its operand slice headers, and its share of map and FIFO bookkeeping,
// calibrated against live-heap measurements of resident plan trees.
const planNodeCost = 288

// NewPlanCache returns a shared plan cache with the given byte budget:
// 0 selects DefaultPlanCacheBytes, negative disables the bound.
func NewPlanCache(budget int64) *PlanCache {
	if budget == 0 {
		budget = DefaultPlanCacheBytes
	}
	return &PlanCache{
		budget: budget,
		plans:  map[planKey]*elab.Plan{},
		stars:  map[*vlog.EventCtrl][]*vlog.Ident{},
	}
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Bytes     int64
	Entries   int
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted,
		Bytes:     c.bytes,
		Entries:   len(c.plans) + len(c.stars),
	}
}

// plan returns the shared compiled plan for k, compiling it outside the
// lock on a miss. The first inserted plan wins so all simulators bind the
// same tree.
func (c *PlanCache) plan(k planKey, compile func() *elab.Plan) *elab.Plan {
	c.mu.RLock()
	p, ok := c.plans[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return p
	}
	p = compile()
	c.misses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if q, ok := c.plans[k]; ok {
		return q
	}
	cost := planCost(p)
	c.plans[k] = p
	c.order = append(c.order, sharedEntry{pk: k, cost: cost})
	c.bytes += cost
	c.evictLocked()
	return p
}

// starIdents returns the shared synthesized @* sensitivity idents for an
// event control. Sharing the Ident nodes keeps their plan keys stable
// across simulators, so the per-ident plans also share.
func (c *PlanCache) starIdents(n *vlog.EventCtrl, build func() []*vlog.Ident) []*vlog.Ident {
	c.mu.RLock()
	ids, ok := c.stars[n]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return ids
	}
	ids = build()
	c.misses.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if q, ok := c.stars[n]; ok {
		return q
	}
	cost := int64(len(ids))*64 + 64
	c.stars[n] = ids
	c.order = append(c.order, sharedEntry{star: n, cost: cost})
	c.bytes += cost
	c.evictLocked()
	return ids
}

// evictLocked drops entries oldest-first until the budget holds. Callers
// hold mu. Eviction is invisible to correctness: a re-miss recompiles an
// equivalent immutable plan.
func (c *PlanCache) evictLocked() {
	if c.budget < 0 {
		return
	}
	for c.bytes > c.budget && c.head < len(c.order) {
		e := c.order[c.head]
		c.head++
		if e.star != nil {
			delete(c.stars, e.star)
		} else {
			delete(c.plans, e.pk)
		}
		c.bytes -= e.cost
		c.evicted++
	}
	switch {
	case c.head == len(c.order):
		c.order = c.order[:0]
		c.head = 0
	case c.head > 4096 && c.head*2 > len(c.order):
		c.order = append(c.order[:0], c.order[c.head:]...)
		c.head = 0
	}
}

// planCost estimates the accounted bytes of one plan tree.
func planCost(p *elab.Plan) int64 {
	if p == nil {
		return 0
	}
	cost := int64(planNodeCost)
	cost += planCost(p.X) + planCost(p.Y) + planCost(p.Z)
	for _, q := range p.Parts {
		cost += planCost(q)
	}
	return cost
}
