package sim

import (
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
	"repro/internal/vnum"
)

// This file binds elaboration-time expression plans (elab.Plan) to
// executable closures over this simulator's runtime state. A bound plan
// reads signal values through captured *sigState pointers and runs
// pre-resolved vnum operations; nothing in the closure tree re-derives
// widths, looks up names, or type-switches over the AST. Binding happens
// once per (expression, instance, context) and is cached on the
// Simulator, so steady-state evaluation is one map hit plus straight-line
// closure calls.
//
// Bound plans are bit-for-bit equivalent to the interpreter in eval.go,
// including sub-expression evaluation order (observable through $random)
// and the signedness flags %d formatting reads. Options.Interpret selects
// the interpreter instead; the differential tests compare the two.

// compiledExpr is an executable expression plan.
type compiledExpr func() vnum.Value

// Plan lookup modes: a context-width evaluation (the eval entry point) or
// a fixed-width evaluation with forced signedness (case labels).
const (
	planCtx uint8 = iota
	planFixedU
	planFixedS
)

// planKey identifies one compiled plan: AST nodes are unique per syntactic
// position, so (expr, instance, width, mode) pins the evaluation context.
type planKey struct {
	e    vlog.Expr
	in   *elab.Inst
	w    int
	mode uint8
}

// exprScope keys the static memos (case-label widths, part-select bounds,
// lvalue widths).
type exprScope struct {
	e  vlog.Expr
	in *elab.Inst
}

type boundsRes struct {
	msb, lsb int
	ok       bool
}

// planFor returns the compiled plan for evaluating e with assignment
// context ctx, building and caching it on first use. With a shared
// PlanCache, the immutable compile step is fetched from (or published to)
// the cache and only the binding to this simulator's state runs locally.
func (s *Simulator) planFor(e vlog.Expr, in *elab.Inst, ctx int) compiledExpr {
	k := planKey{e: e, in: in, w: ctx, mode: planCtx}
	if c, ok := s.plans[k]; ok {
		return c
	}
	var p *elab.Plan
	if s.opts.Plans != nil {
		p = s.opts.Plans.plan(k, func() *elab.Plan { return elab.CompileExpr(e, in, ctx) })
	} else {
		p = elab.CompileExpr(e, in, ctx)
	}
	c := s.bind(p)
	s.plans[k] = c
	return c
}

// planSized returns the compiled plan for evaluating e at a fixed width
// and signedness (case labels).
func (s *Simulator) planSized(e vlog.Expr, in *elab.Inst, w int, sg bool) compiledExpr {
	mode := planFixedU
	if sg {
		mode = planFixedS
	}
	k := planKey{e: e, in: in, w: w, mode: mode}
	if c, ok := s.plans[k]; ok {
		return c
	}
	var p *elab.Plan
	if s.opts.Plans != nil {
		p = s.opts.Plans.plan(k, func() *elab.Plan { return elab.CompileExprSized(e, in, w, sg) })
	} else {
		p = elab.CompileExprSized(e, in, w, sg)
	}
	c := s.bind(p)
	s.plans[k] = c
	return c
}

// bind turns one plan node into a closure over runtime state. Every
// closure returns a value already at the node's (Width, Signed) context.
func (s *Simulator) bind(p *elab.Plan) compiledExpr {
	w, sg := p.Width, p.Signed
	// wrap applies the node context to a raw result whose static type is
	// (rawW, rawSigned); it is a no-op closure when they already match.
	wrap := func(raw compiledExpr, rawW int, rawSigned bool) compiledExpr {
		if rawW == w && rawSigned == sg {
			return raw
		}
		return func() vnum.Value { return raw().ResizeAs(w, sg) }
	}

	switch p.Op {
	case elab.PlanConst:
		v := p.Const
		return func() vnum.Value { return v }

	case elab.PlanSignal:
		st := s.sig(p.Scope, p.Sig.Name)
		if st == nil { // unreachable after elaboration; defensive
			v := vnum.AllX(w)
			return func() vnum.Value { return v }
		}
		// setSignal keeps st.val normalized to the declaration's width and
		// signedness, so the matching case returns the live value directly.
		return wrap(func() vnum.Value { return st.val }, st.decl.Width, st.decl.Signed)

	case elab.PlanMemRead:
		ms := s.mem(p.Scope, p.Mem.Name)
		idx := s.bind(p.X)
		bad := vnum.AllX(p.Mem.Width).ResizeAs(w, sg)
		if ms == nil { // defensive
			return func() vnum.Value { return bad }
		}
		return func() vnum.Value {
			iv := idx()
			addr, ok := iv.Uint64()
			if !iv.IsKnown() || !ok {
				return bad
			}
			wi, inRange := ms.decl.WordIndex(int(addr))
			if !inRange {
				return bad
			}
			// stored words keep the signedness of the value written, so the
			// context resize cannot be hoisted out of the closure
			return ms.words[wi].ResizeAs(w, sg)
		}

	case elab.PlanBitSel:
		base := s.bind(p.X)
		idx := s.bind(p.Y)
		bad := vnum.AllX(1).ResizeAs(w, sg)
		fit := func(b vnum.Bit) vnum.Value { return vnum.FromBits(b).ResizeAs(w, sg) }
		if w == 1 && !sg {
			fit = func(b vnum.Bit) vnum.Value { return vnum.FromBits(b) }
		}
		sig := p.Sig
		return func() vnum.Value {
			b := base()
			iv := idx()
			bi, ok := iv.Uint64()
			if !iv.IsKnown() || !ok {
				return bad
			}
			if sig != nil {
				off, inRange := sig.Offset(int(bi))
				if !inRange {
					return bad
				}
				return fit(b.Bit(off))
			}
			if bi >= uint64(b.Width()) {
				return bad
			}
			return fit(b.Bit(int(bi)))
		}

	case elab.PlanPartSel:
		base := s.bind(p.X)
		if !p.OK {
			// offsets outside the declared range: the base is still
			// evaluated (it may draw $random), the result is fixed all-x
			bad := vnum.AllX(p.Span).ResizeAs(w, sg)
			return func() vnum.Value {
				base()
				return bad
			}
		}
		hi, lo := p.A, p.B
		return wrap(func() vnum.Value { return base().Slice(hi, lo) }, p.Span, false)

	case elab.PlanUnary:
		x := s.bind(p.X)
		switch p.Text {
		case "-":
			return func() vnum.Value { return vnum.Neg(x()) }
		case "~":
			return func() vnum.Value { return vnum.Not(x()) }
		default: // "+"
			return x
		}

	case elab.PlanReduce:
		x := s.bind(p.X)
		var f func(vnum.Value) vnum.Value
		switch p.Text {
		case "!":
			f = vnum.LogNot
		case "&":
			f = vnum.RedAnd
		case "|":
			f = vnum.RedOr
		case "^":
			f = vnum.RedXor
		case "~&":
			f = vnum.RedNand
		case "~|":
			f = vnum.RedNor
		default: // ~^ ^~
			f = vnum.RedXnor
		}
		return wrap(func() vnum.Value { return f(x()) }, 1, false)

	case elab.PlanBinary:
		x, y := s.bind(p.X), s.bind(p.Y)
		var f func(a, b vnum.Value) vnum.Value
		switch p.Text {
		case "+":
			f = vnum.AddPresized
		case "-":
			f = vnum.SubPresized
		case "*":
			f = vnum.MulPresized
		case "/":
			f = vnum.Div
		case "%":
			f = vnum.Mod
		case "&":
			f = vnum.AndPresized
		case "|":
			f = vnum.OrPresized
		case "^":
			f = vnum.XorPresized
		default: // ~^ ^~
			f = vnum.XnorPresized
		}
		return func() vnum.Value {
			a := x()
			return f(a, y())
		}

	case elab.PlanShift:
		x, y := s.bind(p.X), s.bind(p.Y)
		var f func(a, b vnum.Value) vnum.Value
		switch p.Text {
		case "<<", "<<<":
			f = vnum.Shl
		case ">>":
			f = vnum.Shr
		default: // ">>>"
			f = vnum.Sshr
		}
		return func() vnum.Value {
			a := x()
			return f(a, y())
		}

	case elab.PlanPow:
		x, y := s.bind(p.X), s.bind(p.Y)
		return func() vnum.Value {
			a := x()
			return vnum.Pow(a, y())
		}

	case elab.PlanLogical:
		x, y := s.bind(p.X), s.bind(p.Y)
		f := vnum.LogAnd
		if p.Text == "||" {
			f = vnum.LogOr
		}
		return wrap(func() vnum.Value {
			a := x()
			return f(a, y())
		}, 1, false)

	case elab.PlanCompare:
		x, y := s.bind(p.X), s.bind(p.Y)
		var f func(a, b vnum.Value) vnum.Value
		switch p.Text {
		case "==":
			f = vnum.Eq
		case "!=":
			f = vnum.Neq
		case "===":
			f = vnum.CaseEq
		case "!==":
			f = vnum.CaseNeq
		case "<":
			f = vnum.Lt
		case "<=":
			f = vnum.Le
		case ">":
			f = vnum.Gt
		default: // ">="
			f = vnum.Ge
		}
		return wrap(func() vnum.Value {
			a := x()
			return f(a, y())
		}, 1, false)

	case elab.PlanTernary:
		c, t, e := s.bind(p.X), s.bind(p.Y), s.bind(p.Z)
		return func() vnum.Value {
			switch c().Truth() {
			case vnum.B1:
				return t()
			case vnum.B0:
				return e()
			default:
				// LRM: merge both branches bitwise; equal known bits survive
				a := t()
				b := e()
				m := vnum.TernaryMerge(a, b, w)
				if !sg {
					return m
				}
				return m.ResizeAs(w, sg)
			}
		}

	case elab.PlanConcat:
		parts := make([]compiledExpr, len(p.Parts))
		rawW := 0
		for i, sub := range p.Parts {
			parts[i] = s.bind(sub)
			rawW += sub.Width
		}
		if rawW == 0 {
			rawW = 1
		}
		// expression evaluation is atomic between process block points, so
		// one scratch buffer per closure is safe
		scratch := make([]vnum.Value, len(parts))
		return wrap(func() vnum.Value {
			for i, f := range parts {
				scratch[i] = f()
			}
			return vnum.Concat(scratch...)
		}, rawW, false)

	case elab.PlanRepl:
		x := s.bind(p.X)
		cnt := p.A
		rawW := cnt * p.X.Width
		if cnt <= 0 {
			rawW = 1
		}
		return wrap(func() vnum.Value { return vnum.Replicate(cnt, x()) }, rawW, false)

	case elab.PlanSysFunc:
		switch p.Text {
		case "$time", "$stime":
			return wrap(func() vnum.Value { return vnum.FromUint64(64, s.time) }, 64, false)
		case "$random":
			return wrap(func() vnum.Value {
				return vnum.FromUint64(32, s.random()&0xFFFFFFFF).AsSigned()
			}, 32, true)
		case "$urandom":
			return wrap(func() vnum.Value {
				return vnum.FromUint64(32, s.random()&0xFFFFFFFF)
			}, 32, false)
		case "$signed":
			x := s.bind(p.X)
			return wrap(func() vnum.Value { return x().AsSigned() }, p.X.Width, true)
		case "$unsigned":
			x := s.bind(p.X)
			return wrap(func() vnum.Value { return x().AsUnsigned() }, p.X.Width, false)
		case "$clog2":
			x := s.bind(p.X)
			return wrap(func() vnum.Value {
				v, ok := x().Uint64()
				if !ok {
					return vnum.AllX(32)
				}
				r := 0
				for (uint64(1) << uint(r)) < v {
					r++
				}
				return vnum.FromUint64(32, uint64(r))
			}, 32, false)
		}
		// unknown functions were folded to constants at compile time
		bad := vnum.AllX(32).ResizeAs(w, sg)
		return func() vnum.Value { return bad }

	default: // unreachable: every PlanOp is handled above
		bad := vnum.AllX(w)
		return func() vnum.Value { return bad }
	}
}

// ---- compiled lvalue writers and statement plans --------------------------

// compiledWrite stores a value into a pre-resolved assignment target.
type compiledWrite func(v vnum.Value)

// stmtKey identifies per-statement compiled state (assignment plans, wait
// sites) in one instance.
type stmtKey struct {
	st vlog.Stmt
	in *elab.Inst
}

// assignPlan is the compiled form of one procedural or continuous
// assignment: the RHS plan at the target's context width plus a writer
// bound to the target's storage.
type assignPlan struct {
	rhs   compiledExpr
	write compiledWrite
}

// assignPlanFor compiles (once) the RHS plan and lvalue writer of a
// procedural assignment.
func (s *Simulator) assignPlanFor(n *vlog.Assign, in *elab.Inst) *assignPlan {
	k := stmtKey{st: n, in: in}
	if ap, ok := s.assigns[k]; ok {
		return ap
	}
	w := s.lvalueWidth(n.LHS, in)
	ap := &assignPlan{rhs: s.planFor(n.RHS, in, w), write: s.bindLValue(n.LHS, in)}
	s.assigns[k] = ap
	return ap
}

// bindLValue compiles an assignment target into a writer closure: name
// resolution, part-select bounds, and storage offsets happen here, index
// expressions become bound plans evaluated at write time. Semantics match
// writeLValue exactly, including discarded writes to unknown addresses.
func (s *Simulator) bindLValue(lhs vlog.Expr, in *elab.Inst) compiledWrite {
	noop := func(vnum.Value) {}
	switch n := lhs.(type) {
	case *vlog.Ident:
		st := s.sig(in, n.Name)
		if st == nil {
			return noop
		}
		return func(v vnum.Value) { s.setSignal(st, v) }
	case *vlog.Index:
		id, ok := n.X.(*vlog.Ident)
		if !ok {
			return noop
		}
		if ms := s.mem(in, id.Name); ms != nil {
			idx := s.planFor(n.I, in, 0)
			return func(v vnum.Value) {
				iv := idx()
				addr, ok := iv.Uint64()
				if !iv.IsKnown() || !ok {
					return // write to unknown address is discarded
				}
				if wi, inRange := ms.decl.WordIndex(int(addr)); inRange {
					ms.words[wi] = v.Resize(ms.decl.Width)
				}
			}
		}
		if st := s.sig(in, id.Name); st != nil {
			idx := s.planFor(n.I, in, 0)
			return func(v vnum.Value) {
				iv := idx()
				bi, ok := iv.Uint64()
				if !iv.IsKnown() || !ok {
					return
				}
				off, inRange := st.decl.Offset(int(bi))
				if !inRange {
					return
				}
				s.setSignal(st, st.val.WithBit(off, v.Bit(0)))
			}
		}
		return noop
	case *vlog.RangeSel:
		id, ok := n.X.(*vlog.Ident)
		if !ok {
			return noop
		}
		st := s.sig(in, id.Name)
		if st == nil {
			return noop
		}
		msb, lsb, okc := s.constBounds(n, in)
		if !okc {
			return noop
		}
		hiOff, ok1 := st.decl.Offset(msb)
		loOff, ok2 := st.decl.Offset(lsb)
		if !ok1 || !ok2 {
			return noop
		}
		if hiOff < loOff {
			hiOff, loOff = loOff, hiOff
		}
		return func(v vnum.Value) {
			cur := st.val
			for i := loOff; i <= hiOff; i++ {
				cur = cur.WithBit(i, v.Bit(i-loOff))
			}
			s.setSignal(st, cur)
		}
	case *vlog.Concat:
		// MSB-first split
		total := s.lvalueWidth(lhs, in)
		writers := make([]compiledWrite, len(n.Parts))
		widths := make([]int, len(n.Parts))
		for i, part := range n.Parts {
			writers[i] = s.bindLValue(part, in)
			widths[i] = s.lvalueWidth(part, in)
		}
		return func(v vnum.Value) {
			v = v.Resize(total)
			pos := total
			for i := range writers {
				pos -= widths[i]
				writers[i](v.Slice(pos+widths[i]-1, pos))
			}
		}
	default:
		return noop
	}
}

// ---- compiled wait sites --------------------------------------------------

// waitSite is the static part of one event control: the item templates
// (edge, expression, bound plan) and the signals to register on. Computed
// once per (event control, instance); each block of the process copies the
// template into a fresh waitReg, so registration order — and therefore
// wake order — is identical to the interpreter's.
type waitSite struct {
	star  bool
	items []waitItem
	deps  []*sigState
}

// waitSiteFor builds (once) the wait site for an event control.
func (s *Simulator) waitSiteFor(n *vlog.EventCtrl, in *elab.Inst) *waitSite {
	k := stmtKey{st: n, in: in}
	if ws, ok := s.waitSites[k]; ok {
		return ws
	}
	ws := &waitSite{star: n.Star}
	var depNames []string
	if n.Star {
		for _, id := range s.starIdents(n) {
			ws.items = append(ws.items, waitItem{edge: vlog.EdgeAny, expr: id, plan: s.planFor(id, in, 0)})
			depNames = append(depNames, id.Name)
		}
	} else {
		for _, ev := range n.Events {
			ws.items = append(ws.items, waitItem{edge: ev.Edge, expr: ev.X, plan: s.planFor(ev.X, in, 0)})
			depNames = append(depNames, collectIdents(ev.X, nil)...)
		}
		depNames = dedup(depNames)
	}
	for _, name := range depNames {
		if st := s.sig(in, name); st != nil {
			ws.deps = append(ws.deps, st)
		}
	}
	s.waitSites[k] = ws
	return ws
}

// starIdents returns the synthesized @* sensitivity idents for an event
// control, stable per simulator via starCache and — with a shared
// PlanCache — stable across simulators, so the per-ident plan keys share.
func (s *Simulator) starIdents(n *vlog.EventCtrl) []*vlog.Ident {
	if ids, ok := s.starCache[n]; ok {
		return ids
	}
	var ids []*vlog.Ident
	if s.opts.Plans != nil {
		ids = s.opts.Plans.starIdents(n, func() []*vlog.Ident { return synthStarIdents(n) })
	} else {
		ids = synthStarIdents(n)
	}
	s.starCache[n] = ids
	return ids
}

// synthStarIdents builds the @* sensitivity list as Ident nodes.
func synthStarIdents(n *vlog.EventCtrl) []*vlog.Ident {
	names := dedup(collectStmtReads(n.Stmt, nil))
	idents := make([]*vlog.Ident, len(names))
	for i, name := range names {
		idents[i] = &vlog.Ident{Name: name}
	}
	return idents
}

// levelSite is the static part of one wait(cond): the condition plan and
// the watched signals.
type levelSite struct {
	cond compiledExpr
	deps []*sigState
}

func (s *Simulator) levelSiteFor(cond vlog.Expr, in *elab.Inst) *levelSite {
	k := exprScope{e: cond, in: in}
	if ls, ok := s.levelSites[k]; ok {
		return ls
	}
	ls := &levelSite{cond: s.planFor(cond, in, 0)}
	for _, name := range dedup(collectIdents(cond, nil)) {
		if st := s.sig(in, name); st != nil {
			ls.deps = append(ls.deps, st)
		}
	}
	s.levelSites[k] = ls
	return ls
}

// labelWidth returns the self-determined width of a case label, memoized
// in compiled mode (it is static per instance).
func (s *Simulator) labelWidth(e vlog.Expr, in *elab.Inst) int {
	if s.opts.Interpret {
		return elab.SelfWidth(e, in)
	}
	k := exprScope{e: e, in: in}
	if lw, ok := s.widthMemo[k]; ok {
		return lw
	}
	lw := elab.SelfWidth(e, in)
	s.widthMemo[k] = lw
	return lw
}
