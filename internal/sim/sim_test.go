package sim

import (
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// runTop parses, elaborates and simulates src with the given top module.
func runTop(t *testing.T, src, top string, opts Options) Result {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := elab.Elaborate(f, top, elab.Options{})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	res, err := New(d, opts).Run()
	if err != nil {
		t.Fatalf("run: %v (output so far: %q)", err, res.Output)
	}
	return res
}

func TestInitialDisplay(t *testing.T) {
	res := runTop(t, `module m; initial $display("hello %d", 8'd42); endmodule`, "m", Options{})
	if res.Output != "hello 42\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestDelayAndTime(t *testing.T) {
	res := runTop(t, `module m;
  initial begin
    #5 $display("t=%t", $time);
    #7 $display("t=%t", $time);
    $finish;
  end
endmodule`, "m", Options{})
	if res.Output != "t=5\nt=12\n" {
		t.Fatalf("output = %q", res.Output)
	}
	if !res.Finished || res.Time != 12 {
		t.Fatalf("finished=%v time=%d", res.Finished, res.Time)
	}
}

func TestContinuousAssignPropagation(t *testing.T) {
	res := runTop(t, `module m;
  reg a;
  wire y;
  assign y = ~a;
  initial begin
    a = 0;
    #1 $display("y=%b", y);
    a = 1;
    #1 $display("y=%b", y);
  end
endmodule`, "m", Options{})
	if res.Output != "y=1\ny=0\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestClockGeneratorAndEdges(t *testing.T) {
	res := runTop(t, `module m;
  reg clk;
  integer n;
  always #5 clk = ~clk;
  initial begin
    clk = 0; n = 0;
    repeat (4) begin
      @(posedge clk);
      n = n + 1;
    end
    $display("edges=%d at %t", n, $time);
    $finish;
  end
endmodule`, "m", Options{})
	if res.Output != "edges=4 at 35\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestNonblockingSwap(t *testing.T) {
	res := runTop(t, `module m;
  reg clk;
  reg [3:0] a, b;
  initial begin
    clk = 0; a = 1; b = 2;
    #1 clk = 1;
    #1 $display("a=%d b=%d", a, b);
  end
  always @(posedge clk) begin
    a <= b;
    b <= a;
  end
endmodule`, "m", Options{})
	if res.Output != "a=2 b=1\n" {
		t.Fatalf("swap failed: %q", res.Output)
	}
}

func TestBlockingVsNonblockingOrdering(t *testing.T) {
	// classic: blocking sees updated value within the same block
	res := runTop(t, `module m;
  reg [3:0] x, y;
  initial begin
    x = 1;
    x = x + 1;
    y = x;
    $display("x=%d y=%d", x, y);
  end
endmodule`, "m", Options{})
	if res.Output != "x=2 y=2\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestXPropagationAtStartup(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] q;
  initial $display("q=%b sum=%b", q, q + 4'd1);
endmodule`, "m", Options{})
	if res.Output != "q=xxxx sum=xxxx\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestHierarchyCounter(t *testing.T) {
	src := `module counter(input clk, input reset, output reg [3:0] q);
  always @(posedge clk) begin
    if (reset) q <= 4'd1;
    else if (q == 4'd12) q <= 4'd1;
    else q <= q + 4'd1;
  end
endmodule
module tb;
  reg clk, reset;
  wire [3:0] q;
  integer errors;
  counter dut(.clk(clk), .reset(reset), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; reset = 1; errors = 0;
    @(posedge clk);
    #1 if (q !== 4'd1) errors = errors + 1;
    reset = 0;
    repeat (12) @(posedge clk);
    #1 if (q !== 4'd1) errors = errors + 1; // wrapped 12 -> 1
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL errors=%d q=%d", errors, q);
    $finish;
  end
endmodule`
	res := runTop(t, src, "tb", Options{})
	if !strings.Contains(res.Output, "RESULT: PASS") {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestCaseStatement(t *testing.T) {
	res := runTop(t, `module m;
  reg [1:0] sel;
  reg [3:0] out;
  initial begin
    sel = 2'b10;
    case (sel)
      2'b00: out = 4'd0;
      2'b01: out = 4'd1;
      2'b10: out = 4'd2;
      default: out = 4'd15;
    endcase
    $display("out=%d", out);
    sel = 2'b11;
    case (sel)
      2'b00, 2'b01: out = 4'd7;
      default: out = 4'd9;
    endcase
    $display("out=%d", out);
  end
endmodule`, "m", Options{})
	if res.Output != "out=2\nout=9\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestCasezWildcard(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] in;
  reg [1:0] pos;
  initial begin
    in = 4'b0100;
    casez (in)
      4'bzzz1: pos = 2'd0;
      4'bzz1z: pos = 2'd1;
      4'bz1zz: pos = 2'd2;
      4'b1zzz: pos = 2'd3;
      default: pos = 2'd0;
    endcase
    $display("pos=%d", pos);
  end
endmodule`, "m", Options{})
	if res.Output != "pos=2\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	res := runTop(t, `module m;
  reg [7:0] mem [15:0];
  integer i;
  initial begin
    for (i = 0; i < 16; i = i + 1) mem[i] = i * 3;
    $display("m5=%d m15=%d", mem[5], mem[15]);
  end
endmodule`, "m", Options{})
	if res.Output != "m5=15 m15=45\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestBitAndPartSelects(t *testing.T) {
	res := runTop(t, `module m;
  reg [7:0] v;
  initial begin
    v = 8'b1010_0110;
    $display("b0=%b b7=%b mid=%b", v[0], v[7], v[5:2]);
    v[0] = 1'b1;
    v[7:6] = 2'b01;
    $display("v=%b", v);
  end
endmodule`, "m", Options{})
	if res.Output != "b0=0 b7=1 mid=1001\nv=01100111\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestConcatLValueCarry(t *testing.T) {
	// the paper's half-adder idiom: {carry, sum} = a + b with 1-bit a,b
	res := runTop(t, `module m;
  reg a, b, carry, sum;
  initial begin
    a = 1; b = 1;
    {carry, sum} = a + b;
    $display("c=%b s=%b", carry, sum);
  end
endmodule`, "m", Options{})
	if res.Output != "c=1 s=0\n" {
		t.Fatalf("carry lost: %q", res.Output)
	}
}

func TestSignedArithmeticAndOverflow(t *testing.T) {
	res := runTop(t, `module m;
  reg signed [7:0] a, b, s;
  reg ovf;
  initial begin
    a = 8'sd100; b = 8'sd100;
    s = a + b;
    ovf = (a[7] == b[7]) && (s[7] != a[7]);
    $display("s=%d ovf=%b", s, ovf);
    a = -8'sd100; b = 8'sd50;
    s = a + b;
    $display("s=%d", s);
  end
endmodule`, "m", Options{})
	if res.Output != "s=-56 ovf=1\ns=-50\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestArithmeticShiftRight(t *testing.T) {
	res := runTop(t, `module m;
  reg signed [7:0] v;
  reg [7:0] u;
  initial begin
    v = -8'sd64;
    u = 8'd192;
    $display("a=%d l=%d", v >>> 2, u >> 2);
  end
endmodule`, "m", Options{})
	if res.Output != "a=-16 l=48\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestWaitStatement(t *testing.T) {
	res := runTop(t, `module m;
  reg go;
  initial begin
    go = 0;
    #10 go = 1;
  end
  initial begin
    wait (go);
    $display("went at %t", $time);
  end
endmodule`, "m", Options{})
	if res.Output != "went at 10\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStarSensitivity(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] a, b;
  reg [3:0] sum;
  always @(*) sum = a + b;
  initial begin
    a = 1; b = 2;
    #1 $display("sum=%d", sum);
    b = 9;
    #1 $display("sum=%d", sum);
  end
endmodule`, "m", Options{})
	if res.Output != "sum=3\nsum=10\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestForeverWithFinish(t *testing.T) {
	res := runTop(t, `module m;
  reg clk;
  initial clk = 0;
  initial forever #5 clk = ~clk;
  initial begin
    #23 $display("t=%t clk=%b", $time, clk);
    $finish;
  end
endmodule`, "m", Options{})
	if res.Output != "t=23 clk=0\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestNegedgeDetection(t *testing.T) {
	res := runTop(t, `module m;
  reg clk;
  initial begin
    clk = 0;
    #5 clk = 1;
    #5 clk = 0;
    #5 $finish;
  end
  initial begin
    @(negedge clk) $display("neg at %t", $time);
  end
endmodule`, "m", Options{})
	if res.Output != "neg at 10\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStepLimitOnRunawayLoop(t *testing.T) {
	f, err := vlog.Parse(`module m; integer i; initial begin i = 0; while (1) i = i + 1; end endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(f, "m", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(d, Options{MaxSteps: 1000}).Run()
	if err != ErrStepLimit {
		t.Fatalf("err = %v", err)
	}
}

func TestCombinationalLoopHitsStepLimit(t *testing.T) {
	// a === 1'b0 is always 0/1 even from x, so this ring oscillates in
	// zero time and must be cut off by the step budget
	f, _ := vlog.Parse(`module m; wire a; assign a = (a === 1'b0) ? 1'b1 : 1'b0; endmodule`)
	d, err := elab.Elaborate(f, "m", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(d, Options{MaxSteps: 500}).Run()
	if err != ErrStepLimit {
		t.Fatalf("err = %v", err)
	}
}

func TestXLatchedCombinationalLoopStabilizes(t *testing.T) {
	// ~x is x, so a pure inverter loop settles at x instead of spinning
	res := runTop(t, `module m; wire a; assign a = ~a; initial #1 $display("a=%b", a); endmodule`, "m", Options{})
	if res.Output != "a=x\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestAlwaysWithoutEventIsError(t *testing.T) {
	f, _ := vlog.Parse(`module m; reg r; always r = ~r; endmodule`)
	d, err := elab.Elaborate(f, "m", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(d, Options{}).Run()
	if err == nil || !strings.Contains(err.Error(), "always block") {
		t.Fatalf("err = %v", err)
	}
}

func TestTimeLimit(t *testing.T) {
	f, _ := vlog.Parse(`module m; reg clk; initial clk = 0; always #5 clk = ~clk; endmodule`)
	d, err := elab.Elaborate(f, "m", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(d, Options{MaxTime: 1000}).Run()
	if err != ErrTimeLimit {
		t.Fatalf("err = %v", err)
	}
}

func TestRandomDeterminism(t *testing.T) {
	src := `module m; integer i; initial begin i = $random; $display("%d", i); end endmodule`
	r1 := runTop(t, src, "m", Options{RandomSeed: 7})
	r2 := runTop(t, src, "m", Options{RandomSeed: 7})
	r3 := runTop(t, src, "m", Options{RandomSeed: 8})
	if r1.Output != r2.Output {
		t.Fatal("same seed differs")
	}
	if r1.Output == r3.Output {
		t.Fatal("different seeds agree")
	}
}

func TestCaseEqualityInTB(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] q;
  initial begin
    if (q === 4'bxxxx) $display("is x");
    q = 4'd5;
    if (q !== 4'd5) $display("bad");
    else $display("good");
  end
endmodule`, "m", Options{})
	if res.Output != "is x\ngood\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestParameterizedInstance(t *testing.T) {
	src := `module add1 #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);
  assign y = a + 1;
endmodule
module tb;
  reg [7:0] x;
  wire [7:0] y;
  add1 #(.W(8)) dut (.a(x), .y(y));
  initial begin
    x = 8'd41;
    #1 $display("y=%d", y);
  end
endmodule`
	res := runTop(t, src, "tb", Options{})
	if res.Output != "y=42\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestShiftRegister64Bit(t *testing.T) {
	res := runTop(t, `module m;
  reg clk;
  reg signed [63:0] sr;
  initial begin
    clk = 0;
    sr = 64'h8000_0000_0000_0000;
    #1 $display("msb=%b next=%h", sr[63], sr >>> 1);
  end
endmodule`, "m", Options{})
	if res.Output != "msb=1 next=c000000000000000\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestLFSRStep(t *testing.T) {
	// taps at 3 and 5 (1-indexed bits 2 and 4): one manual step
	res := runTop(t, `module m;
  reg [4:0] s;
  wire fb;
  assign fb = s[2] ^ s[4];
  initial begin
    s = 5'b00001;
    #1 s = {s[3:0], fb};
    #1 $display("s=%b", s);
  end
endmodule`, "m", Options{})
	if res.Output != "s=00010\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestEventOrList(t *testing.T) {
	res := runTop(t, `module m;
  reg a, b;
  integer hits;
  always @(a or b) hits = hits + 1;
  initial begin
    hits = 0;
    a = 0; b = 0;
    #1 a = 1;
    #1 b = 1;
    #1 $display("hits=%d", hits);
  end
endmodule`, "m", Options{})
	// the x->0 inits coalesce into one wakeup (the block is pending, not
	// re-armed, when b changes), then one hit per later change
	if res.Output != "hits=3\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestWriteNoNewline(t *testing.T) {
	res := runTop(t, `module m; initial begin $write("a"); $write("b"); $display(""); end endmodule`, "m", Options{})
	if res.Output != "ab\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestFormatSpecifiers(t *testing.T) {
	res := runTop(t, `module m;
  reg [7:0] v;
  initial begin
    v = 8'hA5;
    $display("%d|%b|%h|%0d|%%", v, v, v, v);
  end
endmodule`, "m", Options{})
	if res.Output != "165|10100101|a5|165|%\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestInoutRejected(t *testing.T) {
	f, _ := vlog.Parse(`module c(inout a); endmodule
module m; wire w; c c0 (.a(w)); endmodule`)
	if _, err := elab.Elaborate(f, "m", elab.Options{}); err == nil {
		t.Fatal("inout connection should be rejected")
	}
}

func TestRegDeclInitializer(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] r = 4'd9;
  initial $display("r=%d", r);
endmodule`, "m", Options{})
	if res.Output != "r=9\n" {
		t.Fatalf("output = %q", res.Output)
	}
}
