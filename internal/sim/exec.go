package sim

import (
	"fmt"
	"strings"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
	"repro/internal/vnum"
)

// process is one behavioural process (always or initial block) running as
// a coroutine goroutine under a strict handshake: the scheduler resumes it
// and then blocks until the process yields (by blocking on a delay/event,
// finishing, or executing $finish).
type process struct {
	sim    *Simulator
	proc   *elab.Proc
	resume chan bool // scheduler -> process; false = terminate
	yield  chan yieldInfo
	done   bool
	begun  bool
	// blockCount counts suspensions, for always-block livelock detection
	blockCount int
}

type yieldKind int

const (
	yBlocked yieldKind = iota // waiting on event/delay, already registered
	yDone                     // process finished (initial completed or error)
	yFinish                   // $finish executed
)

type yieldInfo struct {
	kind yieldKind
	err  error
}

// errKill unwinds a process goroutine during shutdown.
type errKill struct{}

// errFinishSim unwinds a process after $finish.
type errFinishSim struct{}

func newProcess(s *Simulator, p *elab.Proc) *process {
	return &process{sim: s, proc: p, resume: make(chan bool), yield: make(chan yieldInfo)}
}

// stepOnce resumes the process until its next yield, handling the yield in
// scheduler context.
func (p *process) stepOnce() {
	if p.done {
		return
	}
	if !p.begun {
		p.begun = true
		go p.run()
	} else {
		p.resume <- true
	}
	info := <-p.yield
	switch info.kind {
	case yDone:
		p.done = true
		if info.err != nil {
			panic(simAbort{err: info.err})
		}
	case yFinish:
		p.done = true
		p.sim.finished = true
	}
}

// kill terminates a blocked process goroutine.
func (p *process) kill() {
	if p.done || !p.begun {
		p.done = true
		return
	}
	p.done = true
	p.resume <- false
	<-p.yield
}

// run is the goroutine body.
func (p *process) run() {
	var yerr error
	kind := yDone
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case errKill:
				kind = yDone
			case errFinishSim:
				kind = yFinish
			default:
				if ab, ok := r.(simAbort); ok {
					kind = yDone
					yerr = ab.err
				} else {
					panic(r)
				}
			}
		}
		p.yield <- yieldInfo{kind: kind, err: yerr}
	}()

	if p.proc.Kind == elab.ProcInitial {
		p.exec(p.proc.Body)
		return
	}
	// always block: loop forever; each iteration must block at least once,
	// otherwise the process would livelock the scheduler
	for {
		blocked := p.blockCount
		p.exec(p.proc.Body)
		if p.blockCount == blocked {
			panic(simAbort{err: &RuntimeError{
				Pos: p.proc.Body.NodePos(),
				Msg: "always block contains no delay or event control",
			}})
		}
	}
}

// block suspends the process until the scheduler resumes it.
func (p *process) block() {
	p.yield <- yieldInfo{kind: yBlocked}
	if !<-p.resume {
		panic(errKill{})
	}
}

// exec interprets one statement.
func (p *process) exec(st vlog.Stmt) {
	s := p.sim
	in := p.proc.Scope
	s.charge()
	switch n := st.(type) {
	case nil, *vlog.Null:
	case *vlog.Block:
		for _, sub := range n.Stmts {
			p.exec(sub)
		}
	case *vlog.Assign:
		if s.opts.Interpret {
			w := s.lvalueWidth(n.LHS, in)
			v := s.eval(n.RHS, in, w)
			if n.NonBlocking {
				s.scheduleNBA(n.LHS, in, v)
			} else {
				s.writeLValue(n.LHS, in, v, true)
			}
			break
		}
		ap := s.assignPlanFor(n, in)
		v := ap.rhs()
		if n.NonBlocking {
			// like scheduleNBA, index expressions of the target evaluate at
			// NBA-apply time (inside ap.write)
			s.nba = append(s.nba, nbaUpdate{apply: func() { ap.write(v) }})
		} else {
			ap.write(v)
		}
	case *vlog.If:
		if s.eval(n.Cond, in, 0).IsTrue() {
			p.exec(n.Then)
		} else if n.Else != nil {
			p.exec(n.Else)
		}
	case *vlog.Case:
		p.execCase(n)
	case *vlog.For:
		p.exec(n.Init)
		for s.eval(n.Cond, in, 0).IsTrue() {
			p.exec(n.Body)
			p.exec(n.Step)
		}
	case *vlog.While:
		for s.eval(n.Cond, in, 0).IsTrue() {
			p.exec(n.Body)
		}
	case *vlog.Repeat:
		cnt, ok := s.eval(n.Count, in, 0).Uint64()
		if !ok {
			cnt = 0
		}
		for i := uint64(0); i < cnt; i++ {
			p.exec(n.Body)
		}
	case *vlog.Forever:
		for {
			p.exec(n.Body)
		}
	case *vlog.Delay:
		amt, ok := s.eval(n.Amount, in, 0).Uint64()
		if !ok {
			amt = 0
		}
		p.waitDelay(amt)
		p.exec(n.Stmt)
	case *vlog.EventCtrl:
		p.waitEvent(n)
		p.exec(n.Stmt)
	case *vlog.Wait:
		p.waitLevel(n.Cond)
		p.exec(n.Stmt)
	case *vlog.SysCall:
		p.execSysCall(n)
	default:
		panic(simAbort{err: &RuntimeError{Pos: st.NodePos(), Msg: "unsupported statement"}})
	}
}

func (p *process) execCase(n *vlog.Case) {
	s := p.sim
	in := p.proc.Scope
	sel := s.eval(n.Expr, in, 0)
	var deflt vlog.Stmt
	for _, item := range n.Items {
		if item.Exprs == nil {
			deflt = item.Body
			continue
		}
		for _, e := range item.Exprs {
			w := sel.Width()
			if lw := s.labelWidth(e, in); lw > w {
				w = lw
			}
			label := s.evalSized(e, in, w, false)
			selw := sel.AsUnsigned().Resize(w)
			if caseMatch(n.Kind, selw, label) {
				p.exec(item.Body)
				return
			}
		}
	}
	if deflt != nil {
		p.exec(deflt)
	}
}

// caseMatch implements case/casez/casex label comparison.
func caseMatch(kind vlog.CaseKind, sel, label vnum.Value) bool {
	w := sel.Width()
	for i := 0; i < w; i++ {
		a, b := sel.Bit(i), label.Bit(i)
		switch kind {
		case vlog.CaseExact:
			if a != b {
				return false
			}
		case vlog.CaseZ:
			if a == vnum.BZ || b == vnum.BZ {
				continue
			}
			if a != b {
				return false
			}
		case vlog.CaseX:
			if a == vnum.BZ || b == vnum.BZ || a == vnum.BX || b == vnum.BX {
				continue
			}
			if a != b {
				return false
			}
		}
	}
	return true
}

// ---- blocking primitives ------------------------------------------------

func (p *process) waitDelay(amount uint64) {
	p.noteBlock()
	p.sim.scheduleFuture(amount, activation{proc: p})
	p.block()
}

func (p *process) waitEvent(n *vlog.EventCtrl) {
	s := p.sim
	in := p.proc.Scope
	p.noteBlock()

	if !s.opts.Interpret {
		// compiled mode: the item templates, bound plans, and dependency
		// signals are static per site; each block copies the template into
		// a fresh registration, so wake order matches the interpreter's
		ws := s.waitSiteFor(n, in)
		if len(ws.deps) == 0 {
			panic(simAbort{err: &RuntimeError{Pos: n.Pos, Msg: "event control watches no signals"}})
		}
		wr := &waitReg{proc: p, scope: in, active: true,
			items: append([]waitItem(nil), ws.items...)}
		for i := range wr.items {
			wr.items[i].last = wr.items[i].plan()
		}
		for _, st := range ws.deps {
			st.waits = append(st.waits, wr)
		}
		p.block()
		return
	}

	wr := &waitReg{proc: p, scope: in, active: true}

	var depNames []string
	if n.Star {
		for _, id := range s.starIdents(n) {
			wr.items = append(wr.items, waitItem{edge: vlog.EdgeAny, expr: id})
			depNames = append(depNames, id.Name)
		}
	} else {
		for _, ev := range n.Events {
			wr.items = append(wr.items, waitItem{edge: ev.Edge, expr: ev.X})
			depNames = append(depNames, collectIdents(ev.X, nil)...)
		}
		depNames = dedup(depNames)
	}
	// sample current values
	for i := range wr.items {
		wr.items[i].last = s.eval(wr.items[i].expr, in, 0)
	}
	registered := false
	for _, name := range depNames {
		if st := s.sig(in, name); st != nil {
			st.waits = append(st.waits, wr)
			registered = true
		}
	}
	if !registered {
		panic(simAbort{err: &RuntimeError{Pos: n.Pos, Msg: "event control watches no signals"}})
	}
	p.block()
}

func (p *process) waitLevel(cond vlog.Expr) {
	s := p.sim
	in := p.proc.Scope

	if !s.opts.Interpret {
		ls := s.levelSiteFor(cond, in)
		if ls.cond().IsTrue() {
			return
		}
		p.noteBlock()
		if len(ls.deps) == 0 {
			panic(simAbort{err: &RuntimeError{Pos: cond.NodePos(), Msg: "wait condition watches no signals"}})
		}
		wr := &waitReg{proc: p, scope: in, active: true, level: cond, levelPlan: ls.cond}
		for _, st := range ls.deps {
			st.waits = append(st.waits, wr)
		}
		p.block()
		return
	}

	if s.eval(cond, in, 0).IsTrue() {
		return
	}
	p.noteBlock()
	wr := &waitReg{proc: p, scope: in, active: true, level: cond}
	registered := false
	for _, name := range dedup(collectIdents(cond, nil)) {
		if st := s.sig(in, name); st != nil {
			st.waits = append(st.waits, wr)
			registered = true
		}
	}
	if !registered {
		panic(simAbort{err: &RuntimeError{Pos: cond.NodePos(), Msg: "wait condition watches no signals"}})
	}
	p.block()
}

func dedup(names []string) []string {
	seen := map[string]bool{}
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// ---- system tasks ---------------------------------------------------------

func (p *process) execSysCall(n *vlog.SysCall) {
	s := p.sim
	in := p.proc.Scope
	switch n.Name {
	case "$display", "$strobe", "$error":
		s.write(s.formatArgs(n.Args, in) + "\n")
	case "$monitor":
		s.monitor = &monitorState{args: n.Args, scope: in, fresh: true}
	case "$write":
		s.write(s.formatArgs(n.Args, in))
	case "$finish", "$fatal":
		panic(errFinishSim{})
	case "$stop":
		panic(errFinishSim{})
	case "$dumpvars":
		s.enableVCD()
	case "$dumpfile", "$readmemh", "$readmemb":
		// accepted, no effect in this environment
	case "$time", "$random":
		// valid as a statement, value discarded
	default:
		panic(simAbort{err: &RuntimeError{Pos: n.Pos, Msg: fmt.Sprintf("unsupported system task %s", n.Name)}})
	}
}

// formatArgs implements $display-style formatting.
func (s *Simulator) formatArgs(args []vlog.Expr, in *elab.Inst) string {
	if len(args) == 0 {
		return ""
	}
	var sb strings.Builder
	if fmtStr, ok := args[0].(*vlog.Str); ok {
		s.formatString(&sb, fmtStr.Text, args[1:], in)
		return sb.String()
	}
	for i, a := range args {
		if i > 0 {
			sb.WriteString(" ")
		}
		if str, ok := a.(*vlog.Str); ok {
			sb.WriteString(str.Text)
			continue
		}
		sb.WriteString(s.eval(a, in, 0).DecString())
	}
	return sb.String()
}

func (s *Simulator) formatString(sb *strings.Builder, format string, args []vlog.Expr, in *elab.Inst) {
	argi := 0
	nextVal := func() (vnum.Value, bool) {
		if argi >= len(args) {
			return vnum.Value{}, false
		}
		v := s.eval(args[argi], in, 0)
		argi++
		return v, true
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			i++
			continue
		}
		i++
		// skip width/zero flags: %0d, %2b etc.
		for i < len(format) && (format[i] >= '0' && format[i] <= '9') {
			i++
		}
		if i >= len(format) {
			sb.WriteByte('%')
			break
		}
		spec := format[i]
		i++
		switch spec {
		case '%':
			sb.WriteByte('%')
		case 'd', 'D':
			if v, ok := nextVal(); ok {
				sb.WriteString(v.DecString())
			}
		case 'b', 'B':
			if v, ok := nextVal(); ok {
				sb.WriteString(v.BinString())
			}
		case 'h', 'H', 'x', 'X':
			if v, ok := nextVal(); ok {
				sb.WriteString(v.HexString())
			}
		case 'o', 'O':
			if v, ok := nextVal(); ok {
				sb.WriteString(fmt.Sprintf("%o", mustU64(v)))
			}
		case 't', 'T':
			if v, ok := nextVal(); ok {
				sb.WriteString(v.DecString())
			}
		case 'c':
			if v, ok := nextVal(); ok {
				sb.WriteByte(byte(mustU64(v)))
			}
		case 's':
			if argi < len(args) {
				if str, ok := args[argi].(*vlog.Str); ok {
					sb.WriteString(str.Text)
					argi++
					break
				}
			}
			if v, ok := nextVal(); ok {
				sb.WriteString(v.DecString())
			}
		case 'm':
			sb.WriteString(in.Path)
		default:
			sb.WriteByte('%')
			sb.WriteByte(spec)
		}
	}
}

func mustU64(v vnum.Value) uint64 {
	u, _ := v.Uint64()
	return u
}

// ---- lvalue writes --------------------------------------------------------

// lvalueWidth returns the width of an assignment target (for RHS context),
// memoized in compiled mode — declaration widths and part-select bounds
// are static per instance.
func (s *Simulator) lvalueWidth(lhs vlog.Expr, in *elab.Inst) int {
	if s.opts.Interpret {
		return s.lvalueWidthUncached(lhs, in)
	}
	k := exprScope{e: lhs, in: in}
	if w, ok := s.lvwMemo[k]; ok {
		return w
	}
	w := s.lvalueWidthUncached(lhs, in)
	s.lvwMemo[k] = w
	return w
}

func (s *Simulator) lvalueWidthUncached(lhs vlog.Expr, in *elab.Inst) int {
	switch n := lhs.(type) {
	case *vlog.Ident:
		if st := s.sig(in, n.Name); st != nil {
			return st.decl.Width
		}
		return 1
	case *vlog.Index:
		if id, ok := n.X.(*vlog.Ident); ok {
			if ms := s.mem(in, id.Name); ms != nil {
				return ms.decl.Width
			}
		}
		return 1
	case *vlog.RangeSel:
		msb, lsb, ok := s.constBounds(n, in)
		if !ok {
			return 1
		}
		w := msb - lsb
		if w < 0 {
			w = -w
		}
		return w + 1
	case *vlog.Concat:
		total := 0
		for _, part := range n.Parts {
			total += s.lvalueWidth(part, in)
		}
		return total
	default:
		return 1
	}
}

// writeLValue stores v into the target. procedural is informational only;
// legality was established at elaboration.
func (s *Simulator) writeLValue(lhs vlog.Expr, in *elab.Inst, v vnum.Value, procedural bool) {
	switch n := lhs.(type) {
	case *vlog.Ident:
		if st := s.sig(in, n.Name); st != nil {
			s.setSignal(st, v)
		}
	case *vlog.Index:
		if id, ok := n.X.(*vlog.Ident); ok {
			if ms := s.mem(in, id.Name); ms != nil {
				iv := s.eval(n.I, in, 0)
				addr, ok := iv.AsUnsigned().Uint64()
				if !iv.IsKnown() || !ok {
					return // write to unknown address is discarded
				}
				if idx, inRange := ms.decl.WordIndex(int(addr)); inRange {
					ms.words[idx] = v.Resize(ms.decl.Width)
				}
				return
			}
			if st := s.sig(in, id.Name); st != nil {
				iv := s.eval(n.I, in, 0)
				bi, ok := iv.AsUnsigned().Uint64()
				if !iv.IsKnown() || !ok {
					return
				}
				off, inRange := st.decl.Offset(int(bi))
				if !inRange {
					return
				}
				s.setSignal(st, st.val.WithBit(off, v.Bit(0)))
			}
		}
	case *vlog.RangeSel:
		id, ok := n.X.(*vlog.Ident)
		if !ok {
			return
		}
		st := s.sig(in, id.Name)
		if st == nil {
			return
		}
		msb, lsb, okc := s.constBounds(n, in)
		if !okc {
			return
		}
		hiOff, ok1 := st.decl.Offset(msb)
		loOff, ok2 := st.decl.Offset(lsb)
		if !ok1 || !ok2 {
			return
		}
		if hiOff < loOff {
			hiOff, loOff = loOff, hiOff
		}
		cur := st.val
		for i := loOff; i <= hiOff; i++ {
			cur = cur.WithBit(i, v.Bit(i-loOff))
		}
		s.setSignal(st, cur)
	case *vlog.Concat:
		// MSB-first split
		total := s.lvalueWidth(lhs, in)
		v = v.Resize(total)
		pos := total
		for _, part := range n.Parts {
			w := s.lvalueWidth(part, in)
			pos -= w
			s.writeLValue(part, in, v.Slice(pos+w-1, pos), procedural)
		}
	}
}

// scheduleNBA captures the target location now and applies the update in
// the NBA region.
func (s *Simulator) scheduleNBA(lhs vlog.Expr, in *elab.Inst, v vnum.Value) {
	s.nba = append(s.nba, nbaUpdate{apply: func() {
		s.writeLValue(lhs, in, v, true)
	}})
}

// noteBlock increments the per-process block counter.
func (p *process) noteBlock() { p.blockCount++ }
