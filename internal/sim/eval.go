package sim

import (
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
	"repro/internal/vnum"
)

// This file implements runtime expression evaluation with IEEE 1364 width
// and signedness propagation: the width of a context-determined expression
// is the maximum of its self-determined width and the assignment context;
// the expression is signed only if every context operand is signed, and in
// an unsigned expression signed operands are treated as unsigned.

// selfWidth computes the self-determined width of an expression.
func (s *Simulator) selfWidth(e vlog.Expr, in *elab.Inst) int {
	switch n := e.(type) {
	case *vlog.Number:
		return n.Value.Width()
	case *vlog.Str:
		w := 8 * len(n.Text)
		if w == 0 {
			w = 8
		}
		return w
	case *vlog.Ident:
		if st := s.sig(in, n.Name); st != nil {
			return st.decl.Width
		}
		if p, ok := in.Params[n.Name]; ok {
			return p.Width()
		}
		return 1
	case *vlog.Index:
		if id, ok := n.X.(*vlog.Ident); ok {
			if ms := s.mem(in, id.Name); ms != nil {
				return ms.decl.Width
			}
		}
		return 1
	case *vlog.RangeSel:
		msb, lsb, ok := s.constBounds(n, in)
		if !ok {
			return 1
		}
		w := msb - lsb
		if w < 0 {
			w = -w
		}
		return w + 1
	case *vlog.Unary:
		switch n.Op {
		case "+", "-", "~":
			return s.selfWidth(n.X, in)
		default: // reductions and !
			return 1
		}
	case *vlog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			a, b := s.selfWidth(n.X, in), s.selfWidth(n.Y, in)
			if a > b {
				return a
			}
			return b
		case "<<", ">>", ">>>", "<<<", "**":
			return s.selfWidth(n.X, in)
		default: // relational, equality, logical
			return 1
		}
	case *vlog.Ternary:
		a, b := s.selfWidth(n.Then, in), s.selfWidth(n.Else, in)
		if a > b {
			return a
		}
		return b
	case *vlog.Concat:
		total := 0
		for _, p := range n.Parts {
			total += s.selfWidth(p, in)
		}
		if total == 0 {
			total = 1
		}
		return total
	case *vlog.Repl:
		cnt := 1
		if v, err := elab.ConstEval(n.Count, in); err == nil {
			if u, ok := v.Uint64(); ok {
				cnt = int(u)
			}
		}
		return cnt * s.selfWidth(n.X, in)
	case *vlog.SysCallExpr:
		switch n.Name {
		case "$time", "$stime":
			return 64
		case "$random", "$urandom", "$clog2":
			return 32
		case "$signed", "$unsigned":
			if len(n.Args) == 1 {
				return s.selfWidth(n.Args[0], in)
			}
		}
		return 32
	default:
		return 1
	}
}

// selfSigned computes the self-determined signedness of an expression.
func (s *Simulator) selfSigned(e vlog.Expr, in *elab.Inst) bool {
	switch n := e.(type) {
	case *vlog.Number:
		return n.Value.Signed()
	case *vlog.Ident:
		if st := s.sig(in, n.Name); st != nil {
			return st.decl.Signed
		}
		if p, ok := in.Params[n.Name]; ok {
			return p.Signed()
		}
		return false
	case *vlog.Index, *vlog.RangeSel, *vlog.Concat, *vlog.Repl, *vlog.Str:
		return false
	case *vlog.Unary:
		switch n.Op {
		case "+", "-", "~":
			return s.selfSigned(n.X, in)
		default:
			return false
		}
	case *vlog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~", "**":
			return s.selfSigned(n.X, in) && s.selfSigned(n.Y, in)
		case "<<", ">>", ">>>", "<<<":
			return s.selfSigned(n.X, in)
		default:
			return false
		}
	case *vlog.Ternary:
		return s.selfSigned(n.Then, in) && s.selfSigned(n.Else, in)
	case *vlog.SysCallExpr:
		switch n.Name {
		case "$signed", "$random":
			return true
		}
		return false
	default:
		return false
	}
}

// constBounds resolves part-select bounds; they were verified constant at
// elaboration.
func (s *Simulator) constBounds(n *vlog.RangeSel, in *elab.Inst) (msb, lsb int, ok bool) {
	mv, err1 := elab.ConstEval(n.MSB, in)
	lv, err2 := elab.ConstEval(n.LSB, in)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	mi, ok1 := mv.Int64()
	li, ok2 := lv.Int64()
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return int(mi), int(li), true
}

// eval evaluates an expression with assignment-context width ctx (0 for a
// self-determined position).
func (s *Simulator) eval(e vlog.Expr, in *elab.Inst, ctx int) vnum.Value {
	w := s.selfWidth(e, in)
	if ctx > w {
		w = ctx
	}
	return s.evalSized(e, in, w, s.selfSigned(e, in))
}

// evalSized evaluates e at width w with expression-level signedness sg.
func (s *Simulator) evalSized(e vlog.Expr, in *elab.Inst, w int, sg bool) vnum.Value {
	sized := func(v vnum.Value) vnum.Value {
		if sg {
			v = v.AsSigned()
		} else {
			v = v.AsUnsigned()
		}
		return v.Resize(w)
	}
	switch n := e.(type) {
	case *vlog.Number:
		return sized(n.Value)
	case *vlog.Str:
		v := vnum.Zero(8 * max(1, len(n.Text)))
		for i := 0; i < len(n.Text); i++ {
			b := n.Text[len(n.Text)-1-i]
			for k := 0; k < 8; k++ {
				if b>>uint(k)&1 == 1 {
					v = v.WithBit(i*8+k, vnum.B1)
				}
			}
		}
		return sized(v)
	case *vlog.Ident:
		if st := s.sig(in, n.Name); st != nil {
			return sized(st.val)
		}
		if p, ok := in.Params[n.Name]; ok {
			return sized(p)
		}
		return vnum.AllX(w)
	case *vlog.Index:
		return sized(s.evalIndex(n, in))
	case *vlog.RangeSel:
		return sized(s.evalRangeSel(n, in))
	case *vlog.Unary:
		switch n.Op {
		case "+", "-", "~":
			x := s.evalSized(n.X, in, w, sg)
			return sized(elab.ApplyUnary(n.Op, x))
		default: // reductions, !
			x := s.eval(n.X, in, 0)
			if n.Op == "!" {
				return sized(vnum.LogNot(x))
			}
			return sized(elab.ApplyUnary(n.Op, x))
		}
	case *vlog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			x := s.evalSized(n.X, in, w, sg)
			y := s.evalSized(n.Y, in, w, sg)
			return sized(elab.ApplyBinary(n.Op, x, y))
		case "<<", "<<<", ">>", ">>>", "**":
			x := s.evalSized(n.X, in, w, sg)
			y := s.eval(n.Y, in, 0).AsUnsigned()
			return sized(elab.ApplyBinary(n.Op, x, y))
		case "&&", "||":
			x := s.eval(n.X, in, 0)
			y := s.eval(n.Y, in, 0)
			return sized(elab.ApplyBinary(n.Op, x, y))
		default: // relational and equality: operands sized to their max
			ow := s.selfWidth(n.X, in)
			if yw := s.selfWidth(n.Y, in); yw > ow {
				ow = yw
			}
			osg := s.selfSigned(n.X, in) && s.selfSigned(n.Y, in)
			x := s.evalSized(n.X, in, ow, osg)
			y := s.evalSized(n.Y, in, ow, osg)
			return sized(elab.ApplyBinary(n.Op, x, y))
		}
	case *vlog.Ternary:
		c := s.eval(n.Cond, in, 0).Truth()
		switch c {
		case vnum.B1:
			return s.evalSized(n.Then, in, w, sg)
		case vnum.B0:
			return s.evalSized(n.Else, in, w, sg)
		default:
			// LRM: merge both branches bitwise; equal bits survive
			a := s.evalSized(n.Then, in, w, sg)
			b := s.evalSized(n.Else, in, w, sg)
			out := vnum.Zero(w)
			for i := 0; i < w; i++ {
				if a.Bit(i) == b.Bit(i) && a.Bit(i).IsKnown() {
					out = out.WithBit(i, a.Bit(i))
				} else {
					out = out.WithBit(i, vnum.BX)
				}
			}
			return sized(out)
		}
	case *vlog.Concat:
		parts := make([]vnum.Value, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = s.eval(p, in, 0)
		}
		return sized(vnum.Concat(parts...))
	case *vlog.Repl:
		cnt := 0
		if v, err := elab.ConstEval(n.Count, in); err == nil {
			if u, ok := v.Uint64(); ok {
				cnt = int(u)
			}
		}
		x := s.eval(n.X, in, 0)
		return sized(vnum.Replicate(cnt, x))
	case *vlog.SysCallExpr:
		return sized(s.evalSysFunc(n, in))
	default:
		return vnum.AllX(w)
	}
}

func (s *Simulator) evalIndex(n *vlog.Index, in *elab.Inst) vnum.Value {
	if id, ok := n.X.(*vlog.Ident); ok {
		if ms := s.mem(in, id.Name); ms != nil {
			iv := s.eval(n.I, in, 0)
			addr, ok := iv.AsUnsigned().Uint64()
			if !iv.IsKnown() || !ok {
				return vnum.AllX(ms.decl.Width)
			}
			idx, inRange := ms.decl.WordIndex(int(addr))
			if !inRange {
				return vnum.AllX(ms.decl.Width)
			}
			return ms.words[idx]
		}
	}
	base := s.eval(n.X, in, 0)
	iv := s.eval(n.I, in, 0)
	bi, ok := iv.AsUnsigned().Uint64()
	if !iv.IsKnown() || !ok {
		return vnum.AllX(1)
	}
	// map the declared index through the signal's range when the base is a
	// plain signal; otherwise index zero-based
	if id, ok2 := n.X.(*vlog.Ident); ok2 {
		if st := s.sig(in, id.Name); st != nil {
			off, inRange := st.decl.Offset(int(bi))
			if !inRange {
				return vnum.AllX(1)
			}
			return vnum.FromBits(base.Bit(off))
		}
	}
	if bi >= uint64(base.Width()) {
		return vnum.AllX(1)
	}
	return vnum.FromBits(base.Bit(int(bi)))
}

func (s *Simulator) evalRangeSel(n *vlog.RangeSel, in *elab.Inst) vnum.Value {
	msb, lsb, ok := s.constBounds(n, in)
	if !ok {
		return vnum.AllX(1)
	}
	base := s.eval(n.X, in, 0)
	if id, ok2 := n.X.(*vlog.Ident); ok2 {
		if st := s.sig(in, id.Name); st != nil {
			hiOff, ok1 := st.decl.Offset(msb)
			loOff, ok2 := st.decl.Offset(lsb)
			if !ok1 || !ok2 {
				w := msb - lsb
				if w < 0 {
					w = -w
				}
				return vnum.AllX(w + 1)
			}
			return base.Slice(hiOff, loOff)
		}
	}
	return base.Slice(msb, lsb)
}

func (s *Simulator) evalSysFunc(n *vlog.SysCallExpr, in *elab.Inst) vnum.Value {
	switch n.Name {
	case "$time", "$stime":
		return vnum.FromUint64(64, s.time)
	case "$random":
		return vnum.FromUint64(32, s.random()&0xFFFFFFFF).AsSigned()
	case "$urandom":
		return vnum.FromUint64(32, s.random()&0xFFFFFFFF)
	case "$signed":
		if len(n.Args) == 1 {
			return s.eval(n.Args[0], in, 0).AsSigned()
		}
	case "$unsigned":
		if len(n.Args) == 1 {
			return s.eval(n.Args[0], in, 0).AsUnsigned()
		}
	case "$clog2":
		if len(n.Args) == 1 {
			v, ok := s.eval(n.Args[0], in, 0).Uint64()
			if ok {
				r := 0
				for (uint64(1) << uint(r)) < v {
					r++
				}
				return vnum.FromUint64(32, uint64(r))
			}
		}
	}
	return vnum.AllX(32)
}

// ---- static identifier collection ---------------------------------------

// collectIdents appends every identifier read by e to out.
func collectIdents(e vlog.Expr, out []string) []string {
	switch n := e.(type) {
	case nil:
		return out
	case *vlog.Ident:
		return append(out, n.Name)
	case *vlog.Unary:
		return collectIdents(n.X, out)
	case *vlog.Binary:
		return collectIdents(n.Y, collectIdents(n.X, out))
	case *vlog.Ternary:
		return collectIdents(n.Else, collectIdents(n.Then, collectIdents(n.Cond, out)))
	case *vlog.Concat:
		for _, p := range n.Parts {
			out = collectIdents(p, out)
		}
		return out
	case *vlog.Repl:
		return collectIdents(n.X, collectIdents(n.Count, out))
	case *vlog.Index:
		return collectIdents(n.I, collectIdents(n.X, out))
	case *vlog.RangeSel:
		return collectIdents(n.X, out) // bounds are constants
	case *vlog.SysCallExpr:
		for _, a := range n.Args {
			out = collectIdents(a, out)
		}
		return out
	default:
		return out
	}
}

// rootIdent returns the base identifier of an lvalue, when it has a single
// one (identifier, select of identifier).
func rootIdent(e vlog.Expr) (string, bool) {
	switch n := e.(type) {
	case *vlog.Ident:
		return n.Name, true
	case *vlog.Index:
		return rootIdent(n.X)
	case *vlog.RangeSel:
		return rootIdent(n.X)
	default:
		return "", false
	}
}

// lvalueReadIdents returns identifiers *read* by an lvalue (index
// expressions), not the written target itself.
func lvalueReadIdents(e vlog.Expr) []string {
	switch n := e.(type) {
	case *vlog.Index:
		return collectIdents(n.I, lvalueReadIdents(n.X))
	case *vlog.RangeSel:
		return lvalueReadIdents(n.X)
	case *vlog.Concat:
		var out []string
		for _, p := range n.Parts {
			out = append(out, lvalueReadIdents(p)...)
		}
		return out
	default:
		return nil
	}
}

// collectStmtReads gathers every identifier read anywhere in a statement
// tree; used for @* sensitivity.
func collectStmtReads(st vlog.Stmt, out []string) []string {
	switch n := st.(type) {
	case nil, *vlog.Null:
		return out
	case *vlog.Block:
		for _, s2 := range n.Stmts {
			out = collectStmtReads(s2, out)
		}
		return out
	case *vlog.Assign:
		out = collectIdents(n.RHS, out)
		for _, id := range lvalueReadIdents(n.LHS) {
			out = append(out, id)
		}
		return out
	case *vlog.If:
		out = collectIdents(n.Cond, out)
		out = collectStmtReads(n.Then, out)
		return collectStmtReads(n.Else, out)
	case *vlog.Case:
		out = collectIdents(n.Expr, out)
		for _, item := range n.Items {
			for _, e := range item.Exprs {
				out = collectIdents(e, out)
			}
			out = collectStmtReads(item.Body, out)
		}
		return out
	case *vlog.For:
		out = collectStmtReads(n.Init, out)
		out = collectIdents(n.Cond, out)
		out = collectStmtReads(n.Step, out)
		return collectStmtReads(n.Body, out)
	case *vlog.While:
		out = collectIdents(n.Cond, out)
		return collectStmtReads(n.Body, out)
	case *vlog.Repeat:
		out = collectIdents(n.Count, out)
		return collectStmtReads(n.Body, out)
	case *vlog.Forever:
		return collectStmtReads(n.Body, out)
	case *vlog.Delay:
		out = collectIdents(n.Amount, out)
		return collectStmtReads(n.Stmt, out)
	case *vlog.EventCtrl:
		for _, ev := range n.Events {
			out = collectIdents(ev.X, out)
		}
		return collectStmtReads(n.Stmt, out)
	case *vlog.Wait:
		out = collectIdents(n.Cond, out)
		return collectStmtReads(n.Stmt, out)
	case *vlog.SysCall:
		for _, a := range n.Args {
			out = collectIdents(a, out)
		}
		return out
	default:
		return out
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
