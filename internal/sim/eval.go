package sim

import (
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
	"repro/internal/vnum"
)

// This file implements runtime expression evaluation with IEEE 1364 width
// and signedness propagation: the width of a context-determined expression
// is the maximum of its self-determined width and the assignment context;
// the expression is signed only if every context operand is signed, and in
// an unsigned expression signed operands are treated as unsigned.
//
// Two engines share these semantics. The default engine executes compiled
// expression plans (plan.go): context derivation happens once per
// (expression, instance) at plan-construction time. Options.Interpret
// selects the AST-walking interpreter below, which re-derives context
// (elab.SelfWidth / elab.SelfSigned) on every evaluation; it is the
// bit-for-bit reference the differential tests compare the plans against.

// eval evaluates an expression with assignment-context width ctx (0 for a
// self-determined position).
func (s *Simulator) eval(e vlog.Expr, in *elab.Inst, ctx int) vnum.Value {
	if s.opts.Interpret {
		return s.evalInterp(e, in, ctx)
	}
	return s.planFor(e, in, ctx)()
}

// evalSized evaluates e at width w with expression-level signedness sg
// (case labels force sg false).
func (s *Simulator) evalSized(e vlog.Expr, in *elab.Inst, w int, sg bool) vnum.Value {
	if s.opts.Interpret {
		return s.evalSizedInterp(e, in, w, sg)
	}
	return s.planSized(e, in, w, sg)()
}

// constBounds resolves part-select bounds; they were verified constant at
// elaboration. In compiled mode the resolution is memoized per
// (select, instance) — it cannot change at runtime.
func (s *Simulator) constBounds(n *vlog.RangeSel, in *elab.Inst) (msb, lsb int, ok bool) {
	if s.opts.Interpret {
		return elab.PartSelBounds(n, in)
	}
	k := exprScope{e: n, in: in}
	if b, hit := s.boundsMemo[k]; hit {
		return b.msb, b.lsb, b.ok
	}
	msb, lsb, ok = elab.PartSelBounds(n, in)
	s.boundsMemo[k] = boundsRes{msb: msb, lsb: lsb, ok: ok}
	return msb, lsb, ok
}

// ---- the AST-walking interpreter -----------------------------------------

// evalInterp evaluates by AST interpretation, re-deriving the context.
func (s *Simulator) evalInterp(e vlog.Expr, in *elab.Inst, ctx int) vnum.Value {
	w := elab.SelfWidth(e, in)
	if ctx > w {
		w = ctx
	}
	return s.evalSizedInterp(e, in, w, elab.SelfSigned(e, in))
}

// evalSizedInterp evaluates e at width w with expression-level signedness
// sg by walking the AST.
func (s *Simulator) evalSizedInterp(e vlog.Expr, in *elab.Inst, w int, sg bool) vnum.Value {
	sized := func(v vnum.Value) vnum.Value {
		if sg {
			v = v.AsSigned()
		} else {
			v = v.AsUnsigned()
		}
		return v.Resize(w)
	}
	switch n := e.(type) {
	case *vlog.Number:
		return sized(n.Value)
	case *vlog.Str:
		v := vnum.Zero(8 * max(1, len(n.Text)))
		for i := 0; i < len(n.Text); i++ {
			b := n.Text[len(n.Text)-1-i]
			for k := 0; k < 8; k++ {
				if b>>uint(k)&1 == 1 {
					v = v.WithBit(i*8+k, vnum.B1)
				}
			}
		}
		return sized(v)
	case *vlog.Ident:
		if st := s.sig(in, n.Name); st != nil {
			return sized(st.val)
		}
		if p, ok := in.Params[n.Name]; ok {
			return sized(p)
		}
		return vnum.AllX(w)
	case *vlog.Index:
		return sized(s.evalIndex(n, in))
	case *vlog.RangeSel:
		return sized(s.evalRangeSel(n, in))
	case *vlog.Unary:
		switch n.Op {
		case "+", "-", "~":
			x := s.evalSizedInterp(n.X, in, w, sg)
			return sized(elab.ApplyUnary(n.Op, x))
		default: // reductions, !
			x := s.evalInterp(n.X, in, 0)
			if n.Op == "!" {
				return sized(vnum.LogNot(x))
			}
			return sized(elab.ApplyUnary(n.Op, x))
		}
	case *vlog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			x := s.evalSizedInterp(n.X, in, w, sg)
			y := s.evalSizedInterp(n.Y, in, w, sg)
			return sized(elab.ApplyBinary(n.Op, x, y))
		case "<<", "<<<", ">>", ">>>":
			x := s.evalSizedInterp(n.X, in, w, sg)
			y := s.evalInterp(n.Y, in, 0).AsUnsigned()
			return sized(elab.ApplyBinary(n.Op, x, y))
		case "**":
			x := s.evalSizedInterp(n.X, in, w, sg)
			// the exponent keeps its own signedness: the LRM negative-
			// exponent cases in vnum.Pow need it
			y := s.evalInterp(n.Y, in, 0)
			return sized(elab.ApplyBinary(n.Op, x, y))
		case "&&", "||":
			x := s.evalInterp(n.X, in, 0)
			y := s.evalInterp(n.Y, in, 0)
			return sized(elab.ApplyBinary(n.Op, x, y))
		default: // relational and equality: operands sized to their max
			ow := elab.SelfWidth(n.X, in)
			if yw := elab.SelfWidth(n.Y, in); yw > ow {
				ow = yw
			}
			osg := elab.SelfSigned(n.X, in) && elab.SelfSigned(n.Y, in)
			x := s.evalSizedInterp(n.X, in, ow, osg)
			y := s.evalSizedInterp(n.Y, in, ow, osg)
			return sized(elab.ApplyBinary(n.Op, x, y))
		}
	case *vlog.Ternary:
		c := s.evalInterp(n.Cond, in, 0).Truth()
		switch c {
		case vnum.B1:
			return s.evalSizedInterp(n.Then, in, w, sg)
		case vnum.B0:
			return s.evalSizedInterp(n.Else, in, w, sg)
		default:
			// LRM: merge both branches bitwise; equal bits survive
			a := s.evalSizedInterp(n.Then, in, w, sg)
			b := s.evalSizedInterp(n.Else, in, w, sg)
			return sized(vnum.TernaryMerge(a, b, w))
		}
	case *vlog.Concat:
		parts := make([]vnum.Value, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = s.evalInterp(p, in, 0)
		}
		return sized(vnum.Concat(parts...))
	case *vlog.Repl:
		cnt := 0
		if v, err := elab.ConstEval(n.Count, in); err == nil {
			if u, ok := v.Uint64(); ok {
				cnt = int(u)
			}
		}
		x := s.evalInterp(n.X, in, 0)
		return sized(vnum.Replicate(cnt, x))
	case *vlog.SysCallExpr:
		return sized(s.evalSysFunc(n, in))
	default:
		return vnum.AllX(w)
	}
}

func (s *Simulator) evalIndex(n *vlog.Index, in *elab.Inst) vnum.Value {
	if id, ok := n.X.(*vlog.Ident); ok {
		if ms := s.mem(in, id.Name); ms != nil {
			iv := s.evalInterp(n.I, in, 0)
			addr, ok := iv.AsUnsigned().Uint64()
			if !iv.IsKnown() || !ok {
				return vnum.AllX(ms.decl.Width)
			}
			idx, inRange := ms.decl.WordIndex(int(addr))
			if !inRange {
				return vnum.AllX(ms.decl.Width)
			}
			return ms.words[idx]
		}
	}
	base := s.evalInterp(n.X, in, 0)
	iv := s.evalInterp(n.I, in, 0)
	bi, ok := iv.AsUnsigned().Uint64()
	if !iv.IsKnown() || !ok {
		return vnum.AllX(1)
	}
	// map the declared index through the signal's range when the base is a
	// plain signal; otherwise index zero-based
	if id, ok2 := n.X.(*vlog.Ident); ok2 {
		if st := s.sig(in, id.Name); st != nil {
			off, inRange := st.decl.Offset(int(bi))
			if !inRange {
				return vnum.AllX(1)
			}
			return vnum.FromBits(base.Bit(off))
		}
	}
	if bi >= uint64(base.Width()) {
		return vnum.AllX(1)
	}
	return vnum.FromBits(base.Bit(int(bi)))
}

func (s *Simulator) evalRangeSel(n *vlog.RangeSel, in *elab.Inst) vnum.Value {
	msb, lsb, ok := s.constBounds(n, in)
	if !ok {
		return vnum.AllX(1)
	}
	base := s.evalInterp(n.X, in, 0)
	if id, ok2 := n.X.(*vlog.Ident); ok2 {
		if st := s.sig(in, id.Name); st != nil {
			hiOff, ok1 := st.decl.Offset(msb)
			loOff, ok2 := st.decl.Offset(lsb)
			if !ok1 || !ok2 {
				w := msb - lsb
				if w < 0 {
					w = -w
				}
				return vnum.AllX(w + 1)
			}
			return base.Slice(hiOff, loOff)
		}
	}
	return base.Slice(msb, lsb)
}

func (s *Simulator) evalSysFunc(n *vlog.SysCallExpr, in *elab.Inst) vnum.Value {
	switch n.Name {
	case "$time", "$stime":
		return vnum.FromUint64(64, s.time)
	case "$random":
		return vnum.FromUint64(32, s.random()&0xFFFFFFFF).AsSigned()
	case "$urandom":
		return vnum.FromUint64(32, s.random()&0xFFFFFFFF)
	case "$signed":
		if len(n.Args) == 1 {
			return s.evalInterp(n.Args[0], in, 0).AsSigned()
		}
	case "$unsigned":
		if len(n.Args) == 1 {
			return s.evalInterp(n.Args[0], in, 0).AsUnsigned()
		}
	case "$clog2":
		if len(n.Args) == 1 {
			v, ok := s.evalInterp(n.Args[0], in, 0).Uint64()
			if ok {
				r := 0
				for (uint64(1) << uint(r)) < v {
					r++
				}
				return vnum.FromUint64(32, uint64(r))
			}
		}
	}
	return vnum.AllX(32)
}

// ---- static identifier collection ---------------------------------------

// collectIdents appends every identifier read by e to out.
func collectIdents(e vlog.Expr, out []string) []string {
	switch n := e.(type) {
	case nil:
		return out
	case *vlog.Ident:
		return append(out, n.Name)
	case *vlog.Unary:
		return collectIdents(n.X, out)
	case *vlog.Binary:
		return collectIdents(n.Y, collectIdents(n.X, out))
	case *vlog.Ternary:
		return collectIdents(n.Else, collectIdents(n.Then, collectIdents(n.Cond, out)))
	case *vlog.Concat:
		for _, p := range n.Parts {
			out = collectIdents(p, out)
		}
		return out
	case *vlog.Repl:
		return collectIdents(n.X, collectIdents(n.Count, out))
	case *vlog.Index:
		return collectIdents(n.I, collectIdents(n.X, out))
	case *vlog.RangeSel:
		return collectIdents(n.X, out) // bounds are constants
	case *vlog.SysCallExpr:
		for _, a := range n.Args {
			out = collectIdents(a, out)
		}
		return out
	default:
		return out
	}
}

// rootIdent returns the base identifier of an lvalue, when it has a single
// one (identifier, select of identifier).
func rootIdent(e vlog.Expr) (string, bool) {
	switch n := e.(type) {
	case *vlog.Ident:
		return n.Name, true
	case *vlog.Index:
		return rootIdent(n.X)
	case *vlog.RangeSel:
		return rootIdent(n.X)
	default:
		return "", false
	}
}

// lvalueReadIdents returns identifiers *read* by an lvalue (index
// expressions), not the written target itself.
func lvalueReadIdents(e vlog.Expr) []string {
	switch n := e.(type) {
	case *vlog.Index:
		return collectIdents(n.I, lvalueReadIdents(n.X))
	case *vlog.RangeSel:
		return lvalueReadIdents(n.X)
	case *vlog.Concat:
		var out []string
		for _, p := range n.Parts {
			out = append(out, lvalueReadIdents(p)...)
		}
		return out
	default:
		return nil
	}
}

// collectStmtReads gathers every identifier read anywhere in a statement
// tree; used for @* sensitivity.
func collectStmtReads(st vlog.Stmt, out []string) []string {
	switch n := st.(type) {
	case nil, *vlog.Null:
		return out
	case *vlog.Block:
		for _, s2 := range n.Stmts {
			out = collectStmtReads(s2, out)
		}
		return out
	case *vlog.Assign:
		out = collectIdents(n.RHS, out)
		for _, id := range lvalueReadIdents(n.LHS) {
			out = append(out, id)
		}
		return out
	case *vlog.If:
		out = collectIdents(n.Cond, out)
		out = collectStmtReads(n.Then, out)
		return collectStmtReads(n.Else, out)
	case *vlog.Case:
		out = collectIdents(n.Expr, out)
		for _, item := range n.Items {
			for _, e := range item.Exprs {
				out = collectIdents(e, out)
			}
			out = collectStmtReads(item.Body, out)
		}
		return out
	case *vlog.For:
		out = collectStmtReads(n.Init, out)
		out = collectIdents(n.Cond, out)
		out = collectStmtReads(n.Step, out)
		return collectStmtReads(n.Body, out)
	case *vlog.While:
		out = collectIdents(n.Cond, out)
		return collectStmtReads(n.Body, out)
	case *vlog.Repeat:
		out = collectIdents(n.Count, out)
		return collectStmtReads(n.Body, out)
	case *vlog.Forever:
		return collectStmtReads(n.Body, out)
	case *vlog.Delay:
		out = collectIdents(n.Amount, out)
		return collectStmtReads(n.Stmt, out)
	case *vlog.EventCtrl:
		for _, ev := range n.Events {
			out = collectIdents(ev.X, out)
		}
		return collectStmtReads(n.Stmt, out)
	case *vlog.Wait:
		out = collectIdents(n.Cond, out)
		return collectStmtReads(n.Stmt, out)
	case *vlog.SysCall:
		for _, a := range n.Args {
			out = collectIdents(a, out)
		}
		return out
	default:
		return out
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
