package sim

import (
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

func TestVCDFromOptions(t *testing.T) {
	src := `module tb;
  reg clk;
  reg [3:0] q;
  initial begin
    clk = 0; q = 0;
    #5 clk = 1; q = 4'd9;
    #5 $finish;
  end
endmodule`
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(f, "tb", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(d, Options{DumpVCD: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module tb $end",
		"$var reg 1", "clk",
		"$var reg 4", "q [3:0]",
		"$enddefinitions $end",
		"#0", "#5",
		"b1001",
	} {
		if !strings.Contains(res.VCD, want) {
			t.Errorf("VCD missing %q:\n%s", want, res.VCD)
		}
	}
	// initial x state must be recorded before the first assignments
	if !strings.Contains(res.VCD, "bx ") {
		t.Errorf("initial unknown vector state missing:\n%s", res.VCD)
	}
}

func TestVCDViaDumpvarsTask(t *testing.T) {
	src := `module tb;
  reg a;
  initial begin
    a = 0;
    $dumpfile("wave.vcd");
    $dumpvars;
    #3 a = 1;
  end
endmodule`
	f, _ := vlog.Parse(src)
	d, err := elab.Elaborate(f, "tb", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(d, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VCD == "" {
		t.Fatal("$dumpvars did not enable waveform collection")
	}
	if !strings.Contains(res.VCD, "#3") {
		t.Errorf("change at t=3 missing:\n%s", res.VCD)
	}
}

func TestVCDHierarchyScopes(t *testing.T) {
	src := `module child(input x, output y);
  assign y = ~x;
endmodule
module tb;
  reg x;
  wire y;
  child c0 (.x(x), .y(y));
  initial begin x = 0; #1 x = 1; end
endmodule`
	f, _ := vlog.Parse(src)
	d, err := elab.Elaborate(f, "tb", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(d, Options{DumpVCD: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.VCD, "$scope module c0 $end") {
		t.Errorf("child scope missing:\n%s", res.VCD)
	}
	if got := strings.Count(res.VCD, "$upscope $end"); got != 2 {
		t.Errorf("upscope count = %d, want 2", got)
	}
}

func TestNoVCDByDefault(t *testing.T) {
	res := runTop(t, `module m; initial $display("hi"); endmodule`, "m", Options{})
	if res.VCD != "" {
		t.Fatal("VCD produced without being requested")
	}
}
