package sim

import (
	"sync"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// sharedSrc exercises the runtime surfaces Reset and the plan cache must
// preserve: reg initializers, clocked and @* processes, a memory, signed
// arithmetic, $random (rng state), and hierarchical children.
const sharedSrc = `module sub(input clk, input [3:0] a, output reg [3:0] q);
  always @(posedge clk) q <= a + 1;
endmodule
module top;
  reg clk = 0;
  reg [3:0] a = 0;
  reg signed [7:0] acc = 0;
  reg [7:0] m [0:3];
  wire [3:0] q;
  reg [3:0] comb;
  sub u(.clk(clk), .a(a), .q(q));
  always #5 clk = ~clk;
  always @* comb = a ^ q;
  always @(posedge clk) begin
    a <= a + 1;
    acc <= acc - $signed({4'b0, q});
    m[a[1:0]] <= {4'b0, a} + 8'd7;
  end
  initial begin
    #43;
    $display("a=%d q=%d comb=%b acc=%d m0=%d m3=%d r=%d",
             a, q, comb, acc, m[0], m[3], $random % 16);
    $finish;
  end
endmodule
`

func elabTop(t *testing.T, src, top string) *elab.Design {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := elab.Elaborate(f, top, elab.Options{})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

func mustRun(t *testing.T, s *Simulator) Result {
	t.Helper()
	res, err := s.Run()
	if err != nil {
		t.Fatalf("run: %v (output so far: %q)", err, res.Output)
	}
	return res
}

func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Output != want.Output {
		t.Errorf("%s: output diverged:\ngot:  %q\nwant: %q", label, got.Output, want.Output)
	}
	if got.Time != want.Time || got.Steps != want.Steps || got.Finished != want.Finished {
		t.Errorf("%s: metadata diverged: got %+v, want %+v", label, got, want)
	}
}

// TestResetMatchesFresh is the pooling contract: a Reset simulator must
// be byte-identical to a newly constructed one, run after run, including
// under a shared plan cache and with a different random seed per cycle.
func TestResetMatchesFresh(t *testing.T) {
	d := elabTop(t, sharedSrc, "top")
	cache := NewPlanCache(0)
	for _, opts := range []Options{{}, {Plans: cache}} {
		pooled := New(d, opts)
		for cycle := 0; cycle < 3; cycle++ {
			o := opts
			o.RandomSeed = int64(cycle * 31)
			fresh := mustRun(t, New(d, o))
			pooled.Reset(o) // cycle 0 pins reset-before-first-run too
			sameResult(t, "pooled vs fresh", mustRun(t, pooled), fresh)
		}
	}
}

// TestSharedPlansMatchUnshared: the same design simulated with and
// without a shared plan cache produces identical results, and the second
// cached simulator actually hits the cache.
func TestSharedPlansMatchUnshared(t *testing.T) {
	d := elabTop(t, sharedSrc, "top")
	want := mustRun(t, New(d, Options{}))
	cache := NewPlanCache(0)
	sameResult(t, "first shared run", mustRun(t, New(d, Options{Plans: cache})), want)
	after1 := cache.Stats()
	if after1.Misses == 0 || after1.Entries == 0 {
		t.Fatalf("first cached run compiled nothing: %+v", after1)
	}
	sameResult(t, "second shared run", mustRun(t, New(d, Options{Plans: cache})), want)
	after2 := cache.Stats()
	if after2.Hits <= after1.Hits {
		t.Errorf("second simulator hit nothing: %+v -> %+v", after1, after2)
	}
	if after2.Misses != after1.Misses {
		t.Errorf("second simulator recompiled %d plans despite a warm cache", after2.Misses-after1.Misses)
	}
}

// TestPlanCacheEvictionRecomputes squeezes the cache so hard every insert
// evicts: output must stay identical (a re-miss recompiles an equivalent
// immutable plan) and the eviction counter must move.
func TestPlanCacheEvictionRecomputes(t *testing.T) {
	d := elabTop(t, sharedSrc, "top")
	want := mustRun(t, New(d, Options{}))
	cache := NewPlanCache(1) // one accounted byte: everything evicts
	for i := 0; i < 3; i++ {
		sameResult(t, "starved cache run", mustRun(t, New(d, Options{Plans: cache})), want)
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("1-byte budget evicted nothing: %+v", st)
	}
	if st.Bytes > 1+planNodeCost {
		t.Errorf("starved cache retains %d bytes", st.Bytes)
	}
}

// TestPlanCacheConcurrentSimulators runs many simulators of one design
// against one cache; under -race this pins the lock discipline, and every
// result must match the uncached baseline bit for bit.
func TestPlanCacheConcurrentSimulators(t *testing.T) {
	d := elabTop(t, sharedSrc, "top")
	want := mustRun(t, New(d, Options{}))
	cache := NewPlanCache(0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res, err := New(d, Options{Plans: cache}).Run()
				if err != nil {
					t.Errorf("run: %v", err)
					return
				}
				if res.Output != want.Output || res.Steps != want.Steps {
					t.Errorf("concurrent cached run diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
