package sim

import (
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// Edge-case coverage for the behavioural interpreter and system tasks.

func TestMonitorPrintsOnChange(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] v;
  initial $monitor("t=%t v=%d", $time, v);
  initial begin
    v = 1;
    #5 v = 2;
    #5 v = 2; // no change: no extra line
    #5 v = 7;
    #1 $finish;
  end
endmodule`, "m", Options{})
	want := "t=0 v=1\nt=5 v=2\nt=15 v=7\n"
	if res.Output != want {
		t.Fatalf("monitor output = %q, want %q", res.Output, want)
	}
}

func TestMonitorRearmsReplacesOld(t *testing.T) {
	res := runTop(t, `module m;
  reg a, b;
  initial begin
    a = 0; b = 0;
    $monitor("A=%b", a);
    #2 $monitor("B=%b", b);
    #2 a = 1; // no longer monitored
    #2 b = 1;
    #1 $finish;
  end
endmodule`, "m", Options{})
	if strings.Contains(res.Output, "A=1") {
		t.Fatalf("old monitor fired after re-arm: %q", res.Output)
	}
	if !strings.Contains(res.Output, "B=1") {
		t.Fatalf("new monitor missing: %q", res.Output)
	}
}

func TestCasexWildcards(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] v;
  reg [1:0] r;
  initial begin
    v = 4'b10x1; // x bits are wildcards under casex
    casex (v)
      4'b1001: r = 2'd1;
      default: r = 2'd3;
    endcase
    $display("r=%d", r);
  end
endmodule`, "m", Options{})
	if res.Output != "r=1\n" {
		t.Fatalf("casex output = %q", res.Output)
	}
}

func TestRepeatWithUnknownCountRunsZero(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] n;
  integer i;
  initial begin
    i = 0;
    repeat (n) i = i + 1; // n is x: repeat count is 0
    $display("i=%d", i);
  end
endmodule`, "m", Options{})
	if res.Output != "i=0\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestDelayWithIdentifierAmount(t *testing.T) {
	res := runTop(t, `module m;
  parameter STEP = 7;
  initial begin
    #STEP $display("t=%t", $time);
  end
endmodule`, "m", Options{})
	if res.Output != "t=7\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestOutOfBoundsWritesAreDiscarded(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] v;
  reg [7:0] mem [3:0];
  integer i;
  initial begin
    v = 4'b0000;
    i = 9;
    v[i] = 1'b1;       // bit 9 of a 4-bit reg: discarded
    mem[i] = 8'hFF;    // address 9 of a 4-word memory: discarded
    $display("v=%b m0=%h", v, mem[0]);
  end
endmodule`, "m", Options{})
	if res.Output != "v=0000 m0=xx\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestOutOfBoundsReadsAreX(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] v;
  reg [7:0] mem [3:0];
  initial begin
    v = 4'b1111;
    $display("b=%b w=%h", v[9], mem[9]);
  end
endmodule`, "m", Options{})
	if res.Output != "b=x w=xx\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestUnknownIndexReadAndWrite(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] sel;
  reg [7:0] v;
  initial begin
    v = 8'hAA;
    $display("bit=%b", v[sel]); // sel is x
    v[sel] = 1'b0;              // discarded
    $display("v=%h", v);
  end
endmodule`, "m", Options{})
	if res.Output != "bit=x\nv=aa\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestStopActsLikeFinish(t *testing.T) {
	res := runTop(t, `module m;
  initial begin
    $display("before");
    $stop;
    $display("after");
  end
endmodule`, "m", Options{})
	if res.Output != "before\n" || !res.Finished {
		t.Fatalf("output=%q finished=%v", res.Output, res.Finished)
	}
}

func TestOutputLimit(t *testing.T) {
	f, _ := vlog.Parse(`module m;
  integer i;
  initial for (i = 0; i < 100000; i = i + 1) $display("spam line %d", i);
endmodule`)
	d, err := elab.Elaborate(f, "m", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(d, Options{MaxOutput: 2048}).Run()
	if err != ErrOutputLimit {
		t.Fatalf("err = %v", err)
	}
}

func TestConcatLValueNonblocking(t *testing.T) {
	res := runTop(t, `module m;
  reg clk;
  reg c;
  reg [3:0] s;
  initial begin
    clk = 0;
    #1 clk = 1;
    #1 $display("c=%b s=%d", c, s);
  end
  always @(posedge clk) {c, s} <= 5'd17;
endmodule`, "m", Options{})
	if res.Output != "c=1 s=1\n" { // 17 = 1_0001
		t.Fatalf("output = %q", res.Output)
	}
}

func TestWhileLoopAndBlockingSemantics(t *testing.T) {
	res := runTop(t, `module m;
  integer i, total;
  initial begin
    i = 0; total = 0;
    while (i < 5) begin
      total = total + i;
      i = i + 1;
    end
    $display("total=%d", total);
  end
endmodule`, "m", Options{})
	if res.Output != "total=10\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestNamedBlock(t *testing.T) {
	res := runTop(t, `module m;
  initial begin : main_blk
    $display("named ok");
  end
endmodule`, "m", Options{})
	if res.Output != "named ok\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSignedDisplayOfInteger(t *testing.T) {
	res := runTop(t, `module m;
  integer i;
  initial begin
    i = 0 - 5;
    $display("i=%d", i);
  end
endmodule`, "m", Options{})
	if res.Output != "i=-5\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestDisplayWithoutFormatString(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] a;
  initial begin
    a = 4'd7;
    $display(a, "and", a + 4'd1);
  end
endmodule`, "m", Options{})
	if res.Output != "7 and 8\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestIntraAssignmentDelay(t *testing.T) {
	res := runTop(t, `module m;
  reg [3:0] v;
  initial begin
    v = #4 4'd9;
    $display("t=%t v=%d", $time, v);
  end
endmodule`, "m", Options{})
	if res.Output != "t=4 v=9\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestHierarchicalTwoLevels(t *testing.T) {
	src := `module leaf(input [3:0] a, output [3:0] y);
  assign y = a + 1;
endmodule
module mid(input [3:0] a, output [3:0] y);
  wire [3:0] t;
  leaf l0 (.a(a), .y(t));
  leaf l1 (.a(t), .y(y));
endmodule
module tb;
  reg [3:0] x;
  wire [3:0] y;
  mid m0 (.a(x), .y(y));
  initial begin
    x = 4'd3;
    #1 $display("y=%d", y);
  end
endmodule`
	res := runTop(t, src, "tb", Options{})
	if res.Output != "y=5\n" {
		t.Fatalf("output = %q", res.Output)
	}
}
