package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// runBothEngines elaborates src and simulates it twice — compiled plans
// and the AST interpreter — returning both outputs. The elaborated design
// is shared: simulators only read it.
func runBothEngines(t *testing.T, src string) (compiled, interpreted Result) {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	d, err := elab.Elaborate(f, "tb", elab.Options{})
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, src)
	}
	rc, err := New(d, Options{}).Run()
	if err != nil {
		t.Fatalf("compiled run: %v\n%s", err, src)
	}
	ri, err := New(d, Options{Interpret: true}).Run()
	if err != nil {
		t.Fatalf("interpreted run: %v\n%s", err, src)
	}
	return rc, ri
}

// TestCompiledMatchesInterpreterOperators drives one expression per
// operator family — signed and unsigned, with x/z propagation, dynamic
// selects, memories, replication, system functions — through both engines
// and requires byte-identical output.
func TestCompiledMatchesInterpreterOperators(t *testing.T) {
	exprs := []string{
		// context-determined arithmetic, unsigned and signed
		"a + b", "a - b", "a * b", "b / a", "b % a", "sa + sb", "sa * sb",
		"sa / sb", "sa % sb", "-sa", "+sa", "~a",
		// bitwise
		"a & b", "a | b", "a ^ b", "a ~^ b",
		// reductions and logical
		"&a", "|a", "^a", "~&a", "~|a", "~^a", "!a", "a && b", "a || b",
		// comparisons, mixed signedness (operands at their own type)
		"a < b", "a <= b", "a > b", "a >= b", "sa < sb", "sa > b",
		"a == b", "a != b", "a === b", "a !== b", "xz == a", "xz === xz",
		// shifts and power
		"a << 3", "a >> 2", "sa >>> 2", "a >>> 2", "a << b[2:0]",
		"a ** 2", "sa ** sb[1:0]", "2 ** sneg", "sone ** sneg",
		// selects (static and dynamic) and concatenation
		"a[3]", "a[b[2:0]]", "a[6:2]", "sa[4:1]", "{a, b}", "{a[3:0], b[7:4]}",
		"{3{a[1:0]}}", "{a, 4'b10xz}",
		// ternaries, including unknown conditions merging branches
		"a[0] ? a : b", "xz[0] ? a : b", "xz[0] ? a : a",
		// four-state propagation through arithmetic
		"xz + a", "xz & a", "xz | a", "a * xz",
		// memories and system functions
		"m[a[1:0]]", "m[9]", "$signed(a)", "$unsigned(sa)", "$clog2(a)",
		"$clog2(xz)", "$time", "$signed(a[3:0])",
		// wide (>64 bit) paths
		"wa + wb", "wa & wb", "{wa[80:60], b}", "wa[100:90]",
	}
	var checks strings.Builder
	for i, e := range exprs {
		fmt.Fprintf(&checks, "    $display(\"%d: %%b %%d %%h\", (%s), (%s), (%s));\n", i, e, e, e)
	}
	src := fmt.Sprintf(`module tb;
  reg [7:0] a, b;
  reg signed [7:0] sa, sb;
  reg signed [7:0] sneg, sone;
  reg [7:0] xz;
  reg [127:0] wa, wb;
  reg [7:0] m [0:3];
  initial begin
    a = 8'd172; b = 8'd37;
    sa = -8'sd53; sb = 8'sd29;
    sneg = -8'sd1; sone = -8'sd1;
    xz = 8'b10xz_01xz;
    wa = {16{8'hA5}}; wb = {16{8'h3C}};
    m[0] = 8'd11; m[1] = 8'd22; m[2] = 8'd33; m[3] = 8'd44;
    #1;
%s    $finish;
  end
endmodule`, checks.String())

	rc, ri := runBothEngines(t, src)
	if rc.Output != ri.Output {
		t.Errorf("engines diverged:\ncompiled:\n%s\ninterpreted:\n%s", rc.Output, ri.Output)
	}
	if rc.Steps != ri.Steps || rc.Time != ri.Time {
		t.Errorf("metadata diverged: compiled %+v, interpreted %+v", rc, ri)
	}
}

// TestCompiledMatchesInterpreterRandomExprs cross-checks both engines over
// random combinational expressions (the generator from the golden
// differential test) under random stimulus.
func TestCompiledMatchesInterpreterRandomExprs(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		exprStr, _ := genDiffExpr(rng, 3)
		av, bv, cv := rng.Uint64()&0xFF, rng.Uint64()&0xFF, rng.Uint64()&0xFF
		src := fmt.Sprintf(`module dut(input [7:0] a, input [7:0] b, input [7:0] c, output [15:0] y);
  assign y = %s;
endmodule
module tb;
  reg [7:0] a, b, c;
  wire [15:0] y;
  dut d(.a(a), .b(b), .c(c), .y(y));
  initial begin
    a = 8'd%d; b = 8'd%d; c = 8'd%d;
    #1 $display("y=%%d %%b", y, y);
  end
endmodule`, exprStr, av, bv, cv)
		rc, ri := runBothEngines(t, src)
		if rc.Output != ri.Output {
			t.Fatalf("trial %d (%s): compiled %q, interpreted %q", trial, exprStr, rc.Output, ri.Output)
		}
	}
}

// TestCompiledMatchesInterpreterRandomStream pins the $random draw order:
// sub-expression evaluation order is observable through the RNG, so both
// engines must consume the stream identically.
func TestCompiledMatchesInterpreterRandomStream(t *testing.T) {
	src := `module tb;
  reg [31:0] r1, r2;
  reg [7:0] i;
  initial begin
    for (i = 0; i < 8; i = i + 1) begin
      r1 = $random + ($random & 32'hFF);
      r2 = {$random} ^ {24'd0, i};
      #1 $display("%d %h %h", $time, r1, r2);
    end
    $finish;
  end
endmodule`
	rc, ri := runBothEngines(t, src)
	if rc.Output != ri.Output {
		t.Errorf("RNG stream diverged:\ncompiled:\n%s\ninterpreted:\n%s", rc.Output, ri.Output)
	}
}

// TestPlanCacheBounded runs a long clocked simulation and checks that the
// per-simulator plan caches stay proportional to the static expression
// count, not to the event count — including the @* sensitivity idents that
// used to be synthesized fresh on every block.
func TestPlanCacheBounded(t *testing.T) {
	src := `module tb;
  reg clk, reset;
  reg [15:0] q;
  reg [15:0] shadow;
  always #5 clk = ~clk;
  always @(posedge clk or posedge reset) begin
    if (reset) q <= 0;
    else q <= q + 1;
  end
  always @* shadow = q ^ 16'hFFFF;
  initial begin
    clk = 0; reset = 1;
    #12 reset = 0;
    #4000 $display("q=%d shadow=%h", q, shadow);
    $finish;
  end
endmodule`
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(f, "tb", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(d, Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 1000 {
		t.Fatalf("expected a long run, got %d steps", res.Steps)
	}
	total := len(s.plans) + len(s.assigns) + len(s.waitSites) + len(s.levelSites)
	if total > 64 {
		t.Errorf("plan caches grew with events: %d entries after %d steps", total, res.Steps)
	}
	if len(s.plans) == 0 || len(s.assigns) == 0 || len(s.waitSites) == 0 {
		t.Errorf("compiled mode unused: plans=%d assigns=%d waitSites=%d",
			len(s.plans), len(s.assigns), len(s.waitSites))
	}
}

// TestInterpretModeUsesNoPlans pins the ablation baseline: under
// Options.Interpret nothing must be compiled.
func TestInterpretModeUsesNoPlans(t *testing.T) {
	src := `module tb;
  reg [7:0] a;
  initial begin a = 8'd5; #1 $display("%d", a + 8'd1); $finish; end
endmodule`
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := elab.Elaborate(f, "tb", elab.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(d, Options{Interpret: true})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.plans)+len(s.assigns)+len(s.waitSites)+len(s.levelSites) != 0 {
		t.Error("interpreter mode compiled plans")
	}
}
