package sim

import "testing"

// Signedness and width-rule tests for the expression evaluator: these pin
// the IEEE 1364 context rules the differential test cannot reach (it only
// generates unsigned expressions).

func TestSignedComparisonRules(t *testing.T) {
	res := runTop(t, `module m;
  reg signed [7:0] s;
  reg [7:0] u;
  initial begin
    s = -8'sd1;
    u = 8'd1;
    // both signed: -1 < 1
    $display("a=%b", s < 8'sd1);
    // mixed: the signed operand is treated unsigned (255 < 1 is false)
    $display("b=%b", s < u);
  end
endmodule`, "m", Options{})
	if res.Output != "a=1\nb=0\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSignedCastFunctions(t *testing.T) {
	res := runTop(t, `module m;
  reg [7:0] u;
  reg signed [7:0] s;
  integer i;
  initial begin
    u = 8'hFF;
    i = $signed(u);      // sign-extends: -1
    $display("i=%d", i);
    s = -8'sd2;
    i = $unsigned(s);    // drops sign: zero-extends the bit pattern
    $display("i=%d", i);
  end
endmodule`, "m", Options{})
	if res.Output != "i=-1\ni=254\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSignedExtensionInWiderContext(t *testing.T) {
	res := runTop(t, `module m;
  reg signed [3:0] small;
  reg signed [15:0] wide;
  reg [15:0] uwide;
  initial begin
    small = -4'sd3;
    wide = small;        // sign-extends to 16 bits
    $display("w=%d", wide);
    uwide = small;       // assignment context: RHS is signed, extends
    $display("u=%d", uwide);
  end
endmodule`, "m", Options{})
	if res.Output != "w=-3\nu=65533\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSignedDivisionTruncatesTowardZero(t *testing.T) {
	res := runTop(t, `module m;
  integer a, b;
  initial begin
    a = -7; b = 2;
    $display("q=%d r=%d", a / b, a % b);
  end
endmodule`, "m", Options{})
	if res.Output != "q=-3 r=-1\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestUnsignedOperandPoisonsSignedness(t *testing.T) {
	// -1 / unsigned 2: unsigned division of 2^32-1 by 2
	res := runTop(t, `module m;
  integer i;
  reg [31:0] u;
  initial begin
    u = 32'd2;
    i = -1;
    $display("q=%d", i / u);
  end
endmodule`, "m", Options{})
	if res.Output != "q=2147483647\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestCarryNeedsContextWidth(t *testing.T) {
	// classic: (a + b) >> 1 at the width of a loses the carry unless the
	// context is widened; with a 9-bit target the carry survives
	res := runTop(t, `module m;
  reg [7:0] a, b;
  reg [8:0] wide;
  reg [7:0] narrow;
  initial begin
    a = 8'd200; b = 8'd100;
    wide = a + b;
    narrow = a + b;
    $display("wide=%d narrow=%d", wide, narrow);
  end
endmodule`, "m", Options{})
	if res.Output != "wide=300 narrow=44\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestSelfDeterminedShiftAmount(t *testing.T) {
	// the shift amount is self-determined and unsigned
	res := runTop(t, `module m;
  reg [7:0] v;
  reg [1:0] sh;
  initial begin
    v = 8'd1;
    sh = 2'd3;
    $display("r=%d", v << sh);
  end
endmodule`, "m", Options{})
	if res.Output != "r=8\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestConcatIsUnsignedContext(t *testing.T) {
	// concat parts are self-determined: no sign extension inside
	res := runTop(t, `module m;
  reg signed [3:0] s;
  reg [7:0] out;
  initial begin
    s = -4'sd1;
    out = {4'b0000, s};
    $display("o=%b", out);
  end
endmodule`, "m", Options{})
	if res.Output != "o=00001111\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestTernaryMergeOnUnknownCondition(t *testing.T) {
	res := runTop(t, `module m;
  reg c;
  reg [3:0] r;
  initial begin
    // c is x: equal branch bits survive, differing bits go x
    r = c ? 4'b1010 : 4'b1001;
    $display("r=%b", r);
  end
endmodule`, "m", Options{})
	if res.Output != "r=10xx\n" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestCaseLabelWidthExtension(t *testing.T) {
	// parameter labels narrower than the selector still match correctly
	res := runTop(t, `module m;
  parameter A = 1;
  reg [3:0] sel;
  reg [1:0] r;
  initial begin
    sel = 4'd1;
    case (sel)
      A: r = 2'd3;
      default: r = 2'd0;
    endcase
    $display("r=%d", r);
  end
endmodule`, "m", Options{})
	if res.Output != "r=3\n" {
		t.Fatalf("output = %q", res.Output)
	}
}
