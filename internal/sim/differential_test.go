package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// Differential test: random combinational expressions are run through the
// full pipeline (parse -> elaborate -> continuous assign -> simulate ->
// $display) and compared against an independent Go evaluation of the same
// expression tree. The generator restricts itself to context-transparent
// operators plus constant shifts and selects, so the golden semantics are
// plain uint64 arithmetic at the assignment width.

const diffWidth = 16

type goldenFn func(a, b, c uint64) uint64

const diffMask = uint64(1)<<diffWidth - 1

// genDiffExpr builds a random expression string over 8-bit inputs a, b, c
// together with its golden evaluator at the 16-bit assignment width.
func genDiffExpr(rng *rand.Rand, depth int) (string, goldenFn) {
	if depth <= 0 {
		switch rng.Intn(6) {
		case 0:
			return "a", func(a, b, c uint64) uint64 { return a }
		case 1:
			return "b", func(a, b, c uint64) uint64 { return b }
		case 2:
			return "c", func(a, b, c uint64) uint64 { return c }
		case 3:
			k := rng.Intn(200)
			return fmt.Sprintf("16'd%d", k), func(a, b, c uint64) uint64 { return uint64(k) }
		case 4:
			bit := rng.Intn(8)
			return fmt.Sprintf("a[%d]", bit), func(a, b, c uint64) uint64 { return a >> uint(bit) & 1 }
		default:
			hi := 2 + rng.Intn(6)
			lo := rng.Intn(hi)
			mask := uint64(1)<<uint(hi-lo+1) - 1
			return fmt.Sprintf("b[%d:%d]", hi, lo), func(a, b, c uint64) uint64 { return b >> uint(lo) & mask }
		}
	}
	switch rng.Intn(8) {
	case 0, 1:
		xs, xf := genDiffExpr(rng, depth-1)
		ys, yf := genDiffExpr(rng, depth-1)
		ops := []struct {
			s string
			f func(x, y uint64) uint64
		}{
			{"+", func(x, y uint64) uint64 { return (x + y) & diffMask }},
			{"-", func(x, y uint64) uint64 { return (x - y) & diffMask }},
			{"*", func(x, y uint64) uint64 { return (x * y) & diffMask }},
			{"&", func(x, y uint64) uint64 { return x & y }},
			{"|", func(x, y uint64) uint64 { return x | y }},
			{"^", func(x, y uint64) uint64 { return x ^ y }},
		}
		op := ops[rng.Intn(len(ops))]
		return fmt.Sprintf("(%s %s %s)", xs, op.s, ys),
			func(a, b, c uint64) uint64 { return op.f(xf(a, b, c), yf(a, b, c)) }
	case 2:
		xs, xf := genDiffExpr(rng, depth-1)
		return fmt.Sprintf("(~%s)", xs),
			func(a, b, c uint64) uint64 { return ^xf(a, b, c) & diffMask }
	case 3:
		// constant shift of a sub-expression; the shift applies at the
		// full 16-bit context width
		xs, xf := genDiffExpr(rng, depth-1)
		sh := rng.Intn(12)
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("(%s << %d)", xs, sh),
				func(a, b, c uint64) uint64 { return xf(a, b, c) << uint(sh) & diffMask }
		}
		return fmt.Sprintf("(%s >> %d)", xs, sh),
			func(a, b, c uint64) uint64 { return xf(a, b, c) >> uint(sh) }
	case 4:
		// ternary with a comparison condition. Relational operands are
		// self-determined in Verilog, so each side is explicitly widened
		// with "+ 16'd0" to pin the comparison to the golden's 16 bits.
		xs, xf := genDiffExpr(rng, depth-1)
		ys, yf := genDiffExpr(rng, depth-1)
		ts, tf := genDiffExpr(rng, depth-1)
		es, ef := genDiffExpr(rng, depth-1)
		return fmt.Sprintf("(((%s + 16'd0) < (%s + 16'd0)) ? %s : %s)", xs, ys, ts, es),
			func(a, b, c uint64) uint64 {
				if xf(a, b, c) < yf(a, b, c) {
					return tf(a, b, c)
				}
				return ef(a, b, c)
			}
	default:
		return genDiffExpr(rng, depth-1)
	}
}

func TestDifferentialCombinationalExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		exprStr, golden := genDiffExpr(rng, 3)
		av := rng.Uint64() & 0xFF
		bv := rng.Uint64() & 0xFF
		cv := rng.Uint64() & 0xFF
		src := fmt.Sprintf(`module dut(input [7:0] a, input [7:0] b, input [7:0] c, output [%d:0] y);
  assign y = %s;
endmodule
module tb;
  reg [7:0] a, b, c;
  wire [%d:0] y;
  dut d(.a(a), .b(b), .c(c), .y(y));
  initial begin
    a = 8'd%d; b = 8'd%d; c = 8'd%d;
    #1 $display("y=%%d", y);
  end
endmodule`, diffWidth-1, exprStr, diffWidth-1, av, bv, cv)

		f, err := vlog.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\nexpr: %s", trial, err, exprStr)
		}
		d, err := elab.Elaborate(f, "tb", elab.Options{})
		if err != nil {
			t.Fatalf("trial %d: elaborate: %v\nexpr: %s", trial, err, exprStr)
		}
		res, err := New(d, Options{}).Run()
		if err != nil {
			t.Fatalf("trial %d: simulate: %v\nexpr: %s", trial, err, exprStr)
		}
		want := golden(av, bv, cv) & diffMask
		wantLine := fmt.Sprintf("y=%d\n", want)
		if res.Output != wantLine {
			t.Fatalf("trial %d: expr %s with a=%d b=%d c=%d:\n got %q\nwant %q",
				trial, exprStr, av, bv, cv, res.Output, wantLine)
		}
	}
}

// TestDifferentialSequentialAccumulator cross-checks a clocked accumulator
// against a Go model over a random stimulus stream.
func TestDifferentialSequentialAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(8)
		stim := make([]uint64, n)
		for i := range stim {
			stim[i] = rng.Uint64() & 0xFF
		}
		var checks strings.Builder
		acc := uint64(0)
		for i, s := range stim {
			acc = (acc + s) & 0xFFFF
			fmt.Fprintf(&checks, "    d = 8'd%d;\n    #1;\n    @(posedge clk);\n    #1 if (sum !== 16'd%d) $display(\"MISMATCH step %d got %%d want %d\", sum);\n", s, acc, i, acc)
		}
		src := fmt.Sprintf(`module accum(input clk, input reset, input [7:0] d, output reg [15:0] sum);
  always @(posedge clk) begin
    if (reset) sum <= 16'd0;
    else sum <= sum + d;
  end
endmodule
module tb;
  reg clk, reset;
  reg [7:0] d;
  wire [15:0] sum;
  accum u(.clk(clk), .reset(reset), .d(d), .sum(sum));
  always #5 clk = ~clk;
  initial begin
    clk = 0; reset = 1; d = 0;
    @(posedge clk);
    #1 reset = 0;
%s    $display("DONE");
    $finish;
  end
endmodule`, checks.String())

		f, err := vlog.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		d, err := elab.Elaborate(f, "tb", elab.Options{})
		if err != nil {
			t.Fatalf("elaborate: %v", err)
		}
		res, err := New(d, Options{}).Run()
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		if strings.Contains(res.Output, "MISMATCH") || !strings.Contains(res.Output, "DONE") {
			t.Fatalf("trial %d accumulator diverged:\n%s", trial, res.Output)
		}
	}
}
