// Package harness regenerates every table and figure of the paper's
// evaluation section as formatted text plus machine-readable series, and
// reports paper-vs-measured deltas for EXPERIMENTS.md. See DESIGN.md's
// per-experiment index for the mapping from paper artifact to harness
// method.
package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/lint"
	"repro/internal/model"
	"repro/internal/mutate"
	"repro/internal/problems"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// Harness drives one evaluation configuration. The evaluation pool width
// lives on the Runner (Runner.Workers), and the completion source is
// whatever gen.Backend the Runner wraps.
//
// Every cell-consuming renderer draws per-query stats through one
// eval.CellSource: the Runner when the harness is attached to a live
// backend, or any other source — merged shard results (FromResults), a
// plan recorder (PlanFor) — when it is not. Renderers that need more than
// cells (Ablation builds whole new families, CorpusStats runs the corpus
// pipeline) still require a live configuration.
type Harness struct {
	Runner *eval.Runner

	// Source overrides the Runner as the cell provider when non-nil. A
	// harness over merged shard results has a Source and no Runner.
	Source eval.CellSource

	Opts eval.SweepOptions
	Seed int64
}

// src is the cell provider renderers read through.
func (h *Harness) src() eval.CellSource {
	if h.Source != nil {
		return h.Source
	}
	return h.Runner
}

// FromResults builds a render-only harness over per-cell stats — merged
// shard results, typically. Sweep options must match the run that
// produced the cells, since they shape which cells the renderers request.
func FromResults(rs *eval.ResultSet, opts eval.SweepOptions) *Harness {
	return &Harness{Source: rs, Opts: opts}
}

// Renderer is one named artifact renderer. Cell marks artifacts whose
// output is a pure function of per-cell stats — the ones a sharded sweep
// can compute and a merged result set can render offline.
type Renderer struct {
	Name   string
	Cell   bool
	Desc   string
	Render func(*Harness) string
}

// renderers is the single registry of artifact renderers, in render
// order. CellExperiments, PlanFor, ExperimentIndex, and vgen-eval's
// dispatch all derive from it, so the list, the planner, and the CLI
// cannot drift.
var renderers = []Renderer{
	{"table1", false, "baseline LLM architectures", (*Harness).TableI},
	{"table2", false, "problem set", (*Harness).TableII},
	{"table3", true, "compile-rate matrix (best temperature)", (*Harness).TableIII},
	{"table4", true, "functional-pass matrix + inference time", (*Harness).TableIV},
	{"fig6", true, "pass rate vs temperature and vs completions/prompt", (*Harness).Figure6},
	{"fig7", true, "pass rate vs difficulty and vs description level", (*Harness).Figure7},
	{"headline", true, "Sections VI-VII aggregates", (*Harness).HeadlineReport},
	{"ablation", false, "GitHub vs GitHub+books fine-tuning corpus", (*Harness).Ablation},
	{"corpus", false, "Section III-A pipeline statistics", (*Harness).CorpusStats},
	{"gallery", false, "near-miss failure modes", (*Harness).FailureGallery},
	{"passk", true, "unbiased pass@k estimator table (extension)", (*Harness).PassAtKTable},
	{"problems", true, "per-problem breakdown for CodeGen-16B FT (Section VI)", (*Harness).ProblemBreakdown},
	{"lint", false, "synthesizability findings on references vs mutants (extension)", (*Harness).LintReport},
}

// Renderers lists every artifact renderer in render order.
func Renderers() []Renderer { return append([]Renderer(nil), renderers...) }

// CellExperiments lists the cell-based artifact names, in render order.
func CellExperiments() []string {
	var out []string
	for _, r := range renderers {
		if r.Cell {
			out = append(out, r.Name)
		}
	}
	return out
}

// PlanFor enumerates every evaluation cell the named cell-based artifacts
// consume, by running their renderers against a recording source. The
// plan therefore can never drift from the render path: whatever cells a
// renderer asks for are exactly the cells planned. "all" expands to every
// cell-based artifact.
func (h *Harness) PlanFor(experiments []string) (*eval.Plan, error) {
	var names []string
	for _, e := range experiments {
		if e == "all" {
			names = append(names, CellExperiments()...)
		} else {
			names = append(names, e)
		}
	}
	plan := eval.NewPlan()
	shadow := &Harness{Source: eval.PlanSource(plan), Opts: h.Opts, Seed: h.Seed}
	for _, e := range names {
		found := false
		for _, r := range renderers {
			if r.Cell && r.Name == e {
				_ = r.Render(shadow)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("harness: %q is not a cell-based artifact (have %v)", e, CellExperiments())
		}
	}
	if err := plan.Err(); err != nil {
		return nil, err
	}
	return plan, nil
}

// Options configure New.
type Options struct {
	Seed        int64
	CorpusFiles int // synthetic corpus scale; 0 = family default
	Sweep       eval.SweepOptions
	Corpus      model.CorpusKind
	Workers     int  // evaluation pool width; 0 = GOMAXPROCS, 1 = serial
	MapSampler  bool // keep n-gram LMs on the map-backed baseline sampler

	// Backend selects the generation backend by registered name; "" means
	// "family", the simulated line-up. Replay names the JSONL recording
	// for the replay backend.
	Backend string
	Replay  string
}

// New builds a harness, selecting the generation backend by name. Only
// backends with external inputs can fail to construct (replay with a
// missing or malformed recording); the default family path always
// succeeds.
func New(o Options) (*Harness, error) {
	name := o.Backend
	if name == "" {
		name = "family"
	}
	b, err := gen.New(name, gen.Options{
		Family: model.Config{
			Seed:        o.Seed,
			CorpusFiles: o.CorpusFiles,
			Corpus:      o.Corpus,
			MapSampler:  o.MapSampler,
		},
		ReplayPath: o.Replay,
	})
	if err != nil {
		return nil, err
	}
	return FromBackend(b, o), nil
}

// FromBackend builds a harness over an already-constructed backend —
// the hook for recorded, wrapped, or third-party sources.
func FromBackend(b gen.Backend, o Options) *Harness {
	runner := eval.NewRunner(b, o.Seed)
	runner.Workers = o.Workers
	return &Harness{Runner: runner, Opts: o.Sweep, Seed: o.Seed}
}

// paperVariantOrder lists Tables III/IV rows in the paper's order.
var paperVariantOrder = []model.ID{
	model.Megatron355M, model.CodeGen2B, model.CodeGen6B,
	model.J1Large7B, model.CodeGen16B, model.Codex,
}

func variantRows() []eval.ModelVariant {
	var rows []eval.ModelVariant
	for _, id := range paperVariantOrder {
		rows = append(rows, eval.ModelVariant{Model: id, Variant: model.Pretrained})
		if model.Lookup(id).HasFineTuned {
			rows = append(rows, eval.ModelVariant{Model: id, Variant: model.FineTuned})
		}
	}
	return rows
}

// TableI renders the baseline LLM architecture catalog.
func (h *Harness) TableI() string {
	var sb strings.Builder
	sb.WriteString("Table I: Baseline LLM architectures\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Model\tParams\tLayers\tHeads\tEmbed\tContext\tPre-training data")
	for _, id := range paperVariantOrder {
		s := model.Lookup(id)
		layers, heads, embed := "NA", "NA", "NA"
		if s.Layers > 0 {
			layers = fmt.Sprintf("%d", s.Layers)
			heads = fmt.Sprintf("%d", s.Heads)
			embed = fmt.Sprintf("%d", s.Embed)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\t%s\n",
			s.ID, s.Params, layers, heads, embed, s.Context, s.PretrainData)
	}
	w.Flush()
	return sb.String()
}

// TableII renders the problem set.
func (h *Harness) TableII() string {
	var sb strings.Builder
	sb.WriteString("Table II: Problem set\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Prob.#\tDifficulty\tDescription")
	for _, p := range problems.All() {
		fmt.Fprintf(w, "%d\t%s\t%s\n", p.Number, p.Difficulty, p.Description)
	}
	w.Flush()
	return sb.String()
}

// TableIIIData computes the compile-rate matrix: row per variant, one value
// per difficulty.
func (h *Harness) TableIIIData() map[eval.ModelVariant][3]float64 {
	out := map[eval.ModelVariant][3]float64{}
	for _, mv := range variantRows() {
		var row [3]float64
		for i, d := range problems.Difficulties {
			row[i] = eval.TableIIICell(h.src(), mv, d, h.Opts)
		}
		out[mv] = row
	}
	return out
}

// TableIII renders the compile-rate matrix with paper values alongside.
func (h *Harness) TableIII() string {
	data := h.TableIIIData()
	var sb strings.Builder
	sb.WriteString("Table III: Pass@(scenario*n), n=10, compiling completions (measured | paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Model\tType\tBasic\tIntermediate\tAdvanced")
	for _, mv := range variantRows() {
		row := data[mv]
		fmt.Fprintf(w, "%s\t%s", mv.Model, mv.Variant)
		for i, d := range problems.Difficulties {
			fmt.Fprintf(w, "\t%.3f|%.3f", row[i], model.CompilePrior(mv.Model, mv.Variant, d))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// TableIVData computes the functional matrix: per variant, difficulty,
// level, plus the latency column.
type TableIVRow struct {
	Variant eval.ModelVariant
	Latency float64
	Cells   [3][3]float64 // [difficulty][level]
}

// TableIVData computes every Table IV row.
func (h *Harness) TableIVData() []TableIVRow {
	var rows []TableIVRow
	for _, mv := range variantRows() {
		row := TableIVRow{Variant: mv, Latency: eval.InferenceTime(h.src(), mv, h.Opts)}
		for di, d := range problems.Difficulties {
			for li, l := range problems.Levels {
				row.Cells[di][li] = eval.TableIVCell(h.src(), mv, d, l, h.Opts)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// TableIV renders the functional-pass matrix with paper values alongside.
func (h *Harness) TableIV() string {
	var sb strings.Builder
	sb.WriteString("Table IV: Pass@(scenario*n), n=10, test-bench-passing completions (measured | paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Model\tType\tInf.(s)\tBasic L\tBasic M\tBasic H\tInt L\tInt M\tInt H\tAdv L\tAdv M\tAdv H")
	for _, row := range h.TableIVData() {
		mv := row.Variant
		fmt.Fprintf(w, "%s\t%s\t%.3f", mv.Model, mv.Variant, row.Latency)
		for di, d := range problems.Difficulties {
			for li, l := range problems.Levels {
				fmt.Fprintf(w, "\t%.3f|%.3f", row.Cells[di][li],
					model.FunctionalPrior(mv.Model, mv.Variant, d, l))
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// figureVariants are the lines plotted in Figs. 6 and 7: fine-tuned models
// plus pre-trained codex.
func figureVariants() []eval.ModelVariant {
	var out []eval.ModelVariant
	for _, id := range paperVariantOrder {
		if model.Lookup(id).HasFineTuned {
			out = append(out, eval.ModelVariant{Model: id, Variant: model.FineTuned})
		} else {
			out = append(out, eval.ModelVariant{Model: id, Variant: model.Pretrained})
		}
	}
	return out
}

// Figure6 renders both panels as CSV series: pass rate vs temperature and
// pass rate vs completions-per-prompt.
func (h *Harness) Figure6() string {
	temps := h.Opts.Temperatures
	if len(temps) == 0 {
		temps = eval.Temperatures
	}
	var sb strings.Builder
	sb.WriteString("Figure 6 (left): Pass@(scenario*n) vs temperature\n")
	sb.WriteString("model,variant")
	for _, t := range temps {
		fmt.Fprintf(&sb, ",t=%.1f", t)
	}
	sb.WriteString("\n")
	for _, mv := range figureVariants() {
		series := eval.TemperatureSeries(h.src(), mv, h.Opts)
		fmt.Fprintf(&sb, "%s,%s", mv.Model, mv.Variant)
		for _, v := range series {
			fmt.Fprintf(&sb, ",%.3f", v)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\nFigure 6 (right): Pass@(scenario*n) vs completions per prompt\n")
	sb.WriteString("model,variant,n=1,n=10,n=25\n")
	for _, mv := range figureVariants() {
		counts := eval.CompletionCounts
		if mv.Model == model.J1Large7B {
			counts = []int{1, 10} // the paper skips n=25 for J1
		}
		series := eval.NSeries(h.src(), mv, counts, h.Opts)
		fmt.Fprintf(&sb, "%s,%s", mv.Model, mv.Variant)
		for _, v := range series {
			fmt.Fprintf(&sb, ",%.3f", v)
		}
		if len(series) < len(eval.CompletionCounts) {
			sb.WriteString(",skipped")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure7 renders pass rate vs difficulty and vs description level.
func (h *Harness) Figure7() string {
	var sb strings.Builder
	sb.WriteString("Figure 7 (left): Pass@(scenario*10) vs description level\n")
	sb.WriteString("model,variant,L,M,H\n")
	for _, mv := range figureVariants() {
		s := eval.LevelSeries(h.src(), mv, h.Opts)
		fmt.Fprintf(&sb, "%s,%s,%.3f,%.3f,%.3f\n", mv.Model, mv.Variant, s[0], s[1], s[2])
	}
	sb.WriteString("\nFigure 7 (right): Pass@(scenario*10) vs difficulty\n")
	sb.WriteString("model,variant,Basic,Intermediate,Advanced\n")
	for _, mv := range figureVariants() {
		s := eval.DifficultySeries(h.src(), mv, h.Opts)
		fmt.Fprintf(&sb, "%s,%s,%.3f,%.3f,%.3f\n", mv.Model, mv.Variant, s[0], s[1], s[2])
	}
	return sb.String()
}

// HeadlineReport compares measured aggregates to the paper's Sections
// VI-VII numbers.
func (h *Harness) HeadlineReport() string {
	hl := eval.ComputeHeadline(h.src(), h.Opts)
	var sb strings.Builder
	sb.WriteString("Headline aggregates (measured | paper)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "pre-trained completions compiling\t%.3f\t%.3f\n", hl.CompilePT, model.HeadlineCompilePT)
	fmt.Fprintf(w, "fine-tuned completions compiling\t%.3f\t%.3f\n", hl.CompileFT, model.HeadlineCompileFT)
	fmt.Fprintf(w, "pre-trained functionally correct\t%.4f\t%.4f\n", hl.FunctionalPT, model.HeadlineFunctionalPT)
	fmt.Fprintf(w, "fine-tuned functionally correct\t%.3f\t%.3f\n", hl.FunctionalFT, model.HeadlineFunctionalFT)
	fmt.Fprintf(w, "CodeGen-16B-FT functional\t%.3f\t%.3f\n", hl.Best16BFT, model.Headline16BFT)
	fmt.Fprintf(w, "code-davinci-002 functional\t%.3f\t%.3f\n", hl.CodexPT, model.HeadlineCodex)
	w.Flush()
	return sb.String()
}

// Ablation reproduces the Section VI corpus ablation: 16B fine-tuned on
// GitHub only vs GitHub plus textbooks. It always builds family backends
// — the ablation is about the fine-tuning corpus, whatever backend the
// enclosing harness runs.
func (h *Harness) Ablation() string {
	if h.Runner == nil {
		return "Corpus ablation unavailable: needs a live backend, not merged shard results\n"
	}
	ghOnly, err := New(Options{Seed: h.Seed, Sweep: h.Opts, Corpus: model.GitHubOnly, Workers: h.Runner.Workers})
	if err != nil {
		return fmt.Sprintf("Corpus ablation unavailable: %v\n", err)
	}
	withBooks, err := New(Options{Seed: h.Seed, Sweep: h.Opts, Corpus: model.GitHubPlusBooks, Workers: h.Runner.Workers})
	if err != nil {
		return fmt.Sprintf("Corpus ablation unavailable: %v\n", err)
	}
	mv := eval.ModelVariant{Model: model.CodeGen16B, Variant: model.FineTuned}
	a := ghOnly.Runner.Aggregate(mv, h.Opts).PassRate()
	b := withBooks.Runner.Aggregate(mv, h.Opts).PassRate()
	rel := 0.0
	if a > 0 {
		rel = b/a - 1
	}
	var sb strings.Builder
	sb.WriteString("Corpus ablation: CodeGen-16B fine-tuning corpus (Section VI)\n")
	fmt.Fprintf(&sb, "GitHub only:        %.3f\n", a)
	fmt.Fprintf(&sb, "GitHub + textbooks: %.3f\n", b)
	fmt.Fprintf(&sb, "relative gain:      %+.1f%% (paper: +1.4%%)\n", 100*rel)
	return sb.String()
}

// CorpusStats reports the Section III-A pipeline statistics at the
// harness's synthetic scale.
func (h *Harness) CorpusStats() string {
	files := corpus.GenerateGitHub(corpus.DefaultGitHubOptions(h.Seed))
	kept, st := corpus.Curate(files, corpus.FilterOptions{})
	books := corpus.GenerateBooks(corpus.BookOptions{Seed: h.Seed + 1})
	wins := corpus.ExtractWindows(books, corpus.WindowOptions{})
	var sb strings.Builder
	sb.WriteString("Corpus pipeline statistics (Section III-A, synthetic 1:100 scale)\n")
	fmt.Fprintf(&sb, "raw files:            %d\n", st.Input)
	fmt.Fprintf(&sb, "dropped (no module):  %d\n", st.DroppedNoPair)
	fmt.Fprintf(&sb, "dropped (>=20K):      %d\n", st.DroppedTooBig)
	fmt.Fprintf(&sb, "dropped (duplicate):  %d\n", st.DroppedDup)
	fmt.Fprintf(&sb, "kept files:           %d (%d bytes)\n", st.Kept, st.KeptBytes)
	fmt.Fprintf(&sb, "textbook windows:     %d (from %d books)\n", len(wins), len(books))
	_ = kept
	sb.WriteString("paper scale: ~50K files / ~300 MB GitHub, 400 MB total with 70 books\n")
	return sb.String()
}

// FailureGallery shows one characteristic near-miss per problem with the
// mutation operator that produced it (cf. the paper's Figs. 2-4 incorrect
// completions).
func (h *Harness) FailureGallery() string {
	rng := rand.New(rand.NewSource(h.Seed))
	var sb strings.Builder
	sb.WriteString("Failure-mode gallery (one verified near-miss per problem)\n")
	for _, p := range problems.All() {
		res, err := mutate.Apply(p.ReferenceSource(), rng)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "\n-- Problem %d (%s): operator %q\n", p.Number, p.Slug, res.Operator)
		lines := strings.Split(strings.TrimSpace(res.Source), "\n")
		if len(lines) > 8 {
			lines = append(lines[:8], "  ...")
		}
		sb.WriteString(strings.Join(lines, "\n"))
		sb.WriteString("\n")
	}
	return sb.String()
}

// PassAtKTable reports the unbiased pass@k estimator (Chen et al. 2021,
// the metric VerilogEval standardized after this paper) for the figure
// models, pooled per difficulty, at k = 1, 5, 10 from n=25 samples.
func (h *Harness) PassAtKTable() string {
	const n = 25
	ks := []int{1, 5, 10}
	var sb strings.Builder
	sb.WriteString("pass@k (unbiased estimator, n=25, t=0.1) — framework extension\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Model\tType\tDifficulty\tpass@1\tpass@5\tpass@10")
	for _, mv := range figureVariants() {
		for _, d := range problems.Difficulties {
			var qs []eval.Query
			for _, p := range problems.ByDifficulty(d) {
				for _, l := range problems.Levels {
					qs = append(qs, eval.Query{
						Model: mv.Model, Variant: mv.Variant,
						Problem: p, Level: l, Temperature: 0.1, N: n,
					})
				}
			}
			pooled := eval.CellStats{}
			for _, st := range h.src().Cells(qs) {
				pooled.Add(st)
			}
			fmt.Fprintf(w, "%s\t%s\t%s", mv.Model, mv.Variant, d)
			for _, k := range ks {
				fmt.Fprintf(w, "\t%.3f", eval.PassAtKFromCell(pooled, k))
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return sb.String()
}

// ProblemBreakdown reports per-problem pass counts for CodeGen-16B-FT,
// reproducing the Section VI finding that problems 7 and 12 never pass
// and problem 9 almost never does.
func (h *Harness) ProblemBreakdown() string {
	mv := eval.ModelVariant{Model: model.CodeGen16B, Variant: model.FineTuned}
	var sb strings.Builder
	sb.WriteString("Per-problem results, CodeGen-16B FT (Section VI analysis)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Prob.#\tSlug\tDifficulty\tSamples\tCompiled\tPassed\tPass 95% CI")
	n := h.Opts.ResolvedN()
	for _, p := range problems.All() {
		var qs []eval.Query
		for _, l := range problems.Levels {
			for _, t := range []float64{0.1, 0.3, 0.5, 0.7, 1.0} {
				qs = append(qs, eval.Query{
					Model: mv.Model, Variant: mv.Variant,
					Problem: p, Level: l, Temperature: t, N: n,
				})
			}
		}
		pooled := eval.CellStats{}
		for _, st := range h.src().Cells(qs) {
			pooled.Add(st)
		}
		lo, hi := pooled.PassInterval()
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%d\t%d\t[%.2f, %.2f]\n",
			p.Number, p.Slug, p.Difficulty, pooled.Samples, pooled.Compiled, pooled.Passed, lo, hi)
	}
	w.Flush()
	return sb.String()
}

// LintReport is a framework extension: the synthesizability dimension the
// paper's predecessor study checked. It lints the 17 reference solutions
// and a population of near-miss mutants, reporting findings per rule —
// showing that functionally failing near-misses also skew dirty under
// synthesis-style checks.
func (h *Harness) LintReport() string {
	lintOne := func(src, top string) []lint.Finding {
		f, err := vlog.Parse(src)
		if err != nil {
			return nil
		}
		d, err := elab.Elaborate(f, top, elab.Options{})
		if err != nil {
			return nil
		}
		return lint.Check(d)
	}
	refCounts := map[string]int{}
	for _, p := range problems.All() {
		for _, fd := range lintOne(p.ReferenceSource(), p.ModuleName) {
			refCounts[fd.Rule]++
		}
	}
	rng := rand.New(rand.NewSource(h.Seed + 5))
	mutCounts := map[string]int{}
	mutants := 0
	for _, p := range problems.All() {
		for i := 0; i < 6; i++ {
			res, err := mutate.Apply(p.ReferenceSource(), rng)
			if err != nil {
				continue
			}
			mutants++
			for _, fd := range lintOne(res.Source, p.ModuleName) {
				mutCounts[fd.Rule]++
			}
		}
	}
	rules := map[string]bool{}
	//vgencheck:ordered set union into a map; the rule set is rendered only via the sorted names below
	for r := range refCounts {
		rules[r] = true
	}
	//vgencheck:ordered set union into a map; the rule set is rendered only via the sorted names below
	for r := range mutCounts {
		rules[r] = true
	}
	var names []string
	for r := range rules {
		names = append(names, r)
	}
	sort.Strings(names)

	var sb strings.Builder
	sb.WriteString("Lint findings (framework extension): references vs near-miss mutants\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Rule\t17 references\t%d mutants\n", mutants)
	for _, r := range names {
		fmt.Fprintf(w, "%s\t%d\t%d\n", r, refCounts[r], mutCounts[r])
	}
	w.Flush()
	return sb.String()
}

// ExperimentIndex lists every regenerable artifact (for --list output),
// derived from the renderer registry so the listing can never advertise
// a name the dispatcher doesn't know, or miss one it does.
func ExperimentIndex() []string {
	items := make([]string, 0, len(renderers))
	for _, r := range renderers {
		items = append(items, r.Name+": "+r.Desc)
	}
	sort.Strings(items)
	return items
}
