package harness

import (
	"strings"
	"testing"

	"repro/internal/eval"
)

// quick sweep settings keep the full-table tests fast
func quickHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := New(Options{
		Seed:        7,
		CorpusFiles: 60,
		Sweep:       eval.SweepOptions{N: 4, Temperatures: []float64{0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTableIStatic(t *testing.T) {
	h := quickHarness(t)
	out := h.TableI()
	for _, want := range []string{"MegatronLM-355M", "code-davinci-002", "CodeGen-16B", "NA", "4096"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIStatic(t *testing.T) {
	h := quickHarness(t)
	out := h.TableII()
	if !strings.Contains(out, "ABRO FSM") || !strings.Contains(out, "A simple wire") {
		t.Errorf("Table II incomplete:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 18 {
		t.Errorf("Table II too short: %d lines", got)
	}
}

func TestTableIIIRendersAllRows(t *testing.T) {
	h := quickHarness(t)
	out := h.TableIII()
	if strings.Count(out, "PT") < 6 || strings.Count(out, "FT") < 5 {
		t.Errorf("Table III rows missing:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Error("Table III should show measured|paper pairs")
	}
}

func TestTableIVRendersAllCells(t *testing.T) {
	h := quickHarness(t)
	out := h.TableIV()
	if !strings.Contains(out, "Inf.(s)") {
		t.Error("Table IV missing inference time column")
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + 11 variant rows
	if len(rows) != 13 {
		t.Errorf("Table IV rows = %d:\n%s", len(rows), out)
	}
}

func TestFigure6Output(t *testing.T) {
	h := quickHarness(t)
	out := h.Figure6()
	if !strings.Contains(out, "vs temperature") || !strings.Contains(out, "vs completions per prompt") {
		t.Errorf("Figure 6 missing panels:\n%s", out)
	}
	if !strings.Contains(out, "J1-Large-7B,FT") {
		t.Error("Figure 6 missing J1 series")
	}
	if !strings.Contains(out, "skipped") {
		t.Error("Figure 6 should mark J1's skipped n=25")
	}
}

func TestFigure7Output(t *testing.T) {
	h := quickHarness(t)
	out := h.Figure7()
	if !strings.Contains(out, "vs description level") || !strings.Contains(out, "vs difficulty") {
		t.Errorf("Figure 7 missing panels:\n%s", out)
	}
}

func TestHeadlineReport(t *testing.T) {
	h := quickHarness(t)
	out := h.HeadlineReport()
	for _, want := range []string{"0.646", "0.419", "0.354", "fine-tuned"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %q:\n%s", want, out)
		}
	}
}

func TestCorpusStats(t *testing.T) {
	h := quickHarness(t)
	out := h.CorpusStats()
	for _, want := range []string{"raw files", "duplicate", "textbook windows", "50K files"} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus stats missing %q:\n%s", want, out)
		}
	}
}

func TestFailureGallery(t *testing.T) {
	h := quickHarness(t)
	out := h.FailureGallery()
	if strings.Count(out, "-- Problem") < 15 {
		t.Errorf("gallery too sparse:\n%s", out)
	}
	if !strings.Contains(out, "operator") {
		t.Error("gallery missing operator names")
	}
}

func TestExperimentIndex(t *testing.T) {
	idx := ExperimentIndex()
	if len(idx) != 13 {
		t.Fatalf("index size = %d", len(idx))
	}
}

func TestProblemBreakdownReproducesSectionVI(t *testing.T) {
	h := quickHarness(t)
	out := h.ProblemBreakdown()
	lines := strings.Split(out, "\n")
	findCount := func(slug string) (passed string) {
		for _, l := range lines {
			if strings.Contains(l, slug) {
				f := strings.Fields(l)
				return f[len(f)-3] // Passed column
			}
		}
		t.Fatalf("slug %s missing:\n%s", slug, out)
		return ""
	}
	if got := findCount("lfsr"); got != "0" {
		t.Errorf("problem 7 passed = %s, want 0", got)
	}
	if got := findCount("truth-table"); got != "0" {
		t.Errorf("problem 12 passed = %s, want 0", got)
	}
}

func TestPassAtKTableShape(t *testing.T) {
	h := quickHarness(t)
	out := h.PassAtKTable()
	if !strings.Contains(out, "pass@1") || !strings.Contains(out, "pass@10") {
		t.Fatalf("pass@k table malformed:\n%s", out)
	}
	// 6 figure variants x 3 difficulties + header/title
	if got := strings.Count(strings.TrimSpace(out), "\n"); got < 19 {
		t.Fatalf("pass@k rows = %d:\n%s", got, out)
	}
}

func TestDeterministicTables(t *testing.T) {
	a := quickHarness(t).TableIII()
	b := quickHarness(t).TableIII()
	if a != b {
		t.Fatal("Table III not deterministic")
	}
}

// TestMergedShardsRenderIdentical drives the whole distributed path
// in-process: enumerate the artifact plan off the renderers, execute it
// as three shards on independent harnesses (separate processes share no
// caches), merge, and render from the merged stats alone. Output must be
// byte-identical to the live harness at every five-temperature artifact.
func TestMergedShardsRenderIdentical(t *testing.T) {
	opts := Options{
		Seed:        7,
		CorpusFiles: 60,
		Sweep:       eval.SweepOptions{N: 3, Temperatures: []float64{0.1, 0.3, 0.5, 0.7, 1.0}},
	}
	live, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	experiments := []string{"table3", "fig6", "passk"}
	plan, err := live.PlanFor(experiments)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() == 0 {
		t.Fatal("empty plan")
	}

	const shards = 3
	merged := eval.NewResultSet()
	for i := 0; i < shards; i++ {
		worker, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := plan.Shard(i, shards)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := worker.Runner.RunPlan(sub)
		if err != nil {
			t.Fatal(err)
		}
		if err := merged.Merge(rs); err != nil {
			t.Fatal(err)
		}
	}

	offline := FromResults(merged, opts.Sweep)
	for _, check := range []struct {
		name string
		f    func(*Harness) string
	}{
		{"table3", (*Harness).TableIII},
		{"fig6", (*Harness).Figure6},
		{"passk", (*Harness).PassAtKTable},
	} {
		want := check.f(live)
		got := check.f(offline)
		if got != want {
			t.Errorf("%s differs between live and merged-shard rendering:\nlive:\n%s\nmerged:\n%s", check.name, want, got)
		}
	}
	if missing := merged.Missing(); len(missing) > 0 {
		t.Fatalf("merged results left %d cells unserved: %+v", len(missing), missing[0])
	}
}
