package store

// Query-layer tests: filtered listings, identity enumeration, and the
// two-identity Diff, all with deterministic (sorted, never map-order)
// output.

import (
	"reflect"
	"testing"

	"repro/internal/eval"
)

func intp(v int) *int       { return &v }
func int64p(v int64) *int64 { return &v }

// queryStore builds a store with a small deliberate cell population
// under two identities.
func queryStore(t *testing.T) (*Store, Identity, Identity) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	a := Identity{Backend: "backend A", Seed: 1}
	b := Identity{Backend: "backend B", Seed: 2}
	put := func(id Identity, c eval.Coord, st eval.CellStats) {
		t.Helper()
		if err := s.Put(id, c, st); err != nil {
			t.Fatal(err)
		}
	}
	// Identity A: problems 1..3 at two levels; identity B shares problem
	// 1 (identical), differs on problem 2, and lacks problem 3 but adds 4.
	for p := 1; p <= 3; p++ {
		for _, lvl := range []int{0, 2} {
			put(a, mkCoord(p, lvl, 500, 4), mkStats(p))
		}
	}
	put(b, mkCoord(1, 0, 500, 4), mkStats(1))
	put(b, mkCoord(1, 2, 500, 4), mkStats(1))
	put(b, mkCoord(2, 0, 500, 4), eval.CellStats{Samples: 4, Compiled: 2, Passed: 1, SumLat: 9})
	put(b, mkCoord(4, 0, 500, 4), mkStats(4))
	return s, a, b
}

func TestQueryFilters(t *testing.T) {
	s, a, b := queryStore(t)
	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"everything", Filter{}, 10},
		{"by backend", Filter{Backend: a.Backend}, 6},
		{"by seed", Filter{Seed: int64p(b.Seed)}, 4},
		{"by problem", Filter{Problem: intp(1)}, 4},
		{"by level", Filter{Level: intp(2)}, 4},
		{"by backend and problem", Filter{Backend: b.Backend, Problem: intp(2)}, 1},
		{"by model", Filter{Model: "CodeGen-16B"}, 10},
		{"by absent model", Filter{Model: "nobody"}, 0},
		{"by variant", Filter{Variant: "FT"}, 10},
		{"by temp", Filter{TempMilli: intp(500)}, 10},
		{"by absent n", Filter{N: intp(25)}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := s.Query(tc.f)
			if len(got) != tc.want {
				t.Fatalf("matched %d cells, want %d", len(got), tc.want)
			}
			for _, e := range got {
				if !tc.f.match(e.ID, e.Coord) {
					t.Fatalf("entry %+v does not match its own filter", e)
				}
			}
		})
	}
}

func TestQueryOrderingDeterministic(t *testing.T) {
	s, _, _ := queryStore(t)
	first := s.Query(Filter{})
	for i := 0; i < 5; i++ {
		if !reflect.DeepEqual(s.Query(Filter{}), first) {
			t.Fatal("Query order varies across calls (map-order leak)")
		}
	}
	for i := 1; i < len(first); i++ {
		p, q := first[i-1], first[i]
		if p.ID.Backend > q.ID.Backend {
			t.Fatalf("entries %d,%d out of identity order", i-1, i)
		}
		if p.ID == q.ID && !p.Coord.Less(q.Coord) {
			t.Fatalf("entries %d,%d out of coordinate order", i-1, i)
		}
	}
}

func TestIdentities(t *testing.T) {
	s, a, b := queryStore(t)
	got := s.Identities()
	want := []Identity{a, b}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Identities() = %v, want %v", got, want)
	}
}

func TestDiff(t *testing.T) {
	s, a, b := queryStore(t)
	d := s.Diff(a, b)
	// Shared and identical: problem 1 at both levels.
	if d.Same != 2 {
		t.Fatalf("Same = %d, want 2", d.Same)
	}
	// Shared and changed: problem 2 level 0.
	if len(d.Changed) != 1 || d.Changed[0].Coord != mkCoord(2, 0, 500, 4) {
		t.Fatalf("Changed = %+v", d.Changed)
	}
	if d.Changed[0].A == d.Changed[0].B {
		t.Fatal("Changed entry carries identical stats")
	}
	// Only in A: problem 2 level 2, problem 3 both levels.
	wantOnlyA := []eval.Coord{mkCoord(2, 2, 500, 4), mkCoord(3, 0, 500, 4), mkCoord(3, 2, 500, 4)}
	if !reflect.DeepEqual(d.OnlyA, wantOnlyA) {
		t.Fatalf("OnlyA = %+v, want %+v", d.OnlyA, wantOnlyA)
	}
	// Only in B: problem 4.
	if len(d.OnlyB) != 1 || d.OnlyB[0] != mkCoord(4, 0, 500, 4) {
		t.Fatalf("OnlyB = %+v", d.OnlyB)
	}

	// Direction flips cleanly.
	r := s.Diff(b, a)
	if !reflect.DeepEqual(r.OnlyA, d.OnlyB) || !reflect.DeepEqual(r.OnlyB, d.OnlyA) || r.Same != d.Same || len(r.Changed) != len(d.Changed) {
		t.Fatalf("reverse diff is not the mirror: %+v vs %+v", r, d)
	}

	// Self-diff: everything identical.
	self := s.Diff(a, a)
	if self.Same != 6 || len(self.OnlyA)+len(self.OnlyB)+len(self.Changed) != 0 {
		t.Fatalf("self diff = %+v", self)
	}
}
