package store

// Caching-layer tests: the headline guarantees of the PR. A warm store
// serves table3/fig6/passk byte-identically with zero backend calls; a
// killed sweep reopens, truncated tail and all, and resumes to the same
// bytes; failed and declined cells never poison the cache; and identity
// changes invalidate without any explicit flush.

import (
	"context"
	"os"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/problems"
)

// countingBackend counts Complete calls into the wrapped backend — the
// oracle for "a warm sweep performs zero backend calls".
type countingBackend struct {
	inner gen.Backend
	mu    sync.Mutex
	calls int
}

func (b *countingBackend) Complete(key gen.Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64) (gen.Sample, bool) {
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	return b.inner.Complete(key, p, level, temperature, sampleIdx, baseSeed)
}

func (b *countingBackend) Variants() []gen.Key { return b.inner.Variants() }

func (b *countingBackend) Describe() string { return b.inner.Describe() }

func (b *countingBackend) count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls
}

var testOpts = eval.SweepOptions{N: 2, Temperatures: []float64{0.1, 0.5}}

// newHarness builds a live harness whose cell reads go through the
// cached source.
func newHarness(r *eval.Runner, src eval.CellSource) *harness.Harness {
	return &harness.Harness{Runner: r, Source: src, Opts: testOpts, Seed: r.Seed}
}

// newResultHarness builds a render-only harness over a finished set.
func newResultHarness(rs *eval.ResultSet) *harness.Harness {
	return harness.FromResults(rs, testOpts)
}

// renderAll renders the three experiments the store-check CI job pins.
func renderAll(h *harness.Harness) string {
	return h.TableIII() + h.Figure6() + h.PassAtKTable()
}

func TestWarmStoreZeroBackendCalls(t *testing.T) {
	dir := t.TempDir()

	// Cold: every cell is a miss, computed through the counting backend
	// and persisted.
	cold := &countingBackend{inner: gen.NewMutant()}
	cr := eval.NewRunner(cold, 11)
	cs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity{Backend: cold.Describe(), Seed: 11}
	csrc := Cached(cr, cs, id)
	coldOut := renderAll(newHarness(cr, csrc))
	if err := csrc.Err(); err != nil {
		t.Fatal(err)
	}
	if cold.count() == 0 {
		t.Fatal("cold run never reached the backend; the test is vacuous")
	}
	// The renderers overlap in the cells they read, so the cold run hits
	// its own freshly persisted cells on later renders; what matters is
	// that everything computed got persisted.
	st := csrc.Stats()
	if st.Misses == 0 || st.Persisted != st.Misses {
		t.Fatalf("cold run stats %+v", st)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm: fresh process (fresh runner, fresh backend, reopened store).
	// Same bytes, zero Complete calls, zero misses.
	warm := &countingBackend{inner: gen.NewMutant()}
	wr := eval.NewRunner(warm, 11)
	ws, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	wsrc := Cached(wr, ws, id)
	warmOut := renderAll(newHarness(wr, wsrc))
	if warmOut != coldOut {
		t.Fatal("warm render differs from cold render")
	}
	if n := warm.count(); n != 0 {
		t.Fatalf("warm run made %d backend calls, want 0", n)
	}
	wst := wsrc.Stats()
	if wst.Misses != 0 || wst.Persisted != 0 || wst.Hits != st.Hits+st.Misses {
		t.Fatalf("warm run stats %+v against cold %+v", wst, st)
	}
}

func TestKillAndReopenResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	b := gen.NewMutant()
	id := Identity{Backend: b.Describe(), Seed: 5}

	// Reference: the monolithic cold run's table bytes and result set.
	cr := eval.NewRunner(b, 5)
	cs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(cr, Cached(cr, cs, id))
	plan, err := h.PlanFor([]string{"table3", "fig6", "passk"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Cached(cr, cs, id).RunPlanCtx(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	wantOut := renderAll(newResultHarness(want))
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill: tear the final segment mid-record, losing the tail of the
	// sweep's durable progress.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: reopen recovers to the last durable cell; the re-run serves
	// the survivors as hits, recomputes only the lost tail, and renders
	// the identical bytes.
	rs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rr := eval.NewRunner(gen.NewMutant(), 5)
	rsrc := Cached(rr, rs, id)
	got, err := rsrc.RunPlanCtx(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if gotOut := renderAll(newResultHarness(got)); gotOut != wantOut {
		t.Fatal("resumed render differs from the uninterrupted run")
	}
	st := rsrc.Stats()
	if st.Hits == 0 {
		t.Fatalf("resume adopted no durable cells: %+v", st)
	}
	if st.Misses == 0 {
		t.Fatalf("resume recomputed nothing; the tear lost no cells: %+v", st)
	}
	if st.Hits+st.Misses != plan.Len() {
		t.Fatalf("hits %d + misses %d != plan cells %d", st.Hits, st.Misses, plan.Len())
	}
	// The recomputed tail is durable again: a second warm pass is all hits.
	second := Cached(eval.NewRunner(gen.NewMutant(), 5), rs, id)
	if _, err := second.RunPlanCtx(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if sst := second.Stats(); sst.Misses != 0 {
		t.Fatalf("second resume still missed %d cells", sst.Misses)
	}
}

// fakeInner is a scriptable CellSource with failure reporting: it serves
// fixed stats, marks configured coordinates failed (serving zeros for
// them, as the Runner does), and declines configured coordinates with
// zero samples.
type fakeInner struct {
	calls    int
	failed   map[eval.Coord]bool
	declined map[eval.Coord]bool
}

func (f *fakeInner) Cells(qs []eval.Query) []eval.CellStats {
	out := make([]eval.CellStats, len(qs))
	for i, q := range qs {
		f.calls++
		c := q.Coord()
		if f.failed[c] || f.declined[c] {
			continue // zero stats
		}
		out[i] = eval.CellStats{Samples: c.N, Compiled: c.N, Passed: c.N / 2, SumLat: float64(c.Problem)}
	}
	return out
}

func (f *fakeInner) LastFailures() []eval.CellFailure {
	var out []eval.CellFailure
	for c := range f.failed {
		out = append(out, eval.CellFailure{Coord: c})
	}
	return out
}

func TestCachedSourceSkipsFailedAndDeclinedCells(t *testing.T) {
	good := mkCoord(1, 0, 100, 4)
	bad := mkCoord(2, 0, 100, 4)
	declined := mkCoord(3, 0, 100, 4)
	inner := &fakeInner{
		failed:   map[eval.Coord]bool{bad: true},
		declined: map[eval.Coord]bool{declined: true},
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	src := Cached(inner, st, testID)

	var qs []eval.Query
	for _, c := range []eval.Coord{good, bad, declined} {
		q, err := c.Query()
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	out := src.Cells(qs)
	if out[0].Samples == 0 || out[1].Samples != 0 || out[2].Samples != 0 {
		t.Fatalf("served stats %+v", out)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(testID, good); !ok {
		t.Fatal("good cell not persisted")
	}
	if _, ok := st.Get(testID, bad); ok {
		t.Fatal("failed cell persisted: its zeros would outlive the failure")
	}
	if _, ok := st.Get(testID, declined); ok {
		t.Fatal("declined cell persisted")
	}
	if s := src.Stats(); s.Persisted != 1 || s.Misses != 3 || s.Hits != 0 {
		t.Fatalf("stats %+v", s)
	}

	// The failed cell stays a miss: a later batch retries it (and the
	// failure having cleared, persists it).
	inner.failed = nil
	out = src.Cells(qs[:2])
	if out[0].Samples == 0 || out[1].Samples == 0 {
		t.Fatalf("retry served %+v", out)
	}
	if s := src.Stats(); s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("retry stats %+v", s)
	}
	if _, ok := st.Get(testID, bad); !ok {
		t.Fatal("recovered cell not persisted on retry")
	}
}

func TestIdentityInvalidation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := mkCoord(4, 1, 500, 4)
	q, err := c.Query()
	if err != nil {
		t.Fatal(err)
	}

	a := Cached(&fakeInner{}, st, Identity{Backend: "backend A", Seed: 1})
	a.Cells([]eval.Query{q})
	if s := a.Stats(); s.Misses != 1 || s.Persisted != 1 {
		t.Fatalf("first sweep stats %+v", s)
	}

	// Same store, different backend tag and different seed: both look up
	// different keys, so neither hits the first sweep's cell.
	for _, id := range []Identity{{Backend: "backend B", Seed: 1}, {Backend: "backend A", Seed: 2}} {
		src := Cached(&fakeInner{}, st, id)
		src.Cells([]eval.Query{q})
		if s := src.Stats(); s.Hits != 0 || s.Misses != 1 {
			t.Fatalf("identity %s stats %+v: stale hit across identity change", id, s)
		}
	}
	// The original identity still hits.
	again := Cached(&fakeInner{}, st, Identity{Backend: "backend A", Seed: 1})
	again.Cells([]eval.Query{q})
	if s := again.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("original identity stats %+v", s)
	}
}

func TestPersistConflictGoesSticky(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := mkCoord(5, 2, 1000, 4)
	if err := st.Put(testID, c, mkStats(1)); err != nil {
		t.Fatal(err)
	}
	src := Cached(&fakeInner{}, st, testID)
	if n := src.persist(c, eval.CellStats{Samples: 4, Compiled: 4, Passed: 4, SumLat: 1}, nil); n != 0 {
		t.Fatal("conflicting persist reported success")
	}
	if src.Err() == nil {
		t.Fatal("conflict did not stick on the source")
	}
	if st.Err() != nil {
		t.Fatal("a rejected Put must not poison the store itself")
	}
}
