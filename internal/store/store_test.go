package store

// Durability tests for the segment log: round trips, rotation, torn-tail
// recovery, and a corruption-rejection table. The bar everywhere is the
// WAL discipline: a crash mid-append costs at most the torn tail; any
// other damage refuses the store loudly rather than serving a possibly
// wrong cell into a rendered table.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
)

var testID = Identity{Backend: "test: backend with spaces (and parens)", Seed: 7}

// mkCoord builds a resolvable coordinate (problem 1..17, level 0..2).
func mkCoord(problem, level, tempMilli, n int) eval.Coord {
	return eval.Coord{
		Model: "CodeGen-16B", Variant: "FT",
		Problem: problem, Level: level, TempMilli: tempMilli, N: n,
	}
}

func mkStats(i int) eval.CellStats {
	return eval.CellStats{Samples: 4, Compiled: 3, Passed: i % 3, SumLat: 0.125 * float64(i)}
}

// fill puts n distinct cells and returns their coordinates in put order.
func fill(t *testing.T, s *Store, n int) []eval.Coord {
	t.Helper()
	var coords []eval.Coord
	for i := 0; i < n; i++ {
		c := mkCoord(1+i%17, i%3, 100*(1+i%10), 4)
		if _, dup := s.Get(testID, c); dup {
			continue
		}
		if err := s.Put(testID, c, mkStats(i)); err != nil {
			t.Fatal(err)
		}
		coords = append(coords, c)
	}
	return coords
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coords := fill(t, s, 40)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(coords) {
		t.Fatalf("reopened store holds %d cells, wrote %d", r.Len(), len(coords))
	}
	for i, c := range coords {
		st, ok := r.Get(testID, c)
		if !ok {
			t.Fatalf("cell %+v missing after reopen", c)
		}
		if want := mkStats(i); st != want {
			t.Fatalf("cell %+v: %+v after reopen, wrote %+v", c, st, want)
		}
	}
	if _, ok := r.Get(Identity{Backend: testID.Backend, Seed: 8}, coords[0]); ok {
		t.Fatal("a different seed must miss: invalidation is identity-keyed")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.maxSeg = 512 // a few records per segment
	coords := fill(t, s, 40)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "cells-*.log"))
	if len(segs) < 3 {
		t.Fatalf("40 records against a 512B segment cap produced %d segment(s)", len(segs))
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(coords) {
		t.Fatalf("reopen across %d segments holds %d cells, want %d", len(segs), r.Len(), len(coords))
	}
	// Appends continue in the final segment, not a fresh one.
	c := mkCoord(17, 2, 999, 4)
	if err := r.Put(testID, c, mkStats(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "cells-*.log"))
	if len(after) != len(segs) {
		t.Fatalf("one small append grew segment count %d -> %d", len(segs), len(after))
	}
}

// lastSegment returns the path of the store directory's final segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "cells-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return segs[len(segs)-1]
}

// buildStore writes n cells into a fresh store dir and returns the dir.
func buildStore(t *testing.T, n int, maxSeg int64) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeg > 0 {
		s.maxSeg = maxSeg
	}
	fill(t, s, n)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestTornTailRecovered(t *testing.T) {
	cases := []struct {
		name string
		tear func(data []byte) []byte
	}{
		{"partial final record", func(d []byte) []byte {
			return d[:len(d)-9] // mid-record, newline gone
		}},
		{"final record checksum damaged", func(d []byte) []byte {
			d[len(d)-3]++ // payload byte flipped, newline intact
			return d
		}},
		{"final record lost its newline", func(d []byte) []byte {
			return d[:len(d)-1] // decodes fine, not newline-terminated
		}},
		{"garbage appended after the last record", func(d []byte) []byte {
			return append(d, []byte("s1 deadbeef {tor")...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := buildStore(t, 12, 0)
			seg := lastSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tc.tear(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatalf("torn tail must recover, got: %v", err)
			}
			defer s.Close()
			if got := s.Len(); got < 10 || got > 12 {
				t.Fatalf("recovered %d cells from a 12-cell store with one torn tail", got)
			}
			// The truncated tail is really gone: a reopen sees a clean store.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Open(dir)
			if err != nil {
				t.Fatalf("second open after recovery: %v", err)
			}
			r.Close()
		})
	}
}

func TestCorruptionRejected(t *testing.T) {
	cases := []struct {
		name   string
		maxSeg int64
		damage func(t *testing.T, dir string)
	}{
		{"checksum flipped mid-file", 0, func(t *testing.T, dir string) {
			seg := lastSegment(t, dir)
			data, _ := os.ReadFile(seg)
			lines := bytes.SplitAfter(data, []byte("\n"))
			lines[2][len(lines[2])-3]++ // a record with records after it
			os.WriteFile(seg, bytes.Join(lines, nil), 0o644)
		}},
		{"garbage line mid-file", 0, func(t *testing.T, dir string) {
			seg := lastSegment(t, dir)
			data, _ := os.ReadFile(seg)
			lines := bytes.SplitAfter(data, []byte("\n"))
			lines[1] = []byte("not a record at all\n")
			os.WriteFile(seg, bytes.Join(lines, nil), 0o644)
		}},
		{"unknown record version mid-file", 0, func(t *testing.T, dir string) {
			seg := lastSegment(t, dir)
			data, _ := os.ReadFile(seg)
			os.WriteFile(seg, append([]byte("s2"), data[2:]...), 0o644)
		}},
		{"torn tail in a non-final segment", 256, func(t *testing.T, dir string) {
			segs, _ := filepath.Glob(filepath.Join(dir, "cells-*.log"))
			if len(segs) < 2 {
				t.Fatal("rotation produced one segment; the case needs two")
			}
			first := segs[0]
			data, _ := os.ReadFile(first)
			os.WriteFile(first, data[:len(data)-7], 0o644)
		}},
		{"conflicting duplicate cell", 0, func(t *testing.T, dir string) {
			// A validly checksummed record for an existing coordinate with
			// different stats, followed by another record so it is mid-file.
			c := mkCoord(1, 0, 100, 4) // fill's first cell
			conflict, err := encodeRecord(testID, c, eval.CellStats{Samples: 4, Compiled: 4, Passed: 4, SumLat: 9})
			if err != nil {
				t.Fatal(err)
			}
			tail, err := encodeRecord(testID, mkCoord(17, 2, 999, 4), mkStats(0))
			if err != nil {
				t.Fatal(err)
			}
			seg := lastSegment(t, dir)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(conflict)
			f.Write(tail)
			f.Close()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := buildStore(t, 12, tc.maxSeg)
			tc.damage(t, dir)
			if s, err := Open(dir); err == nil {
				s.Close()
				t.Fatal("corrupted store opened cleanly")
			}
		})
	}
}

func TestPutSemantics(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := mkCoord(3, 1, 500, 10)
	st := eval.CellStats{Samples: 10, Compiled: 8, Passed: 5, SumLat: 2.5}
	if err := s.Put(testID, c, st); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testID, c, st); err != nil {
		t.Fatalf("identical re-put must be a no-op, got: %v", err)
	}
	if s.Added() != 1 {
		t.Fatalf("Added = %d after one new cell and one no-op", s.Added())
	}
	if err := s.Put(testID, c, eval.CellStats{Samples: 10, Compiled: 8, Passed: 6, SumLat: 2.5}); err == nil {
		t.Fatal("conflicting re-put must be rejected")
	}
	// Validation mirrors wire: inconsistent stats and bad coordinates are
	// rejected at the writer.
	if err := s.Put(testID, c, eval.CellStats{Samples: 11}); err == nil {
		t.Fatal("Samples > N must be rejected")
	}
	if err := s.Put(testID, mkCoord(99, 0, 100, 4), st); err == nil {
		t.Fatal("unresolvable problem number must be rejected")
	}
	if err := s.Put(Identity{Seed: 1}, mkCoord(4, 0, 100, 4), eval.CellStats{Samples: 1, SumLat: 0}); err == nil {
		t.Fatal("empty backend tag must be rejected")
	}
}

func TestParseIdentity(t *testing.T) {
	tag := "family: simulated n-gram line-up (60 fine-tuning docs)"
	id, err := ParseIdentity(tag + "@42")
	if err != nil {
		t.Fatal(err)
	}
	if id.Backend != tag || id.Seed != 42 {
		t.Fatalf("parsed %+v", id)
	}
	if id.String() != tag+"@42" {
		t.Fatalf("round trip: %q", id.String())
	}
	bare, err := ParseIdentity("-3")
	if err != nil || bare != (Identity{Seed: -3}) {
		t.Fatalf("bare seed: %+v, %v", bare, err)
	}
	if _, err := ParseIdentity("backend@notanumber"); err == nil {
		t.Fatal("non-integer seed must be rejected")
	}
}

func TestWriteToRoundTrip(t *testing.T) {
	dir := buildStore(t, 25, 0)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var dump bytes.Buffer
	if err := s.writeTo(&dump); err != nil {
		t.Fatal(err)
	}
	// Replaying the dump into a fresh store reproduces the cell set.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, segName(1)), dump.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != s.Len() {
		t.Fatalf("replayed dump holds %d cells, original %d", r.Len(), s.Len())
	}
	for _, e := range s.Query(Filter{}) {
		if got, ok := r.Get(e.ID, e.Coord); !ok || got != e.Stats {
			t.Fatalf("cell %+v: %+v (present=%v), want %+v", e.Coord, got, ok, e.Stats)
		}
	}
}

func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("family: sweep", int64(1), 3, 1, 500, 10, 10, 8, 5, 2.5)
	f.Add("b@x", int64(-9), 17, 2, 100, 1, 1, 1, 1, 0.0)
	f.Add("m", int64(0), 1, 0, 0, 25, 0, 0, 0, 0.0)
	f.Fuzz(func(t *testing.T, backend string, seed int64, problem, level, tempMilli, n, samples, compiled, passed int, sumLat float64) {
		id := Identity{Backend: backend, Seed: seed}
		c := eval.Coord{Model: "CodeGen-16B", Variant: "PT", Problem: problem, Level: level, TempMilli: tempMilli, N: n}
		st := eval.CellStats{Samples: samples, Compiled: compiled, Passed: passed, SumLat: sumLat}
		line, err := encodeRecord(id, c, st)
		if err != nil {
			return // invalid input rejected at the writer: exactly the contract
		}
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatal("encoded record is not newline-terminated")
		}
		gid, gc, gst, err := decodeRecord(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			t.Fatalf("encoded record does not decode: %v\n%s", err, line)
		}
		if gid != id || gc != c || gst != st {
			t.Fatalf("round trip drift: (%+v %+v %+v) -> (%+v %+v %+v)", id, c, st, gid, gc, gst)
		}
	})
}

func FuzzDecodeRecord(f *testing.F) {
	good, _ := encodeRecord(testID, mkCoord(2, 1, 300, 4), mkStats(3))
	f.Add(string(good))
	f.Add("s1 00000000 {}")
	f.Add("")
	f.Add(strings.Repeat("s1 ", 100))
	f.Fuzz(func(t *testing.T, line string) {
		// Must never panic; errors are the expected outcome for junk.
		id, c, st, err := decodeRecord([]byte(line))
		if err == nil {
			// Whatever decodes must re-encode decodably (idempotent format).
			if _, rerr := encodeRecord(id, c, st); rerr != nil {
				t.Fatalf("decoded record fails re-encode: %v", rerr)
			}
		}
	})
}

func TestOpenOnMissingDirCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cells")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testID, mkCoord(5, 0, 100, 4), mkStats(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testID, mkCoord(1, 0, 100, 4), mkStats(0)); err == nil {
		t.Fatal("Put after Close must fail")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Err after Close: %v", err)
	}
}

// TestSyncDurability proves the chunk-boundary contract: cells written
// before a Sync survive a simulated kill (the file is never closed; we
// reopen the directory as a second store and must see the synced cells).
func TestSyncDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := mkCoord(7, 1, 700, 4)
	if err := s.Put(testID, c, mkStats(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// No Close: the "killed" process never got to clean up. Scan what is
	// on disk (the OS keeps written bytes visible to other readers).
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(testID, c); !ok {
		t.Fatal("synced cell invisible to a post-kill reopen")
	}
	r.Close()
	s.Close()
}

func TestAddedCountsOnlyNewCells(t *testing.T) {
	dir := buildStore(t, 10, 0)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Added() != 0 {
		t.Fatalf("fresh session reports %d added", s.Added())
	}
	// Re-putting resident cells adds nothing; one new cell adds one.
	for _, e := range s.Query(Filter{}) {
		if err := s.Put(e.ID, e.Coord, e.Stats); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(testID, mkCoord(17, 2, 999, 4), mkStats(2)); err != nil {
		t.Fatal(err)
	}
	if s.Added() != 1 {
		t.Fatalf("Added = %d, want 1", s.Added())
	}
}
