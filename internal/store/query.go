package store

// The query layer: the store doubles as sweep history, so ad-hoc "what
// did that run produce" table regeneration becomes a filtered listing
// (Query) and "what changed between those two sweeps" becomes a
// coordinate-aligned Diff between two identities. Both are read-only
// and deterministic: results come out sorted by identity then canonical
// coordinate order, never map order.

import (
	"slices"
	"sort"

	"repro/internal/eval"
)

// Filter selects cells for Query. Nil/zero fields match everything;
// string fields match exactly; int pointers pin one value.
type Filter struct {
	Backend   string // "" = any
	Seed      *int64
	Model     string // "" = any
	Variant   string // "" = any
	Problem   *int
	Level     *int
	TempMilli *int
	N         *int
}

func (f Filter) match(id Identity, c eval.Coord) bool {
	switch {
	case f.Backend != "" && id.Backend != f.Backend,
		f.Seed != nil && id.Seed != *f.Seed,
		f.Model != "" && c.Model != f.Model,
		f.Variant != "" && c.Variant != f.Variant,
		f.Problem != nil && c.Problem != *f.Problem,
		f.Level != nil && c.Level != *f.Level,
		f.TempMilli != nil && c.TempMilli != *f.TempMilli,
		f.N != nil && c.N != *f.N:
		return false
	}
	return true
}

// Entry is one resident cell with its full key.
type Entry struct {
	ID    Identity
	Coord eval.Coord
	Stats eval.CellStats
}

// Query lists the resident cells matching the filter, sorted by
// identity (backend tag, then seed) and canonical coordinate order.
func (s *Store) Query(f Filter) []Entry {
	s.mu.Lock()
	var out []Entry
	for k, st := range s.cells {
		if f.match(k.id, k.c) {
			out = append(out, Entry{ID: k.id, Coord: k.c, Stats: st})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ID.Backend != b.ID.Backend {
			return a.ID.Backend < b.ID.Backend
		}
		if a.ID.Seed != b.ID.Seed {
			return a.ID.Seed < b.ID.Seed
		}
		return a.Coord.Less(b.Coord)
	})
	return out
}

// Identities lists the distinct sweep identities with resident cells,
// sorted by backend tag then seed.
func (s *Store) Identities() []Identity {
	s.mu.Lock()
	out := make([]Identity, 0, len(s.cells))
	for k := range s.cells {
		out = append(out, k.id)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Backend != out[j].Backend {
			return out[i].Backend < out[j].Backend
		}
		return out[i].Seed < out[j].Seed
	})
	return slices.Compact(out)
}

// DiffEntry is one coordinate present under both diffed identities with
// differing stats.
type DiffEntry struct {
	Coord eval.Coord
	A, B  eval.CellStats
}

// DiffResult is the coordinate-aligned comparison of two identities'
// resident cells.
type DiffResult struct {
	OnlyA, OnlyB []eval.Coord // cells one identity has and the other lacks
	Changed      []DiffEntry  // cells present in both with different stats
	Same         int          // cells present in both with identical stats
}

// Diff compares the cells resident under two identities, coordinate by
// coordinate. All slices come out in canonical coordinate order: both
// sides come from Query (already sorted), so a single merge walk aligns
// them without ever touching map iteration order.
func (s *Store) Diff(a, b Identity) DiffResult {
	if a == b {
		// Degenerate but well-defined: an identity diffed against itself
		// has every resident cell identical.
		return DiffResult{Same: len(s.Query(Filter{Backend: a.Backend, Seed: &a.Seed}))}
	}
	// Backend tags are never empty in a resident cell (the record writer
	// rejects them), so these filters select exactly one identity each.
	as := s.Query(Filter{Backend: a.Backend, Seed: &a.Seed})
	bs := s.Query(Filter{Backend: b.Backend, Seed: &b.Seed})

	var res DiffResult
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		ac, bc := as[i].Coord, bs[j].Coord
		switch {
		case ac == bc:
			if as[i].Stats == bs[j].Stats {
				res.Same++
			} else {
				res.Changed = append(res.Changed, DiffEntry{Coord: ac, A: as[i].Stats, B: bs[j].Stats})
			}
			i++
			j++
		case ac.Less(bc):
			res.OnlyA = append(res.OnlyA, ac)
			i++
		default:
			res.OnlyB = append(res.OnlyB, bc)
			j++
		}
	}
	for ; i < len(as); i++ {
		res.OnlyA = append(res.OnlyA, as[i].Coord)
	}
	for ; j < len(bs); j++ {
		res.OnlyB = append(res.OnlyB, bs[j].Coord)
	}
	return res
}
