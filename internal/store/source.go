package store

// The caching layer: Cached composes the store under any CellSource as
// an eval.PlanRunner, so the whole render/shard/coordinate stack runs
// unchanged while warm cells come from disk and only misses reach the
// backend. New cells persist as their chunk completes — with a Sync at
// every chunk boundary — so an interrupted sweep resumes from the last
// durable cell, and a warm re-run of table3/fig6/passk performs zero
// backend calls.

import (
	"context"
	"sync"

	"repro/internal/eval"
)

// failureReporter is the slice of the Runner the caching layer needs to
// know which cells of the delegated batch must be neither persisted nor
// served: a failed cell's zeros are a degradation signal, not a fact
// about the sweep, and caching one would make the failure permanent.
type failureReporter interface {
	LastFailures() []eval.CellFailure
}

// runChunk is how many missed cells are computed between Syncs on the
// plan path. Chunking changes durability granularity only, never bytes:
// per-sample seed streams are pure functions of their coordinates, so
// any partition of the miss set produces identical CellStats.
const runChunk = 32

// SourceStats counts one Source's traffic. Misses is exactly the number
// of cells that reached the inner source — a warm run reports 0 misses,
// which is the "zero backend calls" check CI greps for.
type SourceStats struct {
	Hits      int // cells served from the store
	Misses    int // cells delegated to the inner source
	Persisted int // newly computed cells appended to the store
}

// Source serves cells from the store, delegating misses to the inner
// source and persisting what comes back. It implements eval.PlanRunner,
// so it slots in wherever a Runner does.
type Source struct {
	inner eval.CellSource
	store *Store
	id    Identity

	mu    sync.Mutex
	stats SourceStats
	err   error // first persistence rejection (e.g. a conflicting cell), sticky
}

// Cached wraps inner with the store under the given sweep identity. The
// identity is the cache key's sweep half: pass the unwrapped backend tag
// and runner seed (core captures both), and invalidation takes care of
// itself — a corpus, backend, or seed change looks up different keys.
func Cached(inner eval.CellSource, st *Store, id Identity) *Source {
	return &Source{inner: inner, store: st, id: id}
}

// Stats returns a snapshot of the source's traffic counters.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Err surfaces the first persistence failure — the source's own (a
// rejected conflicting cell) or the store's sticky write error.
// Persistence failures never corrupt served results (the computed cells
// still flow through), so callers check here after rendering to fail
// loudly instead of silently losing warmth.
func (s *Source) Err() error {
	s.mu.Lock()
	err := s.err
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.store.Err()
}

func (s *Source) setErr(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Source) count(delta SourceStats) {
	s.mu.Lock()
	s.stats.Hits += delta.Hits
	s.stats.Misses += delta.Misses
	s.stats.Persisted += delta.Persisted
	s.mu.Unlock()
}

// failedCoords collects the inner source's most recent exclusion list.
func (s *Source) failedCoords() map[eval.Coord]bool {
	fr, ok := s.inner.(failureReporter)
	if !ok {
		return nil
	}
	failed := map[eval.Coord]bool{}
	for _, f := range fr.LastFailures() {
		failed[f.Coord] = true
	}
	return failed
}

// persist appends one computed cell unless it is unservable (zero
// samples: the backend declined the coordinate) or failed (the inner
// runner degraded it). A rejected Put goes sticky on the source — see
// Err — and serving continues.
func (s *Source) persist(c eval.Coord, st eval.CellStats, failed map[eval.Coord]bool) int {
	if st.Samples == 0 || failed[c] {
		return 0
	}
	if err := s.store.Put(s.id, c, st); err != nil {
		s.setErr(err)
		return 0
	}
	return 1
}

// Cells implements eval.CellSource: hits from the store, the miss
// residue delegated to the inner source as one batch (preserving its
// coalescing and worker fan-out), new cells persisted and synced.
func (s *Source) Cells(qs []eval.Query) []eval.CellStats {
	out := make([]eval.CellStats, len(qs))
	var missQs []eval.Query
	var missIdx []int
	delta := SourceStats{}
	for i, q := range qs {
		if st, ok := s.store.Get(s.id, q.Coord()); ok {
			out[i] = st
			delta.Hits++
		} else {
			missQs = append(missQs, q)
			missIdx = append(missIdx, i)
		}
	}
	if len(missQs) == 0 {
		s.count(delta)
		return out
	}
	delta.Misses += len(missQs)
	res := s.inner.Cells(missQs)
	failed := s.failedCoords()
	for j, i := range missIdx {
		out[i] = res[j]
		delta.Persisted += s.persist(missQs[j].Coord(), res[j], failed)
	}
	s.store.Sync() // errors stick on the store; see Err
	s.count(delta)
	return out
}

// RunPlanCtx implements eval.PlanRunner: store-resident cells are
// adopted without execution, and the remaining plan runs in chunks of
// runChunk cells with a durable Sync after each — cell-granular
// crash-safe resume. Failed cells stay out of the returned set (and the
// store), exactly as Runner.RunPlanCtx leaves them out, so shard
// validation and coordinator retries behave identically warm or cold.
func (s *Source) RunPlanCtx(ctx context.Context, p *eval.Plan) (*eval.ResultSet, error) {
	if err := p.Err(); err != nil {
		return nil, err
	}
	rs := eval.NewResultSet()
	var miss []eval.Query
	delta := SourceStats{}
	for _, q := range p.Queries() {
		c := q.Coord()
		if st, ok := s.store.Get(s.id, c); ok {
			if err := rs.Put(c, st); err != nil {
				return nil, err
			}
			delta.Hits++
		} else {
			miss = append(miss, q)
		}
	}
	s.count(delta)

	pr, isPlanRunner := s.inner.(eval.PlanRunner)
	for start := 0; start < len(miss); start += runChunk {
		end := start + runChunk
		if end > len(miss) {
			end = len(miss)
		}
		chunk := miss[start:end]
		var sub *eval.ResultSet
		if isPlanRunner {
			cp := eval.NewPlan()
			for _, q := range chunk {
				if err := cp.Add(q); err != nil {
					return nil, err
				}
			}
			var err error
			sub, err = pr.RunPlanCtx(ctx, cp)
			if err != nil {
				return nil, err
			}
		} else {
			// A bare CellSource has no failure accounting beyond
			// failureReporter and no context path; serve and filter here.
			sts := s.inner.Cells(chunk)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			failed := s.failedCoords()
			sub = eval.NewResultSet()
			for i, q := range chunk {
				if c := q.Coord(); !failed[c] {
					if err := sub.Put(c, sts[i]); err != nil {
						return nil, err
					}
				}
			}
		}
		chunkDelta := SourceStats{Misses: len(chunk)}
		failed := s.failedCoords()
		for _, c := range sub.Coords() {
			st, _ := sub.Get(c)
			if err := rs.Put(c, st); err != nil {
				return nil, err
			}
			chunkDelta.Persisted += s.persist(c, st, failed)
		}
		if err := s.store.Sync(); err != nil {
			// The plan path has an error channel, so durability failures
			// surface here instead of waiting for the post-render Err check.
			return nil, err
		}
		s.count(chunkDelta)
		if err := s.Err(); err != nil {
			return nil, err // rejected cell (conflict): nondeterminism, fail loudly
		}
	}
	return rs, nil
}
