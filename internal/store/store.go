// Package store is the persistent result store: a crash-safe,
// append-only on-disk cache of evaluated cells, keyed by the full sweep
// identity — the backend's Describe() tag plus the runner seed
// (Identity) and the wire-stable cell address (eval.Coord) — holding
// eval.CellStats. A warm sweep becomes disk reads instead of
// generate+compile+simulate passes; an interrupted sweep resumes from
// the last durable cell.
//
// On-disk format: a directory of segment files (cells-000001.log, ...),
// each a sequence of newline-terminated records
//
//	s1 <crc32-hex8> {"backend":...,"seed":...,"model":...,...,"sum_lat":...}
//
// where the checksum covers the JSON payload and the payload reuses the
// wire package's field names. The store is a write-ahead log with no
// compaction: cells are immutable facts (a coordinate under one identity
// has exactly one value — anything else is nondeterminism and is
// rejected), so append-only is the whole story and segments rotate at a
// size threshold purely to bound single-file loss surfaces.
//
// Crash discipline, in the order it matters:
//
//   - Appends are buffered; Sync flushes and fsyncs the active segment.
//     The caching layer syncs at cell-chunk granularity, so a killed
//     sweep loses at most the unsynced tail of work.
//   - Open rebuilds the in-memory index by scanning every segment. A
//     torn final record of the final segment — the unique signature of a
//     crash mid-append — is truncated away and the store continues from
//     the last durable cell. Damage anywhere else (bad checksum or
//     garbage mid-file, a torn tail in a non-final segment, conflicting
//     duplicate cells) is corruption and rejects the store loudly:
//     serving a silently wrong cell into a rendered table is the one
//     unacceptable failure mode.
//   - Invalidation is identity-keyed, never manual: a corpus, backend,
//     or seed change alters the identity under which cells are looked
//     up, so stale cells are simply never hit (and remain queryable as
//     sweep history via Query/Diff).
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"

	"repro/internal/eval"
)

// Identity is the sweep half of a cell's key: which backend
// configuration produced the cell (the backend's Describe() tag — the
// unwrapped tag, matching wire.Meta) and under which runner seed. Two
// sweeps that differ in either share nothing.
type Identity struct {
	Backend string
	Seed    int64
}

// String renders the identity in the CLI's "backend@seed" syntax.
func (id Identity) String() string { return fmt.Sprintf("%s@%d", id.Backend, id.Seed) }

// ParseIdentity parses "backend@seed" (splitting at the last '@', since
// backend tags contain spaces and colons but never '@'). A bare seed is
// accepted with an empty backend — the CLI fills in the store's sole
// backend tag when it is unambiguous.
func ParseIdentity(s string) (Identity, error) {
	i := strings.LastIndex(s, "@")
	seedStr := s
	backend := ""
	if i >= 0 {
		backend, seedStr = s[:i], s[i+1:]
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return Identity{}, fmt.Errorf("store: identity %q: seed %q is not an integer", s, seedStr)
	}
	return Identity{Backend: backend, Seed: seed}, nil
}

// key is one cell's full address.
type key struct {
	id Identity
	c  eval.Coord
}

// recordPrefix versions the record framing; bump it if the line format
// (not the JSON payload — that has its own field names) ever changes.
const recordPrefix = "s1"

// maxSegmentBytes is the default segment rotation threshold. Rotation
// bounds how much one file-level disaster can take down; it has no
// semantic meaning.
const maxSegmentBytes = 8 << 20

// recordLine is the JSON payload of one record: identity + coordinate +
// stats, with the wire package's field names so the two serializations
// never drift apart in review.
type recordLine struct {
	Backend   string  `json:"backend"`
	Seed      int64   `json:"seed"`
	Model     string  `json:"model"`
	Variant   string  `json:"variant"`
	Problem   int     `json:"problem"`
	Level     int     `json:"level"`
	TempMilli int     `json:"temp_milli"`
	N         int     `json:"n"`
	Samples   int     `json:"samples"`
	Compiled  int     `json:"compiled"`
	Passed    int     `json:"passed"`
	SumLat    float64 `json:"sum_lat"`
}

// checkStats mirrors the wire package's cell validation: the verdict
// pipeline only simulates samples that compile, so Passed <= Compiled <=
// Samples <= N, and the latency sum must be a finite non-negative float.
func checkStats(c eval.Coord, st eval.CellStats) error {
	if st.Samples < 0 || st.Samples > c.N ||
		st.Compiled < 0 || st.Compiled > st.Samples ||
		st.Passed < 0 || st.Passed > st.Compiled {
		return fmt.Errorf("store: cell %+v: inconsistent stats %+v", c, st)
	}
	if math.IsNaN(st.SumLat) || math.IsInf(st.SumLat, 0) || st.SumLat < 0 {
		return fmt.Errorf("store: cell %+v: bad latency sum %v", c, st.SumLat)
	}
	return nil
}

// encodeRecord renders one full record line, checksum and newline
// included.
func encodeRecord(id Identity, c eval.Coord, st eval.CellStats) ([]byte, error) {
	if id.Backend == "" {
		return nil, fmt.Errorf("store: empty backend tag in identity")
	}
	if !utf8.ValidString(id.Backend) {
		// JSON transport replaces invalid UTF-8 with U+FFFD, so a tag that
		// is not valid UTF-8 would silently decode to a different identity.
		return nil, fmt.Errorf("store: backend tag %q is not valid UTF-8", id.Backend)
	}
	if _, err := c.Query(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := checkStats(c, st); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(recordLine{
		Backend: id.Backend, Seed: id.Seed,
		Model: c.Model, Variant: c.Variant, Problem: c.Problem,
		Level: c.Level, TempMilli: c.TempMilli, N: c.N,
		Samples: st.Samples, Compiled: st.Compiled, Passed: st.Passed,
		SumLat: st.SumLat,
	})
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(recordPrefix)+1+8+1+len(payload)+1)
	line = append(line, recordPrefix...)
	line = append(line, ' ')
	line = fmt.Appendf(line, "%08x", crc32.ChecksumIEEE(payload))
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeRecord parses and validates one record line (without its
// trailing newline). Every failure mode — framing, checksum, JSON,
// coordinate resolvability, stat consistency — is an error; the caller
// decides whether the position makes it a torn tail or corruption.
func decodeRecord(line []byte) (Identity, eval.Coord, eval.CellStats, error) {
	var zid Identity
	var zc eval.Coord
	var zst eval.CellStats
	rest, ok := bytes.CutPrefix(line, []byte(recordPrefix+" "))
	if !ok {
		return zid, zc, zst, fmt.Errorf("store: record does not start with %q", recordPrefix)
	}
	if len(rest) < 9 || rest[8] != ' ' {
		return zid, zc, zst, fmt.Errorf("store: record missing checksum field")
	}
	sum, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil {
		return zid, zc, zst, fmt.Errorf("store: bad checksum field: %w", err)
	}
	payload := rest[9:]
	if crc32.ChecksumIEEE(payload) != uint32(sum) {
		return zid, zc, zst, fmt.Errorf("store: record checksum mismatch")
	}
	var rl recordLine
	if err := json.Unmarshal(payload, &rl); err != nil {
		return zid, zc, zst, fmt.Errorf("store: record payload: %w", err)
	}
	if rl.Backend == "" {
		return zid, zc, zst, fmt.Errorf("store: record has empty backend tag")
	}
	id := Identity{Backend: rl.Backend, Seed: rl.Seed}
	c := eval.Coord{
		Model: rl.Model, Variant: rl.Variant, Problem: rl.Problem,
		Level: rl.Level, TempMilli: rl.TempMilli, N: rl.N,
	}
	if _, err := c.Query(); err != nil {
		return zid, zc, zst, fmt.Errorf("store: %w", err)
	}
	st := eval.CellStats{
		Samples: rl.Samples, Compiled: rl.Compiled, Passed: rl.Passed,
		SumLat: rl.SumLat,
	}
	if err := checkStats(c, st); err != nil {
		return zid, zc, zst, err
	}
	return id, c, st, nil
}

// Store is the open result store: an in-memory cell index over the
// segment log, with an append handle on the final segment. All methods
// are safe for concurrent use — the coordinator's in-process worker
// slots persist cells from several goroutines.
type Store struct {
	mu     sync.Mutex
	dir    string
	cells  map[key]eval.CellStats
	seg    *os.File
	bw     *bufio.Writer
	segIdx int   // active segment ordinal (1-based)
	segLen int64 // bytes in the active segment, buffered included
	maxSeg int64
	dirty  bool  // unsynced appends outstanding
	added  int   // cells appended this session
	err    error // first write/sync failure, sticky
}

func segName(idx int) string { return fmt.Sprintf("cells-%06d.log", idx) }

// Open opens (creating if needed) the store rooted at dir, rebuilding
// the index from every segment. A torn final record of the final segment
// is truncated away (crash recovery); any other damage is an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "cells-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(segs) // zero-padded ordinals: lexicographic == numeric

	s := &Store{dir: dir, cells: map[key]eval.CellStats{}, maxSeg: maxSegmentBytes, segIdx: 1}
	for i, seg := range segs {
		final := i == len(segs)-1
		n, err := s.loadSegment(seg, final)
		if err != nil {
			return nil, err
		}
		if final {
			s.segLen = n
			idx, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(filepath.Base(seg), "cells-"), ".log"))
			if perr != nil {
				return nil, fmt.Errorf("store: segment name %s: %w", seg, perr)
			}
			s.segIdx = idx
		}
	}

	f, err := os.OpenFile(filepath.Join(dir, segName(s.segIdx)), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.seg = f
	s.bw = bufio.NewWriterSize(f, 1<<16)
	return s, nil
}

// loadSegment replays one segment into the index and returns its durable
// length. In the final segment a bad last record — torn write, whether
// or not the newline made it to disk — is truncated away; a bad record
// with data after it, or any bad record in an earlier segment, is
// corruption.
func (s *Store) loadSegment(path string, final bool) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	var off int64
	truncateTail := func() (int64, error) {
		if err := os.Truncate(path, off); err != nil {
			return 0, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
		}
		return off, nil
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		last := nl < 0 || nl == len(data)-1
		var line []byte
		if nl < 0 {
			line = data
		} else {
			line = data[:nl]
		}
		id, c, st, derr := decodeRecord(line)
		if derr != nil {
			if final && last {
				// The signature of a crash mid-append: a record that does not
				// decode, as the last line of the last segment. Drop the torn
				// tail and continue from the last durable record.
				return truncateTail()
			}
			return 0, fmt.Errorf("store: %s: offset %d: %w", path, off, derr)
		}
		if nl < 0 {
			// The record decodes but lost its newline: the next append would
			// corrupt it, so drop it too — one recomputed cell, not a risk.
			// Only the final segment may end without a newline (earlier ones
			// were sealed by rotation).
			if !final {
				return 0, fmt.Errorf("store: %s: offset %d: record missing newline mid-store", path, off)
			}
			return truncateTail()
		}
		// A checksummed record can't be a torn write, so a conflicting
		// duplicate is always corruption (or upstream nondeterminism) —
		// never recovered from, wherever it sits.
		k := key{id: id, c: c}
		if old, dup := s.cells[k]; dup && old != st {
			return 0, fmt.Errorf("store: %s: offset %d: cell %s %+v recorded twice with conflicting stats (%+v vs %+v)",
				path, off, id, c, old, st)
		}
		s.cells[k] = st
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return off, nil
}

// Get returns the stats stored for one cell.
func (s *Store) Get(id Identity, c eval.Coord) (eval.CellStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.cells[key{id: id, c: c}]
	return st, ok
}

// Len reports the number of resident cells across all identities.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cells)
}

// Added reports how many cells this session has appended — the
// "persisted new cells" number ops output surfaces.
func (s *Store) Added() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.added
}

// Err reports the first append/sync failure, if any. Once set, the
// store serves reads but accepts no further writes.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Put appends one cell. Re-putting an identical cell is a no-op;
// putting a conflicting value for a resident cell is rejected — under
// one identity a coordinate has exactly one correct value, so a
// conflict means nondeterminism upstream and must fail loudly, not
// average away.
func (s *Store) Put(id Identity, c eval.Coord, st eval.CellStats) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	k := key{id: id, c: c}
	if old, ok := s.cells[k]; ok {
		if old != st {
			return fmt.Errorf("store: cell %s %+v already holds %+v; refusing conflicting %+v", id, c, old, st)
		}
		return nil
	}
	line, err := encodeRecord(id, c, st)
	if err != nil {
		return err
	}
	if s.segLen >= s.maxSeg {
		if err := s.rotate(); err != nil {
			s.err = err
			return err
		}
	}
	if _, err := s.bw.Write(line); err != nil {
		s.err = fmt.Errorf("store: append: %w", err)
		return s.err
	}
	s.segLen += int64(len(line))
	s.cells[k] = st
	s.dirty = true
	s.added++
	return nil
}

// rotate seals the active segment (flush + fsync + close) and opens the
// next one. Called with the lock held.
func (s *Store) rotate() error {
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("store: rotate: %w", err)
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("store: rotate: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("store: rotate: %w", err)
	}
	s.segIdx++
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.segIdx)), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotate: %w", err)
	}
	s.seg = f
	s.bw = bufio.NewWriterSize(f, 1<<16)
	s.segLen = 0
	s.dirty = false
	return nil
}

// Sync makes every accepted Put durable: buffered appends are flushed
// and the active segment fsynced. The caching layer calls this at
// cell-chunk boundaries, which is what "resume from the last durable
// cell" means concretely.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.err != nil {
		return s.err
	}
	if !s.dirty {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		s.err = fmt.Errorf("store: sync: %w", err)
		return s.err
	}
	if err := s.seg.Sync(); err != nil {
		s.err = fmt.Errorf("store: sync: %w", err)
		return s.err
	}
	s.dirty = false
	return nil
}

// Close syncs and closes the store. The store accepts no further writes
// afterwards; calling Close again is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return nil
	}
	err := s.syncLocked()
	if cerr := s.seg.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: close: %w", cerr)
	}
	s.seg = nil
	s.bw = nil
	if s.err == nil {
		s.err = fmt.Errorf("store: closed")
	}
	return err
}

// writeTo dumps every resident record to w — the segment round-trip
// test's oracle. Deterministic order: identity, then canonical Coord.
func (s *Store) writeTo(w io.Writer) error {
	for _, e := range s.Query(Filter{}) {
		line, err := encodeRecord(e.ID, e.Coord, e.Stats)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
