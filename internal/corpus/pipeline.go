package corpus

import (
	"regexp"
	"strings"
)

// FilterOptions are the paper's file filters (Section III-A.a).
type FilterOptions struct {
	MaxFileBytes  int     // drop files at or above this size; 0 = 20000
	ShingleK      int     // shingle width for dedup; 0 = 5
	SignatureSize int     // MinHash signature size; 0 = 64
	DupThreshold  float64 // similarity at which a file is a duplicate; 0 = 0.8
}

func (o FilterOptions) maxFileBytes() int {
	if o.MaxFileBytes <= 0 {
		return 20000
	}
	return o.MaxFileBytes
}

func (o FilterOptions) shingleK() int {
	if o.ShingleK <= 0 {
		return 5
	}
	return o.ShingleK
}

func (o FilterOptions) signatureSize() int {
	if o.SignatureSize <= 0 {
		return 64
	}
	return o.SignatureSize
}

func (o FilterOptions) dupThreshold() float64 {
	if o.DupThreshold <= 0 {
		return 0.8
	}
	return o.DupThreshold
}

// Stats summarize a pipeline run for the Section III-A reporting.
type Stats struct {
	Input         int
	DroppedNoPair int // no module/endmodule pair
	DroppedTooBig int // exceeded the size filter
	DroppedDup    int // MinHash near-duplicate
	Kept          int
	KeptBytes     int
}

var modulePairRe = regexp.MustCompile(`(?s)\bmodule\b.*\bendmodule\b`)

// HasModulePair reports whether the file contains at least one
// module...endmodule pair (the paper's keep rule).
func HasModulePair(content string) bool {
	return modulePairRe.MatchString(content)
}

// Curate runs the full filter+dedup pipeline over the raw files and returns
// the kept files and statistics.
func Curate(files []File, opts FilterOptions) ([]File, Stats) {
	st := Stats{Input: len(files)}
	var candidates []File
	for _, f := range files {
		if !HasModulePair(f.Content) {
			st.DroppedNoPair++
			continue
		}
		if len(f.Content) >= opts.maxFileBytes() {
			st.DroppedTooBig++
			continue
		}
		candidates = append(candidates, f)
	}
	docs := make([]string, len(candidates))
	for i, f := range candidates {
		docs[i] = f.Content
	}
	kept := Dedup(docs, opts.shingleK(), opts.signatureSize(), opts.dupThreshold())
	st.DroppedDup = len(candidates) - len(kept)
	out := make([]File, 0, len(kept))
	for _, idx := range kept {
		out = append(out, candidates[idx])
		st.KeptBytes += len(candidates[idx].Content)
	}
	st.Kept = len(out)
	return out, st
}

// TrainingText flattens curated files into one whitespace-joined training
// stream for the tokenizer and language model.
func TrainingText(files []File) []string {
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.Content
	}
	return out
}

// Comment strippers for NormalizeForLM, compiled once: the generation
// front-end normalizes every prompt, so per-call regexp.MustCompile here
// used to dominate the babble path.
var (
	lineCommentRe  = regexp.MustCompile(`//[^\n]*`)
	blockCommentRe = regexp.MustCompile(`(?s)/\*.*?\*/`)
)

// NormalizeForLM canonicalizes Verilog text for language-model training:
// comments dropped, whitespace collapsed, punctuation space-separated so
// the BPE tokenizer sees a stable word stream.
func NormalizeForLM(content string) string {
	content = lineCommentRe.ReplaceAllString(content, "")
	content = blockCommentRe.ReplaceAllString(content, "")
	var sb strings.Builder
	sb.Grow(len(content) + len(content)/4)
	for _, r := range content {
		switch r {
		case '(', ')', '[', ']', '{', '}', ';', ',', ':', '@', '#', '=',
			'+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '?':
			sb.WriteByte(' ')
			sb.WriteRune(r)
			sb.WriteByte(' ')
		default:
			sb.WriteRune(r)
		}
	}
	return strings.Join(strings.Fields(sb.String()), " ")
}
