// Package corpus reproduces the paper's training-corpus pipeline
// (Section III-A): a GitHub-style Verilog corpus and a textbook-extraction
// corpus, de-duplicated with MinHash/Jaccard similarity and filtered by the
// module-pair and file-size rules. The GitHub snapshot and the PDF library
// are not available offline, so synthetic generators with the same
// statistical handles (duplication rate, size distribution, module density)
// stand in for them; the pipeline operations themselves are faithful.
package corpus

import (
	"hash/fnv"
	"strings"
)

// ShingleSet is the set of hashed k-gram shingles of a document.
type ShingleSet map[uint64]bool

// Shingles computes word k-gram shingles of text.
func Shingles(text string, k int) ShingleSet {
	if k < 1 {
		k = 1
	}
	words := strings.Fields(text)
	set := ShingleSet{}
	if len(words) < k {
		if len(words) > 0 {
			set[hashWords(words)] = true
		}
		return set
	}
	for i := 0; i+k <= len(words); i++ {
		set[hashWords(words[i:i+k])] = true
	}
	return set
}

func hashWords(words []string) uint64 {
	h := fnv.New64a()
	for _, w := range words {
		h.Write([]byte(w))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Jaccard computes the exact Jaccard similarity of two shingle sets.
func Jaccard(a, b ShingleSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	//vgencheck:ordered intersection counting; integer increments are commutative, so the count is order-free
	for s := range small {
		if large[s] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// MinHash computes fixed-size signatures whose per-slot agreement rate is
// an unbiased estimate of Jaccard similarity.
type MinHash struct {
	seeds []uint64
}

// NewMinHash creates a MinHash with the given signature size.
func NewMinHash(size int) *MinHash {
	if size < 1 {
		size = 1
	}
	seeds := make([]uint64, size)
	// splitmix64 stream for stable, well-spread seeds
	x := uint64(0x9E3779B97F4A7C15)
	for i := range seeds {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		seeds[i] = z ^ (z >> 31)
	}
	return &MinHash{seeds: seeds}
}

// Size returns the signature length.
func (m *MinHash) Size() int { return len(m.seeds) }

// Signature computes the MinHash signature of a shingle set.
func (m *MinHash) Signature(set ShingleSet) []uint64 {
	sig := make([]uint64, len(m.seeds))
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	//vgencheck:ordered per-lane minimum reduction; min is commutative and associative, so the signature is order-free
	for s := range set {
		for i, seed := range m.seeds {
			h := mix(s ^ seed)
			if h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// Estimate returns the estimated Jaccard similarity of two signatures.
func Estimate(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// Dedup removes near-duplicate documents: a document is dropped when its
// MinHash similarity estimate against any kept document reaches threshold.
// It returns the kept indexes in input order.
func Dedup(docs []string, shingleK, signatureSize int, threshold float64) []int {
	mh := NewMinHash(signatureSize)
	var kept []int
	var keptSigs [][]uint64
	for i, doc := range docs {
		sig := mh.Signature(Shingles(doc, shingleK))
		dup := false
		for _, ks := range keptSigs {
			if Estimate(sig, ks) >= threshold {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, i)
			keptSigs = append(keptSigs, sig)
		}
	}
	return kept
}
