package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// File is one corpus file.
type File struct {
	Path    string
	Content string
}

// GitHubOptions parameterize the synthetic GitHub snapshot.
type GitHubOptions struct {
	NumFiles     int     // total files to generate; 0 = 500
	DupRate      float64 // fraction that are exact duplicates of earlier files
	NearDupRate  float64 // fraction that are near-duplicates (renames/comments)
	NoiseRate    float64 // fraction of non-Verilog files
	OversizeRate float64 // fraction of files padded past the size filter
	MaxFileBytes int     // the paper's 20K-character filter; 0 = 20000
	Seed         int64
}

func (o GitHubOptions) numFiles() int {
	if o.NumFiles <= 0 {
		return 500
	}
	return o.NumFiles
}

func (o GitHubOptions) maxFileBytes() int {
	if o.MaxFileBytes <= 0 {
		return 20000
	}
	return o.MaxFileBytes
}

// DefaultGitHubOptions mirror the duplication/noise handles the paper's
// BigQuery pull exhibits, at 1:100 scale by default.
func DefaultGitHubOptions(seed int64) GitHubOptions {
	return GitHubOptions{
		NumFiles:     500,
		DupRate:      0.12,
		NearDupRate:  0.08,
		NoiseRate:    0.06,
		OversizeRate: 0.04,
		Seed:         seed,
	}
}

// GenerateGitHub produces the synthetic repository snapshot.
func GenerateGitHub(opts GitHubOptions) []File {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.numFiles()
	files := make([]File, 0, n)
	var verilogPool []string // contents eligible for duplication
	for i := 0; i < n; i++ {
		r := rng.Float64()
		var content string
		switch {
		case r < opts.DupRate && len(verilogPool) > 0:
			content = verilogPool[rng.Intn(len(verilogPool))]
		case r < opts.DupRate+opts.NearDupRate && len(verilogPool) > 0:
			content = nearDuplicate(verilogPool[rng.Intn(len(verilogPool))], rng)
		case r < opts.DupRate+opts.NearDupRate+opts.NoiseRate:
			content = noiseFile(rng)
		case r < opts.DupRate+opts.NearDupRate+opts.NoiseRate+opts.OversizeRate:
			content = oversizeFile(rng, opts.maxFileBytes())
		default:
			content = GenerateModule(rng)
			verilogPool = append(verilogPool, content)
		}
		files = append(files, File{
			Path:    fmt.Sprintf("repo%03d/src/file%04d.v", rng.Intn(60), i),
			Content: content,
		})
	}
	return files
}

// archetype generators -----------------------------------------------------

var modulePrefixes = []string{
	"counter", "adder", "mux", "fifo_ctrl", "fsm", "shifter", "ram", "alu",
	"parity", "gray", "regfile", "edge_det", "divider", "uart_tx", "pwm",
	"debounce", "sync", "arbiter", "crc", "timer",
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func freshName(rng *rand.Rand) string {
	return fmt.Sprintf("%s_%d", pick(rng, modulePrefixes), rng.Intn(1000))
}

// GenerateModule emits one synthesizable Verilog module from a random
// archetype. All archetypes emit code inside the frontend's subset, so the
// generated corpus parses and elaborates (verified by tests).
func GenerateModule(rng *rand.Rand) string {
	gens := []func(*rand.Rand) string{
		genCounter, genAdder, genMux, genShifter, genFSM, genRegister,
		genParity, genEdgeDetector, genRAM, genALU, genGrayEncoder, genDecoder,
	}
	return gens[rng.Intn(len(gens))](rng)
}

func genCounter(rng *rand.Rand) string {
	w := 2 + rng.Intn(14)
	name := freshName(rng)
	limit := 1 + rng.Intn(1<<uint(min(w, 10)))
	return fmt.Sprintf(`// %d-bit counter with synchronous reset
module %s(input clk, input reset, output reg [%d:0] q);
  always @(posedge clk) begin
    if (reset) q <= 0;
    else if (q == %d) q <= 0;
    else q <= q + 1;
  end
endmodule
`, w, name, w-1, limit)
}

func genAdder(rng *rand.Rand) string {
	w := 2 + rng.Intn(30)
	name := freshName(rng)
	return fmt.Sprintf(`// %d-bit adder with carry out
module %s(input [%d:0] a, input [%d:0] b, output [%d:0] sum, output cout);
  assign {cout, sum} = a + b;
endmodule
`, w, name, w-1, w-1, w-1)
}

func genMux(rng *rand.Rand) string {
	w := 1 + rng.Intn(16)
	name := freshName(rng)
	return fmt.Sprintf(`// 2-to-1 multiplexer, %d bits wide
module %s(input [%d:0] a, input [%d:0] b, input sel, output [%d:0] y);
  assign y = sel ? b : a;
endmodule
`, w, name, w-1, w-1, w-1)
}

func genShifter(rng *rand.Rand) string {
	w := 4 + rng.Intn(28)
	name := freshName(rng)
	return fmt.Sprintf(`// logical shifter
module %s(input [%d:0] din, input [3:0] amt, input dir, output reg [%d:0] dout);
  always @(*) begin
    if (dir) dout = din >> amt;
    else dout = din << amt;
  end
endmodule
`, name, w-1, w-1)
}

func genFSM(rng *rand.Rand) string {
	name := freshName(rng)
	return fmt.Sprintf(`// two-process moore state machine
module %s(input clk, input reset, input go, output busy);
  parameter IDLE = 0, RUN = 1, DONE = 2;
  reg [1:0] state, next;
  always @(posedge clk or posedge reset) begin
    if (reset) state <= IDLE;
    else state <= next;
  end
  always @(state or go) begin
    case (state)
      IDLE: next = go ? RUN : IDLE;
      RUN: next = DONE;
      DONE: next = IDLE;
      default: next = IDLE;
    endcase
  end
  assign busy = (state == RUN);
endmodule
`, name)
}

func genRegister(rng *rand.Rand) string {
	w := 1 + rng.Intn(32)
	name := freshName(rng)
	return fmt.Sprintf(`// %d-bit register with enable
module %s(input clk, input en, input [%d:0] d, output reg [%d:0] q);
  always @(posedge clk) begin
    if (en) q <= d;
  end
endmodule
`, w, name, w-1, w-1)
}

func genParity(rng *rand.Rand) string {
	w := 2 + rng.Intn(30)
	name := freshName(rng)
	return fmt.Sprintf(`// parity generator
module %s(input [%d:0] data, output even, output odd);
  assign odd = ^data;
  assign even = ~^data;
endmodule
`, name, w-1)
}

func genEdgeDetector(rng *rand.Rand) string {
	name := freshName(rng)
	return fmt.Sprintf(`// rising edge detector
module %s(input clk, input sig, output pulse);
  reg prev;
  always @(posedge clk) prev <= sig;
  assign pulse = sig & ~prev;
endmodule
`, name)
}

func genRAM(rng *rand.Rand) string {
	aw := 2 + rng.Intn(6)
	dw := 4 + rng.Intn(12)
	name := freshName(rng)
	return fmt.Sprintf(`// simple synchronous ram
module %s(input clk, input we, input [%d:0] addr, input [%d:0] din, output reg [%d:0] dout);
  reg [%d:0] mem [%d:0];
  always @(posedge clk) begin
    if (we) mem[addr] <= din;
    dout <= mem[addr];
  end
endmodule
`, name, aw-1, dw-1, dw-1, dw-1, (1<<uint(aw))-1)
}

func genALU(rng *rand.Rand) string {
	w := 4 + rng.Intn(12)
	name := freshName(rng)
	return fmt.Sprintf(`// tiny alu
module %s(input [%d:0] a, input [%d:0] b, input [1:0] op, output reg [%d:0] y);
  always @(*) begin
    case (op)
      2'b00: y = a + b;
      2'b01: y = a - b;
      2'b10: y = a & b;
      default: y = a | b;
    endcase
  end
endmodule
`, name, w-1, w-1, w-1)
}

func genGrayEncoder(rng *rand.Rand) string {
	w := 3 + rng.Intn(13)
	name := freshName(rng)
	return fmt.Sprintf(`// binary to gray converter
module %s(input [%d:0] bin, output [%d:0] gray);
  assign gray = bin ^ (bin >> 1);
endmodule
`, name, w-1, w-1)
}

func genDecoder(rng *rand.Rand) string {
	name := freshName(rng)
	return fmt.Sprintf(`// 2-to-4 decoder with enable
module %s(input [1:0] sel, input en, output reg [3:0] y);
  always @(*) begin
    if (!en) y = 4'b0000;
    else begin
      case (sel)
        2'd0: y = 4'b0001;
        2'd1: y = 4'b0010;
        2'd2: y = 4'b0100;
        default: y = 4'b1000;
      endcase
    end
  end
endmodule
`, name)
}

// mutation helpers for duplicates and noise --------------------------------

// nearDuplicate perturbs a file without changing its structure: comment
// churn, whitespace, and a module rename — the kind of duplication MinHash
// is meant to catch.
func nearDuplicate(content string, rng *rand.Rand) string {
	out := content
	if rng.Intn(2) == 0 {
		out = "// forked copy, do not edit\n" + out
	}
	out = strings.Replace(out, "module ", fmt.Sprintf("module copy%d_", rng.Intn(100)), 1)
	if rng.Intn(2) == 0 {
		out = strings.ReplaceAll(out, "  ", "    ")
	}
	return out
}

func noiseFile(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0:
		return "# build notes\nall:\n\tmake sim\n"
	case 1:
		return fmt.Sprintf("{\"name\": \"pkg%d\", \"version\": \"1.0.%d\"}\n", rng.Intn(50), rng.Intn(9))
	default:
		return "This repository contains miscellaneous lab notes without any code.\n"
	}
}

func oversizeFile(rng *rand.Rand, maxBytes int) string {
	var sb strings.Builder
	sb.WriteString("// auto-generated netlist dump\n")
	sb.WriteString("module big_netlist(input clk);\n")
	i := 0
	for sb.Len() <= maxBytes {
		fmt.Fprintf(&sb, "  wire n%d; assign n%d = 1'b%d;\n", i, i, rng.Intn(2))
		i++
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
