package corpus

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
)

// This file reproduces the textbook branch of the corpus pipeline
// (Section III-A.b): text "extracted from PDFs" (synthesized here), cleaned
// of irrelevant passages, screened for Verilog-looking snippets with
// regular expressions, and cut into overlapping sliding windows.

// BookOptions parameterize the synthetic textbook generator.
type BookOptions struct {
	NumBooks    int // 0 = 7 (the paper used 70; default is 1:10 scale)
	ChaptersPer int // 0 = 5
	Seed        int64
}

func (o BookOptions) numBooks() int {
	if o.NumBooks <= 0 {
		return 7
	}
	return o.NumBooks
}

func (o BookOptions) chaptersPer() int {
	if o.ChaptersPer <= 0 {
		return 5
	}
	return o.ChaptersPer
}

var proseSnippets = []string{
	"Hardware description languages let designers express parallel behaviour directly.",
	"A flip flop samples its input on the active clock edge and holds the value otherwise.",
	"Blocking assignments execute in statement order, while nonblocking assignments update together at the end of the time step.",
	"Synthesis tools map the register transfer description onto gates and flip flops.",
	"The sensitivity list of a combinational always block must include every signal the block reads.",
	"A test bench drives stimulus into the design under test and compares observed outputs against expectations.",
	"State machines are usually coded with separate state register and next state logic processes.",
	"Care must be taken with signed arithmetic, because context determines operand extension.",
}

// GenerateBooks synthesizes OCR-like textbook text: prose paragraphs,
// embedded code listings, and front/back-matter noise that the cleaner must
// drop.
func GenerateBooks(opts BookOptions) []string {
	rng := rand.New(rand.NewSource(opts.Seed))
	books := make([]string, 0, opts.numBooks())
	for b := 0; b < opts.numBooks(); b++ {
		var sb strings.Builder
		sb.WriteString("PREFACE\nThis book is dedicated to our students. Thanks to the reviewers.\n\n")
		sb.WriteString("ACKNOWLEDGMENTS\nThe authors thank the funding agencies.\n\n")
		for c := 0; c < opts.chaptersPer(); c++ {
			fmt.Fprintf(&sb, "CHAPTER %d\n", c+1)
			paras := 2 + rng.Intn(3)
			for p := 0; p < paras; p++ {
				sb.WriteString(proseSnippets[rng.Intn(len(proseSnippets))])
				sb.WriteString("\n\n")
				if rng.Intn(2) == 0 {
					sb.WriteString("Listing:\n")
					sb.WriteString(GenerateModule(rng))
					sb.WriteString("\n")
				}
			}
		}
		sb.WriteString("INDEX\nadder 12\ncounter 34\nflip flop 56\n")
		books = append(books, sb.String())
	}
	return books
}

var (
	frontBackMatterRe = regexp.MustCompile(`(?m)^(PREFACE|ACKNOWLEDGMENTS|INDEX)\b`)
	codeLineRe        = regexp.MustCompile(`\b(module|endmodule|assign|always|input|output|reg|wire|posedge|begin|end)\b|<=|@\(`)
)

// CleanBook removes front/back matter sections (preface, acknowledgments,
// index) from extracted book text.
func CleanBook(text string) string {
	var out []string
	skipping := false
	for _, line := range strings.Split(text, "\n") {
		if frontBackMatterRe.MatchString(line) {
			skipping = true
			continue
		}
		if strings.HasPrefix(line, "CHAPTER") {
			skipping = false
			continue
		}
		if !skipping {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// CodeDensity returns the fraction of non-empty lines that look like
// Verilog (the regex syntax screen from the paper).
func CodeDensity(text string) float64 {
	lines := 0
	code := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		lines++
		if codeLineRe.MatchString(line) {
			code++
		}
	}
	if lines == 0 {
		return 0
	}
	return float64(code) / float64(lines)
}

// WindowOptions parameterize the sliding-window example cutter.
type WindowOptions struct {
	WindowWords int     // 0 = 120
	StrideWords int     // 0 = 60 (50% overlap)
	MinDensity  float64 // windows below this code density are dropped; 0 = 0.2
}

func (o WindowOptions) window() int {
	if o.WindowWords <= 0 {
		return 120
	}
	return o.WindowWords
}

func (o WindowOptions) stride() int {
	if o.StrideWords <= 0 {
		return 60
	}
	return o.StrideWords
}

func (o WindowOptions) minDensity() float64 {
	if o.MinDensity <= 0 {
		return 0.2
	}
	return o.MinDensity
}

// WordCodeDensity returns the fraction of words that look like Verilog
// tokens; used to screen flattened sliding windows.
func WordCodeDensity(words []string) float64 {
	if len(words) == 0 {
		return 0
	}
	code := 0
	for _, w := range words {
		if codeLineRe.MatchString(w) {
			code++
		}
	}
	return float64(code) / float64(len(words))
}

// ExtractWindows runs the textbook pipeline over raw books: clean, screen,
// and cut overlapping windows that pass the code-density threshold.
func ExtractWindows(books []string, opts WindowOptions) []string {
	var out []string
	for _, book := range books {
		cleaned := CleanBook(book)
		words := strings.Fields(cleaned)
		for start := 0; start < len(words); start += opts.stride() {
			end := start + opts.window()
			if end > len(words) {
				end = len(words)
			}
			win := words[start:end]
			if WordCodeDensity(win) >= opts.minDensity() {
				out = append(out, strings.Join(win, " "))
			}
			if end == len(words) {
				break
			}
		}
	}
	return out
}
