package corpus

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

func TestShinglesAndJaccard(t *testing.T) {
	a := Shingles("the quick brown fox jumps over the lazy dog", 3)
	b := Shingles("the quick brown fox jumps over the lazy dog", 3)
	if Jaccard(a, b) != 1 {
		t.Fatal("identical docs should have Jaccard 1")
	}
	c := Shingles("completely different words entirely here now", 3)
	if j := Jaccard(a, c); j != 0 {
		t.Fatalf("disjoint docs Jaccard = %f", j)
	}
	if Jaccard(ShingleSet{}, ShingleSet{}) != 1 {
		t.Fatal("empty sets should be similar")
	}
}

func TestMinHashEstimatesJaccard(t *testing.T) {
	mh := NewMinHash(256)
	base := "module m ( input a , input b , output y ) ; assign y = a & b ; endmodule"
	similar := base + " // with a tiny comment change"
	other := "entirely unrelated prose about cooking pasta with plenty of garlic and olive oil today"
	sa := Shingles(base, 3)
	sb := Shingles(similar, 3)
	sc := Shingles(other, 3)
	exactAB := Jaccard(sa, sb)
	estAB := Estimate(mh.Signature(sa), mh.Signature(sb))
	if diff := exactAB - estAB; diff > 0.15 || diff < -0.15 {
		t.Fatalf("estimate %f too far from exact %f", estAB, exactAB)
	}
	estAC := Estimate(mh.Signature(sa), mh.Signature(sc))
	if estAC > 0.1 {
		t.Fatalf("unrelated docs estimated similar: %f", estAC)
	}
}

func TestDedupDropsExactAndNearDuplicates(t *testing.T) {
	d1 := "module a ( input x , output y ) ; assign y = x ; endmodule"
	d2 := d1
	d3 := "// comment\n" + d1
	d4 := "totally different document with many unique words in it for sure absolutely"
	kept := Dedup([]string{d1, d2, d3, d4}, 3, 128, 0.7)
	if len(kept) != 2 {
		t.Fatalf("kept = %v", kept)
	}
	if kept[0] != 0 || kept[1] != 3 {
		t.Fatalf("kept = %v", kept)
	}
}

func TestGeneratedModulesCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		src := GenerateModule(rng)
		f, err := vlog.Parse(src)
		if err != nil {
			t.Fatalf("generated module does not parse: %v\n%s", err, src)
		}
		if err := elab.CompileCheck(f); err != nil {
			t.Fatalf("generated module does not elaborate: %v\n%s", err, src)
		}
	}
}

func TestGitHubGenerationShape(t *testing.T) {
	files := GenerateGitHub(DefaultGitHubOptions(1))
	if len(files) != 500 {
		t.Fatalf("file count = %d", len(files))
	}
	noise, big := 0, 0
	for _, f := range files {
		if !HasModulePair(f.Content) {
			noise++
		}
		if len(f.Content) >= 20000 {
			big++
		}
	}
	if noise == 0 {
		t.Error("no noise files generated")
	}
	if big == 0 {
		t.Error("no oversized files generated")
	}
}

func TestCuratePipeline(t *testing.T) {
	files := GenerateGitHub(DefaultGitHubOptions(2))
	kept, st := Curate(files, FilterOptions{})
	if st.Input != 500 {
		t.Fatalf("input = %d", st.Input)
	}
	if st.DroppedNoPair == 0 || st.DroppedTooBig == 0 || st.DroppedDup == 0 {
		t.Fatalf("stats missing drops: %+v", st)
	}
	if st.Kept != len(kept) || st.Kept == 0 {
		t.Fatalf("kept inconsistent: %+v vs %d", st, len(kept))
	}
	if st.Kept+st.DroppedNoPair+st.DroppedTooBig+st.DroppedDup != st.Input {
		t.Fatalf("stats do not add up: %+v", st)
	}
	for _, f := range kept {
		if !HasModulePair(f.Content) || len(f.Content) >= 20000 {
			t.Fatalf("kept file violates filters: %s", f.Path)
		}
	}
}

func TestCurateDeterministic(t *testing.T) {
	files := GenerateGitHub(DefaultGitHubOptions(3))
	k1, s1 := Curate(files, FilterOptions{})
	k2, s2 := Curate(files, FilterOptions{})
	if s1 != s2 || len(k1) != len(k2) {
		t.Fatal("pipeline not deterministic")
	}
}

func TestNormalizeForLM(t *testing.T) {
	src := "// a comment\nassign y = a&b; /* block */\n"
	got := NormalizeForLM(src)
	want := "assign y = a & b ;"
	if got != want {
		t.Fatalf("normalize = %q, want %q", got, want)
	}
}

func TestBooksPipeline(t *testing.T) {
	books := GenerateBooks(BookOptions{Seed: 5})
	if len(books) != 7 {
		t.Fatalf("books = %d", len(books))
	}
	for _, b := range books {
		if !strings.Contains(b, "PREFACE") || !strings.Contains(b, "INDEX") {
			t.Fatal("book missing front/back matter")
		}
	}
	cleaned := CleanBook(books[0])
	if strings.Contains(cleaned, "dedicated to our students") {
		t.Fatal("preface not removed")
	}
	if strings.Contains(cleaned, "INDEX") {
		t.Fatal("index not removed")
	}

	wins := ExtractWindows(books, WindowOptions{})
	if len(wins) == 0 {
		t.Fatal("no windows extracted")
	}
	for _, w := range wins {
		if WordCodeDensity(strings.Fields(w)) < 0.2 {
			t.Fatal("low-density window kept")
		}
	}
}

func TestCodeDensity(t *testing.T) {
	code := "module m;\nassign y = a;\nendmodule\n"
	prose := "This chapter reviews the history of logic design.\nIt begins long ago.\n"
	if CodeDensity(code) <= CodeDensity(prose) {
		t.Fatal("code not denser than prose")
	}
	if CodeDensity("") != 0 {
		t.Fatal("empty text density")
	}
}

func TestTrainingText(t *testing.T) {
	files := []File{{Path: "a.v", Content: "x"}, {Path: "b.v", Content: "y"}}
	tt := TrainingText(files)
	if len(tt) != 2 || tt[0] != "x" || tt[1] != "y" {
		t.Fatalf("training text = %v", tt)
	}
}

// TestMinHashInsertionOrderFree backs the //vgencheck:ordered waivers on
// the Jaccard and Signature reductions: shingle sets built by inserting
// the same shingles in opposite orders (different map layouts) must
// produce bit-identical signatures and similarity scores.
func TestMinHashInsertionOrderFree(t *testing.T) {
	text := "module adder(input a, input b, output sum); assign sum = a ^ b; endmodule"
	base := Shingles(text, 3)
	keys := make([]uint64, 0, len(base))
	for s := range base {
		keys = append(keys, s)
	}
	fwd := make(ShingleSet, len(keys))
	rev := make(ShingleSet, len(keys))
	for _, s := range keys {
		fwd[s] = true
	}
	for i := len(keys) - 1; i >= 0; i-- {
		rev[keys[i]] = true
	}
	mh := NewMinHash(64)
	s1, s2 := mh.Signature(fwd), mh.Signature(rev)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("signature slot %d diverged: %x vs %x", i, s1[i], s2[i])
		}
	}
	other := Shingles("always @(posedge clk) q <= d;", 3)
	if Jaccard(fwd, other) != Jaccard(rev, other) {
		t.Fatal("Jaccard depends on shingle insertion order")
	}
	if Jaccard(fwd, other) != Jaccard(other, fwd) {
		t.Fatal("Jaccard is not symmetric")
	}
}
