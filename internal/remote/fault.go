package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/gen"
)

// FaultKind names one injected network fault — the fault matrix the
// transport's recovery paths are proven against, mirroring
// coord.FaultyLauncher's injected worker crashes one layer down.
type FaultKind int

const (
	FaultNone     FaultKind = iota
	Fault5xx                // respond 503 before touching the backend
	FaultHang               // never respond; hold the request until the client gives up
	FaultReset              // hijack the connection and slam it shut mid-exchange
	FaultTruncate           // send a prefix of the real body, then cut the connection
	FaultCorrupt            // send the real body with its JSON mangled
	FaultSlowDrip           // trickle the real body slower than any client timeout
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case Fault5xx:
		return "5xx"
	case FaultHang:
		return "hang"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	case FaultSlowDrip:
		return "slow-drip"
	}
	return "fault(" + strconv.Itoa(int(k)) + ")"
}

// AnyAttempt wildcards the attempt number in a fault plan entry.
const AnyAttempt = -1

// AnyCoord wildcards the request coordinate in a fault plan entry.
const AnyCoord = "*"

// InfoKey is the plan key for the /v1/info endpoint (it has no request
// coordinates of its own).
const InfoKey = "info"

// FaultPlan schedules faults at exact (coordinate, attempt) points —
// the style of coord.FaultPlan, keyed by ReqKey strings instead of shard
// indices. Attempts are counted server-side per coordinate (1-based), so
// the schedule is deterministic regardless of client batching or retry
// timing. Lookup precedence: exact (coord, attempt) over (coord, any)
// over (any, attempt) over (any, any).
type FaultPlan struct {
	mu    sync.Mutex
	exact map[faultAt]FaultKind
	any   map[string]FaultKind // coord -> kind, any attempt
}

type faultAt struct {
	key     string
	attempt int
}

// NewFaultPlan returns an empty plan (every request passes through).
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{exact: map[faultAt]FaultKind{}, any: map[string]FaultKind{}}
}

// Set schedules kind for the coordinate key (a ReqKey string, InfoKey,
// or AnyCoord) at the given 1-based attempt (or AnyAttempt).
func (p *FaultPlan) Set(key string, attempt int, kind FaultKind) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if attempt == AnyAttempt {
		p.any[key] = kind
	} else {
		p.exact[faultAt{key: key, attempt: attempt}] = kind
	}
	return p
}

func (p *FaultPlan) lookup(key string, attempt int) FaultKind {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k, ok := p.exact[faultAt{key: key, attempt: attempt}]; ok {
		return k
	}
	if k, ok := p.any[key]; ok {
		return k
	}
	if k, ok := p.exact[faultAt{key: AnyCoord, attempt: attempt}]; ok {
		return k
	}
	if k, ok := p.any[AnyCoord]; ok {
		return k
	}
	return FaultNone
}

// FaultServer wraps the real wire-protocol handler with deterministic
// fault injection: each incoming request's coordinates are counted
// server-side, the plan is consulted, and the scheduled fault (if any) is
// applied at the transport level — the response the client sees is broken
// exactly the way a sick network would break it, while the backend
// underneath stays the honest one. In a batch, the first request (in
// batch order) with a scheduled fault selects the fault for the whole
// exchange, matching how a transport-level fault really hits a batched
// POST.
type FaultServer struct {
	inner http.Handler
	plan  *FaultPlan

	// Drip and DripChunk shape FaultSlowDrip: DripChunk bytes are written
	// per Drip tick. Defaults: 16 bytes per 10ms.
	Drip      time.Duration
	DripChunk int

	mu       sync.Mutex
	attempts map[string]int // per-coordinate exchange count, 1-based
}

// NewFaultServer wraps backend b (with opts) behind plan.
func NewFaultServer(b gen.Backend, plan *FaultPlan, opts ServerOptions) *FaultServer {
	return &FaultServer{
		inner:    NewHandler(b, opts),
		plan:     plan,
		Drip:     10 * time.Millisecond,
		DripChunk: 16,
		attempts: map[string]int{},
	}
}

// Attempts reports how many exchanges have been counted for a coordinate
// key — the test hook proving retries actually happened.
func (f *FaultServer) Attempts(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[key]
}

// ServeHTTP counts the request's coordinates, picks the scheduled fault,
// and either injects it or forwards to the real handler.
func (f *FaultServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, keys, err := f.readKeys(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	kind := FaultNone
	f.mu.Lock()
	for _, k := range keys {
		f.attempts[k]++
		if kind == FaultNone {
			kind = f.plan.lookup(k, f.attempts[k])
		}
	}
	f.mu.Unlock()
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	switch kind {
	case Fault5xx:
		http.Error(w, "injected 503", http.StatusServiceUnavailable)
	case FaultHang:
		// Hold the exchange open without a byte of response. The request
		// context unblocks us when the client times out / disconnects or
		// the server is closed — so a hang can never strand a handler.
		<-r.Context().Done()
	case FaultReset:
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close() // abrupt close mid-exchange: client sees EOF/reset
				return
			}
		}
		panic(http.ErrAbortHandler) // non-hijackable writer: abort the conn
	case FaultTruncate:
		full := f.record(r)
		// Promise the full length, deliver half: the client's body read
		// fails with unexpected EOF when the server closes the exchange.
		w.Header().Set("Content-Length", strconv.Itoa(len(full)))
		w.WriteHeader(http.StatusOK)
		w.Write(full[:len(full)/2])
	case FaultCorrupt:
		full := corruptJSON(f.record(r))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(full)
	case FaultSlowDrip:
		full := f.record(r)
		w.Header().Set("Content-Length", strconv.Itoa(len(full)))
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		for len(full) > 0 && r.Context().Err() == nil {
			n := f.DripChunk
			if n > len(full) {
				n = len(full)
			}
			if _, err := w.Write(full[:n]); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			full = full[n:]
			if err := sleepCtx(r.Context(), f.Drip); err != nil {
				return
			}
		}
	default:
		f.inner.ServeHTTP(w, r)
	}
}

// readKeys extracts the request's coordinate keys (and returns the body
// for replay into the inner handler). Info requests count under InfoKey.
func (f *FaultServer) readKeys(r *http.Request) (body []byte, keys []string, err error) {
	if r.URL.Path == PathInfo {
		return nil, []string{InfoKey}, nil
	}
	body, err = io.ReadAll(r.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("read body: %w", err)
	}
	var req completeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("bad request body: %w", err)
	}
	for _, q := range req.Requests {
		keys = append(keys, wireReqKey(q))
	}
	return body, keys, nil
}

// wireReqKey is ReqKey computed from the wire form — same string, so
// fault plans built with ReqKey match requests decoded off the wire.
func wireReqKey(q wireRequest) string {
	return fmt.Sprintf("%s/%s:p%d:l%d:t%d:s%d",
		q.Model, q.Variant, q.Problem, q.Level, gen.TempMilli(q.Temperature), q.Sample)
}

// record runs the inner handler into a buffer so a fault can mangle,
// truncate, or drip a *real* response — the failure modes that matter
// are the ones wrapped around otherwise-correct payloads.
func (f *FaultServer) record(r *http.Request) []byte {
	rec := &recordWriter{header: http.Header{}}
	f.inner.ServeHTTP(rec, r)
	return rec.buf.Bytes()
}

// recordWriter is a minimal buffering http.ResponseWriter.
type recordWriter struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func (rw *recordWriter) Header() http.Header { return rw.header }
func (rw *recordWriter) WriteHeader(s int)   { rw.status = s }
func (rw *recordWriter) Write(p []byte) (int, error) {
	return rw.buf.Write(p)
}

// corruptJSON mangles a JSON payload so it still ships with a consistent
// length but no longer parses: the closing brace is replaced and garbage
// appended, defeating both full and prefix parses.
func corruptJSON(b []byte) []byte {
	out := append([]byte(nil), b...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] == '}' {
			out[i] = '#'
			break
		}
	}
	return append(out, []byte("\x00garbage")...)
}
