// Package remote is the network-proxied generation backend: an HTTP
// client transport (and the matching server) that lets any
// completion source behind a JSON-over-HTTP endpoint plug into the
// frozen eval/coord machinery as a registered gen.Backend.
//
// The robustness stack mirrors the coordinator's supervision discipline
// one layer down — where coord survives crashing workers, this package
// makes a single worker survive a flaky network:
//
//   - per-request deadlines derived from a sweep-level budget
//   - retries with capped exponential backoff, deterministically
//     jittered from (seed, coord, attempt) exactly like coord's
//     supervisor, so retry storms decorrelate without making runs
//     irreproducible
//   - idempotency keys derived from request coordinates (samples are
//     pure functions of their coordinates, so a retried request is
//     always safe — the key makes that visible to the server)
//   - a per-endpoint circuit breaker (consecutive failures trip it;
//     after a cooldown a single probe half-opens it)
//   - bounded in-flight concurrency independent of the eval pool width
//   - graceful degradation: exhausted retries surface as per-request
//     errors that the eval engine turns into explicitly missing cells
//     via the existing partial-result path — never an aborted sweep,
//     never a silent gap
//
// Fault recovery is testable the same way coord's is: FaultServer wraps
// the real server handler with a FaultPlan (in the style of
// coord.FaultyLauncher) that injects 5xx, hangs, connection resets,
// truncated bodies, corrupt JSON, and slow-drip responses at exact
// (coord, attempt) points. See DESIGN.md, "The remote backend".
package remote

import (
	"fmt"
	"math"

	"repro/internal/gen"
)

// Wire protocol paths. The protocol is two endpoints: a GET describing
// the served backend and a POST completing a batch of requests.
const (
	PathInfo     = "/v1/info"
	PathComplete = "/v1/complete"
)

// IdemHeader carries the batch-level idempotency key on complete POSTs:
// a hash of every request key in the batch, identical across retries of
// the same batch.
const IdemHeader = "Idempotency-Key"

// wireKey is one (model, variant) line in info responses.
type wireKey struct {
	Model   string `json:"model"`
	Variant string `json:"variant"`
}

// infoResponse describes the backend behind the endpoint.
type infoResponse struct {
	Backend  string    `json:"backend"` // the served backend's Describe()
	Variants []wireKey `json:"variants"`
}

// wireRequest is one completion request by coordinate — gen.Request
// flattened to wire-stable scalars. Temperature travels as the float64
// itself: encoding/json emits the shortest round-tripping representation,
// so the server reconstructs the bit-identical float and every seed
// derived from it (the engine's truncating temperature hash included)
// matches the in-process run exactly.
type wireRequest struct {
	IdemKey     string  `json:"idem_key"`
	Model       string  `json:"model"`
	Variant     string  `json:"variant"`
	Problem     int     `json:"problem"`
	Level       int     `json:"level"`
	Temperature float64 `json:"temperature"`
	Sample      int     `json:"sample"`
	BaseSeed    int64   `json:"base_seed"`
}

// completeRequest is the POST body: a batch of requests.
type completeRequest struct {
	Requests []wireRequest `json:"requests"`
}

// wireResult is one request's outcome. Error is a per-request failure
// (unknown problem number, out-of-range level) that must not poison the
// batch's siblings; OK mirrors Backend.Complete's ok (false = the backend
// serves no line at these coordinates).
type wireResult struct {
	OK         bool    `json:"ok"`
	Completion string  `json:"completion,omitempty"`
	Mechanism  string  `json:"mechanism,omitempty"`
	Latency    float64 `json:"latency,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// completeResponse is the POST response: exactly one result per request,
// in request order. A count mismatch is a protocol violation the client
// treats like a corrupt body (retryable).
type completeResponse struct {
	Results []wireResult `json:"results"`
}

// ReqKey is the canonical string address of one request's coordinates —
// the unit fault plans key on and the seed of the idempotency key. The
// temperature is keyed by its bits (not a quantization) so any two
// requests differing in any coordinate get distinct keys.
func ReqKey(q gen.Request) string {
	return fmt.Sprintf("%s/%s:p%d:l%d:t%d:s%d",
		q.Key.Model, q.Key.Variant, q.Problem.Number, int(q.Level),
		gen.TempMilli(q.Temperature), q.SampleIdx)
}

// idemKey derives the deterministic per-request idempotency key from the
// full coordinates (including the temperature bits and base seed): same
// request, same key, on every attempt of every retry.
func idemKey(q wireRequest) string {
	h := fnvString(fnvOffset, q.Model)
	h = fnvString(h, q.Variant)
	h = fnvUint(h, uint64(q.Problem))
	h = fnvUint(h, uint64(q.Level))
	h = fnvUint(h, math.Float64bits(q.Temperature))
	h = fnvUint(h, uint64(q.Sample))
	h = fnvUint(h, uint64(q.BaseSeed))
	return fmt.Sprintf("%016x", h)
}

// batchIdemKey folds the per-request keys into the batch-level
// Idempotency-Key header value.
func batchIdemKey(reqs []wireRequest) string {
	h := uint64(fnvOffset)
	for _, q := range reqs {
		h = fnvString(h, q.IdemKey)
	}
	return fmt.Sprintf("%016x", h)
}

// FNV-1a, the same hash family the eval engine keys seeds and caches
// with.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvUint(h, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (u & 0xff)) * fnvPrime
		u >>= 8
	}
	return h
}
