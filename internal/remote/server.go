package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"

	"repro/internal/gen"
	"repro/internal/problems"
)

// ServerOptions configure the wire-protocol server side.
type ServerOptions struct {
	// AuthToken, when non-empty, requires every request to carry the
	// matching bearer token; mismatches get 401 (which the client treats
	// as non-retryable — a wrong token never heals).
	AuthToken string
}

// NewHandler serves backend b over the wire protocol. Any registered
// backend works: vgen-serve puts family or replay behind it, tests put
// mutants behind it. The handler resolves problem numbers against the
// local catalog and answers every request in the batch independently, so
// one bad request degrades only its own entry.
func NewHandler(b gen.Backend, opts ServerOptions) http.Handler {
	mux := http.NewServeMux()
	auth := func(h http.HandlerFunc) http.HandlerFunc {
		if opts.AuthToken == "" {
			return h
		}
		want := "Bearer " + opts.AuthToken
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get("Authorization") != want {
				http.Error(w, "unauthorized", http.StatusUnauthorized)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc(PathInfo, auth(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		info := infoResponse{Backend: b.Describe()}
		for _, k := range b.Variants() {
			info.Variants = append(info.Variants, wireKey{Model: k.Model, Variant: k.Variant})
		}
		writeJSON(w, info)
	}))
	mux.HandleFunc(PathComplete, auth(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req completeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, complete(r.Context(), b, req))
	}))
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// complete answers one batch. Requests that resolve (known problem,
// level in range) go to the backend — through its own batch fast path
// when it has one; requests that don't get per-entry errors.
func complete(ctx context.Context, b gen.Backend, req completeRequest) completeResponse {
	results := make([]wireResult, len(req.Requests))
	var reqs []gen.Request
	var idx []int // position of reqs[i] in results
	for i, q := range req.Requests {
		p := problems.ByNumber(q.Problem)
		if p == nil {
			results[i] = wireResult{Error: fmt.Sprintf("no problem %d", q.Problem)}
			continue
		}
		if q.Level < 0 || q.Level >= len(problems.Levels) {
			results[i] = wireResult{Error: fmt.Sprintf("level %d out of range", q.Level)}
			continue
		}
		reqs = append(reqs, gen.Request{
			Key:         gen.Key{Model: q.Model, Variant: q.Variant},
			Problem:     p,
			Level:       problems.Level(q.Level),
			Temperature: q.Temperature,
			SampleIdx:   q.Sample,
			BaseSeed:    q.BaseSeed,
		})
		idx = append(idx, i)
	}
	if len(reqs) == 0 {
		return completeResponse{Results: results}
	}
	if bb, ok := b.(gen.BatchBackend); ok {
		for j, res := range bb.CompleteBatch(ctx, reqs) {
			switch {
			case res.Err != nil:
				results[idx[j]] = wireResult{Error: res.Err.Error()}
			case res.OK:
				results[idx[j]] = wireResult{OK: true, Completion: res.Sample.Completion, Mechanism: res.Sample.Mechanism, Latency: res.Sample.Latency}
			}
		}
		return completeResponse{Results: results}
	}
	for j, q := range reqs {
		if err := ctx.Err(); err != nil {
			results[idx[j]] = wireResult{Error: err.Error()}
			continue
		}
		if s, ok := b.Complete(q.Key, q.Problem, q.Level, q.Temperature, q.SampleIdx, q.BaseSeed); ok {
			results[idx[j]] = wireResult{OK: true, Completion: s.Completion, Mechanism: s.Mechanism, Latency: s.Latency}
		}
	}
	return completeResponse{Results: results}
}

// Server runs a wire-protocol HTTP server on a local listener — the
// in-process harness vgen-serve and every remote test build on. Start
// spawns the serve loop; Close (or ctx cancellation) shuts it down and
// waits for the loop to exit, so a test that closes its server leaks no
// goroutines.
type Server struct {
	handler http.Handler

	mu     sync.Mutex
	srv    *http.Server
	url    string
	done   chan struct{} // closed when the serve loop exits
	cancel context.CancelFunc
}

// NewServer wraps a handler (NewHandler's, or a FaultServer) for serving.
func NewServer(h http.Handler) *Server { return &Server{handler: h} }

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Close or
// ctx cancellation. It returns the bound URL, ready to dial.
func (s *Server) Start(ctx context.Context, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(ctx)
	srv := &http.Server{Handler: s.handler}
	done := make(chan struct{})
	s.mu.Lock()
	s.srv, s.url, s.done, s.cancel = srv, "http://"+ln.Addr().String(), done, cancel
	s.mu.Unlock()
	go func() {
		defer close(done)
		srv.Serve(ln) // returns ErrServerClosed on shutdown
	}()
	go func() {
		<-ctx.Done()
		srv.Close() // unblocks Serve and in-flight handlers
	}()
	return s.URL(), nil
}

// URL returns the bound address ("http://127.0.0.1:port") after Start.
func (s *Server) URL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.url
}

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	srv, done, cancel := s.srv, s.done, s.cancel
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	cancel()
	err := srv.Close()
	<-done
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
