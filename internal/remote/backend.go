package remote

import (
	"context"
	"fmt"

	"repro/internal/gen"
	"repro/internal/problems"
)

func init() {
	gen.Register("remote", "JSON-over-HTTP proxy to a completion service (vgen-serve); retrying, circuit-broken, batch-capable", func(o gen.Options) (gen.Backend, error) {
		return NewBackend(configFrom(o.Remote))
	})
}

// backend proxies gen.Backend (and the BatchBackend fast path) over the
// wire protocol. Construction dials /v1/info so a bad endpoint fails
// fast at setup instead of degrading every cell of the sweep; the
// response's backend description is folded into Describe so outcome-cache
// entries and sweep identity never alias across different served
// backends.
type backend struct {
	t        *Transport
	desc     string
	variants []gen.Key
}

// NewBackend connects to the endpoint and returns the proxy backend.
func NewBackend(cfg Config) (gen.Backend, error) {
	t, err := NewTransport(cfg)
	if err != nil {
		return nil, err
	}
	desc, variants, err := t.Info(context.Background())
	if err != nil {
		return nil, fmt.Errorf("remote: endpoint %s unusable: %w", cfg.Endpoint, err)
	}
	return &backend{t: t, desc: "remote(" + desc + ")", variants: variants}, nil
}

// Complete proxies one sample request. The engine routes BatchBackend
// implementations through CompleteBatch (where transport failures degrade
// the cell to explicitly missing); this single-call form exists for the
// Backend contract and direct callers, which see a transport failure as a
// decline — same as a backend with no line at the coordinates.
func (b *backend) Complete(key gen.Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64) (gen.Sample, bool) {
	res := b.CompleteBatch(context.Background(), []gen.Request{{
		Key: key, Problem: p, Level: level,
		Temperature: temperature, SampleIdx: sampleIdx, BaseSeed: baseSeed,
	}})
	if res[0].Err != nil || !res[0].OK {
		return gen.Sample{}, false
	}
	return res[0].Sample, true
}

// CompleteBatch proxies a whole batch in one wire exchange — the fast
// path the eval engine coalesces work items into.
func (b *backend) CompleteBatch(ctx context.Context, reqs []gen.Request) []gen.BatchResult {
	return b.t.CompleteBatch(ctx, reqs)
}

// Variants lists the served backend's line-up, fetched at construction.
func (b *backend) Variants() []gen.Key { return append([]gen.Key(nil), b.variants...) }

// Describe tags the proxy with the served backend's own description, so
// remote(family(...)) and remote(replay(...)) never share cache entries.
func (b *backend) Describe() string { return b.desc }
