package remote

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func testTransport(t *testing.T, seed int64) *Transport {
	t.Helper()
	tr, err := NewTransport(Config{
		Endpoint:    "http://127.0.0.1:1", // never dialed by these tests
		BackoffBase: 50 * time.Millisecond,
		BackoffCap:  2 * time.Second,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestBackoffDeterministic pins the supervisor-style jitter contract:
// the delay is a pure function of (seed, coord, attempt), lands in
// [d/2, d) of the capped exponential schedule, and decorrelates across
// seeds and coordinates.
func TestBackoffDeterministic(t *testing.T) {
	a := testTransport(t, 42)
	b := testTransport(t, 42)
	other := testTransport(t, 43)

	base := a.cfg.BackoffBase
	distinct := false
	for _, coord := range []uint64{0, 1, 0xdeadbeef} {
		for attempt := 1; attempt <= 8; attempt++ {
			d1 := a.backoff(coord, attempt)
			if d2 := b.backoff(coord, attempt); d1 != d2 {
				t.Fatalf("same (seed,coord,attempt) gave %v then %v", d1, d2)
			}
			want := base
			for i := 1; i < attempt && want < a.cfg.BackoffCap; i++ {
				want *= 2
			}
			if want > a.cfg.BackoffCap {
				want = a.cfg.BackoffCap
			}
			if d1 < want/2 || d1 >= want {
				t.Fatalf("coord %#x attempt %d: delay %v outside [%v, %v)", coord, attempt, d1, want/2, want)
			}
			if other.backoff(coord, attempt) != d1 {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Fatal("jitter ignores the seed: every delay matched across seeds")
	}
}

// TestBreakerStateMachine walks closed -> open -> half-open -> open
// (failed probe) -> half-open -> closed (successful probe).
func TestBreakerStateMachine(t *testing.T) {
	br := newBreaker(2, 20*time.Millisecond)

	if !br.Allow() {
		t.Fatal("fresh breaker should be closed")
	}
	br.Failure()
	if got := br.snapshot(); got != breakerClosed {
		t.Fatalf("one failure under threshold 2 should stay closed, got %v", got)
	}
	br.Failure()
	if got := br.snapshot(); got != breakerOpen {
		t.Fatalf("threshold reached: want open, got %v", got)
	}
	if br.Allow() {
		t.Fatal("open breaker inside cooldown must reject")
	}

	time.Sleep(25 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("cooldown elapsed: the first caller becomes the probe")
	}
	if br.Allow() {
		t.Fatal("only one probe may fly while half-open")
	}
	br.Failure() // failed probe
	if got := br.snapshot(); got != breakerOpen {
		t.Fatalf("failed probe should re-open, got %v", got)
	}

	time.Sleep(25 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("second cooldown elapsed: probe again")
	}
	br.Success()
	if got := br.snapshot(); got != breakerClosed {
		t.Fatalf("successful probe should close, got %v", got)
	}
	if !br.Allow() {
		t.Fatal("closed breaker must allow")
	}
	// A success also resets the consecutive-failure count.
	br.Failure()
	if got := br.snapshot(); got != breakerClosed {
		t.Fatalf("failure streak should have reset on success, got %v", got)
	}
}

// TestRetryableClassification pins which errors burn retry budget.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&statusError{code: http.StatusInternalServerError}, true},
		{&statusError{code: http.StatusServiceUnavailable}, true},
		{&statusError{code: http.StatusTooManyRequests}, true},
		{&statusError{code: http.StatusRequestTimeout}, true},
		{&statusError{code: http.StatusUnauthorized}, false},
		{&statusError{code: http.StatusBadRequest}, false},
		{&statusError{code: http.StatusNotFound}, false},
		{errBreakerOpen, true},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestIdemKeyStable pins idempotency keys: equal coordinates yield equal
// keys; any coordinate change yields a different key.
func TestIdemKeyStable(t *testing.T) {
	base := wireRequest{Model: "m", Variant: "v", Problem: 3, Level: 1, Temperature: 0.25, Sample: 2, BaseSeed: 55}
	if idemKey(base) != idemKey(base) {
		t.Fatal("idempotency key is not a pure function of coordinates")
	}
	mutants := []wireRequest{base, base, base, base, base, base, base}
	mutants[0].Model = "m2"
	mutants[1].Variant = "v2"
	mutants[2].Problem = 4
	mutants[3].Level = 2
	mutants[4].Temperature = 0.250001
	mutants[5].Sample = 3
	mutants[6].BaseSeed = 56
	for i, m := range mutants {
		if idemKey(m) == idemKey(base) {
			t.Errorf("mutant %d collides with base key", i)
		}
	}
}

// TestRetryBookkeepingZeroAlloc pins the per-attempt hot path — breaker
// consultation, success bookkeeping, and backoff computation — at zero
// heap allocations, so retrying never adds GC pressure to a sweep.
func TestRetryBookkeepingZeroAlloc(t *testing.T) {
	tr := testTransport(t, 7)
	if n := testing.AllocsPerRun(1000, func() {
		if tr.br.Allow() {
			tr.br.Success()
		}
		_ = tr.backoff(0xabcdef, 3)
	}); n != 0 {
		t.Fatalf("retry bookkeeping allocates %.1f times per attempt; want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.br.Failure()
		tr.br.Success()
	}); n != 0 {
		t.Fatalf("breaker failure path allocates %.1f times; want 0", n)
	}
}

// BenchmarkRetryBookkeeping measures the fixed per-attempt overhead the
// transport adds on top of the HTTP exchange itself.
func BenchmarkRetryBookkeeping(b *testing.B) {
	tr, err := NewTransport(Config{Endpoint: "http://127.0.0.1:1", Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.br.Allow() {
			tr.br.Success()
		}
		_ = tr.backoff(uint64(i), 1+i%4)
	}
}

// TestCorruptJSONHelper keeps the fault server's corruption actually
// corrupt: output must not unmarshal as a completeResponse.
func TestCorruptJSONHelper(t *testing.T) {
	in := []byte(`{"results":[{"ok":true,"completion":"x"}]}`)
	out := corruptJSON(in)
	var resp completeResponse
	if err := json.Unmarshal(out, &resp); err == nil {
		t.Fatalf("corruptJSON produced valid JSON: %s", out)
	}
}
