package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/gen"
)

// Transport defaults, applied by NewTransport for zero-valued Config
// fields. The numbers are sized for a LAN/loopback completion service;
// CLIs expose every knob.
const (
	defaultTimeout          = 30 * time.Second
	defaultMaxAttempts      = 4
	defaultBackoffBase      = 50 * time.Millisecond
	defaultBackoffCap       = 2 * time.Second
	defaultMaxInFlight      = 16
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = time.Second
)

// Config parameterizes the transport. It is gen.RemoteOptions with the
// defaults resolved; construct one with configFrom or fill it directly in
// tests.
type Config struct {
	Endpoint  string
	AuthToken string

	Timeout time.Duration // per-attempt deadline
	Budget  time.Duration // sweep-level deadline; 0 means none

	MaxAttempts int
	BackoffBase time.Duration
	BackoffCap  time.Duration

	MaxInFlight int

	BreakerThreshold int
	BreakerCooldown  time.Duration

	Seed int64
}

// configFrom resolves registry options into a Config with defaults.
func configFrom(o gen.RemoteOptions) Config {
	return Config{
		Endpoint: o.Endpoint, AuthToken: o.AuthToken,
		Timeout: o.Timeout, Budget: o.Budget,
		MaxAttempts: o.MaxAttempts, BackoffBase: o.BackoffBase, BackoffCap: o.BackoffCap,
		MaxInFlight: o.MaxInFlight,
		BreakerThreshold: o.BreakerThreshold, BreakerCooldown: o.BreakerCooldown,
		Seed: o.Seed,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.Endpoint == "" {
		return c, errors.New("remote: endpoint required (-endpoint)")
	}
	if !strings.HasPrefix(c.Endpoint, "http://") && !strings.HasPrefix(c.Endpoint, "https://") {
		return c, fmt.Errorf("remote: endpoint %q is not an http(s) URL", c.Endpoint)
	}
	if c.Timeout <= 0 {
		c.Timeout = defaultTimeout
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = defaultMaxAttempts
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = defaultBackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = defaultBackoffCap
	}
	if c.BackoffCap < c.BackoffBase {
		c.BackoffCap = c.BackoffBase
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = defaultMaxInFlight
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = defaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = defaultBreakerCooldown
	}
	return c, nil
}

// Transport is the robust HTTP client for the wire protocol: retrying,
// circuit-broken, concurrency-bounded, budget-bounded. Safe for
// concurrent use — the eval pool calls it from every worker.
type Transport struct {
	cfg      Config
	client   *http.Client
	br       *breaker
	sem      chan struct{} // bounds in-flight HTTP attempts
	deadline time.Time     // sweep budget deadline; zero means none

	// sleep waits between attempts; injectable so retry tests don't spend
	// wall clock. The default honors ctx cancellation.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewTransport builds a transport over cfg. The sweep-level budget is
// anchored here: the deadline is Budget from construction time, and every
// request the transport ever sends shares it (per-attempt deadlines are
// min(Timeout, remaining budget) via nested contexts).
func NewTransport(cfg Config) (*Transport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Transport{
		cfg: cfg,
		client: &http.Client{
			// No client-level timeout: per-attempt contexts own the clock,
			// and a fixed client timeout would silently cap the budget math.
			Transport: &http.Transport{
				MaxIdleConns:        cfg.MaxInFlight,
				MaxIdleConnsPerHost: cfg.MaxInFlight, // pool one conn per in-flight slot
			},
		},
		br:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		sleep: sleepCtx,
	}
	if cfg.Budget > 0 {
		t.deadline = time.Now().Add(cfg.Budget)
	}
	return t, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusError is a non-2xx HTTP response.
type statusError struct{ code int }

func (e *statusError) Error() string { return fmt.Sprintf("http status %d", e.code) }

// errBreakerOpen is an attempt rejected locally by the open circuit
// breaker — no bytes hit the wire.
var errBreakerOpen = errors.New("circuit breaker open")

// retryable classifies attempt errors. Network faults, timeouts, body
// truncation, corrupt JSON, 5xx/429/408 statuses, and breaker rejections
// are transient; other 4xx (auth, malformed request) are deterministic
// and retrying them only burns budget.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests || se.code == http.StatusRequestTimeout
	}
	return true
}

// backoff is the delay before the next attempt: exponential from
// BackoffBase, capped at BackoffCap, with deterministic jitter in
// [d/2, d) hashed from (seed, coord, attempt) — the coordinator
// supervisor's formula, keyed by request coordinates instead of shard
// index, so transport retry storms decorrelate reproducibly.
func (t *Transport) backoff(coordHash uint64, attempt int) time.Duration {
	d := t.cfg.BackoffBase
	for i := 1; i < attempt && d < t.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > t.cfg.BackoffCap {
		d = t.cfg.BackoffCap
	}
	h := splitmix64(uint64(t.cfg.Seed) ^ splitmix64(coordHash) ^ uint64(attempt)<<20)
	half := d / 2
	return half + time.Duration(uint64(half)*(h&1023)/1024)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// do runs one wire exchange to completion: POST (or GET when body is
// nil), bounded in-flight, through the breaker, retried with backoff
// under the budget. decode validates and consumes the response body
// inside the retry loop, so a body that arrived intact but corrupt
// (mangled JSON, short result count) retries exactly like a 503.
func (t *Transport) do(ctx context.Context, path string, body []byte, idem string, coordHash uint64, decode func([]byte) error) error {
	if !t.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, t.deadline)
		defer cancel()
	}
	var lastErr error
	for attempt := 1; attempt <= t.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := t.sleep(ctx, t.backoff(coordHash, attempt-1)); err != nil {
				break // budget or caller context exhausted mid-backoff
			}
		}
		if err := ctx.Err(); err != nil {
			break
		}
		data, err := t.attempt(ctx, path, body, idem)
		if err == nil {
			err = decode(data)
			if err == nil {
				t.br.Success()
				return nil
			}
		}
		lastErr = err
		if err != errBreakerOpen {
			// Breaker rejections never reached the endpoint: they are not
			// evidence about its health, only about the breaker's own state.
			t.br.Failure()
		}
		if !retryable(err) {
			return fmt.Errorf("remote: %s attempt %d: %w", path, attempt, err)
		}
	}
	if err := ctx.Err(); err != nil {
		reason := "context canceled"
		if errors.Is(err, context.DeadlineExceeded) {
			reason = "sweep budget exhausted"
		}
		if lastErr == nil {
			lastErr = err
		}
		return fmt.Errorf("remote: %s: %s: last error: %w", path, reason, lastErr)
	}
	return fmt.Errorf("remote: %s: %d attempts failed: last error: %w", path, t.cfg.MaxAttempts, lastErr)
}

// attempt runs one HTTP exchange under the per-attempt deadline and the
// in-flight bound.
func (t *Transport) attempt(ctx context.Context, path string, body []byte, idem string) ([]byte, error) {
	if !t.br.Allow() {
		return nil, errBreakerOpen
	}
	select {
	case t.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-t.sem }()

	actx, cancel := context.WithTimeout(ctx, t.cfg.Timeout)
	defer cancel()

	method := http.MethodGet
	var rd io.Reader
	if body != nil {
		method = http.MethodPost
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, t.cfg.Endpoint+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idem != "" {
		req.Header.Set(IdemHeader, idem)
	}
	if t.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+t.cfg.AuthToken)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) // drain so the conn is reusable
		return nil, &statusError{code: resp.StatusCode}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err // truncation, reset, slow-drip timeout mid-body
	}
	return data, nil
}

// Info fetches the served backend's description and variant line-up.
func (t *Transport) Info(ctx context.Context) (desc string, variants []gen.Key, err error) {
	var info infoResponse
	err = t.do(ctx, PathInfo, nil, "", 0, func(data []byte) error {
		info = infoResponse{}
		if err := json.Unmarshal(data, &info); err != nil {
			return fmt.Errorf("corrupt info response: %w", err)
		}
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	for _, k := range info.Variants {
		variants = append(variants, gen.Key{Model: k.Model, Variant: k.Variant})
	}
	return info.Backend, variants, nil
}

// CompleteBatch runs one batch of completion requests through the wire,
// returning exactly one result per request in request order. Transport
// failures (after retries) land in every result's Err; per-request
// server-side errors land only in their own entry, leaving siblings
// intact.
func (t *Transport) CompleteBatch(ctx context.Context, reqs []gen.Request) []gen.BatchResult {
	out := make([]gen.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	wreqs := make([]wireRequest, len(reqs))
	for i, q := range reqs {
		wreqs[i] = wireRequest{
			Model: q.Key.Model, Variant: q.Key.Variant,
			Problem: q.Problem.Number, Level: int(q.Level),
			Temperature: q.Temperature, Sample: q.SampleIdx, BaseSeed: q.BaseSeed,
		}
		wreqs[i].IdemKey = idemKey(wreqs[i])
	}
	body, err := json.Marshal(completeRequest{Requests: wreqs})
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	// Jitter is keyed by the first request's coordinates: two workers
	// retrying different batches back off on decorrelated schedules.
	coordHash := fnvString(fnvOffset, wreqs[0].IdemKey)
	var resp completeResponse
	err = t.do(ctx, PathComplete, body, batchIdemKey(wreqs), coordHash, func(data []byte) error {
		resp = completeResponse{}
		if err := json.Unmarshal(data, &resp); err != nil {
			return fmt.Errorf("corrupt complete response: %w", err)
		}
		if len(resp.Results) != len(reqs) {
			return fmt.Errorf("protocol violation: %d results for %d requests", len(resp.Results), len(reqs))
		}
		return nil
	})
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	for i, r := range resp.Results {
		switch {
		case r.Error != "":
			out[i].Err = fmt.Errorf("remote: server: %s", r.Error)
		case r.OK:
			out[i] = gen.BatchResult{Sample: gen.Sample{Completion: r.Completion, Mechanism: r.Mechanism, Latency: r.Latency}, OK: true}
		}
	}
	return out
}
