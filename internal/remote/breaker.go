package remote

import (
	"sync"
	"time"
)

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed   breakerState = iota // normal operation
	breakerOpen                         // tripping: requests rejected until cooldown
	breakerHalfOpen                     // cooldown elapsed: exactly one probe in flight
)

// breaker is a per-endpoint circuit breaker. The transport consults it
// before every HTTP attempt: after Threshold consecutive transport
// failures it opens (attempts are rejected locally, sparing a sick server
// a retry storm and the sweep a long chain of per-request timeouts), and
// after Cooldown it half-opens, letting exactly one probe attempt
// through. A successful probe closes it; a failed probe re-opens it for
// another cooldown.
//
// Only transport-level outcomes feed the breaker. Per-request errors
// inside a successful HTTP exchange (say, one unknown problem number in a
// batch) are application results, not endpoint health signals.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether an attempt may proceed. In the open state it
// checks the cooldown clock; once elapsed the breaker half-opens and the
// calling attempt becomes the probe (subsequent callers are rejected
// until the probe reports back via Success or Failure).
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false // a probe is already in flight
	default: // breakerOpen
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		return true
	}
}

// Success records a successful transport exchange: the endpoint is
// healthy, so any state collapses back to closed.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.consec = 0
	b.mu.Unlock()
}

// Failure records a failed transport exchange. A closed breaker trips
// after threshold consecutive failures; a failed half-open probe re-opens
// immediately for a fresh cooldown.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
	case breakerClosed:
		b.consec++
		if b.consec >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
		}
	}
}

// snapshot reports the current state for tests and error messages.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
