package remote

// The fault-matrix suite: for every injected fault class the remote
// sweep must either converge to CellStats byte-identical to the
// monolithic family run, or degrade to explicitly failed cells that the
// plan path records as missing — never a silent gap, never a hung
// worker, and (checked below) no leaked goroutines. Meaningful under
// `go test -race`, which the Makefile race target and the CI
// remote-faults job run.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/problems"
)

const testSeed = 55

// familyBackend builds the small-corpus simulated family — the backend
// the ISSUE's byte-identity criterion is stated against.
func familyBackend(t *testing.T) gen.Backend {
	t.Helper()
	b, err := gen.New("family", gen.Options{Family: model.Config{Seed: 11, CorpusFiles: 25}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// probeQueries is the sweep the suite compares across transports: two
// problems, two levels, two temperatures, three samples.
func probeQueries(t *testing.T, b gen.Backend) []eval.Query {
	t.Helper()
	k := b.Variants()[0]
	v, ok := gen.ParseVariant(k.Variant)
	if !ok {
		t.Fatalf("unknown variant %q", k.Variant)
	}
	var qs []eval.Query
	for _, pn := range []int{1, 6} {
		for _, l := range []problems.Level{problems.LevelLow, problems.LevelMedium} {
			for _, temp := range []float64{0.1, 1.0} {
				qs = append(qs, eval.Query{
					Model: model.ID(k.Model), Variant: v,
					Problem: problems.ByNumber(pn), Level: l, Temperature: temp, N: 3,
				})
			}
		}
	}
	return qs
}

// startFaultServer serves backend b behind plan and returns the
// endpoint, the FaultServer for attempt inspection, and the Server so
// leak-checking tests can close it mid-test (Close is idempotent; a
// cleanup closes it regardless).
func startFaultServer(t *testing.T, b gen.Backend, plan *FaultPlan, opts ServerOptions) (string, *FaultServer, *Server) {
	t.Helper()
	fs := NewFaultServer(b, plan, opts)
	srv := NewServer(fs)
	url, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return url, fs, srv
}

// fastConfig is a test transport config with tight timeouts (hangs and
// drips resolve in tens of milliseconds) and the breaker effectively
// disabled — breaker behavior has its own tests, and tripping it here
// would turn a bounded-retry test into a cooldown race.
func fastConfig(url string) Config {
	return Config{
		Endpoint:         url,
		Timeout:          250 * time.Millisecond,
		MaxAttempts:      4,
		BackoffBase:      time.Millisecond,
		BackoffCap:       4 * time.Millisecond,
		BreakerThreshold: 1 << 20,
		Seed:             testSeed,
	}
}

func remoteBackend(t *testing.T, cfg Config) gen.Backend {
	t.Helper()
	b, err := NewBackend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.(*backend).t.client.CloseIdleConnections() })
	return b
}

// settleGoroutines waits for the goroutine count to return to the
// baseline; a count still above it after the grace period is a leak.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestFaultMatrixConvergence is the acceptance gate: with every
// coordinate's first exchange broken by each fault class in turn, the
// remote sweep must retry its way to CellStats byte-identical to the
// monolithic run, with zero degraded cells and zero leaked goroutines.
func TestFaultMatrixConvergence(t *testing.T) {
	fam := familyBackend(t)
	qs := probeQueries(t, fam)
	base := eval.NewRunner(fam, testSeed)
	base.Workers = 4
	want := base.EvaluateBatch(qs)

	kinds := []FaultKind{Fault5xx, FaultHang, FaultReset, FaultTruncate, FaultCorrupt, FaultSlowDrip}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			plan := NewFaultPlan().Set(AnyCoord, 1, kind)
			url, fs, srv := startFaultServer(t, fam, plan, ServerOptions{})
			rb := remoteBackend(t, fastConfig(url))

			r := eval.NewRunner(rb, testSeed)
			r.Workers = 4
			r.BatchSize = 4
			got := r.EvaluateBatch(qs)

			if fails := r.Failures(); len(fails) != 0 {
				t.Fatalf("expected full convergence, got %d degraded cells (first: %+v)", len(fails), fails[0])
			}
			for i := range qs {
				if got[i] != want[i] {
					t.Fatalf("query %d diverged from monolithic run under %s: %+v != %+v", i, kind, got[i], want[i])
				}
			}
			// Retries really happened: the first coordinate saw more than
			// one exchange.
			k := ReqKey(gen.Request{Key: rb.Variants()[0], Problem: qs[0].Problem, Level: qs[0].Level, Temperature: qs[0].Temperature, SampleIdx: 0})
			if fs.Attempts(k) < 2 {
				t.Fatalf("coordinate %s saw %d exchanges; the fault was never injected", k, fs.Attempts(k))
			}

			rb.(*backend).t.client.CloseIdleConnections()
			if err := srv.Close(); err != nil {
				t.Fatalf("server close: %v", err)
			}
			settleGoroutines(t, before)
		})
	}
}

// TestPersistentFaultDegradesToMissing pins graceful degradation: a
// server that fails every exchange must cost every cell — reported
// through Failures, recorded as missing by the plan path — without
// aborting the sweep, hanging a worker, or leaking a goroutine.
func TestPersistentFaultDegradesToMissing(t *testing.T) {
	before := runtime.NumGoroutine()
	fam := familyBackend(t)
	qs := probeQueries(t, fam)

	plan := NewFaultPlan().Set(AnyCoord, AnyAttempt, Fault5xx)
	// Info must survive construction, so exempt it from the blanket fault.
	plan.Set(InfoKey, AnyAttempt, FaultNone)
	url, _, srv := startFaultServer(t, fam, plan, ServerOptions{})
	cfg := fastConfig(url)
	cfg.MaxAttempts = 2
	rb := remoteBackend(t, cfg)

	r := eval.NewRunner(rb, testSeed)
	r.Workers = 4
	r.BatchSize = 4

	p := eval.NewPlan()
	for _, q := range qs {
		if err := p.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := r.RunPlanCtx(context.Background(), p)
	if err != nil {
		t.Fatalf("a degraded sweep must not abort: %v", err)
	}
	if rs.Len() != 0 {
		t.Fatalf("no cell could have been served, yet %d were stored", rs.Len())
	}
	if fails := r.Failures(); len(fails) != len(qs) {
		t.Fatalf("want %d degraded cells, got %d", len(qs), len(fails))
	}
	// The partial-result path sees the gap: every planned cell is missing.
	rs.Cells(qs)
	if missing := rs.Missing(); len(missing) != len(qs) {
		t.Fatalf("want %d missing cells, got %d", len(qs), len(missing))
	}

	rb.(*backend).t.client.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	settleGoroutines(t, before)
}

// TestPartialBatchFailureIsolation pins the per-request error channel:
// one unservable request in a batch must not poison its siblings.
func TestPartialBatchFailureIsolation(t *testing.T) {
	fam := familyBackend(t)
	url, _, _ := startFaultServer(t, fam, NewFaultPlan(), ServerOptions{})
	rb := remoteBackend(t, fastConfig(url))

	k := rb.Variants()[0]
	good := problems.ByNumber(1)
	bogus := &problems.Problem{Number: 999} // no such problem on the server
	reqs := []gen.Request{
		{Key: k, Problem: good, Level: problems.LevelLow, Temperature: 0.1, SampleIdx: 0, BaseSeed: 777},
		{Key: k, Problem: bogus, Level: problems.LevelLow, Temperature: 0.1, SampleIdx: 0, BaseSeed: 777},
		{Key: k, Problem: good, Level: problems.LevelLow, Temperature: 0.1, SampleIdx: 1, BaseSeed: 777},
	}
	res := rb.(gen.BatchBackend).CompleteBatch(context.Background(), reqs)
	if len(res) != 3 {
		t.Fatalf("want 3 results, got %d", len(res))
	}
	if res[0].Err != nil || !res[0].OK || res[2].Err != nil || !res[2].OK {
		t.Fatalf("siblings of a failed request were poisoned: %+v / %+v", res[0], res[2])
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "no problem 999") {
		t.Fatalf("bad request should carry its own error, got %+v", res[1])
	}
	// And the failed slot matches what Complete would do locally: the
	// good ones are the same samples the direct backend serves.
	if s, ok := fam.Complete(k, good, problems.LevelLow, 0.1, 0, 777); !ok || s != res[0].Sample {
		t.Fatalf("remote sample diverges from direct: %+v != %+v", res[0].Sample, s)
	}
}

// TestRemoteRecordReplay proves the auto-record pairing end to end: a
// recorded remote sweep replays offline — no server at all — into
// byte-identical CellStats.
func TestRemoteRecordReplay(t *testing.T) {
	fam := familyBackend(t)
	qs := probeQueries(t, fam)
	plan := NewFaultPlan().Set(AnyCoord, 1, Fault5xx) // record through retries, too
	url, _, _ := startFaultServer(t, fam, plan, ServerOptions{})
	rb := remoteBackend(t, fastConfig(url))

	var buf bytes.Buffer
	rec := gen.NewRecorder(rb, &buf)
	r := eval.NewRunner(rec, testSeed)
	r.Workers = 4
	r.BatchSize = 4
	want := r.EvaluateBatch(qs)
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if len(r.Failures()) != 0 {
		t.Fatalf("recording run degraded: %+v", r.Failures())
	}

	replay, err := gen.NewReplay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2 := eval.NewRunner(replay, testSeed)
	r2.Workers = 4
	got := r2.EvaluateBatch(qs)
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("replayed cell %d diverges: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestAuthRequired pins both auth directions: a matching bearer token
// passes; a missing one is rejected at construction (the /v1/info dial),
// without retrying — a wrong token never heals.
func TestAuthRequired(t *testing.T) {
	fam := familyBackend(t)
	url, fs, _ := startFaultServer(t, fam, NewFaultPlan(), ServerOptions{AuthToken: "sesame"})

	cfg := fastConfig(url)
	cfg.AuthToken = "sesame"
	rb := remoteBackend(t, cfg)
	if len(rb.Variants()) == 0 {
		t.Fatal("authorized client should see the variant line-up")
	}

	bad := fastConfig(url)
	attemptsBefore := fs.Attempts(InfoKey)
	if _, err := NewBackend(bad); err == nil {
		t.Fatal("tokenless client should be rejected")
	} else if !strings.Contains(err.Error(), "401") {
		t.Fatalf("rejection should carry the 401, got: %v", err)
	}
	if got := fs.Attempts(InfoKey) - attemptsBefore; got != 1 {
		t.Fatalf("401 must not be retried: %d attempts", got)
	}
}

// TestBudgetExhaustion pins the sweep-level budget: against a hanging
// server, a tiny budget fails requests with an explicit budget error
// instead of grinding through per-attempt timeouts.
func TestBudgetExhaustion(t *testing.T) {
	fam := familyBackend(t)
	url, _, _ := startFaultServer(t, fam, NewFaultPlan(), ServerOptions{})
	cfg := fastConfig(url)
	rb := remoteBackend(t, cfg) // construct (info dial) before the budget transport

	// A second transport with a 1ms budget: by the time a request runs,
	// the budget is gone.
	cfg.Budget = time.Millisecond
	tr, err := NewTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	k := rb.Variants()[0]
	res := tr.CompleteBatch(context.Background(), []gen.Request{
		{Key: k, Problem: problems.ByNumber(1), Level: problems.LevelLow, Temperature: 0.1, SampleIdx: 0, BaseSeed: 1},
	})
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "budget") {
		t.Fatalf("want budget-exhausted error, got %+v", res[0])
	}
	tr.client.CloseIdleConnections()
}

// TestConcurrentCompleteBatch hammers the batch path from 8 goroutines
// (the -race probe) and requires every call to agree with the direct
// backend.
func TestConcurrentCompleteBatch(t *testing.T) {
	fam := familyBackend(t)
	url, _, _ := startFaultServer(t, fam, NewFaultPlan(), ServerOptions{})
	rb := remoteBackend(t, fastConfig(url)).(gen.BatchBackend)

	k := rb.Variants()[0]
	p := problems.ByNumber(6)
	var reqs []gen.Request
	for idx := 0; idx < 6; idx++ {
		reqs = append(reqs, gen.Request{Key: k, Problem: p, Level: problems.LevelLow, Temperature: 1.0, SampleIdx: idx, BaseSeed: 777})
	}
	want := rb.CompleteBatch(context.Background(), reqs)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for rep := 0; rep < 3; rep++ {
				got := rb.CompleteBatch(context.Background(), reqs)
				for i := range reqs {
					if got[i].Err != nil || got[i] != want[i] {
						done <- fmt.Errorf("slot %d drifted: %+v != %+v", i, got[i], want[i])
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
