// Package mutate applies semantics-changing AST mutations to Verilog
// modules. The operators reproduce the characteristic near-miss failures
// the paper observes in LLM completions: constants offset by one (Fig. 2c),
// missing wrap/else conditions (Fig. 3c), wrong feedback concatenation
// (Problem 7 discussion), dropped output terms (Fig. 4c), swapped
// operators, and wrong clock edges. The simulated-LLM sampler draws from
// these mutants to populate the "compiles but fails the test bench" bucket.
package mutate

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/vlog"
)

// ErrNoSite is returned when an operator finds nothing to mutate.
var ErrNoSite = errors.New("mutate: no applicable mutation site")

// Operator is one mutation rule.
type Operator struct {
	Name  string
	Doc   string
	apply func(m *vlog.Module, rng *rand.Rand) bool
}

// Operators lists every mutation rule, in a stable order.
var Operators = []Operator{
	{
		Name:  "bump-constant",
		Doc:   "offset a numeric literal by one (Fig. 2c: encoder positions off by one)",
		apply: bumpConstant,
	},
	{
		Name:  "drop-else-if",
		Doc:   "remove an else branch (Fig. 3c: counter that never wraps)",
		apply: dropElse,
	},
	{
		Name:  "swap-operator",
		Doc:   "replace a binary operator with a near neighbour (+/-, &/|, ==/!=)",
		apply: swapOperator,
	},
	{
		Name:  "negate-condition",
		Doc:   "logically negate an if condition",
		apply: negateCondition,
	},
	{
		Name:  "reverse-concat",
		Doc:   "reverse concatenation parts (Problem 7: wrong feedback concatenation)",
		apply: reverseConcat,
	},
	{
		Name:  "shift-slice",
		Doc:   "shift part-select bounds by one bit",
		apply: shiftSlice,
	},
	{
		Name:  "swap-ternary",
		Doc:   "swap the arms of a conditional expression",
		apply: swapTernary,
	},
	{
		Name:  "drop-case-arm",
		Doc:   "delete one non-default case arm (Fig. 4c: state with no transition)",
		apply: dropCaseArm,
	},
	{
		Name:  "wrong-edge",
		Doc:   "flip posedge/negedge in an event control",
		apply: wrongEdge,
	},
	{
		Name:  "drop-term",
		Doc:   "replace a binary expression by its left operand (Fig. 4c: missing output term)",
		apply: dropTerm,
	},
	{
		Name:  "drop-statement",
		Doc:   "delete one statement from a begin/end block",
		apply: dropStatement,
	},
	{
		Name:  "negate-rhs",
		Doc:   "bitwise-invert the right-hand side of an assignment (applies even to trivial bodies like 'assign out = in')",
		apply: negateRHS,
	},
	{
		Name:  "flip-assign-kind",
		Doc:   "swap blocking and nonblocking assignment (a classic generated-code style error; often race-prone rather than outright wrong)",
		apply: flipAssignKind,
	},
}

// Result is one produced mutant.
type Result struct {
	Source   string
	Operator string
}

// Apply parses src, applies one applicable operator chosen at random, and
// returns the re-printed source. It fails with ErrNoSite when no operator
// applies.
func Apply(src string, rng *rand.Rand) (Result, error) {
	order := rng.Perm(len(Operators))
	for _, idx := range order {
		op := Operators[idx]
		f, err := vlog.Parse(src)
		if err != nil {
			return Result{}, fmt.Errorf("mutate: input does not parse: %w", err)
		}
		m := f.Modules[0]
		if op.apply(m, rng) {
			return Result{Source: vlog.Print(f), Operator: op.Name}, nil
		}
	}
	return Result{}, ErrNoSite
}

// ApplyNamed applies one specific operator by name.
func ApplyNamed(src, name string, rng *rand.Rand) (Result, error) {
	for _, op := range Operators {
		if op.Name != name {
			continue
		}
		f, err := vlog.Parse(src)
		if err != nil {
			return Result{}, fmt.Errorf("mutate: input does not parse: %w", err)
		}
		if op.apply(f.Modules[0], rng) {
			return Result{Source: vlog.Print(f), Operator: name}, nil
		}
		return Result{}, ErrNoSite
	}
	return Result{}, fmt.Errorf("mutate: unknown operator %q", name)
}

// ---- site collection helpers ---------------------------------------------

// eachStmt walks every statement in the module's always/initial bodies.
func eachStmt(m *vlog.Module, visit func(vlog.Stmt)) {
	var walk func(vlog.Stmt)
	walk = func(s vlog.Stmt) {
		if s == nil {
			return
		}
		visit(s)
		switch n := s.(type) {
		case *vlog.Block:
			for _, sub := range n.Stmts {
				walk(sub)
			}
		case *vlog.If:
			walk(n.Then)
			walk(n.Else)
		case *vlog.Case:
			for _, item := range n.Items {
				walk(item.Body)
			}
		case *vlog.For:
			walk(n.Body)
		case *vlog.While:
			walk(n.Body)
		case *vlog.Repeat:
			walk(n.Body)
		case *vlog.Forever:
			walk(n.Body)
		case *vlog.Delay:
			walk(n.Stmt)
		case *vlog.EventCtrl:
			walk(n.Stmt)
		case *vlog.Wait:
			walk(n.Stmt)
		}
	}
	for _, it := range m.Items {
		switch n := it.(type) {
		case *vlog.AlwaysBlock:
			walk(n.Body)
		case *vlog.InitialBlock:
			walk(n.Body)
		}
	}
}

// eachExprPtr visits a pointer to every behavioural expression so operators
// can replace subtrees in place. It covers always/initial bodies and
// continuous assignments (declarations and ranges are left alone: mutants
// should stay compilable).
func eachExprPtr(m *vlog.Module, visit func(*vlog.Expr)) {
	var walkE func(*vlog.Expr)
	walkE = func(ep *vlog.Expr) {
		if *ep == nil {
			return
		}
		visit(ep)
		switch n := (*ep).(type) {
		case *vlog.Unary:
			walkE(&n.X)
		case *vlog.Binary:
			walkE(&n.X)
			walkE(&n.Y)
		case *vlog.Ternary:
			walkE(&n.Cond)
			walkE(&n.Then)
			walkE(&n.Else)
		case *vlog.Concat:
			for i := range n.Parts {
				walkE(&n.Parts[i])
			}
		case *vlog.Repl:
			walkE(&n.X)
		case *vlog.Index:
			walkE(&n.I)
		case *vlog.RangeSel:
			// bounds must stay constant; visit but don't descend
		case *vlog.SysCallExpr:
			for i := range n.Args {
				walkE(&n.Args[i])
			}
		}
	}
	eachStmt(m, func(s vlog.Stmt) {
		switch n := s.(type) {
		case *vlog.Assign:
			walkE(&n.RHS)
		case *vlog.If:
			walkE(&n.Cond)
		case *vlog.Case:
			walkE(&n.Expr)
			for i := range n.Items {
				for j := range n.Items[i].Exprs {
					walkE(&n.Items[i].Exprs[j])
				}
			}
		case *vlog.While:
			walkE(&n.Cond)
		case *vlog.Repeat:
			walkE(&n.Count)
		case *vlog.Wait:
			walkE(&n.Cond)
		}
	})
	for _, it := range m.Items {
		if ca, ok := it.(*vlog.ContAssign); ok {
			for _, a := range ca.Assigns {
				walkE(&a.RHS)
			}
		}
	}
}

// ---- operators -------------------------------------------------------------

func bumpConstant(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Expr
	eachExprPtr(m, func(ep *vlog.Expr) {
		if n, ok := (*ep).(*vlog.Number); ok {
			if n.Value.Width() <= 1 {
				return // flipping 1-bit constants is a different operator
			}
			sites = append(sites, ep)
		}
	})
	if len(sites) == 0 {
		return false
	}
	ep := sites[rng.Intn(len(sites))]
	old := (*ep).(*vlog.Number)
	u, ok := old.Value.Uint64()
	if !ok {
		return false
	}
	w := old.Value.Width()
	delta := uint64(1)
	if rng.Intn(2) == 0 {
		delta = ^uint64(0) // -1
	}
	nv := (u + delta) & ((1 << uint(min(w, 63))) - 1)
	if w >= 64 {
		nv = u + delta
	}
	text := fmt.Sprintf("%d'd%d", w, nv)
	val, err := parseLit(text)
	if err != nil {
		return false
	}
	*ep = &vlog.Number{Pos: old.Pos, Text: text, Value: val}
	return true
}

func dropElse(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.If
	eachStmt(m, func(s vlog.Stmt) {
		if n, ok := s.(*vlog.If); ok && n.Else != nil {
			sites = append(sites, n)
		}
	})
	if len(sites) == 0 {
		return false
	}
	sites[rng.Intn(len(sites))].Else = nil
	return true
}

var opSwaps = map[string][]string{
	"+": {"-"}, "-": {"+"},
	"&": {"|", "^"}, "|": {"&", "^"}, "^": {"&", "|", "~^"},
	"==": {"!="}, "!=": {"=="},
	"<": {"<=", ">"}, "<=": {"<", ">="}, ">": {">=", "<"}, ">=": {">", "<="},
	"<<": {">>"}, ">>": {"<<", ">>>"}, ">>>": {">>"},
	"&&": {"||"}, "||": {"&&"},
}

func swapOperator(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Binary
	eachExprPtr(m, func(ep *vlog.Expr) {
		if n, ok := (*ep).(*vlog.Binary); ok {
			if len(opSwaps[n.Op]) > 0 {
				sites = append(sites, n)
			}
		}
	})
	if len(sites) == 0 {
		return false
	}
	b := sites[rng.Intn(len(sites))]
	alts := opSwaps[b.Op]
	b.Op = alts[rng.Intn(len(alts))]
	return true
}

func negateCondition(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.If
	eachStmt(m, func(s vlog.Stmt) {
		if n, ok := s.(*vlog.If); ok {
			sites = append(sites, n)
		}
	})
	if len(sites) == 0 {
		return false
	}
	n := sites[rng.Intn(len(sites))]
	n.Cond = &vlog.Unary{Pos: n.Pos, Op: "!", X: n.Cond}
	return true
}

func reverseConcat(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Concat
	eachExprPtr(m, func(ep *vlog.Expr) {
		if n, ok := (*ep).(*vlog.Concat); ok && len(n.Parts) >= 2 {
			sites = append(sites, n)
		}
	})
	if len(sites) == 0 {
		return false
	}
	c := sites[rng.Intn(len(sites))]
	for l, r := 0, len(c.Parts)-1; l < r; l, r = l+1, r-1 {
		c.Parts[l], c.Parts[r] = c.Parts[r], c.Parts[l]
	}
	return true
}

func shiftSlice(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.RangeSel
	eachExprPtr(m, func(ep *vlog.Expr) {
		if n, ok := (*ep).(*vlog.RangeSel); ok {
			if msbN, ok1 := n.MSB.(*vlog.Number); ok1 {
				if lsbN, ok2 := n.LSB.(*vlog.Number); ok2 {
					mu, _ := msbN.Value.Uint64()
					lu, _ := lsbN.Value.Uint64()
					if lu > 0 && mu > lu {
						sites = append(sites, n)
					}
				}
			}
		}
	})
	if len(sites) == 0 {
		return false
	}
	n := sites[rng.Intn(len(sites))]
	msbN := n.MSB.(*vlog.Number)
	lsbN := n.LSB.(*vlog.Number)
	mu, _ := msbN.Value.Uint64()
	lu, _ := lsbN.Value.Uint64()
	n.MSB = numberNode(msbN.Pos, mu-1)
	n.LSB = numberNode(lsbN.Pos, lu-1)
	return true
}

func swapTernary(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Ternary
	eachExprPtr(m, func(ep *vlog.Expr) {
		if n, ok := (*ep).(*vlog.Ternary); ok {
			sites = append(sites, n)
		}
	})
	if len(sites) == 0 {
		return false
	}
	n := sites[rng.Intn(len(sites))]
	n.Then, n.Else = n.Else, n.Then
	return true
}

func dropCaseArm(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Case
	eachStmt(m, func(s vlog.Stmt) {
		if n, ok := s.(*vlog.Case); ok {
			nonDefault := 0
			for _, item := range n.Items {
				if item.Exprs != nil {
					nonDefault++
				}
			}
			if nonDefault >= 2 {
				sites = append(sites, n)
			}
		}
	})
	if len(sites) == 0 {
		return false
	}
	n := sites[rng.Intn(len(sites))]
	var idxs []int
	for i, item := range n.Items {
		if item.Exprs != nil {
			idxs = append(idxs, i)
		}
	}
	at := idxs[rng.Intn(len(idxs))]
	n.Items = append(n.Items[:at], n.Items[at+1:]...)
	return true
}

func wrongEdge(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.EventItem
	eachStmt(m, func(s vlog.Stmt) {
		if n, ok := s.(*vlog.EventCtrl); ok {
			for i := range n.Events {
				if n.Events[i].Edge != vlog.EdgeAny {
					sites = append(sites, &n.Events[i])
				}
			}
		}
	})
	if len(sites) == 0 {
		return false
	}
	ev := sites[rng.Intn(len(sites))]
	if ev.Edge == vlog.EdgePos {
		ev.Edge = vlog.EdgeNeg
	} else {
		ev.Edge = vlog.EdgePos
	}
	return true
}

func dropTerm(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Expr
	eachExprPtr(m, func(ep *vlog.Expr) {
		if _, ok := (*ep).(*vlog.Binary); ok {
			sites = append(sites, ep)
		}
	})
	if len(sites) == 0 {
		return false
	}
	ep := sites[rng.Intn(len(sites))]
	b := (*ep).(*vlog.Binary)
	if rng.Intn(2) == 0 {
		*ep = b.X
	} else {
		*ep = b.Y
	}
	return true
}

func negateRHS(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Assign
	eachStmt(m, func(s vlog.Stmt) {
		if n, ok := s.(*vlog.Assign); ok {
			sites = append(sites, n)
		}
	})
	for _, it := range m.Items {
		if ca, ok := it.(*vlog.ContAssign); ok {
			sites = append(sites, ca.Assigns...)
		}
	}
	if len(sites) == 0 {
		return false
	}
	a := sites[rng.Intn(len(sites))]
	a.RHS = &vlog.Unary{Pos: a.Pos, Op: "~", X: a.RHS}
	return true
}

func flipAssignKind(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Assign
	eachStmt(m, func(s vlog.Stmt) {
		if n, ok := s.(*vlog.Assign); ok {
			sites = append(sites, n)
		}
	})
	if len(sites) == 0 {
		return false
	}
	a := sites[rng.Intn(len(sites))]
	a.NonBlocking = !a.NonBlocking
	return true
}

func dropStatement(m *vlog.Module, rng *rand.Rand) bool {
	var sites []*vlog.Block
	eachStmt(m, func(s vlog.Stmt) {
		if n, ok := s.(*vlog.Block); ok && len(n.Stmts) >= 2 {
			sites = append(sites, n)
		}
	})
	if len(sites) == 0 {
		return false
	}
	b := sites[rng.Intn(len(sites))]
	at := rng.Intn(len(b.Stmts))
	b.Stmts = append(b.Stmts[:at], b.Stmts[at+1:]...)
	return true
}

// ---- small helpers ----------------------------------------------------------

func numberNode(pos vlog.Pos, v uint64) *vlog.Number {
	text := fmt.Sprintf("%d", v)
	val, _ := parseLit(text)
	return &vlog.Number{Pos: pos, Text: text, Value: val}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
