package mutate

import (
	"math/rand"
	"testing"

	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

const counterSrc = `module counter(input clk, input reset, output reg [3:0] q);
  always @(posedge clk) begin
    if (reset) q <= 4'd1;
    else if (q == 4'd12) q <= 4'd1;
    else q <= q + 4'd1;
  end
endmodule
`

func TestApplyProducesParseableMutant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		res, err := Apply(counterSrc, rng)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if res.Source == counterSrc {
			t.Fatalf("mutation %q produced identical source", res.Operator)
		}
		if _, err := vlog.Parse(res.Source); err != nil {
			t.Fatalf("mutant from %q does not parse: %v\n%s", res.Operator, err, res.Source)
		}
	}
}

func TestMutantsCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	compiled := 0
	for i := 0; i < 60; i++ {
		res, err := Apply(counterSrc, rng)
		if err != nil {
			t.Fatal(err)
		}
		f, err := vlog.Parse(res.Source)
		if err != nil {
			continue
		}
		if elab.CompileCheck(f) == nil {
			compiled++
		}
	}
	if compiled < 50 {
		t.Fatalf("only %d/60 mutants compile", compiled)
	}
}

func TestEachNamedOperatorOnRichModule(t *testing.T) {
	src := `module rich(input clk, input [7:0] a, input [7:0] b, input sel, output reg [7:0] y, output wire p);
  assign p = a[7] ^ b[6:1] == 0;
  always @(posedge clk) begin
    if (sel) y <= {a[3:0], b[3:0]};
    else begin
      case (a[1:0])
        2'd0: y <= a + b;
        2'd1: y <= a - b;
        default: y <= sel ? a : b;
      endcase
      y <= y;
    end
  end
endmodule
`
	rng := rand.New(rand.NewSource(3))
	for _, op := range Operators {
		res, err := ApplyNamed(src, op.Name, rng)
		if err != nil {
			t.Errorf("operator %q: %v", op.Name, err)
			continue
		}
		if _, err := vlog.Parse(res.Source); err != nil {
			t.Errorf("operator %q mutant does not parse: %v", op.Name, err)
		}
		if res.Source == src {
			t.Errorf("operator %q changed nothing", op.Name)
		}
	}
}

func TestApplyNamedUnknown(t *testing.T) {
	if _, err := ApplyNamed(counterSrc, "no-such-op", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestApplyRejectsBadInput(t *testing.T) {
	if _, err := Apply("not verilog", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bad input accepted")
	}
}

func TestMutantsBreakReferenceSolutions(t *testing.T) {
	// across the benchmark, a healthy share of compiling mutants must fail
	// the problem test bench (this is what populates the compile-but-fail
	// bucket of the capability model)
	rng := rand.New(rand.NewSource(4))
	totalCompiling, totalFailing := 0, 0
	for _, p := range problems.All() {
		ref := p.ReferenceSource()
		for i := 0; i < 6; i++ {
			res, err := Apply(ref, rng)
			if err != nil {
				continue
			}
			f, err := vlog.Parse(res.Source + "\n" + p.Testbench)
			if err != nil {
				continue
			}
			if elab.CompileCheck(f) != nil {
				continue
			}
			d, err := elab.Elaborate(f, "tb", elab.Options{})
			if err != nil {
				continue
			}
			totalCompiling++
			resSim, _ := sim.New(d, sim.Options{}).Run()
			if !problems.PassVerdict(resSim.Output) {
				totalFailing++
			}
		}
	}
	if totalCompiling < 40 {
		t.Fatalf("too few compiling mutants: %d", totalCompiling)
	}
	if float64(totalFailing) < 0.5*float64(totalCompiling) {
		t.Fatalf("mutants too benign: %d/%d fail test benches", totalFailing, totalCompiling)
	}
}

func TestOperatorDocs(t *testing.T) {
	for _, op := range Operators {
		if op.Name == "" || op.Doc == "" {
			t.Errorf("operator missing name or doc: %+v", op)
		}
	}
}
