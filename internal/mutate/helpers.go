package mutate

import (
	"repro/internal/vnum"
)

// parseLit parses a Verilog literal into a value (thin wrapper kept local
// so operator code reads naturally).
func parseLit(text string) (vnum.Value, error) {
	return vnum.ParseLiteral(text)
}
