package elab

import (
	"sort"

	"repro/internal/vlog"
)

// This file implements the elaborate-once/splice-many split used by the
// evaluation pipeline. A testbench is elaborated into a Skeleton exactly
// once per (problem, level): every module defined by the testbench file is
// fully bound, parameters folded, and port shapes resolved, while
// instantiations of "hole" modules (the candidate's modules, absent from
// the testbench file) are deferred with enough bookkeeping to replay them
// later. Splice then binds one candidate file against the skeleton,
// re-running only the deferred instantiations, and produces a Design that
// is structurally identical — same stream order of Assigns/Procs/RegInits,
// same instance paths, same error condition — to a full
// Elaborate(Compose(candidate, testbench)) call.
//
// Spliced designs share the skeleton's Inst objects, which is what makes
// compiled-plan sharing across candidates possible: plan cache keys are
// (expr, inst) pairs, and both stay pointer-stable for the testbench cone.
// Shared Insts are never mutated after the skeleton is built; in
// particular a spliced child is never appended to its parent's Children —
// the merged order lives in the Design's children map, read through
// Design.ChildrenOf.

// deferredHole records one skipped hole instantiation: where it sits in
// the parent's child order, where the elaboration streams stood when it
// was skipped, and the recursion-guard state it would have seen.
type deferredHole struct {
	node     *vlog.Instance
	parent   *Inst
	childIdx int // len(parent.Children) at deferral time
	aLen     int // len(d.Assigns) at deferral time
	pLen     int // len(d.Procs) at deferral time
	rLen     int // len(d.RegInits) at deferral time
	active   []string
}

// deferHole snapshots the elaboration state for a hole instantiation. The
// recursion-guard set is sorted so the snapshot is deterministic; it is
// rebuilt into a set before use, so order carries no meaning.
func (e *elaborator) deferHole(n *vlog.Instance, parent *Inst, active map[string]bool) {
	snap := make([]string, 0, len(active))
	for name := range active {
		snap = append(snap, name)
	}
	sort.Strings(snap)
	e.deferred = append(e.deferred, deferredHole{
		node:     n,
		parent:   parent,
		childIdx: len(parent.Children),
		aLen:     len(e.d.Assigns),
		pLen:     len(e.d.Procs),
		rLen:     len(e.d.RegInits),
		active:   snap,
	})
}

// Skeleton is a testbench elaborated once with its candidate-module
// instantiations deferred. It is immutable after NewSkeleton returns and
// safe for concurrent Splice calls.
type Skeleton struct {
	file  *vlog.SourceFile
	top   string
	opts  Options
	d     *Design
	count int
	holes []deferredHole
	bound map[string]bool // module names the skeleton resolved (read-only)
}

// NewSkeleton elaborates the testbench file down to the given hole module
// names. Hole instantiations are deferred; everything else is fully
// elaborated and checked. An error means the testbench cannot be
// skeletonized (callers fall back to full elaboration).
func NewSkeleton(file *vlog.SourceFile, top string, holes []string, opts Options) (*Skeleton, error) {
	m := file.FindModule(top)
	if m == nil {
		return nil, errf(vlog.Pos{Line: 1, Col: 1}, "top module %q not found", top)
	}
	holeSet := make(map[string]bool, len(holes))
	for _, h := range holes {
		holeSet[h] = true
	}
	e := &elaborator{
		file:  file,
		opts:  opts,
		d:     &Design{},
		holes: holeSet,
		bound: map[string]bool{top: true},
	}
	inst, err := e.instantiate(m, top, nil, nil, map[string]bool{})
	if err != nil {
		return nil, err
	}
	e.d.Top = inst
	return &Skeleton{
		file:  file,
		top:   top,
		opts:  opts,
		d:     e.d,
		count: e.count,
		holes: e.deferred,
		bound: e.bound,
	}, nil
}

// Holes reports how many deferred instantiation sites the skeleton has.
func (sk *Skeleton) Holes() int { return len(sk.holes) }

// SpliceSite records where a candidate subtree was bound into the shared
// skeleton hierarchy: Child belongs before the Parent's Index-th skeleton
// child in the merged order.
type SpliceSite struct {
	Parent *Inst
	Index  int
	Child  *Inst
}

// Splice binds one candidate file against the skeleton and returns the
// composed Design. The result is identical to
// Elaborate(Compose(cand, testbench), top, opts): skeleton stream segments
// are interleaved with each hole's contributions at the exact positions
// full elaboration would have produced them, and the instance-count limit
// resumes from the skeleton's total so the success condition matches. Any
// error (including a candidate module shadowing a name the skeleton
// already bound, which full elaboration would have resolved differently)
// means the caller must fall back to full elaboration.
func (sk *Skeleton) Splice(cand *vlog.SourceFile) (*Design, error) {
	for _, m := range cand.Modules {
		if sk.bound[m.Name] {
			return nil, errf(m.Pos, "candidate module %q shadows a testbench binding", m.Name)
		}
	}
	e := &elaborator{
		file:  vlog.Compose(cand, sk.file),
		opts:  sk.opts,
		count: sk.count,
		d:     &Design{},
	}
	d := e.d
	prevA, prevP, prevR := 0, 0, 0
	sites := make([]SpliceSite, 0, len(sk.holes))
	for _, h := range sk.holes {
		d.Assigns = append(d.Assigns, sk.d.Assigns[prevA:h.aLen]...)
		d.Procs = append(d.Procs, sk.d.Procs[prevP:h.pLen]...)
		d.RegInits = append(d.RegInits, sk.d.RegInits[prevR:h.rLen]...)
		prevA, prevP, prevR = h.aLen, h.pLen, h.rLen
		active := make(map[string]bool, len(h.active)+4)
		for _, name := range h.active {
			active[name] = true
		}
		child, err := e.elabChild(h.node, h.parent, active)
		if err != nil {
			return nil, err
		}
		sites = append(sites, SpliceSite{Parent: h.parent, Index: h.childIdx, Child: child})
	}
	d.Assigns = append(d.Assigns, sk.d.Assigns[prevA:]...)
	d.Procs = append(d.Procs, sk.d.Procs[prevP:]...)
	d.RegInits = append(d.RegInits, sk.d.RegInits[prevR:]...)
	d.Top = sk.d.Top
	d.Splices = sites
	d.buildChildren()
	return d, nil
}

// buildChildren precomputes the merged child order for every parent with
// splice sites. Built once at splice time and read-only afterwards, so
// concurrent simulations of the same Design need no synchronization.
func (d *Design) buildChildren() {
	if len(d.Splices) == 0 {
		return
	}
	type group struct {
		parent *Inst
		sites  []SpliceSite
	}
	var groups []group
	idx := make(map[*Inst]int, len(d.Splices))
	for _, s := range d.Splices {
		gi, ok := idx[s.Parent]
		if !ok {
			gi = len(groups)
			idx[s.Parent] = gi
			groups = append(groups, group{parent: s.Parent})
		}
		groups[gi].sites = append(groups[gi].sites, s)
	}
	d.children = make(map[*Inst][]*Inst, len(groups))
	for _, g := range groups {
		skel := g.parent.Children
		merged := make([]*Inst, 0, len(skel)+len(g.sites))
		si := 0
		for k := 0; k <= len(skel); k++ {
			for si < len(g.sites) && g.sites[si].Index == k {
				merged = append(merged, g.sites[si].Child)
				si++
			}
			if k < len(skel) {
				merged = append(merged, skel[k])
			}
		}
		d.children[g.parent] = merged
	}
}

// ChildrenOf returns the instance's children in elaboration order. For
// spliced designs the shared skeleton Inst does not own its spliced
// children, so consumers must resolve child lists through the Design.
func (d *Design) ChildrenOf(in *Inst) []*Inst {
	if d.children != nil {
		if kids, ok := d.children[in]; ok {
			return kids
		}
	}
	return in.Children
}

// HoleModules returns, in first-reference order, the module names the
// file instantiates but does not define — the holes a candidate file is
// expected to fill.
func HoleModules(file *vlog.SourceFile) []string {
	var holes []string
	seen := map[string]bool{}
	for _, m := range file.Modules {
		for _, it := range m.Items {
			n, ok := it.(*vlog.Instance)
			if !ok {
				continue
			}
			if seen[n.Module] || file.FindModule(n.Module) != nil {
				continue
			}
			seen[n.Module] = true
			holes = append(holes, n.Module)
		}
	}
	return holes
}
