package elab

import (
	"strings"
	"testing"

	"repro/internal/vlog"
	"repro/internal/vnum"
)

func constOf(t *testing.T, src string, params map[string]uint64) vnum.Value {
	t.Helper()
	e, err := vlog.ParseExprString(src)
	if err != nil {
		t.Fatalf("parse expr: %v", err)
	}
	inst := &Inst{Params: map[string]vnum.Value{}}
	for k, v := range params {
		inst.Params[k] = vnum.FromUint64(32, v)
	}
	v, err := ConstEval(e, inst)
	if err != nil {
		t.Fatalf("const eval %q: %v", src, err)
	}
	return v
}

func TestConstEvalOperators(t *testing.T) {
	cases := map[string]uint64{
		"1 + 2":          3,
		"10 - 3":         7,
		"4 * 5":          20,
		"17 / 5":         3,
		"17 % 5":         2,
		"2 ** 6":         64,
		"12 & 10":        8,
		"12 | 10":        14,
		"12 ^ 10":        6,
		"3 << 2":         12,
		"12 >> 2":        3,
		"5 == 5":         1,
		"5 != 5":         0,
		"3 < 4":          1,
		"4 <= 4":         1,
		"5 > 9":          0,
		"5 >= 5":         1,
		"1 && 0":         0,
		"1 || 0":         1,
		"!0":             1,
		"~0":             0xFFFFFFFF,
		"-1":             0xFFFFFFFF,
		"+7":             7,
		"1 ? 11 : 22":    11,
		"0 ? 11 : 22":    22,
		"W - 1":          7,
		"W * 2 + 1":      17,
		"&3":             0, // 32-bit 3 has zero bits above bit 1
		"|0":             0,
		"^3":             0,
		"~&1":            1,
		"~|0":            1,
		"~^3":            1,
		"5 === 5":        1,
		"5 !== 6":        1,
		"{2'b10, 2'b01}": 9,
		"{2{2'b01}}":     5,
	}
	for src, want := range cases {
		v := constOf(t, src, map[string]uint64{"W": 8})
		got, ok := v.AsUnsigned().Uint64()
		if !ok || got != want {
			t.Errorf("%q = %d (ok=%v), want %d", src, got, ok, want)
		}
	}
}

func TestConstEvalErrors(t *testing.T) {
	for _, src := range []string{"sig + 1", "{sig, 1'b0}", "{N{1'b1}}"} {
		e, err := vlog.ParseExprString(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ConstEval(e, &Inst{Params: map[string]vnum.Value{}}); err == nil {
			t.Errorf("%q should not be constant", src)
		}
	}
}

func TestConstEvalHugeReplicationRejected(t *testing.T) {
	e, err := vlog.ParseExprString("{100000{1'b1}}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConstEval(e, &Inst{Params: map[string]vnum.Value{}}); err == nil {
		t.Fatal("huge replication accepted")
	}
}

func TestElabMoreErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"memory write whole", `module m; reg [7:0] mem [3:0]; always @(*) mem = 0; endmodule`, "one word at a time"},
		{"mem as ca target", `module m; reg [7:0] mem [3:0]; wire w; assign mem[0] = 1; endmodule`, "continuous assignment target"},
		{"mem decl wire", `module m; wire [7:0] mem [3:0]; endmodule`, "must be declared reg"},
		{"dup mem", `module m; reg [7:0] mem [3:0]; reg [7:0] mem [3:0]; endmodule`, "duplicate"},
		{"mem signal clash", `module m; reg [7:0] mem [3:0]; wire mem; endmodule`, "duplicate"},
		{"unknown sysfunc", `module m; wire w; assign w = $bogusfunc(1); endmodule`, "unknown system function"},
		{"bad lvalue", `module m; reg r; always @(*) 5 = r; endmodule`, ""},
		{"conflicting widths", `module m(a); input [3:0] a; wire [7:0] a; endmodule`, "conflicting widths"},
		{"dup port decl", `module m(a); input a; input a; endmodule`, "duplicate port"},
		{"partselect nonconst", `module m(input [7:0] v, input [2:0] i, output w); assign w = v[i:0]; endmodule`, "not a constant"},
		{"too wide", `module m; wire [100000:0] v; endmodule`, "too wide"},
		{"huge memory", `module m; reg [7:0] mem [2000000:0]; endmodule`, "too large"},
		{"positional param overflow", `module c(input a); endmodule
module m; wire w; c #(1, 2) c0 (.a(w)); endmodule`, "too many parameter"},
		{"mixed conns", `module c(input a, input b); endmodule
module m; wire w; c c0 (.a(w), w); endmodule`, "mix named and positional"},
		{"output to expr", `module c(output o); assign o = 1; endmodule
module m; wire w, v; c c0 (.o(w & v)); endmodule`, "net lvalue"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := vlog.Parse(c.src)
			if err != nil {
				// a parse error also counts for the bad-lvalue case
				if c.want == "" {
					return
				}
				t.Fatalf("parse: %v", err)
			}
			_, err = Elaborate(f, "m", Options{})
			if err == nil {
				t.Fatalf("expected elaboration error")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestElabInstanceLimit(t *testing.T) {
	src := `module leaf; endmodule
module mid; leaf a(); leaf b(); leaf c(); leaf d(); endmodule
module m; mid x0(); mid x1(); mid x2(); endmodule`
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f, "m", Options{MaxInstances: 5}); err == nil {
		t.Fatal("instance limit not enforced")
	}
	if _, err := Elaborate(f, "m", Options{}); err != nil {
		t.Fatalf("default limit should admit the design: %v", err)
	}
}

func TestElabAscendingRange(t *testing.T) {
	d := elaborate(t, `module m; wire [0:7] v; endmodule`, "m")
	v := d.Top.Signals["v"]
	if v.Width != 8 || v.MSB != 0 || v.LSB != 7 {
		t.Fatalf("ascending range = %+v", v)
	}
}

func TestElabUnconnectedPort(t *testing.T) {
	src := `module c(input a, output y); assign y = ~a; endmodule
module m; wire w; c c0 (.a(), .y(w)); endmodule`
	d := elaborate(t, src, "m")
	// only the output connection produces an implicit assign (plus c's own)
	if len(d.Assigns) != 2 {
		t.Fatalf("assigns = %d", len(d.Assigns))
	}
}

func TestElabTopNotFound(t *testing.T) {
	f, _ := vlog.Parse(`module a; endmodule`)
	if _, err := Elaborate(f, "zz", Options{}); err == nil {
		t.Fatal("missing top accepted")
	}
}

func TestApplyHelpers(t *testing.T) {
	a := vnum.FromUint64(8, 12)
	b := vnum.FromUint64(8, 10)
	if got, _ := ApplyBinary("&", a, b).Uint64(); got != 8 {
		t.Errorf("ApplyBinary & = %d", got)
	}
	if got, _ := ApplyUnary("~", vnum.FromUint64(4, 0)).Uint64(); got != 15 {
		t.Errorf("ApplyUnary ~ = %d", got)
	}
	if ApplyBinary("??", a, b).IsKnown() {
		t.Error("unknown operator should yield x")
	}
}
