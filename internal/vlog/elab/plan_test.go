package elab

import (
	"testing"

	"repro/internal/vlog"
)

// planTestInst elaborates a module and returns its top instance plus a
// lookup for expressions parsed in its scope.
func planTestInst(t *testing.T, src string) *Inst {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Elaborate(f, "m", Options{})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d.Top
}

// exprOf pulls the RHS expression of the module's single continuous assign.
func exprOf(t *testing.T, in *Inst, src string) vlog.Expr {
	t.Helper()
	f, err := vlog.Parse("module x(output y); assign y = " + src + "; endmodule")
	if err != nil {
		t.Fatalf("parse expr %q: %v", src, err)
	}
	for _, it := range f.Modules[0].Items {
		if ca, ok := it.(*vlog.ContAssign); ok {
			return ca.Assigns[0].RHS
		}
	}
	t.Fatalf("no assign in %q", src)
	return nil
}

const planTestMod = `module m;
  parameter P = 12;
  parameter signed SP = -3;
  reg [15:0] v;
  reg signed [7:0] sv;
  reg [3:0] nib;
  reg [7:0] mem [0:7];
  wire [31:0] w32;
endmodule`

func TestSelfTypeResolution(t *testing.T) {
	in := planTestInst(t, planTestMod)
	cases := []struct {
		src    string
		width  int
		signed bool
	}{
		{"v", 16, false},
		{"sv", 8, true},
		{"P", 32, true},           // parameter: 32-bit signed decimal literal
		{"v + nib", 16, false},    // max of operand widths
		{"sv + sv", 8, true},      // signed only when all operands are
		{"sv + v", 16, false},     // mixed context is unsigned
		{"v < sv", 1, false},      // comparisons are one bit
		{"&v", 1, false},          // reductions are one bit
		{"v << 9", 16, false},     // shift width from the left operand
		{"sv ** sv", 8, true},     // power width from the base
		{"{v, nib}", 20, false},   // concat sums parts
		{"{3{nib}}", 12, false},   // replication multiplies
		{"v[7:2]", 6, false},      // part select span
		{"mem[2]", 8, false},      // memory word width
		{"v[3]", 1, false},        // bit select
		{"$time", 64, false},
		{"$signed(nib)", 4, true}, // $signed keeps the arg width
		{"nib ? sv : sv", 8, true},
	}
	for _, c := range cases {
		e := exprOf(t, in, c.src)
		if w := SelfWidth(e, in); w != c.width {
			t.Errorf("SelfWidth(%q) = %d, want %d", c.src, w, c.width)
		}
		if sg := SelfSigned(e, in); sg != c.signed {
			t.Errorf("SelfSigned(%q) = %v, want %v", c.src, sg, c.signed)
		}
	}
}

func TestCompileExprResolvesStatically(t *testing.T) {
	in := planTestInst(t, planTestMod)

	// parameters fold to constants at the context type
	p := CompileExpr(exprOf(t, in, "P"), in, 16)
	if p.Op != PlanConst {
		t.Fatalf("parameter plan op = %v, want PlanConst", p.Op)
	}
	if p.Width != 32 || !p.Signed {
		t.Errorf("parameter plan type = (%d, %v)", p.Width, p.Signed)
	}
	if u, ok := p.Const.Uint64(); !ok || u != 12 {
		t.Errorf("parameter const = %v", p.Const)
	}

	// context width widens the node beyond its self-determined width
	p = CompileExpr(exprOf(t, in, "nib + nib"), in, 16)
	if p.Op != PlanBinary || p.Width != 16 {
		t.Errorf("context plan = op %v width %d, want PlanBinary at 16", p.Op, p.Width)
	}
	if p.X.Width != 16 || p.Y.Width != 16 {
		t.Errorf("operands not pre-extended: %d, %d", p.X.Width, p.Y.Width)
	}

	// comparisons keep their operands at the operands' own common type
	p = CompileExpr(exprOf(t, in, "sv < sv"), in, 32)
	if p.Op != PlanCompare || p.Width != 32 || p.CmpW != 8 || !p.CmpSg {
		t.Errorf("compare plan = %+v", p)
	}

	// part-select offsets are resolved through the declaration
	p = CompileExpr(exprOf(t, in, "v[7:2]"), in, 0)
	if p.Op != PlanPartSel || !p.OK || p.A != 7 || p.B != 2 || p.Span != 6 {
		t.Errorf("part-select plan = %+v", p)
	}

	// signal references bind to the declaration in the instance
	p = CompileExpr(exprOf(t, in, "sv"), in, 0)
	if p.Op != PlanSignal || p.Sig == nil || p.Sig.Name != "sv" || p.Scope != in {
		t.Errorf("signal plan = %+v", p)
	}

	// memory reads bind the memory and compile the index self-determined
	p = CompileExpr(exprOf(t, in, "mem[nib]"), in, 0)
	if p.Op != PlanMemRead || p.Mem == nil || p.Mem.Name != "mem" || p.X.Op != PlanSignal {
		t.Errorf("memory plan = %+v", p)
	}

	// string literals fold entirely
	p = CompileExpr(&vlog.Str{Text: "ok"}, in, 0)
	if p.Op != PlanConst || p.Width != 16 {
		t.Errorf("string plan = %+v", p)
	}
}

