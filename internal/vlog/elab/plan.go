package elab

import (
	"repro/internal/vlog"
	"repro/internal/vnum"
)

// This file implements compiled expression plans. The simulator's
// interpreter re-derives IEEE 1364 width and signedness context — the
// selfWidth/selfSigned recursion — on every evaluation of every
// expression, on every event. All of that context is static once a design
// is elaborated: signal widths, parameter values, part-select bounds, and
// replication counts cannot change at runtime. A Plan is the expression
// with all of it resolved once: every node carries its evaluation width
// and effective signedness, parameters are folded to constants, part
// selects carry pre-mapped storage offsets, and signal/memory references
// are bound to their declarations in a concrete instance. Executing a plan
// (the simulator binds each node to a closure over its runtime signal
// state) performs no width derivation, no constant evaluation, and no AST
// type switching.
//
// Plans are semantically exact: for every expression the plan's value is
// bit-identical — including the signedness flag that %d formatting reads
// and the $random draw order — to the interpreter's. The differential
// tests in internal/sim and internal/eval pin that equivalence.

// PlanOp enumerates compiled plan node kinds. Each kind corresponds to one
// evaluation shape of the interpreter, not one AST node type: e.g. the
// context-transparent unary operators (+ - ~) and the self-determined
// reductions compile to different kinds because their operands evaluate at
// different widths.
type PlanOp uint8

// Plan node kinds.
const (
	PlanConst   PlanOp = iota // pre-folded constant (literals, strings, parameters)
	PlanSignal                // signal read, bound to a declaration in an instance
	PlanMemRead               // memory word read with a dynamic index
	PlanBitSel                // single-bit select with a dynamic index
	PlanPartSel               // constant part select, offsets pre-resolved
	PlanUnary                 // context-transparent unary: + - ~
	PlanReduce                // reductions and !, operand self-determined
	PlanBinary                // context-determined arithmetic/bitwise binary
	PlanShift                 // << <<< >> >>>: amount self-determined, used unsigned
	PlanPow                   // **: exponent self-determined, signedness preserved
	PlanLogical               // && ||: operands self-determined
	PlanCompare               // relational/equality: operands at their own common type
	PlanTernary               // ?: with the LRM unknown-condition merge
	PlanConcat                // concatenation, parts self-determined
	PlanRepl                  // replication, count pre-resolved
	PlanSysFunc               // $time, $random, $signed, ...
)

// Plan is one node of a compiled expression plan. Width and Signed are the
// node's evaluation type with assignment context already applied; operand
// plans are compiled at the widths the LRM assigns them, so no node ever
// re-derives context at runtime.
type Plan struct {
	Op     PlanOp
	Width  int
	Signed bool

	Text  string     // operator lexeme or system-function name
	Const vnum.Value // PlanConst: payload, already at (Width, Signed) unless raw (see compile)

	Scope *Inst   // instance binding for Sig/Mem
	Sig   *Signal // PlanSignal, or the base declaration of PlanBitSel/PlanPartSel
	Mem   *Mem    // PlanMemRead

	X, Y, Z *Plan   // operands (cond/then/else for PlanTernary)
	Parts   []*Plan // PlanConcat parts, PlanSysFunc args

	A, B  int  // PlanPartSel offsets (hi, lo) or declared bounds; PlanRepl count in A
	Span  int  // PlanPartSel raw slice width
	OK    bool // PlanPartSel: offsets resolved inside the declared range
	CmpW  int  // PlanCompare operand width (the operands' own common type)
	CmpSg bool // PlanCompare operand signedness
}

// SelfWidth computes the static self-determined width of an expression in
// an elaborated instance (IEEE 1364 Table 5-22).
func SelfWidth(e vlog.Expr, in *Inst) int {
	switch n := e.(type) {
	case *vlog.Number:
		return n.Value.Width()
	case *vlog.Str:
		w := 8 * len(n.Text)
		if w == 0 {
			w = 8
		}
		return w
	case *vlog.Ident:
		if s, ok := in.Signals[n.Name]; ok {
			return s.Width
		}
		if p, ok := in.Params[n.Name]; ok {
			return p.Width()
		}
		return 1
	case *vlog.Index:
		if id, ok := n.X.(*vlog.Ident); ok {
			if m, ok := in.Mems[id.Name]; ok {
				return m.Width
			}
		}
		return 1
	case *vlog.RangeSel:
		msb, lsb, ok := PartSelBounds(n, in)
		if !ok {
			return 1
		}
		w := msb - lsb
		if w < 0 {
			w = -w
		}
		return w + 1
	case *vlog.Unary:
		switch n.Op {
		case "+", "-", "~":
			return SelfWidth(n.X, in)
		default: // reductions and !
			return 1
		}
	case *vlog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			a, b := SelfWidth(n.X, in), SelfWidth(n.Y, in)
			if a > b {
				return a
			}
			return b
		case "<<", ">>", ">>>", "<<<", "**":
			return SelfWidth(n.X, in)
		default: // relational, equality, logical
			return 1
		}
	case *vlog.Ternary:
		a, b := SelfWidth(n.Then, in), SelfWidth(n.Else, in)
		if a > b {
			return a
		}
		return b
	case *vlog.Concat:
		total := 0
		for _, p := range n.Parts {
			total += SelfWidth(p, in)
		}
		if total == 0 {
			total = 1
		}
		return total
	case *vlog.Repl:
		return replCount(n, in) * SelfWidth(n.X, in)
	case *vlog.SysCallExpr:
		switch n.Name {
		case "$time", "$stime":
			return 64
		case "$random", "$urandom", "$clog2":
			return 32
		case "$signed", "$unsigned":
			if len(n.Args) == 1 {
				return SelfWidth(n.Args[0], in)
			}
		}
		return 32
	default:
		return 1
	}
}

// SelfSigned computes the static self-determined signedness of an
// expression in an elaborated instance.
func SelfSigned(e vlog.Expr, in *Inst) bool {
	switch n := e.(type) {
	case *vlog.Number:
		return n.Value.Signed()
	case *vlog.Ident:
		if s, ok := in.Signals[n.Name]; ok {
			return s.Signed
		}
		if p, ok := in.Params[n.Name]; ok {
			return p.Signed()
		}
		return false
	case *vlog.Index, *vlog.RangeSel, *vlog.Concat, *vlog.Repl, *vlog.Str:
		return false
	case *vlog.Unary:
		switch n.Op {
		case "+", "-", "~":
			return SelfSigned(n.X, in)
		default:
			return false
		}
	case *vlog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~", "**":
			return SelfSigned(n.X, in) && SelfSigned(n.Y, in)
		case "<<", ">>", ">>>", "<<<":
			return SelfSigned(n.X, in)
		default:
			return false
		}
	case *vlog.Ternary:
		return SelfSigned(n.Then, in) && SelfSigned(n.Else, in)
	case *vlog.SysCallExpr:
		switch n.Name {
		case "$signed", "$random":
			return true
		}
		return false
	default:
		return false
	}
}

// PartSelBounds resolves the constant bounds of a part select (verified
// constant at elaboration); ok is false when they do not evaluate.
func PartSelBounds(n *vlog.RangeSel, in *Inst) (msb, lsb int, ok bool) {
	mv, err1 := ConstEval(n.MSB, in)
	lv, err2 := ConstEval(n.LSB, in)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	mi, ok1 := mv.Int64()
	li, ok2 := lv.Int64()
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	return int(mi), int(li), true
}

// replCount resolves a replication count the way the interpreter does for
// self-width purposes: unresolvable counts default to 1.
func replCount(n *vlog.Repl, in *Inst) int {
	if v, err := ConstEval(n.Count, in); err == nil {
		if u, ok := v.Uint64(); ok {
			return int(u)
		}
	}
	return 1
}

// CompileExpr compiles e for evaluation with assignment-context width ctx
// (0 for a self-determined position): the node evaluates at
// max(self-determined width, ctx) with its self-determined signedness.
func CompileExpr(e vlog.Expr, in *Inst, ctx int) *Plan {
	w := SelfWidth(e, in)
	if ctx > w {
		w = ctx
	}
	return CompileExprSized(e, in, w, SelfSigned(e, in))
}

// sizedConst applies the context (w, sg) to a constant at compile time —
// exactly the interpreter's sized() on an invariant value.
func sizedConst(v vnum.Value, w int, sg bool) vnum.Value {
	return v.ResizeAs(w, sg)
}

// constPlan returns a pre-folded constant node holding v verbatim.
func constPlan(v vnum.Value, w int, sg bool) *Plan {
	return &Plan{Op: PlanConst, Width: w, Signed: sg, Const: v}
}

// CompileExprSized compiles e to evaluate at width w with expression-level
// signedness sg (the case-label entry point uses it directly with sg
// forced false).
func CompileExprSized(e vlog.Expr, in *Inst, w int, sg bool) *Plan {
	switch n := e.(type) {
	case *vlog.Number:
		return constPlan(sizedConst(n.Value, w, sg), w, sg)
	case *vlog.Str:
		v := vnum.Zero(8 * max(1, len(n.Text)))
		for i := 0; i < len(n.Text); i++ {
			b := n.Text[len(n.Text)-1-i]
			for k := 0; k < 8; k++ {
				if b>>uint(k)&1 == 1 {
					v = v.WithBit(i*8+k, vnum.B1)
				}
			}
		}
		return constPlan(sizedConst(v, w, sg), w, sg)
	case *vlog.Ident:
		if s, ok := in.Signals[n.Name]; ok {
			return &Plan{Op: PlanSignal, Width: w, Signed: sg, Scope: in, Sig: s}
		}
		if p, ok := in.Params[n.Name]; ok {
			return constPlan(sizedConst(p, w, sg), w, sg)
		}
		// undeclared (rejected at elaboration; defensive): raw all-x,
		// mirroring the interpreter's unsized AllX(w) return
		return constPlan(vnum.AllX(w), w, sg)
	case *vlog.Index:
		if id, ok := n.X.(*vlog.Ident); ok {
			if m, ok := in.Mems[id.Name]; ok {
				return &Plan{Op: PlanMemRead, Width: w, Signed: sg, Scope: in, Mem: m,
					X: CompileExpr(n.I, in, 0)}
			}
		}
		p := &Plan{Op: PlanBitSel, Width: w, Signed: sg, Scope: in,
			X: CompileExpr(n.X, in, 0), Y: CompileExpr(n.I, in, 0)}
		if id, ok := n.X.(*vlog.Ident); ok {
			if s, ok := in.Signals[id.Name]; ok {
				p.Sig = s
			}
		}
		return p
	case *vlog.RangeSel:
		msb, lsb, ok := PartSelBounds(n, in)
		if !ok {
			// non-constant bounds: the interpreter returns AllX(1) without
			// evaluating the base
			return constPlan(sizedConst(vnum.AllX(1), w, sg), w, sg)
		}
		span := msb - lsb
		if span < 0 {
			span = -span
		}
		span++
		p := &Plan{Op: PlanPartSel, Width: w, Signed: sg, Scope: in,
			X: CompileExpr(n.X, in, 0), A: msb, B: lsb, Span: span, OK: true}
		if id, ok := n.X.(*vlog.Ident); ok {
			if s, ok := in.Signals[id.Name]; ok {
				p.Sig = s
				hiOff, ok1 := s.Offset(msb)
				loOff, ok2 := s.Offset(lsb)
				if ok1 && ok2 {
					p.A, p.B = hiOff, loOff
				} else {
					p.OK = false // base still evaluated, result all-x
				}
			}
		}
		return p
	case *vlog.Unary:
		switch n.Op {
		case "+", "-", "~":
			return &Plan{Op: PlanUnary, Width: w, Signed: sg, Text: n.Op,
				X: CompileExprSized(n.X, in, w, sg)}
		default: // reductions, !
			return &Plan{Op: PlanReduce, Width: w, Signed: sg, Text: n.Op,
				X: CompileExpr(n.X, in, 0)}
		}
	case *vlog.Binary:
		switch n.Op {
		case "+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~":
			return &Plan{Op: PlanBinary, Width: w, Signed: sg, Text: n.Op,
				X: CompileExprSized(n.X, in, w, sg),
				Y: CompileExprSized(n.Y, in, w, sg)}
		case "<<", "<<<", ">>", ">>>":
			return &Plan{Op: PlanShift, Width: w, Signed: sg, Text: n.Op,
				X: CompileExprSized(n.X, in, w, sg),
				Y: CompileExpr(n.Y, in, 0)}
		case "**":
			return &Plan{Op: PlanPow, Width: w, Signed: sg, Text: n.Op,
				X: CompileExprSized(n.X, in, w, sg),
				Y: CompileExpr(n.Y, in, 0)}
		case "&&", "||":
			return &Plan{Op: PlanLogical, Width: w, Signed: sg, Text: n.Op,
				X: CompileExpr(n.X, in, 0),
				Y: CompileExpr(n.Y, in, 0)}
		default: // relational and equality: operands sized to their max
			ow := SelfWidth(n.X, in)
			if yw := SelfWidth(n.Y, in); yw > ow {
				ow = yw
			}
			osg := SelfSigned(n.X, in) && SelfSigned(n.Y, in)
			return &Plan{Op: PlanCompare, Width: w, Signed: sg, Text: n.Op,
				CmpW: ow, CmpSg: osg,
				X: CompileExprSized(n.X, in, ow, osg),
				Y: CompileExprSized(n.Y, in, ow, osg)}
		}
	case *vlog.Ternary:
		return &Plan{Op: PlanTernary, Width: w, Signed: sg,
			X: CompileExpr(n.Cond, in, 0),
			Y: CompileExprSized(n.Then, in, w, sg),
			Z: CompileExprSized(n.Else, in, w, sg)}
	case *vlog.Concat:
		parts := make([]*Plan, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = CompileExpr(p, in, 0)
		}
		return &Plan{Op: PlanConcat, Width: w, Signed: sg, Parts: parts}
	case *vlog.Repl:
		cnt := 0 // unresolvable counts replicate zero times, like the interpreter
		if v, err := ConstEval(n.Count, in); err == nil {
			if u, ok := v.Uint64(); ok {
				cnt = int(u)
			}
		}
		return &Plan{Op: PlanRepl, Width: w, Signed: sg, A: cnt,
			X: CompileExpr(n.X, in, 0)}
	case *vlog.SysCallExpr:
		p := &Plan{Op: PlanSysFunc, Width: w, Signed: sg, Text: n.Name}
		switch n.Name {
		case "$time", "$stime", "$random", "$urandom":
			return p
		case "$signed", "$unsigned", "$clog2":
			if len(n.Args) == 1 {
				p.X = CompileExpr(n.Args[0], in, 0)
				return p
			}
		}
		// unknown function or malformed arity: all-x, sized
		return constPlan(sizedConst(vnum.AllX(32), w, sg), w, sg)
	default:
		// unsupported expression form: raw all-x, mirroring the interpreter
		return constPlan(vnum.AllX(w), w, sg)
	}
}
