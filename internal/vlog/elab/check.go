package elab

import (
	"repro/internal/vlog"
	"repro/internal/vnum"
)

// knownSysTasks are the system tasks accepted in statement position.
var knownSysTasks = map[string]bool{
	"$display": true, "$write": true, "$strobe": true, "$monitor": true,
	"$finish": true, "$stop": true, "$dumpfile": true, "$dumpvars": true,
	"$time": true, "$random": true, "$readmemh": true, "$readmemb": true,
	"$error": true, "$fatal": true,
}

// knownSysFuncs are the system functions accepted in expression position.
var knownSysFuncs = map[string]bool{
	"$time": true, "$stime": true, "$random": true, "$urandom": true,
	"$signed": true, "$unsigned": true, "$clog2": true,
}

// ConstEval evaluates a constant expression (literals, parameters of inst,
// and operators over them). The simulator uses it for part-select bounds
// and replication counts.
func ConstEval(x vlog.Expr, inst *Inst) (vnum.Value, error) {
	return (&elaborator{}).constEval(x, inst)
}

// ApplyUnary applies a unary operator to a value (shared operator table).
func ApplyUnary(op string, v vnum.Value) vnum.Value { return applyUnaryConst(op, v) }

// ApplyBinary applies a binary operator to two values (shared operator
// table; operands must already be extended to a common width).
func ApplyBinary(op string, a, b vnum.Value) vnum.Value { return applyBinaryConst(op, a, b) }

// constEval evaluates a constant expression (literals, parameters and
// operators over them). It is used for parameter values and ranges.
func (e *elaborator) constEval(x vlog.Expr, inst *Inst) (vnum.Value, error) {
	switch n := x.(type) {
	case *vlog.Number:
		return n.Value, nil
	case *vlog.Ident:
		if v, ok := inst.Params[n.Name]; ok {
			return v, nil
		}
		return vnum.Value{}, errf(n.Pos, "%q is not a constant (parameters only in constant context)", n.Name)
	case *vlog.Unary:
		v, err := e.constEval(n.X, inst)
		if err != nil {
			return vnum.Value{}, err
		}
		return applyUnaryConst(n.Op, v), nil
	case *vlog.Binary:
		a, err := e.constEval(n.X, inst)
		if err != nil {
			return vnum.Value{}, err
		}
		b, err := e.constEval(n.Y, inst)
		if err != nil {
			return vnum.Value{}, err
		}
		return applyBinaryConst(n.Op, a, b), nil
	case *vlog.Ternary:
		c, err := e.constEval(n.Cond, inst)
		if err != nil {
			return vnum.Value{}, err
		}
		if c.IsTrue() {
			return e.constEval(n.Then, inst)
		}
		return e.constEval(n.Else, inst)
	case *vlog.Concat:
		parts := make([]vnum.Value, 0, len(n.Parts))
		for _, p := range n.Parts {
			v, err := e.constEval(p, inst)
			if err != nil {
				return vnum.Value{}, err
			}
			parts = append(parts, v)
		}
		return vnum.Concat(parts...), nil
	case *vlog.Repl:
		c, err := e.constEval(n.Count, inst)
		if err != nil {
			return vnum.Value{}, err
		}
		v, err := e.constEval(n.X, inst)
		if err != nil {
			return vnum.Value{}, err
		}
		cnt, ok := c.Uint64()
		if !ok || cnt > 1<<12 {
			return vnum.Value{}, errf(n.Pos, "bad replication count")
		}
		return vnum.Replicate(int(cnt), v), nil
	default:
		return vnum.Value{}, errf(x.(vlog.Node).NodePos(), "expression is not constant")
	}
}

func applyUnaryConst(op string, v vnum.Value) vnum.Value {
	switch op {
	case "+":
		return v
	case "-":
		return vnum.Neg(v)
	case "!":
		return vnum.LogNot(v)
	case "~":
		return vnum.Not(v)
	case "&":
		return vnum.RedAnd(v)
	case "|":
		return vnum.RedOr(v)
	case "^":
		return vnum.RedXor(v)
	case "~&":
		return vnum.RedNand(v)
	case "~|":
		return vnum.RedNor(v)
	default: // ~^ ^~
		return vnum.RedXnor(v)
	}
}

func applyBinaryConst(op string, a, b vnum.Value) vnum.Value {
	switch op {
	case "+":
		return vnum.Add(a, b)
	case "-":
		return vnum.Sub(a, b)
	case "*":
		return vnum.Mul(a, b)
	case "/":
		return vnum.Div(a, b)
	case "%":
		return vnum.Mod(a, b)
	case "**":
		return vnum.Pow(a, b)
	case "&":
		return vnum.And(a, b)
	case "|":
		return vnum.Or(a, b)
	case "^":
		return vnum.Xor(a, b)
	case "~^", "^~":
		return vnum.Xnor(a, b)
	case "==":
		return vnum.Eq(a, b)
	case "!=":
		return vnum.Neq(a, b)
	case "===":
		return vnum.CaseEq(a, b)
	case "!==":
		return vnum.CaseNeq(a, b)
	case "<":
		return vnum.Lt(a, b)
	case "<=":
		return vnum.Le(a, b)
	case ">":
		return vnum.Gt(a, b)
	case ">=":
		return vnum.Ge(a, b)
	case "&&":
		return vnum.LogAnd(a, b)
	case "||":
		return vnum.LogOr(a, b)
	case "<<", "<<<":
		return vnum.Shl(a, b)
	case ">>":
		return vnum.Shr(a, b)
	case ">>>":
		return vnum.Sshr(a, b)
	default:
		return vnum.AllX(1)
	}
}

// checkExpr validates every identifier reference and system function in an
// expression against the instance scope.
func (e *elaborator) checkExpr(x vlog.Expr, inst *Inst) error {
	switch n := x.(type) {
	case nil:
		return nil
	case *vlog.Number, *vlog.Str:
		return nil
	case *vlog.Ident:
		if _, ok := inst.Signals[n.Name]; ok {
			return nil
		}
		if _, ok := inst.Params[n.Name]; ok {
			return nil
		}
		if _, ok := inst.Mems[n.Name]; ok {
			return errf(n.Pos, "memory %q used without an index", n.Name)
		}
		return errf(n.Pos, "undeclared identifier %q", n.Name)
	case *vlog.Unary:
		return e.checkExpr(n.X, inst)
	case *vlog.Binary:
		if err := e.checkExpr(n.X, inst); err != nil {
			return err
		}
		return e.checkExpr(n.Y, inst)
	case *vlog.Ternary:
		if err := e.checkExpr(n.Cond, inst); err != nil {
			return err
		}
		if err := e.checkExpr(n.Then, inst); err != nil {
			return err
		}
		return e.checkExpr(n.Else, inst)
	case *vlog.Concat:
		for _, p := range n.Parts {
			if err := e.checkExpr(p, inst); err != nil {
				return err
			}
		}
		return nil
	case *vlog.Repl:
		if _, err := e.constEval(n.Count, inst); err != nil {
			return err
		}
		return e.checkExpr(n.X, inst)
	case *vlog.Index:
		if id, ok := n.X.(*vlog.Ident); ok {
			if _, isMem := inst.Mems[id.Name]; isMem {
				return e.checkExpr(n.I, inst)
			}
		}
		if err := e.checkExpr(n.X, inst); err != nil {
			return err
		}
		return e.checkExpr(n.I, inst)
	case *vlog.RangeSel:
		if err := e.checkExpr(n.X, inst); err != nil {
			return err
		}
		// part-select bounds must be constant
		if _, err := e.constEval(n.MSB, inst); err != nil {
			return err
		}
		if _, err := e.constEval(n.LSB, inst); err != nil {
			return err
		}
		return nil
	case *vlog.SysCallExpr:
		if !knownSysFuncs[n.Name] {
			return errf(n.Pos, "unknown system function %q", n.Name)
		}
		for _, a := range n.Args {
			if err := e.checkExpr(a, inst); err != nil {
				return err
			}
		}
		return nil
	default:
		return errf(x.(vlog.Node).NodePos(), "unsupported expression")
	}
}

// checkLValue validates an assignment target. wantReg selects procedural
// targets (must be variables) vs continuous targets (must be nets).
func (e *elaborator) checkLValue(x vlog.Expr, inst *Inst, wantReg bool) error {
	switch n := x.(type) {
	case *vlog.Ident:
		s, ok := inst.Signals[n.Name]
		if !ok {
			if _, isMem := inst.Mems[n.Name]; isMem {
				return errf(n.Pos, "memory %q must be assigned one word at a time", n.Name)
			}
			return errf(n.Pos, "undeclared identifier %q", n.Name)
		}
		if wantReg && !s.IsReg {
			return errf(n.Pos, "%q is not a reg; procedural assignment requires a variable", n.Name)
		}
		if !wantReg && s.IsReg {
			return errf(n.Pos, "%q is a reg; continuous assignment requires a net", n.Name)
		}
		if s.Dir == vlog.DirInput {
			return errf(n.Pos, "cannot assign to input port %q", n.Name)
		}
		return nil
	case *vlog.Index:
		id, ok := n.X.(*vlog.Ident)
		if !ok {
			return errf(n.Pos, "unsupported lvalue")
		}
		if _, isMem := inst.Mems[id.Name]; isMem {
			if !wantReg {
				return errf(n.Pos, "memory %q cannot be a continuous assignment target", id.Name)
			}
			return e.checkExpr(n.I, inst)
		}
		if err := e.checkLValue(id, inst, wantReg); err != nil {
			return err
		}
		return e.checkExpr(n.I, inst)
	case *vlog.RangeSel:
		id, ok := n.X.(*vlog.Ident)
		if !ok {
			return errf(n.Pos, "unsupported lvalue")
		}
		if err := e.checkLValue(id, inst, wantReg); err != nil {
			return err
		}
		if _, err := e.constEval(n.MSB, inst); err != nil {
			return err
		}
		if _, err := e.constEval(n.LSB, inst); err != nil {
			return err
		}
		return nil
	case *vlog.Concat:
		for _, p := range n.Parts {
			if err := e.checkLValue(p, inst, wantReg); err != nil {
				return err
			}
		}
		return nil
	default:
		return errf(x.(vlog.Node).NodePos(), "invalid assignment target")
	}
}

func (e *elaborator) checkContAssign(a *vlog.Assign, inst *Inst) error {
	if err := e.checkLValue(a.LHS, inst, false); err != nil {
		return err
	}
	return e.checkExpr(a.RHS, inst)
}

// checkStmt validates a behavioural statement tree.
func (e *elaborator) checkStmt(s vlog.Stmt, inst *Inst, procedural bool) error {
	switch n := s.(type) {
	case nil, *vlog.Null:
		return nil
	case *vlog.Block:
		for _, st := range n.Stmts {
			if err := e.checkStmt(st, inst, procedural); err != nil {
				return err
			}
		}
		return nil
	case *vlog.Assign:
		if err := e.checkLValue(n.LHS, inst, true); err != nil {
			return err
		}
		return e.checkExpr(n.RHS, inst)
	case *vlog.If:
		if err := e.checkExpr(n.Cond, inst); err != nil {
			return err
		}
		if err := e.checkStmt(n.Then, inst, procedural); err != nil {
			return err
		}
		return e.checkStmt(n.Else, inst, procedural)
	case *vlog.Case:
		if err := e.checkExpr(n.Expr, inst); err != nil {
			return err
		}
		defaults := 0
		for _, item := range n.Items {
			if item.Exprs == nil {
				defaults++
				if defaults > 1 {
					return errf(item.Pos, "multiple default arms in case")
				}
			}
			for _, x := range item.Exprs {
				if err := e.checkExpr(x, inst); err != nil {
					return err
				}
			}
			if err := e.checkStmt(item.Body, inst, procedural); err != nil {
				return err
			}
		}
		return nil
	case *vlog.For:
		if err := e.checkStmt(n.Init, inst, procedural); err != nil {
			return err
		}
		if err := e.checkExpr(n.Cond, inst); err != nil {
			return err
		}
		if err := e.checkStmt(n.Step, inst, procedural); err != nil {
			return err
		}
		return e.checkStmt(n.Body, inst, procedural)
	case *vlog.While:
		if err := e.checkExpr(n.Cond, inst); err != nil {
			return err
		}
		return e.checkStmt(n.Body, inst, procedural)
	case *vlog.Repeat:
		if err := e.checkExpr(n.Count, inst); err != nil {
			return err
		}
		return e.checkStmt(n.Body, inst, procedural)
	case *vlog.Forever:
		return e.checkStmt(n.Body, inst, procedural)
	case *vlog.Delay:
		if err := e.checkExpr(n.Amount, inst); err != nil {
			return err
		}
		return e.checkStmt(n.Stmt, inst, procedural)
	case *vlog.EventCtrl:
		for _, ev := range n.Events {
			if err := e.checkExpr(ev.X, inst); err != nil {
				return err
			}
		}
		return e.checkStmt(n.Stmt, inst, procedural)
	case *vlog.Wait:
		if err := e.checkExpr(n.Cond, inst); err != nil {
			return err
		}
		return e.checkStmt(n.Stmt, inst, procedural)
	case *vlog.SysCall:
		if !knownSysTasks[n.Name] {
			return errf(n.Pos, "unknown system task %q", n.Name)
		}
		for _, a := range n.Args {
			if err := e.checkExpr(a, inst); err != nil {
				return err
			}
		}
		return nil
	default:
		return errf(s.(vlog.Node).NodePos(), "unsupported statement")
	}
}
