package elab

import (
	"strings"
	"testing"

	"repro/internal/vlog"
)

func elaborate(t *testing.T, src, top string) *Design {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Elaborate(f, top, Options{})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

func elabErr(t *testing.T, src, top string) error {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Elaborate(f, top, Options{})
	if err == nil {
		t.Fatalf("expected elaboration error for:\n%s", src)
	}
	return err
}

func TestElabSignals(t *testing.T) {
	d := elaborate(t, `module m(input clk, output reg [3:0] q);
  wire [7:0] w;
  reg signed [7:0] s;
  integer i;
endmodule`, "m")
	top := d.Top
	q := top.Signals["q"]
	if q.Width != 4 || !q.IsReg || q.Dir != vlog.DirOutput {
		t.Fatalf("q = %+v", q)
	}
	if s := top.Signals["s"]; !s.Signed || s.Width != 8 {
		t.Fatalf("s = %+v", s)
	}
	if i := top.Signals["i"]; !i.Signed || i.Width != 32 || !i.IsReg {
		t.Fatalf("i = %+v", i)
	}
	if clk := top.Signals["clk"]; clk.Dir != vlog.DirInput || clk.Width != 1 {
		t.Fatalf("clk = %+v", clk)
	}
}

func TestElabNonANSIMerge(t *testing.T) {
	d := elaborate(t, `module m(a, q);
  input a;
  output [1:0] q;
  reg [1:0] q;
endmodule`, "m")
	q := d.Top.Signals["q"]
	if !q.IsReg || q.Width != 2 || q.Dir != vlog.DirOutput {
		t.Fatalf("merged q = %+v", q)
	}
}

func TestElabParams(t *testing.T) {
	d := elaborate(t, `module m;
  parameter W = 8, D = W * 2;
  wire [W-1:0] bus;
  reg [7:0] mem [D-1:0];
endmodule`, "m")
	if v, _ := d.Top.Params["D"].Uint64(); v != 16 {
		t.Fatalf("D = %d", v)
	}
	if d.Top.Signals["bus"].Width != 8 {
		t.Fatalf("bus width = %d", d.Top.Signals["bus"].Width)
	}
	if d.Top.Mems["mem"].Depth != 16 {
		t.Fatalf("mem depth = %d", d.Top.Mems["mem"].Depth)
	}
}

func TestElabHierarchy(t *testing.T) {
	src := `module child(input [3:0] a, output [3:0] y);
  assign y = a + 1;
endmodule
module top;
  reg [3:0] x;
  wire [3:0] y;
  child c0 (.a(x), .y(y));
endmodule`
	d := elaborate(t, src, "top")
	if len(d.Top.Children) != 1 {
		t.Fatalf("children = %d", len(d.Top.Children))
	}
	if d.Top.Children[0].Path != "top.c0" {
		t.Fatalf("path = %s", d.Top.Children[0].Path)
	}
	// 1 explicit CA + 2 port connection CAs
	if len(d.Assigns) != 3 {
		t.Fatalf("assigns = %d", len(d.Assigns))
	}
}

func TestElabParamOverride(t *testing.T) {
	src := `module child #(parameter W = 4)(input [W-1:0] a);
endmodule
module top;
  wire [7:0] b;
  child #(.W(8)) c0 (.a(b));
endmodule`
	d := elaborate(t, src, "top")
	c := d.Top.Children[0]
	if w, _ := c.Params["W"].Uint64(); w != 8 {
		t.Fatalf("W = %d", w)
	}
	if c.Signals["a"].Width != 8 {
		t.Fatalf("a width = %d", c.Signals["a"].Width)
	}
}

func TestElabPositionalConnsAndParams(t *testing.T) {
	src := `module child #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);
  assign y = a;
endmodule
module top;
  wire [5:0] p, q;
  child #(6) c0 (p, q);
endmodule`
	d := elaborate(t, src, "top")
	if w, _ := d.Top.Children[0].Params["W"].Uint64(); w != 6 {
		t.Fatalf("W = %d", w)
	}
}

func TestElabErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", `module m; assign w = 1; endmodule`, "undeclared"},
		{"undeclared rhs", `module m; wire w; assign w = foo; endmodule`, "undeclared"},
		{"assign to reg", `module m; reg r; assign r = 1; endmodule`, "continuous assignment requires a net"},
		{"proc assign to wire", `module m; wire w; always @(*) w = 1; endmodule`, "procedural assignment requires a variable"},
		{"assign to input", `module m(input a); assign a = 1; endmodule`, "input port"},
		{"dup decl", `module m; wire x; wire x; endmodule`, "duplicate"},
		{"port no decl", `module m(a); endmodule`, "no declaration"},
		{"unknown module", `module m; foo f0 (); endmodule`, "unknown module"},
		{"unknown port", `module c(input a); endmodule
module m; wire w; c c0 (.b(w)); endmodule`, "no port"},
		{"too many conns", `module c(input a); endmodule
module m; wire w; c c0 (w, w); endmodule`, "too many port connections"},
		{"port twice", `module c(input a); endmodule
module m; wire w; c c0 (.a(w), .a(w)); endmodule`, "connected twice"},
		{"unknown systask", `module m; initial $bogus; endmodule`, "unknown system task"},
		{"unknown param", `module c(input a); endmodule
module m; wire w; c #(.W(1)) c0 (.a(w)); endmodule`, "no parameter"},
		{"mem no index", `module m; reg [7:0] mem [3:0]; wire w; assign w = mem; endmodule`, "without an index"},
		{"input reg", `module m(input reg a); endmodule`, "cannot be a reg"},
		{"recursion", `module m; m inner (); endmodule`, "recursive"},
		{"nonconst range", `module m; wire w; wire [w:0] v; endmodule`, "not a constant"},
		{"case two defaults", `module m; reg r; always @(*) case (r) default: r = 0; default: r = 1; endcase endmodule`, "multiple default"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := elabErr(t, c.src, "m")
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestElabWireInitBecomesAssign(t *testing.T) {
	d := elaborate(t, `module m(input a); wire w = ~a; endmodule`, "m")
	if len(d.Assigns) != 1 {
		t.Fatalf("assigns = %d", len(d.Assigns))
	}
}

func TestCompileCheck(t *testing.T) {
	f, err := vlog.Parse(`module ok(input a, output y); assign y = ~a; endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompileCheck(f); err != nil {
		t.Fatalf("compile check failed: %v", err)
	}
	f2, _ := vlog.Parse(`module bad(input a, output y); assign y = ~b; endmodule`)
	if err := CompileCheck(f2); err == nil {
		t.Fatal("compile check should fail")
	}
}

func TestSignalOffset(t *testing.T) {
	s := &Signal{Width: 8, MSB: 7, LSB: 0}
	if off, ok := s.Offset(3); !ok || off != 3 {
		t.Fatalf("descending offset = %d,%v", off, ok)
	}
	if _, ok := s.Offset(8); ok {
		t.Fatal("out of range accepted")
	}
	asc := &Signal{Width: 8, MSB: 0, LSB: 7}
	if off, ok := asc.Offset(0); !ok || off != 7 {
		t.Fatalf("ascending offset = %d,%v", off, ok)
	}
}

func TestMemWordIndex(t *testing.T) {
	m := &Mem{Depth: 4, AddrLo: 2}
	if idx, ok := m.WordIndex(3); !ok || idx != 1 {
		t.Fatalf("idx = %d,%v", idx, ok)
	}
	if _, ok := m.WordIndex(6); ok {
		t.Fatal("oob address accepted")
	}
	if _, ok := m.WordIndex(1); ok {
		t.Fatal("low oob address accepted")
	}
}

func TestElabFSMProblem(t *testing.T) {
	// the paper's Problem 15 reference shape elaborates cleanly
	src := `module adv_fsm(input clk, input reset, input x, output z);
  reg [1:0] present_state, next_state;
  parameter IDLE=0, S1=1, S10=2, S101=3;
  always @(posedge clk or posedge reset) begin
    if (reset) present_state <= IDLE;
    else present_state <= next_state;
  end
  always @(present_state or x) begin
    case (present_state)
      IDLE: next_state = x ? S1 : IDLE;
      S1: next_state = x ? IDLE : S10;
      S10: next_state = x ? S101 : IDLE;
      S101: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
  assign z = present_state == S101;
endmodule`
	d := elaborate(t, src, "adv_fsm")
	if len(d.Procs) != 2 || len(d.Assigns) != 1 {
		t.Fatalf("procs=%d assigns=%d", len(d.Procs), len(d.Assigns))
	}
}
