package elab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/vlog"
)

// fingerprint renders a Design into a canonical string for structural
// comparison. Instances are walked in ChildrenOf order; stream entries
// (Assigns/Procs/RegInits) are rendered by scope path plus the printed
// source of their AST nodes (elaboration synthesizes fresh ident nodes
// for port connections, so node identity cannot be compared — printed
// form and order can).
func fingerprint(d *Design) string {
	var b strings.Builder
	var walk func(in *Inst)
	walk = func(in *Inst) {
		fmt.Fprintf(&b, "inst %s mod=%s\n", in.Path, in.Mod.Name)
		var params []string
		for name := range in.Params {
			params = append(params, name)
		}
		sort.Strings(params)
		for _, name := range params {
			fmt.Fprintf(&b, "  param %s=%v\n", name, in.Params[name])
		}
		var sigs []string
		for name := range in.Signals {
			sigs = append(sigs, name)
		}
		sort.Strings(sigs)
		for _, name := range sigs {
			s := in.Signals[name]
			fmt.Fprintf(&b, "  sig %s w=%d msb=%d lsb=%d signed=%t reg=%t dir=%v\n",
				s.Name, s.Width, s.MSB, s.LSB, s.Signed, s.IsReg, s.Dir)
		}
		var mems []string
		for name := range in.Mems {
			mems = append(mems, name)
		}
		sort.Strings(mems)
		for _, name := range mems {
			m := in.Mems[name]
			fmt.Fprintf(&b, "  mem %s w=%d depth=%d lo=%d\n", m.Name, m.Width, m.Depth, m.AddrLo)
		}
		for _, c := range d.ChildrenOf(in) {
			walk(c)
		}
	}
	walk(d.Top)
	for _, a := range d.Assigns {
		fmt.Fprintf(&b, "assign %s=%s l=%s r=%s\n",
			vlog.PrintExpr(a.LHS), vlog.PrintExpr(a.RHS), a.LScope.Path, a.RScope.Path)
	}
	for _, p := range d.Procs {
		fmt.Fprintf(&b, "proc k=%d scope=%s body=%s\n", p.Kind, p.Scope.Path, vlog.PrintStmt(p.Body))
	}
	for _, r := range d.RegInits {
		fmt.Fprintf(&b, "reginit %s.%s=%s\n", r.Scope.Path, r.Name, vlog.PrintExpr(r.Value))
	}
	return b.String()
}

// skelTB is a testbench exercising every splice position that matters:
// stream entries before, between, and after two hole instantiations at
// the top level, plus a hole buried inside a non-hole helper module.
const skelTB = `module helper(input a, output y);
  wire t;
  assign t = a;
  hole2 h2(.a(t), .y(y));
endmodule
module tb;
  reg clk = 0;
  reg a = 1;
  wire y1, y2, hy, inv;
  assign inv = ~a;
  hole u1(.a(a), .y(y1));
  always #5 clk = ~clk;
  helper h(.a(a), .y(hy));
  hole u2(.a(clk), .y(y2));
  initial begin
    #12 $display("y1=%b y2=%b hy=%b inv=%b", y1, y2, hy, inv);
    $finish;
  end
endmodule
`

// skelCands are candidate files of varying internal structure: a flat
// assign, a candidate with its own hierarchy, and one contributing procs
// and reg initializers of its own.
var skelCands = []string{
	`module hole(input a, output y);
  assign y = ~a;
endmodule
module hole2(input a, output y);
  assign y = a;
endmodule
`,
	`module hole(input a, output y);
  inner i(.a(a), .y(y));
endmodule
module inner(input a, output y);
  assign y = a;
endmodule
module hole2(input a, output y);
  inner j(.a(a), .y(y));
endmodule
`,
	`module hole(input a, output y);
  reg r = 0;
  always @(a) r = ~a;
  assign y = r;
endmodule
module hole2(input a, output y);
  reg s = 1;
  always @(a) s = a;
  assign y = s;
endmodule
`,
}

func parseFile(t *testing.T, src string) *vlog.SourceFile {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func newSkel(t *testing.T, tb *vlog.SourceFile) *Skeleton {
	t.Helper()
	sk, err := NewSkeleton(tb, "tb", HoleModules(tb), Options{})
	if err != nil {
		t.Fatalf("NewSkeleton: %v", err)
	}
	return sk
}

// TestSpliceMatchesFullElaboration is the structural-identity contract:
// for every candidate, Splice must produce the same instance tree, the
// same signals, and the same stream order over the same AST nodes as
// Elaborate(Compose(cand, tb)).
func TestSpliceMatchesFullElaboration(t *testing.T) {
	tb := parseFile(t, skelTB)
	sk := newSkel(t, tb)
	if sk.Holes() != 3 {
		t.Fatalf("skeleton deferred %d holes, want 3 (u1, u2, helper.h2)", sk.Holes())
	}
	for i, src := range skelCands {
		cand := parseFile(t, src)
		spliced, err := sk.Splice(cand)
		if err != nil {
			t.Fatalf("cand %d: splice: %v", i, err)
		}
		full, err := Elaborate(vlog.Compose(cand, tb), "tb", Options{})
		if err != nil {
			t.Fatalf("cand %d: full elaborate: %v", i, err)
		}
		if got, want := fingerprint(spliced), fingerprint(full); got != want {
			t.Errorf("cand %d: spliced design diverges from full elaboration:\nspliced:\n%s\nfull:\n%s", i, got, want)
		}
	}
}

// TestSpliceRepeatable: splicing the same candidate twice yields the same
// structure, and a failed splice in between leaves the skeleton intact.
func TestSpliceRepeatable(t *testing.T) {
	tb := parseFile(t, skelTB)
	sk := newSkel(t, tb)
	cand := parseFile(t, skelCands[0])
	d1, err := sk.Splice(cand)
	if err != nil {
		t.Fatal(err)
	}
	// A candidate whose hole module lacks the connected port must fail the
	// splice exactly like it fails full elaboration...
	bad := parseFile(t, "module hole(input b, output y);\n  assign y = b;\nendmodule\nmodule hole2(input a, output y);\n  assign y = a;\nendmodule\n")
	if _, err := sk.Splice(bad); err == nil {
		t.Error("splice of port-mismatched candidate succeeded")
	}
	if _, err := Elaborate(vlog.Compose(bad, tb), "tb", Options{}); err == nil {
		t.Error("full elaboration of port-mismatched candidate succeeded")
	}
	// ...and must not poison later splices.
	d2, err := sk.Splice(cand)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(d1) != fingerprint(d2) {
		t.Error("re-splice of the same candidate produced a different design")
	}
}

// TestSpliceShadowFallsBack: a candidate redefining a module the skeleton
// already bound must be rejected — full elaboration would have resolved
// the name to the candidate's definition, so the skeleton's binding is
// stale and only a full re-elaboration is correct.
func TestSpliceShadowFallsBack(t *testing.T) {
	tb := parseFile(t, skelTB)
	sk := newSkel(t, tb)
	shadow := parseFile(t, `module helper(input a, output y);
  assign y = a;
endmodule
module hole(input a, output y);
  assign y = a;
endmodule
module hole2(input a, output y);
  assign y = a;
endmodule
`)
	if _, err := sk.Splice(shadow); err == nil {
		t.Fatal("splice accepted a candidate shadowing a testbench module")
	}
}

// TestSpliceSharedInstsNotMutated pins the sharing invariant that makes
// concurrent splices safe: the skeleton's Inst objects never grow spliced
// children; the merged order is only visible through Design.ChildrenOf.
func TestSpliceSharedInstsNotMutated(t *testing.T) {
	tb := parseFile(t, skelTB)
	sk := newSkel(t, tb)
	topKidsBefore := len(sk.d.Top.Children)
	d, err := sk.Splice(parseFile(t, skelCands[0]))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Top.Children); got != topKidsBefore {
		t.Errorf("splice mutated the shared top Inst: %d children, had %d", got, topKidsBefore)
	}
	merged := d.ChildrenOf(d.Top)
	if len(merged) != topKidsBefore+2 {
		t.Fatalf("ChildrenOf(top) = %d kids, want %d skeleton + 2 spliced", len(merged), topKidsBefore)
	}
	var paths []string
	for _, c := range merged {
		paths = append(paths, c.Path)
	}
	want := []string{"tb.u1", "tb.h", "tb.u2"}
	if fmt.Sprint(paths) != fmt.Sprint(want) {
		t.Errorf("merged child order = %v, want %v", paths, want)
	}
}

// TestSpliceConcurrent splices distinct candidates against one skeleton
// from many goroutines; run under -race this pins the Skeleton's
// immutability contract.
func TestSpliceConcurrent(t *testing.T) {
	tb := parseFile(t, skelTB)
	sk := newSkel(t, tb)
	want := make([]string, len(skelCands))
	cands := make([]*vlog.SourceFile, len(skelCands))
	for i, src := range skelCands {
		cands[i] = parseFile(t, src)
		full, err := Elaborate(vlog.Compose(cands[i], tb), "tb", Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(full)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		for i := range cands {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				d, err := sk.Splice(cands[i])
				if err != nil {
					t.Errorf("cand %d: %v", i, err)
					return
				}
				if fingerprint(d) != want[i] {
					t.Errorf("cand %d: concurrent splice diverged from full elaboration", i)
				}
			}(i)
		}
	}
	wg.Wait()
}

// TestHoleModules pins hole discovery: instantiated-but-undefined modules
// in first-reference order, deduplicated, with defined modules excluded.
func TestHoleModules(t *testing.T) {
	f := parseFile(t, `module a;
  missing1 m1();
  defined d1();
  missing2 m2();
  missing1 m3();
endmodule
module defined;
endmodule
module b;
  missing3 m4();
  missing2 m5();
endmodule
`)
	got := HoleModules(f)
	want := []string{"missing1", "missing2", "missing3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("HoleModules = %v, want %v", got, want)
	}
	if holes := HoleModules(parseFile(t, "module all;\nendmodule\n")); len(holes) != 0 {
		t.Errorf("self-contained file reported holes %v", holes)
	}
}
