// Package elab elaborates a parsed Verilog source file into a hierarchical
// design: it binds parameters, resolves declarations into signals and
// memories, expands module instantiations into implicit port connections,
// and performs the semantic legality checks that constitute the "compile"
// verdict in the evaluation pipeline (mirroring the checks Icarus Verilog
// applies to the paper's generated completions).
package elab

import (
	"fmt"

	"repro/internal/vlog"
	"repro/internal/vnum"
)

// Error is an elaboration (semantic) error.
type Error struct {
	Pos vlog.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: elaboration error: %s", e.Pos, e.Msg) }

func errf(pos vlog.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Signal is an elaborated scalar or vector net/variable.
type Signal struct {
	Name   string
	Width  int
	MSB    int
	LSB    int
	Signed bool
	IsReg  bool
	Dir    vlog.Direction // DirNone for internal signals
}

// Offset maps a declared bit index to a zero-based storage offset, and
// reports whether the index is inside the declared range.
func (s *Signal) Offset(i int) (int, bool) {
	if s.MSB >= s.LSB {
		if i < s.LSB || i > s.MSB {
			return 0, false
		}
		return i - s.LSB, true
	}
	if i < s.MSB || i > s.LSB {
		return 0, false
	}
	return s.LSB - i, true
}

// Mem is an elaborated memory (array of words).
type Mem struct {
	Name   string
	Width  int // word width
	MSB    int
	LSB    int
	Signed bool
	Depth  int
	AddrLo int // lowest declared address
}

// WordIndex maps a declared address to a storage index.
func (m *Mem) WordIndex(addr int) (int, bool) {
	idx := addr - m.AddrLo
	if idx < 0 || idx >= m.Depth {
		return 0, false
	}
	return idx, true
}

// ProcKind distinguishes always and initial processes.
type ProcKind int

// Process kinds.
const (
	ProcAlways ProcKind = iota
	ProcInitial
)

// Proc is an elaborated behavioural process.
type Proc struct {
	Kind  ProcKind
	Body  vlog.Stmt
	Scope *Inst
}

// CA is an elaborated continuous assignment. For port connections the two
// sides live in different instances, hence separate scopes.
type CA struct {
	LHS    vlog.Expr
	RHS    vlog.Expr
	LScope *Inst
	RScope *Inst
}

// Inst is one elaborated module instance.
type Inst struct {
	Path     string // hierarchical path, e.g. "tb.dut"
	Mod      *vlog.Module
	Params   map[string]vnum.Value
	Signals  map[string]*Signal
	Mems     map[string]*Mem
	Children []*Inst
}

// RegInit is a declaration-time initializer for a variable (reg r = 0;),
// applied once before simulation time 0.
type RegInit struct {
	Scope *Inst
	Name  string
	Value vlog.Expr
}

// Design is a fully elaborated hierarchy rooted at Top. Spliced designs
// (see skeleton.go) additionally carry the splice sites and a merged
// child-order map; both are immutable once Splice returns.
type Design struct {
	Top      *Inst
	Assigns  []*CA
	Procs    []*Proc
	RegInits []*RegInit

	Splices  []SpliceSite
	children map[*Inst][]*Inst
}

// Signal resolves name in this instance's scope.
func (in *Inst) Signal(name string) (*Signal, bool) {
	s, ok := in.Signals[name]
	return s, ok
}

// Options tune elaboration limits.
type Options struct {
	MaxInstances int // hierarchy size guard; 0 means default (4096)
	MaxMemWords  int // per-memory depth guard; 0 means default (1 << 20)
}

func (o Options) maxInstances() int {
	if o.MaxInstances <= 0 {
		return 4096
	}
	return o.MaxInstances
}

func (o Options) maxMemWords() int {
	if o.MaxMemWords <= 0 {
		return 1 << 20
	}
	return o.MaxMemWords
}

type elaborator struct {
	file  *vlog.SourceFile
	opts  Options
	count int
	d     *Design

	// skeleton mode (see skeleton.go); all nil for normal elaboration
	holes    map[string]bool // module names whose instantiation is deferred
	deferred []deferredHole
	bound    map[string]bool // module names resolved via FindModule
}

// Elaborate builds the design rooted at module top.
func Elaborate(file *vlog.SourceFile, top string, opts Options) (*Design, error) {
	m := file.FindModule(top)
	if m == nil {
		return nil, errf(vlog.Pos{Line: 1, Col: 1}, "top module %q not found", top)
	}
	e := &elaborator{file: file, opts: opts, d: &Design{}}
	inst, err := e.instantiate(m, top, nil, nil, map[string]bool{})
	if err != nil {
		return nil, err
	}
	e.d.Top = inst
	return e.d, nil
}

// CompileCheck elaborates every module in the file standalone (each as its
// own top). It reports the first error, or nil when the file "compiles".
func CompileCheck(file *vlog.SourceFile) error {
	for _, m := range file.Modules {
		if _, err := Elaborate(file, m.Name, Options{}); err != nil {
			return err
		}
	}
	return nil
}

// instantiate elaborates module m as an instance named path, with parameter
// overrides already evaluated by the parent.
func (e *elaborator) instantiate(m *vlog.Module, path string, overrides map[string]vnum.Value, parent *Inst, active map[string]bool) (*Inst, error) {
	if active[m.Name] {
		return nil, errf(m.Pos, "recursive instantiation of module %q", m.Name)
	}
	active[m.Name] = true
	defer delete(active, m.Name)

	e.count++
	if e.count > e.opts.maxInstances() {
		return nil, errf(m.Pos, "design exceeds instance limit")
	}

	inst := &Inst{
		Path:    path,
		Mod:     m,
		Params:  map[string]vnum.Value{},
		Signals: map[string]*Signal{},
		Mems:    map[string]*Mem{},
	}

	// Pass 1: parameters (in declaration order; later params may reference
	// earlier ones).
	for _, it := range m.Items {
		pd, ok := it.(*vlog.ParamDecl)
		if !ok {
			continue
		}
		for _, pa := range pd.Params {
			if ov, ok := overrides[pa.Name]; ok && !pd.Local {
				inst.Params[pa.Name] = ov
				continue
			}
			v, err := e.constEval(pa.Value, inst)
			if err != nil {
				return nil, err
			}
			inst.Params[pa.Name] = v
		}
	}
	for name := range overrides {
		if _, ok := inst.Params[name]; !ok {
			return nil, errf(m.Pos, "module %q has no parameter %q", m.Name, name)
		}
	}

	// Pass 2: declarations. Port and net declarations of the same name are
	// merged (non-ANSI "output x; reg x;" style).
	if err := e.collectDecls(m, inst); err != nil {
		return nil, err
	}

	// Every header port name must have a declaration.
	for _, pn := range m.PortNames {
		s, ok := inst.Signals[pn]
		if !ok {
			return nil, errf(m.Pos, "port %q has no declaration in module %q", pn, m.Name)
		}
		if s.Dir == vlog.DirNone {
			return nil, errf(m.Pos, "port %q of module %q lacks a direction", pn, m.Name)
		}
	}

	// Pass 3: behaviour and children.
	for _, it := range m.Items {
		switch n := it.(type) {
		case *vlog.ContAssign:
			for _, a := range n.Assigns {
				if err := e.checkContAssign(a, inst); err != nil {
					return nil, err
				}
				e.d.Assigns = append(e.d.Assigns, &CA{LHS: a.LHS, RHS: a.RHS, LScope: inst, RScope: inst})
			}
		case *vlog.AlwaysBlock:
			if err := e.checkStmt(n.Body, inst, true); err != nil {
				return nil, err
			}
			e.d.Procs = append(e.d.Procs, &Proc{Kind: ProcAlways, Body: n.Body, Scope: inst})
		case *vlog.InitialBlock:
			if err := e.checkStmt(n.Body, inst, true); err != nil {
				return nil, err
			}
			e.d.Procs = append(e.d.Procs, &Proc{Kind: ProcInitial, Body: n.Body, Scope: inst})
		case *vlog.Instance:
			if e.holes[n.Module] {
				e.deferHole(n, inst, active)
				continue
			}
			child, err := e.elabChild(n, inst, active)
			if err != nil {
				return nil, err
			}
			inst.Children = append(inst.Children, child)
		case *vlog.NetDecl:
			// wire w = expr; initializers become continuous assignments,
			// reg r = expr; initializers apply once at time zero
			for _, dn := range n.Names {
				if dn.Init == nil {
					continue
				}
				if err := e.checkExpr(dn.Init, inst); err != nil {
					return nil, err
				}
				if n.Kind == vlog.KindWire {
					lhs := &vlog.Ident{Pos: dn.Pos, Name: dn.Name}
					e.d.Assigns = append(e.d.Assigns, &CA{LHS: lhs, RHS: dn.Init, LScope: inst, RScope: inst})
				} else {
					e.d.RegInits = append(e.d.RegInits, &RegInit{Scope: inst, Name: dn.Name, Value: dn.Init})
				}
			}
		}
	}
	return inst, nil
}

func (e *elaborator) collectDecls(m *vlog.Module, inst *Inst) error {
	for _, it := range m.Items {
		switch n := it.(type) {
		case *vlog.PortDecl:
			for _, dn := range n.Names {
				w, msb, lsb, err := e.rangeOf(n.Range, inst)
				if err != nil {
					return err
				}
				if err := e.mergeSignal(inst, dn.Pos, &Signal{
					Name: dn.Name, Width: w, MSB: msb, LSB: lsb,
					Signed: n.Signed, IsReg: n.IsReg, Dir: n.Dir,
				}, n.Range != nil); err != nil {
					return err
				}
			}
		case *vlog.NetDecl:
			for _, dn := range n.Names {
				if dn.ArrayRange != nil {
					if n.Kind != vlog.KindReg {
						return errf(dn.Pos, "memory %q must be declared reg", dn.Name)
					}
					w, msb, lsb, err := e.rangeOf(n.Range, inst)
					if err != nil {
						return err
					}
					alo, ahi, err := e.rangeBounds(dn.ArrayRange, inst)
					if err != nil {
						return err
					}
					depth := ahi - alo + 1
					if depth > e.opts.maxMemWords() {
						return errf(dn.Pos, "memory %q too large (%d words)", dn.Name, depth)
					}
					if _, dup := inst.Mems[dn.Name]; dup {
						return errf(dn.Pos, "duplicate declaration of %q", dn.Name)
					}
					if _, dup := inst.Signals[dn.Name]; dup {
						return errf(dn.Pos, "duplicate declaration of %q", dn.Name)
					}
					inst.Mems[dn.Name] = &Mem{
						Name: dn.Name, Width: w, MSB: msb, LSB: lsb,
						Signed: n.Signed, Depth: depth, AddrLo: alo,
					}
					continue
				}
				var sig Signal
				switch n.Kind {
				case vlog.KindInteger:
					sig = Signal{Name: dn.Name, Width: 32, MSB: 31, LSB: 0, Signed: true, IsReg: true}
				default:
					w, msb, lsb, err := e.rangeOf(n.Range, inst)
					if err != nil {
						return err
					}
					sig = Signal{
						Name: dn.Name, Width: w, MSB: msb, LSB: lsb,
						Signed: n.Signed, IsReg: n.Kind == vlog.KindReg,
					}
				}
				if err := e.mergeSignal(inst, dn.Pos, &sig, n.Range != nil || n.Kind == vlog.KindInteger); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// mergeSignal inserts a declaration, merging port and net declarations of
// the same name (direction from the port, reg-ness from either).
func (e *elaborator) mergeSignal(inst *Inst, pos vlog.Pos, s *Signal, hasRange bool) error {
	if _, isMem := inst.Mems[s.Name]; isMem {
		return errf(pos, "duplicate declaration of %q", s.Name)
	}
	if s.Dir == vlog.DirInput && s.IsReg {
		return errf(pos, "input port %q cannot be a reg", s.Name)
	}
	old, ok := inst.Signals[s.Name]
	if !ok {
		inst.Signals[s.Name] = s
		return nil
	}
	// merging rules: at most one port decl and one net decl
	if old.Dir != vlog.DirNone && s.Dir != vlog.DirNone {
		return errf(pos, "duplicate port declaration of %q", s.Name)
	}
	if old.Dir == vlog.DirNone && s.Dir == vlog.DirNone {
		return errf(pos, "duplicate declaration of %q", s.Name)
	}
	merged := &Signal{Name: s.Name}
	port, net := old, s
	if s.Dir != vlog.DirNone {
		port, net = s, old
	}
	merged.Dir = port.Dir
	merged.IsReg = port.IsReg || net.IsReg
	merged.Signed = port.Signed || net.Signed
	if port.Width != net.Width && port.Width != 1 && net.Width != 1 {
		return errf(pos, "conflicting widths for %q (%d vs %d)", s.Name, port.Width, net.Width)
	}
	if net.Width != 1 {
		merged.Width, merged.MSB, merged.LSB = net.Width, net.MSB, net.LSB
	} else {
		merged.Width, merged.MSB, merged.LSB = port.Width, port.MSB, port.LSB
	}
	if merged.Dir == vlog.DirInput && merged.IsReg {
		return errf(pos, "input port %q cannot be a reg", s.Name)
	}
	inst.Signals[s.Name] = merged
	return nil
}

func (e *elaborator) rangeOf(r *vlog.RangeSpec, inst *Inst) (width, msb, lsb int, err error) {
	if r == nil {
		return 1, 0, 0, nil
	}
	mv, err := e.constEval(r.MSB, inst)
	if err != nil {
		return 0, 0, 0, err
	}
	lv, err := e.constEval(r.LSB, inst)
	if err != nil {
		return 0, 0, 0, err
	}
	mi, ok1 := mv.Int64()
	li, ok2 := lv.Int64()
	if !ok1 || !ok2 {
		return 0, 0, 0, errf(r.Pos, "range bounds must be constant")
	}
	msb, lsb = int(mi), int(li)
	width = msb - lsb
	if width < 0 {
		width = -width
	}
	width++
	if width > 1<<16 {
		return 0, 0, 0, errf(r.Pos, "vector too wide (%d bits)", width)
	}
	return width, msb, lsb, nil
}

// rangeBounds returns lo/hi of an array range.
func (e *elaborator) rangeBounds(r *vlog.RangeSpec, inst *Inst) (lo, hi int, err error) {
	mv, err := e.constEval(r.MSB, inst)
	if err != nil {
		return 0, 0, err
	}
	lv, err := e.constEval(r.LSB, inst)
	if err != nil {
		return 0, 0, err
	}
	mi, ok1 := mv.Int64()
	li, ok2 := lv.Int64()
	if !ok1 || !ok2 {
		return 0, 0, errf(r.Pos, "array bounds must be constant")
	}
	lo, hi = int(mi), int(li)
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi, nil
}

func (e *elaborator) elabChild(n *vlog.Instance, parent *Inst, active map[string]bool) (*Inst, error) {
	childMod := e.file.FindModule(n.Module)
	if childMod == nil {
		return nil, errf(n.Pos, "unknown module %q", n.Module)
	}
	if e.bound != nil {
		e.bound[n.Module] = true
	}
	// parameter overrides, evaluated in the parent scope
	overrides := map[string]vnum.Value{}
	var paramOrder []string
	for _, it := range childMod.Items {
		if pd, ok := it.(*vlog.ParamDecl); ok && !pd.Local {
			for _, pa := range pd.Params {
				paramOrder = append(paramOrder, pa.Name)
			}
		}
	}
	for i, pc := range n.Params {
		v, err := e.constEval(pc.Expr, parent)
		if err != nil {
			return nil, err
		}
		name := pc.Name
		if name == "" {
			if i >= len(paramOrder) {
				return nil, errf(pc.Pos, "too many parameter overrides for module %q", n.Module)
			}
			name = paramOrder[i]
		}
		overrides[name] = v
	}

	child, err := e.instantiate(childMod, parent.Path+"."+n.Name, overrides, parent, active)
	if err != nil {
		return nil, err
	}

	// port connections
	conns := n.Conns
	named := len(conns) > 0 && conns[0].Name != ""
	for _, c := range conns {
		if (c.Name != "") != named {
			return nil, errf(c.Pos, "cannot mix named and positional connections")
		}
	}
	if !named && len(conns) > len(childMod.PortNames) {
		return nil, errf(n.Pos, "too many port connections for module %q (%d > %d)",
			n.Module, len(conns), len(childMod.PortNames))
	}
	seen := map[string]bool{}
	for i, c := range conns {
		portName := c.Name
		if !named {
			portName = childMod.PortNames[i]
		}
		if seen[portName] {
			return nil, errf(c.Pos, "port %q connected twice", portName)
		}
		seen[portName] = true
		port, ok := child.Signals[portName]
		if !ok || port.Dir == vlog.DirNone {
			return nil, errf(c.Pos, "module %q has no port %q", n.Module, portName)
		}
		if c.Expr == nil {
			continue // explicitly unconnected
		}
		if err := e.checkExpr(c.Expr, parent); err != nil {
			return nil, err
		}
		portRef := &vlog.Ident{Pos: c.Pos, Name: portName}
		switch port.Dir {
		case vlog.DirInput:
			if port.IsReg {
				return nil, errf(c.Pos, "input port %q cannot be a reg", portName)
			}
			e.d.Assigns = append(e.d.Assigns, &CA{LHS: portRef, RHS: c.Expr, LScope: child, RScope: parent})
		case vlog.DirOutput:
			if err := e.checkLValue(c.Expr, parent, false); err != nil {
				return nil, errf(c.Pos, "output port %q must connect to a net lvalue: %v", portName, err)
			}
			e.d.Assigns = append(e.d.Assigns, &CA{LHS: c.Expr, RHS: portRef, LScope: parent, RScope: child})
		default:
			return nil, errf(c.Pos, "inout ports are not supported (port %q)", portName)
		}
	}
	return child, nil
}
