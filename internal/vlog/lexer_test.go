package vlog

import "testing"

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("module foo (input a); endmodule")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"module", "foo", "(", "input", "a", ")", ";", "endmodule"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("tok %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if toks[0].Kind != TokKeyword || toks[1].Kind != TokIdent {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":        "42",
		"4'b1010":   "4'b1010",
		"8'hFF":     "8'hFF",
		"'d15":      "'d15",
		"12'o777":   "12'o777",
		"4'bx":      "4'bx",
		"8'sd255":   "8'sd255",
		"16'h_dead": "16'h_dead",
	}
	for in, want := range cases {
		toks, err := LexAll(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("%q lexed to %v", in, toks)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a // line comment\nb /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestLexDirectiveSkipped(t *testing.T) {
	toks, err := LexAll("`timescale 1ns/1ps\nmodule")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Text != "module" {
		t.Fatalf("got %v", toks)
	}
}

func TestLexString(t *testing.T) {
	toks, err := LexAll(`$display("a\n%d", x);`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokSysName || toks[0].Text != "$display" {
		t.Fatalf("sysname = %v", toks[0])
	}
	if toks[2].Kind != TokString || toks[2].Text != "a\n%d" {
		t.Fatalf("string = %q", toks[2].Text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("a <= b >>> 2 === c !== d ~^ e ** f")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokPunct {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<=", ">>>", "===", "!==", "~^", "**"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"\"unterminated", "/* unterminated", "a $ b"} {
		if _, err := LexAll(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b pos = %v", toks[1].Pos)
	}
}
