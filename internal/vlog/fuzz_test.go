package vlog

import "testing"

// FuzzParse drives the lexer+parser with arbitrary input; any outcome but
// a panic is acceptable. Under plain `go test` the seed corpus runs as a
// regression suite; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"module m; endmodule",
		"module m(input a, output reg [3:0] q); always @(posedge a) q <= q + 1; endmodule",
		"module m; initial $display(\"%d\", 4'bxz01); endmodule",
		"module m; wire w = 1'b1; endmodule",
		"module m(a); input a; reg [7:0] mem [3:0]; endmodule",
		"module \x00; endmodule",
		"module m; always @(*) begin end endmodule",
		"module m; parameter P = {2{4'hA}}; endmodule",
		"4'd15 + 'hFF",
		"// only a comment",
		"`timescale 1ns/1ps",
		"module m; initial #5 $finish; endmodule",
		"module m; c #(.W(8)) i (.a(b), .c());",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src) // must not panic
	})
}
