package vlog

import "testing"

// TestEstimateTokensCoversLexAll guards the pre-count pass against
// drifting from the real lexer: for every token-class-exercising source
// the estimate must be at least the true token count (so LexAll's single
// allocation never falls short) without wildly overshooting. A grammar
// change that lands in Next but not in estimateTokens fails here.
func TestEstimateTokensCoversLexAll(t *testing.T) {
	srcs := []string{
		"module foo (input a, output b); assign b = ~a; endmodule",
		"a // line comment\nb /* block\ncomment */ c",
		"`timescale 1ns/1ps\nmodule m; endmodule",
		`$display("escaped \"text\" and \n more", x);`,
		`$display("plain string");`,
		"a <= b >>> 2 === c !== d ~^ e ** f <<< 3",
		"x = 4'b10xz; y = 'd15; z = 12 'hFF; w = 8'shA5;",
		"if (sel) q[7:0] <= {2{d}}; else q <= q + 1;",
		"",
		"   \t\n  ",
		"wire [WIDTH-1:0] bus; parameter WIDTH = 8;",
	}
	for _, src := range srcs {
		toks, err := LexAll(src)
		if err != nil {
			t.Fatalf("LexAll(%q): %v", src, err)
		}
		est := estimateTokens(src)
		if est < len(toks) {
			t.Errorf("estimate %d < %d real tokens for %q", est, len(toks), src)
		}
		if len(toks) > 0 && est > 3*len(toks) {
			t.Errorf("estimate %d wildly overshoots %d real tokens for %q", est, len(toks), src)
		}
	}
}
