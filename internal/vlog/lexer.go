package vlog

import (
	"fmt"
	"strings"
)

// LexError is a lexical error with a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: lex error: %s", e.Pos, e.Msg) }

// Lexer turns Verilog source text into tokens. Compiler directives
// (`timescale, `define, ...) are skipped to end of line, matching how the
// evaluation pipeline treats them (they never affect the subset semantics).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || c == '$' || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseChar(c byte) bool {
	switch c {
	case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H', 's', 'S':
		return true
	}
	return false
}

func isNumChar(c byte) bool {
	return isDigit(c) || c == '_' || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ||
		c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?'
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '`':
			// compiler directive: skip to end of line
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// punctuation, longest first within each leading byte
var puncts = []string{
	"<<<", ">>>", "===", "!==",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "**", "~&", "~|", "~^", "^~", "+:", "-:",
	"(", ")", "[", "]", "{", "}", ";", ":", ",", ".", "#", "@", "=", "+", "-", "*", "/", "%",
	"&", "|", "^", "~", "!", "<", ">", "?",
}

// Next returns the next token. At end of input it returns a TokEOF token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentChar(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: p}, nil

	case c == '$':
		start := lx.off
		lx.advance()
		for lx.off < len(lx.src) && isIdentChar(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if len(text) == 1 {
			return Token{}, &LexError{Pos: p, Msg: "bare '$'"}
		}
		return Token{Kind: TokSysName, Text: text, Pos: p}, nil

	case isDigit(c) || (c == '\'' && isBaseChar(lx.peek2())):
		return lx.lexNumber(p)

	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: p, Msg: "unterminated string"}
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && lx.off < len(lx.src) {
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte(esc)
				}
				continue
			}
			if ch == '\n' {
				return Token{}, &LexError{Pos: p, Msg: "newline in string"}
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: p}, nil

	default:
		rest := lx.src[lx.off:]
		for _, op := range puncts {
			if strings.HasPrefix(rest, op) {
				for range op {
					lx.advance()
				}
				return Token{Kind: TokPunct, Text: op, Pos: p}, nil
			}
		}
		return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}

// lexNumber handles 42, 42.5 (rejected), 4'b1010, 'd15, and the case where
// the width and tick are separated: "4 'b0" is produced by some emitters;
// the parser glues size-then-based tokens, so here a number is either a
// plain decimal run or a based literal starting at ' .
func (lx *Lexer) lexNumber(p Pos) (Token, error) {
	start := lx.off
	if lx.peek() == '\'' {
		lx.advance() // '
		if isBaseChar(lx.peek()) {
			lx.advance()
			// optional second base char after s
			if isBaseChar(lx.peek()) && (lx.src[lx.off-1] == 's' || lx.src[lx.off-1] == 'S') {
				lx.advance()
			}
		} else {
			return Token{}, &LexError{Pos: p, Msg: "missing base after '"}
		}
		for lx.off < len(lx.src) && isNumChar(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: p}, nil
	}
	for lx.off < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '_') {
		lx.advance()
	}
	// based part directly attached: 4'b....
	if lx.peek() == '\'' && isBaseChar(lx.peek2()) {
		lx.advance()
		lx.advance()
		if isBaseChar(lx.peek()) && (lx.src[lx.off-1] == 's' || lx.src[lx.off-1] == 'S') {
			lx.advance()
		}
		for lx.off < len(lx.src) && isNumChar(lx.peek()) {
			lx.advance()
		}
	}
	return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: p}, nil
}

// LexAll tokenizes the whole input, for tests and the tokenizer pipeline.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
