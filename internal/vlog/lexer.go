package vlog

import (
	"fmt"
	"strings"
)

// LexError is a lexical error with a source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: lex error: %s", e.Pos, e.Msg) }

// Lexer turns Verilog source text into tokens. Compiler directives
// (`timescale, `define, ...) are skipped to end of line, matching how the
// evaluation pipeline treats them (they never affect the subset semantics).
//
// Token text is a zero-copy slice of src wherever the token's value equals
// its spelling — identifiers, numbers, system names, and strings without
// escapes; only escaped strings materialize a fresh string. Punctuation
// resolves to interned constants via a first-byte switch.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// advanceN skips n bytes known to contain no newline.
func (lx *Lexer) advanceN(n int) {
	lx.off += n
	lx.col += n
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || c == '$' || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isBaseChar(c byte) bool {
	switch c {
	case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H', 's', 'S':
		return true
	}
	return false
}

func isNumChar(c byte) bool {
	return isDigit(c) || c == '_' || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ||
		c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?'
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '`':
			// compiler directive: skip to end of line
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// lexPunct resolves operators and punctuation, longest match first within
// each leading byte. The returned text is always an interned constant.
func (lx *Lexer) lexPunct(p Pos) (Token, error) {
	rest := lx.src[lx.off:]
	has := func(s string) bool { return strings.HasPrefix(rest, s) }
	var op string
	switch rest[0] {
	case '<':
		switch {
		case has("<<<"):
			op = "<<<"
		case has("<<"):
			op = "<<"
		case has("<="):
			op = "<="
		default:
			op = "<"
		}
	case '>':
		switch {
		case has(">>>"):
			op = ">>>"
		case has(">>"):
			op = ">>"
		case has(">="):
			op = ">="
		default:
			op = ">"
		}
	case '=':
		switch {
		case has("==="):
			op = "==="
		case has("=="):
			op = "=="
		default:
			op = "="
		}
	case '!':
		switch {
		case has("!=="):
			op = "!=="
		case has("!="):
			op = "!="
		default:
			op = "!"
		}
	case '&':
		if has("&&") {
			op = "&&"
		} else {
			op = "&"
		}
	case '|':
		if has("||") {
			op = "||"
		} else {
			op = "|"
		}
	case '*':
		if has("**") {
			op = "**"
		} else {
			op = "*"
		}
	case '~':
		switch {
		case has("~&"):
			op = "~&"
		case has("~|"):
			op = "~|"
		case has("~^"):
			op = "~^"
		default:
			op = "~"
		}
	case '^':
		if has("^~") {
			op = "^~"
		} else {
			op = "^"
		}
	case '+':
		if has("+:") {
			op = "+:"
		} else {
			op = "+"
		}
	case '-':
		if has("-:") {
			op = "-:"
		} else {
			op = "-"
		}
	case '(':
		op = "("
	case ')':
		op = ")"
	case '[':
		op = "["
	case ']':
		op = "]"
	case '{':
		op = "{"
	case '}':
		op = "}"
	case ';':
		op = ";"
	case ':':
		op = ":"
	case ',':
		op = ","
	case '.':
		op = "."
	case '#':
		op = "#"
	case '@':
		op = "@"
	case '/':
		op = "/"
	case '%':
		op = "%"
	case '?':
		op = "?"
	default:
		return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unexpected character %q", rest[0])}
	}
	lx.advanceN(len(op))
	return Token{Kind: TokPunct, Text: op, Pos: p}, nil
}

// Next returns the next token. At end of input it returns a TokEOF token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		i := lx.off
		for i < len(lx.src) && isIdentChar(lx.src[i]) {
			i++
		}
		lx.advanceN(i - start)
		text := lx.src[start:i]
		kind := TokIdent
		if IsKeyword(text) {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: p}, nil

	case c == '$':
		start := lx.off
		i := lx.off + 1
		for i < len(lx.src) && isIdentChar(lx.src[i]) {
			i++
		}
		lx.advanceN(i - start)
		text := lx.src[start:i]
		if len(text) == 1 {
			return Token{}, &LexError{Pos: p, Msg: "bare '$'"}
		}
		return Token{Kind: TokSysName, Text: text, Pos: p}, nil

	case isDigit(c) || (c == '\'' && isBaseChar(lx.peek2())):
		return lx.lexNumber(p)

	case c == '"':
		// Fast path: a string without escapes or newlines is a zero-copy
		// slice of src between the quotes.
		i := lx.off + 1
		for i < len(lx.src) && lx.src[i] != '"' && lx.src[i] != '\\' && lx.src[i] != '\n' {
			i++
		}
		if i < len(lx.src) && lx.src[i] == '"' {
			text := lx.src[lx.off+1 : i]
			lx.advanceN(i + 1 - lx.off)
			return Token{Kind: TokString, Text: text, Pos: p}, nil
		}
		// Slow path: escapes materialize the unescaped value.
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: p, Msg: "unterminated string"}
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && lx.off < len(lx.src) {
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte(esc)
				}
				continue
			}
			if ch == '\n' {
				return Token{}, &LexError{Pos: p, Msg: "newline in string"}
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: p}, nil

	default:
		return lx.lexPunct(p)
	}
}

// lexNumber handles 42, 42.5 (rejected), 4'b1010, 'd15, and the case where
// the width and tick are separated: "4 'b0" is produced by some emitters;
// the parser glues size-then-based tokens, so here a number is either a
// plain decimal run or a based literal starting at ' .
func (lx *Lexer) lexNumber(p Pos) (Token, error) {
	start := lx.off
	if lx.peek() == '\'' {
		lx.advance() // '
		if isBaseChar(lx.peek()) {
			lx.advance()
			// optional second base char after s
			if isBaseChar(lx.peek()) && (lx.src[lx.off-1] == 's' || lx.src[lx.off-1] == 'S') {
				lx.advance()
			}
		} else {
			return Token{}, &LexError{Pos: p, Msg: "missing base after '"}
		}
		for lx.off < len(lx.src) && isNumChar(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: p}, nil
	}
	for lx.off < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '_') {
		lx.advance()
	}
	// based part directly attached: 4'b....
	if lx.peek() == '\'' && isBaseChar(lx.peek2()) {
		lx.advance()
		lx.advance()
		if isBaseChar(lx.peek()) && (lx.src[lx.off-1] == 's' || lx.src[lx.off-1] == 'S') {
			lx.advance()
		}
		for lx.off < len(lx.src) && isNumChar(lx.peek()) {
			lx.advance()
		}
	}
	return Token{Kind: TokNumber, Text: lx.src[start:lx.off], Pos: p}, nil
}

// estimateTokens pre-counts the tokens in src with a lightweight scan (no
// position tracking, no token construction) so lexing can fill one
// backing slice sized up front. Multi-byte operators and based literals
// may count as several tokens — the estimate only has to be a capacity,
// never short by much and never wrong.
func estimateTokens(src string) int {
	n := 0
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				i++
			}
			i += 2
		case c == '`':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '"':
			n++
			i++
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			i++
		case isIdentChar(c):
			n++
			for i < len(src) && isIdentChar(src[i]) {
				i++
			}
		default:
			n++
			i++
		}
	}
	return n
}

// lexInto appends all tokens of src onto toks (the pooled-buffer path the
// parser uses).
func lexInto(toks []Token, src string) ([]Token, error) {
	lx := NewLexer(src)
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

// LexAll tokenizes the whole input, for tests and the tokenizer pipeline.
// A pre-count pass sizes the result so the fill pass performs exactly one
// slice allocation.
func LexAll(src string) ([]Token, error) {
	toks, err := lexInto(make([]Token, 0, estimateTokens(src)), src)
	if err != nil {
		return nil, err
	}
	return toks, nil
}
