package vlog

import (
	"fmt"
	"strings"
)

// Print renders a source file back to canonical Verilog text.
func Print(f *SourceFile) string {
	var sb strings.Builder
	for i, m := range f.Modules {
		if i > 0 {
			sb.WriteString("\n")
		}
		printModule(&sb, m)
	}
	return sb.String()
}

// PrintModule renders one module.
func PrintModule(m *Module) string {
	var sb strings.Builder
	printModule(&sb, m)
	return sb.String()
}

// PrintExpr renders an expression.
func PrintExpr(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

// PrintStmt renders a statement at indent level 0.
func PrintStmt(s Stmt) string {
	var sb strings.Builder
	printStmt(&sb, s, 1)
	return sb.String()
}

// PrintItems renders a sequence of module items (used to extract the
// behavioural tail of a module as a prompt completion).
func PrintItems(items []Item) string {
	var sb strings.Builder
	for _, it := range items {
		printItem(&sb, it)
	}
	return sb.String()
}

func printModule(sb *strings.Builder, m *Module) {
	// Split items into header port decls (ANSI) vs body items. We print in
	// ANSI style when the module has PortDecl items whose names cover
	// PortNames; otherwise we print the name list header.
	fmt.Fprintf(sb, "module %s", m.Name)

	var headerDecls []*PortDecl
	var body []Item
	covered := map[string]bool{}
	for _, it := range m.Items {
		if pd, ok := it.(*PortDecl); ok {
			headerDecls = append(headerDecls, pd)
			for _, n := range pd.Names {
				covered[n.Name] = true
			}
			continue
		}
		body = append(body, it)
	}
	ansi := len(m.PortNames) > 0
	for _, n := range m.PortNames {
		if !covered[n] {
			ansi = false
		}
	}
	if ansi && len(headerDecls) > 0 {
		sb.WriteString(" (")
		for i, pd := range headerDecls {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(pd.Dir.String())
			if pd.IsReg {
				sb.WriteString(" reg")
			}
			if pd.Signed {
				sb.WriteString(" signed")
			}
			if pd.Range != nil {
				sb.WriteString(" ")
				printRange(sb, pd.Range)
			}
			for j, n := range pd.Names {
				if j > 0 {
					sb.WriteString(", ")
				} else {
					sb.WriteString(" ")
				}
				sb.WriteString(n.Name)
			}
		}
		sb.WriteString(");\n")
	} else {
		if len(m.PortNames) > 0 {
			fmt.Fprintf(sb, " (%s)", strings.Join(m.PortNames, ", "))
		}
		sb.WriteString(";\n")
		// non-ANSI: port decls are printed in the body with everything else
		body = m.Items
	}
	for _, it := range body {
		printItem(sb, it)
	}
	sb.WriteString("endmodule\n")
}

func printRange(sb *strings.Builder, r *RangeSpec) {
	sb.WriteString("[")
	printExpr(sb, r.MSB)
	sb.WriteString(":")
	printExpr(sb, r.LSB)
	sb.WriteString("]")
}

func printItem(sb *strings.Builder, it Item) {
	switch n := it.(type) {
	case *PortDecl:
		sb.WriteString("  ")
		sb.WriteString(n.Dir.String())
		if n.IsReg {
			sb.WriteString(" reg")
		}
		if n.Signed {
			sb.WriteString(" signed")
		}
		if n.Range != nil {
			sb.WriteString(" ")
			printRange(sb, n.Range)
		}
		var names []string
		for _, d := range n.Names {
			names = append(names, d.Name)
		}
		fmt.Fprintf(sb, " %s;\n", strings.Join(names, ", "))
	case *NetDecl:
		sb.WriteString("  ")
		sb.WriteString(n.Kind.String())
		if n.Signed {
			sb.WriteString(" signed")
		}
		if n.Range != nil {
			sb.WriteString(" ")
			printRange(sb, n.Range)
		}
		sb.WriteString(" ")
		for i, d := range n.Names {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(d.Name)
			if d.ArrayRange != nil {
				sb.WriteString(" ")
				printRange(sb, d.ArrayRange)
			}
			if d.Init != nil {
				sb.WriteString(" = ")
				printExpr(sb, d.Init)
			}
		}
		sb.WriteString(";\n")
	case *ParamDecl:
		sb.WriteString("  ")
		if n.Local {
			sb.WriteString("localparam ")
		} else {
			sb.WriteString("parameter ")
		}
		for i, pa := range n.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%s = ", pa.Name)
			printExpr(sb, pa.Value)
		}
		sb.WriteString(";\n")
	case *ContAssign:
		for _, a := range n.Assigns {
			sb.WriteString("  assign ")
			printExpr(sb, a.LHS)
			sb.WriteString(" = ")
			printExpr(sb, a.RHS)
			sb.WriteString(";\n")
		}
	case *AlwaysBlock:
		sb.WriteString("  always ")
		printStmt(sb, n.Body, 1)
		sb.WriteString("\n")
	case *InitialBlock:
		sb.WriteString("  initial ")
		printStmt(sb, n.Body, 1)
		sb.WriteString("\n")
	case *Instance:
		fmt.Fprintf(sb, "  %s", n.Module)
		if len(n.Params) > 0 {
			sb.WriteString(" #(")
			printConns(sb, n.Params)
			sb.WriteString(")")
		}
		fmt.Fprintf(sb, " %s (", n.Name)
		printConns(sb, n.Conns)
		sb.WriteString(");\n")
	}
}

func printConns(sb *strings.Builder, conns []PortConn) {
	for i, c := range conns {
		if i > 0 {
			sb.WriteString(", ")
		}
		if c.Name != "" {
			fmt.Fprintf(sb, ".%s(", c.Name)
			if c.Expr != nil {
				printExpr(sb, c.Expr)
			}
			sb.WriteString(")")
		} else {
			printExpr(sb, c.Expr)
		}
	}
}

func ind(sb *strings.Builder, level int) {
	for i := 0; i < level; i++ {
		sb.WriteString("  ")
	}
}

// printStmt prints s; the caller has already emitted indentation or an
// inline prefix for the first line.
func printStmt(sb *strings.Builder, s Stmt, level int) {
	switch n := s.(type) {
	case nil:
		sb.WriteString(";")
	case *Null:
		sb.WriteString(";")
	case *Block:
		sb.WriteString("begin")
		if n.Name != "" {
			fmt.Fprintf(sb, " : %s", n.Name)
		}
		sb.WriteString("\n")
		for _, st := range n.Stmts {
			ind(sb, level+1)
			printStmt(sb, st, level+1)
			sb.WriteString("\n")
		}
		ind(sb, level)
		sb.WriteString("end")
	case *Assign:
		printExpr(sb, n.LHS)
		if n.NonBlocking {
			sb.WriteString(" <= ")
		} else {
			sb.WriteString(" = ")
		}
		printExpr(sb, n.RHS)
		sb.WriteString(";")
	case *If:
		sb.WriteString("if (")
		printExpr(sb, n.Cond)
		sb.WriteString(") ")
		printStmt(sb, n.Then, level)
		if n.Else != nil {
			sb.WriteString("\n")
			ind(sb, level)
			sb.WriteString("else ")
			printStmt(sb, n.Else, level)
		}
	case *Case:
		switch n.Kind {
		case CaseZ:
			sb.WriteString("casez (")
		case CaseX:
			sb.WriteString("casex (")
		default:
			sb.WriteString("case (")
		}
		printExpr(sb, n.Expr)
		sb.WriteString(")\n")
		for _, item := range n.Items {
			ind(sb, level+1)
			if item.Exprs == nil {
				sb.WriteString("default: ")
			} else {
				for i, e := range item.Exprs {
					if i > 0 {
						sb.WriteString(", ")
					}
					printExpr(sb, e)
				}
				sb.WriteString(": ")
			}
			printStmt(sb, item.Body, level+1)
			sb.WriteString("\n")
		}
		ind(sb, level)
		sb.WriteString("endcase")
	case *For:
		sb.WriteString("for (")
		printExpr(sb, n.Init.LHS)
		sb.WriteString(" = ")
		printExpr(sb, n.Init.RHS)
		sb.WriteString("; ")
		printExpr(sb, n.Cond)
		sb.WriteString("; ")
		printExpr(sb, n.Step.LHS)
		sb.WriteString(" = ")
		printExpr(sb, n.Step.RHS)
		sb.WriteString(") ")
		printStmt(sb, n.Body, level)
	case *While:
		sb.WriteString("while (")
		printExpr(sb, n.Cond)
		sb.WriteString(") ")
		printStmt(sb, n.Body, level)
	case *Repeat:
		sb.WriteString("repeat (")
		printExpr(sb, n.Count)
		sb.WriteString(") ")
		printStmt(sb, n.Body, level)
	case *Forever:
		sb.WriteString("forever ")
		printStmt(sb, n.Body, level)
	case *Delay:
		sb.WriteString("#")
		printExpr(sb, n.Amount)
		sb.WriteString(" ")
		printStmt(sb, n.Stmt, level)
	case *EventCtrl:
		if n.Star {
			sb.WriteString("@(*) ")
		} else {
			sb.WriteString("@(")
			for i, ev := range n.Events {
				if i > 0 {
					sb.WriteString(" or ")
				}
				switch ev.Edge {
				case EdgePos:
					sb.WriteString("posedge ")
				case EdgeNeg:
					sb.WriteString("negedge ")
				}
				printExpr(sb, ev.X)
			}
			sb.WriteString(") ")
		}
		printStmt(sb, n.Stmt, level)
	case *Wait:
		sb.WriteString("wait (")
		printExpr(sb, n.Cond)
		sb.WriteString(") ")
		printStmt(sb, n.Stmt, level)
	case *SysCall:
		sb.WriteString(n.Name)
		if len(n.Args) > 0 {
			sb.WriteString("(")
			for i, a := range n.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, a)
			}
			sb.WriteString(")")
		}
		sb.WriteString(";")
	default:
		fmt.Fprintf(sb, "/* unknown stmt %T */;", s)
	}
}

func printExpr(sb *strings.Builder, e Expr) {
	switch n := e.(type) {
	case *Ident:
		sb.WriteString(n.Name)
	case *Number:
		sb.WriteString(n.Text)
	case *Str:
		fmt.Fprintf(sb, "%q", n.Text)
	case *Unary:
		sb.WriteString(n.Op)
		if _, ok := n.X.(*Binary); ok {
			sb.WriteString("(")
			printExpr(sb, n.X)
			sb.WriteString(")")
		} else {
			printExpr(sb, n.X)
		}
	case *Binary:
		printChild(sb, n.X)
		fmt.Fprintf(sb, " %s ", n.Op)
		printChild(sb, n.Y)
	case *Ternary:
		printChild(sb, n.Cond)
		sb.WriteString(" ? ")
		printChild(sb, n.Then)
		sb.WriteString(" : ")
		printChild(sb, n.Else)
	case *Concat:
		sb.WriteString("{")
		for i, part := range n.Parts {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, part)
		}
		sb.WriteString("}")
	case *Repl:
		sb.WriteString("{")
		printExpr(sb, n.Count)
		sb.WriteString("{")
		printExpr(sb, n.X)
		sb.WriteString("}}")
	case *Index:
		printExpr(sb, n.X)
		sb.WriteString("[")
		printExpr(sb, n.I)
		sb.WriteString("]")
	case *RangeSel:
		printExpr(sb, n.X)
		sb.WriteString("[")
		printExpr(sb, n.MSB)
		sb.WriteString(":")
		printExpr(sb, n.LSB)
		sb.WriteString("]")
	case *SysCallExpr:
		sb.WriteString(n.Name)
		if len(n.Args) > 0 {
			sb.WriteString("(")
			for i, a := range n.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, a)
			}
			sb.WriteString(")")
		}
	default:
		fmt.Fprintf(sb, "/* unknown expr %T */", e)
	}
}

// printChild parenthesizes composite operands so reprinted source preserves
// evaluation order regardless of the original precedence context.
func printChild(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *Binary, *Ternary:
		sb.WriteString("(")
		printExpr(sb, e)
		sb.WriteString(")")
	default:
		printExpr(sb, e)
	}
}
