package vlog

import (
	"math/rand"
	"strings"
	"testing"
)

// corpusLikeModules mirrors the corpus generator's archetypes without
// importing it (that would create an import cycle through tests); the
// corpus package has its own test asserting its output parses.
var corpusLikeModules = []string{
	`module c1(input clk, input reset, output reg [7:0] q);
  always @(posedge clk) begin
    if (reset) q <= 0;
    else q <= q + 1;
  end
endmodule`,
	`module a1(input [15:0] a, input [15:0] b, output [15:0] sum, output cout);
  assign {cout, sum} = a + b;
endmodule`,
	`module f1(input clk, input reset, input go, output busy);
  parameter IDLE = 0, RUN = 1, DONE = 2;
  reg [1:0] state, next;
  always @(posedge clk or posedge reset) begin
    if (reset) state <= IDLE;
    else state <= next;
  end
  always @(state or go) begin
    case (state)
      IDLE: next = go ? RUN : IDLE;
      RUN: next = DONE;
      default: next = IDLE;
    endcase
  end
  assign busy = (state == RUN);
endmodule`,
	`module m1(input clk, input we, input [3:0] addr, input [7:0] din, output reg [7:0] dout);
  reg [7:0] mem [15:0];
  always @(posedge clk) begin
    if (we) mem[addr] <= din;
    dout <= mem[addr];
  end
endmodule`,
}

// TestPrintParseFixpoint: print(parse(x)) reaches a fixpoint after one
// round for realistic modules.
func TestPrintParseFixpoint(t *testing.T) {
	for i, src := range corpusLikeModules {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("module %d: %v", i, err)
		}
		p1 := Print(f1)
		f2, err := Parse(p1)
		if err != nil {
			t.Fatalf("module %d reparse: %v\n%s", i, err, p1)
		}
		p2 := Print(f2)
		if p1 != p2 {
			t.Fatalf("module %d not a fixpoint:\n%s\nvs\n%s", i, p1, p2)
		}
	}
}

// TestParseNeverPanics feeds corrupted variants of valid source and raw
// byte soup into the parser; errors are fine, panics are not (the parser
// fronts untrusted LLM output in the pipeline).
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	corrupt := func(s string) string {
		b := []byte(s)
		for k := 0; k < 1+rng.Intn(8); k++ {
			if len(b) == 0 {
				break
			}
			switch rng.Intn(4) {
			case 0: // delete a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(len(b)-i)
				b = append(b[:i], b[j:]...)
			case 1: // duplicate a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(min(20, len(b)-i))
				b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
			case 2: // flip a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			default: // truncate
				b = b[:rng.Intn(len(b)+1)]
			}
		}
		return string(b)
	}
	for trial := 0; trial < 500; trial++ {
		src := corrupt(corpusLikeModules[trial%len(corpusLikeModules)])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on corrupted input: %v\n%q", r, src)
				}
			}()
			_, _ = Parse(src)
		}()
	}
	// raw byte soup
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on byte soup: %v", r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}

// TestLexAllTokensRoundTripThroughParser ensures every token form the
// lexer can produce is consumable somewhere (sanity sweep over operators).
func TestOperatorExpressionsParse(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~",
		"==", "!=", "===", "!==", "<", "<=", ">", ">=", "<<", ">>", ">>>",
		"&&", "||", "**"}
	for _, op := range ops {
		src := "module m(input [3:0] a, input [3:0] b, output [7:0] y); assign y = a " + op + " b; endmodule"
		if _, err := Parse(src); err != nil {
			t.Errorf("operator %q failed: %v", op, err)
		}
	}
	unary := []string{"+", "-", "!", "~", "&", "|", "^", "~&", "~|", "~^"}
	for _, op := range unary {
		src := "module m(input [3:0] a, output y); assign y = " + op + "a; endmodule"
		if _, err := Parse(src); err != nil {
			t.Errorf("unary %q failed: %v", op, err)
		}
	}
}

func TestDeeplyNestedExpressionNoPanic(t *testing.T) {
	depth := 2000
	expr := strings.Repeat("(", depth) + "a" + strings.Repeat(")", depth)
	// deep nesting must either parse or error, not crash the process;
	// 2000 levels stays well inside goroutine stack growth
	if _, err := ParseExprString(expr); err != nil {
		t.Fatalf("nested expression failed: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
