package vlog

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SourceFile {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return f
}

func TestParseMinimalModule(t *testing.T) {
	f := mustParse(t, "module top; endmodule")
	if len(f.Modules) != 1 || f.Modules[0].Name != "top" {
		t.Fatalf("modules = %+v", f.Modules)
	}
}

func TestParseANSIPorts(t *testing.T) {
	f := mustParse(t, `module counter(input clk, input reset, output reg [3:0] q); endmodule`)
	m := f.Modules[0]
	if len(m.PortNames) != 3 {
		t.Fatalf("port names = %v", m.PortNames)
	}
	var decls []*PortDecl
	for _, it := range m.Items {
		if pd, ok := it.(*PortDecl); ok {
			decls = append(decls, pd)
		}
	}
	if len(decls) != 3 {
		t.Fatalf("port decls = %d", len(decls))
	}
	last := decls[2]
	if last.Dir != DirOutput || !last.IsReg || last.Range == nil {
		t.Fatalf("q decl = %+v", last)
	}
}

func TestParseNonANSIPorts(t *testing.T) {
	f := mustParse(t, `module m(a, b); input a; output b; wire a; endmodule`)
	m := f.Modules[0]
	if len(m.PortNames) != 2 || m.PortNames[0] != "a" {
		t.Fatalf("ports = %v", m.PortNames)
	}
}

func TestParseGroupedANSIPorts(t *testing.T) {
	// one direction keyword covering several names
	f := mustParse(t, `module m(input a, b, output c); endmodule`)
	m := f.Modules[0]
	if len(m.PortNames) != 3 {
		t.Fatalf("ports = %v", m.PortNames)
	}
	pd := m.Items[0].(*PortDecl)
	if len(pd.Names) != 2 || pd.Dir != DirInput {
		t.Fatalf("first decl = %+v", pd)
	}
}

func TestParseDeclsAndAssign(t *testing.T) {
	src := `module m;
  wire [7:0] w;
  reg signed [7:0] r;
  reg [7:0] mem [63:0];
  integer i;
  parameter IDLE = 0, RUN = 1;
  localparam W = 8;
  assign w = r + 1;
endmodule`
	f := mustParse(t, src)
	m := f.Modules[0]
	if len(m.Items) != 7 {
		t.Fatalf("items = %d", len(m.Items))
	}
	mem := m.Items[2].(*NetDecl)
	if mem.Names[0].ArrayRange == nil {
		t.Fatal("memory array range missing")
	}
	pd := m.Items[4].(*ParamDecl)
	if len(pd.Params) != 2 || pd.Local {
		t.Fatalf("param decl = %+v", pd)
	}
	lp := m.Items[5].(*ParamDecl)
	if !lp.Local {
		t.Fatal("localparam flag lost")
	}
}

func TestParseAlwaysFSM(t *testing.T) {
	src := `module fsm(input clk, input reset, input x, output z);
  parameter IDLE = 0, S1 = 1;
  reg [1:0] present_state, next_state;
  always @(posedge clk or posedge reset) begin
    if (reset) present_state <= IDLE;
    else present_state <= next_state;
  end
  always @(present_state or x) begin
    case (present_state)
      IDLE: if (x) next_state = S1; else next_state = IDLE;
      S1: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
  assign z = present_state == S1;
endmodule`
	f := mustParse(t, src)
	m := f.Modules[0]
	var aw []*AlwaysBlock
	for _, it := range m.Items {
		if a, ok := it.(*AlwaysBlock); ok {
			aw = append(aw, a)
		}
	}
	if len(aw) != 2 {
		t.Fatalf("always blocks = %d", len(aw))
	}
	ec := aw[0].Body.(*EventCtrl)
	if len(ec.Events) != 2 || ec.Events[0].Edge != EdgePos {
		t.Fatalf("events = %+v", ec.Events)
	}
	blk := ec.Stmt.(*Block)
	ifs := blk.Stmts[0].(*If)
	as := ifs.Then.(*Assign)
	if !as.NonBlocking {
		t.Fatal("expected nonblocking assign")
	}
}

func TestParseTestbenchConstructs(t *testing.T) {
	src := `module tb;
  reg clk, reset;
  wire [3:0] q;
  integer errors;
  counter dut(.clk(clk), .reset(reset), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; reset = 1; errors = 0;
    #12 reset = 0;
    repeat (20) begin
      @(posedge clk);
      if (q !== 4'd1) begin
        errors = errors + 1;
        $display("FAIL q=%d at %t", q, $time);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule`
	f := mustParse(t, src)
	m := f.Modules[0]
	var inst *Instance
	for _, it := range m.Items {
		if i, ok := it.(*Instance); ok {
			inst = i
		}
	}
	if inst == nil || inst.Module != "counter" || len(inst.Conns) != 3 {
		t.Fatalf("instance = %+v", inst)
	}
	if inst.Conns[0].Name != "clk" {
		t.Fatalf("named conn = %+v", inst.Conns[0])
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		"a + b * c",
		"(a + b) * c",
		"a ? b : c ? d : e",
		"{a, b[3:0], 2'b01}",
		"{4{x}}",
		"~&vec",
		"a <<< 2",
		"q[i]",
		"mem[addr][3:0]",
		"x == 8'hFF && y != 0",
		"-a ** 2",
		"$time",
		"$random % 16",
	}
	for _, c := range cases {
		if _, err := ParseExprString(c); err != nil {
			t.Errorf("%q: %v", c, err)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExprString("a + b * c")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*Binary)
	if b.Op != "+" {
		t.Fatalf("root op = %s", b.Op)
	}
	if inner := b.Y.(*Binary); inner.Op != "*" {
		t.Fatalf("inner op = %s", inner.Op)
	}
	// equality binds tighter than &
	e2, _ := ParseExprString("a & b == c")
	if b2 := e2.(*Binary); b2.Op != "&" {
		t.Fatalf("& precedence wrong: root %s", b2.Op)
	}
}

func TestParseSizedLiteralWithSpace(t *testing.T) {
	e, err := ParseExprString("4 'b1010")
	if err != nil {
		t.Fatal(err)
	}
	n := e.(*Number)
	if n.Value.Width() != 4 {
		t.Fatalf("width = %d", n.Value.Width())
	}
}

func TestParseModuleParamHeader(t *testing.T) {
	f := mustParse(t, `module ram #(parameter DW = 8, AW = 6)(input clk); endmodule`)
	m := f.Modules[0]
	pd, ok := m.Items[0].(*ParamDecl)
	if !ok || len(pd.Params) != 2 {
		t.Fatalf("param header = %+v", m.Items[0])
	}
}

func TestParseParamOverrideInstance(t *testing.T) {
	f := mustParse(t, `module top; ram #(.DW(16)) r0 (clk); endmodule`)
	inst := f.Modules[0].Items[0].(*Instance)
	if len(inst.Params) != 1 || inst.Params[0].Name != "DW" {
		t.Fatalf("params = %+v", inst.Params)
	}
}

func TestParseForLoop(t *testing.T) {
	src := `module m; reg [7:0] mem [3:0]; integer i;
  initial for (i = 0; i < 4; i = i + 1) mem[i] = 0;
endmodule`
	f := mustParse(t, src)
	ib := f.Modules[0].Items[2].(*InitialBlock)
	fl := ib.Body.(*For)
	if fl.Init == nil || fl.Cond == nil || fl.Step == nil {
		t.Fatalf("for = %+v", fl)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"module",
		"module m",
		"module m; always",
		"module m; assign = 1; endmodule",
		"module m; if (a) b = 1; endmodule", // statement at item level
		"module m; wire 4w; endmodule",
		"module m; function f; endfunction endmodule",
		"module m; case endmodule",
		"garbage",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseConcatLValue(t *testing.T) {
	src := `module m(output reg c, output reg [3:0] s, input [3:0] a, b);
  always @(*) {c, s} = a + b;
endmodule`
	f := mustParse(t, src)
	var ab *AlwaysBlock
	for _, it := range f.Modules[0].Items {
		if a, ok := it.(*AlwaysBlock); ok {
			ab = a
		}
	}
	ec := ab.Body.(*EventCtrl)
	if !ec.Star {
		t.Fatal("expected @(*)")
	}
	as := ec.Stmt.(*Assign)
	if _, ok := as.LHS.(*Concat); !ok {
		t.Fatalf("lhs = %T", as.LHS)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`module counter(input clk, input reset, output reg [3:0] q);
  always @(posedge clk) begin
    if (reset) q <= 4'd1;
    else if (q == 4'd12) q <= 4'd1;
    else q <= q + 4'd1;
  end
endmodule`,
		`module tb;
  reg clk;
  wire [3:0] q;
  counter dut(.clk(clk), .reset(reset), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0;
    #100 $finish;
  end
endmodule`,
		`module mux(input a, b, sel, output y);
  assign y = sel ? b : a;
endmodule`,
		`module shift(input clk, input [1:0] amt, input [7:0] d, output reg [7:0] out);
  always @(*) begin
    case (amt)
      2'b00: out = d;
      2'b01: out = {d[6:0], d[7]};
      default: out = 8'b0;
    endcase
  end
endmodule`,
	}
	for _, src := range srcs {
		f1 := mustParse(t, src)
		printed := Print(f1)
		f2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
		}
		printed2 := Print(f2)
		if printed != printed2 {
			t.Errorf("print not stable:\n--- first:\n%s\n--- second:\n%s", printed, printed2)
		}
	}
}

func TestParseMultipleModules(t *testing.T) {
	f := mustParse(t, "module a; endmodule\nmodule b; endmodule")
	if len(f.Modules) != 2 {
		t.Fatalf("modules = %d", len(f.Modules))
	}
	if f.FindModule("b") == nil || f.FindModule("c") != nil {
		t.Fatal("FindModule wrong")
	}
}

func TestParseWaitAndWhile(t *testing.T) {
	src := `module m; reg a; initial begin wait (a) ; while (a) a = 0; end endmodule`
	mustParse(t, src)
}

func TestParseUnsupportedGate(t *testing.T) {
	if _, err := Parse("module m; and g(a, b, c); endmodule"); err == nil {
		t.Fatal("gate primitives should be unsupported")
	}
	if err, ok := errOf(t, "module m; and g(a,b,c); endmodule").(*ParseError); !ok {
		t.Fatalf("error type = %T", err)
	}
}

func errOf(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected error for %q", src)
	}
	return err
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("module m;\n  wire ;\nendmodule")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}
