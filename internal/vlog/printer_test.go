package vlog

import (
	"strings"
	"testing"
)

func TestPrintExprForms(t *testing.T) {
	cases := map[string]string{
		"a + b * c":      "a + (b * c)",
		"{a, b}":         "{a, b}",
		"{3{a}}":         "{3{a}}",
		"a ? b : c":      "a ? b : c",
		"~a":             "~a",
		"~(a | b)":       "~(a | b)",
		"a[3]":           "a[3]",
		"a[7:4]":         "a[7:4]",
		"$time":          "$time",
		"$signed(a)":     "$signed(a)",
		"a === 4'bxx01":  "a === 4'bxx01",
		"-a ** 2":        "-a ** 2", // unary binds tighter; no parens needed
		"(a && b) || !c": "(a && b) || !c",
		"mem[addr]":      "mem[addr]",
		"a >>> sh":       "a >>> sh",
	}
	for src, want := range cases {
		e, err := ParseExprString(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got := PrintExpr(e)
		// reprint must reparse to the same tree (shape check), and the
		// text must match the expected canonical form
		if got != want {
			t.Errorf("PrintExpr(%q) = %q, want %q", src, got, want)
		}
		if _, err := ParseExprString(got); err != nil {
			t.Errorf("printed form %q does not reparse: %v", got, err)
		}
	}
}

func TestPrintStmtForms(t *testing.T) {
	srcs := []string{
		`module m; reg a; integer i;
  initial begin : blk
    a = 0;
    if (a) a = 1;
    else a = 0;
    while (a) a = 0;
    repeat (3) a = ~a;
    for (i = 0; i < 4; i = i + 1) a = ~a;
    wait (a) ;
    #5 ;
    @(posedge a) ;
    casez (a)
      1'b1: a = 0;
      default: ;
    endcase
    $display("x=%d", i);
    $finish;
  end
  always @(negedge a) a <= 1;
endmodule`,
	}
	for _, src := range srcs {
		f, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := Print(f)
		if _, err := Parse(printed); err != nil {
			t.Fatalf("printed module does not reparse: %v\n%s", err, printed)
		}
		for _, want := range []string{"begin : blk", "while (", "repeat (", "for (",
			"wait (", "#5", "@(negedge a)", "casez (", "$finish;", "forever"} {
			if want == "forever" {
				continue // not in this source
			}
			if !strings.Contains(printed, want) {
				t.Errorf("printed module missing %q:\n%s", want, printed)
			}
		}
	}
}

func TestPrintNonANSIModule(t *testing.T) {
	src := `module m(a, b);
  input a;
  output b;
  assign b = ~a;
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// the printer canonicalizes to ANSI style when the port declarations
	// cover every header name
	printed := Print(f)
	if !strings.Contains(printed, "module m (input a, output b);") {
		t.Fatalf("expected ANSI canonical form:\n%s", printed)
	}
	f2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if got := f2.Modules[0].PortNames; len(got) != 2 || got[0] != "a" {
		t.Fatalf("ports after round trip = %v", got)
	}
}

func TestPrintInstanceForms(t *testing.T) {
	src := `module c #(parameter W = 4)(input [W-1:0] a); endmodule
module m;
  wire [7:0] w;
  c #(.W(8)) c0 (.a(w));
  c c1 (w[3:0]);
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f)
	for _, want := range []string{"#(.W(8))", "c0 (.a(w))", "c1 (w[3:0])"} {
		if !strings.Contains(printed, want) {
			t.Errorf("instance print missing %q:\n%s", want, printed)
		}
	}
	if _, err := Parse(printed); err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
}

func TestPrintForeverAndMemoryDecl(t *testing.T) {
	src := `module m;
  reg clk;
  reg [7:0] mem [15:0];
  wire w = clk;
  initial forever #5 clk = ~clk;
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(f)
	for _, want := range []string{"forever #5", "mem [15:0]", "w = clk"} {
		if !strings.Contains(printed, want) {
			t.Errorf("missing %q:\n%s", want, printed)
		}
	}
}

func TestPrintItemsSubset(t *testing.T) {
	src := `module m(input a, output reg b);
  wire w;
  assign w = a;
  always @(*) b = w;
endmodule`
	f, _ := Parse(src)
	var behavioural []Item
	for _, it := range f.Modules[0].Items {
		switch it.(type) {
		case *AlwaysBlock, *ContAssign:
			behavioural = append(behavioural, it)
		}
	}
	out := PrintItems(behavioural)
	if !strings.Contains(out, "assign w = a;") || !strings.Contains(out, "always @(*)") {
		t.Fatalf("PrintItems output:\n%s", out)
	}
}
