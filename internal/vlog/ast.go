package vlog

import "repro/internal/vnum"

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// Expr is a Verilog expression.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a behavioural statement.
type Stmt interface {
	Node
	stmtNode()
}

// Item is a module item (declaration, assign, always, instance, ...).
type Item interface {
	Node
	itemNode()
}

// ---- Expressions -------------------------------------------------------

// Ident is an identifier reference.
type Ident struct {
	Pos  Pos
	Name string
}

// Number is a literal with its parsed four-state value.
type Number struct {
	Pos   Pos
	Text  string
	Value vnum.Value
}

// Str is a string literal (used in system task arguments).
type Str struct {
	Pos  Pos
	Text string
}

// Unary is a prefix operator application: ~x, -x, &x, ...
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is an infix operator application.
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	Pos        Pos
	Cond       Expr
	Then, Else Expr
}

// Concat is {a, b, c}.
type Concat struct {
	Pos   Pos
	Parts []Expr
}

// Repl is {n{expr}}.
type Repl struct {
	Pos   Pos
	Count Expr
	X     Expr
}

// Index is x[i]: a bit select, or a memory word select.
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

// RangeSel is x[msb:lsb], a constant part select.
type RangeSel struct {
	Pos      Pos
	X        Expr
	MSB, LSB Expr
}

// SysCallExpr is a system function call in expression position,
// e.g. $time or $random.
type SysCallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (n *Ident) NodePos() Pos       { return n.Pos }
func (n *Number) NodePos() Pos      { return n.Pos }
func (n *Str) NodePos() Pos         { return n.Pos }
func (n *Unary) NodePos() Pos       { return n.Pos }
func (n *Binary) NodePos() Pos      { return n.Pos }
func (n *Ternary) NodePos() Pos     { return n.Pos }
func (n *Concat) NodePos() Pos      { return n.Pos }
func (n *Repl) NodePos() Pos        { return n.Pos }
func (n *Index) NodePos() Pos       { return n.Pos }
func (n *RangeSel) NodePos() Pos    { return n.Pos }
func (n *SysCallExpr) NodePos() Pos { return n.Pos }

func (*Ident) exprNode()       {}
func (*Number) exprNode()      {}
func (*Str) exprNode()         {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Ternary) exprNode()     {}
func (*Concat) exprNode()      {}
func (*Repl) exprNode()        {}
func (*Index) exprNode()       {}
func (*RangeSel) exprNode()    {}
func (*SysCallExpr) exprNode() {}

// ---- Statements --------------------------------------------------------

// Block is begin ... end, optionally named.
type Block struct {
	Pos   Pos
	Name  string
	Stmts []Stmt
}

// Assign is a procedural assignment; NonBlocking selects <= vs =.
type Assign struct {
	Pos         Pos
	LHS         Expr
	RHS         Expr
	NonBlocking bool
}

// If is if (cond) then [else elseStmt]; Else may be nil, branches may be nil
// (bare semicolon).
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt
}

// CaseKind distinguishes case/casez/casex.
type CaseKind int

// Case statement kinds.
const (
	CaseExact CaseKind = iota // case
	CaseZ                     // casez: z/? are wildcards
	CaseX                     // casex: x and z are wildcards
)

// CaseItem is one arm; a nil Exprs slice marks the default arm.
type CaseItem struct {
	Pos   Pos
	Exprs []Expr
	Body  Stmt
}

// Case is a case/casez/casex statement.
type Case struct {
	Pos   Pos
	Kind  CaseKind
	Expr  Expr
	Items []CaseItem
}

// For is for (init; cond; step) body.
type For struct {
	Pos  Pos
	Init *Assign
	Cond Expr
	Step *Assign
	Body Stmt
}

// While is while (cond) body.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// Repeat is repeat (n) body.
type Repeat struct {
	Pos   Pos
	Count Expr
	Body  Stmt
}

// Forever is forever body.
type Forever struct {
	Pos  Pos
	Body Stmt
}

// Delay is #expr stmt; Stmt may be nil for a bare "#10;".
type Delay struct {
	Pos    Pos
	Amount Expr
	Stmt   Stmt
}

// EventItem is one term of an event control: [posedge|negedge] expr.
type EventItem struct {
	Pos  Pos
	Edge EdgeKind
	X    Expr
}

// EdgeKind is the edge qualifier of an event item.
type EdgeKind int

// Edge qualifiers.
const (
	EdgeAny EdgeKind = iota
	EdgePos
	EdgeNeg
)

// EventCtrl is @(...) stmt or @* stmt; Star marks @* / @(*).
type EventCtrl struct {
	Pos    Pos
	Star   bool
	Events []EventItem
	Stmt   Stmt
}

// Wait is wait (cond) stmt.
type Wait struct {
	Pos  Pos
	Cond Expr
	Stmt Stmt
}

// SysCall is a system task invocation statement: $display(...), $finish.
type SysCall struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Null is a bare semicolon.
type Null struct {
	Pos Pos
}

func (n *Block) NodePos() Pos     { return n.Pos }
func (n *Assign) NodePos() Pos    { return n.Pos }
func (n *If) NodePos() Pos        { return n.Pos }
func (n *Case) NodePos() Pos      { return n.Pos }
func (n *For) NodePos() Pos       { return n.Pos }
func (n *While) NodePos() Pos     { return n.Pos }
func (n *Repeat) NodePos() Pos    { return n.Pos }
func (n *Forever) NodePos() Pos   { return n.Pos }
func (n *Delay) NodePos() Pos     { return n.Pos }
func (n *EventCtrl) NodePos() Pos { return n.Pos }
func (n *Wait) NodePos() Pos      { return n.Pos }
func (n *SysCall) NodePos() Pos   { return n.Pos }
func (n *Null) NodePos() Pos      { return n.Pos }

func (*Block) stmtNode()     {}
func (*Assign) stmtNode()    {}
func (*If) stmtNode()        {}
func (*Case) stmtNode()      {}
func (*For) stmtNode()       {}
func (*While) stmtNode()     {}
func (*Repeat) stmtNode()    {}
func (*Forever) stmtNode()   {}
func (*Delay) stmtNode()     {}
func (*EventCtrl) stmtNode() {}
func (*Wait) stmtNode()      {}
func (*SysCall) stmtNode()   {}
func (*Null) stmtNode()      {}

// ---- Module items ------------------------------------------------------

// Direction is a port direction.
type Direction int

// Port directions.
const (
	DirNone Direction = iota
	DirInput
	DirOutput
	DirInout
)

func (d Direction) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	default:
		return ""
	}
}

// RangeSpec is a [msb:lsb] vector range.
type RangeSpec struct {
	Pos      Pos
	MSB, LSB Expr
}

// NetKind is the storage class of a declaration.
type NetKind int

// Storage classes.
const (
	KindWire NetKind = iota
	KindReg
	KindInteger
)

func (k NetKind) String() string {
	switch k {
	case KindWire:
		return "wire"
	case KindReg:
		return "reg"
	default:
		return "integer"
	}
}

// DeclName is one declarator: name, optional memory range, optional
// initializer (wire w = expr, or reg r = 0 in corpus code).
type DeclName struct {
	Pos        Pos
	Name       string
	ArrayRange *RangeSpec
	Init       Expr
}

// PortDecl declares ports: input/output/inout [reg] [signed] [range] names.
type PortDecl struct {
	Pos    Pos
	Dir    Direction
	IsReg  bool
	Signed bool
	Range  *RangeSpec
	Names  []DeclName
}

// NetDecl declares wires/regs/integers.
type NetDecl struct {
	Pos    Pos
	Kind   NetKind
	Signed bool
	Range  *RangeSpec
	Names  []DeclName
}

// ParamAssign is one name = expr in a parameter list.
type ParamAssign struct {
	Pos   Pos
	Name  string
	Value Expr
}

// ParamDecl is parameter/localparam p = v, q = w;
type ParamDecl struct {
	Pos    Pos
	Local  bool
	Params []ParamAssign
}

// ContAssign is assign lhs = rhs (, lhs = rhs)*;
type ContAssign struct {
	Pos     Pos
	Assigns []*Assign
}

// AlwaysBlock is an always construct.
type AlwaysBlock struct {
	Pos  Pos
	Body Stmt
}

// InitialBlock is an initial construct.
type InitialBlock struct {
	Pos  Pos
	Body Stmt
}

// PortConn is one connection of an instantiation; Name is empty for
// positional connections. Expr may be nil for .name() (unconnected).
type PortConn struct {
	Pos  Pos
	Name string
	Expr Expr
}

// Instance is a module instantiation.
type Instance struct {
	Pos    Pos
	Module string
	Name   string
	Params []PortConn // #(...) overrides, positional or named
	Conns  []PortConn
}

func (n *PortDecl) NodePos() Pos     { return n.Pos }
func (n *NetDecl) NodePos() Pos      { return n.Pos }
func (n *ParamDecl) NodePos() Pos    { return n.Pos }
func (n *ContAssign) NodePos() Pos   { return n.Pos }
func (n *AlwaysBlock) NodePos() Pos  { return n.Pos }
func (n *InitialBlock) NodePos() Pos { return n.Pos }
func (n *Instance) NodePos() Pos     { return n.Pos }

func (*PortDecl) itemNode()     {}
func (*NetDecl) itemNode()      {}
func (*ParamDecl) itemNode()    {}
func (*ContAssign) itemNode()   {}
func (*AlwaysBlock) itemNode()  {}
func (*InitialBlock) itemNode() {}
func (*Instance) itemNode()     {}

// Module is one module declaration.
type Module struct {
	Pos       Pos
	Name      string
	PortNames []string // header list for non-ANSI style; nil for ANSI
	Items     []Item
}

func (m *Module) NodePos() Pos { return m.Pos }

// SourceFile is a parsed compilation unit.
type SourceFile struct {
	Modules []*Module
}

// Compose returns a SourceFile holding the modules of each input file in
// order, as if the sources had been concatenated into one compilation
// unit. Inputs are not modified; module pointers are shared, so the
// result must be treated as read-only alongside its inputs.
func Compose(files ...*SourceFile) *SourceFile {
	n := 0
	for _, f := range files {
		n += len(f.Modules)
	}
	out := &SourceFile{Modules: make([]*Module, 0, n)}
	for _, f := range files {
		out.Modules = append(out.Modules, f.Modules...)
	}
	return out
}

// FindModule returns the module named name, or nil.
func (f *SourceFile) FindModule(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}
