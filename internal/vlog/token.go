// Package vlog implements a Verilog-2001 subset frontend: lexer, abstract
// syntax tree, recursive-descent parser and a source printer. The subset
// covers synthesizable RTL plus the behavioural constructs used by test
// benches (initial blocks, delays, event controls, system tasks), which is
// the language surface exercised by the paper's 17-problem evaluation.
package vlog

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokSysName // $display, $time, ...
	TokNumber  // 12, 4'b1010, 8'hFF
	TokString  // "..."
	TokKeyword
	TokPunct // operators and punctuation
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokSysName:
		return "system name"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	default:
		return "punctuation"
	}
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "EOF"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "integer": true,
	"parameter": true, "localparam": true, "assign": true, "always": true,
	"initial": true, "begin": true, "end": true, "if": true, "else": true,
	"case": true, "casez": true, "casex": true, "endcase": true,
	"default": true, "for": true, "while": true, "repeat": true,
	"forever": true, "posedge": true, "negedge": true, "or": true,
	"wait": true, "signed": true, "not": true, "and": true, "nand": true,
	"nor": true, "xor": true, "xnor": true, "buf": true, "genvar": true,
	"generate": true, "endgenerate": true, "function": true,
	"endfunction": true, "task": true, "endtask": true, "real": true,
	"time": true, "tri": true, "supply0": true, "supply1": true,
	"deassign": true, "disable": true, "fork": true, "join": true,
}

// IsKeyword reports whether s is a reserved word in the supported subset.
func IsKeyword(s string) bool { return keywords[s] }
