package vlog

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vnum"
)

// parseCalls counts Parse invocations; the evaluation pipeline's
// single-parse guarantee is asserted against it in tests.
var parseCalls atomic.Uint64

// ParseCalls returns the number of Parse invocations so far (monotonic,
// process-wide). Intended for tests and perf accounting, not control flow.
func ParseCalls() uint64 { return parseCalls.Load() }

// ParseError is a syntax error with a source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser over the supported Verilog subset.
type Parser struct {
	toks []Token
	pos  int
}

// parserPool recycles parsers between Parse calls: the token buffer is the
// parser's only real scratch, and reusing its backing array means
// steady-state parsing lexes into one long-lived slice instead of growing
// a fresh one per source text. The AST only retains Text strings (slices
// of src), never Token values, so releasing the buffer is safe.
var parserPool = sync.Pool{New: func() any { return &Parser{} }}

// release clears the token buffer (dropping the src references it pins)
// and returns the parser to the pool.
func (p *Parser) release() {
	clear(p.toks)
	p.toks = p.toks[:0]
	p.pos = 0
	parserPool.Put(p)
}

// Parse parses a complete source text into a SourceFile.
func Parse(src string) (*SourceFile, error) {
	parseCalls.Add(1)
	p := parserPool.Get().(*Parser)
	defer p.release()
	toks, err := lexInto(p.toks[:0], src)
	p.toks, p.pos = toks, 0
	if err != nil {
		return nil, err
	}
	file := &SourceFile{}
	for !p.atEOF() {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		file.Modules = append(file.Modules, m)
	}
	if len(file.Modules) == 0 {
		return nil, &ParseError{Msg: "no module declaration found"}
	}
	return file, nil
}

// ParseExprString parses a standalone expression (used by tests and the
// mutation engine).
func ParseExprString(src string) (Expr, error) {
	p := parserPool.Get().(*Parser)
	defer p.release()
	toks, err := lexInto(p.toks[:0], src)
	p.toks, p.pos = toks, 0
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		last := Pos{Line: 1, Col: 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: TokEOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *Parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.accept(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) expectKeyword(s string) error {
	if !p.accept(s) {
		return p.errorf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return Token{}, p.errorf("expected identifier, found %s", t)
	}
	p.pos++
	return t, nil
}

// ---- module ------------------------------------------------------------

func (p *Parser) parseModule() (*Module, error) {
	start := p.cur().Pos
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Pos: start, Name: nameTok.Text}

	// optional parameter header: #(parameter A = 1, B = 2)
	if p.accept("#") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		pd := &ParamDecl{Pos: p.cur().Pos}
		for {
			p.accept("parameter") // keyword optional on subsequent items
			pa, err := p.parseParamAssign()
			if err != nil {
				return nil, err
			}
			pd.Params = append(pd.Params, pa)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		m.Items = append(m.Items, pd)
	}

	if p.accept("(") {
		if !p.isPunct(")") {
			if err := p.parsePortList(m); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	for !p.isKeyword("endmodule") {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of input inside module %q", m.Name)
		}
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		if item != nil {
			m.Items = append(m.Items, item)
		}
	}
	p.next() // endmodule
	return m, nil
}

// parsePortList handles both ANSI headers (with directions) and plain
// name lists.
func (p *Parser) parsePortList(m *Module) error {
	ansi := p.isKeyword("input") || p.isKeyword("output") || p.isKeyword("inout")
	if !ansi {
		for {
			t, err := p.expectIdent()
			if err != nil {
				return err
			}
			m.PortNames = append(m.PortNames, t.Text)
			if !p.accept(",") {
				return nil
			}
		}
	}
	// ANSI style: direction groups separated by commas; a new direction
	// keyword starts a new PortDecl.
	var cur *PortDecl
	for {
		if p.isKeyword("input") || p.isKeyword("output") || p.isKeyword("inout") {
			dir := DirInput
			switch p.next().Text {
			case "output":
				dir = DirOutput
			case "inout":
				dir = DirInout
			}
			cur = &PortDecl{Pos: p.cur().Pos, Dir: dir}
			if p.accept("reg") {
				cur.IsReg = true
			} else if p.accept("wire") {
				// explicit wire: default anyway
			}
			if p.accept("signed") {
				cur.Signed = true
			}
			if p.isPunct("[") {
				r, err := p.parseRange()
				if err != nil {
					return err
				}
				cur.Range = r
			}
			m.Items = append(m.Items, cur)
		}
		if cur == nil {
			return p.errorf("expected port direction, found %s", p.cur())
		}
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		cur.Names = append(cur.Names, DeclName{Pos: t.Pos, Name: t.Text})
		m.PortNames = append(m.PortNames, t.Text)
		if !p.accept(",") {
			return nil
		}
	}
}

func (p *Parser) parseRange() (*RangeSpec, error) {
	start := p.cur().Pos
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return &RangeSpec{Pos: start, MSB: msb, LSB: lsb}, nil
}

func (p *Parser) parseParamAssign() (ParamAssign, error) {
	t, err := p.expectIdent()
	if err != nil {
		return ParamAssign{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return ParamAssign{}, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return ParamAssign{}, err
	}
	return ParamAssign{Pos: t.Pos, Name: t.Text, Value: v}, nil
}

// ---- module items ------------------------------------------------------

func (p *Parser) parseItem() (Item, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword:
		switch t.Text {
		case "input", "output", "inout":
			return p.parsePortDeclItem()
		case "wire", "tri", "reg", "integer", "genvar":
			return p.parseNetDecl()
		case "parameter", "localparam":
			return p.parseParamDecl()
		case "assign":
			return p.parseContAssign()
		case "always":
			p.next()
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &AlwaysBlock{Pos: t.Pos, Body: body}, nil
		case "initial":
			p.next()
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &InitialBlock{Pos: t.Pos, Body: body}, nil
		case "function", "task", "generate", "fork", "real", "time",
			"supply0", "supply1", "and", "or", "not", "nand", "nor",
			"xor", "xnor", "buf":
			return nil, p.errorf("unsupported construct %q", t.Text)
		default:
			return nil, p.errorf("unexpected keyword %q", t.Text)
		}
	case t.Kind == TokIdent:
		// module instantiation: Type [#(...)] name ( ... ) ;
		return p.parseInstance()
	case t.Kind == TokPunct && t.Text == ";":
		p.next()
		return nil, nil
	default:
		return nil, p.errorf("unexpected token %s at module level", t)
	}
}

func (p *Parser) parsePortDeclItem() (Item, error) {
	t := p.next()
	dir := DirInput
	switch t.Text {
	case "output":
		dir = DirOutput
	case "inout":
		dir = DirInout
	}
	d := &PortDecl{Pos: t.Pos, Dir: dir}
	if p.accept("reg") {
		d.IsReg = true
	} else {
		p.accept("wire")
	}
	if p.accept("signed") {
		d.Signed = true
	}
	if p.isPunct("[") {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		d.Range = r
	}
	for {
		nt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, DeclName{Pos: nt.Pos, Name: nt.Text})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseNetDecl() (Item, error) {
	t := p.next()
	d := &NetDecl{Pos: t.Pos}
	switch t.Text {
	case "wire", "tri":
		d.Kind = KindWire
	case "reg":
		d.Kind = KindReg
	case "integer", "genvar":
		d.Kind = KindInteger
	}
	if p.accept("signed") {
		d.Signed = true
	}
	if p.isPunct("[") {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		d.Range = r
	}
	for {
		nt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		dn := DeclName{Pos: nt.Pos, Name: nt.Text}
		if p.isPunct("[") {
			r, err := p.parseRange()
			if err != nil {
				return nil, err
			}
			dn.ArrayRange = r
		}
		if p.accept("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			dn.Init = e
		}
		d.Names = append(d.Names, dn)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseParamDecl() (Item, error) {
	t := p.next()
	d := &ParamDecl{Pos: t.Pos, Local: t.Text == "localparam"}
	// optional range or signed, e.g. parameter [1:0] S0 = 0
	p.accept("signed")
	if p.isPunct("[") {
		if _, err := p.parseRange(); err != nil {
			return nil, err
		}
	}
	for {
		pa, err := p.parseParamAssign()
		if err != nil {
			return nil, err
		}
		d.Params = append(d.Params, pa)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseContAssign() (Item, error) {
	t := p.next() // assign
	ca := &ContAssign{Pos: t.Pos}
	for {
		lhs, err := p.parseLValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ca.Assigns = append(ca.Assigns, &Assign{Pos: t.Pos, LHS: lhs, RHS: rhs})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return ca, nil
}

func (p *Parser) parseInstance() (Item, error) {
	mod := p.next()
	inst := &Instance{Pos: mod.Pos, Module: mod.Text}
	if p.accept("#") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		conns, err := p.parseConnList()
		if err != nil {
			return nil, err
		}
		inst.Params = conns
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	inst.Name = nameTok.Text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		conns, err := p.parseConnList()
		if err != nil {
			return nil, err
		}
		inst.Conns = conns
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return inst, nil
}

func (p *Parser) parseConnList() ([]PortConn, error) {
	var conns []PortConn
	for {
		if p.isPunct(".") {
			p.next()
			nt, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var e Expr
			if !p.isPunct(")") {
				var err error
				e, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			conns = append(conns, PortConn{Pos: nt.Pos, Name: nt.Text, Expr: e})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			conns = append(conns, PortConn{Pos: e.NodePos(), Expr: e})
		}
		if !p.accept(",") {
			return conns, nil
		}
	}
}

// ---- statements --------------------------------------------------------

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword:
		switch t.Text {
		case "begin":
			return p.parseBlock()
		case "if":
			return p.parseIf()
		case "case", "casez", "casex":
			return p.parseCase()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "repeat":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			n, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &Repeat{Pos: t.Pos, Count: n, Body: body}, nil
		case "forever":
			p.next()
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return &Forever{Pos: t.Pos, Body: body}, nil
		case "wait":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.parseOptStmt()
			if err != nil {
				return nil, err
			}
			return &Wait{Pos: t.Pos, Cond: cond, Stmt: body}, nil
		default:
			return nil, p.errorf("unexpected keyword %q in statement", t.Text)
		}
	case t.Kind == TokPunct && t.Text == "#":
		p.next()
		amt, err := p.parseDelayAmount()
		if err != nil {
			return nil, err
		}
		body, err := p.parseOptStmt()
		if err != nil {
			return nil, err
		}
		return &Delay{Pos: t.Pos, Amount: amt, Stmt: body}, nil
	case t.Kind == TokPunct && t.Text == "@":
		p.next()
		ec := &EventCtrl{Pos: t.Pos}
		if p.accept("*") {
			ec.Star = true
		} else {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if p.accept("*") {
				ec.Star = true
			} else {
				for {
					item, err := p.parseEventItem()
					if err != nil {
						return nil, err
					}
					ec.Events = append(ec.Events, item)
					if !p.accept(",") && !p.accept("or") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseOptStmt()
		if err != nil {
			return nil, err
		}
		ec.Stmt = body
		return ec, nil
	case t.Kind == TokPunct && t.Text == ";":
		p.next()
		return &Null{Pos: t.Pos}, nil
	case t.Kind == TokSysName:
		p.next()
		sc := &SysCall{Pos: t.Pos, Name: t.Text}
		if p.accept("(") {
			if !p.isPunct(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					sc.Args = append(sc.Args, e)
					if !p.accept(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return sc, nil
	case t.Kind == TokIdent || (t.Kind == TokPunct && t.Text == "{"):
		return p.parseAssignStmt()
	default:
		return nil, p.errorf("unexpected token %s in statement", t)
	}
}

// parseOptStmt parses the statement controlled by a delay or event control;
// a following ';' means a null statement.
func (p *Parser) parseOptStmt() (Stmt, error) {
	if p.isPunct(";") {
		t := p.next()
		return &Null{Pos: t.Pos}, nil
	}
	return p.parseStmt()
}

func (p *Parser) parseDelayAmount() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		return p.parsePrimary()
	case t.Kind == TokIdent:
		p.next()
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("expected delay amount, found %s", t)
	}
}

func (p *Parser) parseEventItem() (EventItem, error) {
	t := p.cur()
	item := EventItem{Pos: t.Pos, Edge: EdgeAny}
	if p.accept("posedge") {
		item.Edge = EdgePos
	} else if p.accept("negedge") {
		item.Edge = EdgeNeg
	}
	e, err := p.parseExpr()
	if err != nil {
		return EventItem{}, err
	}
	item.X = e
	return item, nil
}

func (p *Parser) parseBlock() (Stmt, error) {
	t := p.next() // begin
	b := &Block{Pos: t.Pos}
	if p.accept(":") {
		nt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		b.Name = nt.Text
	}
	for !p.isKeyword("end") {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of input in begin/end block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // end
	return b, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseOptStmt()
	if err != nil {
		return nil, err
	}
	node := &If{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept("else") {
		els, err := p.parseOptStmt()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *Parser) parseCase() (Stmt, error) {
	t := p.next()
	kind := CaseExact
	switch t.Text {
	case "casez":
		kind = CaseZ
	case "casex":
		kind = CaseX
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	node := &Case{Pos: t.Pos, Kind: kind, Expr: sel}
	for !p.isKeyword("endcase") {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of input in case statement")
		}
		item := CaseItem{Pos: p.cur().Pos}
		if p.accept("default") {
			p.accept(":")
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Exprs = append(item.Exprs, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseOptStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		node.Items = append(node.Items, item)
	}
	p.next() // endcase
	return node, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	init, err := p.parseSimpleAssign()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	step, err := p.parseSimpleAssign()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &For{Pos: t.Pos, Init: init, Cond: cond, Step: step, Body: body}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next()
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{Pos: t.Pos, Cond: cond, Body: body}, nil
}

// parseSimpleAssign parses "lvalue = expr" without the trailing semicolon
// (for-loop headers).
func (p *Parser) parseSimpleAssign() (*Assign, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Assign{Pos: lhs.NodePos(), LHS: lhs, RHS: rhs}, nil
}

func (p *Parser) parseAssignStmt() (Stmt, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	nb := false
	switch {
	case p.accept("="):
	case p.accept("<="):
		nb = true
	default:
		return nil, p.errorf("expected '=' or '<=', found %s", p.cur())
	}
	// optional intra-assignment delay: a = #5 expr;
	var delay Expr
	if p.accept("#") {
		delay, err = p.parseDelayAmount()
		if err != nil {
			return nil, err
		}
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	as := &Assign{Pos: lhs.NodePos(), LHS: lhs, RHS: rhs, NonBlocking: nb}
	if delay != nil {
		// model intra-assignment delay as delay-then-assign: adequate for
		// the subset (no race-sensitive TB uses it)
		return &Delay{Pos: as.Pos, Amount: delay, Stmt: as}, nil
	}
	return as, nil
}

// parseLValue parses an assignment target: identifier with optional
// selects, or a concatenation of lvalues.
func (p *Parser) parseLValue() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct && t.Text == "{" {
		p.next()
		c := &Concat{Pos: t.Pos}
		for {
			e, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	if t.Kind != TokIdent {
		return nil, p.errorf("expected lvalue, found %s", t)
	}
	p.next()
	var e Expr = &Ident{Pos: t.Pos, Name: t.Text}
	return p.parsePostfixSelects(e)
}

func (p *Parser) parsePostfixSelects(e Expr) (Expr, error) {
	for p.isPunct("[") {
		open := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &RangeSel{Pos: open.Pos, X: e, MSB: first, LSB: lsb}
		} else {
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &Index{Pos: open.Pos, X: e, I: first}
		}
	}
	return e, nil
}

// ---- expressions -------------------------------------------------------

// binary operator precedence levels, lowest first
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^", "~^", "^~"},
	{"&"},
	{"==", "!=", "===", "!=="},
	{"<", "<=", ">", ">="},
	{"<<", ">>", ">>>", "<<<"},
	{"+", "-"},
	{"*", "/", "%"},
	{"**"},
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	q := p.next()
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Pos: q.Pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		matched := false
		for _, op := range binLevels[level] {
			if t.Text == op {
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: t.Pos, Op: t.Text, X: lhs, Y: rhs}
	}
}

var unaryOps = map[string]bool{
	"+": true, "-": true, "!": true, "~": true,
	"&": true, "|": true, "^": true, "~&": true, "~|": true, "~^": true, "^~": true,
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct && unaryOps[t.Text] {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: t.Text, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		text := t.Text
		// glue "4" + "'b1010" written with a space
		if !strings.ContainsRune(text, '\'') && p.cur().Kind == TokNumber &&
			strings.HasPrefix(p.cur().Text, "'") {
			text += p.next().Text
		}
		v, err := vnum.ParseLiteral(text)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: err.Error()}
		}
		return &Number{Pos: t.Pos, Text: text, Value: v}, nil

	case t.Kind == TokString:
		p.next()
		return &Str{Pos: t.Pos, Text: t.Text}, nil

	case t.Kind == TokSysName:
		p.next()
		sc := &SysCallExpr{Pos: t.Pos, Name: t.Text}
		if p.accept("(") {
			if !p.isPunct(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					sc.Args = append(sc.Args, e)
					if !p.accept(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		return sc, nil

	case t.Kind == TokIdent:
		p.next()
		var e Expr = &Ident{Pos: t.Pos, Name: t.Text}
		return p.parsePostfixSelects(e)

	case t.Kind == TokPunct && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokPunct && t.Text == "{":
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// replication: {N{expr}}
		if p.isPunct("{") {
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return &Repl{Pos: t.Pos, Count: first, X: inner}, nil
		}
		c := &Concat{Pos: t.Pos, Parts: []Expr{first}}
		for p.accept(",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return c, nil

	default:
		return nil, p.errorf("unexpected token %s in expression", t)
	}
}
