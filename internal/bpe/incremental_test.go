package bpe

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// naiveMerges is the pre-optimization Train loop: recount every adjacent
// pair from scratch each iteration. Kept here as the reference the
// incremental pair accounting must reproduce merge-for-merge.
func naiveMerges(corpus []string, vocabSize int) []merge {
	wordFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range strings.Fields(doc) {
			wordFreq[w]++
		}
	}
	type wordState struct {
		parts []string
		freq  int
	}
	var words []*wordState
	for w, f := range wordFreq {
		parts := make([]string, 0, len(w))
		for _, b := range []byte(w) {
			parts = append(parts, string(rune(b)))
		}
		words = append(words, &wordState{parts: parts, freq: f})
	}
	sort.Slice(words, func(i, j int) bool {
		return strings.Join(words[i].parts, "") < strings.Join(words[j].parts, "")
	})

	var merges []merge
	target := vocabSize - 256
	for len(merges) < target {
		counts := map[pairKey]int{}
		for _, ws := range words {
			for i := 0; i+1 < len(ws.parts); i++ {
				counts[pairKey{ws.parts[i], ws.parts[i+1]}] += ws.freq
			}
		}
		if len(counts) == 0 {
			break
		}
		best := pairKey{}
		bestCount := 0
		for k, c := range counts {
			if c > bestCount || (c == bestCount && lessPair(k, best)) {
				best, bestCount = k, c
			}
		}
		if bestCount < 2 {
			break
		}
		merges = append(merges, merge{left: best.left, right: best.right})
		for _, ws := range words {
			ws.parts = applyMerge(ws.parts, best)
		}
	}
	return merges
}

func randomDoc(rng *rand.Rand) string {
	vocabulary := []string{
		"module", "endmodule", "assign", "always", "posedge", "clk",
		"input", "output", "reg", "wire", "begin", "end", "if", "else",
		"q", "d", "reset", "<=", "=", "@", "(", ")", ";", "4'b0101",
	}
	var sb strings.Builder
	n := 20 + rng.Intn(60)
	for i := 0; i < n; i++ {
		sb.WriteString(vocabulary[rng.Intn(len(vocabulary))])
		sb.WriteByte(' ')
	}
	return sb.String()
}

// TestIncrementalMatchesNaive verifies the incremental pair accounting is
// an exact optimization: identical merge tables (order included) and
// identical encodings across corpora and vocab sizes.
func TestIncrementalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		var corpus []string
		for i := 0; i < 5+trial*5; i++ {
			corpus = append(corpus, randomDoc(rng))
		}
		vocab := 300 + 100*trial
		tok := Train(corpus, vocab)
		want := naiveMerges(corpus, vocab)
		if len(tok.merges) != len(want) {
			t.Fatalf("trial %d: %d merges, naive %d", trial, len(tok.merges), len(want))
		}
		for i := range want {
			if tok.merges[i] != want[i] {
				t.Fatalf("trial %d merge %d: %+v != naive %+v", trial, i, tok.merges[i], want[i])
			}
		}
		for _, doc := range corpus[:2] {
			ids := tok.Encode(doc)
			if tok.Decode(ids) != doc {
				t.Fatalf("trial %d: round-trip broken", trial)
			}
		}
	}
}

// TestIncrementalDegenerateCorpora covers the loop's exit conditions.
func TestIncrementalDegenerateCorpora(t *testing.T) {
	if tok := Train(nil, 512); tok.NumMerges() != 0 {
		t.Error("empty corpus should learn no merges")
	}
	// single-character words: no adjacent pairs at all
	if tok := Train([]string{"a b c d"}, 512); tok.NumMerges() != 0 {
		t.Error("pairless corpus should learn no merges")
	}
	// every pair unique: bestCount < 2 stops immediately
	if tok := Train([]string{"ab"}, 512); tok.NumMerges() != 0 {
		t.Error("frequency-1 pairs are unproductive")
	}
}
