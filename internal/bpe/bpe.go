// Package bpe implements a trainable byte-pair encoder (Gage 1994, as used
// by the paper's LLM tokenizers). Training learns merge rules from a
// corpus; encoding applies them greedily in learned order. The paper's
// models consume prompts as BPE token streams and are budgeted in tokens
// (max_tokens 300/256), so the evaluation pipeline needs a real tokenizer
// to reproduce truncation behaviour.
//
// Both training and encoding work over token ids, not token strings: the
// merge table is a rank map keyed by packed (left-id, right-id) pairs, and
// the pair-merge loop rewrites a reusable []int32 in place. EncodeInto is
// the allocation-free entry point for callers that hold a destination
// buffer; Encode wraps it.
package bpe

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tokenizer is a trained byte-pair encoder.
type Tokenizer struct {
	merges   []merge          // learned merge rules, in application order
	vocab    map[string]int   // token string -> id
	tokens   []string         // id -> token string
	rank     map[pairKey]int  // string merge pair -> rank (reference path)
	idRank   map[uint64]int32 // packed id pair -> rank (hot encode path)
	mergedID []int32          // rank -> merged token id
}

type merge struct {
	left, right string
}

type pairKey struct {
	left, right string
}

// pairID packs an adjacent token-id pair into one map key. Token ids are
// vocabulary indices, so they always fit 32 bits.
func pairID(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// Train learns up to vocabSize-256 merges from the corpus. The initial
// vocabulary is the 256 single bytes; words are split on whitespace with a
// word-boundary marker so merges never cross words.
func Train(corpus []string, vocabSize int) *Tokenizer {
	t := &Tokenizer{
		vocab:  map[string]int{},
		rank:   map[pairKey]int{},
		idRank: map[uint64]int32{},
	}
	for i := 0; i < 256; i++ {
		tok := string(rune(i))
		t.vocab[tok] = i
		t.tokens = append(t.tokens, tok)
	}

	// word frequency table
	wordFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range strings.Fields(doc) {
			wordFreq[w]++
		}
	}
	type wordState struct {
		parts []int32
		key   string // single-byte-token expansion; the deterministic sort key
		freq  int
	}
	var words []*wordState
	for w, f := range wordFreq {
		parts := make([]int32, len(w))
		var kb strings.Builder
		for i := 0; i < len(w); i++ {
			parts[i] = int32(w[i])
			kb.WriteRune(rune(w[i]))
		}
		words = append(words, &wordState{parts: parts, key: kb.String(), freq: f})
	}
	// deterministic iteration
	sort.Slice(words, func(i, j int) bool { return words[i].key < words[j].key })

	// Incremental pair accounting: counts holds the exact adjacent-pair
	// totals (zero entries deleted), and occurs indexes which words
	// currently contain each pair. A merge then only re-counts the touched
	// words instead of rescanning the whole corpus per iteration.
	counts := map[uint64]int{}
	occurs := map[uint64]map[int]struct{}{}
	addWord := func(idx int) {
		ws := words[idx]
		for i := 0; i+1 < len(ws.parts); i++ {
			k := pairID(ws.parts[i], ws.parts[i+1])
			counts[k] += ws.freq
			set, ok := occurs[k]
			if !ok {
				set = map[int]struct{}{}
				occurs[k] = set
			}
			set[idx] = struct{}{}
		}
	}
	removeWord := func(idx int) {
		ws := words[idx]
		for i := 0; i+1 < len(ws.parts); i++ {
			k := pairID(ws.parts[i], ws.parts[i+1])
			counts[k] -= ws.freq
			if counts[k] <= 0 {
				delete(counts, k)
			}
			if set := occurs[k]; set != nil {
				delete(set, idx)
				if len(set) == 0 {
					delete(occurs, k)
				}
			}
		}
	}
	for i := range words {
		addWord(i)
	}

	// lessID is the tie-break order on equal counts: lexicographic over the
	// pair's token strings, matching the string-keyed reference loop.
	lessID := func(a, b uint64) bool {
		al, bl := t.tokens[a>>32], t.tokens[b>>32]
		if al != bl {
			return al < bl
		}
		return t.tokens[uint32(a)] < t.tokens[uint32(b)]
	}

	target := vocabSize - 256
	for len(t.merges) < target {
		if len(counts) == 0 {
			break
		}
		best := uint64(0)
		bestCount := 0
		//vgencheck:ordered argmax with a total tie-break on (count, token-pair strings) picks the same winner in any iteration order
		for k, c := range counts {
			if c > bestCount || (c == bestCount && lessID(k, best)) {
				best, bestCount = k, c
			}
		}
		if bestCount < 2 {
			break // no productive merges left
		}
		left, right := t.tokens[best>>32], t.tokens[uint32(best)]
		t.rank[pairKey{left, right}] = len(t.merges)
		t.idRank[best] = int32(len(t.merges))
		t.merges = append(t.merges, merge{left: left, right: right})
		joined := left + right
		id, ok := t.vocab[joined]
		if !ok {
			id = len(t.tokens)
			t.vocab[joined] = id
			t.tokens = append(t.tokens, joined)
		}
		t.mergedID = append(t.mergedID, int32(id))
		// apply the merge to the touched words only, updating counts around
		// each rewrite (removeWord mutates occurs[best], so snapshot first)
		touched := make([]int, 0, len(occurs[best]))
		for idx := range occurs[best] {
			touched = append(touched, idx)
		}
		// The count/occurrence updates below are commutative, so rewrite
		// order cannot change the trained result — but sorted order keeps
		// the intermediate count states identical run to run, which is
		// what the incremental-vs-naive differential test diffs against.
		sort.Ints(touched)
		for _, idx := range touched {
			removeWord(idx)
			words[idx].parts = mergePairInPlace(words[idx].parts, best, int32(id))
			addWord(idx)
		}
	}
	return t
}

func lessPair(a, b pairKey) bool {
	if a.left != b.left {
		return a.left < b.left
	}
	return a.right < b.right
}

// applyMerge rewrites a string part list under one merge rule. The
// production paths run id-based (mergePairInPlace); this survives as the
// reference the naive-equivalence test rebuilds training with.
func applyMerge(parts []string, m pairKey) []string {
	out := parts[:0]
	i := 0
	for i < len(parts) {
		if i+1 < len(parts) && parts[i] == m.left && parts[i+1] == m.right {
			out = append(out, m.left+m.right)
			i += 2
		} else {
			out = append(out, parts[i])
			i++
		}
	}
	return out
}

// mergePairInPlace rewrites every non-overlapping occurrence of the pair,
// left to right, into the merged id — in place on the part list's backing
// array (the write index never passes the read index).
func mergePairInPlace(parts []int32, pair uint64, merged int32) []int32 {
	l, r := int32(pair>>32), int32(uint32(pair))
	out := parts[:0]
	i := 0
	for i < len(parts) {
		if i+1 < len(parts) && parts[i] == l && parts[i+1] == r {
			out = append(out, merged)
			i += 2
		} else {
			out = append(out, parts[i])
			i++
		}
	}
	return out
}

// VocabSize returns the number of distinct tokens.
func (t *Tokenizer) VocabSize() int { return len(t.tokens) }

// NumMerges returns the number of learned merge rules.
func (t *Tokenizer) NumMerges() int { return len(t.merges) }

// Token returns the string form of a token id.
func (t *Tokenizer) Token(id int) (string, bool) {
	if id < 0 || id >= len(t.tokens) {
		return "", false
	}
	return t.tokens[id], true
}

// wordScratch pools the per-word part buffers the encode loop merges in
// place, so steady-state encoding allocates nothing per word.
var wordScratch = sync.Pool{New: func() any {
	s := make([]int32, 0, 64)
	return &s
}}

// appendWord BPE-encodes a single whitespace-free word onto dst.
//
// Each outer iteration finds the lowest-rank adjacent pair and merges all
// its non-overlapping occurrences left to right. That is exactly the
// classic one-occurrence-per-iteration loop collapsed: ranks are unique,
// and a merge can only create pairs containing the merged token, whose
// rules were necessarily learned later (higher rank) — so while any
// occurrence of the best pair remains, it stays the best pair.
func (t *Tokenizer) appendWord(dst []int, w string) []int {
	sp := wordScratch.Get().(*[]int32)
	parts := (*sp)[:0]
	for i := 0; i < len(w); i++ {
		parts = append(parts, int32(w[i]))
	}
	for {
		bestRank := int32(-1)
		bestPair := uint64(0)
		for i := 0; i+1 < len(parts); i++ {
			if r, ok := t.idRank[pairID(parts[i], parts[i+1])]; ok && (bestRank < 0 || r < bestRank) {
				bestRank, bestPair = r, pairID(parts[i], parts[i+1])
			}
		}
		if bestRank < 0 {
			break
		}
		parts = mergePairInPlace(parts, bestPair, t.mergedID[bestRank])
	}
	for _, p := range parts {
		dst = append(dst, int(p))
	}
	*sp = parts
	wordScratch.Put(sp)
	return dst
}

// EncodeWord BPE-encodes a single whitespace-free word.
func (t *Tokenizer) EncodeWord(w string) []int {
	return t.appendWord(nil, w)
}

// Encode tokenizes text: words are BPE-encoded, and single whitespace
// separators are preserved as byte tokens so decoding round-trips.
func (t *Tokenizer) Encode(text string) []int {
	return t.EncodeInto(nil, text)
}

// EncodeInto appends the token ids of text onto dst and returns the
// extended slice — the zero-allocation entry point for callers that reuse
// a buffer across calls (pass dst[:0] to overwrite).
func (t *Tokenizer) EncodeInto(dst []int, text string) []int {
	i := 0
	for i < len(text) {
		j := i
		for j < len(text) && !isSpace(text[j]) {
			j++
		}
		if j > i {
			dst = t.appendWord(dst, text[i:j])
			i = j
		}
		for i < len(text) && isSpace(text[i]) {
			dst = append(dst, int(text[i]))
			i++
		}
	}
	return dst
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// Decode reconstructs text from token ids; unknown ids render as U+FFFD.
func (t *Tokenizer) Decode(ids []int) string {
	size := 0
	for _, id := range ids {
		if id >= 0 && id < len(t.tokens) {
			size += len(t.tokens[id])
		} else {
			size += len("�")
		}
	}
	var sb strings.Builder
	sb.Grow(size)
	for _, id := range ids {
		if tok, ok := t.Token(id); ok {
			sb.WriteString(tok)
		} else {
			sb.WriteRune('�')
		}
	}
	return sb.String()
}

// Truncate returns the prefix of text that fits within maxTokens tokens —
// the max_tokens cut an LLM API applies to a completion.
func (t *Tokenizer) Truncate(text string, maxTokens int) string {
	ids := t.Encode(text)
	if len(ids) <= maxTokens {
		return text
	}
	return t.Decode(ids[:maxTokens])
}

// Dump serializes the merge table (for inspection and tests).
func (t *Tokenizer) Dump() string {
	var sb strings.Builder
	for i, m := range t.merges {
		fmt.Fprintf(&sb, "%d\t%q %q\n", i, m.left, m.right)
	}
	return sb.String()
}
