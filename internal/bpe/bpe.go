// Package bpe implements a trainable byte-pair encoder (Gage 1994, as used
// by the paper's LLM tokenizers). Training learns merge rules from a
// corpus; encoding applies them greedily in learned order. The paper's
// models consume prompts as BPE token streams and are budgeted in tokens
// (max_tokens 300/256), so the evaluation pipeline needs a real tokenizer
// to reproduce truncation behaviour.
package bpe

import (
	"fmt"
	"sort"
	"strings"
)

// Tokenizer is a trained byte-pair encoder.
type Tokenizer struct {
	merges []merge         // learned merge rules, in application order
	vocab  map[string]int  // token string -> id
	tokens []string        // id -> token string
	rank   map[pairKey]int // merge pair -> rank (lower applies first)
}

type merge struct {
	left, right string
}

type pairKey struct {
	left, right string
}

// Train learns up to vocabSize-256 merges from the corpus. The initial
// vocabulary is the 256 single bytes; words are split on whitespace with a
// word-boundary marker so merges never cross words.
func Train(corpus []string, vocabSize int) *Tokenizer {
	t := &Tokenizer{
		vocab: map[string]int{},
		rank:  map[pairKey]int{},
	}
	for i := 0; i < 256; i++ {
		tok := string(rune(i))
		t.vocab[tok] = i
		t.tokens = append(t.tokens, tok)
	}

	// word frequency table
	wordFreq := map[string]int{}
	for _, doc := range corpus {
		for _, w := range strings.Fields(doc) {
			wordFreq[w]++
		}
	}
	type wordState struct {
		parts []string
		freq  int
	}
	var words []*wordState
	for w, f := range wordFreq {
		parts := make([]string, 0, len(w))
		for _, b := range []byte(w) {
			parts = append(parts, string(rune(b)))
		}
		words = append(words, &wordState{parts: parts, freq: f})
	}
	// deterministic iteration
	sort.Slice(words, func(i, j int) bool {
		return strings.Join(words[i].parts, "") < strings.Join(words[j].parts, "")
	})

	// Incremental pair accounting: counts holds the exact adjacent-pair
	// totals (zero entries deleted), and occurs indexes which words
	// currently contain each pair. A merge then only re-counts the touched
	// words instead of rescanning the whole corpus per iteration.
	counts := map[pairKey]int{}
	occurs := map[pairKey]map[int]struct{}{}
	addWord := func(idx int) {
		ws := words[idx]
		for i := 0; i+1 < len(ws.parts); i++ {
			k := pairKey{ws.parts[i], ws.parts[i+1]}
			counts[k] += ws.freq
			set, ok := occurs[k]
			if !ok {
				set = map[int]struct{}{}
				occurs[k] = set
			}
			set[idx] = struct{}{}
		}
	}
	removeWord := func(idx int) {
		ws := words[idx]
		for i := 0; i+1 < len(ws.parts); i++ {
			k := pairKey{ws.parts[i], ws.parts[i+1]}
			counts[k] -= ws.freq
			if counts[k] <= 0 {
				delete(counts, k)
			}
			if set := occurs[k]; set != nil {
				delete(set, idx)
				if len(set) == 0 {
					delete(occurs, k)
				}
			}
		}
	}
	for i := range words {
		addWord(i)
	}

	target := vocabSize - 256
	for len(t.merges) < target {
		if len(counts) == 0 {
			break
		}
		best := pairKey{}
		bestCount := 0
		for k, c := range counts {
			if c > bestCount || (c == bestCount && lessPair(k, best)) {
				best, bestCount = k, c
			}
		}
		if bestCount < 2 {
			break // no productive merges left
		}
		t.rank[best] = len(t.merges)
		t.merges = append(t.merges, merge{left: best.left, right: best.right})
		joined := best.left + best.right
		if _, ok := t.vocab[joined]; !ok {
			t.vocab[joined] = len(t.tokens)
			t.tokens = append(t.tokens, joined)
		}
		// apply the merge to the touched words only, updating counts around
		// each rewrite (removeWord mutates occurs[best], so snapshot first)
		touched := make([]int, 0, len(occurs[best]))
		for idx := range occurs[best] {
			touched = append(touched, idx)
		}
		for _, idx := range touched {
			removeWord(idx)
			words[idx].parts = applyMerge(words[idx].parts, best)
			addWord(idx)
		}
	}
	return t
}

func lessPair(a, b pairKey) bool {
	if a.left != b.left {
		return a.left < b.left
	}
	return a.right < b.right
}

func applyMerge(parts []string, m pairKey) []string {
	out := parts[:0]
	i := 0
	for i < len(parts) {
		if i+1 < len(parts) && parts[i] == m.left && parts[i+1] == m.right {
			out = append(out, m.left+m.right)
			i += 2
		} else {
			out = append(out, parts[i])
			i++
		}
	}
	return out
}

// VocabSize returns the number of distinct tokens.
func (t *Tokenizer) VocabSize() int { return len(t.tokens) }

// NumMerges returns the number of learned merge rules.
func (t *Tokenizer) NumMerges() int { return len(t.merges) }

// Token returns the string form of a token id.
func (t *Tokenizer) Token(id int) (string, bool) {
	if id < 0 || id >= len(t.tokens) {
		return "", false
	}
	return t.tokens[id], true
}

// EncodeWord BPE-encodes a single whitespace-free word.
func (t *Tokenizer) EncodeWord(w string) []int {
	if w == "" {
		return nil
	}
	parts := make([]string, 0, len(w))
	for _, b := range []byte(w) {
		parts = append(parts, string(rune(b)))
	}
	for {
		bestRank := -1
		bestAt := -1
		for i := 0; i+1 < len(parts); i++ {
			if r, ok := t.rank[pairKey{parts[i], parts[i+1]}]; ok {
				if bestRank < 0 || r < bestRank {
					bestRank, bestAt = r, i
				}
			}
		}
		if bestAt < 0 {
			break
		}
		parts = append(parts[:bestAt], append([]string{parts[bestAt] + parts[bestAt+1]}, parts[bestAt+2:]...)...)
	}
	ids := make([]int, len(parts))
	for i, p := range parts {
		ids[i] = t.vocab[p]
	}
	return ids
}

// Encode tokenizes text: words are BPE-encoded, and single whitespace
// separators are preserved as byte tokens so decoding round-trips.
func (t *Tokenizer) Encode(text string) []int {
	var ids []int
	i := 0
	for i < len(text) {
		j := i
		for j < len(text) && !isSpace(text[j]) {
			j++
		}
		if j > i {
			ids = append(ids, t.EncodeWord(text[i:j])...)
			i = j
		}
		for i < len(text) && isSpace(text[i]) {
			ids = append(ids, int(text[i]))
			i++
		}
	}
	return ids
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// Decode reconstructs text from token ids; unknown ids render as U+FFFD.
func (t *Tokenizer) Decode(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		if tok, ok := t.Token(id); ok {
			sb.WriteString(tok)
		} else {
			sb.WriteRune('�')
		}
	}
	return sb.String()
}

// Truncate returns the prefix of text that fits within maxTokens tokens —
// the max_tokens cut an LLM API applies to a completion.
func (t *Tokenizer) Truncate(text string, maxTokens int) string {
	ids := t.Encode(text)
	if len(ids) <= maxTokens {
		return text
	}
	return t.Decode(ids[:maxTokens])
}

// Dump serializes the merge table (for inspection and tests).
func (t *Tokenizer) Dump() string {
	var sb strings.Builder
	for i, m := range t.merges {
		fmt.Fprintf(&sb, "%d\t%q %q\n", i, m.left, m.right)
	}
	return sb.String()
}
