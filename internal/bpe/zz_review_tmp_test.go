package bpe

import (
	"fmt"
	"math/rand"
	"testing"
)

// Temporary review check: search random corpora for divergence between the
// collapsed merge loop (Encode) and the one-occurrence-per-iteration
// reference (encodeReference).
func TestZZReviewCollapsedLoopEquivalence(t *testing.T) {
	letters := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(1))
	randWord := func() string {
		n := 1 + rng.Intn(6)
		w := ""
		for i := 0; i < n; i++ {
			w += letters[rng.Intn(len(letters))]
		}
		return w
	}
	for trial := 0; trial < 20000; trial++ {
		var corpus []string
		nw := 2 + rng.Intn(8)
		doc := ""
		for i := 0; i < nw; i++ {
			rep := 1 + rng.Intn(4)
			w := randWord()
			for r := 0; r < rep; r++ {
				doc += w + " "
			}
		}
		corpus = append(corpus, doc)
		tok := Train(corpus, 256+2+rng.Intn(12))
		for probe := 0; probe < 30; probe++ {
			w := randWord() + randWord()
			got := tok.Encode(w)
			want := tok.encodeReference(w)
			if !equalIDs(got, want) {
				t.Fatalf("trial %d: corpus=%q vocab merges=%d word=%q got=%v want=%v tokens: %v",
					trial, doc, tok.NumMerges(), w, got, want, tok.merges)
			}
		}
		_ = fmt.Sprint
	}
}
