package bpe

import (
	"math/rand"
	"testing"
)

// encodeWordReference is the pre-optimization string-slice EncodeWord:
// rebuild the part list per merge, one occurrence per iteration. Kept as
// the reference the id-based in-place loop must reproduce token-for-token.
func (t *Tokenizer) encodeWordReference(w string) []int {
	if w == "" {
		return nil
	}
	parts := make([]string, 0, len(w))
	for _, b := range []byte(w) {
		parts = append(parts, string(rune(b)))
	}
	for {
		bestRank := -1
		bestAt := -1
		for i := 0; i+1 < len(parts); i++ {
			if r, ok := t.rank[pairKey{parts[i], parts[i+1]}]; ok {
				if bestRank < 0 || r < bestRank {
					bestRank, bestAt = r, i
				}
			}
		}
		if bestAt < 0 {
			break
		}
		parts = append(parts[:bestAt], append([]string{parts[bestAt] + parts[bestAt+1]}, parts[bestAt+2:]...)...)
	}
	ids := make([]int, len(parts))
	for i, p := range parts {
		ids[i] = t.vocab[p]
	}
	return ids
}

func (t *Tokenizer) encodeReference(text string) []int {
	var ids []int
	i := 0
	for i < len(text) {
		j := i
		for j < len(text) && !isSpace(text[j]) {
			j++
		}
		if j > i {
			ids = append(ids, t.encodeWordReference(text[i:j])...)
			i = j
		}
		for i < len(text) && isSpace(text[i]) {
			ids = append(ids, int(text[i]))
			i++
		}
	}
	return ids
}

var equivalenceCorpus = []string{
	"module counter ( input clk , input reset , output reg q ) ;",
	"always @ ( posedge clk ) begin q <= q + 1 ; end endmodule",
	"assign y = a & b ; assign z = a | b ;",
	"aaab aaab aaab ab ab aaaa aaaaaa",
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEncodeIntoMatchesReference pins the id-based encode path against
// the string-slice reference on trained and untrained tokenizers, and
// checks EncodeInto's append contract.
func TestEncodeIntoMatchesReference(t *testing.T) {
	for _, vocab := range []int{256, 280, 400} {
		tok := Train(equivalenceCorpus, vocab)
		for _, doc := range append(equivalenceCorpus,
			"", " ", "unseen_word never trained \t on", "aaabaaab aaab") {
			want := tok.encodeReference(doc)
			if got := tok.Encode(doc); !equalIDs(got, want) {
				t.Fatalf("vocab %d: Encode(%q) = %v, reference %v", vocab, doc, got, want)
			}
			dst := []int{7, 8, 9}
			out := tok.EncodeInto(dst, doc)
			if !equalIDs(out[:3], []int{7, 8, 9}) || !equalIDs(out[3:], want) {
				t.Fatalf("vocab %d: EncodeInto append broke: %v", vocab, out)
			}
		}
	}
}

// TestEncodeIntoReuseStable checks the buffer-reuse pattern the hot paths
// use: encoding into buf[:0] repeatedly yields stable results.
func TestEncodeIntoReuseStable(t *testing.T) {
	tok := Train(equivalenceCorpus, 320)
	var buf []int
	first := append([]int(nil), tok.Encode(equivalenceCorpus[1])...)
	for i := 0; i < 10; i++ {
		buf = tok.EncodeInto(buf[:0], equivalenceCorpus[1])
		if !equalIDs(buf, first) {
			t.Fatalf("iteration %d drifted: %v vs %v", i, buf, first)
		}
	}
}

// FuzzEncodeIntoEquivalence fuzzes arbitrary byte strings through both
// encode implementations and requires identical id streams.
func FuzzEncodeIntoEquivalence(f *testing.F) {
	tok := Train(equivalenceCorpus, 380)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		f.Add(equivalenceCorpus[i%len(equivalenceCorpus)][rng.Intn(10):])
	}
	f.Add("a\xff\xfe binary \x00 soup")
	f.Add("   \t\r\n  ")
	f.Fuzz(func(t *testing.T, text string) {
		got := tok.Encode(text)
		want := tok.encodeReference(text)
		if !equalIDs(got, want) {
			t.Fatalf("Encode(%q) = %v, reference %v", text, got, want)
		}
		var buf []int
		if into := tok.EncodeInto(buf, text); !equalIDs(into, want) {
			t.Fatalf("EncodeInto(%q) = %v, reference %v", text, into, want)
		}
	})
}
