package bpe

import (
	"math/rand"
	"strings"
	"testing"
)

var tinyCorpus = []string{
	"module counter ( input clk , input reset , output reg q ) ;",
	"module counter2 ( input clk , input reset , output reg q ) ;",
	"always @ ( posedge clk ) begin q <= q + 1 ; end endmodule",
	"always @ ( posedge clk ) begin if ( reset ) q <= 0 ; end endmodule",
	"assign y = a & b ; assign z = a | b ;",
}

func TestTrainLearnsMerges(t *testing.T) {
	tok := Train(tinyCorpus, 300)
	if tok.NumMerges() == 0 {
		t.Fatal("no merges learned")
	}
	if tok.VocabSize() <= 256 {
		t.Fatal("vocabulary did not grow")
	}
	if tok.VocabSize() > 300 {
		t.Fatalf("vocab exceeded limit: %d", tok.VocabSize())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tok := Train(tinyCorpus, 320)
	for _, doc := range tinyCorpus {
		ids := tok.Encode(doc)
		if got := tok.Decode(ids); got != doc {
			t.Errorf("round trip failed:\n in=%q\nout=%q", doc, got)
		}
	}
	// text with unseen words still round-trips (byte fallback)
	s := "module never_seen_before (input weird);"
	if got := tok.Decode(tok.Encode(s)); got != s {
		t.Errorf("fallback round trip failed: %q", got)
	}
}

func TestCompressionOnDomainText(t *testing.T) {
	tok := Train(tinyCorpus, 400)
	text := "always @ ( posedge clk ) begin q <= q + 1 ; end"
	ids := tok.Encode(text)
	if len(ids) >= len(text) {
		t.Errorf("no compression: %d tokens for %d bytes", len(ids), len(text))
	}
}

func TestTruncate(t *testing.T) {
	tok := Train(tinyCorpus, 300)
	text := strings.Repeat("assign y = a & b ; ", 50)
	short := tok.Truncate(text, 10)
	if len(tok.Encode(short)) > 10 {
		t.Fatalf("truncated text still has %d tokens", len(tok.Encode(short)))
	}
	if !strings.HasPrefix(text, short) {
		t.Fatal("truncation is not a prefix")
	}
	if tok.Truncate("short", 100) != "short" {
		t.Fatal("under-limit text modified")
	}
}

func TestDeterministicTraining(t *testing.T) {
	a := Train(tinyCorpus, 300)
	b := Train(tinyCorpus, 300)
	if a.Dump() != b.Dump() {
		t.Fatal("training is not deterministic")
	}
}

func TestEncodeWordGreedyOrder(t *testing.T) {
	tok := Train([]string{"aaab aaab aaab ab ab"}, 260)
	ids := tok.EncodeWord("aaab")
	if got := tok.Decode(ids); got != "aaab" {
		t.Fatalf("decode = %q", got)
	}
	// merged tokens should reduce the id count below byte length
	if len(ids) >= 4 {
		t.Fatalf("no merges applied to aaab: %d ids", len(ids))
	}
}

func TestTokenLookup(t *testing.T) {
	tok := Train(tinyCorpus, 280)
	if _, ok := tok.Token(-1); ok {
		t.Error("negative id accepted")
	}
	if _, ok := tok.Token(1 << 20); ok {
		t.Error("huge id accepted")
	}
	if s, ok := tok.Token(65); !ok || s != "A" {
		t.Errorf("Token(65) = %q, %v", s, ok)
	}
}

// TestEncodeMatchesReferenceOnRandomCorpora trains tokenizers on
// randomized corpora (heavy repetition, tiny alphabets — the regime
// where merge interactions are densest) and checks the collapsed
// pair-merge loop in Encode against the one-occurrence-per-iteration
// reference on random probe words. Folded in from the PR 3 review
// sweep: the fixed-corpus and fuzz tests above probe many *texts* but
// only a handful of trained *tokenizers*; this drives the equivalence
// across many merge tables.
func TestEncodeMatchesReferenceOnRandomCorpora(t *testing.T) {
	letters := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(1))
	randWord := func() string {
		n := 1 + rng.Intn(6)
		w := ""
		for i := 0; i < n; i++ {
			w += letters[rng.Intn(len(letters))]
		}
		return w
	}
	for trial := 0; trial < 400; trial++ {
		doc := ""
		for i, nw := 0, 2+rng.Intn(8); i < nw; i++ {
			rep := 1 + rng.Intn(4)
			w := randWord()
			for r := 0; r < rep; r++ {
				doc += w + " "
			}
		}
		tok := Train([]string{doc}, 256+2+rng.Intn(12))
		for probe := 0; probe < 12; probe++ {
			w := randWord() + randWord()
			got := tok.Encode(w)
			want := tok.encodeReference(w)
			if !equalIDs(got, want) {
				t.Fatalf("trial %d: corpus=%q merges=%d word=%q got=%v want=%v",
					trial, doc, tok.NumMerges(), w, got, want)
			}
		}
	}
}
