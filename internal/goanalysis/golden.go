package goanalysis

// Golden-test harness in the style of x/tools' analysistest, stdlib only:
// testdata packages carry `// want "re"` comments on the lines an
// analyzer must flag (several per line allowed), and RunGolden fails the
// test on any unmatched want or unexpected diagnostic. Suppressed cases
// carry a //vgencheck directive and no want; they are asserted through
// the returned Result's suppression inventory.

import (
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var wantChunkRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// RunGolden loads testdata/src and checks the analyzer's diagnostics for
// the named packages against their // want comments. The analyzer's
// package filter is bypassed: golden packages are named after the case,
// not after the production package. The full Result is returned so tests
// can additionally assert the suppression inventory.
func RunGolden(t *testing.T, a *Analyzer, pkgs ...string) *Result {
	t.Helper()
	m, err := LoadModule("testdata/src", pkgs)
	if err != nil {
		t.Fatalf("load golden tree: %v", err)
	}
	res := analyze(m, []*Analyzer{a}, false)

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			tf := m.Fset.File(file.Pos())
			src := readFileLines(t, tf.Name())
			rel := m.Rel(token.Position{Filename: tf.Name()})
			for i, line := range src {
				mm := wantRe.FindStringSubmatch(line)
				if mm == nil {
					continue
				}
				for _, chunk := range wantChunkRe.FindAllString(mm[1], -1) {
					pat, err := strconv.Unquote(chunk)
					if err != nil {
						t.Fatalf("%s:%d: bad want %s: %v", rel.Filename, i+1, chunk, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", rel.Filename, i+1, pat, err)
					}
					wants[key{rel.Filename, i + 1}] = append(wants[key{rel.Filename, i + 1}], re)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for _, f := range res.Findings {
		k := key{f.File, f.Line}
		ws := wants[k]
		if matched[k] == nil {
			matched[k] = make([]bool, len(ws))
		}
		ok := false
		for i, re := range ws {
			if !matched[k][i] && re.MatchString(f.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for k, ws := range wants {
		for i, re := range ws {
			if matched[k] == nil || !matched[k][i] {
				t.Errorf("%s: %s:%d: no diagnostic matched want %q", a.Name, k.file, k.line, re)
			}
		}
	}
	return res
}

// readFileLines splits a source file for want scanning.
func readFileLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return strings.Split(string(data), "\n")
}

// SuppressionAt asserts the inventory holds a directive at file:line and
// returns it — how golden tests pin their suppressed cases.
func SuppressionAt(t *testing.T, res *Result, file string, line int) Suppression {
	t.Helper()
	for _, s := range res.Suppressions {
		if s.File == file && s.Line == line {
			return s
		}
	}
	t.Fatalf("no suppression recorded at %s:%d (inventory: %+v)", file, line, res.Suppressions)
	return Suppression{}
}
