package goanalysis

import "testing"

func TestMatchPatterns(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/eval", []string{"./..."}, true},
		{"internal/eval", []string{"..."}, true},
		{"internal/eval", []string{"./internal/..."}, true},
		{"internal/eval", []string{"internal/..."}, true},
		{"internal/eval", []string{"./internal/eval"}, true},
		{"internal/evaluator", []string{"./internal/eval"}, false},
		{"internal/evaluator", []string{"./internal/eval/..."}, false},
		{"cmd/vgen-check", []string{"./internal/..."}, false},
		{"internal", []string{"internal/..."}, true},
	}
	for _, c := range cases {
		if got := matchPatterns(c.rel, c.patterns); got != c.want {
			t.Errorf("matchPatterns(%q, %v) = %v, want %v", c.rel, c.patterns, got, c.want)
		}
	}
}

func TestLoadModuleBuildConstraints(t *testing.T) {
	// coord carries proc_unix.go/proc_other.go behind mutually exclusive
	// build tags; loading must pick exactly the platform's file or the
	// package would double-declare and fail the type check.
	m, err := LoadModule("../..", []string{"./internal/coord"})
	if err != nil {
		t.Fatalf("load coord: %v", err)
	}
	if len(m.Pkgs) != 1 || m.Pkgs[0].Name != "coord" {
		t.Fatalf("loaded %+v, want exactly the coord package", m.Pkgs)
	}
}
