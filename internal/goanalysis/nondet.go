package goanalysis

// nondet: ambient nondeterminism sources are banned in output-bearing
// packages. Byte-identical sweeps at any worker width (PR 1) survive only
// if no code path reads the wall clock, the process id, or the global
// math/rand stream; the one legitimate clock consumer is the coordinator's
// backoff/straggler machinery, which is allow-listed as the seam (its
// output never reaches rendered bytes — retries re-produce identical
// shard files). select statements over map-indexed channels compound map
// order with select's own randomization and are banned outright.

import (
	"go/ast"
	"go/types"
)

// DefaultNondetSeams is the allow-listed clock seam: the coordinator's
// retry state machine and the remote transport's retry/circuit-breaker
// machinery. Both make timing decisions that never reach output bytes —
// retries re-produce identical samples, and a timing difference can only
// change *when* a request runs, never *what* it returns.
var DefaultNondetSeams = map[string]string{
	"coord.supervisor.run":      "wakeup timer scheduling for backoff expiry and steal eligibility",
	"coord.supervisor.dispatch": "backoff eligibility and straggler age checks",
	"coord.supervisor.start":    "straggler timing for steal eligibility",
	"coord.supervisor.handle":   "retry backoff deadline stamping",
	"remote.breaker.Allow":      "circuit-breaker cooldown expiry check",
	"remote.breaker.Failure":    "circuit-breaker trip timestamping",
	"remote.NewTransport":       "sweep-budget deadline anchoring at construction",
}

// Nondet flags ambient nondeterminism (time.Now/Since/Until, global
// math/rand, os.Getpid, map-keyed select) outside the seam functions.
func Nondet(seams map[string]string) *Analyzer {
	return &Analyzer{
		Name:      "nondet",
		Doc:       "wall clock, global math/rand, pid, or map-keyed select in an output-bearing package",
		Directive: "nondet",
		Packages:  outputBearing,
		Run:       func(pass *Pass) { runNondet(pass, seams) },
	}
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than drawing from the global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runNondet(pass *Pass, seams map[string]string) {
	info := pass.TypesInfo
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		_, clockSeam := seams[funcKey(pass.Pkg.Name(), fd)]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				switch {
				case isPkgFunc(fn, "time", "Now", "Since", "Until"):
					if !clockSeam {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock outside the coord backoff/timer seam; inject time through a parameter or annotate //vgencheck:nondet <reason>", fn.Name())
					}
				case isGlobalRand(fn):
					pass.Reportf(n.Pos(),
						"rand.%s draws from the process-global math/rand stream; use a seeded *rand.Rand derived from the run seed", fn.Name())
				case isPkgFunc(fn, "os", "Getpid", "Getppid"):
					pass.Reportf(n.Pos(),
						"os.%s is per-process state that breaks cross-process reproducibility", fn.Name())
				}
			case *ast.SelectStmt:
				reportMapKeyedSelect(pass, info, n)
			}
			return true
		})
	})
}

// isGlobalRand reports a package-level math/rand (or rand/v2) call that
// draws from the shared global stream — constructors are fine.
func isGlobalRand(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if !isPkgFunc(fn, "math/rand") && !isPkgFunc(fn, "math/rand/v2") {
		return false
	}
	return !randConstructors[fn.Name()]
}

// reportMapKeyedSelect flags select cases whose channel comes out of a
// map index: map order times select's own case randomization.
func reportMapKeyedSelect(pass *Pass, info *types.Info, sel *ast.SelectStmt) {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		ast.Inspect(comm.Comm, func(n ast.Node) bool {
			if idx, ok := n.(*ast.IndexExpr); ok && isMapExpr(info, idx.X) {
				pass.Reportf(comm.Pos(),
					"select case reads a channel out of a map; map order compounds select nondeterminism — pin channels in a slice")
				return false
			}
			return true
		})
	}
}
