// Package goanalysis is the project's custom static-analysis pass: a
// stdlib-only analyzer driver (go/parser + go/types, no golang.org/x/tools)
// enforcing the repo-wide invariants every PR so far relies on —
// deterministic output at any worker width, crash-safe durable artifacts,
// and context-threaded concurrency. cmd/vgen-check is the CLI; the golden
// harness in golden.go drives each analyzer over `// want "re"` testdata.
//
// A finding is suppressed by the comment
//
//	//vgencheck:<directive> <reason>
//
// on the flagged line or the line above it. The reason is mandatory — a
// bare directive does not suppress and is itself reported — and every
// honored suppression lands in the deterministic inventory the tool
// prints, so waivers stay auditable. See DESIGN.md, "Invariant-enforcing
// static analysis".
package goanalysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant check.
type Analyzer struct {
	Name      string   // registry name, e.g. "maporder"
	Doc       string   // one-line description (vgen-check -list)
	Directive string   // suppression word: //vgencheck:<Directive> <reason>
	Packages  []string // package names the driver applies it to; nil = all
	Run       func(*Pass)
}

// Pass is one (analyzer, package) run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []diag
}

type diag struct {
	pos token.Pos
	msg string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, diag{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// Finding is one reported diagnostic, positioned root-relative.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Suppression is one honored //vgencheck waiver.
type Suppression struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Directive string `json:"directive"`
	Reason    string `json:"reason"`
	Used      bool   `json:"used"` // it masked at least one diagnostic
}

// Result is a full run: findings and the suppression inventory, both in
// deterministic order.
type Result struct {
	Packages     int           `json:"packages"`
	Findings     []Finding     `json:"findings"`
	Suppressions []Suppression `json:"suppressions"`
}

// directiveRe matches a vgencheck comment; the reason is everything after
// the first space.
var directiveRe = regexp.MustCompile(`^//vgencheck:([a-z]+)(?:[ \t]+(.*))?$`)

type directiveAt struct {
	pos       token.Position
	directive string
	reason    string
	used      bool
}

// Analyze runs the analyzers over the module's selected packages,
// honoring each analyzer's package-name filter. The golden harness uses
// analyze directly to bypass the filter.
func Analyze(m *Module, analyzers []*Analyzer) *Result {
	return analyze(m, analyzers, true)
}

func analyze(m *Module, analyzers []*Analyzer, filter bool) *Result {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Directive] = true
	}

	// Non-nil slices so the -json report renders [] rather than null.
	res := &Result{Packages: len(m.Pkgs), Findings: []Finding{}, Suppressions: []Suppression{}}
	// Suppression directives are collected per file; keyed by file:line.
	sups := map[string]*directiveAt{}
	var supOrder []*directiveAt
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					mm := directiveRe.FindStringSubmatch(c.Text)
					if mm == nil {
						continue
					}
					pos := m.Rel(m.Fset.Position(c.Pos()))
					reason := mm[2]
					// A reason ends at an embedded comment marker, so the
					// golden corpora can put `// want …` after a directive.
					if i := strings.Index(reason, "//"); i >= 0 {
						reason = reason[:i]
					}
					d := &directiveAt{pos: pos, directive: mm[1], reason: strings.TrimSpace(reason)}
					sups[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = d
					supOrder = append(supOrder, d)
					if !known[d.directive] {
						res.Findings = append(res.Findings, Finding{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Analyzer: "vgencheck",
							Message:  fmt.Sprintf("unknown suppression directive %q", d.directive),
						})
					} else if d.reason == "" {
						res.Findings = append(res.Findings, Finding{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Analyzer: "vgencheck",
							Message:  fmt.Sprintf("unexplained suppression: //vgencheck:%s needs a reason", d.directive),
						})
					}
				}
			}
		}
	}

	for _, pkg := range m.Pkgs {
		for _, a := range analyzers {
			if filter && !a.applies(pkg.Name) {
				continue
			}
			pass := &Pass{
				Analyzer: a, Fset: m.Fset,
				Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				pos := m.Rel(m.Fset.Position(d.pos))
				if s := matchSuppression(sups, pos, a.Directive); s != nil {
					s.used = true
					continue
				}
				res.Findings = append(res.Findings, Finding{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: a.Name, Message: d.msg,
				})
			}
		}
	}

	for _, d := range supOrder {
		// An explained waiver that masks nothing is stale — the code it
		// excused was fixed or moved — and stale waivers rot the audit
		// trail, so they are findings too.
		if known[d.directive] && d.reason != "" && !d.used {
			res.Findings = append(res.Findings, Finding{
				File: d.pos.Filename, Line: d.pos.Line, Col: d.pos.Column,
				Analyzer: "vgencheck",
				Message:  fmt.Sprintf("stale suppression: //vgencheck:%s masks no finding; delete it", d.directive),
			})
		}
		res.Suppressions = append(res.Suppressions, Suppression{
			File: d.pos.Filename, Line: d.pos.Line,
			Directive: d.directive, Reason: d.reason, Used: d.used,
		})
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sort.Slice(res.Suppressions, func(i, j int) bool {
		a, b := res.Suppressions[i], res.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return res
}

func (a *Analyzer) applies(pkgName string) bool {
	if a.Packages == nil {
		return true
	}
	for _, n := range a.Packages {
		if n == pkgName {
			return true
		}
	}
	return false
}

// matchSuppression finds an explained directive for the analyzer on the
// diagnostic's line or the line directly above.
func matchSuppression(sups map[string]*directiveAt, pos token.Position, directive string) *directiveAt {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if s, ok := sups[fmt.Sprintf("%s:%d", pos.Filename, line)]; ok &&
			s.directive == directive && s.reason != "" {
			return s
		}
	}
	return nil
}

// Clean reports whether the run has no findings.
func (r *Result) Clean() bool { return len(r.Findings) == 0 }

// Format renders the result as vgen-check's text report: findings first
// (file:line:col: analyzer: message), then the suppression inventory.
// Output is byte-deterministic for a given tree.
func (r *Result) Format(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintln(w, f.String())
	}
	if len(r.Findings) == 0 {
		fmt.Fprintf(w, "vgen-check: clean (%d packages)\n", r.Packages)
	} else {
		fmt.Fprintf(w, "vgen-check: %d findings in %d packages\n", len(r.Findings), r.Packages)
	}
	if len(r.Suppressions) > 0 {
		fmt.Fprintf(w, "suppression inventory (%d):\n", len(r.Suppressions))
		for _, s := range r.Suppressions {
			state := "idle"
			if s.Used {
				state = "active"
			}
			reason := s.Reason
			if reason == "" {
				reason = "(no reason)"
			}
			fmt.Fprintf(w, "  %s:%d: vgencheck:%s [%s] %s\n", s.File, s.Line, s.Directive, state, reason)
		}
	}
}
