// Golden corpus for the nondet analyzer: ambient nondeterminism sources,
// the seeded-generator negatives, a seam-allow-listed function, and a
// suppressed case.
package nondet

import (
	"math/rand"
	"os"
	"time"
)

// Positive: wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Positive: Since is Now in disguise.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Positive: the process-global math/rand stream.
func draw() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global math/rand stream"
}

// Negative: a seeded generator derived from the run seed.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Positive: pid is per-process state.
func pid() int {
	return os.Getpid() // want "os.Getpid is per-process state"
}

// Positive: a select case pulling its channel out of a map compounds map
// order with select randomization.
func waitAny(chans map[string]chan int) int {
	select {
	case v := <-chans["a"]: // want "select case reads a channel out of a map"
		return v
	default:
		return 0
	}
}

// Negative: channels pinned in a slice select deterministically enough.
func waitFirst(chans []chan int) int {
	select {
	case v := <-chans[0]:
		return v
	default:
		return 0
	}
}

// Suppressed: explained waiver, inventoried as active.
func logStamp() int64 {
	//vgencheck:nondet event-log timestamps are stderr-only and never reach table bytes
	return time.Now().Unix()
}

// seam is allow-listed by the test's custom seam map ("nondet.seam"), the
// same mechanism that admits the coord supervisor's backoff clock.
func seam() time.Time {
	return time.Now()
}
