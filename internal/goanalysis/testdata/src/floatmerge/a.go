// Golden corpus for the floatmerge analyzer: direct CellStats field
// accumulation (the second-merge-path smell), the blessed Add path, and
// construction negatives.
package floatmerge

import "eval"

// Positive ×2: compound accumulation and increment outside Add.
func pool(cells []eval.CellStats) eval.CellStats {
	var total eval.CellStats
	for _, c := range cells {
		total.SumLat += c.SumLat // want "accumulates into CellStats.SumLat outside CellStats.Add"
		total.Samples++          // want "increments CellStats.Samples outside CellStats.Add"
	}
	return total
}

// Positive: the read-modify-write spelling of the same bypass.
func rmw(c *eval.CellStats, o eval.CellStats) {
	c.Passed = c.Passed + o.Passed // want "read-modify-write of CellStats.Passed outside CellStats.Add"
}

// Negative: merging through Add, the single merge path.
func viaAdd(cells []eval.CellStats) eval.CellStats {
	var total eval.CellStats
	for _, c := range cells {
		total.Add(c)
	}
	return total
}

// Negative: constructing a one-observation cell is not accumulation.
func observation(lat float64, compiled bool) eval.CellStats {
	st := eval.CellStats{Samples: 1, SumLat: lat}
	if compiled {
		st.Compiled = 1
	}
	return st
}

// Suppressed: explained waiver.
func preseed(c *eval.CellStats) {
	//vgencheck:floatmerge test-fixture seeding of a local cell that is never merged across shards
	c.Samples += 1
}
