// Golden corpus for the maporder analyzer: positive, negative, and
// suppressed map-iteration cases.
package maporder

import (
	"maps"
	"slices"
	"sort"
	"strconv"

	"eval"
)

// Positive: map order reaches the returned string.
func renderCounts(counts map[string]int) string {
	out := ""
	for k, v := range counts { // want "iterates over a map in an output-bearing package"
		out += k + strconv.Itoa(v)
	}
	return out
}

// Negative: the loop only collects keys that the function then sorts.
func sortedKeys(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Negative: collect-then-sort through slices.Sort.
func sortedValues(counts map[string]int) []int {
	var vals []int
	for _, v := range counts {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

// Positive: the slice is appended to but never sorted afterwards.
func unsortedKeys(counts map[string]int) []string {
	var keys []string
	for k := range counts { // want "iterates over a map in an output-bearing package"
		keys = append(keys, k)
	}
	return keys
}

// Negative: the body feeds the commutative CellStats.Add sink.
func pooled(cells map[int]eval.CellStats) eval.CellStats {
	var total eval.CellStats
	for _, st := range cells {
		total.Add(st)
	}
	return total
}

// Negative: the body feeds the commutative ResultSet.Put sink.
func put(rs *eval.ResultSet, cells map[eval.Coord]eval.CellStats) {
	for c, st := range cells {
		rs.Put(c, st)
	}
}

// Negative: maps.Keys neutralized by an immediate slices.Sorted.
func keysSorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// Positive: maps.Keys escapes without a sort.
func keysLeaked(m map[string]int) func(func(string) bool) {
	return maps.Keys(m) // want "maps.Keys yields keys in nondeterministic order"
}

// Positive: ranging a maps.Keys iterator is ranging the map.
func keysRanged(m map[string]int) string {
	s := ""
	for k := range maps.Keys(m) { // want "iterates over a map in an output-bearing package"
		s += k
	}
	return s
}

// Positive: maps.Values is as unordered as maps.Keys.
func valuesLeaked(m map[string]int) func(func(int) bool) {
	return maps.Values(m) // want "maps.Values yields keys in nondeterministic order"
}

// Suppressed: an explained waiver masks the finding and lands in the
// inventory as active.
func digest(m map[string]int) uint64 {
	var sum uint64
	//vgencheck:ordered wrapping add of per-key hashes is order-independent
	for k := range m {
		sum += uint64(len(k))
	}
	return sum
}

// A bare directive does not suppress: the loop still fires and the
// directive itself is flagged as unexplained.
func unexplained(m map[string]int) int {
	n := 0
	//vgencheck:ordered // want "unexplained suppression: //vgencheck:ordered needs a reason"
	for range m { // want "iterates over a map in an output-bearing package"
		n++
	}
	return n
}
