// Golden corpus for the ctxflow analyzer: goroutine spawns with and
// without a context, parameter-order violations, severed cancellation
// chains, and the legal ctx-less convenience delegate.
package ctxflow

import "context"

// Positive: spawns goroutines no shutdown can reap.
func spawnNoCtx(n int) { // want "spawnNoCtx spawns goroutines without accepting a context.Context"
	for i := 0; i < n; i++ {
		go func() {}()
	}
}

// Negative: spawns under a context, ctx first.
func spawnWithCtx(ctx context.Context, n int) {
	done := ctx.Done()
	for i := 0; i < n; i++ {
		go func() { <-done }()
	}
}

// Positive: ctx exists but is not the first parameter.
func ctxSecond(n int, ctx context.Context) error { // want "ctxSecond takes a context.Context but not as its first parameter"
	_ = n
	return ctx.Err()
}

// Positive: receives a ctx but roots a fresh Background, severing the
// cancellation chain.
func minted(ctx context.Context) error {
	_ = ctx
	return work(context.Background()) // want "minted receives a ctx but mints context.Background"
}

func work(ctx context.Context) error { return ctx.Err() }

// Negative: the convenience-delegate shape — no ctx parameter, no spawn;
// Background here starts a chain rather than severing one.
func convenience() error {
	return work(context.Background())
}

// Suppressed: explained waiver for a deliberate process-lifetime spawn.
//
//vgencheck:ctxflow fire-and-forget metrics flusher; reaped at process exit by design
func fireAndForget() {
	go func() {}()
}
