// Package wire is a structural lookalike of repro/internal/wire for the
// durables golden corpus.
package wire

import "io"

type Meta struct{ Shard int }

func WriteResults(w io.Writer, m Meta, cells []byte) error {
	_, err := w.Write(cells)
	return err
}

func WritePlan(w io.Writer, m Meta, cells []byte) error {
	_, err := w.Write(cells)
	return err
}
