// Package eval is a structural lookalike of repro/internal/eval for the
// golden corpora: the analyzers match project types by (package name,
// type name), so this package supplies CellStats/ResultSet shapes without
// dragging the real evaluation engine into testdata type-checking.
package eval

type CellStats struct {
	Samples  int
	Compiled int
	Passed   int
	SumLat   float64
}

// Add pools another cell into this one — the blessed merge path, which
// floatmerge must exempt.
func (c *CellStats) Add(o CellStats) {
	c.Samples += o.Samples
	c.Compiled += o.Compiled
	c.Passed += o.Passed
	c.SumLat += o.SumLat
}

type Coord struct{ Problem int }

type ResultSet struct{ m map[Coord]CellStats }

func NewResultSet() *ResultSet { return &ResultSet{m: map[Coord]CellStats{}} }

// Put stores one whole cell — a commutative sink for maporder.
func (s *ResultSet) Put(c Coord, st CellStats) { s.m[c] = st }
