// Golden corpus for the durables analyzer: direct (torn-write-window)
// wire emissions, discarded Close/Sync errors on write handles, and the
// blessed WriteFileAtomic/read-handle negatives.
package durables

import (
	"bufio"
	"io"
	"os"

	"core"
	"wire"
)

// Positive ×2: a locally created handle fed straight to a wire
// serializer, with its Close error thrown away by defer.
func direct(path string, m wire.Meta, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()                      // want `defer f.Close\(\) discards the error on a write handle`
	return wire.WriteResults(f, m, data) // want "wire.WriteResults writes a shard artifact to a locally opened file"
}

// Positive: wrapping the handle in a bufio.Writer does not launder the
// taint.
func buffered(path string, m wire.Meta, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	defer f.Close()                   // want `defer f.Close\(\) discards the error on a write handle`
	return wire.WritePlan(bw, m, data) // want "wire.WritePlan writes a shard artifact to a locally opened file"
}

// Negative: the blessed path — the handle arrives as the atomic write
// callback's parameter.
func atomic(path string, m wire.Meta, data []byte) error {
	return core.WriteFileAtomic(path, func(out *os.File) error {
		return wire.WriteResults(out, m, data)
	})
}

// Negative: read handles may discard Close errors.
func readSide(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Negative: Close/Sync errors captured and folded into the return.
func captured(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Positive ×2: bare and blank-assigned discards on a write handle.
func discards(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Sync()       // want `f.Sync\(\) discards the error on a write handle`
	_ = f.Close()  // want `_ = f.Close\(\) discards the error on a write handle`
}

// Suppressed: explained waiver for a scratch file that never becomes an
// artifact.
func scratch(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	//vgencheck:durables scratch temp outside any artifact path; content is never read back
	f.Close()
}
