// Package core is a structural lookalike of repro/internal/core for the
// durables golden corpus: WriteFileAtomic hands its payload callback a
// parameter handle, which is exactly the shape the analyzer exempts.
package core

import "os"

func WriteFileAtomic(path string, write func(*os.File) error) error {
	out, err := os.CreateTemp(".", "tmp-*")
	if err != nil {
		return err
	}
	err = write(out)
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(out.Name(), path)
	}
	return err
}
