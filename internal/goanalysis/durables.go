package goanalysis

// durables: crash-safety for wire/shard artifacts. PR 6 made
// core.WriteFileAtomic (temp + fsync + rename) the single durable write
// path, so a file a merge or a resuming coordinator might read can never
// be half-written. This analyzer keeps it that way intraprocedurally:
// a handle opened for writing in the same function may not be handed
// straight to wire.WriteResults/wire.WritePlan (that's a torn-write
// window), and write-handle Close/Sync error returns may not be
// discarded (a swallowed close error is a silently truncated artifact).
// Handles that arrive as parameters are exempt — that is exactly the
// shape WriteFileAtomic hands its payload callback.

import (
	"go/ast"
	"go/types"
)

// Durables flags direct (non-atomic) wire artifact writes and discarded
// Close/Sync errors on write handles.
func Durables() *Analyzer {
	return &Analyzer{
		Name:      "durables",
		Doc:       "wire artifact written without core.WriteFileAtomic, or write-handle Close/Sync error discarded",
		Directive: "durables",
		Packages:  outputBearing,
		Run:       runDurables,
	}
}

func runDurables(pass *Pass) {
	info := pass.TypesInfo
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		writeHandles := map[types.Object]bool{}

		// Pass 1: collect write-opened handles and one-hop wrappers
		// (bufio.NewWriter(f) etc. of a tainted handle is tainted too).
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				tainted := false
				if isPkgFunc(calleeFunc(info, call), "os", "Create", "OpenFile", "CreateTemp") {
					tainted = true
				} else {
					for _, arg := range call.Args {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok && writeHandles[idObject(info, id)] {
							tainted = true
						}
					}
				}
				if !tainted {
					continue
				}
				// os.Create and friends multi-assign (f, err :=); taint
				// the first assignable left-hand side.
				lhs := as.Lhs
				if len(as.Rhs) == len(as.Lhs) {
					lhs = as.Lhs[i : i+1]
				}
				for _, l := range lhs {
					id, ok := ast.Unparen(l).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if obj := idObject(info, id); obj != nil && !isErrorType(obj.Type()) {
						writeHandles[obj] = true
						break
					}
				}
			}
			return true
		})
		if len(writeHandles) == 0 {
			return
		}

		// Pass 2: flag direct wire writes and discarded Close/Sync.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				reportDiscardedClose(pass, info, n.X, writeHandles, "")
			case *ast.DeferStmt:
				reportDiscardedClose(pass, info, n.Call, writeHandles, "defer ")
			case *ast.GoStmt:
				reportDiscardedClose(pass, info, n.Call, writeHandles, "go ")
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
						reportDiscardedClose(pass, info, rhs, writeHandles, "_ = ")
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if !isWireEmit(fn) {
					return true
				}
				for _, arg := range n.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok && writeHandles[idObject(info, id)] {
						pass.Reportf(n.Pos(),
							"wire.%s writes a shard artifact to a locally opened file; route it through core.WriteFileAtomic so a crash cannot leave a torn file", fn.Name())
					}
				}
			}
			return true
		})
	})
}

// isWireEmit matches the wire package's artifact serializers.
func isWireEmit(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "wire" &&
		(fn.Name() == "WriteResults" || fn.Name() == "WritePlan")
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// reportDiscardedClose flags expr when it is a Close/Sync call on a
// write-opened handle whose error result is being dropped.
func reportDiscardedClose(pass *Pass, info *types.Info, expr ast.Expr, writeHandles map[types.Object]bool, how string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || !writeHandles[idObject(info, id)] {
		return
	}
	pass.Reportf(call.Pos(),
		"%s%s.%s() discards the error on a write handle; a swallowed close/sync error is a silently truncated artifact", how, id.Name, sel.Sel.Name)
}
