package goanalysis

// Driver-level proof obligations from the PR-7 issue: vgen-check over the
// real module is clean (zero findings, zero unexplained suppressions) and
// byte-deterministic across independent loads.

import (
	"bytes"
	"encoding/json"
	"testing"
)

// loadRepo loads the real module (two directories up from this package).
func loadRepo(t *testing.T) *Module {
	t.Helper()
	m, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	return m
}

func TestRepoIsClean(t *testing.T) {
	res := Analyze(loadRepo(t), All())
	for _, f := range res.Findings {
		t.Errorf("finding on the shipped tree: %s", f)
	}
	for _, s := range res.Suppressions {
		if s.Reason == "" {
			t.Errorf("unexplained suppression at %s:%d", s.File, s.Line)
		}
		if !s.Used {
			t.Errorf("stale suppression at %s:%d (masks nothing)", s.File, s.Line)
		}
	}
	if len(res.Suppressions) == 0 {
		t.Error("expected the audited //vgencheck:ordered waivers in the inventory")
	}
}

func TestRepoAnalysisDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		res := Analyze(loadRepo(t), All())
		var text bytes.Buffer
		res.Format(&text)
		js, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return text.Bytes(), js
	}
	t1, j1 := render()
	t2, j2 := render()
	if !bytes.Equal(t1, t2) {
		t.Errorf("text report differs between two runs:\n--- run 1\n%s\n--- run 2\n%s", t1, t2)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("-json report differs between two runs:\n--- run 1\n%s\n--- run 2\n%s", j1, j2)
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	as := All()
	want := []string{"ctxflow", "durables", "floatmerge", "maporder", "nondet"}
	if len(as) != len(want) {
		t.Fatalf("All() = %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s (sorted order)", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Directive == "" {
			t.Errorf("%s: missing Doc or Directive", a.Name)
		}
	}
}
