package goanalysis

// floatmerge: CellStats.Add is the single merge path (PR 5). Sample →
// cell, cell → pooled scenario, shard → sweep all reduce through the same
// Add, which is what makes a 4-way sharded merge byte-identical to the
// monolithic run — float summation is order-sensitive, so the order must
// be fixed in exactly one place. Any direct accumulation into CellStats
// fields (+=, x.F = x.F + …, ++) outside the Add method itself is a
// second merge path waiting to drift.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatmerge flags CellStats field accumulation outside CellStats.Add.
func Floatmerge() *Analyzer {
	return &Analyzer{
		Name:      "floatmerge",
		Doc:       "stat/latency accumulation bypassing CellStats.Add, the single merge path",
		Directive: "floatmerge",
		Packages:  outputBearing,
		Run:       runFloatmerge,
	}
}

func runFloatmerge(pass *Pass) {
	info := pass.TypesInfo
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if isAddMethod(fd, info) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					for _, lhs := range n.Lhs {
						if f, ok := cellStatsField(info, lhs); ok {
							pass.Reportf(n.Pos(),
								"accumulates into CellStats.%s outside CellStats.Add; every merge must go through Add to keep float reduction order fixed", f)
						}
					}
				case token.ASSIGN:
					for i, lhs := range n.Lhs {
						f, ok := cellStatsField(info, lhs)
						if !ok || i >= len(n.Rhs) {
							continue
						}
						if rhsReadsField(info, n.Rhs[i], f) {
							pass.Reportf(n.Pos(),
								"read-modify-write of CellStats.%s outside CellStats.Add; merge through Add instead", f)
						}
					}
				}
			case *ast.IncDecStmt:
				if f, ok := cellStatsField(info, n.X); ok {
					pass.Reportf(n.Pos(),
						"increments CellStats.%s outside CellStats.Add; merge a one-observation CellStats through Add instead", f)
				}
			}
			return true
		})
	})
}

// isAddMethod reports whether fd is the blessed (c *CellStats) Add.
func isAddMethod(fd *ast.FuncDecl, info *types.Info) bool {
	if fd.Name.Name != "Add" || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	return t != nil && isNamed(t, "eval", "CellStats")
}

// cellStatsField returns the field name when expr selects a field of a
// CellStats value (directly or through a pointer).
func cellStatsField(info *types.Info, expr ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !isNamed(t, "eval", "CellStats") {
		return "", false
	}
	return sel.Sel.Name, true
}

// rhsReadsField reports whether the expression reads a field of the same
// name off a CellStats value — the x.F = x.F + y accumulation shape.
func rhsReadsField(info *types.Info, rhs ast.Expr, field string) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if f, ok := cellStatsField(info, e); ok && f == field {
				found = true
			}
		}
		return !found
	})
	return found
}
