package goanalysis

// ctxflow: the PR-6 cancellation invariant. The eval worker pool and the
// coord supervisor must stay reapable — a coordinator shutdown or SIGINT
// has to stop every spawned goroutine promptly. Concretely: a function in
// eval/coord that spawns goroutines must receive a context.Context; a
// context parameter goes first (after the receiver), matching the
// EvaluateBatchCtx/RunPlanCtx/Launch convention; and a function that was
// handed a ctx must plumb it, not mint context.Background()/TODO() —
// fresh roots sever the cancellation chain. Ctx-less convenience
// delegates (EvaluateBatch → EvaluateBatchCtx(context.Background(), …))
// stay legal: they spawn nothing themselves and have no ctx to drop.

import (
	"go/ast"
)

// Ctxflow enforces context threading in the concurrent packages.
func Ctxflow() *Analyzer {
	return &Analyzer{
		Name:      "ctxflow",
		Doc:       "goroutine spawn without a context parameter, ctx not first, or ctx shadowed by context.Background",
		Directive: "ctxflow",
		Packages:  []string{"eval", "coord", "remote"},
		Run:       runCtxflow,
	}
}

func runCtxflow(pass *Pass) {
	info := pass.TypesInfo
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		ctxIndex := -1
		for i, field := range fd.Type.Params.List {
			if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
				ctxIndex = i
				break
			}
		}
		if ctxIndex > 0 {
			pass.Reportf(fd.Type.Params.List[ctxIndex].Pos(),
				"%s takes a context.Context but not as its first parameter; the cancellation convention is ctx first", fd.Name.Name)
		}

		spawns := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				spawns = true
			case *ast.CallExpr:
				if ctxIndex < 0 {
					return true
				}
				fn := calleeFunc(info, n)
				if isPkgFunc(fn, "context", "Background", "TODO") {
					pass.Reportf(n.Pos(),
						"%s receives a ctx but mints context.%s; plumb the parameter so cancellation reaches this path", fd.Name.Name, fn.Name())
				}
			}
			return true
		})
		if spawns && ctxIndex < 0 {
			pass.Reportf(fd.Name.Pos(),
				"%s spawns goroutines without accepting a context.Context; a coordinator shutdown cannot reap them", fd.Name.Name)
		}
	})
}
