package goanalysis

import "sort"

// All returns the full analyzer suite with default configuration, sorted
// by name — the deterministic feed for `vgen-check -list` (mirroring
// `vgen-eval -backend list`).
func All() []*Analyzer {
	as := []*Analyzer{
		Maporder(),
		Nondet(DefaultNondetSeams),
		Durables(),
		Ctxflow(),
		Floatmerge(),
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}
