package goanalysis

// Stdlib-only package loading. The module's go.mod declares zero
// dependencies, and this package keeps it that way: no golang.org/x/tools
// loader, just go/parser + go/types with the source importer for the
// standard library and a recursive on-demand resolver for packages inside
// the module. Build-constrained files (coord's proc_unix.go/proc_other.go)
// are selected with go/build.Context.MatchFile, so the checked file set is
// exactly what `go build` would compile on this platform.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the loaded tree.
type Package struct {
	Path  string // import path ("repro/internal/eval"; bare dir name in golden trees)
	Name  string // package name ("eval")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded source tree: the real repository (rooted at go.mod)
// or a golden testdata tree (no go.mod, bare-name import paths).
type Module struct {
	Root string // absolute root directory
	Path string // module path from go.mod; "" for golden trees
	Fset *token.FileSet
	Pkgs []*Package // the packages matched by the load patterns, sorted by path
}

// Rel renders pos with the filename relative to the module root (slash
// separated), so diagnostics are stable across checkouts.
func (m *Module) Rel(pos token.Position) token.Position {
	if rel, err := filepath.Rel(m.Root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = filepath.ToSlash(rel)
	}
	return pos
}

type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	ctxt    *build.Context
	std     types.Importer
	pkgs    map[string]*Package // loaded, by import path
	loading map[string]bool     // cycle detection
}

// LoadModule parses and type-checks the packages under root selected by
// patterns ("./..." for every package; "dir/..." for a subtree; "dir" for
// one package — all relative to root). Dependencies inside the module are
// loaded on demand whether or not a pattern selects them; test files are
// never loaded (the enforced invariants are about shipped code).
func LoadModule(root string, patterns []string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		root:    abs,
		modPath: readModulePath(filepath.Join(abs, "go.mod")),
		fset:    token.NewFileSet(),
		ctxt:    &build.Default,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	var selected []*Package
	for _, dir := range dirs {
		rel := l.relPath(dir)
		if !matchPatterns(rel, patterns) {
			continue
		}
		pkg, err := l.load(l.importPath(rel))
		if err != nil {
			return nil, err
		}
		selected = append(selected, pkg)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("goanalysis: no packages match %v under %s", patterns, root)
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i].Path < selected[j].Path })
	return &Module{Root: abs, Path: l.modPath, Fset: l.fset, Pkgs: selected}, nil
}

// readModulePath extracts the module path from a go.mod; "" if absent.
func readModulePath(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// relPath is dir relative to the root, slash separated; "." for the root.
func (l *loader) relPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return dir
	}
	return filepath.ToSlash(rel)
}

// importPath maps a root-relative directory to its import path.
func (l *loader) importPath(rel string) string {
	switch {
	case rel == "." && l.modPath != "":
		return l.modPath
	case l.modPath != "":
		return l.modPath + "/" + rel
	default:
		return rel
	}
}

// dirFor inverts importPath.
func (l *loader) dirFor(path string) string {
	if l.modPath != "" {
		if path == l.modPath {
			return l.root
		}
		path = strings.TrimPrefix(path, l.modPath+"/")
	}
	return filepath.Join(l.root, filepath.FromSlash(path))
}

// local reports whether the import path belongs to the loaded tree.
func (l *loader) local(path string) bool {
	if l.modPath != "" {
		return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
	}
	// Golden trees have no module path: an import is local exactly when
	// the directory exists under the root (so "os" still reaches the
	// stdlib as long as no testdata package shadows it).
	fi, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// packageDirs walks the tree and returns every directory holding at least
// one buildable non-test .go file.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := l.sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// sourceFiles lists the buildable non-test .go files of dir, sorted.
func (l *loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Join(dir, name), err)
		}
		if ok {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	return files, nil
}

// load parses and type-checks one local package (and, recursively, its
// local dependencies). Results are memoized by import path.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("goanalysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("goanalysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("goanalysis: %s: %w", path, err)
	}
	pkg := &Package{
		Path: path, Name: tpkg.Name(), Dir: dir,
		Files: files, Types: tpkg, Info: info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import makes the loader a types.Importer: module-local paths resolve
// through load, everything else through the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.local(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// matchPatterns reports whether the root-relative directory rel is
// selected. Patterns: "./..." (everything), "dir/..." (subtree, inclusive
// of dir), "dir" (exact), with or without a leading "./".
func matchPatterns(rel string, patterns []string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == "":
			return true
		case strings.HasSuffix(p, "/..."):
			base := strings.TrimSuffix(p, "/...")
			if rel == base || strings.HasPrefix(rel, base+"/") {
				return true
			}
		case rel == p:
			return true
		}
	}
	return false
}
