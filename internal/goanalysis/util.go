package goanalysis

// Type-resolution helpers shared by the analyzers. Project types are
// matched by (package name, type name) rather than full import path so
// the golden corpora under testdata/src can provide structural lookalikes
// (a package named "eval" with a CellStats, etc.); within this module the
// output-bearing package names are unique, so the match is exact in the
// tree that matters.

import (
	"go/ast"
	"go/types"
)

// outputBearing is the package set whose bytes land in paper artifacts:
// a nondeterminism or durability bug in any of them shifts a rendered
// table. corpus joins for maporder only (its document order feeds the
// tokenizer and LM training streams); remote joins because its samples
// flow straight into CellStats — its transport clock lives behind the
// allow-listed seam; store joins because its segments replay into
// rendered tables, so a durability or ordering bug there resurfaces as
// a shifted artifact on the next warm run.
var outputBearing = []string{
	"wire", "eval", "harness", "core", "coord", "gen", "model", "ngram", "bpe", "remote", "store",
}

// calleeFunc resolves the called function or method, nil for indirect
// calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is a package-level function of the package
// with the given import path, named one of names (any name if empty).
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isMethodOn reports whether fn is the named method on the named type of
// a package with the given name (pointer or value receiver).
func isMethodOn(fn *types.Func, pkgName, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgName, typeName)
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgName.typeName.
func isNamed(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isMapExpr reports whether the expression's type is a map.
func isMapExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcKey names a declared function for allow-lists: "pkg.Func" or
// "pkg.Recv.Method" with any pointer receiver stripped.
func funcKey(pkgName string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgName + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	recv := ""
	switch rt := t.(type) {
	case *ast.Ident:
		recv = rt.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := rt.X.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return pkgName + "." + recv + "." + fd.Name.Name
}

// eachFuncDecl invokes f for every function declaration with a body.
func eachFuncDecl(files []*ast.File, f func(*ast.FuncDecl)) {
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				f(fd)
			}
		}
	}
}
