package goanalysis

// maporder: map iteration order must never reach rendered output. Go
// randomizes range-over-map order per run, so any map walk in an
// output-bearing package is a byte-determinism hazard unless the loop
// provably neutralizes the order: its body feeds a commutative sink
// (CellStats.Add, ResultSet.Put — both order-independent merge paths), or
// it only collects values that the same function then sorts. Anything
// else needs an audited //vgencheck:ordered <reason> waiver, which the
// driver inventories.

import (
	"go/ast"
	"go/types"
)

// Maporder flags nondeterministic map iteration in output-bearing
// packages (plus corpus, whose document order feeds tokenizer training).
func Maporder() *Analyzer {
	return &Analyzer{
		Name:      "maporder",
		Doc:       "range over a map (or maps.Keys) whose order can reach rendered output",
		Directive: "ordered",
		Packages:  append([]string{"corpus"}, outputBearing...),
		Run:       runMaporder,
	}
}

func runMaporder(pass *Pass) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		// maps.Keys/maps.Values calls neutralized by an immediate
		// slices.Sorted* wrap, or consumed by a range statement that the
		// range logic below judges on its own terms.
		handled := map[*ast.CallExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(calleeFunc(info, n), "slices",
					"Sorted", "SortedFunc", "SortedStableFunc") && len(n.Args) > 0 {
					if inner, ok := ast.Unparen(n.Args[0]).(*ast.CallExpr); ok && isMapsIter(info, inner) {
						handled[inner] = true
					}
				}
			case *ast.RangeStmt:
				if inner, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isMapsIter(info, inner) {
					handled[inner] = true
				}
			}
			return true
		})

		eachFuncDecl([]*ast.File{file}, func(fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					mapRange := isMapExpr(info, n.X)
					if inner, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isMapsIter(info, inner) {
						mapRange = true
					}
					if !mapRange {
						return true
					}
					if bodyFeedsCommutativeSink(info, n.Body) || feedsLaterSort(info, fd, n) {
						return true
					}
					pass.Reportf(n.Pos(),
						"iterates over a map in an output-bearing package; order is nondeterministic — sort the keys, feed a commutative sink (CellStats.Add / ResultSet.Put), or annotate //vgencheck:ordered <reason>")
				case *ast.CallExpr:
					if isMapsIter(info, n) && !handled[n] {
						pass.Reportf(n.Pos(),
							"maps.%s yields keys in nondeterministic order; wrap in slices.Sorted (or range with an ordered-safe body)",
							calleeFunc(info, n).Name())
					}
				}
				return true
			})
		})
	}
}

// isMapsIter reports a call to maps.Keys or maps.Values (stdlib "maps").
func isMapsIter(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(calleeFunc(info, call), "maps", "Keys", "Values")
}

// bodyFeedsCommutativeSink reports whether the loop body calls one of the
// order-independent merge paths: CellStats.Add or ResultSet.Put.
func bodyFeedsCommutativeSink(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if isMethodOn(fn, "eval", "CellStats", "Add") || isMethodOn(fn, "eval", "ResultSet", "Put") {
			found = true
		}
		return !found
	})
	return found
}

// feedsLaterSort reports whether the loop only accumulates into slices
// (via append) that the enclosing function sorts after the loop — the
// collect-then-sort idiom that restores determinism.
func feedsLaterSort(info *types.Info, fd *ast.FuncDecl, loop *ast.RangeStmt) bool {
	// Objects appended to inside the loop body.
	appended := map[types.Object]bool{}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
				continue // a user-defined append, not the builtin
			}
			if lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := idObject(info, lhs); obj != nil {
					appended[obj] = true
				}
			}
		}
		return true
	})
	if len(appended) == 0 {
		return false
	}
	// A sort call after the loop referencing one of those slices.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if !isPkgFunc(fn, "sort") &&
			!isPkgFunc(fn, "slices", "Sort", "SortFunc", "SortStableFunc") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && appended[idObject(info, id)] {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// idObject resolves an identifier to its object (use or definition).
func idObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
