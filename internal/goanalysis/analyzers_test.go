package goanalysis

// Golden coverage for every analyzer: at least one firing, one negative,
// and one suppressed case each (the suppressed cases are pinned through
// the returned inventory, not just by the absence of a diagnostic).

import "testing"

func TestMaporderGolden(t *testing.T) {
	res := RunGolden(t, Maporder(), "maporder")
	s := SuppressionAt(t, res, "maporder/a.go", 96)
	if !s.Used || s.Directive != "ordered" || s.Reason == "" {
		t.Errorf("explained waiver not honored: %+v", s)
	}
	bare := SuppressionAt(t, res, "maporder/a.go", 107)
	if bare.Used || bare.Reason != "" {
		t.Errorf("bare directive must not suppress: %+v", bare)
	}
}

func TestNondetGolden(t *testing.T) {
	seams := map[string]string{"nondet.seam": "golden seam fixture"}
	res := RunGolden(t, Nondet(seams), "nondet")
	s := SuppressionAt(t, res, "nondet/a.go", 61)
	if !s.Used || s.Directive != "nondet" {
		t.Errorf("explained waiver not honored: %+v", s)
	}
}

func TestNondetSeamIsNarrow(t *testing.T) {
	// Without the custom seam entry, the seam() fixture must fire: the
	// allow-list admits exactly the configured functions, nothing else.
	m, err := LoadModule("testdata/src", []string{"nondet"})
	if err != nil {
		t.Fatal(err)
	}
	res := analyze(m, []*Analyzer{Nondet(map[string]string{})}, false)
	found := false
	for _, f := range res.Findings {
		if f.File == "nondet/a.go" && f.Line == 68 {
			found = true
		}
	}
	if !found {
		t.Errorf("seam() did not fire with an empty seam map; findings: %v", res.Findings)
	}
}

func TestDurablesGolden(t *testing.T) {
	res := RunGolden(t, Durables(), "durables")
	s := SuppressionAt(t, res, "durables/a.go", 89)
	if !s.Used || s.Directive != "durables" {
		t.Errorf("explained waiver not honored: %+v", s)
	}
}

func TestCtxflowGolden(t *testing.T) {
	res := RunGolden(t, Ctxflow(), "ctxflow")
	s := SuppressionAt(t, res, "ctxflow/a.go", 46)
	if !s.Used || s.Directive != "ctxflow" {
		t.Errorf("explained waiver not honored: %+v", s)
	}
}

func TestFloatmergeGolden(t *testing.T) {
	// "eval" is analyzed too: its Add method accumulates into CellStats
	// fields with no want comments, pinning the blessed-path exemption.
	res := RunGolden(t, Floatmerge(), "floatmerge", "eval")
	s := SuppressionAt(t, res, "floatmerge/a.go", 43)
	if !s.Used || s.Directive != "floatmerge" {
		t.Errorf("explained waiver not honored: %+v", s)
	}
}
