package gen

import (
	"time"

	"repro/internal/model"
)

// Options parameterize backend construction through the registry. Each
// backend reads the fields it needs and ignores the rest.
type Options struct {
	// Family configures the simulated-model substrate (corpus scale, seed,
	// sampler choice) for the family backend.
	Family model.Config

	// ReplayPath is the JSONL recording served by the replay backend.
	ReplayPath string

	// Remote configures the HTTP remote backend (internal/remote).
	Remote RemoteOptions
}

// RemoteOptions configure the remote backend's transport. The struct
// lives here (not in internal/remote) so registry users select the
// backend by name without importing the transport package; internal/remote
// reads it in its factory. Zero values mean "transport default" — see
// remote.Config for the resolved numbers.
type RemoteOptions struct {
	// Endpoint is the completion service base URL (http://host:port).
	// Required: the factory fails without it.
	Endpoint string

	// AuthToken, when non-empty, is sent as a bearer token and must match
	// the server's configured token. CLIs read it from an env var
	// (-auth-env) so tokens never land in argv or shell history.
	AuthToken string

	// Timeout bounds one HTTP attempt; Budget bounds the whole sweep
	// (every request shares the budget deadline; a request past it fails
	// without retrying).
	Timeout time.Duration
	Budget  time.Duration

	// MaxAttempts is the per-request attempt budget; BackoffBase doubles
	// per attempt up to BackoffCap, deterministically jittered from
	// (Seed, request coordinates, attempt).
	MaxAttempts int
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// MaxInFlight bounds concurrent HTTP requests across the whole
	// transport, independent of the evaluation pool width.
	MaxInFlight int

	// BreakerThreshold consecutive transport failures trip the endpoint's
	// circuit breaker; after BreakerCooldown it half-opens for one probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Seed feeds the deterministic backoff jitter; use the sweep seed.
	Seed int64
}
