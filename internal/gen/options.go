package gen

import "repro/internal/model"

// Options parameterize backend construction through the registry. Each
// backend reads the fields it needs and ignores the rest.
type Options struct {
	// Family configures the simulated-model substrate (corpus scale, seed,
	// sampler choice) for the family backend.
	Family model.Config

	// ReplayPath is the JSONL recording served by the replay backend.
	ReplayPath string
}
