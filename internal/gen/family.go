package gen

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/problems"
)

func init() {
	Register("family", "simulated n-gram model line-up (the paper's Table I rows)",
		func(o Options) (Backend, error) {
			return NewFamilyBackend(model.NewFamily(o.Family)), nil
		})
}

// FamilyBackend adapts the simulated n-gram model line-up (model.Family)
// to the Backend interface. It is a thin shim: sampling goes through the
// exact Generator.CompleteAt path the pre-backend evaluation engine
// called, so sweeps through this backend are byte-identical to the old
// hardwired wiring (pinned by eval's differential test).
type FamilyBackend struct {
	fam *model.Family
}

// NewFamilyBackend wraps an existing family.
func NewFamilyBackend(f *model.Family) *FamilyBackend { return &FamilyBackend{fam: f} }

// Family exposes the wrapped family for callers that need the substrate
// (tokenizer, variant bank, corpus statistics).
func (b *FamilyBackend) Family() *model.Family { return b.fam }

// Complete samples one completion from the keyed (model, variant)
// generator. ok is false for unknown models, unknown variant strings, and
// variants the paper does not evaluate (fine-tuned code-davinci-002).
func (b *FamilyBackend) Complete(key Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64) (Sample, bool) {
	v, ok := ParseVariant(key.Variant)
	if !ok {
		return Sample{}, false
	}
	g, ok := b.fam.Generator(model.ID(key.Model), v)
	if !ok {
		return Sample{}, false
	}
	s := g.CompleteAt(p, level, temperature, sampleIdx, baseSeed)
	return Sample{Completion: s.Completion, Mechanism: s.Mechanism, Latency: s.Latency}, true
}

// Variants lists the paper's 11 evaluated (model, variant) rows.
func (b *FamilyBackend) Variants() []Key { return catalogKeys() }

// Describe identifies the backend and its substrate configuration.
func (b *FamilyBackend) Describe() string {
	return fmt.Sprintf("family: simulated n-gram line-up (%d fine-tuning docs)", b.fam.CorpusDocs())
}

// ParseVariant maps a Key.Variant string onto the catalog's typed
// variant. It is the single home of the mapping — backends, examples,
// and tests that need typed query coordinates all go through it.
func ParseVariant(s string) (model.Variant, bool) {
	switch s {
	case VariantPT:
		return model.Pretrained, true
	case VariantFT:
		return model.FineTuned, true
	}
	return 0, false
}

// catalogKeys enumerates the catalog line-up in Table I order: every
// model pre-trained, plus fine-tuned where the paper evaluates it.
func catalogKeys() []Key {
	var out []Key
	for _, id := range model.IDs {
		out = append(out, Key{Model: string(id), Variant: VariantPT})
		if model.Lookup(id).HasFineTuned {
			out = append(out, Key{Model: string(id), Variant: VariantFT})
		}
	}
	return out
}
