// Package gen is the pluggable generation-backend layer of the
// evaluation stack. The paper benchmarks one fixed Verilog evaluation
// pipeline against many completion sources (Megatron, CodeGen, J1,
// Codex); this package makes the source a first-class interface so the
// eval engine, harness, and tools speak to *any* generator — the
// simulated n-gram family, recorded transcripts of real LLMs, or
// adversarial mutants — through one contract.
//
// A Backend is addressed by Key (model, variant) and produces one Sample
// per (problem, level, temperature, sampleIdx, baseSeed) coordinate. The
// determinism contract is the same one the parallel evaluation engine is
// built on (DESIGN.md, "Determinism under parallelism"): a sample is a
// pure function of its coordinates, so any worker may produce any sample
// in any order and the sweep output is byte-identical.
//
// Backends register under a short name (Register/New/Names), which is
// how the harness, core.Framework, and vgen-eval's -backend flag select
// them.
package gen

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/problems"
)

// Key names one generation line — (model, variant) — within a backend.
// The fields are plain strings so third-party backends need no dependency
// on the simulated-family catalog; the family backend maps them onto its
// model.ID / model.Variant pairs.
type Key struct {
	Model   string
	Variant string // VariantPT or VariantFT
}

// Variant strings used in Key.Variant. They match model.Variant.String().
const (
	VariantPT = "PT"
	VariantFT = "FT"
)

func (k Key) String() string { return k.Model + "/" + k.Variant }

// Sample is one produced completion with its simulated inference latency.
type Sample struct {
	Completion string
	Mechanism  string // how the completion was produced ("correct", "babble", ...)
	Latency    float64
}

// Backend is a source of completions. Implementations must be safe for
// concurrent use: the evaluation engine calls Complete from every worker
// of its pool.
type Backend interface {
	// Complete produces sample sampleIdx of the evaluation cell identified
	// by (key, problem, level, temperature). baseSeed is the cell's hashed
	// base seed (eval.Runner derives it from its own seed and the cell
	// coordinates); the sample must be a pure function of the arguments —
	// same arguments, byte-identical Sample — so parallel and serial
	// sweeps agree. ok is false when the backend has no line for key, in
	// which case the engine scores the cell as empty.
	Complete(key Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64) (s Sample, ok bool)

	// Variants lists the keys the backend is known to serve, for UIs and
	// conformance checks. Backends that synthesize completions for any key
	// (e.g. the mutant backend) list their canonical line-up.
	Variants() []Key

	// Describe returns a short human-readable description. It also tags
	// the evaluation engine's outcome-cache keys, so two backends sharing
	// a Runner seed never alias cache entries; keep it stable for the
	// backend's lifetime.
	Describe() string
}

// Factory builds a backend from construction options. Each backend reads
// only the fields it needs and must return an error (not panic) on
// unusable options.
type Factory func(o Options) (Backend, error)

type registration struct {
	factory Factory
	desc    string
}

var registry = struct {
	sync.RWMutex
	m map[string]registration
}{m: map[string]registration{}}

// Register adds a backend factory under a name, with a short static
// description shown by registry listings (`vgen-eval -backend list`). The
// description stands in for Describe() before any instance exists — a
// replay backend, say, cannot be constructed just to be listed.
// Registering an empty name or a duplicate panics: registration happens
// in init functions, where a collision is a programming error.
func Register(name, desc string, f Factory) {
	if name == "" || f == nil {
		panic("gen: Register with empty name or nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("gen: backend %q registered twice", name))
	}
	registry.m[name] = registration{factory: f, desc: desc}
}

// New constructs the backend registered under name.
func New(name string, o Options) (Backend, error) {
	registry.RLock()
	r, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("gen: unknown backend %q (have %v)", name, Names())
	}
	return r.factory(o)
}

// Names lists the registered backend names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Info describes one registered backend for listings.
type Info struct {
	Name string
	Desc string
}

// List returns every registered backend with its description, sorted by
// name — the deterministic feed for `-backend list` style UIs (map
// iteration order never leaks through).
func List() []Info {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Info, 0, len(registry.m))
	for n, r := range registry.m {
		out = append(out, Info{Name: n, Desc: r.desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
