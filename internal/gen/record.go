package gen

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"sync"

	"repro/internal/problems"
)

// Record is one captured sample, serialized as a single JSONL line. The
// coordinates (model, variant, problem, level, temp_milli, sample)
// identify the draw; base_seed is informational (the replay backend
// re-derives nothing from it). Temperature is stored in thousandths
// (rounded) as an integer so the JSON key never suffers float formatting
// drift. Note the evaluation engine's seed hashing *truncates* t*1000
// instead of rounding — recorder and replayer only ever need to agree
// with each other, but don't reuse tempMilli to reconstruct seeds.
type Record struct {
	Model      string  `json:"model"`
	Variant    string  `json:"variant"`
	Problem    int     `json:"problem"`
	Level      int     `json:"level"`
	TempMilli  int     `json:"temp_milli"`
	Sample     int     `json:"sample"`
	BaseSeed   int64   `json:"base_seed"`
	Completion string  `json:"completion"`
	Mechanism  string  `json:"mechanism,omitempty"`
	Latency    float64 `json:"latency"`
}

// recKey addresses one recorded sample. Latency and completion round-trip
// exactly (encoding/json emits shortest-round-trip float64), so a
// replayed recording reproduces CellStats bit for bit.
type recKey struct {
	model, variant            string
	problem, level, tempMilli int
	sample                    int
}

// TempScale is the temperature quantization shared by every serialized
// coordinate in the system: recordings, the replay backend's lookup keys,
// and the wire package's shard-plan/shard-result coordinates all key
// temperature in thousandths. One constant means record/replay and
// cross-process shard results can never disagree on float keying.
const TempScale = 1000

// TempMilli quantizes a temperature to thousandths (rounded) for
// coordinate keys. Every paper temperature is an exact multiple of
// 1/TempScale, so TempMilli(t)/TempScale reproduces t bit-for-bit for the
// sweep grid; callers serializing arbitrary temperatures should verify
// that round trip (see wire's coordinate validation).
func TempMilli(t float64) int { return int(math.Round(t * TempScale)) }

// Recorder wraps any backend and captures every sample it produces as
// JSONL, one line per distinct coordinate (repeat requests — re-sweeps,
// cache-warm table regenerations — are deduplicated). Line order follows
// worker completion order and is therefore not deterministic; the replay
// backend indexes by coordinates, so order never matters.
type Recorder struct {
	inner Backend

	mu   sync.Mutex
	enc  *json.Encoder
	seen map[recKey]bool
	err  error // first write error, sticky
}

// NewRecorder wraps inner, writing captured samples to w.
func NewRecorder(inner Backend, w io.Writer) *Recorder {
	return &Recorder{inner: inner, enc: json.NewEncoder(w), seen: map[recKey]bool{}}
}

// Complete delegates to the wrapped backend and captures the sample.
func (r *Recorder) Complete(key Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64) (Sample, bool) {
	s, ok := r.inner.Complete(key, p, level, temperature, sampleIdx, baseSeed)
	if !ok {
		return s, false
	}
	r.record(key, p, level, temperature, sampleIdx, baseSeed, s)
	return s, true
}

// record captures one produced sample, deduplicating by coordinates.
func (r *Recorder) record(key Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64, s Sample) {
	k := recKey{
		model: key.Model, variant: key.Variant,
		problem: p.Number, level: int(level), tempMilli: TempMilli(temperature),
		sample: sampleIdx,
	}
	r.mu.Lock()
	if !r.seen[k] {
		r.seen[k] = true
		if err := r.enc.Encode(Record{
			Model: key.Model, Variant: key.Variant,
			Problem: p.Number, Level: int(level), TempMilli: k.tempMilli,
			Sample: sampleIdx, BaseSeed: baseSeed,
			Completion: s.Completion, Mechanism: s.Mechanism, Latency: s.Latency,
		}); err != nil && r.err == nil {
			r.err = err
		}
	}
	r.mu.Unlock()
}

// CompleteBatch preserves the wrapped backend's batch fast path: if inner
// is a BatchBackend the whole batch goes through in one call, otherwise
// each request is served via Complete (which already records). Successful
// results are captured exactly like Complete's; failed or declined slots
// produce no line, so a recording only ever holds real samples.
func (r *Recorder) CompleteBatch(ctx context.Context, reqs []Request) []BatchResult {
	bb, ok := r.inner.(BatchBackend)
	if !ok {
		out := make([]BatchResult, len(reqs))
		for i, q := range reqs {
			if err := ctx.Err(); err != nil {
				out[i] = BatchResult{Err: err}
				continue
			}
			s, got := r.Complete(q.Key, q.Problem, q.Level, q.Temperature, q.SampleIdx, q.BaseSeed)
			out[i] = BatchResult{Sample: s, OK: got}
		}
		return out
	}
	out := bb.CompleteBatch(ctx, reqs)
	for i, res := range out {
		if i >= len(reqs) || res.Err != nil || !res.OK {
			continue
		}
		q := reqs[i]
		r.record(q.Key, q.Problem, q.Level, q.Temperature, q.SampleIdx, q.BaseSeed, res.Sample)
	}
	return out
}

// Variants delegates to the wrapped backend.
func (r *Recorder) Variants() []Key { return r.inner.Variants() }

// Describe tags the wrapped description so recorded and unrecorded
// runners never alias outcome-cache entries.
func (r *Recorder) Describe() string { return "record(" + r.inner.Describe() + ")" }

// Err reports the first write error, if any. Check it after the sweep:
// Complete never fails the evaluation over a sick sink.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
