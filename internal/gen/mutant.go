package gen

import (
	"math/rand"

	"repro/internal/model"
	"repro/internal/mutate"
	"repro/internal/problems"
	"repro/internal/vlog"
)

func init() {
	Register("mutant", "AST near-miss / truncation generator (verdict-pipeline probe)",
		func(o Options) (Backend, error) { return NewMutant(), nil })
}

// Mutant generates controlled adversarial completions straight from the
// mutation engine: mostly AST near-misses of the reference solution (the
// paper's characteristic compiles-but-fails failures), a thin stream of
// verbatim references, and truncated bodies that must not compile. It
// needs no corpus, no tokenizer, and no trained LM, so it builds
// instantly — the robustness probe for the verdict pipeline: a sweep over
// this backend exercises every verdict bucket with known ground truth at
// full engine speed.
//
// The backend serves any key (the mix is keyed into baseSeed, which
// already hashes model and variant), and ignores temperature: mutation
// pressure, not sampling entropy, is the knob here.
type Mutant struct{}

// NewMutant builds the mutant backend.
func NewMutant() *Mutant { return &Mutant{} }

// Complete draws one adversarial completion. Purely a function of
// (problem, baseSeed, sampleIdx): the rng stream is the engine's own
// splitmix derivation, so the backend honors the cross-worker determinism
// contract by construction.
func (m *Mutant) Complete(key Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64) (Sample, bool) {
	rng := rand.New(rand.NewSource(model.SampleSeed(baseSeed, sampleIdx)))
	lat := 0.5 * (0.9 + 0.2*rng.Float64())
	u := rng.Float64()
	if u < 0.10 {
		return Sample{Completion: p.RefBody, Mechanism: "correct", Latency: lat}, true
	}
	if u < 0.80 {
		if res, err := mutate.Apply(p.ReferenceSource(), rng); err == nil {
			if body, ok := completionTail(res.Source); ok {
				return Sample{Completion: body, Mechanism: "mutant:" + res.Operator, Latency: lat}, true
			}
		}
		// no mutation site / no behavioural tail: fall through to a broken
		// completion so the sample cannot spuriously pass
	}
	body := p.RefBody
	cut := len(body) / 3
	if cut < 1 {
		cut = 1
	}
	cut += rng.Intn(cut + 1) // cut somewhere in the middle third onward
	if cut >= len(body) {
		cut = len(body) - 1
	}
	return Sample{Completion: body[:cut], Mechanism: "truncation", Latency: lat}, true
}

// Variants lists the catalog line-up; any other key is served too.
func (m *Mutant) Variants() []Key { return catalogKeys() }

// Describe identifies the backend.
func (m *Mutant) Describe() string { return "mutant: AST near-miss / truncation generator" }

// completionTail extracts the behavioural items (always/initial/assign)
// of a mutated module's printed form as a completion: the prompt already
// carries the header and declarations, so the completion is the tail plus
// the closing endmodule.
func completionTail(src string) (string, bool) {
	f, err := vlog.Parse(src)
	if err != nil || len(f.Modules) == 0 {
		return "", false
	}
	var items []vlog.Item
	for _, it := range f.Modules[0].Items {
		switch it.(type) {
		case *vlog.AlwaysBlock, *vlog.InitialBlock, *vlog.ContAssign:
			items = append(items, it)
		}
	}
	if len(items) == 0 {
		return "", false
	}
	return vlog.PrintItems(items) + "endmodule\n", true
}
