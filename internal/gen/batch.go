package gen

// The optional batch fast path. A hosted completion service pays a fixed
// per-call overhead (HTTP round trip, auth, scheduling) that dwarfs the
// marginal cost of one more sample in the payload; the sweep fan-out
// (problems x levels x temps x samples) is exactly the traffic shape that
// amortizes it. Backends that can serve many coordinates per call
// implement BatchBackend and the evaluation engine coalesces work items
// into batches for them; everything else keeps the one-call-per-sample
// Complete path, byte-identical either way because samples are pure
// functions of their coordinates.

import (
	"context"

	"repro/internal/problems"
)

// Request is one completion request by coordinate — Complete's arguments
// reified so a batch (and a wire protocol) can carry many at once.
type Request struct {
	Key         Key
	Problem     *problems.Problem
	Level       problems.Level
	Temperature float64
	SampleIdx   int
	BaseSeed    int64
}

// BatchResult is the outcome of one Request in a batch. The three states
// are distinct on purpose:
//
//   - Err != nil: the backend could not produce the sample (transport
//     exhausted its retries, budget ran out). The engine must degrade the
//     whole cell to an explicit missing result — scoring it from fewer
//     samples would be a silent gap.
//   - Err == nil, OK == false: the backend serves no line at these
//     coordinates (unknown model, sample absent from a recording) — the
//     established Complete semantics; the slot stays out of the stats.
//   - Err == nil, OK == true: Sample holds the completion.
type BatchResult struct {
	Sample Sample
	OK     bool
	Err    error
}

// BatchBackend is the optional fast path: produce samples for many
// coordinates in one call. The evaluation engine detects it and coalesces
// work items into batches (eval.Runner.BatchSize / BatchLinger); backends
// without it are served sample-by-sample through Complete.
//
// The contract extends Backend's: the returned slice must have exactly
// one BatchResult per Request, in request order; each result must be the
// same Sample that Complete would return at those coordinates (purity is
// per-coordinate, so batch composition can never change the sweep); one
// failing request must not poison its siblings — per-request failures go
// in that entry's Err, not the whole batch; and CompleteBatch must be
// safe for concurrent use, like Complete. ctx cancellation applies to the
// whole call.
type BatchBackend interface {
	Backend
	CompleteBatch(ctx context.Context, reqs []Request) []BatchResult
}
