package gen

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/problems"
)

func init() {
	Register("replay", "serves completions from a JSONL recording (-replay FILE)", func(o Options) (Backend, error) {
		if o.ReplayPath == "" {
			return nil, errors.New("gen: replay backend needs a recording (set ReplayPath / -replay)")
		}
		f, err := os.Open(o.ReplayPath)
		if err != nil {
			return nil, fmt.Errorf("gen: replay: %w", err)
		}
		defer f.Close()
		r, err := NewReplay(f)
		if err != nil {
			return nil, fmt.Errorf("gen: replay %s: %w", o.ReplayPath, err)
		}
		return r, nil
	})
}

// Replay serves completions from a JSONL recording (see Record). This is
// the path that lets the harness score *real* LLM transcripts: capture a
// model's completions offline (or record any backend with NewRecorder),
// then run the full sweep against the frozen samples. Lookups are by
// coordinate, so a replayed sweep reproduces the recorded run's CellStats
// exactly — including latency sums — independent of worker width or the
// order the recording was written in.
type Replay struct {
	samples map[recKey]Sample
	keys    []Key
	lines   int
	digest  uint64
}

// NewReplay loads a JSONL recording. Later lines win when a coordinate is
// recorded twice (recordings concatenate cleanly). Blank lines are
// skipped; a malformed line is an error, not a silent drop.
func NewReplay(r io.Reader) (*Replay, error) {
	rp := &Replay{samples: map[recKey]Sample{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024) // completions can be long
	seenKeys := map[Key]bool{}
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		rp.samples[recKey{
			model: rec.Model, variant: rec.Variant,
			problem: rec.Problem, level: rec.Level, tempMilli: rec.TempMilli,
			sample: rec.Sample,
		}] = Sample{Completion: rec.Completion, Mechanism: rec.Mechanism, Latency: rec.Latency}
		k := Key{Model: rec.Model, Variant: rec.Variant}
		if !seenKeys[k] {
			seenKeys[k] = true
			rp.keys = append(rp.keys, k)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rp.lines = line
	sort.Slice(rp.keys, func(i, j int) bool {
		if rp.keys[i].Model != rp.keys[j].Model {
			return rp.keys[i].Model < rp.keys[j].Model
		}
		return rp.keys[i].Variant < rp.keys[j].Variant
	})
	rp.digest = rp.contentDigest()
	return rp, nil
}

// contentDigest hashes the decoded samples — coordinates and payloads —
// independent of file line order and of duplicate lines that lost the
// later-line-wins race. Describe() carries it because that tag is the
// sweep identity distributed shards are validated and merged under: two
// workers replaying recordings that differ in even one completion must
// not produce shard files that merge silently into one table.
func (r *Replay) contentDigest() uint64 {
	var sum uint64
	//vgencheck:ordered wrapping uint64 add of per-entry hashes; the digest is order-independent by construction
	for k, s := range r.samples {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d\x00%d\x00%d\x00%s\x00%s\x00%b",
			k.model, k.variant, k.problem, k.level, k.tempMilli, k.sample,
			s.Completion, s.Mechanism, math.Float64bits(s.Latency))
		sum += h.Sum64() // wrapping add: order-independent over the map
	}
	return sum
}

// Complete returns the recorded sample at the exact coordinates; ok is
// false for anything not in the recording, which the engine scores as an
// empty slot rather than inventing a completion.
func (r *Replay) Complete(key Key, p *problems.Problem, level problems.Level, temperature float64, sampleIdx int, baseSeed int64) (Sample, bool) {
	s, ok := r.samples[recKey{
		model: key.Model, variant: key.Variant,
		problem: p.Number, level: int(level), tempMilli: TempMilli(temperature),
		sample: sampleIdx,
	}]
	return s, ok
}

// Variants lists the (model, variant) lines present in the recording.
func (r *Replay) Variants() []Key { return append([]Key(nil), r.keys...) }

// Describe summarizes the recording, including a content digest so two
// different recordings never share an identity tag.
func (r *Replay) Describe() string {
	return fmt.Sprintf("replay: %d recorded samples across %d model lines (content %016x)",
		len(r.samples), len(r.keys), r.digest)
}

// Len reports how many distinct samples the recording holds.
func (r *Replay) Len() int { return len(r.samples) }
