package gen_test

// The backend conformance suite: every backend in the registry must
// honor the layer's contract — samples are pure functions of their
// coordinates, sweeps are byte-identical at any worker-pool width, and
// Complete is safe to call from every worker at once (the concurrency
// test is meaningful under `go test -race`, which the Makefile race
// target and CI run).

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/problems"
	"repro/internal/remote"
)

const confSeed = 55

// confVariant maps a backend key onto typed query coordinates.
func confVariant(t *testing.T, k gen.Key) (model.ID, model.Variant) {
	t.Helper()
	v, ok := gen.ParseVariant(k.Variant)
	if !ok {
		t.Fatalf("unknown variant string %q", k.Variant)
	}
	return model.ID(k.Model), v
}

// confQueries is the probe sweep: two problems, two levels, two
// temperatures, three samples each, on the backend's first variant.
func confQueries(t *testing.T, b gen.Backend) []eval.Query {
	id, v := confVariant(t, b.Variants()[0])
	var qs []eval.Query
	for _, pn := range []int{1, 6} {
		for _, l := range []problems.Level{problems.LevelLow, problems.LevelMedium} {
			for _, temp := range []float64{0.1, 1.0} {
				qs = append(qs, eval.Query{
					Model: id, Variant: v,
					Problem: problems.ByNumber(pn), Level: l, Temperature: temp, N: 3,
				})
			}
		}
	}
	return qs
}

// recordForReplay produces the JSONL recording the replay backend serves
// during conformance: the mutant backend (cheap: no corpus, no training)
// swept over the probe queries under the conformance runner seed.
func recordForReplay(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conformance.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := gen.New("mutant", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := gen.NewRecorder(src, f)
	r := eval.NewRunner(rec, confSeed)
	r.Workers = 4
	r.EvaluateBatch(confQueries(t, src))
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// startRemoteEndpoint serves the mutant backend over the wire protocol
// in-process and returns an endpoint URL for the remote backend to dial.
// The server is closed when the test finishes.
func startRemoteEndpoint(t *testing.T) string {
	t.Helper()
	inner, err := gen.New("mutant", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(remote.NewHandler(inner, remote.ServerOptions{}))
	url, err := srv.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("remote server close: %v", err)
		}
	})
	return url
}

// backendsUnderTest constructs every registered backend. A backend this
// helper does not know how to parameterize fails the suite loudly rather
// than being skipped silently. The remote backend is dialed against an
// in-process wire server over the mutant backend, so the whole transport
// stack rides through every conformance test.
func backendsUnderTest(t *testing.T) map[string]gen.Backend {
	t.Helper()
	out := map[string]gen.Backend{}
	for _, name := range gen.Names() {
		opts := gen.Options{Family: model.Config{Seed: 11, CorpusFiles: 25}}
		switch name {
		case "replay":
			opts.ReplayPath = recordForReplay(t)
		case "remote":
			opts.Remote = gen.RemoteOptions{
				Endpoint:    startRemoteEndpoint(t),
				Timeout:     5 * time.Second,
				BackoffBase: time.Millisecond,
				BackoffCap:  4 * time.Millisecond,
				Seed:        confSeed,
			}
		}
		b, err := gen.New(name, opts)
		if err != nil {
			t.Fatalf("backend %q failed to construct: %v", name, err)
		}
		out[name] = b
	}
	return out
}

func TestRegistryNames(t *testing.T) {
	names := gen.Names()
	want := map[string]bool{"family": false, "mutant": false, "replay": false, "remote": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing backend %q (have %v)", n, names)
		}
	}
	if _, err := gen.New("no-such-backend", gen.Options{}); err == nil {
		t.Error("unknown backend name should error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	gen.Register("family", "dup", func(gen.Options) (gen.Backend, error) { return nil, nil })
}

func TestConformanceVariantsNonEmpty(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		if len(b.Variants()) == 0 {
			t.Errorf("%s: Variants() empty", name)
		}
		if b.Describe() == "" {
			t.Errorf("%s: Describe() empty", name)
		}
	}
}

// TestConformanceDeterministicSamples pins the purity contract: Complete
// at fixed coordinates returns the identical Sample every time, for every
// registered backend.
func TestConformanceDeterministicSamples(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		key := b.Variants()[0]
		for _, pn := range []int{1, 6} {
			p := problems.ByNumber(pn)
			for _, temp := range []float64{0.1, 1.0} {
				for idx := 0; idx < 3; idx++ {
					s1, ok1 := b.Complete(key, p, problems.LevelLow, temp, idx, 777)
					s2, ok2 := b.Complete(key, p, problems.LevelLow, temp, idx, 777)
					if ok1 != ok2 || s1 != s2 {
						t.Fatalf("%s: sample (p%d t%.1f i%d) not deterministic:\n%+v ok=%v\n%+v ok=%v",
							name, pn, temp, idx, s1, ok1, s2, ok2)
					}
				}
			}
		}
	}
}

// TestConformanceWorkerWidthIdentity runs the probe sweep through the
// real engine at pool widths 1 and 8 and requires bit-identical
// CellStats (including float latency sums) from every backend.
func TestConformanceWorkerWidthIdentity(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		qs := confQueries(t, b)
		var base []eval.CellStats
		for _, workers := range []int{1, 8} {
			r := eval.NewRunner(b, confSeed)
			r.Workers = workers
			got := r.EvaluateBatch(qs)
			if base == nil {
				base = got
				// the sweep must actually produce samples, or the identity
				// check would pass vacuously on an all-empty backend
				total := 0
				for _, st := range got {
					total += st.Samples
				}
				if total == 0 {
					t.Fatalf("%s: probe sweep produced no samples", name)
				}
				continue
			}
			for qi := range qs {
				if got[qi] != base[qi] {
					t.Fatalf("%s: query %d diverges across widths: %+v != %+v",
						name, qi, got[qi], base[qi])
				}
			}
		}
	}
}

// TestConformanceConcurrentComplete hammers Complete from 8 goroutines
// against precomputed expectations — the direct data-race probe for the
// -race job.
func TestConformanceConcurrentComplete(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		key := b.Variants()[0]
		p := problems.ByNumber(6)
		type coord struct {
			idx  int
			temp float64
		}
		var coords []coord
		expect := map[coord]gen.Sample{}
		for _, temp := range []float64{0.1, 1.0} {
			for idx := 0; idx < 4; idx++ {
				c := coord{idx: idx, temp: temp}
				coords = append(coords, c)
				if s, ok := b.Complete(key, p, problems.LevelLow, temp, idx, 777); ok {
					expect[c] = s
				}
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 3; rep++ {
					for _, c := range coords {
						s, ok := b.Complete(key, p, problems.LevelLow, c.temp, c.idx, 777)
						want, wantOK := expect[c]
						if ok != wantOK || (ok && s != want) {
							t.Errorf("%s: concurrent sample drifted at %+v", name, c)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	}
}

// confRequests builds a small batch of completion requests on the
// backend's first variant.
func confRequests(b gen.Backend, n int) []gen.Request {
	key := b.Variants()[0]
	var reqs []gen.Request
	for idx := 0; idx < n; idx++ {
		p := problems.ByNumber(1 + (idx%2)*5) // alternate problems 1 and 6
		reqs = append(reqs, gen.Request{
			Key: key, Problem: p, Level: problems.LevelLow,
			Temperature: 0.1 + 0.9*float64(idx%2), SampleIdx: idx / 2, BaseSeed: 777,
		})
	}
	return reqs
}

// batchBackendsUnderTest filters the registry for backends implementing
// the optional batch interface. At least the remote backend must — if
// the filter comes back empty the batch conformance tests are passing
// vacuously, which is itself a failure.
func batchBackendsUnderTest(t *testing.T) map[string]gen.BatchBackend {
	t.Helper()
	out := map[string]gen.BatchBackend{}
	for name, b := range backendsUnderTest(t) {
		if bb, ok := b.(gen.BatchBackend); ok {
			out[name] = bb
		}
	}
	if len(out) == 0 {
		t.Fatal("no registered backend implements gen.BatchBackend; batch conformance is vacuous")
	}
	return out
}

// TestConformanceBatchSingleEquivalence pins the BatchBackend contract:
// CompleteBatch must return, slot for slot, exactly what Complete
// returns at the same coordinates — same samples, same declines.
func TestConformanceBatchSingleEquivalence(t *testing.T) {
	for name, bb := range batchBackendsUnderTest(t) {
		reqs := confRequests(bb, 8)
		res := bb.CompleteBatch(context.Background(), reqs)
		if len(res) != len(reqs) {
			t.Fatalf("%s: %d results for %d requests", name, len(res), len(reqs))
		}
		for i, q := range reqs {
			if res[i].Err != nil {
				t.Fatalf("%s: slot %d errored on a healthy backend: %v", name, i, res[i].Err)
			}
			s, ok := bb.Complete(q.Key, q.Problem, q.Level, q.Temperature, q.SampleIdx, q.BaseSeed)
			if ok != res[i].OK || (ok && s != res[i].Sample) {
				t.Fatalf("%s: slot %d diverges from single-call path:\nbatch  %+v ok=%v\nsingle %+v ok=%v",
					name, i, res[i].Sample, res[i].OK, s, ok)
			}
		}
	}
}

// TestConformanceBatchPartialFailureIsolation pins per-request failure
// isolation: an unservable request in the middle of a batch must not
// perturb its siblings' results.
func TestConformanceBatchPartialFailureIsolation(t *testing.T) {
	for name, bb := range batchBackendsUnderTest(t) {
		reqs := confRequests(bb, 3)
		reqs[1].Problem = &problems.Problem{Number: 999} // not in the problem set
		res := bb.CompleteBatch(context.Background(), reqs)
		if len(res) != len(reqs) {
			t.Fatalf("%s: %d results for %d requests", name, len(res), len(reqs))
		}
		for _, i := range []int{0, 2} {
			q := reqs[i]
			s, ok := bb.Complete(q.Key, q.Problem, q.Level, q.Temperature, q.SampleIdx, q.BaseSeed)
			if res[i].Err != nil || ok != res[i].OK || (ok && s != res[i].Sample) {
				t.Fatalf("%s: sibling slot %d was poisoned by the failed request: %+v", name, i, res[i])
			}
		}
		if res[1].OK {
			t.Fatalf("%s: unservable request came back OK: %+v", name, res[1])
		}
		if name == "remote" && res[1].Err == nil {
			t.Fatalf("%s: server-side failure should surface as a per-slot error", name)
		}
	}
}

// TestConformanceConcurrentCompleteBatch hammers CompleteBatch from 8
// goroutines against precomputed expectations — the batch-path data-race
// probe for the -race job.
func TestConformanceConcurrentCompleteBatch(t *testing.T) {
	for name, bb := range batchBackendsUnderTest(t) {
		reqs := confRequests(bb, 6)
		want := bb.CompleteBatch(context.Background(), reqs)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 3; rep++ {
					got := bb.CompleteBatch(context.Background(), reqs)
					for i := range reqs {
						if got[i].Err != nil || got[i] != want[i] {
							t.Errorf("%s: concurrent batch slot %d drifted: %+v != %+v", name, i, got[i], want[i])
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestConformanceBatchCompositionIdentity runs the probe sweep through
// the engine at batch sizes 1, 3, and 16 (with and without a linger
// window) and requires bit-identical CellStats: how work coalesces into
// batches must never reach the output bytes.
func TestConformanceBatchCompositionIdentity(t *testing.T) {
	for name, bb := range batchBackendsUnderTest(t) {
		qs := confQueries(t, bb)
		var base []eval.CellStats
		for _, batch := range []int{1, 3, 16} {
			r := eval.NewRunner(bb, confSeed)
			r.Workers = 4
			r.BatchSize = batch
			if batch == 3 {
				r.BatchLinger = time.Millisecond
			}
			got := r.EvaluateBatch(qs)
			if base == nil {
				base = got
				continue
			}
			for qi := range qs {
				if got[qi] != base[qi] {
					t.Fatalf("%s: query %d diverges at batch size %d: %+v != %+v",
						name, qi, batch, got[qi], base[qi])
				}
			}
		}
	}
}

// TestRecorderCompleteBatch pins the Recorder's batch path: wrapping a
// single-call backend, CompleteBatch must fall back to per-request
// Complete calls and still record every served sample for replay.
func TestRecorderCompleteBatch(t *testing.T) {
	src, err := gen.New("mutant", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := gen.NewRecorder(src, f)
	reqs := confRequests(src, 6)
	res := rec.CompleteBatch(context.Background(), reqs)
	for i, q := range reqs {
		s, ok := src.Complete(q.Key, q.Problem, q.Level, q.Temperature, q.SampleIdx, q.BaseSeed)
		if res[i].Err != nil || ok != res[i].OK || (ok && s != res[i].Sample) {
			t.Fatalf("recorder batch slot %d diverges from inner backend: %+v", i, res[i])
		}
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	replay, err := gen.NewReplay(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range reqs {
		if !res[i].OK {
			continue
		}
		s, ok := replay.Complete(q.Key, q.Problem, q.Level, q.Temperature, q.SampleIdx, q.BaseSeed)
		if !ok || s != res[i].Sample {
			t.Fatalf("batch-recorded sample %d does not replay: %+v ok=%v", i, s, ok)
		}
	}
}

// TestReplayDescribeDigestsContent pins the distributed-sweep identity
// property: recordings that differ in any sample content must carry
// different Describe() tags (the tag is what wire.Merge and plan
// validation compare), while a reordered copy of the same recording must
// carry the same tag.
func TestReplayDescribeDigestsContent(t *testing.T) {
	lineA := `{"model":"m","variant":"PT","problem":1,"level":0,"temp_milli":100,"sample":0,"completion":"  assign y = a;\nendmodule\n","latency":1}`
	lineB := `{"model":"m","variant":"PT","problem":2,"level":0,"temp_milli":100,"sample":0,"completion":"  assign y = b;\nendmodule\n","latency":1}`
	lineB2 := `{"model":"m","variant":"PT","problem":2,"level":0,"temp_milli":100,"sample":0,"completion":"  assign y = ~b;\nendmodule\n","latency":1}`

	load := func(text string) *gen.Replay {
		t.Helper()
		r, err := gen.NewReplay(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ab := load(lineA + "\n" + lineB + "\n")
	ba := load(lineB + "\n" + lineA + "\n")
	ab2 := load(lineA + "\n" + lineB2 + "\n")
	if ab.Describe() != ba.Describe() {
		t.Errorf("line order changed the identity tag:\n%s\n%s", ab.Describe(), ba.Describe())
	}
	if ab.Describe() == ab2.Describe() {
		t.Errorf("recordings with different completions share the identity tag %q", ab.Describe())
	}
}
