package gen_test

// The backend conformance suite: every backend in the registry must
// honor the layer's contract — samples are pure functions of their
// coordinates, sweeps are byte-identical at any worker-pool width, and
// Complete is safe to call from every worker at once (the concurrency
// test is meaningful under `go test -race`, which the Makefile race
// target and CI run).

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/problems"
)

const confSeed = 55

// confVariant maps a backend key onto typed query coordinates.
func confVariant(t *testing.T, k gen.Key) (model.ID, model.Variant) {
	t.Helper()
	v, ok := gen.ParseVariant(k.Variant)
	if !ok {
		t.Fatalf("unknown variant string %q", k.Variant)
	}
	return model.ID(k.Model), v
}

// confQueries is the probe sweep: two problems, two levels, two
// temperatures, three samples each, on the backend's first variant.
func confQueries(t *testing.T, b gen.Backend) []eval.Query {
	id, v := confVariant(t, b.Variants()[0])
	var qs []eval.Query
	for _, pn := range []int{1, 6} {
		for _, l := range []problems.Level{problems.LevelLow, problems.LevelMedium} {
			for _, temp := range []float64{0.1, 1.0} {
				qs = append(qs, eval.Query{
					Model: id, Variant: v,
					Problem: problems.ByNumber(pn), Level: l, Temperature: temp, N: 3,
				})
			}
		}
	}
	return qs
}

// recordForReplay produces the JSONL recording the replay backend serves
// during conformance: the mutant backend (cheap: no corpus, no training)
// swept over the probe queries under the conformance runner seed.
func recordForReplay(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conformance.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := gen.New("mutant", gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := gen.NewRecorder(src, f)
	r := eval.NewRunner(rec, confSeed)
	r.Workers = 4
	r.EvaluateBatch(confQueries(t, src))
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// backendsUnderTest constructs every registered backend. A backend this
// helper does not know how to parameterize fails the suite loudly rather
// than being skipped silently.
func backendsUnderTest(t *testing.T) map[string]gen.Backend {
	t.Helper()
	out := map[string]gen.Backend{}
	for _, name := range gen.Names() {
		opts := gen.Options{Family: model.Config{Seed: 11, CorpusFiles: 25}}
		if name == "replay" {
			opts.ReplayPath = recordForReplay(t)
		}
		b, err := gen.New(name, opts)
		if err != nil {
			t.Fatalf("backend %q failed to construct: %v", name, err)
		}
		out[name] = b
	}
	return out
}

func TestRegistryNames(t *testing.T) {
	names := gen.Names()
	want := map[string]bool{"family": false, "mutant": false, "replay": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing backend %q (have %v)", n, names)
		}
	}
	if _, err := gen.New("no-such-backend", gen.Options{}); err == nil {
		t.Error("unknown backend name should error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	gen.Register("family", "dup", func(gen.Options) (gen.Backend, error) { return nil, nil })
}

func TestConformanceVariantsNonEmpty(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		if len(b.Variants()) == 0 {
			t.Errorf("%s: Variants() empty", name)
		}
		if b.Describe() == "" {
			t.Errorf("%s: Describe() empty", name)
		}
	}
}

// TestConformanceDeterministicSamples pins the purity contract: Complete
// at fixed coordinates returns the identical Sample every time, for every
// registered backend.
func TestConformanceDeterministicSamples(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		key := b.Variants()[0]
		for _, pn := range []int{1, 6} {
			p := problems.ByNumber(pn)
			for _, temp := range []float64{0.1, 1.0} {
				for idx := 0; idx < 3; idx++ {
					s1, ok1 := b.Complete(key, p, problems.LevelLow, temp, idx, 777)
					s2, ok2 := b.Complete(key, p, problems.LevelLow, temp, idx, 777)
					if ok1 != ok2 || s1 != s2 {
						t.Fatalf("%s: sample (p%d t%.1f i%d) not deterministic:\n%+v ok=%v\n%+v ok=%v",
							name, pn, temp, idx, s1, ok1, s2, ok2)
					}
				}
			}
		}
	}
}

// TestConformanceWorkerWidthIdentity runs the probe sweep through the
// real engine at pool widths 1 and 8 and requires bit-identical
// CellStats (including float latency sums) from every backend.
func TestConformanceWorkerWidthIdentity(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		qs := confQueries(t, b)
		var base []eval.CellStats
		for _, workers := range []int{1, 8} {
			r := eval.NewRunner(b, confSeed)
			r.Workers = workers
			got := r.EvaluateBatch(qs)
			if base == nil {
				base = got
				// the sweep must actually produce samples, or the identity
				// check would pass vacuously on an all-empty backend
				total := 0
				for _, st := range got {
					total += st.Samples
				}
				if total == 0 {
					t.Fatalf("%s: probe sweep produced no samples", name)
				}
				continue
			}
			for qi := range qs {
				if got[qi] != base[qi] {
					t.Fatalf("%s: query %d diverges across widths: %+v != %+v",
						name, qi, got[qi], base[qi])
				}
			}
		}
	}
}

// TestConformanceConcurrentComplete hammers Complete from 8 goroutines
// against precomputed expectations — the direct data-race probe for the
// -race job.
func TestConformanceConcurrentComplete(t *testing.T) {
	for name, b := range backendsUnderTest(t) {
		key := b.Variants()[0]
		p := problems.ByNumber(6)
		type coord struct {
			idx  int
			temp float64
		}
		var coords []coord
		expect := map[coord]gen.Sample{}
		for _, temp := range []float64{0.1, 1.0} {
			for idx := 0; idx < 4; idx++ {
				c := coord{idx: idx, temp: temp}
				coords = append(coords, c)
				if s, ok := b.Complete(key, p, problems.LevelLow, temp, idx, 777); ok {
					expect[c] = s
				}
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 3; rep++ {
					for _, c := range coords {
						s, ok := b.Complete(key, p, problems.LevelLow, c.temp, c.idx, 777)
						want, wantOK := expect[c]
						if ok != wantOK || (ok && s != want) {
							t.Errorf("%s: concurrent sample drifted at %+v", name, c)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestReplayDescribeDigestsContent pins the distributed-sweep identity
// property: recordings that differ in any sample content must carry
// different Describe() tags (the tag is what wire.Merge and plan
// validation compare), while a reordered copy of the same recording must
// carry the same tag.
func TestReplayDescribeDigestsContent(t *testing.T) {
	lineA := `{"model":"m","variant":"PT","problem":1,"level":0,"temp_milli":100,"sample":0,"completion":"  assign y = a;\nendmodule\n","latency":1}`
	lineB := `{"model":"m","variant":"PT","problem":2,"level":0,"temp_milli":100,"sample":0,"completion":"  assign y = b;\nendmodule\n","latency":1}`
	lineB2 := `{"model":"m","variant":"PT","problem":2,"level":0,"temp_milli":100,"sample":0,"completion":"  assign y = ~b;\nendmodule\n","latency":1}`

	load := func(text string) *gen.Replay {
		t.Helper()
		r, err := gen.NewReplay(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ab := load(lineA + "\n" + lineB + "\n")
	ba := load(lineB + "\n" + lineA + "\n")
	ab2 := load(lineA + "\n" + lineB2 + "\n")
	if ab.Describe() != ba.Describe() {
		t.Errorf("line order changed the identity tag:\n%s\n%s", ab.Describe(), ba.Describe())
	}
	if ab.Describe() == ab2.Describe() {
		t.Errorf("recordings with different completions share the identity tag %q", ab.Describe())
	}
}
