// Package lint implements synthesizability and style checks over
// elaborated designs. The paper's evaluation stops at compile + functional
// verdicts; its predecessor study (Pearce et al., "Asleep at the
// Keyboard") also gated completions on synthesis-style checks, and this
// package provides that third dimension: combinational loops, incomplete
// sensitivity lists, inferred latches, multiple drivers, and
// blocking/nonblocking style violations.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// Severity classifies findings.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one lint diagnostic.
type Finding struct {
	Rule     string
	Severity Severity
	Scope    string // hierarchical instance path
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", f.Severity, f.Scope, f.Rule, f.Msg)
}

// Check runs all rules over an elaborated design.
func Check(d *elab.Design) []Finding {
	var out []Finding
	out = append(out, checkCombLoops(d)...)
	out = append(out, checkMultipleDrivers(d)...)
	for _, p := range d.Procs {
		if p.Kind != elab.ProcAlways {
			continue
		}
		ec, ok := p.Body.(*vlog.EventCtrl)
		if !ok {
			continue
		}
		if isEdgeTriggered(ec) {
			out = append(out, checkBlockingInSequential(p, ec)...)
		} else {
			out = append(out, checkSensitivity(p, ec)...)
			out = append(out, checkLatchInference(p, ec)...)
			out = append(out, checkNonblockingInComb(p, ec)...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

func isEdgeTriggered(ec *vlog.EventCtrl) bool {
	for _, ev := range ec.Events {
		if ev.Edge != vlog.EdgeAny {
			return true
		}
	}
	return false
}

// ---- rule: combinational loops ---------------------------------------------

// checkCombLoops builds the continuous-assignment dependency graph per
// scope and reports strongly-cyclic signals.
func checkCombLoops(d *elab.Design) []Finding {
	type node struct {
		scope *elab.Inst
		name  string
	}
	edges := map[node][]node{}
	for _, ca := range d.Assigns {
		lhsRoot, ok := rootIdent(ca.LHS)
		if !ok {
			continue
		}
		to := node{scope: ca.LScope, name: lhsRoot}
		for _, dep := range identsOf(ca.RHS) {
			edges[node{scope: ca.RScope, name: dep}] = append(edges[node{scope: ca.RScope, name: dep}], to)
		}
	}
	// DFS cycle detection
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[node]int{}
	var cycleAt []node
	var visit func(n node)
	visit = func(n node) {
		color[n] = grey
		for _, m := range edges[n] {
			switch color[m] {
			case white:
				visit(m)
			case grey:
				cycleAt = append(cycleAt, m)
			}
		}
		color[n] = black
	}
	var keys []node
	for n := range edges {
		keys = append(keys, n)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].scope != keys[j].scope {
			return keys[i].scope.Path < keys[j].scope.Path
		}
		return keys[i].name < keys[j].name
	})
	for _, n := range keys {
		if color[n] == white {
			visit(n)
		}
	}
	var out []Finding
	seen := map[node]bool{}
	for _, n := range cycleAt {
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, Finding{
			Rule: "comb-loop", Severity: Error, Scope: n.scope.Path,
			Msg: fmt.Sprintf("combinational feedback through %q", n.name),
		})
	}
	return out
}

// ---- rule: multiple drivers -------------------------------------------------

func checkMultipleDrivers(d *elab.Design) []Finding {
	type key struct {
		scope *elab.Inst
		name  string
	}
	count := map[key]int{}
	order := []key{}
	for _, ca := range d.Assigns {
		if root, ok := rootIdent(ca.LHS); ok {
			// whole-signal drivers only; bit/part selects of the same
			// signal from different assigns are a legal split bus
			if _, isIdent := ca.LHS.(*vlog.Ident); !isIdent {
				continue
			}
			k := key{scope: ca.LScope, name: root}
			if count[k] == 0 {
				order = append(order, k)
			}
			count[k]++
		}
	}
	var out []Finding
	for _, k := range order {
		if count[k] > 1 {
			out = append(out, Finding{
				Rule: "multiple-drivers", Severity: Warning, Scope: k.scope.Path,
				Msg: fmt.Sprintf("%q has %d continuous drivers", k.name, count[k]),
			})
		}
	}
	return out
}

// ---- rule: incomplete sensitivity list ---------------------------------------

func checkSensitivity(p *elab.Proc, ec *vlog.EventCtrl) []Finding {
	if ec.Star {
		return nil
	}
	listed := map[string]bool{}
	for _, ev := range ec.Events {
		for _, id := range identsOf(ev.X) {
			listed[id] = true
		}
	}
	reads := map[string]bool{}
	for _, id := range stmtReads(ec.Stmt) {
		reads[id] = true
	}
	// exclude things the block itself assigns (read-after-write within the
	// block is not a sensitivity concern) and non-signals
	writes := stmtWrites(ec.Stmt)
	var missing []string
	for id := range reads {
		if listed[id] || writes[id] {
			continue
		}
		if _, ok := p.Scope.Signals[id]; !ok {
			continue // parameters and memories
		}
		missing = append(missing, id)
	}
	sort.Strings(missing)
	var out []Finding
	for _, id := range missing {
		out = append(out, Finding{
			Rule: "incomplete-sensitivity", Severity: Warning, Scope: p.Scope.Path,
			Msg: fmt.Sprintf("signal %q is read but not in the sensitivity list", id),
		})
	}
	return out
}

// ---- rule: latch inference ---------------------------------------------------

func checkLatchInference(p *elab.Proc, ec *vlog.EventCtrl) []Finding {
	all := stmtWrites(ec.Stmt)
	always := alwaysAssigned(ec.Stmt)
	var names []string
	for id := range all {
		if !always[id] {
			names = append(names, id)
		}
	}
	sort.Strings(names)
	var out []Finding
	for _, id := range names {
		out = append(out, Finding{
			Rule: "latch-inference", Severity: Warning, Scope: p.Scope.Path,
			Msg: fmt.Sprintf("%q is not assigned on every path through the combinational block (latch inferred)", id),
		})
	}
	return out
}

// alwaysAssigned computes the set of identifiers assigned on every control
// path through the statement.
func alwaysAssigned(s vlog.Stmt) map[string]bool {
	switch n := s.(type) {
	case *vlog.Assign:
		out := map[string]bool{}
		if root, ok := rootIdent(n.LHS); ok {
			out[root] = true
		}
		if c, ok := n.LHS.(*vlog.Concat); ok {
			for _, part := range c.Parts {
				if root, ok := rootIdent(part); ok {
					out[root] = true
				}
			}
		}
		return out
	case *vlog.Block:
		out := map[string]bool{}
		for _, sub := range n.Stmts {
			for id := range alwaysAssigned(sub) {
				out[id] = true
			}
		}
		return out
	case *vlog.If:
		if n.Else == nil {
			return map[string]bool{}
		}
		return intersect(alwaysAssigned(n.Then), alwaysAssigned(n.Else))
	case *vlog.Case:
		hasDefault := false
		var sets []map[string]bool
		for _, item := range n.Items {
			if item.Exprs == nil {
				hasDefault = true
			}
			sets = append(sets, alwaysAssigned(item.Body))
		}
		if !hasDefault || len(sets) == 0 {
			return map[string]bool{}
		}
		acc := sets[0]
		for _, s2 := range sets[1:] {
			acc = intersect(acc, s2)
		}
		return acc
	case *vlog.EventCtrl:
		return alwaysAssigned(n.Stmt)
	case *vlog.Delay:
		return alwaysAssigned(n.Stmt)
	default:
		return map[string]bool{}
	}
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// ---- rules: assignment style --------------------------------------------------

func checkBlockingInSequential(p *elab.Proc, ec *vlog.EventCtrl) []Finding {
	var out []Finding
	seen := map[string]bool{}
	eachAssign(ec.Stmt, func(a *vlog.Assign) {
		if a.NonBlocking {
			return
		}
		root, ok := rootIdent(a.LHS)
		if !ok || seen[root] {
			return
		}
		seen[root] = true
		out = append(out, Finding{
			Rule: "blocking-in-sequential", Severity: Warning, Scope: p.Scope.Path,
			Msg: fmt.Sprintf("blocking assignment to %q in an edge-triggered block", root),
		})
	})
	return out
}

func checkNonblockingInComb(p *elab.Proc, ec *vlog.EventCtrl) []Finding {
	var out []Finding
	seen := map[string]bool{}
	eachAssign(ec.Stmt, func(a *vlog.Assign) {
		if !a.NonBlocking {
			return
		}
		root, ok := rootIdent(a.LHS)
		if !ok || seen[root] {
			return
		}
		seen[root] = true
		out = append(out, Finding{
			Rule: "nonblocking-in-combinational", Severity: Warning, Scope: p.Scope.Path,
			Msg: fmt.Sprintf("nonblocking assignment to %q in a combinational block", root),
		})
	})
	return out
}
