package lint

import "repro/internal/vlog"

// AST walking helpers shared by the lint rules.

func identsOf(e vlog.Expr) []string {
	var out []string
	var walk func(vlog.Expr)
	walk = func(x vlog.Expr) {
		switch n := x.(type) {
		case nil:
			return
		case *vlog.Ident:
			out = append(out, n.Name)
		case *vlog.Unary:
			walk(n.X)
		case *vlog.Binary:
			walk(n.X)
			walk(n.Y)
		case *vlog.Ternary:
			walk(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case *vlog.Concat:
			for _, p := range n.Parts {
				walk(p)
			}
		case *vlog.Repl:
			walk(n.X)
		case *vlog.Index:
			walk(n.X)
			walk(n.I)
		case *vlog.RangeSel:
			walk(n.X)
		case *vlog.SysCallExpr:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

func rootIdent(e vlog.Expr) (string, bool) {
	switch n := e.(type) {
	case *vlog.Ident:
		return n.Name, true
	case *vlog.Index:
		return rootIdent(n.X)
	case *vlog.RangeSel:
		return rootIdent(n.X)
	default:
		return "", false
	}
}

func eachStmt(s vlog.Stmt, visit func(vlog.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch n := s.(type) {
	case *vlog.Block:
		for _, sub := range n.Stmts {
			eachStmt(sub, visit)
		}
	case *vlog.If:
		eachStmt(n.Then, visit)
		eachStmt(n.Else, visit)
	case *vlog.Case:
		for _, item := range n.Items {
			eachStmt(item.Body, visit)
		}
	case *vlog.For:
		eachStmt(n.Init, visit)
		eachStmt(n.Step, visit)
		eachStmt(n.Body, visit)
	case *vlog.While:
		eachStmt(n.Body, visit)
	case *vlog.Repeat:
		eachStmt(n.Body, visit)
	case *vlog.Forever:
		eachStmt(n.Body, visit)
	case *vlog.Delay:
		eachStmt(n.Stmt, visit)
	case *vlog.EventCtrl:
		eachStmt(n.Stmt, visit)
	case *vlog.Wait:
		eachStmt(n.Stmt, visit)
	}
}

func eachAssign(s vlog.Stmt, visit func(*vlog.Assign)) {
	eachStmt(s, func(st vlog.Stmt) {
		if a, ok := st.(*vlog.Assign); ok {
			visit(a)
		}
	})
}

// stmtReads returns every identifier read anywhere in the statement
// (right-hand sides, conditions, indexes).
func stmtReads(s vlog.Stmt) []string {
	var out []string
	eachStmt(s, func(st vlog.Stmt) {
		switch n := st.(type) {
		case *vlog.Assign:
			out = append(out, identsOf(n.RHS)...)
			// index expressions on the LHS are reads
			switch l := n.LHS.(type) {
			case *vlog.Index:
				out = append(out, identsOf(l.I)...)
			}
		case *vlog.If:
			out = append(out, identsOf(n.Cond)...)
		case *vlog.Case:
			out = append(out, identsOf(n.Expr)...)
			for _, item := range n.Items {
				for _, e := range item.Exprs {
					out = append(out, identsOf(e)...)
				}
			}
		case *vlog.While:
			out = append(out, identsOf(n.Cond)...)
		case *vlog.Repeat:
			out = append(out, identsOf(n.Count)...)
		case *vlog.Wait:
			out = append(out, identsOf(n.Cond)...)
		case *vlog.SysCall:
			for _, a := range n.Args {
				out = append(out, identsOf(a)...)
			}
		}
	})
	return out
}

// stmtWrites returns the set of identifiers assigned anywhere in the
// statement.
func stmtWrites(s vlog.Stmt) map[string]bool {
	out := map[string]bool{}
	eachAssign(s, func(a *vlog.Assign) {
		if root, ok := rootIdent(a.LHS); ok {
			out[root] = true
		}
		if c, ok := a.LHS.(*vlog.Concat); ok {
			for _, part := range c.Parts {
				if root, ok := rootIdent(part); ok {
					out[root] = true
				}
			}
		}
	})
	return out
}
