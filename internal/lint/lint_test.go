package lint

import (
	"strings"
	"testing"

	"repro/internal/problems"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

func lintSrc(t *testing.T, src, top string) []Finding {
	t.Helper()
	f, err := vlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := elab.Elaborate(f, top, elab.Options{})
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return Check(d)
}

func hasRule(fs []Finding, rule string) bool {
	for _, f := range fs {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func TestCombLoopDetected(t *testing.T) {
	fs := lintSrc(t, `module m;
  wire a, b;
  assign a = ~b;
  assign b = ~a;
endmodule`, "m")
	if !hasRule(fs, "comb-loop") {
		t.Fatalf("loop not found: %v", fs)
	}
}

func TestNoCombLoopOnChain(t *testing.T) {
	fs := lintSrc(t, `module m(input x);
  wire a, b;
  assign a = ~x;
  assign b = ~a;
endmodule`, "m")
	if hasRule(fs, "comb-loop") {
		t.Fatalf("false loop: %v", fs)
	}
}

func TestMultipleDrivers(t *testing.T) {
	fs := lintSrc(t, `module m(input a, input b);
  wire y;
  assign y = a;
  assign y = b;
endmodule`, "m")
	if !hasRule(fs, "multiple-drivers") {
		t.Fatalf("multiple drivers not found: %v", fs)
	}
}

func TestIncompleteSensitivity(t *testing.T) {
	fs := lintSrc(t, `module m(input a, input b, output reg y);
  always @(a) y = a & b;
endmodule`, "m")
	found := false
	for _, f := range fs {
		if f.Rule == "incomplete-sensitivity" && strings.Contains(f.Msg, `"b"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing b not reported: %v", fs)
	}
	// complete list is clean
	fs = lintSrc(t, `module m(input a, input b, output reg y);
  always @(a or b) y = a & b;
endmodule`, "m")
	if hasRule(fs, "incomplete-sensitivity") {
		t.Fatalf("false positive: %v", fs)
	}
}

func TestStarSensitivityClean(t *testing.T) {
	fs := lintSrc(t, `module m(input a, input b, output reg y);
  always @(*) y = a & b;
endmodule`, "m")
	if hasRule(fs, "incomplete-sensitivity") {
		t.Fatalf("@(*) flagged: %v", fs)
	}
}

func TestLatchInference(t *testing.T) {
	fs := lintSrc(t, `module m(input en, input d, output reg q);
  always @(*) if (en) q = d;
endmodule`, "m")
	if !hasRule(fs, "latch-inference") {
		t.Fatalf("latch not found: %v", fs)
	}
	// full if/else is clean
	fs = lintSrc(t, `module m(input en, input d, output reg q);
  always @(*) if (en) q = d; else q = 0;
endmodule`, "m")
	if hasRule(fs, "latch-inference") {
		t.Fatalf("false latch: %v", fs)
	}
}

func TestLatchInferenceCase(t *testing.T) {
	// case without default infers a latch
	fs := lintSrc(t, `module m(input [1:0] s, output reg q);
  always @(*) case (s)
    2'd0: q = 0;
    2'd1: q = 1;
  endcase
endmodule`, "m")
	if !hasRule(fs, "latch-inference") {
		t.Fatalf("case latch not found: %v", fs)
	}
	fs = lintSrc(t, `module m(input [1:0] s, output reg q);
  always @(*) case (s)
    2'd0: q = 0;
    default: q = 1;
  endcase
endmodule`, "m")
	if hasRule(fs, "latch-inference") {
		t.Fatalf("false case latch: %v", fs)
	}
}

func TestBlockingInSequential(t *testing.T) {
	fs := lintSrc(t, `module m(input clk, input d, output reg q);
  always @(posedge clk) q = d;
endmodule`, "m")
	if !hasRule(fs, "blocking-in-sequential") {
		t.Fatalf("blocking style not found: %v", fs)
	}
}

func TestNonblockingInComb(t *testing.T) {
	fs := lintSrc(t, `module m(input a, output reg y);
  always @(*) y <= a;
endmodule`, "m")
	if !hasRule(fs, "nonblocking-in-combinational") {
		t.Fatalf("nonblocking style not found: %v", fs)
	}
}

func TestReferenceSolutionsMostlyClean(t *testing.T) {
	// benchmark references must carry no lint *errors* (warnings such as
	// Fig. 2's @(in) sensitivity idiom are tolerated, as in the paper)
	for _, p := range problems.All() {
		f, err := vlog.Parse(p.ReferenceSource())
		if err != nil {
			t.Fatal(err)
		}
		d, err := elab.Elaborate(f, p.ModuleName, elab.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, fd := range Check(d) {
			if fd.Severity == Error {
				t.Errorf("problem %d reference has lint error: %s", p.Number, fd)
			}
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "x", Severity: Error, Scope: "top", Msg: "boom"}
	if got := f.String(); !strings.Contains(got, "error") || !strings.Contains(got, "boom") {
		t.Fatalf("String = %q", got)
	}
	if Warning.String() != "warning" {
		t.Fatal("warning string")
	}
}

func TestFindingsDeterministicOrder(t *testing.T) {
	src := `module m(input a, input b, input c, output reg x, output reg y);
  always @(a) begin
    x = b;
    y = c;
  end
endmodule`
	a := lintSrc(t, src, "m")
	b := lintSrc(t, src, "m")
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic order")
		}
	}
}
