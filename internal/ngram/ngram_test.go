package ngram

import (
	"math"
	"math/rand"
	"testing"
)

func seq(vals ...int) []int { return vals }

func TestTrainAndGreedySample(t *testing.T) {
	m := New(3)
	// "a b c" repeated: after [1 2] always 3
	for i := 0; i < 10; i++ {
		m.Train(seq(1, 2, 3, 1, 2, 3, 1, 2, 3))
	}
	tok, ok := m.Sample(seq(1, 2), 0, rand.New(rand.NewSource(1)))
	if !ok || tok != 3 {
		t.Fatalf("sample = %d, %v", tok, ok)
	}
}

func TestBackoffToShorterContext(t *testing.T) {
	m := New(3)
	m.Train(seq(1, 2, 3, 4, 5))
	// context [9 9] never seen: back off; unigram still answers
	_, ok := m.Sample(seq(9, 9), 0, rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("backoff failed to produce a token")
	}
}

func TestUntrainedModelHasNoSample(t *testing.T) {
	m := New(2)
	if _, ok := m.Sample(nil, 0.5, rand.New(rand.NewSource(1))); ok {
		t.Fatal("untrained model produced a token")
	}
}

func TestGenerateLengthAndDeterminism(t *testing.T) {
	m := New(4)
	data := make([]int, 500)
	r := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = r.Intn(20)
	}
	m.Train(data)
	g1 := m.Generate(seq(1, 2), 50, 0.8, rand.New(rand.NewSource(7)))
	g2 := m.Generate(seq(1, 2), 50, 0.8, rand.New(rand.NewSource(7)))
	if len(g1) != 50 {
		t.Fatalf("generated %d tokens", len(g1))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
}

func TestTemperatureSpreadsChoices(t *testing.T) {
	m := New(2)
	// after 1: mostly 2, occasionally 3
	for i := 0; i < 95; i++ {
		m.Train(seq(1, 2))
	}
	for i := 0; i < 5; i++ {
		m.Train(seq(1, 3))
	}
	count3 := func(temp float64) int {
		rng := rand.New(rand.NewSource(11))
		n := 0
		for i := 0; i < 1000; i++ {
			tok, _ := m.Sample(seq(1), temp, rng)
			if tok == 3 {
				n++
			}
		}
		return n
	}
	low := count3(0.2)
	high := count3(2.0)
	if !(low < high) {
		t.Fatalf("temperature did not spread: low=%d high=%d", low, high)
	}
	if g, _ := m.Sample(seq(1), 0, rand.New(rand.NewSource(1))); g != 2 {
		t.Fatalf("greedy picked %d", g)
	}
}

func TestPerplexityLowerOnTrainingDistribution(t *testing.T) {
	m := New(3)
	var train []int
	for i := 0; i < 200; i++ {
		train = append(train, 1, 2, 3, 4)
	}
	m.Train(train)
	inDist := m.Perplexity(seq(1, 2, 3, 4, 1, 2, 3, 4))
	outDist := m.Perplexity(seq(4, 3, 2, 1, 4, 3, 2, 1))
	if !(inDist < outDist) {
		t.Fatalf("perplexity in=%f out=%f", inDist, outDist)
	}
	if math.IsInf(New(2).Perplexity(seq(1)), 0) != true {
		t.Fatal("untrained perplexity should be +Inf")
	}
}

func TestStatsAccessors(t *testing.T) {
	m := New(2)
	m.Train(seq(5, 6, 7))
	if m.Order() != 2 {
		t.Errorf("order = %d", m.Order())
	}
	if m.VocabSeen() != 3 {
		t.Errorf("vocab = %d", m.VocabSeen())
	}
	if m.TokensTrained() != 3 {
		t.Errorf("tokens = %d", m.TokensTrained())
	}
}

func TestOrderClampedToOne(t *testing.T) {
	m := New(0)
	if m.Order() != 1 {
		t.Fatalf("order = %d", m.Order())
	}
	m.Train(seq(1, 1, 1))
	if tok, ok := m.Sample(nil, 0, rand.New(rand.NewSource(1))); !ok || tok != 1 {
		t.Fatalf("unigram sample = %d, %v", tok, ok)
	}
}
