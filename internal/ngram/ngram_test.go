package ngram

import (
	"math"
	"math/rand"
	"testing"
)

func seq(vals ...int) []int { return vals }

func TestTrainAndGreedySample(t *testing.T) {
	m := New(3)
	// "a b c" repeated: after [1 2] always 3
	for i := 0; i < 10; i++ {
		m.Train(seq(1, 2, 3, 1, 2, 3, 1, 2, 3))
	}
	tok, ok := m.Sample(seq(1, 2), 0, rand.New(rand.NewSource(1)))
	if !ok || tok != 3 {
		t.Fatalf("sample = %d, %v", tok, ok)
	}
}

func TestBackoffToShorterContext(t *testing.T) {
	m := New(3)
	m.Train(seq(1, 2, 3, 4, 5))
	// context [9 9] never seen: back off; unigram still answers
	_, ok := m.Sample(seq(9, 9), 0, rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("backoff failed to produce a token")
	}
}

func TestUntrainedModelHasNoSample(t *testing.T) {
	m := New(2)
	if _, ok := m.Sample(nil, 0.5, rand.New(rand.NewSource(1))); ok {
		t.Fatal("untrained model produced a token")
	}
}

func TestGenerateLengthAndDeterminism(t *testing.T) {
	m := New(4)
	data := make([]int, 500)
	r := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = r.Intn(20)
	}
	m.Train(data)
	g1 := m.Generate(seq(1, 2), 50, 0.8, rand.New(rand.NewSource(7)))
	g2 := m.Generate(seq(1, 2), 50, 0.8, rand.New(rand.NewSource(7)))
	if len(g1) != 50 {
		t.Fatalf("generated %d tokens", len(g1))
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
}

func TestTemperatureSpreadsChoices(t *testing.T) {
	m := New(2)
	// after 1: mostly 2, occasionally 3
	for i := 0; i < 95; i++ {
		m.Train(seq(1, 2))
	}
	for i := 0; i < 5; i++ {
		m.Train(seq(1, 3))
	}
	count3 := func(temp float64) int {
		rng := rand.New(rand.NewSource(11))
		n := 0
		for i := 0; i < 1000; i++ {
			tok, _ := m.Sample(seq(1), temp, rng)
			if tok == 3 {
				n++
			}
		}
		return n
	}
	low := count3(0.2)
	high := count3(2.0)
	if !(low < high) {
		t.Fatalf("temperature did not spread: low=%d high=%d", low, high)
	}
	if g, _ := m.Sample(seq(1), 0, rand.New(rand.NewSource(1))); g != 2 {
		t.Fatalf("greedy picked %d", g)
	}
}

func TestPerplexityLowerOnTrainingDistribution(t *testing.T) {
	m := New(3)
	var train []int
	for i := 0; i < 200; i++ {
		train = append(train, 1, 2, 3, 4)
	}
	m.Train(train)
	inDist := m.Perplexity(seq(1, 2, 3, 4, 1, 2, 3, 4))
	outDist := m.Perplexity(seq(4, 3, 2, 1, 4, 3, 2, 1))
	if !(inDist < outDist) {
		t.Fatalf("perplexity in=%f out=%f", inDist, outDist)
	}
	if math.IsInf(New(2).Perplexity(seq(1)), 0) != true {
		t.Fatal("untrained perplexity should be +Inf")
	}
}

func TestStatsAccessors(t *testing.T) {
	m := New(2)
	m.Train(seq(5, 6, 7))
	if m.Order() != 2 {
		t.Errorf("order = %d", m.Order())
	}
	if m.VocabSeen() != 3 {
		t.Errorf("vocab = %d", m.VocabSeen())
	}
	if m.TokensTrained() != 3 {
		t.Errorf("tokens = %d", m.TokensTrained())
	}
}

func TestOrderClampedToOne(t *testing.T) {
	m := New(0)
	if m.Order() != 1 {
		t.Fatalf("order = %d", m.Order())
	}
	m.Train(seq(1, 1, 1))
	if tok, ok := m.Sample(nil, 0, rand.New(rand.NewSource(1))); !ok || tok != 1 {
		t.Fatalf("unigram sample = %d, %v", tok, ok)
	}
}

// TestFrozenMatchesMapSampler is the equivalence contract of the packed
// sampler: for every temperature regime (greedy, the t=1 integer
// cumulative-count search, and the general softmax path) a frozen model
// must generate the exact token stream the map-backed baseline does on
// the same RNG stream.
func TestFrozenMatchesMapSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := make([]int, 4000)
	for i := range data {
		data[i] = rng.Intn(90)
	}
	for _, order := range []int{1, 2, 4} {
		mapM := New(order)
		frozenM := New(order)
		mapM.Train(data)
		frozenM.Train(data)
		frozenM.Freeze()
		if !frozenM.Frozen() || mapM.Frozen() {
			t.Fatal("freeze state wrong")
		}
		for _, temp := range []float64{0, 0.1, 0.5, 1.0, 1.3, 2.0} {
			for seed := int64(0); seed < 20; seed++ {
				prompt := data[int(seed)*7 : int(seed)*7+3]
				g1 := mapM.Generate(prompt, 80, temp, rand.New(rand.NewSource(seed)))
				g2 := frozenM.Generate(prompt, 80, temp, rand.New(rand.NewSource(seed)))
				if len(g1) != len(g2) {
					t.Fatalf("order %d t=%.1f seed %d: lengths %d vs %d", order, temp, seed, len(g1), len(g2))
				}
				for i := range g1 {
					if g1[i] != g2[i] {
						t.Fatalf("order %d t=%.1f seed %d: token %d diverged: map %d frozen %d",
							order, temp, seed, i, g1[i], g2[i])
					}
				}
			}
		}
	}
}

// TestWideTokenContextsDistinct pins the ctxKey width guard: token ids
// that differ only above bit 23 used to collide under the silent 3-byte
// truncation, merging unrelated contexts. Both the guarded map path and
// the frozen hash path must keep them apart.
func TestWideTokenContextsDistinct(t *testing.T) {
	const wide = 1 << 24
	check := func(m *Model, label string) {
		t.Helper()
		if tok, ok := m.Sample(seq(5), 0, rand.New(rand.NewSource(1))); !ok || tok != 100 {
			t.Fatalf("%s: after [5] got %d, want 100", label, tok)
		}
		if tok, ok := m.Sample(seq(5+wide), 0, rand.New(rand.NewSource(1))); !ok || tok != 200 {
			t.Fatalf("%s: after [5+2^24] got %d, want 200", label, tok)
		}
	}
	m := New(2)
	m.Train(seq(5, 100))
	m.Train(seq(5+wide, 200))
	check(m, "map")
	m.Freeze()
	check(m, "frozen")
}

// TestCtxKeyInjective exercises the mixed-width key encoding directly:
// boundary ids around the escape threshold, negatives, and the marker
// value itself must all round-trip and stay distinct.
func TestCtxKeyInjective(t *testing.T) {
	ids := []int{0, 1, 255, 65535, wideTok - 1, wideTok, wideTok + 1, 1 << 30, -1, -(1 << 30)}
	seen := map[string][]int{}
	for _, a := range ids {
		for _, b := range ids {
			ctx := []int{a, b}
			key := ctxKey(ctx)
			if prev, dup := seen[key]; dup {
				t.Fatalf("key collision: %v and %v", prev, ctx)
			}
			seen[key] = ctx
			got := ctxKeyTokens(key, 2)
			if len(got) != 2 || got[0] != a || got[1] != b {
				t.Fatalf("round trip %v -> %v", ctx, got)
			}
		}
	}
}

// TestTrainInvalidatesFrozen pins Freeze staleness handling: training
// after a freeze must drop the packed tables so samples see the new
// counts.
func TestTrainInvalidatesFrozen(t *testing.T) {
	m := New(2)
	m.Train(seq(1, 2))
	m.Freeze()
	m.Train(seq(1, 3, 1, 3, 1, 3))
	if m.Frozen() {
		t.Fatal("Train did not invalidate the frozen sampler")
	}
	if tok, _ := m.Sample(seq(1), 0, rand.New(rand.NewSource(1))); tok != 3 {
		t.Fatalf("post-retrain greedy = %d, want 3", tok)
	}
}

// TestHugeTokenIDsSurviveSampling pins full-width id handling in the
// selection core: ids at and above 2^31 must come back unmangled from
// both the map and frozen paths (an earlier cut stored next-token ids as
// int32, silently wrapping 1<<31 to -2^31).
func TestHugeTokenIDsSurviveSampling(t *testing.T) {
	const huge = 1 << 31
	m := New(2)
	m.Train(seq(1, huge, 1, huge))
	for _, label := range []string{"map", "frozen"} {
		if tok, ok := m.Sample(seq(1), 0, rand.New(rand.NewSource(1))); !ok || tok != huge {
			t.Fatalf("%s: greedy after [1] = %d, want %d", label, tok, huge)
		}
		if tok, ok := m.Sample(seq(1), 1.0, rand.New(rand.NewSource(2))); !ok || tok != huge {
			t.Fatalf("%s: t=1 after [1] = %d, want %d", label, tok, huge)
		}
		m.Freeze()
	}
}

// TestFreezeLayoutIndependent backs the //vgencheck:ordered waiver in
// Freeze: the open-addressed table layout follows count-map iteration
// order, which in turn follows insertion order, so two models trained on
// the same data in different sequence orders pack their tables
// differently — yet every sampled byte must be identical. If a layout
// artifact ever leaked into selection, this is the test that catches it.
func TestFreezeLayoutIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	chunks := make([][]int, 64)
	for i := range chunks {
		chunk := make([]int, 40)
		for j := range chunk {
			chunk[j] = rng.Intn(70)
		}
		chunks[i] = chunk
	}
	forward := New(3)
	backward := New(3)
	for _, c := range chunks {
		forward.Train(c)
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		backward.Train(chunks[i])
	}
	forward.Freeze()
	backward.Freeze()
	for _, temp := range []float64{0, 0.7, 1.0, 1.6} {
		for seed := int64(0); seed < 16; seed++ {
			prompt := chunks[seed][:2]
			g1 := forward.Generate(prompt, 120, temp, rand.New(rand.NewSource(seed)))
			g2 := backward.Generate(prompt, 120, temp, rand.New(rand.NewSource(seed)))
			if len(g1) != len(g2) {
				t.Fatalf("t=%.1f seed %d: lengths %d vs %d", temp, seed, len(g1), len(g2))
			}
			for i := range g1 {
				if g1[i] != g2[i] {
					t.Fatalf("t=%.1f seed %d: token %d diverged: %d vs %d", temp, seed, i, g1[i], g2[i])
				}
			}
		}
	}
	p1 := forward.Perplexity(chunks[0])
	p2 := backward.Perplexity(chunks[0])
	if p1 != p2 {
		t.Fatalf("perplexity diverged: %v vs %v", p1, p2)
	}
}
