// Package ngram implements an order-k backoff n-gram language model over
// token ids, with temperature-controlled sampling. It is the trainable
// generative core of the simulated LLMs: "fine-tuning" a model on the
// Verilog corpus is literally training this LM on the corpus token stream,
// and the free-running completions it produces are what flow through the
// compile/functional pipeline when a model emits neither a correct nor a
// near-miss solution.
package ngram

import (
	"math"
	"math/rand"
)

// Model is an order-k n-gram LM with stupid-backoff smoothing.
type Model struct {
	order  int
	counts []map[string]*dist // counts[n] holds (n-token context) -> next-token distribution
	vocab  map[int]bool
	total  int
}

type dist struct {
	next  map[int]int
	total int
}

// New creates an untrained model of the given order (order >= 1; order 1 is
// a unigram model).
func New(order int) *Model {
	if order < 1 {
		order = 1
	}
	m := &Model{order: order, vocab: map[int]bool{}}
	m.counts = make([]map[string]*dist, order)
	for i := range m.counts {
		m.counts[i] = map[string]*dist{}
	}
	return m
}

// Order returns the model order.
func (m *Model) Order() int { return m.order }

// VocabSeen returns how many distinct tokens the model has observed.
func (m *Model) VocabSeen() int { return len(m.vocab) }

// TokensTrained returns the total number of training tokens consumed.
func (m *Model) TokensTrained() int { return m.total }

func ctxKey(toks []int) string {
	// compact byte key; token ids fit in 3 bytes for our vocabularies
	b := make([]byte, 0, len(toks)*3)
	for _, t := range toks {
		b = append(b, byte(t), byte(t>>8), byte(t>>16))
	}
	return string(b)
}

// Train consumes one token sequence (a document).
func (m *Model) Train(tokens []int) {
	for i, tok := range tokens {
		m.vocab[tok] = true
		m.total++
		for n := 0; n < m.order; n++ {
			if i < n {
				break
			}
			key := ctxKey(tokens[i-n : i])
			d := m.counts[n][key]
			if d == nil {
				d = &dist{next: map[int]int{}}
				m.counts[n][key] = d
			}
			d.next[tok]++
			d.total++
		}
	}
}

// contextDist finds the longest-context distribution for the given history
// (stupid backoff).
func (m *Model) contextDist(history []int) *dist {
	for n := m.order - 1; n >= 0; n-- {
		if len(history) < n {
			continue
		}
		key := ctxKey(history[len(history)-n:])
		if d, ok := m.counts[n][key]; ok && d.total > 0 {
			return d
		}
	}
	return nil
}

// Sample draws the next token given history at the given temperature.
// Temperature 0 is greedy; higher temperatures flatten the distribution.
// The boolean is false when the model has no distribution at all (untrained).
func (m *Model) Sample(history []int, temperature float64, rng *rand.Rand) (int, bool) {
	d := m.contextDist(history)
	if d == nil {
		return 0, false
	}
	if temperature <= 0 {
		best, bestCount := 0, -1
		for tok, c := range d.next {
			if c > bestCount || (c == bestCount && tok < best) {
				best, bestCount = tok, c
			}
		}
		return best, true
	}
	// softmax over log counts scaled by 1/temperature, computed stably
	cands := make([]scoredTok, 0, len(d.next))
	maxLog := math.Inf(-1)
	for tok, c := range d.next {
		l := math.Log(float64(c)) / temperature
		if l > maxLog {
			maxLog = l
		}
		cands = append(cands, scoredTok{tok: tok, w: l})
	}
	// deterministic order for reproducible sampling
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].tok < cands[j-1].tok; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	total := 0.0
	for i := range cands {
		cands[i].w = math.Exp(cands[i].w - maxLog)
		total += cands[i].w
	}
	r := rng.Float64() * total
	for _, c := range cands {
		r -= c.w
		if r <= 0 {
			return c.tok, true
		}
	}
	return cands[len(cands)-1].tok, true
}

type scoredTok struct {
	tok int
	w   float64
}

// Generate produces up to maxTokens tokens continuing the prompt.
func (m *Model) Generate(prompt []int, maxTokens int, temperature float64, rng *rand.Rand) []int {
	history := append([]int(nil), prompt...)
	var out []int
	for len(out) < maxTokens {
		tok, ok := m.Sample(history, temperature, rng)
		if !ok {
			break
		}
		out = append(out, tok)
		history = append(history, tok)
	}
	return out
}

// Perplexity computes the per-token perplexity of a sequence under the
// model with stupid backoff (unseen tokens cost a uniform floor over the
// seen vocabulary).
func (m *Model) Perplexity(tokens []int) float64 {
	if len(tokens) == 0 || len(m.vocab) == 0 {
		return math.Inf(1)
	}
	logSum := 0.0
	for i, tok := range tokens {
		var p float64
		hist := tokens[:i]
		d := m.contextDist(hist)
		if d != nil {
			if c, ok := d.next[tok]; ok && c > 0 {
				p = float64(c) / float64(d.total)
			}
		}
		if p == 0 {
			p = 0.5 / float64(len(m.vocab)+d0total(d))
		}
		logSum += math.Log(p)
	}
	return math.Exp(-logSum / float64(len(tokens)))
}

func d0total(d *dist) int {
	if d == nil {
		return 1
	}
	return d.total
}
