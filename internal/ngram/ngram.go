// Package ngram implements an order-k backoff n-gram language model over
// token ids, with temperature-controlled sampling. It is the trainable
// generative core of the simulated LLMs: "fine-tuning" a model on the
// Verilog corpus is literally training this LM on the corpus token stream,
// and the free-running completions it produces are what flow through the
// compile/functional pipeline when a model emits neither a correct nor a
// near-miss solution.
//
// Training mutates a map-of-maps count store. After training, Freeze
// compiles that store into a packed immutable sampler (open-addressed
// context tables keyed by uint64 hashes, per-context sorted next-token
// arrays with cumulative counts) so the per-step sampling path allocates
// nothing. The map store stays intact as the differential baseline; both
// paths draw from shared selection code and are byte-identical for every
// temperature and RNG stream.
package ngram

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Model is an order-k n-gram LM with stupid-backoff smoothing.
type Model struct {
	order  int
	counts []map[string]*dist // counts[n] holds (n-token context) -> next-token distribution
	vocab  map[int]bool
	total  int
	frozen *frozenModel // packed sampler; nil until Freeze, cleared by Train
}

type dist struct {
	next  map[int]int
	total int
}

// New creates an untrained model of the given order (order >= 1; order 1 is
// a unigram model).
func New(order int) *Model {
	if order < 1 {
		order = 1
	}
	m := &Model{order: order, vocab: map[int]bool{}}
	m.counts = make([]map[string]*dist, order)
	for i := range m.counts {
		m.counts[i] = map[string]*dist{}
	}
	return m
}

// Order returns the model order.
func (m *Model) Order() int { return m.order }

// VocabSeen returns how many distinct tokens the model has observed.
func (m *Model) VocabSeen() int { return len(m.vocab) }

// TokensTrained returns the total number of training tokens consumed.
func (m *Model) TokensTrained() int { return m.total }

// wideTok is the first token id that no longer fits the compact 3-byte
// context-key encoding. Ids at or above it (and negative ids) escape to a
// marker + 8-byte form; the marker bytes 0xFF 0xFF 0xFF are unreachable in
// the 3-byte form (they would decode to wideTok itself), so keys stay
// injective across mixed widths. The pre-guard encoding silently truncated
// ids to 24 bits, colliding contexts that differed only in high bits.
const wideTok = 0xFFFFFF

func ctxKey(toks []int) string {
	b := make([]byte, 0, len(toks)*3)
	for _, t := range toks {
		if t >= 0 && t < wideTok {
			b = append(b, byte(t), byte(t>>8), byte(t>>16))
			continue
		}
		u := uint64(t)
		b = append(b, 0xFF, 0xFF, 0xFF,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

// ctxKeyTokens decodes a context key back to its token ids (Freeze walks
// the trained map keys to build the packed tables).
func ctxKeyTokens(key string, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < len(key); {
		if key[i] == 0xFF && key[i+1] == 0xFF && key[i+2] == 0xFF {
			u := uint64(key[i+3]) | uint64(key[i+4])<<8 | uint64(key[i+5])<<16 |
				uint64(key[i+6])<<24 | uint64(key[i+7])<<32 | uint64(key[i+8])<<40 |
				uint64(key[i+9])<<48 | uint64(key[i+10])<<56
			out = append(out, int(u))
			i += 11
			continue
		}
		out = append(out, int(key[i])|int(key[i+1])<<8|int(key[i+2])<<16)
		i += 3
	}
	return out
}

// Train consumes one token sequence (a document). Training invalidates any
// packed sampler built by an earlier Freeze.
func (m *Model) Train(tokens []int) {
	m.frozen = nil
	for i, tok := range tokens {
		m.vocab[tok] = true
		m.total++
		for n := 0; n < m.order; n++ {
			if i < n {
				break
			}
			key := ctxKey(tokens[i-n : i])
			d := m.counts[n][key]
			if d == nil {
				d = &dist{next: map[int]int{}}
				m.counts[n][key] = d
			}
			d.next[tok]++
			d.total++
		}
	}
}

// contextDist finds the longest-context distribution for the given history
// (stupid backoff).
func (m *Model) contextDist(history []int) *dist {
	for n := m.order - 1; n >= 0; n-- {
		if len(history) < n {
			continue
		}
		key := ctxKey(history[len(history)-n:])
		if d, ok := m.counts[n][key]; ok && d.total > 0 {
			return d
		}
	}
	return nil
}

// ---- shared selection core -------------------------------------------------

// sortedDist is one next-token distribution viewed as ascending token ids
// with inclusive cumulative counts. Both the map path (which builds the
// view per call) and the frozen path (which stores it packed) sample
// through the same pick method, so the two engines are byte-identical by
// construction.
type sortedDist struct {
	toks []int64
	cum  []int64
}

func (d sortedDist) count(i int) int64 {
	if i == 0 {
		return d.cum[0]
	}
	return d.cum[i] - d.cum[i-1]
}

// pick draws one token. Temperature 0 is greedy (ties break to the
// smallest token id); temperature 1 is a binary search over the integer
// cumulative counts (one rng draw, no float weight construction); other
// temperatures build softmax-over-log-count cumulative weights in scratch
// and binary-search those. Exactly one rng.Float64 is consumed per draw
// for every temperature > 0.
func (d sortedDist) pick(temperature float64, rng *rand.Rand, scratch *[]float64) int {
	n := len(d.toks)
	if temperature <= 0 {
		best, bestCount := 0, int64(-1)
		for i := 0; i < n; i++ {
			if c := d.count(i); c > bestCount {
				best, bestCount = i, c
			}
		}
		return int(d.toks[best])
	}
	if temperature == 1 {
		r := rng.Float64() * float64(d.cum[n-1])
		i := sort.Search(n, func(i int) bool { return float64(d.cum[i]) > r })
		if i >= n {
			i = n - 1
		}
		return int(d.toks[i])
	}
	w := (*scratch)[:0]
	maxLog := math.Inf(-1)
	for i := 0; i < n; i++ {
		l := math.Log(float64(d.count(i))) / temperature
		if l > maxLog {
			maxLog = l
		}
		w = append(w, l)
	}
	total := 0.0
	for i := range w {
		total += math.Exp(w[i] - maxLog)
		w[i] = total
	}
	*scratch = w
	r := rng.Float64() * total
	i := sort.Search(n, func(i int) bool { return w[i] > r })
	if i >= n {
		i = n - 1
	}
	return int(d.toks[i])
}

// sortedFromMap builds the selection view of a map-backed distribution
// (the differential-baseline path; allocates per call).
func sortedFromMap(d *dist) sortedDist {
	toks := make([]int64, 0, len(d.next))
	for t := range d.next {
		toks = append(toks, int64(t))
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	cum := make([]int64, len(toks))
	var c int64
	for i, t := range toks {
		c += int64(d.next[int(t)])
		cum[i] = c
	}
	return sortedDist{toks: toks, cum: cum}
}

// scratchPool holds the per-goroutine float scratch the temperature!=1
// path accumulates weights into.
var scratchPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 64)
	return &s
}}

// ---- frozen sampler ---------------------------------------------------------

// frozenModel is the packed immutable sampler: one open-addressed context
// table per backoff level, each entry pointing at a slice of the level's
// shared sorted-token/cumulative-count arrays. Lookups hash the history
// suffix to a uint64 (full token width; no truncation) and verify the
// stored context ids, so hash collisions cost a probe, never a wrong
// distribution.
type frozenModel struct {
	levels []frozenLevel
}

type frozenLevel struct {
	n       int
	mask    uint32
	table   []int32 // entry index + 1; 0 = empty slot
	ctxToks []int64 // packed contexts, n ids per entry
	distOff []int32 // entry i's dist is toks/cum[distOff[i]:distOff[i+1]]
	toks    []int64
	cum     []int64
}

// mix64 is the splitmix64 finalizer, applied per context token.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashTokens(ctx []int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, t := range ctx {
		h = mix64(h ^ uint64(t))
	}
	return h
}

// Freeze compiles the trained counts into the packed sampler. The map
// store is left untouched (Perplexity and the differential baseline keep
// reading it); sampling switches to the packed tables until the next
// Train. Token ids are carried full-width; no id range is corrupted.
func (m *Model) Freeze() {
	fz := &frozenModel{levels: make([]frozenLevel, m.order)}
	for n := 0; n < m.order; n++ {
		lvl := &fz.levels[n]
		lvl.n = n
		size := 4
		for size < 2*len(m.counts[n]) {
			size <<= 1
		}
		lvl.table = make([]int32, size)
		lvl.mask = uint32(size - 1)
		lvl.distOff = append(lvl.distOff, 0)
		//vgencheck:ordered open-addressed layout varies with insertion order, but probes are id-verified and each context's distribution is sorted, so sampled bytes are layout-independent (TestFreezeLayoutIndependent)
		for key, d := range m.counts[n] {
			ctx := ctxKeyTokens(key, n)
			entry := int32(len(lvl.distOff) - 1)
			for _, t := range ctx {
				lvl.ctxToks = append(lvl.ctxToks, int64(t))
			}
			sd := sortedFromMap(d)
			lvl.toks = append(lvl.toks, sd.toks...)
			lvl.cum = append(lvl.cum, sd.cum...)
			lvl.distOff = append(lvl.distOff, int32(len(lvl.toks)))
			idx := uint32(hashTokens(ctx)) & lvl.mask
			for lvl.table[idx] != 0 {
				idx = (idx + 1) & lvl.mask
			}
			lvl.table[idx] = entry + 1
		}
	}
	m.frozen = fz
}

// Frozen reports whether the model currently samples from the packed
// tables.
func (m *Model) Frozen() bool { return m.frozen != nil }

// find returns the entry index for the context, or -1.
func (lvl *frozenLevel) find(ctx []int) int {
	idx := uint32(hashTokens(ctx)) & lvl.mask
	for {
		e := lvl.table[idx]
		if e == 0 {
			return -1
		}
		off := int(e-1) * lvl.n
		match := true
		for i, t := range ctx {
			if lvl.ctxToks[off+i] != int64(t) {
				match = false
				break
			}
		}
		if match {
			return int(e - 1)
		}
		idx = (idx + 1) & lvl.mask
	}
}

func (fz *frozenModel) sample(history []int, temperature float64, rng *rand.Rand, scratch *[]float64) (int, bool) {
	for n := len(fz.levels) - 1; n >= 0; n-- {
		if len(history) < n {
			continue
		}
		lvl := &fz.levels[n]
		e := lvl.find(history[len(history)-n:])
		if e < 0 {
			continue
		}
		d := sortedDist{
			toks: lvl.toks[lvl.distOff[e]:lvl.distOff[e+1]],
			cum:  lvl.cum[lvl.distOff[e]:lvl.distOff[e+1]],
		}
		return d.pick(temperature, rng, scratch), true
	}
	return 0, false
}

// ---- sampling entry points ---------------------------------------------------

// Sample draws the next token given history at the given temperature.
// Temperature 0 is greedy; higher temperatures flatten the distribution.
// The boolean is false when the model has no distribution at all (untrained).
func (m *Model) Sample(history []int, temperature float64, rng *rand.Rand) (int, bool) {
	scratch := scratchPool.Get().(*[]float64)
	tok, ok := m.sample(history, temperature, rng, scratch)
	scratchPool.Put(scratch)
	return tok, ok
}

func (m *Model) sample(history []int, temperature float64, rng *rand.Rand, scratch *[]float64) (int, bool) {
	if m.frozen != nil {
		return m.frozen.sample(history, temperature, rng, scratch)
	}
	d := m.contextDist(history)
	if d == nil {
		return 0, false
	}
	return sortedFromMap(d).pick(temperature, rng, scratch), true
}

// Generate produces up to maxTokens tokens continuing the prompt.
func (m *Model) Generate(prompt []int, maxTokens int, temperature float64, rng *rand.Rand) []int {
	scratch := scratchPool.Get().(*[]float64)
	history := make([]int, len(prompt), len(prompt)+maxTokens)
	copy(history, prompt)
	out := make([]int, 0, maxTokens)
	for len(out) < maxTokens {
		tok, ok := m.sample(history, temperature, rng, scratch)
		if !ok {
			break
		}
		out = append(out, tok)
		history = append(history, tok)
	}
	scratchPool.Put(scratch)
	return out
}

// Perplexity computes the per-token perplexity of a sequence under the
// model with stupid backoff (unseen tokens cost a uniform floor over the
// seen vocabulary).
func (m *Model) Perplexity(tokens []int) float64 {
	if len(tokens) == 0 || len(m.vocab) == 0 {
		return math.Inf(1)
	}
	logSum := 0.0
	for i, tok := range tokens {
		var p float64
		hist := tokens[:i]
		d := m.contextDist(hist)
		if d != nil {
			if c, ok := d.next[tok]; ok && c > 0 {
				p = float64(c) / float64(d.total)
			}
		}
		if p == 0 {
			p = 0.5 / float64(len(m.vocab)+d0total(d))
		}
		logSum += math.Log(p)
	}
	return math.Exp(-logSum / float64(len(tokens)))
}

func d0total(d *dist) int {
	if d == nil {
		return 1
	}
	return d.total
}
