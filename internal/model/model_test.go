package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/problems"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

func testFamily(t *testing.T) *Family {
	t.Helper()
	return NewFamily(Config{Seed: 11, CorpusFiles: 80, VocabSize: 320})
}

func TestCatalogShape(t *testing.T) {
	if len(IDs) != 6 {
		t.Fatalf("model count = %d", len(IDs))
	}
	for _, id := range IDs {
		s := Lookup(id)
		if s == nil {
			t.Fatalf("missing spec for %s", id)
		}
		if s.MaxTokens == 0 || s.NgramOrder == 0 {
			t.Errorf("%s: incomplete spec", id)
		}
	}
	if Lookup(Codex).HasFineTuned {
		t.Error("codex should not have a fine-tuned variant")
	}
	if Lookup(J1Large7B).MaxTokens != 256 {
		t.Error("J1 max tokens should be 256")
	}
}

func TestPriorsMatchPaperTables(t *testing.T) {
	// spot checks against Tables III and IV
	if got := CompilePrior(CodeGen16B, FineTuned, problems.Basic); got != 0.942 {
		t.Errorf("16B FT basic compile = %v", got)
	}
	if got := CompilePrior(Megatron355M, Pretrained, problems.Advanced); got != 0 {
		t.Errorf("megatron PT advanced compile = %v", got)
	}
	if got := FunctionalPrior(CodeGen6B, FineTuned, problems.Basic, problems.LevelLow); got != 1.0 {
		t.Errorf("6B FT basic L = %v", got)
	}
	if got := FunctionalPrior(Codex, Pretrained, problems.Advanced, problems.LevelHigh); got != 0.344 {
		t.Errorf("codex advanced H = %v", got)
	}
	if got := FunctionalPrior(Codex, FineTuned, problems.Basic, problems.LevelLow); got != 0 {
		t.Errorf("codex FT should have no prior, got %v", got)
	}
}

func TestProblemWeightsPreserveClassMeans(t *testing.T) {
	for _, d := range problems.Difficulties {
		ps := problems.ByDifficulty(d)
		sum := 0.0
		for _, p := range ps {
			sum += problemWeight(p.Number)
		}
		if diff := math.Abs(sum/float64(len(ps)) - 1); diff > 0.01 {
			t.Errorf("difficulty %s weight mean off by %f", d, diff)
		}
	}
}

func TestTempFactorShape(t *testing.T) {
	if tempFactor(0.1, 2) != 1 {
		t.Error("best temperature should be unscaled")
	}
	if !(tempFactor(0.5, 2) > tempFactor(1.0, 2)) {
		t.Error("decay not monotone")
	}
	if tempFactor(0.05, 2) != 1 {
		t.Error("below best temperature should clamp")
	}
}

func TestGeneratorAvailability(t *testing.T) {
	f := testFamily(t)
	if _, ok := f.Generator(Codex, FineTuned); ok {
		t.Error("codex FT generator should not exist")
	}
	if _, ok := f.Generator(CodeGen16B, FineTuned); !ok {
		t.Error("16B FT generator missing")
	}
	if _, ok := f.Generator(ID("nope"), Pretrained); ok {
		t.Error("unknown model accepted")
	}
}

func TestBankPoolsVerified(t *testing.T) {
	f := testFamily(t)
	p := problems.ByNumber(6) // counter
	rng := rand.New(rand.NewSource(1))
	c := f.Bank().Correct(p, rng)
	if verdictOf(p, c) != verdictPass {
		t.Fatal("correct pool entry does not pass")
	}
	if nm, ok := f.Bank().NearMiss(p, rng); ok {
		if v := verdictOf(p, nm); v != verdictFail {
			t.Fatalf("near-miss verdict = %v", v)
		}
	} else {
		t.Fatal("counter should have near-miss mutants")
	}
	b := f.Bank().Broken(p, rng)
	if verdictOf(p, b) == verdictPass {
		t.Fatal("broken pool entry passes")
	}
}

func TestMechanismRatesFollowPriors(t *testing.T) {
	f := testFamily(t)
	g, _ := f.Generator(CodeGen16B, FineTuned)
	p := problems.ByNumber(2) // basic
	rng := rand.New(rand.NewSource(42))
	n := 400
	correct := 0
	for i := 0; i < n; i++ {
		s := g.Complete(p, problems.LevelLow, 0.1, rng)
		if s.Mechanism == "correct" {
			correct++
		}
	}
	want := FunctionalPrior(CodeGen16B, FineTuned, problems.Basic, problems.LevelLow)
	got := float64(correct) / float64(n)
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("correct rate %f, prior %f", got, want)
	}
}

func TestTemperatureDegradesQuality(t *testing.T) {
	f := testFamily(t)
	g, _ := f.Generator(CodeGen6B, FineTuned)
	p := problems.ByNumber(1)
	count := func(temp float64) int {
		rng := rand.New(rand.NewSource(7))
		c := 0
		for i := 0; i < 200; i++ {
			if g.Complete(p, problems.LevelLow, temp, rng).Mechanism == "correct" {
				c++
			}
		}
		return c
	}
	if !(count(0.1) > count(1.0)) {
		t.Fatal("high temperature should reduce correct completions")
	}
}

func TestPretrainedBabbleDoesNotCompile(t *testing.T) {
	f := testFamily(t)
	g, _ := f.Generator(Megatron355M, Pretrained)
	p := problems.ByNumber(3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		s := g.Complete(p, problems.LevelMedium, 0.5, rng)
		src := p.CompleteWith(problems.LevelMedium, s.Completion)
		if fl, err := vlog.Parse(src); err == nil {
			if elab.CompileCheck(fl) == nil {
				t.Fatalf("pre-trained Megatron produced compiling code:\n%s", s.Completion)
			}
		}
	}
}

func TestLatencyNearTableIV(t *testing.T) {
	f := testFamily(t)
	g, _ := f.Generator(J1Large7B, Pretrained)
	rng := rand.New(rand.NewSource(3))
	p := problems.ByNumber(1)
	total := 0.0
	n := 50
	for i := 0; i < n; i++ {
		total += g.Complete(p, problems.LevelLow, 0.1, rng).Latency
	}
	mean := total / float64(n)
	if math.Abs(mean-7.146) > 0.7 {
		t.Fatalf("mean latency %f, want about 7.146", mean)
	}
}

func TestDeterminismAcrossFamilies(t *testing.T) {
	f1 := NewFamily(Config{Seed: 5, CorpusFiles: 50, VocabSize: 300})
	f2 := NewFamily(Config{Seed: 5, CorpusFiles: 50, VocabSize: 300})
	g1, _ := f1.Generator(CodeGen2B, FineTuned)
	g2, _ := f2.Generator(CodeGen2B, FineTuned)
	p := problems.ByNumber(4)
	s1 := g1.CompleteN(p, problems.LevelHigh, 0.3, 5, 1)
	s2 := g2.CompleteN(p, problems.LevelHigh, 0.3, 5, 1)
	for i := range s1 {
		if s1[i].Completion != s2[i].Completion || s1[i].Mechanism != s2[i].Mechanism {
			t.Fatal("generation not deterministic across equal-seed families")
		}
	}
}

func TestBooksCorpusBoost(t *testing.T) {
	base := Config{Seed: 3, CorpusFiles: 50, VocabSize: 300}
	fg := NewFamily(base)
	withBooks := base
	withBooks.Corpus = GitHubPlusBooks
	fb := NewFamily(withBooks)
	gg, _ := fg.Generator(CodeGen16B, FineTuned)
	gb, _ := fb.Generator(CodeGen16B, FineTuned)
	p := problems.ByNumber(14)
	pfG, _ := gg.successProbs(p, problems.LevelLow, 0.1)
	pfB, _ := gb.successProbs(p, problems.LevelLow, 0.1)
	if !(pfB > pfG) {
		t.Fatalf("books corpus should raise functional probability: %f vs %f", pfB, pfG)
	}
	if math.Abs(pfB/pfG-1.014) > 1e-9 {
		t.Fatalf("books gain = %f", pfB/pfG)
	}
}

func TestZeroPriorNeverCorrect(t *testing.T) {
	f := testFamily(t)
	g, _ := f.Generator(Megatron355M, FineTuned)
	p := problems.ByNumber(15) // advanced; Megatron FT advanced prior is 0
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		if s := g.Complete(p, problems.LevelHigh, 0.1, rng); s.Mechanism == "correct" {
			t.Fatal("zero-prior cell produced a correct completion")
		}
	}
}
