package model

import (
	"testing"

	"repro/internal/problems"
)

// TestFrozenFamilyMatchesMapFamily is the generation-front-end
// equivalence contract: two families differing only in Config.MapSampler
// must emit byte-identical completions (text, mechanism, and latency) for
// every (problem, level, temperature) cell and sample stream. Megatron
// pre-trained has the lowest priors, so its samples exercise the
// babble path — the only mechanism that actually runs the n-gram
// sampler — constantly.
func TestFrozenFamilyMatchesMapFamily(t *testing.T) {
	frozen := NewFamily(Config{Seed: 3, CorpusFiles: 25})
	mapped := NewFamily(Config{Seed: 3, CorpusFiles: 25, MapSampler: true})
	for _, id := range []ID{Megatron355M, CodeGen16B} {
		gf, ok := frozen.Generator(id, Pretrained)
		if !ok {
			t.Fatalf("no generator for %s", id)
		}
		gm, _ := mapped.Generator(id, Pretrained)
		for _, p := range problems.All() {
			for _, level := range problems.Levels {
				for _, temp := range []float64{0.1, 0.5, 1.0} {
					base := int64(p.Number)*1000 + int64(level)*100 + int64(temp*10)
					for idx := 0; idx < 3; idx++ {
						sf := gf.CompleteAt(p, level, temp, idx, base)
						sm := gm.CompleteAt(p, level, temp, idx, base)
						if sf != sm {
							t.Fatalf("%s problem %d %s t=%.1f idx %d diverged:\nfrozen: %q (%s)\nmap:    %q (%s)",
								id, p.Number, level, temp, idx,
								sf.Completion, sf.Mechanism, sm.Completion, sm.Mechanism)
						}
					}
				}
			}
		}
	}
}
