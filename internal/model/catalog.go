// Package model implements the simulated LLMs of the evaluation framework:
// the model catalog (paper Table I), the per-model capability calibration
// (Tables III/IV), and a completion sampler that combines three concrete
// generation mechanisms — verified correct variants, AST-mutation
// near-misses (internal/mutate), and n-gram continuation babble
// (internal/ngram) — so every sampled completion is a real Verilog string
// that flows through the actual compile/simulate pipeline.
//
// Substitution note (see DESIGN.md): the transformer weights cannot be
// reproduced offline; the capability priors are taken from the paper's
// measured results and realized mechanistically. The *shape* of every
// table and figure is therefore reproduced by construction plus sampling
// noise, while the pipeline around the model (tokenization, truncation,
// compile check, test benches, metrics) is fully real.
package model

import "repro/internal/problems"

// ID names one of the paper's six LLMs.
type ID string

// The paper's model line-up (Table I).
const (
	Megatron355M ID = "MegatronLM-355M"
	J1Large7B    ID = "J1-Large-7B"
	CodeGen2B    ID = "CodeGen-2B"
	CodeGen6B    ID = "CodeGen-6B"
	CodeGen16B   ID = "CodeGen-16B"
	Codex        ID = "code-davinci-002"
)

// IDs lists the models in Table I order.
var IDs = []ID{Megatron355M, J1Large7B, CodeGen2B, CodeGen6B, CodeGen16B, Codex}

// Spec is the architecture row from Table I plus evaluation metadata.
type Spec struct {
	ID           ID
	Params       string // human-readable parameter count
	ParamCount   int64  // numeric, for size ordering
	Layers       int    // 0 = not disclosed (code-davinci-002)
	Heads        int
	Embed        int
	Context      int
	PretrainData string
	HasFineTuned bool // code-davinci-002 is evaluated pre-trained only

	// MaxTokens is the completion budget (300 for all but J1's 256).
	MaxTokens int

	// InferenceSecondsPT/FT reproduce Table IV's inference-time column.
	InferenceSecondsPT float64
	InferenceSecondsFT float64

	// NgramOrder scales the babble LM's capacity with parameter count.
	NgramOrder int
}

var specs = map[ID]*Spec{
	Megatron355M: {
		ID: Megatron355M, Params: "355M", ParamCount: 355e6,
		Layers: 24, Heads: 16, Embed: 64, Context: 1024,
		PretrainData: "NL", HasFineTuned: true, MaxTokens: 300,
		InferenceSecondsPT: 3.628, InferenceSecondsFT: 0.175,
		NgramOrder: 2,
	},
	J1Large7B: {
		ID: J1Large7B, Params: "7B", ParamCount: 7e9,
		Layers: 32, Heads: 32, Embed: 128, Context: 4096,
		PretrainData: "NL", HasFineTuned: true, MaxTokens: 256,
		InferenceSecondsPT: 7.146, InferenceSecondsFT: 2.029,
		NgramOrder: 4,
	},
	CodeGen2B: {
		ID: CodeGen2B, Params: "2B", ParamCount: 2e9,
		Layers: 32, Heads: 32, Embed: 80, Context: 2048,
		PretrainData: "NL, Code", HasFineTuned: true, MaxTokens: 300,
		InferenceSecondsPT: 1.478, InferenceSecondsFT: 0.665,
		NgramOrder: 3,
	},
	CodeGen6B: {
		ID: CodeGen6B, Params: "6B", ParamCount: 6e9,
		Layers: 33, Heads: 16, Embed: 256, Context: 2048,
		PretrainData: "NL, Code", HasFineTuned: true, MaxTokens: 300,
		InferenceSecondsPT: 2.332, InferenceSecondsFT: 0.710,
		NgramOrder: 4,
	},
	CodeGen16B: {
		ID: CodeGen16B, Params: "16B", ParamCount: 16e9,
		Layers: 34, Heads: 24, Embed: 256, Context: 2048,
		PretrainData: "NL, Code", HasFineTuned: true, MaxTokens: 300,
		InferenceSecondsPT: 2.835, InferenceSecondsFT: 1.994,
		NgramOrder: 5,
	},
	Codex: {
		ID: Codex, Params: "NA", ParamCount: 175e9,
		Layers: 0, Heads: 0, Embed: 0, Context: 8000,
		PretrainData: "NL, Code", HasFineTuned: false, MaxTokens: 300,
		InferenceSecondsPT: 3.885, InferenceSecondsFT: 0,
		NgramOrder: 5,
	},
}

// Lookup returns the spec for a model id.
func Lookup(id ID) *Spec { return specs[id] }

// Variant distinguishes pre-trained from fine-tuned evaluation.
type Variant int

// Model variants.
const (
	Pretrained Variant = iota
	FineTuned
)

func (v Variant) String() string {
	if v == FineTuned {
		return "FT"
	}
	return "PT"
}

// compilePrior is Table III: best-temperature Pass@(scenario*10) for
// compiling completions, indexed [difficulty].
type diffTriple [3]float64

var compilePriors = map[ID]map[Variant]diffTriple{
	Megatron355M: {
		Pretrained: {0.000, 0.000, 0.000},
		FineTuned:  {0.730, 0.391, 0.165},
	},
	CodeGen2B: {
		Pretrained: {0.080, 0.065, 0.176},
		FineTuned:  {0.902, 0.612, 0.592},
	},
	CodeGen6B: {
		Pretrained: {0.052, 0.152, 0.187},
		FineTuned:  {0.987, 0.689, 0.599},
	},
	J1Large7B: {
		Pretrained: {0.182, 0.176, 0.108},
		FineTuned:  {0.882, 0.635, 0.588},
	},
	CodeGen16B: {
		Pretrained: {0.132, 0.203, 0.240},
		FineTuned:  {0.942, 0.728, 0.596},
	},
	Codex: {
		Pretrained: {0.847, 0.452, 0.569},
	},
}

// functionalPriors is Table IV: best-temperature Pass@(scenario*10) for
// test-bench-passing completions, indexed [difficulty][level L/M/H].
type diffLevel [3][3]float64

var functionalPriors = map[ID]map[Variant]diffLevel{
	Megatron355M: {
		Pretrained: {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}},
		FineTuned: {
			{0.170, 0.591, 0.245},
			{0.043, 0.018, 0.025},
			{0.000, 0.000, 0.000},
		},
	},
	CodeGen2B: {
		Pretrained: {
			{0, 0, 0},
			{0, 0, 0},
			{0.000, 0.016, 0.020},
		},
		FineTuned: {
			{0.835, 0.350, 0.630},
			{0.130, 0.092, 0.163},
			{0.132, 0.048, 0.068},
		},
	},
	CodeGen6B: {
		Pretrained: {
			{0, 0, 0},
			{0.000, 0.000, 0.013},
			{0, 0, 0},
		},
		FineTuned: {
			{1.000, 0.500, 0.760},
			{0.135, 0.150, 0.168},
			{0.284, 0.164, 0.164},
		},
	},
	J1Large7B: {
		Pretrained: {
			{0.044, 0.058, 0.067},
			{0.000, 0.000, 0.021},
			{0, 0, 0},
		},
		FineTuned: {
			{0.388, 0.283, 0.342},
			{0.125, 0.075, 0.200},
			{0.000, 0.000, 0.000},
		},
	},
	CodeGen16B: {
		Pretrained: {
			{0.000, 0.085, 0.055},
			{0.035, 0.003, 0.045},
			{0.012, 0.000, 0.016},
		},
		FineTuned: {
			{0.745, 0.720, 0.745},
			{0.213, 0.270, 0.255},
			{0.246, 0.290, 0.294},
		},
	},
	Codex: {
		Pretrained: {
			{0.520, 0.685, 0.775},
			{0.175, 0.200, 0.150},
			{0.156, 0.184, 0.344},
		},
	},
}

// CompilePrior returns Table III's value for (model, variant, difficulty).
func CompilePrior(id ID, v Variant, d problems.Difficulty) float64 {
	byVar, ok := compilePriors[id]
	if !ok {
		return 0
	}
	t, ok := byVar[v]
	if !ok {
		return 0
	}
	return t[int(d)]
}

// FunctionalPrior returns Table IV's value for (model, variant, difficulty,
// level).
func FunctionalPrior(id ID, v Variant, d problems.Difficulty, l problems.Level) float64 {
	byVar, ok := functionalPriors[id]
	if !ok {
		return 0
	}
	t, ok := byVar[v]
	if !ok {
		return 0
	}
	return t[int(d)][int(l)]
}

// problemWeight reweights the functional prior across problems inside a
// difficulty class, reproducing the paper's per-problem findings: with
// CodeGen-16B-FT producing 540 completions per problem, problems 7 (LFSR)
// and 12 (truth table) had zero passes and problem 9 (shift/rotate) had
// one (Section VI). Weights within each class average to 1 so the
// class-level priors are preserved.
func problemWeight(num int) float64 {
	switch num {
	case 7, 12:
		return 0
	case 9:
		return 0.05
	case 5, 6, 8, 10, 11:
		// the remaining five intermediate problems absorb the mass:
		// (8 - 0 - 0 - 0.05) / 5
		return 1.59
	default:
		return 1
	}
}

// Headline aggregates reported in Sections VI-VII, used by the harness for
// paper-vs-measured comparison.
const (
	HeadlineCompilePT    = 0.119  // pre-trained completions that compile
	HeadlineCompileFT    = 0.646  // fine-tuned completions that compile
	HeadlineFunctionalPT = 0.0109 // pre-trained completions passing tests
	HeadlineFunctionalFT = 0.270  // fine-tuned completions passing tests
	Headline16BFT        = 0.419  // CodeGen-16B-FT overall functional rate
	HeadlineCodex        = 0.354  // code-davinci-002 overall functional rate
	HeadlineBooksGain    = 0.014  // ablation: GitHub+books over GitHub-only
)
