package model

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/bpe"
	"repro/internal/corpus"
	"repro/internal/ngram"
	"repro/internal/problems"
)

// CorpusKind selects the fine-tuning corpus (Section VI ablation).
type CorpusKind int

// Fine-tuning corpus choices.
const (
	GitHubOnly CorpusKind = iota
	GitHubPlusBooks
)

func (k CorpusKind) String() string {
	if k == GitHubPlusBooks {
		return "GitHub+Books"
	}
	return "GitHub"
}

// Config tunes the simulated-LLM family.
type Config struct {
	Seed        int64
	Corpus      CorpusKind
	CorpusFiles int // synthetic GitHub corpus size; 0 = 300
	VocabSize   int // BPE vocabulary; 0 = 512

	// TempDecayFunctional/Compile control how Pass@ degrades away from the
	// best temperature t=0.1 (Fig. 6 shows exponential decay).
	TempDecayFunctional float64 // 0 = 2.0
	TempDecayCompile    float64 // 0 = 1.0

	// MapSampler keeps the n-gram LMs on the mutable map-backed sampling
	// path instead of freezing them into packed samplers after training —
	// the differential baseline, mirroring sim.Options.Interpret. Output
	// is byte-identical either way; only the allocation profile differs.
	MapSampler bool
}

func (c Config) corpusFiles() int {
	if c.CorpusFiles <= 0 {
		return 300
	}
	return c.CorpusFiles
}

func (c Config) vocabSize() int {
	if c.VocabSize <= 0 {
		return 512
	}
	return c.VocabSize
}

func (c Config) tempDecayFunctional() float64 {
	if c.TempDecayFunctional == 0 {
		return 2.0
	}
	return c.TempDecayFunctional
}

func (c Config) tempDecayCompile() float64 {
	if c.TempDecayCompile == 0 {
		return 1.0
	}
	return c.TempDecayCompile
}

// Family is the full simulated model line-up sharing one tokenizer, one
// training corpus, and one variant bank.
type Family struct {
	cfg  Config
	tok  *bpe.Tokenizer
	bank *VariantBank

	verilogText []string // normalized fine-tuning stream
	naturalText []string // generic pre-training stream

	lmMu sync.Mutex        // guards the slot map only
	lms  map[lmKey]*lmSlot // per-key training runs under the slot's once

	prompts sync.Map // promptKey -> []int: normalized+encoded prompt ids (read-only after store)
}

type promptKey struct {
	problem int
	level   problems.Level
}

type lmKey struct {
	order int
	v     Variant
}

type lmSlot struct {
	once sync.Once
	m    *ngram.Model
}

// NewFamily builds the shared substrate: runs the corpus pipeline, trains
// the tokenizer, and prepares lazy per-capacity language models.
func NewFamily(cfg Config) *Family {
	gh := corpus.GenerateGitHub(corpus.GitHubOptions{
		NumFiles: cfg.corpusFiles(), DupRate: 0.12, NearDupRate: 0.08,
		NoiseRate: 0.06, OversizeRate: 0.04, Seed: cfg.Seed,
	})
	kept, _ := corpus.Curate(gh, corpus.FilterOptions{})
	var vtext []string
	for _, f := range kept {
		vtext = append(vtext, corpus.NormalizeForLM(f.Content))
	}
	if cfg.Corpus == GitHubPlusBooks {
		books := corpus.GenerateBooks(corpus.BookOptions{Seed: cfg.Seed + 1})
		for _, w := range corpus.ExtractWindows(books, corpus.WindowOptions{}) {
			vtext = append(vtext, corpus.NormalizeForLM(w))
		}
	}

	// generic pre-training text: prose plus C-like code, no Verilog
	natural := []string{
		"the quick brown fox jumps over the lazy dog and keeps running",
		"int main ( void ) { int i ; for ( i = 0 ; i < 10 ; i ++ ) printf ( \"%d\" , i ) ; return 0 ; }",
		"def fib ( n ) : return n if n < 2 else fib ( n - 1 ) + fib ( n - 2 )",
		"in this chapter we review the architecture of modern processors and their memory hierarchies",
		"while ( ptr != NULL ) { ptr = ptr -> next ; count ++ ; }",
	}

	f := &Family{
		cfg:         cfg,
		bank:        NewVariantBank(cfg.Seed),
		verilogText: vtext,
		naturalText: natural,
		lms:         map[lmKey]*lmSlot{},
	}
	f.tok = bpe.Train(append(append([]string{}, vtext...), natural...), cfg.vocabSize())
	return f
}

// Tokenizer exposes the shared BPE tokenizer.
func (f *Family) Tokenizer() *bpe.Tokenizer { return f.tok }

// Bank exposes the shared variant bank.
func (f *Family) Bank() *VariantBank { return f.bank }

// CorpusDocs returns the number of fine-tuning documents after curation.
func (f *Family) CorpusDocs() int { return len(f.verilogText) }

func (f *Family) lm(order int, v Variant) *ngram.Model {
	key := lmKey{order: order, v: v}
	f.lmMu.Lock()
	s, ok := f.lms[key]
	if !ok {
		s = &lmSlot{}
		f.lms[key] = s
	}
	f.lmMu.Unlock()
	s.once.Do(func() {
		m := ngram.New(order)
		texts := f.naturalText
		if v == FineTuned {
			texts = f.verilogText
		}
		var buf []int
		for _, t := range texts {
			buf = f.tok.EncodeInto(buf[:0], t)
			m.Train(buf)
		}
		if !f.cfg.MapSampler {
			m.Freeze()
		}
		s.m = m
	})
	return s.m
}

// promptIDs returns the babble prompt token window for (problem, level):
// the normalized prompt, BPE-encoded, clipped to its last 64 ids. Cached
// per family — normalization and encoding are identical for every sample
// of a cell, and the cached slice is only ever read.
func (f *Family) promptIDs(p *problems.Problem, level problems.Level) []int {
	key := promptKey{problem: p.Number, level: level}
	if ids, ok := f.prompts.Load(key); ok {
		return ids.([]int)
	}
	ids := f.tok.Encode(corpus.NormalizeForLM(p.Prompt(level)))
	if len(ids) > 64 {
		ids = ids[len(ids)-64:]
	}
	got, _ := f.prompts.LoadOrStore(key, ids)
	return got.([]int)
}

// Generator is one (model, variant) pair ready to produce completions.
type Generator struct {
	Spec    *Spec
	Variant Variant
	family  *Family
}

// Generator returns the sampler for a model/variant pair; ok is false for
// variants the paper does not evaluate (fine-tuned code-davinci-002).
func (f *Family) Generator(id ID, v Variant) (*Generator, bool) {
	spec := Lookup(id)
	if spec == nil {
		return nil, false
	}
	if v == FineTuned && !spec.HasFineTuned {
		return nil, false
	}
	return &Generator{Spec: spec, Variant: v, family: f}, true
}

// Sample is one produced completion with its simulated latency.
type Sample struct {
	Completion string
	Mechanism  string // "correct", "near-miss", "babble", "truncation"
	Latency    float64
}

// tempFactor implements the Fig. 6 exponential decay away from t=0.1.
func tempFactor(t, decay float64) float64 {
	d := t - 0.1
	if d < 0 {
		d = 0
	}
	return math.Exp(-decay * d)
}

// successProbs returns the effective functional and compile probabilities
// for one query.
func (g *Generator) successProbs(p *problems.Problem, level problems.Level, temperature float64) (pf, pc float64) {
	pf = FunctionalPrior(g.Spec.ID, g.Variant, p.Difficulty, level)
	pf *= problemWeight(p.Number)
	pf *= tempFactor(temperature, g.family.cfg.tempDecayFunctional())
	if g.family.cfg.Corpus == GitHubPlusBooks && g.Variant == FineTuned {
		pf *= 1 + HeadlineBooksGain
	}
	if pf > 1 {
		pf = 1
	}
	pc = CompilePrior(g.Spec.ID, g.Variant, p.Difficulty)
	pc *= tempFactor(temperature, g.family.cfg.tempDecayCompile())
	if pc < pf {
		pc = pf
	}
	if pc > 1 {
		pc = 1
	}
	return pf, pc
}

// Complete produces one completion for (problem, level) at the given
// temperature. The rng must be caller-seeded for reproducibility.
func (g *Generator) Complete(p *problems.Problem, level problems.Level, temperature float64, rng *rand.Rand) Sample {
	pf, pc := g.successProbs(p, level, temperature)
	lat := g.latency(rng)
	u := rng.Float64()
	switch {
	case u < pf:
		return Sample{Completion: g.family.bank.Correct(p, rng), Mechanism: "correct", Latency: lat}
	case u < pc:
		if body, ok := g.family.bank.NearMiss(p, rng); ok {
			return Sample{Completion: body, Mechanism: "near-miss", Latency: lat}
		}
		// no mutant available: fall through to a broken completion so the
		// sample cannot spuriously pass
		fallthrough
	default:
		if rng.Intn(2) == 0 {
			return Sample{Completion: g.family.bank.Broken(p, rng), Mechanism: "truncation", Latency: lat}
		}
		return Sample{Completion: g.babble(p, level, temperature, rng), Mechanism: "babble", Latency: lat}
	}
}

// SampleSeed derives the RNG seed for sample idx of a query from the
// query's base seed. splitmix64 over (base, idx) gives every sample an
// independent, well-dispersed stream, so sample idx draws the same
// completion whether it is produced serially or by any parallel worker —
// the determinism contract of the parallel evaluation engine (see
// DESIGN.md, "Determinism under parallelism").
func SampleSeed(base int64, idx int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// CompleteAt produces sample idx of the query identified by baseSeed. The
// draw depends only on (baseSeed, idx), never on the other samples.
func (g *Generator) CompleteAt(p *problems.Problem, level problems.Level, temperature float64, idx int, baseSeed int64) Sample {
	rng := rand.New(rand.NewSource(SampleSeed(baseSeed, idx)))
	return g.Complete(p, level, temperature, rng)
}

// CompleteN produces n completions (the paper's completions-per-prompt).
// Each sample gets its own hashed RNG stream; the result is byte-identical
// to evaluating the indices out of order or in parallel.
func (g *Generator) CompleteN(p *problems.Problem, level problems.Level, temperature float64, n int, baseSeed int64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = g.CompleteAt(p, level, temperature, i, baseSeed)
	}
	return out
}

// babble free-runs the n-gram LM from the prompt and truncates at the
// model's token budget — the paper's "does not even compile" bucket.
func (g *Generator) babble(p *problems.Problem, level problems.Level, temperature float64, rng *rand.Rand) string {
	lm := g.family.lm(g.Spec.NgramOrder, g.Variant)
	promptIDs := g.family.promptIDs(p, level)
	maxTok := g.Spec.MaxTokens
	if maxTok > 120 {
		maxTok = 120 // babble needs no more to be conclusively broken
	}
	st := temperature
	if st <= 0 {
		st = 0.1
	}
	ids := lm.Generate(promptIDs, maxTok, st, rng)
	text := g.family.tok.Decode(ids)
	return "  " + text + "\n"
}

// latency draws a simulated inference time around the Table IV column.
func (g *Generator) latency(rng *rand.Rand) float64 {
	base := g.Spec.InferenceSecondsPT
	if g.Variant == FineTuned {
		base = g.Spec.InferenceSecondsFT
	}
	return base * (0.9 + 0.2*rng.Float64())
}
