package model

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/problems"
)

// TestFineTuningLowersVerilogPerplexity validates the substitution story:
// "fine-tuning" really is training the generative component on the curated
// Verilog corpus, and it measurably improves the model's fit to held-out
// Verilog (lower perplexity) versus the pre-trained natural-text variant.
func TestFineTuningLowersVerilogPerplexity(t *testing.T) {
	f := testFamily(t)
	ft := f.lm(4, FineTuned)
	pt := f.lm(4, Pretrained)

	// held-out Verilog: fresh archetype instances not in the corpus seed
	rng := rand.New(rand.NewSource(987))
	var ftSum, ptSum float64
	n := 10
	for i := 0; i < n; i++ {
		doc := corpus.NormalizeForLM(corpus.GenerateModule(rng))
		toks := f.Tokenizer().Encode(doc)
		ftSum += ft.Perplexity(toks)
		ptSum += pt.Perplexity(toks)
	}
	if !(ftSum/float64(n) < ptSum/float64(n)) {
		t.Fatalf("fine-tuned perplexity %.1f should beat pre-trained %.1f",
			ftSum/float64(n), ptSum/float64(n))
	}
}

func TestBabbleMechanismProducesText(t *testing.T) {
	f := testFamily(t)
	g, _ := f.Generator(CodeGen16B, FineTuned)
	p := problems.ByNumber(7) // zero functional weight: never "correct"
	rng := rand.New(rand.NewSource(31))
	sawBabble := false
	for i := 0; i < 60 && !sawBabble; i++ {
		s := g.Complete(p, problems.LevelLow, 1.0, rng)
		if s.Mechanism == "babble" {
			sawBabble = true
			if strings.TrimSpace(s.Completion) == "" {
				t.Fatal("babble produced empty completion")
			}
		}
	}
	if !sawBabble {
		t.Fatal("babble mechanism never selected at t=1.0")
	}
}

func TestBrokenPoolNeverCompiles(t *testing.T) {
	f := testFamily(t)
	rng := rand.New(rand.NewSource(8))
	for _, num := range []int{1, 6, 15} {
		p := problems.ByNumber(num)
		for i := 0; i < 5; i++ {
			b := f.Bank().Broken(p, rng)
			if verdictOf(p, b) == verdictPass {
				t.Fatalf("problem %d broken pool entry passes:\n%s", num, b)
			}
		}
	}
}

func TestCompleteNCount(t *testing.T) {
	f := testFamily(t)
	g, _ := f.Generator(CodeGen2B, Pretrained)
	p := problems.ByNumber(3)
	out := g.CompleteN(p, problems.LevelHigh, 0.3, 25, 1)
	if len(out) != 25 {
		t.Fatalf("got %d samples", len(out))
	}
}

func TestCorpusKindString(t *testing.T) {
	if GitHubOnly.String() != "GitHub" || GitHubPlusBooks.String() != "GitHub+Books" {
		t.Fatal("corpus kind strings wrong")
	}
	if Pretrained.String() != "PT" || FineTuned.String() != "FT" {
		t.Fatal("variant strings wrong")
	}
}
