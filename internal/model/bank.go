package model

import (
	"math/rand"
	"strings"
	"sync"

	"repro/internal/mutate"
	"repro/internal/problems"
	"repro/internal/sim"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

// VariantBank holds, per problem, pools of verified completions:
//
//   - correct: completions that compile and pass the problem's test bench
//     (the reference body plus harmless restyles);
//   - nearMiss: completions that compile but fail the test bench
//     (AST mutants, the paper's characteristic near-miss failures);
//   - broken: completions that fail to compile (truncations and corrupted
//     bodies; the n-gram babble path adds more at sampling time).
//
// Verification runs the real pipeline once at bank construction, so a
// sampled "correct" completion is guaranteed to land in the measured
// pass bucket for the right reason: it genuinely passes simulation.
// Locking: the bank-wide mutex guards only the slot map; each problem's
// pools build under a per-problem sync.Once, so two workers evaluating
// different problems never serialize on each other's (expensive, real
// compile+simulate) bank construction.
type VariantBank struct {
	mu    sync.Mutex
	slots map[int]*bankSlot
	seed  int64
}

type bankSlot struct {
	once sync.Once
	e    *bankEntry
}

type bankEntry struct {
	correct  []string
	nearMiss []string
	broken   []string
}

// NewVariantBank creates an empty bank; pools build lazily per problem.
func NewVariantBank(seed int64) *VariantBank {
	return &VariantBank{slots: map[int]*bankSlot{}, seed: seed}
}

func (b *VariantBank) entry(p *problems.Problem) *bankEntry {
	b.mu.Lock()
	s, ok := b.slots[p.Number]
	if !ok {
		s = &bankSlot{}
		b.slots[p.Number] = s
	}
	b.mu.Unlock()
	s.once.Do(func() { s.e = buildEntry(p, b.seed) })
	return s.e
}

// Correct draws a verified-passing completion.
func (b *VariantBank) Correct(p *problems.Problem, rng *rand.Rand) string {
	e := b.entry(p)
	return e.correct[rng.Intn(len(e.correct))]
}

// NearMiss draws a compiles-but-fails completion; ok is false when the
// mutation engine found none for this problem.
func (b *VariantBank) NearMiss(p *problems.Problem, rng *rand.Rand) (string, bool) {
	e := b.entry(p)
	if len(e.nearMiss) == 0 {
		return "", false
	}
	return e.nearMiss[rng.Intn(len(e.nearMiss))], true
}

// Broken draws a non-compiling completion.
func (b *VariantBank) Broken(p *problems.Problem, rng *rand.Rand) string {
	e := b.entry(p)
	return e.broken[rng.Intn(len(e.broken))]
}

// buildEntry constructs and verifies the pools for one problem. The
// problem's testbench is parsed once up front and composed with each
// candidate's AST, mirroring eval's single-parse pipeline.
func buildEntry(p *problems.Problem, seed int64) *bankEntry {
	rng := rand.New(rand.NewSource(seed + int64(p.Number)*7919))
	tb, tbErr := vlog.Parse(p.Testbench)
	check := func(completion string) verdict {
		return verdictWith(p, completion, tb, tbErr)
	}
	e := &bankEntry{}

	// --- correct pool: reference body restyles, verified to pass
	candidates := []string{
		p.RefBody,
		"  // implementation\n" + p.RefBody,
		reprintBody(p),
	}
	for _, c := range candidates {
		if c == "" {
			continue
		}
		if check(c) == verdictPass {
			e.correct = append(e.correct, c)
		}
	}
	if len(e.correct) == 0 {
		// the reference itself must pass; enforced by problems tests
		e.correct = append(e.correct, p.RefBody)
	}

	// --- near-miss pool: mutants that compile and fail
	ref := p.ReferenceSource()
	for tries := 0; tries < 80 && len(e.nearMiss) < 10; tries++ {
		res, err := mutate.Apply(ref, rng)
		if err != nil {
			break
		}
		body, ok := behaviouralTail(res.Source)
		if !ok {
			continue
		}
		switch check(body) {
		case verdictFail:
			e.nearMiss = append(e.nearMiss, body)
		}
	}

	// --- broken pool: truncations and corruptions, verified to not compile
	base := p.RefBody
	cuts := []int{len(base) / 3, len(base) / 2, 2 * len(base) / 3}
	for _, cut := range cuts {
		if cut < 1 || cut >= len(base) {
			continue
		}
		body := base[:cut]
		if check(body) == verdictNoCompile {
			e.broken = append(e.broken, body)
		}
	}
	corrupted := strings.Replace(base, "endmodule", "endmodul", 1)
	if check(corrupted) == verdictNoCompile {
		e.broken = append(e.broken, corrupted)
	}
	undeclared := "  assign undeclared_net_xyz = some_other_net + 1;\nendmodule\n"
	if check(undeclared) == verdictNoCompile {
		e.broken = append(e.broken, undeclared)
	}
	if len(e.broken) == 0 {
		e.broken = append(e.broken, "  begin begin begin\n")
	}
	return e
}

type verdict int

const (
	verdictNoCompile verdict = iota
	verdictFail
	verdictPass
)

// verdictWith runs the real pipeline on prompt(L)+completion, composing
// the candidate's AST with the pre-parsed testbench so the bench text is
// parsed once per problem, not once per candidate.
func verdictWith(p *problems.Problem, completion string, tb *vlog.SourceFile, tbErr error) verdict {
	src := p.CompleteWith(problems.LevelLow, completion)
	f, err := vlog.Parse(src)
	if err != nil {
		return verdictNoCompile
	}
	if elab.CompileCheck(f) != nil {
		return verdictNoCompile
	}
	if tbErr != nil {
		return verdictNoCompile
	}
	d, err := elab.Elaborate(vlog.Compose(f, tb), "tb", elab.Options{})
	if err != nil {
		return verdictNoCompile
	}
	res, err := sim.New(d, sim.Options{}).Run()
	if err != nil {
		return verdictFail
	}
	if problems.PassVerdict(res.Output) {
		return verdictPass
	}
	return verdictFail
}

// verdictOf runs the real pipeline on prompt(L)+completion, parsing the
// problem's testbench itself (convenience for one-off checks and tests;
// buildEntry pre-parses the bench once instead).
func verdictOf(p *problems.Problem, completion string) verdict {
	tb, tbErr := vlog.Parse(p.Testbench)
	return verdictWith(p, completion, tb, tbErr)
}

// reprintBody reparses the reference and prints its behavioural items in
// canonical style — a formatting-only restyle.
func reprintBody(p *problems.Problem) string {
	body, ok := behaviouralTail(p.ReferenceSource())
	if !ok {
		return ""
	}
	return body
}

// behaviouralTail extracts the always/initial/assign items of a module's
// printed form as a completion (decls live in the prompt).
func behaviouralTail(src string) (string, bool) {
	f, err := vlog.Parse(src)
	if err != nil {
		return "", false
	}
	var items []vlog.Item
	for _, it := range f.Modules[0].Items {
		switch it.(type) {
		case *vlog.AlwaysBlock, *vlog.InitialBlock, *vlog.ContAssign:
			items = append(items, it)
		}
	}
	if len(items) == 0 {
		return "", false
	}
	return vlog.PrintItems(items) + "endmodule\n", true
}
