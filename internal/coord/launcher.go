package coord

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"time"

	"repro/internal/core"
)

// Attempt identifies one try at one shard: which shard, which 1-based
// attempt number, which worker slot it runs on, and where it must read
// its plan and write its (attempt-unique) result file. OutPath is
// attempt-unique so speculative duplicates of a straggler can never
// trample each other; the supervisor renames the winner into place.
type Attempt struct {
	Shard    int
	Attempt  int
	Slot     int
	PlanPath string
	OutPath  string
}

// Launcher runs one shard attempt to completion: execute the plan at
// PlanPath and leave a complete wire results file at OutPath. A launcher
// must honor ctx — the supervisor cancels attempts on timeout, shutdown,
// and when a speculative sibling wins — and must be safe for concurrent
// use from every worker slot. Returning nil does not mean the shard is
// done: the supervisor independently decode-validates OutPath before a
// result counts, so a launcher that lies (or a worker that crashed after
// its exit status was lost) is caught the same way as a truncated file.
type Launcher interface {
	Launch(ctx context.Context, a Attempt) error
}

// FrameworkLauncher runs attempts in-process against one shared
// Framework — the zero-setup path for single-machine supervised runs and
// the deterministic substrate of the fault-injection tests. The
// Framework's plan-file validation (backend tag, seed) applies to every
// attempt exactly as it would to a remote worker.
type FrameworkLauncher struct {
	FW *core.Framework
}

func (l *FrameworkLauncher) Launch(ctx context.Context, a Attempt) error {
	return l.FW.RunPlanFileCtx(ctx, a.PlanPath, a.OutPath)
}

// ProcLauncher runs each attempt as a worker subprocess — `vgen-eval
// -from-plan` or `vgen-coord` in worker mode — so a worker crash, OOM
// kill, or hang is isolated from the coordinator. Cancellation kills the
// process group leader via exec.CommandContext.
type ProcLauncher struct {
	// Argv builds the full worker command line for one attempt; the
	// command must read a.PlanPath and write its results to a.OutPath.
	Argv func(a Attempt) []string
}

// stderrTailCap bounds how much worker stderr is retained for error
// reporting; a worker that floods stderr must not balloon the
// coordinator's memory.
const stderrTailCap = 4 << 10

// tailWriter keeps the last cap bytes written through it.
type tailWriter struct {
	buf bytes.Buffer
	cap int
}

func (w *tailWriter) Write(p []byte) (int, error) {
	n := len(p)
	if n >= w.cap {
		w.buf.Reset()
		p = p[n-w.cap:]
	}
	w.buf.Write(p)
	if over := w.buf.Len() - w.cap; over > 0 {
		w.buf.Next(over)
	}
	return n, nil
}

func (l *ProcLauncher) Launch(ctx context.Context, a Attempt) error {
	argv := l.Argv(a)
	if len(argv) == 0 {
		return fmt.Errorf("coord: ProcLauncher.Argv returned an empty command")
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	tail := &tailWriter{cap: stderrTailCap}
	cmd.Stdout = io.Discard
	cmd.Stderr = tail
	// A killed worker's surviving children must not wedge the slot: kill
	// the whole process group on cancellation, and give up on their pipe
	// ends shortly after rather than waiting for orphans to exit.
	isolateProcessGroup(cmd)
	cmd.WaitDelay = 5 * time.Second
	if err := cmd.Run(); err != nil {
		// ctx expiry (timeout, steal supersession, shutdown) beats the
		// kill-induced exit status as the diagnostic.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		msg := strings.TrimSpace(tail.buf.String())
		if msg != "" {
			return fmt.Errorf("coord: worker %v: %w: %s", argv, err, msg)
		}
		return fmt.Errorf("coord: worker %v: %w", argv, err)
	}
	return nil
}
