//go:build unix

package coord

import (
	"os/exec"
	"syscall"
)

// isolateProcessGroup makes the worker its own process group leader and
// arranges cancellation to kill the whole group. Without this, killing a
// shell-wrapped worker leaves its children alive — and, worse, holding
// the coordinator's stderr pipe open, which wedges the slot in Wait
// until the orphan exits on its own.
func isolateProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.Cancel = func() error {
		if cmd.Process == nil {
			return nil
		}
		return syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
	}
}
