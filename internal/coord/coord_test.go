package coord

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
)

// The suite runs real supervised sweeps over the mutant backend (cheap,
// deterministic, no corpus) with faults injected at the supervision
// boundary, and holds every recovery path to the same bar: the merged
// result must equal the monolithic single-process run cell for cell.

var testExps = []string{"table3"}

func coordFW(t *testing.T) *core.Framework {
	t.Helper()
	fw, err := core.New(core.Config{
		Seed:    7,
		Backend: "mutant",
		Sweep:   eval.SweepOptions{N: 1, Temperatures: []float64{0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// monolithic is the ground truth: the whole sweep in one process, no
// supervision, no sharding.
func monolithic(t *testing.T, fw *core.Framework) *eval.ResultSet {
	t.Helper()
	rs, _, err := fw.ExecuteShard(testExps, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// sameCells asserts got covers exactly want's coordinates with identical
// stats — CellStats compares with ==, so this pins the float sums
// bit-for-bit, which is what makes the rendered tables byte-identical.
func sameCells(t *testing.T, got, want *eval.ResultSet) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("merged set has %d cells, monolithic has %d", got.Len(), want.Len())
	}
	for _, c := range want.Coords() {
		g, ok := got.Get(c)
		w, _ := want.Get(c)
		if !ok {
			t.Fatalf("cell %+v missing from supervised result", c)
		}
		if g != w {
			t.Fatalf("cell %+v: supervised %+v != monolithic %+v", c, g, w)
		}
	}
}

// eventLog records the supervision stream. Events arrive synchronously
// from the coordinator goroutine, so plain appends are race-free.
type eventLog struct{ events []Event }

func (l *eventLog) add(e Event) { l.events = append(l.events, e) }
func (l *eventLog) count(k EventKind) int {
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// countingLauncher counts Launch calls around an inner launcher.
type countingLauncher struct {
	inner Launcher
	calls atomic.Int64
}

func (l *countingLauncher) Launch(ctx context.Context, a Attempt) error {
	l.calls.Add(1)
	return l.inner.Launch(ctx, a)
}

func baseConfig(dir string, log *eventLog) Config {
	return Config{
		Experiments: testExps,
		Shards:      4,
		Workers:     2,
		Dir:         dir,
		BackoffBase: time.Millisecond,
		Seed:        7,
		Events:      log.add,
	}
}

func TestSupervisedCleanRunMatchesMonolithic(t *testing.T) {
	fw := coordFW(t)
	log := &eventLog{}
	cfg := baseConfig(t.TempDir(), log)
	res, err := Run(context.Background(), fw, cfg, &FrameworkLauncher{FW: fw})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("clean run incomplete: %s", res.Report())
	}
	sameCells(t, res.Set, monolithic(t, fw))
	for _, st := range res.Shards {
		if st.Attempts != 1 || !st.Done || st.Resumed {
			t.Errorf("shard %d status %+v, want one clean attempt", st.Shard, st)
		}
	}
	if got := log.count(EventDone); got != cfg.Shards {
		t.Errorf("%d done events for %d shards", got, cfg.Shards)
	}
	if got := log.count(EventRetry) + log.count(EventGiveUp) + log.count(EventQuarantine); got != 0 {
		t.Errorf("clean run emitted %d failure events", got)
	}
}

// TestFaultRecovery drives each injected failure mode — and then all of
// them at once — through the retry machinery and demands a complete,
// monolithic-identical result. Truncate and corrupt matter most: the
// launcher reports success, so only the supervisor's decode validation
// stands between them and a silently wrong merge.
func TestFaultRecovery(t *testing.T) {
	fw := coordFW(t)
	want := monolithic(t, fw)
	cases := []struct {
		name    string
		plan    *FaultPlan
		timeout time.Duration
		retried []int // shards that must show >1 attempt
	}{
		{"crash", NewFaultPlan().Add(1, 1, FaultCrash), 0, []int{1}},
		{"truncate", NewFaultPlan().Add(2, 1, FaultTruncate), 0, []int{2}},
		{"corrupt", NewFaultPlan().Add(0, 1, FaultCorrupt), 0, []int{0}},
		{"hang", NewFaultPlan().Add(3, 1, FaultHang), 300 * time.Millisecond, []int{3}},
		{"all-at-once", NewFaultPlan().
			Add(0, 1, FaultCorrupt).Add(1, 1, FaultCrash).
			Add(2, 1, FaultTruncate).Add(3, 1, FaultHang),
			300 * time.Millisecond, []int{0, 1, 2, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := &eventLog{}
			cfg := baseConfig(t.TempDir(), log)
			cfg.Timeout = tc.timeout
			l := &FaultyLauncher{Inner: &FrameworkLauncher{FW: fw}, Plan: tc.plan}
			res, err := Run(context.Background(), fw, cfg, l)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete() {
				t.Fatalf("recovery failed: %s", res.Report())
			}
			sameCells(t, res.Set, want)
			for _, shard := range tc.retried {
				if res.Shards[shard].Attempts < 2 {
					t.Errorf("shard %d recovered in %d attempts, expected a retry",
						shard, res.Shards[shard].Attempts)
				}
			}
			if log.count(EventRetry) < len(tc.retried) {
				t.Errorf("%d retry events, want >= %d", log.count(EventRetry), len(tc.retried))
			}
		})
	}
}

// TestRetryExhaustionDegradesToPartial: a shard that fails every attempt
// must not kill the run — the coordinator merges what completed and
// reports the gap explicitly.
func TestRetryExhaustionDegradesToPartial(t *testing.T) {
	fw := coordFW(t)
	log := &eventLog{}
	cfg := baseConfig(t.TempDir(), log)
	cfg.MaxAttempts = 2
	l := &FaultyLauncher{
		Inner: &FrameworkLauncher{FW: fw},
		Plan:  NewFaultPlan().Add(2, AnyAttempt, FaultCrash),
	}
	res, err := Run(context.Background(), fw, cfg, l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() {
		t.Fatal("persistently failing shard reported complete")
	}
	if len(res.FailedShards) != 1 || res.FailedShards[0] != 2 {
		t.Fatalf("FailedShards = %v, want [2]", res.FailedShards)
	}
	if res.Shards[2].Attempts != cfg.MaxAttempts {
		t.Errorf("failed shard used %d attempts, budget was %d", res.Shards[2].Attempts, cfg.MaxAttempts)
	}
	if log.count(EventGiveUp) != 1 {
		t.Errorf("%d give-up events, want 1", log.count(EventGiveUp))
	}

	// The merged set must hold exactly the other shards' cells, and
	// MissingCells exactly shard 2's plan, in canonical order.
	plan2, _, err := fw.ShardPlan(testExps, 2, cfg.Shards)
	if err != nil {
		t.Fatal(err)
	}
	full := monolithic(t, fw)
	if res.Set.Len() != full.Len()-len(plan2.Coords()) {
		t.Errorf("partial set has %d cells, want %d", res.Set.Len(), full.Len()-len(plan2.Coords()))
	}
	if len(res.MissingCells) != len(plan2.Coords()) {
		t.Fatalf("%d missing cells, shard 2 planned %d", len(res.MissingCells), len(plan2.Coords()))
	}
	for _, c := range plan2.Coords() {
		if _, ok := res.Set.Get(c); ok {
			t.Fatalf("failed shard's cell %+v present in merge", c)
		}
	}
	for i := 1; i < len(res.MissingCells); i++ {
		if !res.MissingCells[i-1].Less(res.MissingCells[i]) {
			t.Fatal("MissingCells not in canonical order")
		}
	}
	rep := res.Report()
	if !strings.Contains(rep, "PARTIAL") || !strings.Contains(rep, "shard 2") {
		t.Errorf("report does not name the gap:\n%s", rep)
	}
}

func TestEveryShardFailingIsAnError(t *testing.T) {
	fw := coordFW(t)
	cfg := baseConfig(t.TempDir(), &eventLog{})
	cfg.MaxAttempts = 2
	plan := NewFaultPlan()
	for i := 0; i < cfg.Shards; i++ {
		plan.Add(i, AnyAttempt, FaultCrash)
	}
	l := &FaultyLauncher{Inner: &FrameworkLauncher{FW: fw}, Plan: plan}
	if _, err := Run(context.Background(), fw, cfg, l); err == nil {
		t.Fatal("sweep with zero completed shards returned a Result")
	}
}

// TestResumeFromDurableShards: a second coordinator on the same directory
// must adopt validated results, recompute damaged ones, and execute only
// what is actually missing.
func TestResumeFromDurableShards(t *testing.T) {
	fw := coordFW(t)
	dir := t.TempDir()

	// First life: shard 1 fails its whole budget; the rest complete.
	cfg := baseConfig(dir, &eventLog{})
	cfg.MaxAttempts = 1
	l := &FaultyLauncher{
		Inner: &FrameworkLauncher{FW: fw},
		Plan:  NewFaultPlan().Add(1, AnyAttempt, FaultCrash),
	}
	res, err := Run(context.Background(), fw, cfg, l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() || len(res.FailedShards) != 1 {
		t.Fatalf("setup run: FailedShards = %v, want [1]", res.FailedShards)
	}

	// Damage one durable result the way a torn copy would: resume must
	// detect it through validation and recompute, not trust the filename.
	shard3 := filepath.Join(dir, "shard-3.jsonl")
	if fi, err := os.Stat(shard3); err != nil {
		t.Fatal(err)
	} else if err := os.Truncate(shard3, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	// Second life: no faults. Shards 0 and 2 resume; 1 and 3 execute.
	log := &eventLog{}
	cfg2 := baseConfig(dir, log)
	counter := &countingLauncher{inner: &FrameworkLauncher{FW: fw}}
	res2, err := Run(context.Background(), fw, cfg2, counter)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Complete() {
		t.Fatalf("resumed run incomplete: %s", res2.Report())
	}
	sameCells(t, res2.Set, monolithic(t, fw))
	if got := log.count(EventResume); got != 2 {
		t.Errorf("%d resume events, want 2 (shards 0 and 2)", got)
	}
	if got := counter.calls.Load(); got != 2 {
		t.Errorf("resume executed %d attempts, want 2 (shards 1 and 3)", got)
	}
	for _, i := range []int{0, 2} {
		if !res2.Shards[i].Resumed {
			t.Errorf("shard %d not marked resumed", i)
		}
	}
	for _, i := range []int{1, 3} {
		if res2.Shards[i].Resumed {
			t.Errorf("shard %d marked resumed, should have executed", i)
		}
	}
}

// TestWorkStealing: with no timeout at all, a wedged first attempt can
// only be rescued by an idle slot running a speculative duplicate.
func TestWorkStealing(t *testing.T) {
	fw := coordFW(t)
	log := &eventLog{}
	cfg := baseConfig(t.TempDir(), log)
	cfg.Shards = 1
	cfg.Workers = 2
	cfg.StealAfter = 20 * time.Millisecond
	l := &FaultyLauncher{
		Inner: &FrameworkLauncher{FW: fw},
		Plan:  NewFaultPlan().Add(0, 1, FaultHang),
	}
	res, err := Run(context.Background(), fw, cfg, l)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("steal did not rescue the straggler: %s", res.Report())
	}
	sameCells(t, res.Set, monolithic(t, fw))
	if log.count(EventSteal) == 0 {
		t.Error("no steal event for a wedged straggler")
	}
	if res.Shards[0].Attempts != 2 {
		t.Errorf("straggler took %d attempts, want 2 (original + steal)", res.Shards[0].Attempts)
	}
}

// slotFailLauncher simulates one broken worker slot (bad node, full
// disk): every attempt dispatched to it fails fast.
type slotFailLauncher struct {
	inner Launcher
	bad   int
}

func (l *slotFailLauncher) Launch(ctx context.Context, a Attempt) error {
	if a.Slot == l.bad {
		return errors.New("slot hardware on fire")
	}
	return l.inner.Launch(ctx, a)
}

// TestQuarantineReassignsToHealthySlot: consecutive failures take a slot
// out of rotation and its shards complete on the healthy one.
func TestQuarantineReassignsToHealthySlot(t *testing.T) {
	fw := coordFW(t)
	log := &eventLog{}
	cfg := baseConfig(t.TempDir(), log)
	cfg.Shards = 3
	cfg.Workers = 2
	cfg.UnhealthyAfter = 2
	cfg.MaxAttempts = 5
	l := &slotFailLauncher{inner: &FrameworkLauncher{FW: fw}, bad: 0}
	res, err := Run(context.Background(), fw, cfg, l)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("run with one broken slot incomplete: %s", res.Report())
	}
	sameCells(t, res.Set, monolithic(t, fw))
	if got := log.count(EventQuarantine); got != 1 {
		t.Fatalf("%d quarantine events, want 1", got)
	}
	for _, e := range log.events {
		if e.Kind == EventQuarantine && e.Slot != 0 {
			t.Errorf("quarantined slot %d, want 0", e.Slot)
		}
	}
}

// TestLastHealthySlotNeverQuarantined: with every slot broken the
// coordinator must keep trying (and ultimately fail on attempt budget),
// not quarantine itself into a stall.
func TestLastHealthySlotNeverQuarantined(t *testing.T) {
	fw := coordFW(t)
	log := &eventLog{}
	cfg := baseConfig(t.TempDir(), log)
	cfg.Shards = 1
	cfg.Workers = 1
	cfg.UnhealthyAfter = 1
	cfg.MaxAttempts = 3
	l := &slotFailLauncher{inner: &FrameworkLauncher{FW: fw}, bad: 0}
	if _, err := Run(context.Background(), fw, cfg, l); err == nil {
		t.Fatal("all-slots-broken run returned a Result")
	}
	if got := log.count(EventQuarantine); got != 0 {
		t.Errorf("%d quarantine events with a single slot, want 0", got)
	}
}

// TestShutdownLeavesDurableState: cancellation mid-run returns the
// context error, reaps in-flight attempts, and leaves completed shards
// on disk for the next coordinator to resume.
func TestShutdownLeavesDurableState(t *testing.T) {
	fw := coordFW(t)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := baseConfig(dir, &eventLog{})
	cfg.Shards = 2
	cfg.Workers = 2
	// Shard 1 wedges; as soon as shard 0's result lands, kill the run.
	cfg.Events = func(e Event) {
		if e.Kind == EventDone {
			cancel()
		}
	}
	l := &FaultyLauncher{
		Inner: &FrameworkLauncher{FW: fw},
		Plan:  NewFaultPlan().Add(1, AnyAttempt, FaultHang),
	}
	if _, err := Run(ctx, fw, cfg, l); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}

	// Next life on the same directory: shard 0 resumes, shard 1 runs.
	log := &eventLog{}
	cfg2 := baseConfig(dir, log)
	cfg2.Shards = 2
	counter := &countingLauncher{inner: &FrameworkLauncher{FW: fw}}
	res, err := Run(context.Background(), fw, cfg2, counter)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("post-shutdown resume incomplete: %s", res.Report())
	}
	if got := log.count(EventResume); got != 1 {
		t.Errorf("%d resume events after shutdown, want 1", got)
	}
	if got := counter.calls.Load(); got != 1 {
		t.Errorf("resume executed %d attempts, want 1", got)
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("crash:1:1, truncate:3:2 ,hang:2:*")
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		shard, attempt int
		want           FaultKind
	}{
		{1, 1, FaultCrash}, {1, 2, FaultNone},
		{3, 2, FaultTruncate}, {3, 1, FaultNone},
		{2, 1, FaultHang}, {2, 7, FaultHang},
		{0, 1, FaultNone},
	}
	for _, c := range checks {
		if got := p.Lookup(c.shard, c.attempt); got != c.want {
			t.Errorf("Lookup(%d, %d) = %v, want %v", c.shard, c.attempt, got, c.want)
		}
	}
	if p.Empty() {
		t.Error("populated plan reports Empty")
	}
	if empty, err := ParseFaultPlan("  "); err != nil || !empty.Empty() {
		t.Errorf("blank spec: plan %+v, err %v", empty, err)
	}
	for _, bad := range []string{"crash:1", "melt:1:1", "crash:x:1", "crash:1:0", "crash:-1:1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// An exact entry refines an every-attempt entry for the same shard.
	refined := NewFaultPlan().Add(4, AnyAttempt, FaultHang).Add(4, 2, FaultCrash)
	if got := refined.Lookup(4, 2); got != FaultCrash {
		t.Errorf("exact entry did not win over wildcard: %v", got)
	}
	if got := refined.Lookup(4, 1); got != FaultHang {
		t.Errorf("wildcard entry lost: %v", got)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg, err := Config{
		Shards: 1, Dir: "unused",
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  time.Second,
		Seed:        7,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	s := &supervisor{cfg: cfg}
	for attempt := 1; attempt <= 8; attempt++ {
		base := cfg.BackoffBase << (attempt - 1)
		if base > cfg.BackoffCap {
			base = cfg.BackoffCap
		}
		for shard := 0; shard < 4; shard++ {
			d := s.backoff(shard, attempt)
			if d != s.backoff(shard, attempt) {
				t.Fatalf("backoff(%d, %d) not deterministic", shard, attempt)
			}
			if d < base/2 || d >= base {
				t.Errorf("backoff(%d, %d) = %v outside [%v, %v)", shard, attempt, d, base/2, base)
			}
		}
	}
	// Jitter must actually decorrelate shards (else a crash storm
	// re-dispatches in lockstep).
	if s.backoff(0, 3) == s.backoff(1, 3) && s.backoff(1, 3) == s.backoff(2, 3) {
		t.Error("per-shard jitter is constant")
	}
}

func TestProcLauncher(t *testing.T) {
	l := &ProcLauncher{Argv: func(a Attempt) []string {
		return []string{"/bin/sh", "-c", "exit 0"}
	}}
	a := Attempt{Shard: 0, Attempt: 1}
	if err := l.Launch(context.Background(), a); err != nil {
		t.Fatalf("trivial worker failed: %v", err)
	}

	// Failure surfaces the worker's stderr tail in the error.
	l = &ProcLauncher{Argv: func(a Attempt) []string {
		return []string{"/bin/sh", "-c", "echo doom >&2; exit 3"}
	}}
	err := l.Launch(context.Background(), a)
	if err == nil || !strings.Contains(err.Error(), "doom") {
		t.Fatalf("worker failure lost its stderr: %v", err)
	}

	// Cancellation kills the process and reports the context's error,
	// not the kill-induced exit status.
	l = &ProcLauncher{Argv: func(a Attempt) []string {
		return []string{"/bin/sh", "-c", "sleep 30"}
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := l.Launch(ctx, a); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled worker returned %v, want context.DeadlineExceeded", err)
	}

	l = &ProcLauncher{Argv: func(a Attempt) []string { return nil }}
	if err := l.Launch(context.Background(), a); err == nil {
		t.Fatal("empty argv accepted")
	}
}
