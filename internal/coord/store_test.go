package coord

// Supervised sweeps over a result store: a cold run persists every
// computed cell, a warm re-run adopts the whole sweep without launching
// a single worker, and a partially warm store shrinks the shard plans.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/store"
)

func storeFW(t *testing.T, storeDir string) *core.Framework {
	t.Helper()
	fw, err := core.New(core.Config{
		Seed:     7,
		Backend:  "mutant",
		Sweep:    eval.SweepOptions{N: 1, Temperatures: []float64{0.1}},
		StoreDir: storeDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestCoordStoreColdThenWarm(t *testing.T) {
	storeDir := t.TempDir()

	// Ground truth from a store-less monolithic run.
	plain := coordFW(t)
	want := monolithic(t, plain)
	plain.Close()

	// Cold supervised run: every cell computed and persisted.
	cold := storeFW(t, storeDir)
	coldLog := &eventLog{}
	res, err := Run(context.Background(), cold, baseConfig(t.TempDir(), coldLog), &FrameworkLauncher{FW: cold})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("cold run incomplete:\n%s", res.Report())
	}
	sameCells(t, res.Set, want)
	if !res.StoreUsed || res.StoreAdopted != 0 || res.StoreNew != want.Len() {
		t.Fatalf("cold run store accounting: used=%v adopted=%d new=%d (want %d new)",
			res.StoreUsed, res.StoreAdopted, res.StoreNew, want.Len())
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm supervised run in a FRESH coordinator directory: no shard
	// files to resume from, so every adopted cell comes from the store —
	// and the whole sweep completes without one worker launch.
	warm := storeFW(t, storeDir)
	defer warm.Close()
	warmLog := &eventLog{}
	launches := &countingLauncher{inner: &FrameworkLauncher{FW: warm}}
	res2, err := Run(context.Background(), warm, baseConfig(t.TempDir(), warmLog), launches)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Complete() {
		t.Fatalf("warm run incomplete:\n%s", res2.Report())
	}
	sameCells(t, res2.Set, want)
	if n := launches.calls.Load(); n != 0 {
		t.Fatalf("warm run launched %d worker attempt(s), want 0", n)
	}
	if warmLog.count(EventStart) != 0 || warmLog.count(EventSteal) != 0 {
		t.Fatalf("warm run dispatched work: %+v", warmLog.events)
	}
	if warmLog.count(EventResume) != baseConfig("", nil).Shards {
		t.Fatalf("warm run emitted %d resume events, want one per shard", warmLog.count(EventResume))
	}
	if res2.StoreAdopted != want.Len() || res2.StoreNew != 0 {
		t.Fatalf("warm run store accounting: adopted=%d new=%d (want %d adopted, 0 new)",
			res2.StoreAdopted, res2.StoreNew, want.Len())
	}
	for _, st := range res2.Shards {
		if !st.Done || !st.Resumed {
			t.Fatalf("warm run shard status %+v, want done+resumed", st)
		}
	}
}

func TestCoordStorePartialWarm(t *testing.T) {
	storeDir := t.TempDir()

	// Ground truth from a store-less run, then plant every other cell
	// into the store in a separate writer session (the store assumes one
	// writing process at a time).
	plain := coordFW(t)
	full := monolithic(t, plain)
	plain.Close()
	seed, err := store.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	id := store.Identity{Backend: gen.NewMutant().Describe(), Seed: 7}
	planted := 0
	for i, c := range full.Coords() {
		if i%2 == 0 {
			st, _ := full.Get(c)
			if err := seed.Put(id, c, st); err != nil {
				t.Fatal(err)
			}
			planted++
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	fw := storeFW(t, storeDir)
	defer fw.Close()
	if got := fw.SweepIdentity(); got != id {
		t.Fatalf("planted under identity %s, framework sweeps %s", id, got)
	}
	log := &eventLog{}
	res, err := Run(context.Background(), fw, baseConfig(t.TempDir(), log), &FrameworkLauncher{FW: fw})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("partial-warm run incomplete:\n%s", res.Report())
	}
	sameCells(t, res.Set, full)
	if res.StoreAdopted != planted {
		t.Fatalf("adopted %d cells, planted %d", res.StoreAdopted, planted)
	}
	if res.StoreNew != full.Len()-planted {
		t.Fatalf("persisted %d new cells, want the %d the shards computed", res.StoreNew, full.Len()-planted)
	}
	if log.count(EventStart) == 0 {
		t.Fatal("partial-warm run dispatched no work despite missing cells")
	}
}
