//go:build !unix

package coord

import "os/exec"

// isolateProcessGroup is a no-op without unix process groups; WaitDelay
// still bounds how long a canceled attempt can hold its slot.
func isolateProcessGroup(cmd *exec.Cmd) {}
