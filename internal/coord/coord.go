// Package coord is the fault-tolerant sweep coordinator: it drives a
// distributed evaluation sweep (internal/wire shard plans + results) to
// completion through worker supervision, so a crashed worker, a hung
// process, or a truncated result file costs one retry instead of a
// silently wrong table or a manual re-run.
//
// The supervisor owns a per-shard retry state machine:
//
//	        ┌──────────────────────── retry (backoff+jitter) ───────┐
//	        ▼                                                       │
//	pending ──► running ──► validate ──► done            invalid/err/timeout
//	   │            │                                               │
//	resume       steal (speculative duplicate                       │
//	(durable      of a straggler; first valid                 attempts ≥ budget
//	 result       result wins)                                      │
//	 on disk)                                                       ▼
//	                                                             failed
//
// Design points, in the order they matter:
//
//   - A shard is done only when its result file decode-validates (full
//     wire.ReadResults pass, sweep identity match, exact planned cell
//     set) and has been atomically renamed into place. Worker exit
//     status is never trusted; a worker that "succeeded" but left a
//     truncated or corrupt file is retried exactly like a crash.
//   - Every failure re-queues the shard with exponential backoff, capped
//     and deterministically jittered, under a per-shard attempt budget.
//     Timeouts reap hangs; each attempt runs under its own context.
//   - Worker slots are health-checked: consecutive failures quarantine a
//     slot (its shards get reassigned to healthy slots), but never the
//     last one — a degraded coordinator still makes progress.
//   - Near the end of a run, idle slots steal stragglers: a shard whose
//     only attempt has run past StealAfter gets a speculative duplicate,
//     and the first validated result wins (determinism makes both
//     byte-identical, so either may).
//   - Results are durable: a killed coordinator restarted on the same
//     directory resumes from the validated shard files on disk and
//     recomputes only what is missing.
//   - With retries exhausted the coordinator degrades gracefully: it
//     merges every shard that did complete and reports the missing
//     shards and cells explicitly (Result.Report), never a silent gap.
//
// Faults are injectable (FaultPlan) at exactly the supervision boundary,
// so every recovery path above is deterministically testable.
package coord

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/wire"
)

// Config shapes one supervised sweep.
type Config struct {
	// Experiments names the cell-based artifacts to sweep ("all" expands
	// to every one); empty means "all".
	Experiments []string
	// Shards is the partition count of the sweep.
	Shards int
	// Workers is the number of concurrent worker slots; 0 means 2.
	Workers int
	// Dir is the durable state directory: shard plans, validated shard
	// results, and in-progress attempt files all live here. Restarting a
	// coordinator on the same Dir resumes from the validated results.
	Dir string
	// Timeout bounds one attempt's wall clock; 0 means no timeout.
	Timeout time.Duration
	// MaxAttempts is the per-shard attempt budget (including speculative
	// duplicates); 0 means 3.
	MaxAttempts int
	// BackoffBase is the pre-jitter delay before the second attempt,
	// doubling per attempt up to BackoffCap; 0 means 100ms (cap: 5s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// StealAfter is the straggler age after which an idle slot may run a
	// speculative duplicate of a still-running shard; 0 disables
	// work-stealing.
	StealAfter time.Duration
	// UnhealthyAfter quarantines a worker slot after that many
	// consecutive failures (never the last healthy slot); 0 means 3.
	UnhealthyAfter int
	// Seed feeds the deterministic backoff jitter; use the sweep seed.
	Seed int64
	// Events, when non-nil, receives every supervision event
	// synchronously from the coordinator goroutine — the live progress
	// stream. The callback must not call back into the coordinator.
	Events func(Event)
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards <= 0 {
		return c, fmt.Errorf("coord: %d shards", c.Shards)
	}
	if c.Dir == "" {
		return c, errors.New("coord: no state directory")
	}
	if len(c.Experiments) == 0 {
		c.Experiments = []string{"all"}
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.BackoffCap < c.BackoffBase {
		c.BackoffCap = c.BackoffBase
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 3
	}
	return c, nil
}

// EventKind names one supervision event.
type EventKind int

const (
	// EventPlanned: the shard's plan file is written and queued.
	EventPlanned EventKind = iota
	// EventResume: a durable validated result was adopted; no execution.
	EventResume
	// EventStart: an attempt was dispatched to a worker slot.
	EventStart
	// EventSteal: a speculative duplicate of a straggler was dispatched.
	EventSteal
	// EventDone: a validated result was renamed into place; shard done.
	EventDone
	// EventRetry: an attempt failed; the shard re-queues after Delay.
	EventRetry
	// EventGiveUp: the attempt budget is exhausted; shard failed.
	EventGiveUp
	// EventQuarantine: a slot hit UnhealthyAfter consecutive failures
	// and receives no further work.
	EventQuarantine
)

func (k EventKind) String() string {
	switch k {
	case EventPlanned:
		return "planned"
	case EventResume:
		return "resume"
	case EventStart:
		return "start"
	case EventSteal:
		return "steal"
	case EventDone:
		return "done"
	case EventRetry:
		return "retry"
	case EventGiveUp:
		return "give-up"
	case EventQuarantine:
		return "quarantine"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one entry of the live supervision stream.
type Event struct {
	Kind    EventKind
	Shard   int
	Attempt int
	Slot    int
	Delay   time.Duration // EventRetry: backoff before re-dispatch
	Err     string        // failure detail, where applicable
}

// ShardStatus summarizes one shard's supervision outcome.
type ShardStatus struct {
	Shard    int
	Attempts int
	Done     bool
	Resumed  bool   // adopted from a durable result, no execution
	Err      string // last failure, for diagnosing failed shards
}

// Result is the outcome of a supervised sweep: the merged stats of every
// completed shard, plus an explicit account of anything missing.
type Result struct {
	Set  *eval.ResultSet
	Meta wire.Meta
	// Shards holds one status per shard, by index.
	Shards []ShardStatus
	// FailedShards lists shards that exhausted their attempt budget,
	// ascending; empty means the sweep is complete.
	FailedShards []int
	// MissingCells lists the failed shards' planned cells in canonical
	// coordinate order — exactly what the merged Set does not cover.
	MissingCells []eval.Coord
	// StoreUsed reports whether the framework had a result store attached;
	// StoreAdopted counts cells served from it without execution (before
	// any shard was planned), StoreNew cells newly persisted by this run.
	StoreUsed    bool
	StoreAdopted int
	StoreNew     int
}

// Complete reports whether every shard finished.
func (r *Result) Complete() bool { return len(r.FailedShards) == 0 }

// Report renders the missing-shard/missing-cell account, deterministic
// and human-readable — the artifact a degraded run must surface instead
// of dying (or worse, staying silent).
func (r *Result) Report() string {
	var b strings.Builder
	if r.Complete() {
		fmt.Fprintf(&b, "coord: all %d shards complete (%d cells)\n", r.Meta.Shards, r.Set.Len())
		r.reportStore(&b)
		return b.String()
	}
	fmt.Fprintf(&b, "coord: PARTIAL result: %d of %d shard(s) failed after exhausting retries\n",
		len(r.FailedShards), r.Meta.Shards)
	for _, i := range r.FailedShards {
		st := r.Shards[i]
		fmt.Fprintf(&b, "  shard %d: %d attempt(s); last error: %s\n", i, st.Attempts, st.Err)
	}
	fmt.Fprintf(&b, "  %d cell(s) missing from the merge:\n", len(r.MissingCells))
	for i, c := range r.MissingCells {
		if i == 8 {
			fmt.Fprintf(&b, "    ... and %d more\n", len(r.MissingCells)-8)
			break
		}
		fmt.Fprintf(&b, "    %+v\n", c)
	}
	r.reportStore(&b)
	return b.String()
}

// reportStore appends the store traffic line — only when a store was
// attached, so store-less output stays byte-identical.
func (r *Result) reportStore(b *strings.Builder) {
	if r.StoreUsed {
		fmt.Fprintf(b, "coord: store: %d cell(s) adopted, %d new cell(s) persisted\n", r.StoreAdopted, r.StoreNew)
	}
}

type shardPhase int

const (
	statePending shardPhase = iota
	stateRunning
	stateDone
	stateFailed
)

type shardState struct {
	idx        int
	meta       wire.Meta
	coords     []eval.Coord
	planPath   string
	resultPath string

	state    shardPhase
	attempts int       // attempts started, including speculative ones
	inflight int       // attempts currently running
	eligible time.Time // pending: earliest next dispatch (backoff)
	started  time.Time // running: first in-flight attempt's start, for steal aging
	resumed  bool
	lastErr  string
	cancels  map[int]context.CancelFunc // in-flight attempt cancels, by attempt
}

type slotState struct {
	idx         int
	busy        bool
	fails       int // consecutive
	quarantined bool
}

type attemptDone struct {
	a   Attempt
	err error
}

type supervisor struct {
	cfg      Config
	fw       *core.Framework
	launcher Launcher
	adopted  *eval.ResultSet // store-resident cells, excluded from shard plans
	shards   []*shardState
	slots    []*slotState
	results  chan attemptDone
	inflight int
}

// Run drives one supervised sweep over fw's backend to completion. The
// framework plans the shards (and defines the sweep identity workers are
// validated against); the launcher executes attempts — in-process, as
// local subprocesses, or anything else that honors the contract. Run
// returns an error only for setup failures, cancellation, or a sweep
// with zero completed shards; exhausted retries degrade to a partial
// Result instead (check Result.Complete, render Result.Report).
func Run(ctx context.Context, fw *core.Framework, cfg Config, l Launcher) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if l == nil {
		return nil, errors.New("coord: nil launcher")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}

	// Adopt store-resident cells before planning: a warm store shrinks
	// every shard's plan (and an entirely warm sweep skips supervision
	// altogether). Without a store this is the identity transformation —
	// the remaining plan is the full plan — so shard partitions are
	// unchanged.
	adopted, remaining, err := fw.AdoptStoreCells(cfg.Experiments)
	if err != nil {
		return nil, err
	}
	s := &supervisor{cfg: cfg, fw: fw, launcher: l, adopted: adopted, results: make(chan attemptDone)}
	if remaining.Len() == 0 {
		// Everything resident: the result is assembled without dispatching
		// a single worker (the "warm sweep, zero backend calls" fast path).
		res := &Result{
			Set:  adopted,
			Meta: fw.ShardMeta(-1, cfg.Shards),
		}
		for i := 0; i < cfg.Shards; i++ {
			s.emit(Event{Kind: EventResume, Shard: i})
			res.Shards = append(res.Shards, ShardStatus{Shard: i, Done: true, Resumed: true})
		}
		if err := s.accountStore(res); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Sweep attempt debris from a previous coordinator life; validated
	// shard results are the only state that survives a restart.
	for _, pat := range []string{"*.attempt-*", "*.tmp-*"} {
		stale, _ := filepath.Glob(filepath.Join(cfg.Dir, pat))
		for _, f := range stale {
			os.Remove(f)
		}
	}

	for i := 0; i < cfg.Shards; i++ {
		plan, err := remaining.Shard(i, cfg.Shards)
		if err != nil {
			return nil, err
		}
		meta := fw.ShardMeta(i, cfg.Shards)
		sh := &shardState{
			idx: i, meta: meta, coords: plan.Coords(),
			planPath:   filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d.plan.jsonl", i)),
			resultPath: filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d.jsonl", i)),
			cancels:    map[int]context.CancelFunc{},
		}
		if err := validateResultFile(sh.resultPath, sh.meta, sh.coords); err == nil {
			sh.state = stateDone
			sh.resumed = true
			s.emit(Event{Kind: EventResume, Shard: i})
		} else {
			os.Remove(sh.resultPath) // absent, stale, or damaged: recompute
			if err := writePlanFile(sh.planPath, sh.meta, sh.coords); err != nil {
				return nil, err
			}
			s.emit(Event{Kind: EventPlanned, Shard: i})
		}
		s.shards = append(s.shards, sh)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.slots = append(s.slots, &slotState{idx: i})
	}
	return s.run(ctx)
}

func (s *supervisor) emit(e Event) {
	if s.cfg.Events != nil {
		s.cfg.Events(e)
	}
}

func (s *supervisor) allTerminal() bool {
	for _, sh := range s.shards {
		if sh.state != stateDone && sh.state != stateFailed {
			return false
		}
	}
	return true
}

func (s *supervisor) freeHealthySlot() *slotState {
	for _, sl := range s.slots {
		if !sl.busy && !sl.quarantined {
			return sl
		}
	}
	return nil
}

func (s *supervisor) healthySlots() int {
	n := 0
	for _, sl := range s.slots {
		if !sl.quarantined {
			n++
		}
	}
	return n
}

func (s *supervisor) run(ctx context.Context) (*Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			// Shutdown: reap every in-flight attempt and drain their
			// results so no launch goroutine leaks, then surface the
			// cancellation. Validated shard files stay durable for resume.
			s.cancelAll()
			for s.inflight > 0 {
				s.handle(<-s.results)
			}
			return nil, err
		}
		s.dispatch(ctx)
		if s.allTerminal() && s.inflight == 0 {
			break
		}
		var timer *time.Timer
		var timerC <-chan time.Time
		if wake, ok := s.nextWake(); ok {
			d := time.Until(wake)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case r := <-s.results:
			s.handle(r)
		case <-timerC:
			// re-dispatch: a backoff expired or a straggler aged into
			// steal eligibility
		case <-ctx.Done():
		}
		if timer != nil {
			timer.Stop()
		}
	}
	return s.finish()
}

func (s *supervisor) cancelAll() {
	for _, sh := range s.shards {
		//vgencheck:ordered canceling every attempt context; cancellation is idempotent and order-free
		for _, cancel := range sh.cancels {
			cancel()
		}
	}
}

// dispatch fills free healthy slots: eligible pending shards first
// (lowest index), then — with nothing pending and stealing enabled —
// speculative duplicates of the oldest stragglers.
func (s *supervisor) dispatch(ctx context.Context) {
	for {
		slot := s.freeHealthySlot()
		if slot == nil {
			return
		}
		now := time.Now()
		var pick *shardState
		steal := false
		for _, sh := range s.shards {
			if sh.state == statePending && !now.Before(sh.eligible) {
				pick = sh
				break
			}
		}
		if pick == nil && s.cfg.StealAfter > 0 {
			for _, sh := range s.shards {
				if sh.state == stateRunning && sh.inflight == 1 &&
					sh.attempts < s.cfg.MaxAttempts &&
					now.Sub(sh.started) >= s.cfg.StealAfter {
					if pick == nil || sh.started.Before(pick.started) {
						pick = sh
					}
				}
			}
			steal = pick != nil
		}
		if pick == nil {
			return
		}
		s.start(ctx, pick, slot, steal)
	}
}

// nextWake computes when dispatch could next make progress without a new
// result arriving: the earliest pending backoff expiry or straggler
// steal-eligibility. Only meaningful while a healthy slot is free.
func (s *supervisor) nextWake() (time.Time, bool) {
	if s.freeHealthySlot() == nil {
		return time.Time{}, false
	}
	var wake time.Time
	have := false
	add := func(t time.Time) {
		if !have || t.Before(wake) {
			wake, have = t, true
		}
	}
	for _, sh := range s.shards {
		switch sh.state {
		case statePending:
			add(sh.eligible)
		case stateRunning:
			if s.cfg.StealAfter > 0 && sh.inflight == 1 && sh.attempts < s.cfg.MaxAttempts {
				add(sh.started.Add(s.cfg.StealAfter))
			}
		}
	}
	return wake, have
}

func (s *supervisor) start(ctx context.Context, sh *shardState, slot *slotState, steal bool) {
	sh.attempts++
	att := sh.attempts
	var actx context.Context
	var cancel context.CancelFunc
	if s.cfg.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	sh.cancels[att] = cancel
	if sh.state != stateRunning {
		sh.state = stateRunning
		sh.started = time.Now()
	}
	sh.inflight++
	slot.busy = true
	a := Attempt{
		Shard: sh.idx, Attempt: att, Slot: slot.idx,
		PlanPath: sh.planPath,
		OutPath:  fmt.Sprintf("%s.attempt-%d", sh.resultPath, att),
	}
	kind := EventStart
	if steal {
		kind = EventSteal
	}
	s.emit(Event{Kind: kind, Shard: sh.idx, Attempt: att, Slot: slot.idx})
	s.inflight++
	go func() {
		s.results <- attemptDone{a: a, err: s.launcher.Launch(actx, a)}
	}()
}

// handle applies one finished attempt to the state machine. The attempt's
// result counts only after full decode validation; a validated result is
// renamed into place atomically and supersedes any speculative siblings.
func (s *supervisor) handle(r attemptDone) {
	s.inflight--
	sh := s.shards[r.a.Shard]
	slot := s.slots[r.a.Slot]
	slot.busy = false
	if cancel := sh.cancels[r.a.Attempt]; cancel != nil {
		cancel()
		delete(sh.cancels, r.a.Attempt)
	}
	sh.inflight--

	err := r.err
	if err == nil {
		err = validateResultFile(r.a.OutPath, sh.meta, sh.coords)
	}
	if err == nil && sh.state != stateDone {
		if rerr := os.Rename(r.a.OutPath, sh.resultPath); rerr != nil {
			err = rerr
		} else {
			sh.state = stateDone
			slot.fails = 0
			//vgencheck:ordered reaping speculative siblings; cancellation is idempotent and order-free
			for _, cancel := range sh.cancels {
				cancel()
			}
			s.emit(Event{Kind: EventDone, Shard: sh.idx, Attempt: r.a.Attempt, Slot: r.a.Slot})
			return
		}
	}
	os.Remove(r.a.OutPath) // failed attempt or speculative loser: drop its file
	if err == nil {
		slot.fails = 0 // speculative loser with a valid result: healthy work
		return
	}
	if sh.state == stateDone {
		return // canceled sibling of a winner: not a slot failure
	}

	slot.fails++
	if !slot.quarantined && slot.fails >= s.cfg.UnhealthyAfter && s.healthySlots() > 1 {
		slot.quarantined = true
		s.emit(Event{Kind: EventQuarantine, Slot: slot.idx, Err: err.Error()})
	}
	sh.lastErr = err.Error()
	if sh.inflight > 0 {
		return // a sibling attempt is still in flight and may win
	}
	if sh.attempts >= s.cfg.MaxAttempts {
		sh.state = stateFailed
		s.emit(Event{Kind: EventGiveUp, Shard: sh.idx, Attempt: r.a.Attempt, Err: err.Error()})
		return
	}
	delay := s.backoff(sh.idx, sh.attempts)
	sh.eligible = time.Now().Add(delay)
	sh.state = statePending
	s.emit(Event{Kind: EventRetry, Shard: sh.idx, Attempt: r.a.Attempt, Slot: r.a.Slot, Delay: delay, Err: err.Error()})
}

// backoff is the delay before the shard's next attempt: exponential from
// BackoffBase, capped at BackoffCap, with deterministic jitter in
// [d/2, d) hashed from (seed, shard, attempt) so retry storms decorrelate
// without making runs irreproducible.
func (s *supervisor) backoff(shard, attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < attempt && d < s.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	h := splitmix64(uint64(s.cfg.Seed) ^ uint64(shard)<<40 ^ uint64(attempt)<<20)
	half := d / 2
	return half + time.Duration(uint64(half)*(h&1023)/1024)
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (s *supervisor) finish() (*Result, error) {
	res := &Result{}
	var paths []string
	for _, sh := range s.shards {
		res.Shards = append(res.Shards, ShardStatus{
			Shard: sh.idx, Attempts: sh.attempts,
			Done: sh.state == stateDone, Resumed: sh.resumed, Err: sh.lastErr,
		})
		if sh.state == stateDone {
			paths = append(paths, sh.resultPath)
		} else {
			res.FailedShards = append(res.FailedShards, sh.idx)
			res.MissingCells = append(res.MissingCells, sh.coords...)
		}
	}
	sort.Slice(res.MissingCells, func(i, j int) bool {
		return res.MissingCells[i].Less(res.MissingCells[j])
	})
	var set *eval.ResultSet
	var meta wire.Meta
	if len(paths) == 0 {
		if s.adopted.Len() == 0 {
			return nil, fmt.Errorf("coord: every shard failed; last error: %s", s.shards[0].lastErr)
		}
		// Every dispatched shard failed, but the store had already paid for
		// part of the sweep: degrade to the adopted cells instead of dying.
		set, meta = eval.NewResultSet(), s.fw.ShardMeta(-1, s.cfg.Shards)
	} else {
		var err error
		set, meta, _, err = core.MergeShardFilesPartial(paths)
		if err != nil {
			return nil, err
		}
	}
	// Adopted cells and computed cells are disjoint by construction (the
	// shard plans are the full plan minus the adopted set), so the merge
	// is a plain union.
	for _, c := range s.adopted.Coords() {
		cs, _ := s.adopted.Get(c)
		if err := set.Put(c, cs); err != nil {
			return nil, err
		}
	}
	res.Set, res.Meta = set, meta
	if err := s.accountStore(res); err != nil {
		return nil, err
	}
	return res, nil
}

// accountStore merges the run's validated cells back into the result
// store (Put dedups identical cells; a conflicting cell is upstream
// nondeterminism and fails the run loudly) and fills the Result's store
// counters. A store-less run is a no-op.
func (s *supervisor) accountStore(res *Result) error {
	st := s.fw.Store
	if st == nil {
		return nil
	}
	res.StoreUsed = true
	res.StoreAdopted = s.adopted.Len()
	id := s.fw.SweepIdentity()
	for _, c := range res.Set.Coords() {
		cs, _ := res.Set.Get(c)
		if cs.Samples == 0 {
			continue // the backend declined the cell; nothing durable to say
		}
		if err := st.Put(id, c, cs); err != nil {
			return err
		}
	}
	if err := st.Sync(); err != nil {
		return err
	}
	res.StoreNew = st.Added()
	return nil
}

// validateResultFile accepts path only if it holds a complete,
// well-formed wire results file for exactly this shard of this sweep:
// full decode validation, identity match, and the planned cell set with
// nothing missing and nothing extra. This is the only way a shard ever
// counts as done — worker exit status is merely advisory.
func validateResultFile(path string, want wire.Meta, coords []eval.Coord) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sh, err := wire.ReadResults(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if sh.Meta != want {
		return fmt.Errorf("coord: %s: shard identity %+v, want %+v", path, sh.Meta, want)
	}
	if sh.Set.Len() != len(coords) {
		return fmt.Errorf("coord: %s: %d cells, plan has %d", path, sh.Set.Len(), len(coords))
	}
	for _, c := range coords {
		if _, ok := sh.Set.Get(c); !ok {
			return fmt.Errorf("coord: %s: planned cell %+v missing", path, c)
		}
	}
	return nil
}

// writePlanFile serializes one shard plan through the single durable
// write path (core.WriteFileAtomic: temp + fsync + rename), mirroring
// the result files' crash-safety. It used to carry its own copy of the
// atomic-write dance; the goanalysis durables pass flagged the
// duplication when WriteFileAtomic was still unexported.
func writePlanFile(path string, m wire.Meta, coords []eval.Coord) error {
	return core.WriteFileAtomic(path, func(out *os.File) error {
		return wire.WritePlan(out, m, coords)
	})
}
