package coord

// Deterministic fault injection: every failure mode the supervisor must
// survive — worker crash, hang past the attempt timeout, truncated result
// file, corrupted result line — is expressible as a (shard, attempt)
// entry in a FaultPlan, so each recovery path is an ordinary table-driven
// test instead of a flaky kill-the-process race. The FaultyLauncher sits
// between the supervisor and any real launcher, which means the injected
// faults exercise exactly the production retry/validation machinery.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// FaultKind names one injected failure mode.
type FaultKind int

const (
	// FaultNone: no injection; the attempt runs normally.
	FaultNone FaultKind = iota
	// FaultCrash: the worker dies instantly without producing output.
	FaultCrash
	// FaultHang: the worker wedges until its context is canceled — the
	// shape a lost NFS mount or a deadlocked process presents to a
	// supervisor, reaped only by the attempt timeout.
	FaultHang
	// FaultTruncate: the worker "succeeds" but its result file is cut off
	// mid-line, as a crash between flush and fsync would leave it.
	FaultTruncate
	// FaultCorrupt: the worker "succeeds" but one result line is garbage.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// AnyAttempt in FaultPlan.Add matches every attempt of the shard — a
// persistently failing shard, for exercising retry exhaustion.
const AnyAttempt = -1

// FaultPlan maps (shard, attempt) coordinates to injected failures.
type FaultPlan struct {
	exact map[[2]int]FaultKind
	any   map[int]FaultKind // shard -> kind, every attempt
}

// NewFaultPlan returns an empty plan (which injects nothing).
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{exact: map[[2]int]FaultKind{}, any: map[int]FaultKind{}}
}

// Add schedules kind for the shard's attempt (1-based), or for every
// attempt when attempt is AnyAttempt. Returns the plan for chaining.
func (p *FaultPlan) Add(shard, attempt int, kind FaultKind) *FaultPlan {
	if attempt == AnyAttempt {
		p.any[shard] = kind
	} else {
		p.exact[[2]int{shard, attempt}] = kind
	}
	return p
}

// Lookup returns the fault scheduled for (shard, attempt), FaultNone if
// none. An exact entry wins over an every-attempt entry.
func (p *FaultPlan) Lookup(shard, attempt int) FaultKind {
	if p == nil {
		return FaultNone
	}
	if k, ok := p.exact[[2]int{shard, attempt}]; ok {
		return k
	}
	if k, ok := p.any[shard]; ok {
		return k
	}
	return FaultNone
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool {
	return p == nil || (len(p.exact) == 0 && len(p.any) == 0)
}

// ParseFaultPlan parses a comma-separated spec of kind:shard:attempt
// entries — e.g. "crash:1:1,truncate:3:1,hang:2:*" — the CLI surface of
// the harness ("*" means every attempt).
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	p := NewFaultPlan()
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	kinds := map[string]FaultKind{
		"crash": FaultCrash, "hang": FaultHang,
		"truncate": FaultTruncate, "corrupt": FaultCorrupt,
	}
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("coord: fault entry %q, want kind:shard:attempt", entry)
		}
		kind, ok := kinds[parts[0]]
		if !ok {
			return nil, fmt.Errorf("coord: unknown fault kind %q (have crash, hang, truncate, corrupt)", parts[0])
		}
		shard, err := strconv.Atoi(parts[1])
		if err != nil || shard < 0 {
			return nil, fmt.Errorf("coord: fault entry %q: bad shard index", entry)
		}
		attempt := AnyAttempt
		if parts[2] != "*" {
			attempt, err = strconv.Atoi(parts[2])
			if err != nil || attempt < 1 {
				return nil, fmt.Errorf("coord: fault entry %q: bad attempt number (1-based, or *)", entry)
			}
		}
		p.Add(shard, attempt, kind)
	}
	return p, nil
}

// FaultyLauncher injects a FaultPlan's failures around an inner launcher.
// Crash and hang replace the attempt entirely; truncate and corrupt run
// the real attempt first and then damage its output file, so the
// supervisor's decode validation — not the launcher's error path — must
// catch them.
type FaultyLauncher struct {
	Inner Launcher
	Plan  *FaultPlan
}

func (l *FaultyLauncher) Launch(ctx context.Context, a Attempt) error {
	switch l.Plan.Lookup(a.Shard, a.Attempt) {
	case FaultCrash:
		return fmt.Errorf("coord: injected crash (shard %d attempt %d)", a.Shard, a.Attempt)
	case FaultHang:
		<-ctx.Done()
		return ctx.Err()
	case FaultTruncate:
		if err := l.Inner.Launch(ctx, a); err != nil {
			return err
		}
		return truncateMidLine(a.OutPath)
	case FaultCorrupt:
		if err := l.Inner.Launch(ctx, a); err != nil {
			return err
		}
		return corruptLastLine(a.OutPath)
	}
	return l.Inner.Launch(ctx, a)
}

// truncateMidLine cuts the file two bytes short: the trailing newline and
// the last byte of the final line — exactly the shape of a write that
// died between flush and fsync.
func truncateMidLine(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() < 2 {
		return fmt.Errorf("coord: %s too small to truncate", path)
	}
	return os.Truncate(path, fi.Size()-2)
}

// corruptLastLine overwrites the first byte of the file's last non-empty
// line, turning one JSONL record into garbage while leaving the line
// count (and therefore the header's cell count) intact.
func corruptLastLine(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	i := len(data) - 1
	for i >= 0 && (data[i] == '\n' || data[i] == '\r') {
		i--
	}
	for i > 0 && data[i-1] != '\n' {
		i--
	}
	if i < 0 || i >= len(data) {
		return fmt.Errorf("coord: %s has no line to corrupt", path)
	}
	data[i] = '#'
	return os.WriteFile(path, data, 0o644)
}
