package vnum

import "math/bits"

// effSigned reports whether a binary operation over x and y uses signed
// arithmetic: per IEEE 1364 the result is signed only if both operands are.
func effSigned(x, y Value) bool { return x.signed && y.signed }

// ctxWidth returns the self-determined result width for a binary
// arithmetic/bitwise operation: max of the operand widths.
func ctxWidth(x, y Value) int {
	if x.width > y.width {
		return x.width
	}
	return y.width
}

// extend2 resizes both operands to the common context width with the
// effective signedness applied before extension. When the operands already
// share a width and signedness — the steady state for compiled expression
// plans, whose operands are pre-extended at plan-construction time — it
// returns them untouched: Values are immutable, so skipping the two Resize
// clones is safe.
func extend2(x, y Value) (Value, Value, int, bool) {
	if x.width == y.width && x.signed == y.signed {
		return x, y, x.width, x.signed
	}
	s := effSigned(x, y)
	w := ctxWidth(x, y)
	xr, yr := x, y
	xr.signed, yr.signed = s, s
	xr = xr.Resize(w)
	yr = yr.Resize(w)
	return xr, yr, w, s
}

// presized reports whether x and y satisfy the presized-operand contract:
// same width and same signedness, so no extension is needed.
func presized(x, y Value) bool {
	return x.width == y.width && x.signed == y.signed
}

// Add returns x + y at the common context width.
func Add(x, y Value) Value {
	xr, yr, w, s := extend2(x, y)
	return addCore(xr, yr, w, s)
}

// AddPresized returns x + y for operands already extended to the same width
// and signedness (the compiled-plan contract); it skips the extend2 width
// and signedness reconciliation. Mismatched operands fall back to Add.
func AddPresized(x, y Value) Value {
	if !presized(x, y) {
		return Add(x, y)
	}
	return addCore(x, y, x.width, x.signed)
}

func addCore(xr, yr Value, w int, s bool) Value {
	if !xr.IsKnown() || !yr.IsKnown() {
		r := AllX(w)
		r.signed = s
		return r
	}
	out := newVal(w)
	out.signed = s
	if out.as == nil {
		out.a0 = xr.a0 + yr.a0
	} else {
		var carry uint64
		for i := 0; i < out.nwords(); i++ {
			sum, c1 := bits.Add64(xr.aw(i), yr.aw(i), carry)
			out.setaw(i, sum)
			carry = c1
		}
	}
	out.normalize()
	return out
}

// Sub returns x - y at the common context width.
func Sub(x, y Value) Value {
	xr, yr, w, s := extend2(x, y)
	return subCore(xr, yr, w, s)
}

// SubPresized returns x - y under the presized-operand contract.
func SubPresized(x, y Value) Value {
	if !presized(x, y) {
		return Sub(x, y)
	}
	return subCore(x, y, x.width, x.signed)
}

func subCore(xr, yr Value, w int, s bool) Value {
	if !xr.IsKnown() || !yr.IsKnown() {
		r := AllX(w)
		r.signed = s
		return r
	}
	out := newVal(w)
	out.signed = s
	if out.as == nil {
		out.a0 = xr.a0 - yr.a0
	} else {
		var borrow uint64
		for i := 0; i < out.nwords(); i++ {
			d, b1 := bits.Sub64(xr.aw(i), yr.aw(i), borrow)
			out.setaw(i, d)
			borrow = b1
		}
	}
	out.normalize()
	return out
}

// Neg returns -x (two's complement) at x's width.
func Neg(x Value) Value {
	z := Zero(x.width)
	z.signed = x.signed
	return Sub(z, x)
}

// Mul returns x * y at the common context width.
func Mul(x, y Value) Value {
	xr, yr, w, s := extend2(x, y)
	return mulCore(xr, yr, w, s)
}

// MulPresized returns x * y under the presized-operand contract.
func MulPresized(x, y Value) Value {
	if !presized(x, y) {
		return Mul(x, y)
	}
	return mulCore(x, y, x.width, x.signed)
}

func mulCore(xr, yr Value, w int, s bool) Value {
	if !xr.IsKnown() || !yr.IsKnown() {
		r := AllX(w)
		r.signed = s
		return r
	}
	out := newVal(w)
	out.signed = s
	if out.as == nil {
		out.a0 = xr.a0 * yr.a0
		out.normalize()
		return out
	}
	// Schoolbook multiply, truncated to w bits.
	n := out.nwords()
	for i := 0; i < n; i++ {
		var carry uint64
		for j := 0; i+j < n; j++ {
			hi, lo := bits.Mul64(xr.aw(i), yr.aw(j))
			var acc, c1, c2 uint64
			acc, c1 = bits.Add64(out.aw(i+j), lo, 0)
			acc, c2 = bits.Add64(acc, carry, 0)
			out.setaw(i+j, acc)
			carry = hi + c1 + c2
		}
	}
	out.normalize()
	return out
}

// absU64 interprets v (already extended to w bits) as a magnitude for signed
// division; it reports the magnitude and sign. Only defined for w <= 64.
func absU64(v Value, s bool) (mag uint64, neg bool) {
	u := v.aw(0)
	if s && v.width <= 64 && v.width > 0 && u&(1<<uint(v.width-1)) != 0 {
		if v.width < 64 {
			u |= ^uint64(0) << uint(v.width)
		}
		return -u, true
	}
	return u, false
}

// Div returns x / y. Division by zero or unknown operands yield all-x.
// Operands wider than 64 bits are supported only when their significant
// bits fit in 64; otherwise the result is x (documented subset limit).
func Div(x, y Value) Value {
	return divmod(x, y, true)
}

// Mod returns x % y with the sign of x, per the LRM.
func Mod(x, y Value) Value {
	return divmod(x, y, false)
}

func divmod(x, y Value, wantQuot bool) Value {
	xr, yr, w, s := extend2(x, y)
	bad := func() Value {
		r := AllX(w)
		r.signed = s
		return r
	}
	if !xr.IsKnown() || !yr.IsKnown() {
		return bad()
	}
	xu, xok := xr.AsUnsigned().Uint64()
	yu, yok := yr.AsUnsigned().Uint64()
	if !xok || !yok {
		return bad()
	}
	if s {
		xm, xneg := absU64(xr, true)
		ym, yneg := absU64(yr, true)
		if ym == 0 {
			return bad()
		}
		q := xm / ym
		r := xm % ym
		var res uint64
		if wantQuot {
			res = q
			if xneg != yneg {
				res = -res
			}
		} else {
			res = r
			if xneg {
				res = -res
			}
		}
		out := FromUint64(w, res)
		out.signed = true
		return out
	}
	if yu == 0 {
		return bad()
	}
	var res uint64
	if wantQuot {
		res = xu / yu
	} else {
		res = xu % yu
	}
	return FromUint64(w, res)
}

// Pow returns x ** y at x's width, following the LRM power-operator value
// table. Unknown operands (or an exponent too wide for 64 bits) yield all-x
// carrying x's signedness. A negative exponent — a signed y whose value is
// below zero; the raw bits are NOT a huge positive count — resolves by the
// base's value: 0 ** negative is all-x (division by zero), 1 ** negative is
// 1, (-1) ** negative is ±1 by exponent parity, and any other base
// truncates to 0.
func Pow(x, y Value) Value {
	w := x.width
	bad := AllX(w)
	bad.signed = x.signed
	if !x.IsKnown() || !y.IsKnown() {
		return bad
	}
	if y.signed {
		if yi, ok := y.Int64(); ok && yi < 0 {
			switch {
			case x.IsZero():
				return bad
			case isPlusOne(x):
				out := FromUint64(w, 1)
				out.signed = x.signed
				return out
			case x.signed && isAllOnes(x): // base -1
				if yi&1 != 0 {
					return FromInt64(w, -1)
				}
				out := FromUint64(w, 1)
				out.signed = true
				return out
			default: // |base| > 1: magnitude shrinks below 1, truncates to 0
				out := Zero(w)
				out.signed = x.signed
				return out
			}
		}
	}
	exp, ok := y.Uint64()
	if !ok {
		return bad
	}
	result := FromUint64(w, 1)
	result.signed = x.signed
	base := x
	for exp > 0 {
		if exp&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		exp >>= 1
	}
	return result.Resize(w)
}

// isPlusOne reports whether v is the known value +1. A one-bit signed 1 is
// -1, not +1, and is excluded.
func isPlusOne(v Value) bool {
	u, ok := v.Uint64()
	return ok && u == 1 && !(v.signed && v.width == 1)
}

// isAllOnes reports whether every bit of v is a known 1 (two's-complement
// -1 at any width).
func isAllOnes(v Value) bool {
	if !v.IsKnown() {
		return false
	}
	for i := 0; i < v.nwords(); i++ {
		want := ^uint64(0)
		if i == v.nwords()-1 {
			if rem := uint(v.width % 64); rem != 0 {
				want = (uint64(1) << rem) - 1
			}
		}
		if v.aw(i) != want {
			return false
		}
	}
	return true
}

// bitwise tables -------------------------------------------------------

func andBit(p, q Bit) Bit {
	if p == B0 || q == B0 {
		return B0
	}
	if p == B1 && q == B1 {
		return B1
	}
	return BX
}

func orBit(p, q Bit) Bit {
	if p == B1 || q == B1 {
		return B1
	}
	if p == B0 && q == B0 {
		return B0
	}
	return BX
}

func xorBit(p, q Bit) Bit {
	if !p.IsKnown() || !q.IsKnown() {
		return BX
	}
	if p != q {
		return B1
	}
	return B0
}

func notBit(p Bit) Bit {
	switch p {
	case B0:
		return B1
	case B1:
		return B0
	default:
		return BX
	}
}

func bitwise2(x, y Value, f func(Bit, Bit) Bit) Value {
	xr, yr, w, s := extend2(x, y)
	return bitwiseCore(xr, yr, w, s, f)
}

func bitwiseCore(xr, yr Value, w int, s bool, f func(Bit, Bit) Bit) Value {
	out := Zero(w)
	out.signed = s
	for i := 0; i < w; i++ {
		out.setBit(i, f(xr.Bit(i), yr.Bit(i)))
	}
	return out
}

// bitwisePresized applies f under the presized-operand contract.
func bitwisePresized(x, y Value, f func(Bit, Bit) Bit) Value {
	if !presized(x, y) {
		return bitwise2(x, y, f)
	}
	return bitwiseCore(x, y, x.width, x.signed, f)
}

// And returns the bitwise AND of x and y.
func And(x, y Value) Value { return bitwise2(x, y, andBit) }

// AndPresized returns x & y under the presized-operand contract.
func AndPresized(x, y Value) Value { return bitwisePresized(x, y, andBit) }

// Or returns the bitwise OR of x and y.
func Or(x, y Value) Value { return bitwise2(x, y, orBit) }

// OrPresized returns x | y under the presized-operand contract.
func OrPresized(x, y Value) Value { return bitwisePresized(x, y, orBit) }

// Xor returns the bitwise XOR of x and y.
func Xor(x, y Value) Value { return bitwise2(x, y, xorBit) }

// XorPresized returns x ^ y under the presized-operand contract.
func XorPresized(x, y Value) Value { return bitwisePresized(x, y, xorBit) }

func xnorBit(p, q Bit) Bit { return notBit(xorBit(p, q)) }

// Xnor returns the bitwise XNOR of x and y.
func Xnor(x, y Value) Value { return bitwise2(x, y, xnorBit) }

// XnorPresized returns x ~^ y under the presized-operand contract.
func XnorPresized(x, y Value) Value { return bitwisePresized(x, y, xnorBit) }

// Not returns the bitwise complement of x.
func Not(x Value) Value {
	out := Zero(x.width)
	out.signed = x.signed
	for i := 0; i < x.width; i++ {
		out.setBit(i, notBit(x.Bit(i)))
	}
	return out
}

// reductions -----------------------------------------------------------

func reduce(x Value, f func(Bit, Bit) Bit) Value {
	acc := x.Bit(0)
	for i := 1; i < x.width; i++ {
		acc = f(acc, x.Bit(i))
	}
	out := Zero(1)
	out.setBit(0, acc)
	return out
}

// RedAnd returns the unary &x reduction.
func RedAnd(x Value) Value { return reduce(x, andBit) }

// RedOr returns the unary |x reduction.
func RedOr(x Value) Value { return reduce(x, orBit) }

// RedXor returns the unary ^x reduction.
func RedXor(x Value) Value { return reduce(x, xorBit) }

// RedNand returns the unary ~&x reduction.
func RedNand(x Value) Value { return Not(RedAnd(x)) }

// RedNor returns the unary ~|x reduction.
func RedNor(x Value) Value { return Not(RedOr(x)) }

// RedXnor returns the unary ~^x reduction.
func RedXnor(x Value) Value { return Not(RedXor(x)) }

// logical --------------------------------------------------------------

// Truth returns the Verilog truthiness of x: B1 if any bit is 1, B0 if all
// bits are known zero, BX otherwise.
func (v Value) Truth() Bit {
	sawUnknown := false
	for i := 0; i < v.width; i++ {
		switch v.Bit(i) {
		case B1:
			return B1
		case BX, BZ:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return BX
	}
	return B0
}

// IsTrue reports whether the value is definitely true (truthiness 1).
func (v Value) IsTrue() bool { return v.Truth() == B1 }

func bitToVal(b Bit) Value {
	out := Zero(1)
	out.setBit(0, b)
	return out
}

// LogAnd returns x && y (one-bit result).
func LogAnd(x, y Value) Value { return bitToVal(andBit(x.Truth(), y.Truth())) }

// LogOr returns x || y (one-bit result).
func LogOr(x, y Value) Value { return bitToVal(orBit(x.Truth(), y.Truth())) }

// LogNot returns !x (one-bit result).
func LogNot(x Value) Value { return bitToVal(notBit(x.Truth())) }

// comparisons ----------------------------------------------------------

// Eq returns x == y: one-bit x if either operand has unknown bits,
// otherwise 1/0.
func Eq(x, y Value) Value {
	xr, yr, _, _ := extend2(x, y)
	if !xr.IsKnown() || !yr.IsKnown() {
		return bitToVal(BX)
	}
	for i := 0; i < xr.nwords(); i++ {
		if xr.aw(i) != yr.aw(i) {
			return Bool(false)
		}
	}
	return Bool(true)
}

// Neq returns x != y.
func Neq(x, y Value) Value { return LogNot(Eq(x, y)) }

// CaseEq returns x === y: exact four-state match, always 0/1.
func CaseEq(x, y Value) Value {
	xr, yr, _, _ := extend2(x, y)
	for i := 0; i < xr.nwords(); i++ {
		if xr.aw(i) != yr.aw(i) || xr.bw(i) != yr.bw(i) {
			return Bool(false)
		}
	}
	return Bool(true)
}

// CaseNeq returns x !== y.
func CaseNeq(x, y Value) Value { return LogNot(CaseEq(x, y)) }

// cmpKnown compares extended known operands: -1, 0, or +1.
func cmpKnown(x, y Value, signed bool) int {
	if signed {
		xs := x.Bit(x.width - 1)
		ys := y.Bit(y.width - 1)
		if xs == B1 && ys == B0 {
			return -1
		}
		if xs == B0 && ys == B1 {
			return 1
		}
	}
	for i := x.nwords() - 1; i >= 0; i-- {
		if x.aw(i) < y.aw(i) {
			return -1
		}
		if x.aw(i) > y.aw(i) {
			return 1
		}
	}
	return 0
}

func relational(x, y Value, pass func(int) bool) Value {
	xr, yr, _, s := extend2(x, y)
	if !xr.IsKnown() || !yr.IsKnown() {
		return bitToVal(BX)
	}
	return Bool(pass(cmpKnown(xr, yr, s)))
}

// Lt returns x < y.
func Lt(x, y Value) Value { return relational(x, y, func(c int) bool { return c < 0 }) }

// Le returns x <= y.
func Le(x, y Value) Value { return relational(x, y, func(c int) bool { return c <= 0 }) }

// Gt returns x > y.
func Gt(x, y Value) Value { return relational(x, y, func(c int) bool { return c > 0 }) }

// Ge returns x >= y.
func Ge(x, y Value) Value { return relational(x, y, func(c int) bool { return c >= 0 }) }

// shifts ----------------------------------------------------------------

// Shl returns x << y at x's width.
func Shl(x, y Value) Value {
	n, ok := y.Uint64()
	if !ok {
		r := AllX(x.width)
		r.signed = x.signed
		return r
	}
	out := Zero(x.width)
	out.signed = x.signed
	if n >= uint64(x.width) {
		return out
	}
	for i := int(n); i < x.width; i++ {
		out.setBit(i, x.Bit(i-int(n)))
	}
	return out
}

// Shr returns x >> y (logical) at x's width.
func Shr(x, y Value) Value {
	n, ok := y.Uint64()
	if !ok {
		r := AllX(x.width)
		r.signed = x.signed
		return r
	}
	out := Zero(x.width)
	out.signed = x.signed
	if n >= uint64(x.width) {
		return out
	}
	for i := 0; i < x.width-int(n); i++ {
		out.setBit(i, x.Bit(i+int(n)))
	}
	return out
}

// Sshr returns x >>> y: arithmetic shift when x is signed, logical
// otherwise (per the LRM, >>> is arithmetic only in signed context).
func Sshr(x, y Value) Value {
	if !x.signed {
		return Shr(x, y)
	}
	n, ok := y.Uint64()
	if !ok {
		r := AllX(x.width)
		r.signed = true
		return r
	}
	sign := x.Bit(x.width - 1)
	out := Zero(x.width)
	out.signed = true
	sh := int(n)
	if n >= uint64(x.width) {
		sh = x.width
	}
	for i := 0; i < x.width-sh; i++ {
		out.setBit(i, x.Bit(i+sh))
	}
	for i := x.width - sh; i < x.width; i++ {
		out.setBit(i, sign)
	}
	return out
}

// TernaryMerge implements the LRM unknown-condition ?: merge at width w:
// bit positions where a and b agree on a known value keep that value, every
// other position becomes x. The result is unsigned; callers apply context
// signedness.
func TernaryMerge(a, b Value, w int) Value {
	out := Zero(w)
	for i := 0; i < w; i++ {
		if a.Bit(i) == b.Bit(i) && a.Bit(i).IsKnown() {
			out.setBit(i, a.Bit(i))
		} else {
			out.setBit(i, BX)
		}
	}
	return out
}

// Merge resolves two simultaneous drivers bit-by-bit: z yields to the other
// driver, agreement keeps the value, disagreement or any x yields x. Used
// for multiply-driven nets.
func Merge(x, y Value) Value {
	w := ctxWidth(x, y)
	xr, yr := x.Resize(w), y.Resize(w)
	out := Zero(w)
	for i := 0; i < w; i++ {
		p, q := xr.Bit(i), yr.Bit(i)
		switch {
		case p == BZ:
			out.setBit(i, q)
		case q == BZ:
			out.setBit(i, p)
		case p == q:
			out.setBit(i, p)
		default:
			out.setBit(i, BX)
		}
	}
	return out
}
