// Package vnum implements arbitrary-width four-state (0/1/x/z) Verilog
// vector values and the operator semantics defined by IEEE 1364-2005.
//
// A Value stores one aval/bval bit pair per vector bit, following the VPI
// encoding: (b=0,a=0)→0, (b=0,a=1)→1, (b=1,a=0)→z, (b=1,a=1)→x. Values are
// immutable from the caller's point of view: all operations return fresh
// Values and never alias operand storage.
//
// Values up to 64 bits wide — the overwhelming majority in the simulator's
// inner loop — store their planes inline in two uint64 fields, so
// constructing and operating on them performs no heap allocation. Wider
// values spill to slices.
package vnum

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bit is the state of a single vector bit.
type Bit uint8

// The four Verilog scalar states.
const (
	B0 Bit = iota // logic zero
	B1            // logic one
	BX            // unknown
	BZ            // high impedance
)

// String returns the canonical lower-case character for the bit.
func (b Bit) String() string {
	switch b {
	case B0:
		return "0"
	case B1:
		return "1"
	case BX:
		return "x"
	default:
		return "z"
	}
}

// IsKnown reports whether the bit is 0 or 1.
func (b Bit) IsKnown() bool { return b == B0 || b == B1 }

// Value is an arbitrary-width four-state vector. The zero Value is a
// one-bit unknown (x); use the constructors for anything else.
//
// Representation: widths <= 64 keep the aval/bval planes in the inline
// a0/b0 words (as/bs stay nil); wider values use the as/bs slices (LSB
// word first). Tail bits past the width are always masked to zero.
type Value struct {
	width  int
	signed bool
	a0, b0 uint64   // inline planes when width <= 64
	as, bs []uint64 // slice planes when width > 64
}

func words(width int) int {
	if width <= 0 {
		width = 1
	}
	return (width + 63) / 64
}

// newVal returns an all-zero width-bit value, allocating plane slices only
// when the width does not fit the inline words.
func newVal(width int) Value {
	if width <= 0 {
		width = 1
	}
	v := Value{width: width}
	if width > 64 {
		v.as = make([]uint64, words(width))
		v.bs = make([]uint64, words(width))
	}
	return v
}

// nwords returns the number of 64-bit plane words.
func (v *Value) nwords() int { return words(v.width) }

// aw reads aval plane word i.
func (v *Value) aw(i int) uint64 {
	if v.as == nil {
		if i == 0 {
			return v.a0
		}
		return 0
	}
	return v.as[i]
}

// bw reads bval plane word i.
func (v *Value) bw(i int) uint64 {
	if v.bs == nil {
		if i == 0 {
			return v.b0
		}
		return 0
	}
	return v.bs[i]
}

// setaw writes aval plane word i.
func (v *Value) setaw(i int, u uint64) {
	if v.as == nil {
		if i == 0 {
			v.a0 = u
		}
		return
	}
	v.as[i] = u
}

// setbw writes bval plane word i.
func (v *Value) setbw(i int, u uint64) {
	if v.bs == nil {
		if i == 0 {
			v.b0 = u
		}
		return
	}
	v.bs[i] = u
}

// New returns a width-bit value with every bit set to fill.
func New(width int, fill Bit) Value {
	v := newVal(width)
	var aw, bw uint64
	switch fill {
	case B1:
		aw = ^uint64(0)
	case BX:
		aw, bw = ^uint64(0), ^uint64(0)
	case BZ:
		bw = ^uint64(0)
	}
	for i := 0; i < v.nwords(); i++ {
		v.setaw(i, aw)
		v.setbw(i, bw)
	}
	v.normalize()
	return v
}

// Zero returns a width-bit all-zero value.
func Zero(width int) Value { return New(width, B0) }

// AllX returns a width-bit all-unknown value.
func AllX(width int) Value { return New(width, BX) }

// AllZ returns a width-bit all-high-impedance value.
func AllZ(width int) Value { return New(width, BZ) }

// FromUint64 returns a width-bit value holding u (truncated to width).
func FromUint64(width int, u uint64) Value {
	v := newVal(width)
	v.setaw(0, u)
	v.normalize()
	return v
}

// FromInt64 returns a width-bit signed value holding i (two's complement,
// truncated to width). The result is marked signed.
func FromInt64(width int, i int64) Value {
	v := newVal(width)
	v.setaw(0, uint64(i))
	if i < 0 {
		for w := 1; w < v.nwords(); w++ {
			v.setaw(w, ^uint64(0))
		}
	}
	v.signed = true
	v.normalize()
	return v
}

// FromBits builds a value from bits listed MSB first.
func FromBits(bits ...Bit) Value {
	v := New(len(bits), B0)
	for i, bit := range bits {
		v.setBit(len(bits)-1-i, bit)
	}
	return v
}

// FromBitString parses a string of 0/1/x/z/_ characters (MSB first), e.g.
// "10xz". It panics on other characters; it is intended for literals in
// tests and generators, not user input.
func FromBitString(s string) Value {
	var bits []Bit
	for _, r := range s {
		switch r {
		case '0':
			bits = append(bits, B0)
		case '1':
			bits = append(bits, B1)
		case 'x', 'X':
			bits = append(bits, BX)
		case 'z', 'Z', '?':
			bits = append(bits, BZ)
		case '_':
		default:
			panic(fmt.Sprintf("vnum: bad bit char %q", r))
		}
	}
	if len(bits) == 0 {
		bits = []Bit{B0}
	}
	return FromBits(bits...)
}

// Bool returns a one-bit value: 1 if t, else 0.
func Bool(t bool) Value {
	if t {
		return FromUint64(1, 1)
	}
	return FromUint64(1, 0)
}

func (v Value) clone() Value {
	c := v
	if v.as != nil {
		c.as = make([]uint64, len(v.as))
		c.bs = make([]uint64, len(v.bs))
		copy(c.as, v.as)
		copy(c.bs, v.bs)
	}
	return c
}

func (v *Value) normalize() {
	rem := uint(v.width % 64)
	if rem != 0 {
		mask := (uint64(1) << rem) - 1
		last := v.nwords() - 1
		v.setaw(last, v.aw(last)&mask)
		v.setbw(last, v.bw(last)&mask)
	}
}

// Width returns the bit width of the value.
func (v Value) Width() int { return v.width }

// Signed reports whether the value carries a signed interpretation.
func (v Value) Signed() bool { return v.signed }

// AsSigned returns a copy marked signed.
func (v Value) AsSigned() Value {
	c := v.clone()
	c.signed = true
	return c
}

// AsUnsigned returns a copy marked unsigned.
func (v Value) AsUnsigned() Value {
	c := v.clone()
	c.signed = false
	return c
}

// Bit returns the state of bit i (0 = LSB). Out-of-range bits read as x.
func (v Value) Bit(i int) Bit {
	if i < 0 || i >= v.width {
		return BX
	}
	av := v.aw(i/64) >> (uint(i) % 64) & 1
	bv := v.bw(i/64) >> (uint(i) % 64) & 1
	switch {
	case bv == 0 && av == 0:
		return B0
	case bv == 0 && av == 1:
		return B1
	case bv == 1 && av == 0:
		return BZ
	default:
		return BX
	}
}

func (v *Value) setBit(i int, bit Bit) {
	if i < 0 || i >= v.width {
		return
	}
	w, s := i/64, uint(i)%64
	a := v.aw(w) &^ (1 << s)
	b := v.bw(w) &^ (1 << s)
	switch bit {
	case B1:
		a |= 1 << s
	case BX:
		a |= 1 << s
		b |= 1 << s
	case BZ:
		b |= 1 << s
	}
	v.setaw(w, a)
	v.setbw(w, b)
}

// WithBit returns a copy of v with bit i set to bit.
func (v Value) WithBit(i int, bit Bit) Value {
	c := v.clone()
	c.setBit(i, bit)
	return c
}

// IsKnown reports whether every bit is 0 or 1.
func (v Value) IsKnown() bool {
	if v.bs == nil {
		return v.b0 == 0
	}
	for _, w := range v.bs {
		if w != 0 {
			return false
		}
	}
	return true
}

// HasZ reports whether any bit is z.
func (v Value) HasZ() bool {
	for i := 0; i < v.nwords(); i++ {
		if v.bw(i)&^v.aw(i) != 0 {
			return true
		}
	}
	return false
}

// IsZero reports whether the value is fully known and equal to zero.
func (v Value) IsZero() bool {
	if !v.IsKnown() {
		return false
	}
	for i := 0; i < v.nwords(); i++ {
		if v.aw(i) != 0 {
			return false
		}
	}
	return true
}

// Uint64 returns the low 64 bits of the value and reports whether the whole
// value is known and fits in 64 bits.
func (v Value) Uint64() (uint64, bool) {
	if !v.IsKnown() {
		return 0, false
	}
	for i := 1; i < v.nwords(); i++ {
		if v.aw(i) != 0 {
			return v.aw(0), false
		}
	}
	return v.aw(0), true
}

// Int64 returns the value as a signed 64-bit integer (sign-extended from
// the value's width) and reports whether the value is known and fits.
func (v Value) Int64() (int64, bool) {
	if !v.IsKnown() || v.width > 64 {
		u, ok := v.Uint64()
		return int64(u), ok && v.width <= 64
	}
	u := v.aw(0)
	if v.signed && v.width < 64 && u&(1<<uint(v.width-1)) != 0 {
		u |= ^uint64(0) << uint(v.width)
	}
	return int64(u), true
}

// Equal reports exact equality: same width and identical bit states
// (signedness is ignored). This is Go-level equality, not Verilog ==.
func (v Value) Equal(o Value) bool {
	if v.width != o.width {
		return false
	}
	for i := 0; i < v.nwords(); i++ {
		if v.aw(i) != o.aw(i) || v.bw(i) != o.bw(i) {
			return false
		}
	}
	return true
}

// Resize returns v resized to width bits. Narrowing truncates; widening
// zero-extends, or sign-extends when v is signed (x/z sign bits extend as
// x/z, matching the LRM).
func (v Value) Resize(width int) Value {
	if width <= 0 {
		width = 1
	}
	out := newVal(width)
	out.signed = v.signed
	n := min(width, v.width)
	for i := 0; i < words(n); i++ {
		out.setaw(i, v.aw(i))
		out.setbw(i, v.bw(i))
	}
	out.normalize()
	if width > v.width && v.signed {
		sign := v.Bit(v.width - 1)
		if sign != B0 {
			for i := v.width; i < width; i++ {
				out.setBit(i, sign)
			}
		}
	}
	return out
}

// ResizeAs returns v reinterpreted with the given signedness and resized to
// width bits in one step: exactly AsSigned()/AsUnsigned() followed by
// Resize(width), without the intermediate clone. Compiled expression plans
// use it to apply a pre-resolved context (width, signedness) to a runtime
// value.
func (v Value) ResizeAs(width int, signed bool) Value {
	v.signed = signed // value receiver: caller's copy is untouched
	return v.Resize(width)
}

// Concat concatenates parts MSB-first: Concat(a, b) has a in the high bits.
func Concat(parts ...Value) Value {
	total := 0
	for _, p := range parts {
		total += p.width
	}
	out := Zero(total)
	pos := total
	for _, p := range parts {
		pos -= p.width
		for i := 0; i < p.width; i++ {
			out.setBit(pos+i, p.Bit(i))
		}
	}
	return out
}

// Replicate returns n copies of v concatenated.
func Replicate(n int, v Value) Value {
	if n <= 0 {
		return Zero(1)
	}
	parts := make([]Value, n)
	for i := range parts {
		parts[i] = v
	}
	return Concat(parts...)
}

// Slice extracts bits [msb:lsb] (inclusive). Out-of-range bits read as x.
func (v Value) Slice(msb, lsb int) Value {
	if msb < lsb {
		msb, lsb = lsb, msb
	}
	out := Zero(msb - lsb + 1)
	for i := lsb; i <= msb; i++ {
		out.setBit(i-lsb, v.Bit(i))
	}
	return out
}

// String renders the value as a sized binary literal, e.g. 4'b10x1.
func (v Value) String() string {
	return fmt.Sprintf("%d'b%s", v.width, v.BinString())
}

// BinString renders the raw bit string, MSB first.
func (v Value) BinString() string {
	var sb strings.Builder
	for i := v.width - 1; i >= 0; i-- {
		sb.WriteString(v.Bit(i).String())
	}
	return sb.String()
}

// HexString renders the value in hex; nibbles containing mixed known and
// unknown bits print as uppercase X/Z markers per common tool convention.
func (v Value) HexString() string {
	nibbles := (v.width + 3) / 4
	var sb strings.Builder
	for n := nibbles - 1; n >= 0; n-- {
		lo := n * 4
		hi := min(lo+3, v.width-1)
		allX, allZ, anyUnknown := true, true, false
		var d uint64
		for i := lo; i <= hi; i++ {
			switch v.Bit(i) {
			case B0:
				allX, allZ = false, false
			case B1:
				allX, allZ = false, false
				d |= 1 << uint(i-lo)
			case BX:
				allZ = false
				anyUnknown = true
			case BZ:
				allX = false
				anyUnknown = true
			}
		}
		switch {
		case anyUnknown && allX:
			sb.WriteByte('x')
		case anyUnknown && allZ:
			sb.WriteByte('z')
		case anyUnknown:
			sb.WriteByte('X')
		default:
			sb.WriteString(fmt.Sprintf("%x", d))
		}
	}
	return sb.String()
}

// DecString renders the value in decimal; if any bit is unknown the result
// is "x" (or "z" if all bits are z), matching %d display semantics.
func (v Value) DecString() string {
	if !v.IsKnown() {
		all := true
		for i := 0; i < v.width; i++ {
			if v.Bit(i) != BZ {
				all = false
				break
			}
		}
		if all {
			return "z"
		}
		return "x"
	}
	if v.signed {
		if i, ok := v.Int64(); ok {
			return fmt.Sprintf("%d", i)
		}
	}
	if u, ok := v.Uint64(); ok {
		return fmt.Sprintf("%d", u)
	}
	// Multi-word decimal via repeated division by 10.
	var digits []byte
	cur := make([]uint64, v.nwords())
	for i := range cur {
		cur[i] = v.aw(i)
	}
	for {
		var rem uint64
		nonzero := false
		for i := len(cur) - 1; i >= 0; i-- {
			q, r := bits.Div64(rem, cur[i], 10)
			cur[i] = q
			rem = r
			if q != 0 {
				nonzero = true
			}
		}
		digits = append(digits, byte('0'+rem))
		if !nonzero {
			break
		}
	}
	for l, r := 0, len(digits)-1; l < r; l, r = l+1, r-1 {
		digits[l], digits[r] = digits[r], digits[l]
	}
	return string(digits)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
