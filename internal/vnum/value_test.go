package vnum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsAndBits(t *testing.T) {
	v := FromUint64(8, 0xA5)
	if got := v.BinString(); got != "10100101" {
		t.Fatalf("BinString = %q", got)
	}
	if v.Width() != 8 {
		t.Fatalf("Width = %d", v.Width())
	}
	if b := v.Bit(0); b != B1 {
		t.Fatalf("Bit(0) = %v", b)
	}
	if b := v.Bit(1); b != B0 {
		t.Fatalf("Bit(1) = %v", b)
	}
	if b := v.Bit(100); b != BX {
		t.Fatalf("out-of-range bit = %v", b)
	}
}

func TestFillConstructors(t *testing.T) {
	if !AllX(5).Equal(FromBitString("xxxxx")) {
		t.Error("AllX mismatch")
	}
	if !AllZ(3).Equal(FromBitString("zzz")) {
		t.Error("AllZ mismatch")
	}
	if !Zero(4).Equal(FromBitString("0000")) {
		t.Error("Zero mismatch")
	}
	if !New(2, B1).Equal(FromBitString("11")) {
		t.Error("New fill-1 mismatch")
	}
}

func TestFromInt64Negative(t *testing.T) {
	v := FromInt64(8, -1)
	if got := v.BinString(); got != "11111111" {
		t.Fatalf("FromInt64(8,-1) = %s", got)
	}
	i, ok := v.Int64()
	if !ok || i != -1 {
		t.Fatalf("Int64 = %d, %v", i, ok)
	}
	v = FromInt64(8, -128)
	if i, _ := v.Int64(); i != -128 {
		t.Fatalf("Int64(-128) = %d", i)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	for _, u := range []uint64{0, 1, 42, 255, 1 << 40, ^uint64(0)} {
		v := FromUint64(64, u)
		got, ok := v.Uint64()
		if !ok || got != u {
			t.Errorf("round trip %d -> %d, %v", u, got, ok)
		}
	}
}

func TestTruncationOnWidth(t *testing.T) {
	v := FromUint64(4, 0xFF)
	if got, _ := v.Uint64(); got != 0xF {
		t.Fatalf("truncated = %d", got)
	}
}

func TestResizeZeroExtend(t *testing.T) {
	v := FromUint64(4, 0b1010)
	w := v.Resize(8)
	if got := w.BinString(); got != "00001010" {
		t.Fatalf("zero extend = %s", got)
	}
	n := w.Resize(3)
	if got := n.BinString(); got != "010" {
		t.Fatalf("truncate = %s", got)
	}
}

func TestResizeSignExtend(t *testing.T) {
	v := FromUint64(4, 0b1010).AsSigned()
	w := v.Resize(8)
	if got := w.BinString(); got != "11111010" {
		t.Fatalf("sign extend = %s", got)
	}
	// x sign bit extends as x
	xv := FromBitString("x01").AsSigned()
	if got := xv.Resize(5).BinString(); got != "xxx01" {
		t.Fatalf("x extend = %s", got)
	}
}

func TestConcatReplicateSlice(t *testing.T) {
	a := FromBitString("10")
	b := FromBitString("011")
	c := Concat(a, b)
	if got := c.BinString(); got != "10011" {
		t.Fatalf("concat = %s", got)
	}
	r := Replicate(3, FromBitString("01"))
	if got := r.BinString(); got != "010101" {
		t.Fatalf("replicate = %s", got)
	}
	s := c.Slice(3, 1)
	if got := s.BinString(); got != "001" {
		t.Fatalf("slice = %s", got)
	}
}

func TestKnownPredicates(t *testing.T) {
	if !FromUint64(8, 3).IsKnown() {
		t.Error("known value reported unknown")
	}
	if FromBitString("1x0").IsKnown() {
		t.Error("x value reported known")
	}
	if !FromBitString("1z0").HasZ() {
		t.Error("HasZ missed z")
	}
	if FromBitString("1x0").HasZ() {
		t.Error("HasZ false positive on x")
	}
	if !Zero(9).IsZero() {
		t.Error("IsZero false negative")
	}
	if FromBitString("x").IsZero() {
		t.Error("x IsZero")
	}
}

func TestFormatting(t *testing.T) {
	v := FromUint64(12, 0xABC)
	if got := v.HexString(); got != "abc" {
		t.Errorf("hex = %s", got)
	}
	if got := v.DecString(); got != "2748" {
		t.Errorf("dec = %s", got)
	}
	if got := FromBitString("1x10").HexString(); got != "X" {
		t.Errorf("mixed hex = %s", got)
	}
	if got := FromBitString("xxxx").HexString(); got != "x" {
		t.Errorf("all-x hex = %s", got)
	}
	if got := FromBitString("1x10").DecString(); got != "x" {
		t.Errorf("unknown dec = %s", got)
	}
	if got := FromBitString("zzz").DecString(); got != "z" {
		t.Errorf("all-z dec = %s", got)
	}
	if got := FromInt64(8, -3).DecString(); got != "-3" {
		t.Errorf("signed dec = %s", got)
	}
	if got := FromUint64(4, 9).String(); got != "4'b1001" {
		t.Errorf("String = %s", got)
	}
}

func TestWideDecString(t *testing.T) {
	// 2^80 = 1208925819614629174706176
	v := Zero(81).WithBit(80, B1)
	if got := v.DecString(); got != "1208925819614629174706176" {
		t.Fatalf("wide dec = %s", got)
	}
}

func TestWithBitDoesNotMutate(t *testing.T) {
	v := Zero(4)
	w := v.WithBit(2, B1)
	if !v.Equal(Zero(4)) {
		t.Error("WithBit mutated receiver")
	}
	if got := w.BinString(); got != "0100" {
		t.Errorf("WithBit = %s", got)
	}
}

func TestQuickResizeRoundTrip(t *testing.T) {
	f := func(u uint64, extra uint8) bool {
		w := 64
		v := FromUint64(w, u)
		big := v.Resize(w + int(extra%64) + 1)
		back := big.Resize(w)
		return back.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickConcatWidth(t *testing.T) {
	f := func(a, b uint16) bool {
		va := FromUint64(16, uint64(a))
		vb := FromUint64(16, uint64(b))
		c := Concat(va, vb)
		hi, _ := c.Slice(31, 16).Uint64()
		lo, _ := c.Slice(15, 0).Uint64()
		return c.Width() == 32 && hi == uint64(a) && lo == uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBitStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(130)
		v := Zero(w)
		for j := 0; j < w; j++ {
			v = v.WithBit(j, Bit(rng.Intn(4)))
		}
		if got := FromBitString(v.BinString()); !got.Equal(v) {
			t.Fatalf("round trip failed for %s", v.BinString())
		}
	}
}
