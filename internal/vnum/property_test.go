package vnum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Algebraic property tests over the four-state vector algebra.

func randValue(rng *rand.Rand, w int) Value {
	v := Zero(w)
	for i := 0; i < w; i++ {
		v = v.WithBit(i, Bit(rng.Intn(4)))
	}
	return v
}

func randKnown(rng *rand.Rand, w int) Value {
	v := Zero(w)
	for i := 0; i < w; i++ {
		v = v.WithBit(i, Bit(rng.Intn(2)))
	}
	return v
}

func TestPropMulCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(150)
		a, b := randKnown(rng, w), randKnown(rng, w)
		if !Mul(a, b).Equal(Mul(b, a)) {
			t.Fatalf("mul not commutative at width %d", w)
		}
	}
}

func TestPropMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(100)
		a, b, c := randKnown(rng, w), randKnown(rng, w), randKnown(rng, w)
		l := Mul(a, Add(b, c))
		r := Add(Mul(a, b), Mul(a, c))
		if !l.Equal(r) {
			t.Fatalf("distribution failed at width %d", w)
		}
	}
}

func TestPropConcatSliceInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		wa := 1 + rng.Intn(70)
		wb := 1 + rng.Intn(70)
		a, b := randValue(rng, wa), randValue(rng, wb)
		c := Concat(a, b)
		if got := c.Slice(wa+wb-1, wb); !got.Equal(a) {
			t.Fatalf("high slice mismatch: %s vs %s", got, a)
		}
		if got := c.Slice(wb-1, 0); !got.Equal(b) {
			t.Fatalf("low slice mismatch: %s vs %s", got, b)
		}
	}
}

func TestPropShiftInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 200; i++ {
		w := 8 + rng.Intn(100)
		sh := rng.Intn(w)
		a := randKnown(rng, w)
		shifted := Shr(Shl(a, FromUint64(16, uint64(sh))), FromUint64(16, uint64(sh)))
		// low w-sh bits survive the round trip
		if !shifted.Slice(w-sh-1, 0).Equal(a.Slice(w-sh-1, 0)) {
			t.Fatalf("shift round trip lost low bits (w=%d sh=%d)", w, sh)
		}
	}
}

func TestPropNotInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(130)
		a := randKnown(rng, w)
		if !Not(Not(a)).Equal(a) {
			t.Fatal("~~a != a")
		}
	}
}

func TestPropNegIsSubFromZero(t *testing.T) {
	f := func(u uint64) bool {
		a := FromUint64(64, u)
		return Neg(a).Equal(Sub(Zero(64), a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropXPoisonsArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for i := 0; i < 100; i++ {
		w := 2 + rng.Intn(60)
		a := randKnown(rng, w).WithBit(rng.Intn(w), BX)
		b := randKnown(rng, w)
		for _, op := range []func(Value, Value) Value{Add, Sub, Mul, Div, Mod} {
			if op(a, b).IsKnown() {
				t.Fatal("x operand produced known arithmetic result")
			}
		}
	}
}

func TestPropBitwiseNeverInventsKnowledge(t *testing.T) {
	// an output bit may be known even with unknown inputs (0&x=0) but a
	// known output bit must be consistent with every resolution of x/z
	rng := rand.New(rand.NewSource(27))
	for i := 0; i < 100; i++ {
		w := 1 + rng.Intn(40)
		a, b := randValue(rng, w), randValue(rng, w)
		out := And(a, b)
		for bit := 0; bit < w; bit++ {
			ob := out.Bit(bit)
			if !ob.IsKnown() {
				continue
			}
			// try all resolutions of this bit position
			for _, ra := range resolutions(a.Bit(bit)) {
				for _, rb := range resolutions(b.Bit(bit)) {
					want := B0
					if ra == B1 && rb == B1 {
						want = B1
					}
					if want != ob {
						t.Fatalf("bit %d: and(%v,%v) resolved to %v but reported %v",
							bit, a.Bit(bit), b.Bit(bit), want, ob)
					}
				}
			}
		}
	}
}

func resolutions(b Bit) []Bit {
	if b.IsKnown() {
		return []Bit{b}
	}
	return []Bit{B0, B1}
}

func TestPropMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(60)
		a, b := randValue(rng, w), randValue(rng, w)
		if !Merge(a, b).Equal(Merge(b, a)) {
			t.Fatalf("merge not commutative: %s / %s", a, b)
		}
	}
}

func TestPropResizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(120)
		a := randValue(rng, w)
		if !a.Resize(w).Equal(a) {
			t.Fatal("resize to same width changed value")
		}
	}
}
