package vnum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func u64(t *testing.T, v Value) uint64 {
	t.Helper()
	u, ok := v.Uint64()
	if !ok {
		t.Fatalf("value %s not a known uint64", v)
	}
	return u
}

func TestAddBasic(t *testing.T) {
	got := Add(FromUint64(8, 200), FromUint64(8, 100))
	if u := u64(t, got); u != 44 { // wraps mod 256
		t.Fatalf("200+100 (8 bit) = %d", u)
	}
	if got.Width() != 8 {
		t.Fatalf("width = %d", got.Width())
	}
}

func TestAddUnknownPoisons(t *testing.T) {
	got := Add(FromBitString("1x"), FromUint64(2, 1))
	if got.IsKnown() {
		t.Fatalf("x + 1 should be unknown, got %s", got)
	}
}

func TestSubNegWrap(t *testing.T) {
	got := Sub(FromUint64(8, 5), FromUint64(8, 10))
	if u := u64(t, got); u != 251 {
		t.Fatalf("5-10 = %d", u)
	}
	n := Neg(FromUint64(8, 1))
	if u := u64(t, n); u != 255 {
		t.Fatalf("-1 = %d", u)
	}
}

func TestMulWide(t *testing.T) {
	// (2^40)*(2^40) truncated to 128 bits = 2^80
	a := Zero(128).WithBit(40, B1)
	b := Zero(128).WithBit(40, B1)
	got := Mul(a, b)
	want := Zero(128).WithBit(80, B1)
	if !got.Equal(want) {
		t.Fatalf("2^40*2^40 = %s", got)
	}
}

func TestDivMod(t *testing.T) {
	if u := u64(t, Div(FromUint64(8, 42), FromUint64(8, 5))); u != 8 {
		t.Fatalf("42/5 = %d", u)
	}
	if u := u64(t, Mod(FromUint64(8, 42), FromUint64(8, 5))); u != 2 {
		t.Fatalf("42%%5 = %d", u)
	}
	if Div(FromUint64(8, 1), Zero(8)).IsKnown() {
		t.Error("div by zero should be x")
	}
}

func TestSignedDivMod(t *testing.T) {
	a := FromInt64(8, -7)
	b := FromInt64(8, 2)
	q := Div(a, b)
	if i, _ := q.Int64(); i != -3 {
		t.Fatalf("-7/2 = %d", i)
	}
	r := Mod(a, b)
	if i, _ := r.Int64(); i != -1 {
		t.Fatalf("-7%%2 = %d", i)
	}
}

func TestSignedAddMixedWidth(t *testing.T) {
	// signed 4-bit -2 plus signed 8-bit 1 → sign-extended to 8 bits
	a := FromInt64(4, -2)
	b := FromInt64(8, 1)
	got := Add(a, b)
	if i, _ := got.Int64(); i != -1 {
		t.Fatalf("-2+1 = %d", i)
	}
}

func TestMixedSignednessIsUnsigned(t *testing.T) {
	// one unsigned operand makes the operation unsigned: -1 (4 bits) is 15
	a := FromInt64(4, -1)
	b := FromUint64(8, 0)
	got := Add(a, b)
	if u := u64(t, got); u != 15 {
		t.Fatalf("unsigned ext = %d", u)
	}
}

func TestBitwiseTables(t *testing.T) {
	x := FromBitString("01xz")
	y := FromBitString("1111")
	if got := And(x, y).BinString(); got != "01xx" {
		t.Errorf("and = %s", got)
	}
	if got := Or(x, y).BinString(); got != "1111" {
		t.Errorf("or = %s", got)
	}
	z := FromBitString("0000")
	if got := And(x, z).BinString(); got != "0000" {
		t.Errorf("and0 = %s", got)
	}
	if got := Or(x, z).BinString(); got != "01xx" {
		t.Errorf("or0 = %s", got)
	}
	if got := Xor(x, y).BinString(); got != "10xx" {
		t.Errorf("xor = %s", got)
	}
	if got := Not(x).BinString(); got != "10xx" {
		t.Errorf("not = %s", got)
	}
	if got := Xnor(x, y).BinString(); got != "01xx" {
		t.Errorf("xnor = %s", got)
	}
}

func TestReductions(t *testing.T) {
	if got := RedAnd(FromBitString("111")); !got.IsTrue() {
		t.Error("&111 != 1")
	}
	if got := RedAnd(FromBitString("1x1")); got.Truth() != BX {
		t.Error("&1x1 != x")
	}
	if got := RedAnd(FromBitString("0x1")); got.Truth() != B0 {
		t.Error("&0x1 != 0")
	}
	if got := RedOr(FromBitString("0x0")); got.Truth() != BX {
		t.Error("|0x0 != x")
	}
	if got := RedOr(FromBitString("1x0")); !got.IsTrue() {
		t.Error("|1x0 != 1")
	}
	if got := RedXor(FromBitString("1101")); !got.IsTrue() {
		t.Error("^1101 != 1")
	}
	if got := RedXnor(FromBitString("1101")); got.IsTrue() {
		t.Error("~^1101 != 0")
	}
	if got := RedNand(FromBitString("11")); got.IsTrue() {
		t.Error("~&11 != 0")
	}
	if got := RedNor(FromBitString("00")); !got.IsTrue() {
		t.Error("~|00 != 1")
	}
}

func TestLogicalOps(t *testing.T) {
	tr := FromUint64(4, 2)
	fa := Zero(4)
	un := FromBitString("x0")
	if !LogAnd(tr, tr).IsTrue() {
		t.Error("t&&t")
	}
	if LogAnd(tr, fa).IsTrue() {
		t.Error("t&&f")
	}
	if LogAnd(fa, un).Truth() != B0 {
		t.Error("f&&x should be 0")
	}
	if LogAnd(tr, un).Truth() != BX {
		t.Error("t&&x should be x")
	}
	if LogOr(tr, un).Truth() != B1 {
		t.Error("t||x should be 1")
	}
	if LogOr(fa, un).Truth() != BX {
		t.Error("f||x should be x")
	}
	if LogNot(fa).Truth() != B1 {
		t.Error("!f")
	}
}

func TestEquality(t *testing.T) {
	a := FromUint64(4, 5)
	b := FromUint64(4, 5)
	c := FromUint64(4, 6)
	if !Eq(a, b).IsTrue() {
		t.Error("5==5")
	}
	if Eq(a, c).IsTrue() {
		t.Error("5==6")
	}
	if !Neq(a, c).IsTrue() {
		t.Error("5!=6")
	}
	x := FromBitString("x101")
	if Eq(x, a).Truth() != BX {
		t.Error("x==5 should be x")
	}
	if !CaseEq(x, x).IsTrue() {
		t.Error("x===x")
	}
	if CaseEq(x, FromBitString("z101")).IsTrue() {
		t.Error("x!==z")
	}
	if !CaseNeq(x, FromBitString("z101")).IsTrue() {
		t.Error("casneq")
	}
}

func TestRelational(t *testing.T) {
	if !Lt(FromUint64(8, 3), FromUint64(8, 9)).IsTrue() {
		t.Error("3<9")
	}
	if Lt(FromUint64(8, 9), FromUint64(8, 3)).IsTrue() {
		t.Error("9<3")
	}
	if !Ge(FromUint64(8, 9), FromUint64(8, 9)).IsTrue() {
		t.Error("9>=9")
	}
	// signed: -1 < 1
	if !Lt(FromInt64(8, -1), FromInt64(8, 1)).IsTrue() {
		t.Error("-1<1 signed")
	}
	// unsigned: 255 > 1
	if !Gt(FromUint64(8, 255), FromUint64(8, 1)).IsTrue() {
		t.Error("255>1 unsigned")
	}
	if Lt(FromBitString("x"), FromUint64(1, 0)).Truth() != BX {
		t.Error("x<0 should be x")
	}
}

func TestShifts(t *testing.T) {
	v := FromUint64(8, 0b0110_0001)
	if got := u64(t, Shl(v, FromUint64(3, 2))); got != 0b1000_0100 {
		t.Errorf("shl = %b", got)
	}
	if got := u64(t, Shr(v, FromUint64(3, 4))); got != 0b0110 {
		t.Errorf("shr = %b", got)
	}
	s := FromInt64(8, -64) // 1100_0000
	if got, _ := Sshr(s, FromUint64(3, 2)).Int64(); got != -16 {
		t.Errorf("sshr signed = %d", got)
	}
	// >>> on unsigned value is logical
	us := FromUint64(8, 0b1100_0000)
	if got := u64(t, Sshr(us, FromUint64(3, 2))); got != 0b0011_0000 {
		t.Errorf("sshr unsigned = %b", got)
	}
	if got := u64(t, Shl(v, FromUint64(8, 200))); got != 0 {
		t.Errorf("overshift = %d", got)
	}
	if Shl(v, FromBitString("x")).IsKnown() {
		t.Error("shift by x should be x")
	}
}

func TestPow(t *testing.T) {
	if got := u64(t, Pow(FromUint64(16, 3), FromUint64(16, 5))); got != 243 {
		t.Errorf("3**5 = %d", got)
	}
	if got := u64(t, Pow(FromUint64(16, 2), FromUint64(16, 0))); got != 1 {
		t.Errorf("2**0 = %d", got)
	}
}

// TestPowNegativeExponent pins the bugfix: a signed negative exponent used
// to be read as raw bits (all-ones = a huge positive count) and
// square-multiplied into garbage. The LRM value table applies instead.
func TestPowNegativeExponent(t *testing.T) {
	negOne := FromInt64(32, -1)
	negTwo := FromInt64(32, -2)
	negThree := FromInt64(32, -3)

	// |base| > 1: truncates to zero (2 ** -1 == 0, not 2^(2^64-1) bits of junk)
	if got := u64(t, Pow(FromInt64(16, 2), negOne)); got != 0 {
		t.Errorf("2 ** -1 = %d, want 0", got)
	}
	if got := u64(t, Pow(FromInt64(16, -4), negThree)); got != 0 {
		t.Errorf("(-4) ** -3 = %d, want 0", got)
	}
	// base 1: always 1
	if got := u64(t, Pow(FromInt64(16, 1), negThree)); got != 1 {
		t.Errorf("1 ** -3 = %d, want 1", got)
	}
	// base -1: parity of the exponent
	if got, _ := Pow(FromInt64(16, -1), negThree).Int64(); got != -1 {
		t.Errorf("(-1) ** -3 = %d, want -1", got)
	}
	if got, _ := Pow(FromInt64(16, -1), negTwo).Int64(); got != 1 {
		t.Errorf("(-1) ** -2 = %d, want 1", got)
	}
	// base 0: division by zero, all-x
	if r := Pow(FromInt64(16, 0), negOne); r.IsKnown() {
		t.Errorf("0 ** -1 = %v, want all-x", r)
	}
	// an unsigned all-ones exponent is still a plain huge count, not -1:
	// even powers of 3 truncated to 8 bits cycle, not the -1 path
	if got := u64(t, Pow(FromUint64(8, 1), FromUint64(8, 0xFF))); got != 1 {
		t.Errorf("1 ** 255 (unsigned) = %d, want 1", got)
	}
	// a 1-bit signed 1 is -1, not +1
	one1 := FromUint64(1, 1).AsSigned()
	if got := one1.BinString(); got != "1" {
		t.Fatalf("setup: %s", got)
	}
	if r := Pow(one1, negTwo); r.BinString() != "1" {
		t.Errorf("(1'sb1) ** -2 = %s, want 1 (the -1 even-parity case)", r.BinString())
	}
}

// TestPowUnknownKeepsSignedness pins the second half of the fix: the all-x
// early return used to drop the base's signedness.
func TestPowUnknownKeepsSignedness(t *testing.T) {
	x := AllX(8).AsSigned()
	if r := Pow(x, FromUint64(8, 2)); !r.Signed() {
		t.Error("x ** 2 with signed base lost the signed flag")
	}
	if r := Pow(FromInt64(8, 2), FromBitString("x")); !r.Signed() {
		t.Error("2 ** x with signed base lost the signed flag")
	}
	if r := Pow(FromUint64(8, 2), FromBitString("x")); r.Signed() {
		t.Error("unsigned base must stay unsigned on the all-x path")
	}
}

// TestPresizedOpsMatchGeneral pins the presized entry points: under the
// contract (equal width and signedness) they must equal the general ops,
// and they must fall back correctly when the contract is violated.
func TestPresizedOpsMatchGeneral(t *testing.T) {
	pairs := []struct {
		g, p func(a, b Value) Value
		name string
	}{
		{Add, AddPresized, "add"},
		{Sub, SubPresized, "sub"},
		{Mul, MulPresized, "mul"},
		{And, AndPresized, "and"},
		{Or, OrPresized, "or"},
		{Xor, XorPresized, "xor"},
		{Xnor, XnorPresized, "xnor"},
	}
	vals := []Value{
		FromUint64(16, 0xBEEF),
		FromInt64(16, -3).AsUnsigned(),
		FromBitString("10xz10xz10xz10xz"),
		FromUint64(16, 1),
	}
	for _, pr := range pairs {
		for _, a := range vals {
			for _, b := range vals {
				want, got := pr.g(a, b), pr.p(a, b)
				if !want.Equal(got) || want.Signed() != got.Signed() {
					t.Errorf("%s presized(%v, %v) = %v, general = %v", pr.name, a, b, got, want)
				}
				as, bs := a.AsSigned(), b.AsSigned()
				want, got = pr.g(as, bs), pr.p(as, bs)
				if !want.Equal(got) || want.Signed() != got.Signed() {
					t.Errorf("%s signed presized = %v, general = %v", pr.name, got, want)
				}
			}
		}
		// contract violation: mixed width and signedness falls back
		a, b := FromUint64(8, 200), FromInt64(16, -1)
		if want, got := pr.g(a, b), pr.p(a, b); !want.Equal(got) {
			t.Errorf("%s fallback = %v, general = %v", pr.name, got, want)
		}
	}
}

func TestMerge(t *testing.T) {
	a := FromBitString("1z0z")
	b := FromBitString("z10z")
	got := Merge(a, b)
	if s := got.BinString(); s != "110z" {
		t.Errorf("merge = %s", s)
	}
	c := FromBitString("11")
	d := FromBitString("10")
	if s := Merge(c, d).BinString(); s != "1x" {
		t.Errorf("conflict merge = %s", s)
	}
}

// Property tests against Go's native 64-bit arithmetic.

func TestQuickArithMatchesUint64(t *testing.T) {
	f := func(a, b uint64) bool {
		va, vb := FromUint64(64, a), FromUint64(64, b)
		if u, _ := Add(va, vb).Uint64(); u != a+b {
			return false
		}
		if u, _ := Sub(va, vb).Uint64(); u != a-b {
			return false
		}
		if u, _ := Mul(va, vb).Uint64(); u != a*b {
			return false
		}
		if b != 0 {
			if u, _ := Div(va, vb).Uint64(); u != a/b {
				return false
			}
			if u, _ := Mod(va, vb).Uint64(); u != a%b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBitwiseMatchesUint64(t *testing.T) {
	f := func(a, b uint64) bool {
		va, vb := FromUint64(64, a), FromUint64(64, b)
		ok := true
		if u, _ := And(va, vb).Uint64(); u != a&b {
			ok = false
		}
		if u, _ := Or(va, vb).Uint64(); u != a|b {
			ok = false
		}
		if u, _ := Xor(va, vb).Uint64(); u != a^b {
			ok = false
		}
		if u, _ := Not(va).Uint64(); u != ^a {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftsMatchUint64(t *testing.T) {
	f := func(a uint64, sh uint8) bool {
		s := uint64(sh % 64)
		va := FromUint64(64, a)
		vs := FromUint64(7, s)
		if u, _ := Shl(va, vs).Uint64(); u != a<<s {
			return false
		}
		if u, _ := Shr(va, vs).Uint64(); u != a>>s {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSignedRelationalMatchesInt64(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := FromInt64(64, a), FromInt64(64, b)
		return Lt(va, vb).IsTrue() == (a < b) &&
			Le(va, vb).IsTrue() == (a <= b) &&
			Gt(va, vb).IsTrue() == (a > b) &&
			Ge(va, vb).IsTrue() == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutesAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		w := 1 + rng.Intn(100)
		a := FromUint64(w, rng.Uint64())
		b := FromUint64(w, rng.Uint64())
		c := FromUint64(w, rng.Uint64())
		if !Add(a, b).Equal(Add(b, a)) {
			t.Fatal("add not commutative")
		}
		if !Add(Add(a, b), c).Equal(Add(a, Add(b, c))) {
			t.Fatal("add not associative")
		}
		if !Sub(Add(a, b), b).Equal(a) {
			t.Fatal("(a+b)-b != a")
		}
	}
}

func TestQuickDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		w := 1 + rng.Intn(80)
		a, b := Zero(w), Zero(w)
		for j := 0; j < w; j++ {
			a = a.WithBit(j, Bit(rng.Intn(4)))
			b = b.WithBit(j, Bit(rng.Intn(4)))
		}
		l := Not(And(a, b))
		r := Or(Not(a), Not(b))
		if !l.Equal(r) {
			t.Fatalf("De Morgan failed: a=%s b=%s", a, b)
		}
	}
}

func TestParseLiteral(t *testing.T) {
	cases := []struct {
		in   string
		bits string
	}{
		{"4'b1010", "1010"},
		{"8'hFF", "11111111"},
		{"8'hff", "11111111"},
		{"6'o17", "001111"},
		{"4'd9", "1001"},
		{"3'b1_0_1", "101"},
		{"4'bx", "xxxx"},
		{"4'bz1", "zzz1"},
		{"8'hx", "xxxxxxxx"},
		{"2'b01", "01"},
	}
	for _, c := range cases {
		v, err := ParseLiteral(c.in)
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if got := v.BinString(); got != c.bits {
			t.Errorf("%s = %s, want %s", c.in, got, c.bits)
		}
	}
}

func TestParseLiteralUnsizedDecimal(t *testing.T) {
	v, err := ParseLiteral("42")
	if err != nil {
		t.Fatal(err)
	}
	if v.Width() != 32 || !v.Signed() {
		t.Fatalf("unsized decimal: width=%d signed=%v", v.Width(), v.Signed())
	}
	if u, _ := v.Uint64(); u != 42 {
		t.Fatalf("value = %d", u)
	}
}

func TestParseLiteralSigned(t *testing.T) {
	v, err := ParseLiteral("8'sd255")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Signed() {
		t.Fatal("signed flag lost")
	}
	if i, _ := v.Int64(); i != -1 {
		t.Fatalf("8'sd255 as signed = %d", i)
	}
}

func TestParseLiteralErrors(t *testing.T) {
	for _, bad := range []string{"4'", "'q10", "4'b2", "x'b0", "8'h", "0'b0", "4'dz9"} {
		if _, err := ParseLiteral(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}
