package vnum

import (
	"fmt"
	"strings"
)

// ParseLiteral parses a Verilog number literal such as 4'b10x0, 8'hFF,
// 12'o777, 6'd42, 'd15, or a plain unsized decimal like 42. Unsized
// literals get the conventional 32-bit width and are signed when written
// without a base (plain decimal) per the LRM.
func ParseLiteral(text string) (Value, error) {
	s := strings.ReplaceAll(text, "_", "")
	tick := strings.IndexByte(s, '\'')
	if tick < 0 {
		// plain decimal integer
		v, err := parseDigits(32, 10, s)
		if err != nil {
			return Value{}, fmt.Errorf("vnum: bad decimal literal %q: %w", text, err)
		}
		v.signed = true
		return v, nil
	}
	width := 32
	sized := false
	if tick > 0 {
		w := 0
		for _, r := range s[:tick] {
			if r < '0' || r > '9' {
				return Value{}, fmt.Errorf("vnum: bad width in literal %q", text)
			}
			w = w*10 + int(r-'0')
			if w > 1<<20 {
				return Value{}, fmt.Errorf("vnum: width too large in literal %q", text)
			}
		}
		if w == 0 {
			return Value{}, fmt.Errorf("vnum: zero width in literal %q", text)
		}
		width = w
		sized = true
	}
	rest := s[tick+1:]
	if rest == "" {
		return Value{}, fmt.Errorf("vnum: missing base in literal %q", text)
	}
	signed := false
	if rest[0] == 's' || rest[0] == 'S' {
		signed = true
		rest = rest[1:]
		if rest == "" {
			return Value{}, fmt.Errorf("vnum: missing base in literal %q", text)
		}
	}
	var base int
	switch rest[0] {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	default:
		return Value{}, fmt.Errorf("vnum: bad base %q in literal %q", rest[0], text)
	}
	digits := rest[1:]
	if digits == "" {
		return Value{}, fmt.Errorf("vnum: missing digits in literal %q", text)
	}
	v, err := parseDigits(width, base, digits)
	if err != nil {
		return Value{}, fmt.Errorf("vnum: bad literal %q: %w", text, err)
	}
	v.signed = signed
	_ = sized
	return v, nil
}

func bitsPerDigit(base int) int {
	switch base {
	case 2:
		return 1
	case 8:
		return 3
	case 16:
		return 4
	}
	return 0
}

func parseDigits(width, base int, digits string) (Value, error) {
	if base == 10 {
		// decimal: x/z allowed only as a single digit
		if digits == "x" || digits == "X" {
			return AllX(width), nil
		}
		if digits == "z" || digits == "Z" || digits == "?" {
			return AllZ(width), nil
		}
		v := Zero(width)
		ten := FromUint64(width, 10)
		for _, r := range digits {
			if r < '0' || r > '9' {
				return Value{}, fmt.Errorf("bad decimal digit %q", r)
			}
			v = Add(Mul(v, ten), FromUint64(width, uint64(r-'0')))
		}
		return v, nil
	}
	bpd := bitsPerDigit(base)
	v := Zero(width)
	pos := 0 // next LSB position
	for i := len(digits) - 1; i >= 0; i-- {
		c := digits[i]
		var dbits []Bit
		switch {
		case c == 'x' || c == 'X':
			for k := 0; k < bpd; k++ {
				dbits = append(dbits, BX)
			}
		case c == 'z' || c == 'Z' || c == '?':
			for k := 0; k < bpd; k++ {
				dbits = append(dbits, BZ)
			}
		default:
			var d int
			switch {
			case c >= '0' && c <= '9':
				d = int(c - '0')
			case c >= 'a' && c <= 'f':
				d = int(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int(c-'A') + 10
			default:
				return Value{}, fmt.Errorf("bad digit %q", c)
			}
			if d >= 1<<uint(bpd) {
				return Value{}, fmt.Errorf("digit %q out of range for base %d", c, base)
			}
			for k := 0; k < bpd; k++ {
				if d>>uint(k)&1 == 1 {
					dbits = append(dbits, B1)
				} else {
					dbits = append(dbits, B0)
				}
			}
		}
		for k, bb := range dbits {
			if pos+k < width {
				v.setBit(pos+k, bb)
			}
		}
		pos += bpd
	}
	// Per the LRM, if the leading digit of a based literal is x or z the
	// value extends with that state to the full width.
	if pos < width && len(digits) > 0 {
		lead := digits[0]
		var fill Bit
		switch {
		case lead == 'x' || lead == 'X':
			fill = BX
		case lead == 'z' || lead == 'Z' || lead == '?':
			fill = BZ
		default:
			fill = B0
		}
		if fill != B0 {
			for i := pos; i < width; i++ {
				v.setBit(i, fill)
			}
		}
	}
	return v, nil
}
