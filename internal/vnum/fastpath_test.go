package vnum

import (
	"math/rand"
	"testing"
)

// TestSmallWidthZeroAlloc pins the inline-representation guarantee: values
// up to 64 bits wide never touch the heap in the arithmetic/logic ops that
// dominate the simulator's inner loop.
func TestSmallWidthZeroAlloc(t *testing.T) {
	x := FromUint64(64, 0xDEADBEEF)
	y := FromUint64(64, 0x12345678)
	ops := map[string]func(){
		"Add": func() { Add(x, y) },
		"Sub": func() { Sub(x, y) },
		"Mul": func() { Mul(x, y) },
		"And": func() { And(x, y) },
		"Or":  func() { Or(x, y) },
		"Xor": func() { Xor(x, y) },
		"Not": func() { Not(x) },
		"Eq":  func() { Eq(x, y) },
		"Lt":  func() { Lt(x, y) },
		"Shl": func() { Shl(x, FromUint64(8, 3)) },
	}
	for name, op := range ops {
		if n := testing.AllocsPerRun(100, op); n != 0 {
			t.Errorf("%s on 64-bit operands: %.1f allocs/op, want 0", name, n)
		}
	}
}

// TestSmallWideEquivalence cross-checks the inline fast path against the
// slice representation: an operation on w-bit values must agree with the
// same operation computed at 128 bits and truncated back.
func TestSmallWideEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	binOps := map[string]func(Value, Value) Value{
		"Add": Add, "Sub": Sub, "Mul": Mul,
		"And": And, "Or": Or, "Xor": Xor,
	}
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(64)
		x := FromUint64(w, rng.Uint64())
		y := FromUint64(w, rng.Uint64())
		xw := x.Resize(128).Resize(w) // round-trips through the wide representation
		yw := y.Resize(128).Resize(w)
		if !x.Equal(xw) || !y.Equal(yw) {
			t.Fatalf("w=%d: resize round-trip changed value", w)
		}
		for name, op := range binOps {
			small := op(x, y)
			// compute in the wide representation, truncate to w
			wide := op(x.Resize(65).Resize(w).Resize(128), y.Resize(65).Resize(w).Resize(128)).Resize(w)
			if !small.Equal(wide) {
				t.Fatalf("w=%d %s: small %s != wide %s", w, name, small, wide)
			}
		}
	}
}

// TestWideOpsStillCorrect spot-checks multi-word arithmetic after the
// representation split.
func TestWideOpsStillCorrect(t *testing.T) {
	x := FromUint64(128, ^uint64(0))
	one := FromUint64(128, 1)
	sum := Add(x, one)
	if got, want := sum.HexString(), "00000000000000010000000000000000"; got != want {
		t.Fatalf("128-bit carry: %s, want %s", got, want)
	}
	sq := Mul(FromUint64(128, 1<<63), FromUint64(128, 4))
	if got, want := sq.HexString(), "00000000000000020000000000000000"; got != want {
		t.Fatalf("128-bit mul: %s, want %s", got, want)
	}
}
