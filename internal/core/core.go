// Package core is the top-level facade of the VGen-Go evaluation
// framework — the paper's primary contribution assembled as one API. It
// wires the corpus pipeline, the generation-backend layer, the
// 17-problem benchmark, the compile/simulate pipeline, and the
// table/figure harness behind a single entry point, so tools and
// examples need one import.
package core

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/problems"
	"repro/internal/store"

	// Register the remote backend (it lives outside gen to keep the
	// transport stack out of the interface package). The facade is where
	// backend selection happens, so this is where the registry fills up.
	_ "repro/internal/remote"
)

// Config selects the framework scale, determinism seed, and generation
// backend.
type Config struct {
	Seed        int64
	CorpusFiles int              // synthetic GitHub corpus size; 0 = default
	Corpus      model.CorpusKind // fine-tuning corpus (ablation handle)
	Sweep       eval.SweepOptions
	Workers     int  // evaluation pool width; 0 = GOMAXPROCS, 1 = serial
	MapSampler  bool // keep n-gram LMs on the map-backed baseline sampler

	// PlanCacheBytes bounds each shared compiled-artifact cache (the
	// compiled-plan cache and the per-candidate design cache) by accounted
	// bytes. 0 keeps the 4 MiB defaults; negative disables the bounds.
	// Process-wide: the caches are shared across frameworks.
	PlanCacheBytes int64

	// UnsharedPlans routes every evaluation through the legacy
	// fresh-everything pipeline (parse, elaborate, and compile per sample,
	// nothing shared) instead of the shared design/plan caches. It is the
	// differential baseline for the shared pipeline, the role MapSampler
	// plays for the sampler.
	UnsharedPlans bool

	// Backend selects the generation backend by registered name (see
	// gen.Names()); "" means "family", the simulated line-up.
	Backend string

	// Record captures every produced sample to this JSONL file; the
	// resulting recording is what the replay backend serves. Close the
	// framework to flush it.
	Record string

	// Replay is the JSONL recording served by the replay backend.
	Replay string

	// Remote configures the remote backend's HTTP transport (endpoint,
	// auth, timeout/retry/breaker knobs); read when Backend is "remote".
	// A zero Remote.Seed inherits Seed, so transport retry jitter is
	// reproducible from the sweep seed alone.
	Remote gen.RemoteOptions

	// BatchSize and BatchLinger tune the evaluation engine's batch
	// coalescing when the backend implements gen.BatchBackend; zero means
	// the engine defaults. Batch composition never changes results.
	BatchSize   int
	BatchLinger time.Duration

	// StoreDir attaches a persistent result store rooted at this
	// directory: evaluated cells persist there keyed by sweep identity
	// (backend tag + seed), warm cells are served from disk instead of
	// re-evaluated, and an interrupted sweep resumes from the last durable
	// cell. "" runs without a store. The store assumes one writing process
	// per directory; give concurrent worker processes their own runs and
	// merge results instead.
	StoreDir string
}

// Framework is a fully wired evaluation stack.
type Framework struct {
	Backend gen.Backend
	Runner  *eval.Runner
	Harness *harness.Harness

	// Family is the simulated-model substrate when the backend is the
	// family line-up (possibly wrapped by a recorder); nil otherwise.
	Family *model.Family

	// Store and StoreSource are the persistent result store and the
	// caching cell source over it; both nil unless Config.StoreDir is set.
	Store       *store.Store
	StoreSource *store.Source

	// source is the cell provider sweeps execute through: the StoreSource
	// when a store is attached, the bare Runner otherwise.
	source eval.PlanRunner

	cfg     Config
	recFile *os.File
	recBuf  *bufio.Writer
	rec     *gen.Recorder

	// backendTag is the unwrapped backend's Describe() — the sweep
	// identity shard files are validated and merged under. Captured
	// before any recorder wrapping: recording is observation-only, so a
	// recorded shard must merge cleanly with an unrecorded one.
	backendTag string
}

// New builds the framework: constructs the selected backend (for the
// family backend that means running the corpus pipeline and training the
// tokenizer), optionally wraps it in a recorder, and wires the runner and
// harness around it.
func New(cfg Config) (*Framework, error) {
	name := cfg.Backend
	if name == "" {
		name = "family"
	}
	remote := cfg.Remote
	if remote.Seed == 0 {
		remote.Seed = cfg.Seed
	}
	b, err := gen.New(name, gen.Options{
		Family: model.Config{
			Seed:        cfg.Seed,
			CorpusFiles: cfg.CorpusFiles,
			Corpus:      cfg.Corpus,
			MapSampler:  cfg.MapSampler,
		},
		ReplayPath: cfg.Replay,
		Remote:     remote,
	})
	if err != nil {
		return nil, err
	}
	fw := &Framework{Backend: b, cfg: cfg, backendTag: b.Describe()}
	if fb, ok := b.(*gen.FamilyBackend); ok {
		fw.Family = fb.Family()
	}
	if cfg.Record != "" {
		f, err := os.Create(cfg.Record)
		if err != nil {
			return nil, fmt.Errorf("core: record: %w", err)
		}
		fw.recFile = f
		// buffer the sink: the recorder writes one JSONL line per sample
		// under its mutex, on the worker pool's hot path
		fw.recBuf = bufio.NewWriterSize(f, 1<<20)
		fw.rec = gen.NewRecorder(b, fw.recBuf)
		fw.Backend = fw.rec
	}
	if cfg.PlanCacheBytes != 0 {
		eval.SetPlanCacheBytes(cfg.PlanCacheBytes)
	}
	runner := eval.NewRunner(fw.Backend, cfg.Seed)
	runner.Workers = cfg.Workers
	runner.UnsharedPlans = cfg.UnsharedPlans
	runner.BatchSize = cfg.BatchSize
	runner.BatchLinger = cfg.BatchLinger
	fw.Runner = runner
	fw.source = runner
	fw.Harness = &harness.Harness{Runner: runner, Opts: cfg.Sweep, Seed: cfg.Seed}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			fw.Close()
			return nil, err
		}
		fw.Store = st
		fw.StoreSource = store.Cached(runner, st, fw.SweepIdentity())
		fw.source = fw.StoreSource
		// Renderers read through the cached source too, so a direct
		// (unsharded) render run warms and is warmed by the store.
		fw.Harness.Source = fw.StoreSource
	}
	return fw, nil
}

// SweepIdentity is the identity this framework's cells persist under: the
// unwrapped backend tag (matching shard metadata) plus the runner seed.
func (f *Framework) SweepIdentity() store.Identity {
	return store.Identity{Backend: f.backendTag, Seed: f.cfg.Seed}
}

// Close flushes and closes the recording sink and the result store, if
// attached, reporting the first error. Safe to call on frameworks with
// neither, and idempotent.
func (f *Framework) Close() error {
	var err error
	if f.recFile != nil {
		err = f.rec.Err()
		if ferr := f.recBuf.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.recFile.Close(); err == nil {
			err = cerr
		}
		f.recFile = nil
	}
	if f.Store != nil {
		if serr := f.Store.Close(); err == nil {
			err = serr
		}
		f.Store = nil
	}
	return err
}

// Problems returns the benchmark problem set (Table II).
func Problems() []*problems.Problem { return problems.All() }

// Models returns the evaluated model line-up (Table I).
func Models() []model.ID { return model.IDs }

// Backends returns the registered generation-backend names; gen.List
// additionally carries each backend's description.
func Backends() []string { return gen.Names() }

// EvaluateCompletion runs the compile + functional pipeline on an
// arbitrary completion for one problem and prompt level. This is the
// entry point a downstream user points their own model's output at.
func (f *Framework) EvaluateCompletion(problemNumber int, level problems.Level, completion string) (eval.Outcome, error) {
	p := problems.ByNumber(problemNumber)
	if p == nil {
		return eval.Outcome{}, fmt.Errorf("core: no problem %d", problemNumber)
	}
	return eval.Evaluate(p, level, completion), nil
}

// SampleAndEvaluate queries the backend for n completions on one problem
// and evaluates each, returning the pooled cell statistics.
func (f *Framework) SampleAndEvaluate(id model.ID, v model.Variant, problemNumber int, level problems.Level, temperature float64, n int) (eval.CellStats, error) {
	p := problems.ByNumber(problemNumber)
	if p == nil {
		return eval.CellStats{}, fmt.Errorf("core: no problem %d", problemNumber)
	}
	if n <= 0 {
		return eval.CellStats{}, fmt.Errorf("core: n must be positive, got %d", n)
	}
	st := f.Runner.Run(eval.Query{
		Model: id, Variant: v, Problem: p,
		Level: level, Temperature: temperature, N: n,
	})
	if st.Samples == 0 {
		return eval.CellStats{}, fmt.Errorf("core: backend serves no samples for %s/%s", id, v)
	}
	return st, nil
}
