// Package core is the top-level facade of the VGen-Go evaluation
// framework — the paper's primary contribution assembled as one API. It
// wires the corpus pipeline, the simulated-LLM family, the 17-problem
// benchmark, the compile/simulate pipeline, and the table/figure harness
// behind a single entry point, so tools and examples need one import.
package core

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/problems"
)

// Config selects the framework scale and determinism seed.
type Config struct {
	Seed        int64
	CorpusFiles int              // synthetic GitHub corpus size; 0 = default
	Corpus      model.CorpusKind // fine-tuning corpus (ablation handle)
	Sweep       eval.SweepOptions
	Workers     int  // evaluation pool width; 0 = GOMAXPROCS, 1 = serial
	MapSampler  bool // keep n-gram LMs on the map-backed baseline sampler
}

// Framework is a fully wired evaluation stack.
type Framework struct {
	Family  *model.Family
	Runner  *eval.Runner
	Harness *harness.Harness
	cfg     Config
}

// New builds the framework: runs the corpus pipeline, trains the
// tokenizer, and prepares the model family and harness.
func New(cfg Config) *Framework {
	fam := model.NewFamily(model.Config{
		Seed:        cfg.Seed,
		CorpusFiles: cfg.CorpusFiles,
		Corpus:      cfg.Corpus,
		MapSampler:  cfg.MapSampler,
	})
	runner := eval.NewRunner(fam, cfg.Seed)
	runner.Workers = cfg.Workers
	return &Framework{
		Family: fam,
		Runner: runner,
		Harness: &harness.Harness{
			Runner: runner,
			Opts:   cfg.Sweep,
			Seed:   cfg.Seed,
		},
		cfg: cfg,
	}
}

// Problems returns the benchmark problem set (Table II).
func Problems() []*problems.Problem { return problems.All() }

// Models returns the evaluated model line-up (Table I).
func Models() []model.ID { return model.IDs }

// EvaluateCompletion runs the compile + functional pipeline on an
// arbitrary completion for one problem and prompt level. This is the
// entry point a downstream user points their own model's output at.
func (f *Framework) EvaluateCompletion(problemNumber int, level problems.Level, completion string) (eval.Outcome, error) {
	p := problems.ByNumber(problemNumber)
	if p == nil {
		return eval.Outcome{}, fmt.Errorf("core: no problem %d", problemNumber)
	}
	return eval.Evaluate(p, level, completion), nil
}

// SampleAndEvaluate queries a simulated model for n completions on one
// problem and evaluates each, returning the pooled cell statistics.
func (f *Framework) SampleAndEvaluate(id model.ID, v model.Variant, problemNumber int, level problems.Level, temperature float64, n int) (eval.CellStats, error) {
	p := problems.ByNumber(problemNumber)
	if p == nil {
		return eval.CellStats{}, fmt.Errorf("core: no problem %d", problemNumber)
	}
	if _, ok := f.Family.Generator(id, v); !ok {
		return eval.CellStats{}, fmt.Errorf("core: no %s variant of %s", v, id)
	}
	return f.Runner.Run(eval.Query{
		Model: id, Variant: v, Problem: p,
		Level: level, Temperature: temperature, N: n,
	}), nil
}
