package core

// Distributed-sweep orchestration: plan → execute-shard → merge. A
// coordinator builds the artifact plan, partitions it, and either runs
// one partition in-process (WriteShard) or serializes it for a remote
// worker (WriteShardPlan → RunPlanFile elsewhere). Shard result files
// merge back into a render-only harness (HarnessFromShards) with no
// backend attached — the per-sample seed hashing makes the merged tables
// byte-identical to a monolithic run. See DESIGN.md, "Sharded sweep
// execution".

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/wire"
)

// shardMeta is this framework's sweep identity: the backend tag and seed
// every shard of one distributed sweep must share. The tag is the
// unwrapped backend's (not a Recorder's "record(...)" wrapper), so
// whether a worker also records never splits the sweep identity.
func (f *Framework) shardMeta(shard, shards int) wire.Meta {
	return wire.Meta{
		Backend: f.backendTag, Seed: f.cfg.Seed,
		Shard: shard, Shards: shards,
	}
}

// ShardMeta exposes the sweep identity for shard i of n — what a
// coordinator stamps on shard plans it builds itself (see AdoptStoreCells).
func (f *Framework) ShardMeta(shard, shards int) wire.Meta {
	return f.shardMeta(shard, shards)
}

// AdoptStoreCells splits the experiments' full plan against the result
// store: cells already resident under this sweep's identity come back as
// an adopted ResultSet (no execution), everything else as the remaining
// plan. Without a store the adopted set is empty and the remaining plan
// is the full plan — callers need no special case.
func (f *Framework) AdoptStoreCells(experiments []string) (*eval.ResultSet, *eval.Plan, error) {
	full, err := f.Harness.PlanFor(experiments)
	if err != nil {
		return nil, nil, err
	}
	adopted := eval.NewResultSet()
	if f.Store == nil {
		return adopted, full, nil
	}
	id := f.SweepIdentity()
	remaining := eval.NewPlan()
	for _, q := range full.Queries() {
		c := q.Coord()
		if st, ok := f.Store.Get(id, c); ok {
			if err := adopted.Put(c, st); err != nil {
				return nil, nil, err
			}
		} else if err := remaining.Add(q); err != nil {
			return nil, nil, err
		}
	}
	return adopted, remaining, nil
}

// ShardPlan builds shard i of n of the query plan for the named
// cell-based experiments ("all" = every cell-based artifact).
func (f *Framework) ShardPlan(experiments []string, shard, shards int) (*eval.Plan, wire.Meta, error) {
	full, err := f.Harness.PlanFor(experiments)
	if err != nil {
		return nil, wire.Meta{}, err
	}
	sub, err := full.Shard(shard, shards)
	if err != nil {
		return nil, wire.Meta{}, err
	}
	return sub, f.shardMeta(shard, shards), nil
}

// ExecuteShard evaluates shard i of n of the experiments' plan.
func (f *Framework) ExecuteShard(experiments []string, shard, shards int) (*eval.ResultSet, wire.Meta, error) {
	return f.ExecuteShardCtx(context.Background(), experiments, shard, shards)
}

// ExecuteShardCtx is ExecuteShard under a context; cancellation stops
// the evaluation pool promptly.
func (f *Framework) ExecuteShardCtx(ctx context.Context, experiments []string, shard, shards int) (*eval.ResultSet, wire.Meta, error) {
	plan, m, err := f.ShardPlan(experiments, shard, shards)
	if err != nil {
		return nil, wire.Meta{}, err
	}
	rs, err := f.source.RunPlanCtx(ctx, plan)
	if err != nil {
		return nil, wire.Meta{}, err
	}
	return rs, m, nil
}

// WriteShard executes one shard and writes its wire result file — the
// worker side of a distributed sweep.
func (f *Framework) WriteShard(path string, experiments []string, shard, shards int) error {
	return f.WriteShardCtx(context.Background(), path, experiments, shard, shards)
}

// WriteShardCtx is WriteShard under a context: a canceled worker stops
// promptly and leaves no result file (nor a temp) behind.
func (f *Framework) WriteShardCtx(ctx context.Context, path string, experiments []string, shard, shards int) error {
	rs, m, err := f.ExecuteShardCtx(ctx, experiments, shard, shards)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, func(out *os.File) error { return wire.WriteResults(out, m, rs) })
}

// WriteShardPlan serializes one shard's plan without executing it — the
// coordinator side when workers run elsewhere (see RunPlanFile).
func (f *Framework) WriteShardPlan(path string, experiments []string, shard, shards int) error {
	plan, m, err := f.ShardPlan(experiments, shard, shards)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, func(out *os.File) error { return wire.WritePlan(out, m, plan.Coords()) })
}

// RunPlanFile executes a serialized shard plan against this framework's
// backend and writes the shard result file. The plan must address this
// exact sweep: the backend tag and runner seed are validated so a worker
// configured differently from the coordinator fails loudly instead of
// producing cells that merge into a subtly wrong table.
func (f *Framework) RunPlanFile(planPath, outPath string) error {
	return f.RunPlanFileCtx(context.Background(), planPath, outPath)
}

// RunPlanFileCtx is RunPlanFile under a context: cancellation stops the
// evaluation pool promptly and no result file appears — the supervised
// worker path, where a coordinator reaps timed-out or superseded attempts.
func (f *Framework) RunPlanFileCtx(ctx context.Context, planPath, outPath string) error {
	in, err := os.Open(planPath)
	if err != nil {
		return err
	}
	m, coords, err := wire.ReadPlan(in)
	in.Close()
	if err != nil {
		return err
	}
	if got := f.backendTag; m.Backend != got {
		return fmt.Errorf("core: plan is for backend %q, this worker runs %q", m.Backend, got)
	}
	if m.Seed != f.cfg.Seed {
		return fmt.Errorf("core: plan is for seed %d, this worker runs seed %d", m.Seed, f.cfg.Seed)
	}
	plan, err := eval.PlanFromCoords(coords)
	if err != nil {
		return err
	}
	rs, err := f.source.RunPlanCtx(ctx, plan)
	if err != nil {
		return err
	}
	return WriteFileAtomic(outPath, func(out *os.File) error { return wire.WriteResults(out, m, rs) })
}

// ReadShardFiles decodes shard result files, validating each as it loads.
func ReadShardFiles(paths []string) ([]wire.Shard, error) {
	shards := make([]wire.Shard, 0, len(paths))
	for _, path := range paths {
		in, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sh, err := wire.ReadResults(in)
		in.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		shards = append(shards, sh)
	}
	return shards, nil
}

// MergeShardFiles reads and merges shard result files, in any order,
// enforcing the wire package's completeness and identity checks.
func MergeShardFiles(paths []string) (*eval.ResultSet, wire.Meta, error) {
	shards, err := ReadShardFiles(paths)
	if err != nil {
		return nil, wire.Meta{}, err
	}
	return wire.Merge(shards)
}

// MergeShardFilesPartial is MergeShardFiles for a degraded sweep: shard
// indices with no file are reported (ascending), not refused. Identity
// mismatches, duplicate shards, and overlapping cells remain errors.
func MergeShardFilesPartial(paths []string) (*eval.ResultSet, wire.Meta, []int, error) {
	shards, err := ReadShardFiles(paths)
	if err != nil {
		return nil, wire.Meta{}, nil, err
	}
	return wire.MergePartial(shards)
}

// HarnessFromShards merges shard result files into a render-only harness:
// every cell-based table and figure regenerates from the merged stats
// with no backend, corpus, or model construction at all. The returned
// ResultSet is the harness's cell source; check ResultSet.Missing after
// rendering to catch shards that don't cover the requested artifacts.
func HarnessFromShards(paths []string, sweep eval.SweepOptions) (*harness.Harness, *eval.ResultSet, wire.Meta, error) {
	rs, m, err := MergeShardFiles(paths)
	if err != nil {
		return nil, nil, wire.Meta{}, err
	}
	return harness.FromResults(rs, sweep), rs, m, nil
}

// HarnessFromShardsPartial is HarnessFromShards over an incomplete shard
// set: available shards merge, absent shard indices are returned, and the
// renderers' ResultSet.Missing accounting reports the uncovered cells.
func HarnessFromShardsPartial(paths []string, sweep eval.SweepOptions) (*harness.Harness, *eval.ResultSet, wire.Meta, []int, error) {
	rs, m, missing, err := MergeShardFilesPartial(paths)
	if err != nil {
		return nil, nil, wire.Meta{}, nil, err
	}
	return harness.FromResults(rs, sweep), rs, m, missing, nil
}

// WriteFileAtomic writes path atomically: the payload goes to a unique temp
// file in the same directory (same filesystem, so the rename is atomic),
// is fsynced, and only then renamed into place. A crash — worker killed
// mid-write, full disk, pulled plug — can therefore never leave a
// half-valid file at path that a later merge reads as a complete shard;
// the first error through write, sync, and close wins.
//
// This is the single durable write path for wire/shard artifacts, and
// the goanalysis durables pass enforces that: a write-opened handle fed
// straight to wire.WriteResults/WritePlan is a vgen-check finding.
func WriteFileAtomic(path string, write func(*os.File) error) error {
	out, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := out.Name()
	err = write(out)
	if err == nil {
		err = out.Sync()
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp) // best effort; the partial temp must not linger
		return err
	}
	return nil
}
