package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/problems"
)

func testFW(t *testing.T) *Framework {
	t.Helper()
	fw, err := New(Config{
		Seed:        3,
		CorpusFiles: 50,
		Sweep:       eval.SweepOptions{N: 3, Temperatures: []float64{0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestFrameworkWiring(t *testing.T) {
	f := testFW(t)
	if f.Family == nil || f.Runner == nil || f.Harness == nil {
		t.Fatal("framework incompletely wired")
	}
	if len(Problems()) != 17 || len(Models()) != 6 {
		t.Fatal("catalog accessors wrong")
	}
}

func TestEvaluateCompletionAPI(t *testing.T) {
	f := testFW(t)
	p := problems.ByNumber(4)
	o, err := f.EvaluateCompletion(4, problems.LevelLow, p.RefBody)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Compiles || !o.Passes {
		t.Fatalf("reference outcome = %+v", o)
	}
	o, err = f.EvaluateCompletion(4, problems.LevelLow, "  bogus\n")
	if err != nil || o.Compiles {
		t.Fatalf("broken completion outcome = %+v, err %v", o, err)
	}
	if _, err := f.EvaluateCompletion(99, problems.LevelLow, ""); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestSampleAndEvaluateAPI(t *testing.T) {
	f := testFW(t)
	st, err := f.SampleAndEvaluate(model.CodeGen16B, model.FineTuned, 2, problems.LevelLow, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 8 {
		t.Fatalf("samples = %d", st.Samples)
	}
	if st.Compiled < st.Passed {
		t.Fatal("passed cannot exceed compiled")
	}
	if _, err := f.SampleAndEvaluate(model.Codex, model.FineTuned, 2, problems.LevelLow, 0.1, 1); err == nil {
		t.Fatal("codex FT accepted")
	}
	if _, err := f.SampleAndEvaluate(model.Codex, model.Pretrained, 0, problems.LevelLow, 0.1, 1); err == nil {
		t.Fatal("problem 0 accepted")
	}
}

// TestBackendSelectionAndRecordReplay exercises the facade's backend
// plumbing: select the mutant backend by name, record its sweep, then
// mount the recording through the replay backend and reproduce the
// stats exactly.
func TestBackendSelectionAndRecordReplay(t *testing.T) {
	rec := filepath.Join(t.TempDir(), "mutant.jsonl")
	fw, err := New(Config{Seed: 5, Backend: "mutant", Record: rec})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Family != nil {
		t.Error("non-family backend should leave Family nil")
	}
	want, err := fw.SampleAndEvaluate(model.CodeGen16B, model.FineTuned, 6, problems.LevelMedium, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	rp, err := New(Config{Seed: 5, Backend: "replay", Replay: rec})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rp.SampleAndEvaluate(model.CodeGen16B, model.FineTuned, 6, problems.LevelMedium, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("replayed stats %+v != recorded %+v", got, want)
	}

	if _, err := New(Config{Backend: "replay"}); err == nil {
		t.Error("replay without a recording should fail construction")
	}
	if _, err := New(Config{Backend: "no-such"}); err == nil {
		t.Error("unknown backend name should fail construction")
	}
	found := false
	for _, name := range Backends() {
		if name == "mutant" {
			found = true
		}
	}
	if !found {
		t.Errorf("Backends() = %v, missing mutant", Backends())
	}
}

// TestWriteFileAtomic pins the crash-safety contract of every shard
// artifact: the payload lands under the final name only complete — a
// failed write leaves neither the target nor a lingering temp file.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")

	boom := errors.New("disk on fire")
	if err := WriteFileAtomic(path, func(*os.File) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("WriteFileAtomic error = %v, want %v", err, boom)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed write left %v behind", ents)
	}

	if err := WriteFileAtomic(path, func(f *os.File) error {
		_, err := fmt.Fprintln(f, "payload")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ents, _ = os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != "out.jsonl" {
		t.Fatalf("successful write left %v, want exactly out.jsonl", ents)
	}
}

// TestRunPlanFileCtxCancellation: a canceled worker must return the
// context's error and leave no result file (nor a temp) behind — the
// invariant that lets a coordinator treat "file exists and validates" as
// "shard done".
func TestRunPlanFileCtxCancellation(t *testing.T) {
	fw, err := New(Config{Seed: 11, Backend: "mutant"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.jsonl")
	if err := fw.WriteShardPlan(planPath, []string{"table3"}, 0, 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outPath := filepath.Join(dir, "out.jsonl")
	if err := fw.RunPlanFileCtx(ctx, planPath, outPath); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled RunPlanFileCtx returned %v", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != "plan.jsonl" {
		t.Fatalf("canceled run left %v, want only plan.jsonl", ents)
	}
}

// TestRecordingDoesNotSplitShardIdentity pins the sweep-identity rule: a
// worker that also records (-record wraps the backend in a Recorder)
// must emit shards under the same backend tag as one that does not, or
// recorded and unrecorded shards of one sweep would refuse to merge.
func TestRecordingDoesNotSplitShardIdentity(t *testing.T) {
	dir := t.TempDir()
	plain, err := New(Config{Seed: 3, Backend: "mutant"})
	if err != nil {
		t.Fatal(err)
	}
	recording, err := New(Config{Seed: 3, Backend: "mutant", Record: filepath.Join(dir, "rec.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	defer recording.Close()

	exps := []string{"table3"}
	_, mPlain, err := plain.ShardPlan(exps, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, mRec, err := recording.ShardPlan(exps, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mPlain.Backend != mRec.Backend {
		t.Fatalf("recording split the sweep identity: %q vs %q", mPlain.Backend, mRec.Backend)
	}
}
