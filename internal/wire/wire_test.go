package wire

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/problems"
)

func testMeta(shard, shards int) Meta {
	return Meta{Backend: "test: backend tag", Seed: 42, Shard: shard, Shards: shards}
}

// testCoords builds valid cell addresses over the real problem set.
func testCoords(n int) []eval.Coord {
	ps := problems.All()
	var out []eval.Coord
	temps := []int{100, 300, 500, 700, 1000}
	for i := 0; len(out) < n; i++ {
		out = append(out, eval.Coord{
			Model:     []string{"codegen-16B", "megatron-355M"}[i%2],
			Variant:   []string{gen.VariantPT, gen.VariantFT}[(i/2)%2],
			Problem:   ps[i%len(ps)].Number,
			Level:     i % 3,
			TempMilli: temps[i%len(temps)],
			N:         1 + i%25,
		})
	}
	return out
}

func testSet(t *testing.T, coords []eval.Coord) *eval.ResultSet {
	t.Helper()
	rs := eval.NewResultSet()
	for i, c := range coords {
		samples := c.N - i%2 // sometimes fewer than n (replay gaps)
		st := eval.CellStats{
			Samples:  samples,
			Compiled: samples * 3 / 4,
			Passed:   samples / 2,
			SumLat:   0.25 * float64(i*samples), // exactly representable
		}
		if err := rs.Put(c, st); err != nil {
			t.Fatal(err)
		}
	}
	return rs
}

func TestPlanRoundTripDeterministic(t *testing.T) {
	coords := testCoords(9)
	m := testMeta(2, 4)
	var a, b bytes.Buffer
	if err := WritePlan(&a, m, coords); err != nil {
		t.Fatal(err)
	}
	if err := WritePlan(&b, m, coords); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("plan encoding is not deterministic")
	}
	gm, gc, err := ReadPlan(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gm != m {
		t.Fatalf("meta round trip: got %+v want %+v", gm, m)
	}
	if len(gc) != len(coords) {
		t.Fatalf("got %d coords, want %d", len(gc), len(coords))
	}
	for i := range gc {
		if gc[i] != coords[i] {
			t.Fatalf("coord %d: got %+v want %+v", i, gc[i], coords[i])
		}
	}
	var c bytes.Buffer
	if err := WritePlan(&c, gm, gc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("Encode(Decode(x)) != x for plan")
	}
}

func TestResultsRoundTripCanonicalOrder(t *testing.T) {
	coords := testCoords(12)
	m := testMeta(0, 1)
	forward := testSet(t, coords)
	rev := make([]eval.Coord, len(coords))
	for i, c := range coords {
		rev[len(coords)-1-i] = c
	}
	backward := eval.NewResultSet()
	for _, c := range rev {
		st, _ := forward.Get(c)
		if err := backward.Put(c, st); err != nil {
			t.Fatal(err)
		}
	}

	var a, b bytes.Buffer
	if err := WriteResults(&a, m, forward); err != nil {
		t.Fatal(err)
	}
	if err := WriteResults(&b, m, backward); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("result encoding depends on insertion order")
	}

	sh, err := ReadResults(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Meta != m {
		t.Fatalf("meta round trip: got %+v want %+v", sh.Meta, m)
	}
	if sh.Set.Len() != forward.Len() {
		t.Fatalf("got %d cells, want %d", sh.Set.Len(), forward.Len())
	}
	var c bytes.Buffer
	if err := WriteResults(&c, sh.Meta, sh.Set); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("Encode(Decode(x)) != x for results")
	}
}

// encodeShards splits one result set into n shard files.
func encodeShards(t *testing.T, rs *eval.ResultSet, n int) []Shard {
	t.Helper()
	coords := rs.Coords()
	out := make([]Shard, n)
	for i := 0; i < n; i++ {
		set := eval.NewResultSet()
		for j := i; j < len(coords); j += n {
			st, _ := rs.Get(coords[j])
			if err := set.Put(coords[j], st); err != nil {
				t.Fatal(err)
			}
		}
		m := testMeta(i, n)
		var buf bytes.Buffer
		if err := WriteResults(&buf, m, set); err != nil {
			t.Fatal(err)
		}
		sh, err := ReadResults(&buf)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sh
	}
	return out
}

func TestMergeOrderIndependent(t *testing.T) {
	full := testSet(t, testCoords(13))
	shards := encodeShards(t, full, 4)

	shuffled := []Shard{shards[2], shards[0], shards[3], shards[1]}
	a, am, err := Merge(shards)
	if err != nil {
		t.Fatal(err)
	}
	b, bm, err := Merge(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if am != bm {
		t.Fatalf("merge meta differs: %+v vs %+v", am, bm)
	}
	if am.Shard != -1 || am.Shards != 4 {
		t.Fatalf("merged meta %+v, want Shard=-1 Shards=4", am)
	}
	if a.Len() != full.Len() || b.Len() != full.Len() {
		t.Fatalf("merged %d/%d cells, want %d", a.Len(), b.Len(), full.Len())
	}
	for _, c := range full.Coords() {
		want, _ := full.Get(c)
		ga, ok := a.Get(c)
		if !ok || ga != want {
			t.Fatalf("cell %+v: merged %+v want %+v", c, ga, want)
		}
		gb, ok := b.Get(c)
		if !ok || gb != want {
			t.Fatalf("cell %+v: shuffled-merge %+v want %+v", c, gb, want)
		}
	}
}

func TestMergeRejections(t *testing.T) {
	full := testSet(t, testCoords(8))
	shards := encodeShards(t, full, 3)

	if _, _, err := Merge(nil); err == nil {
		t.Error("merge of zero shards should fail")
	}
	if _, _, err := Merge(shards[:2]); err == nil {
		t.Error("merge with a missing shard should fail")
	}
	if _, _, err := Merge([]Shard{shards[0], shards[1], shards[1]}); err == nil {
		t.Error("merge with a duplicate shard index should fail")
	}

	other := shards[2]
	other.Seed++
	if _, _, err := Merge([]Shard{shards[0], shards[1], other}); err == nil {
		t.Error("merge across seeds should fail")
	}
	other = shards[2]
	other.Backend = "some other backend"
	if _, _, err := Merge([]Shard{shards[0], shards[1], other}); err == nil {
		t.Error("merge across backend tags should fail")
	}

	// Overlap: re-index shard 0's cells as shard 2.
	overlap := Shard{Meta: testMeta(2, 3), Set: shards[0].Set}
	if _, _, err := Merge([]Shard{shards[0], shards[1], overlap}); err == nil {
		t.Error("merge with overlapping cells should fail")
	}

	// A programmatically built Meta never went through decode validation:
	// an out-of-range index must error, not panic the coverage bookkeeping.
	rogue := []Shard{
		{Meta: Meta{Backend: "b", Seed: 1, Shard: 5, Shards: 4}, Set: eval.NewResultSet()},
		{Meta: Meta{Backend: "b", Seed: 1, Shard: 6, Shards: 4}, Set: eval.NewResultSet()},
	}
	if _, _, err := Merge(rogue); err == nil {
		t.Error("merge with out-of-range shard indices should fail")
	}
	negative := []Shard{
		{Meta: Meta{Backend: "b", Seed: 1, Shard: 0, Shards: -1}, Set: eval.NewResultSet()},
	}
	if _, _, err := Merge(negative); err == nil {
		t.Error("merge with a negative shard count should fail, not panic")
	}
}

func TestDecodeRejections(t *testing.T) {
	coords := testCoords(3)
	m := testMeta(0, 2)
	var buf bytes.Buffer
	if err := WriteResults(&buf, m, testSet(t, coords)); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	lines := strings.Split(strings.TrimSuffix(good, "\n"), "\n")

	corrupt := func(name, text string) {
		t.Helper()
		if _, err := ReadResults(strings.NewReader(text)); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
	corrupt("empty input", "")
	corrupt("plan header on results reader", strings.Replace(good, `"kind":"results"`, `"kind":"plan"`, 1))
	corrupt("future schema version", strings.Replace(good, `"version":1`, `"version":99`, 1))
	corrupt("empty backend tag", strings.Replace(good, `"backend":"test: backend tag"`, `"backend":""`, 1))
	corrupt("shard out of range", strings.Replace(good, `"shard":0,"shards":2`, `"shard":5,"shards":2`, 1))
	corrupt("truncated JSON line", good+`{"model":"x"`)
	corrupt("unknown problem number", lines[0]+"\n"+
		regexp.MustCompile(`"problem":\d+`).ReplaceAllString(lines[1], `"problem":9999`)+"\n")
	corrupt("compiled > samples", lines[0]+"\n"+strings.Replace(lines[1], `"compiled":`, `"compiled":99999990`, 1)+"\n")
	corrupt("passed > compiled", lines[0]+"\n"+
		regexp.MustCompile(`"compiled":\d+,"passed":\d+`).ReplaceAllString(lines[1], `"compiled":0,"passed":1`)+"\n")
	corrupt("duplicate cell", good+lines[1]+"\n")
	corrupt("truncated at a line boundary", lines[0]+"\n"+lines[1]+"\n") // header declares 3 cells

	if _, _, err := ReadPlan(strings.NewReader(good)); err == nil {
		t.Error("results header on plan reader should fail")
	}
}

// TestDecodeRejectionErrors pins the decoder's diagnostics for the
// failure modes a crashed or interrupted worker actually produces —
// mid-line truncation, a lost header, duplicated cell lines — down to
// the error text. The coordinator retries on these errors; a vague or
// wrong message is what a 3 a.m. operator would otherwise debug.
func TestDecodeRejectionErrors(t *testing.T) {
	coords := testCoords(3)
	var buf bytes.Buffer
	if err := WriteResults(&buf, testMeta(0, 2), testSet(t, coords)); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(good, "\n"), "\n") // keep newlines
	last := lines[len(lines)-1]

	cases := []struct {
		name    string
		input   string
		wantErr string
	}{
		{
			// a write killed mid-line: the tail is not valid JSON
			name:    "mid-line truncation",
			input:   strings.TrimSuffix(good, "\n")[:len(good)-len(last)/2],
			wantErr: "unexpected end of JSON input",
		},
		{
			// a write killed between lines: valid JSONL, wrong cell count
			name:    "truncation at a line boundary",
			input:   strings.Join(lines[:len(lines)-1], ""),
			wantErr: "declare 3 cells, file holds 2 (truncated?)",
		},
		{
			// concatenation bug or seek-to-wrong-offset: body without
			// header; the first cell line carries no version field, so the
			// version gate trips before the kind gate
			name:    "missing header",
			input:   strings.Join(lines[1:], ""),
			wantErr: "schema version 0, this build reads 1",
		},
		{
			name:    "empty file",
			input:   "",
			wantErr: "empty input, want a results header",
		},
		{
			// duplicated cell line (e.g. a retried append instead of a
			// rewrite): must name the cell, not just fail
			name:    "duplicate cell line",
			input:   good + last,
			wantErr: "duplicate result cell",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadResults(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestMergePartial exercises the degraded-sweep merge: missing shards are
// reported, not refused; everything else stays as strict as Merge.
func TestMergePartial(t *testing.T) {
	coords := testCoords(8)
	shard := func(i, n int, cs []eval.Coord) Shard {
		return Shard{Meta: testMeta(i, n), Set: testSet(t, cs)}
	}

	rs, m, missing, err := MergePartial([]Shard{shard(0, 4, coords[:3]), shard(2, 4, coords[3:6])})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 3}; len(missing) != 2 || missing[0] != want[0] || missing[1] != want[1] {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
	if rs.Len() != 6 || m.Shards != 4 || m.Shard != -1 {
		t.Fatalf("merged %d cells, meta %+v", rs.Len(), m)
	}

	// Complete input: no missing shards, same result as Merge.
	_, _, missing, err = MergePartial([]Shard{shard(0, 2, coords[:3]), shard(1, 2, coords[3:6])})
	if err != nil || len(missing) != 0 {
		t.Fatalf("complete merge: missing %v, err %v", missing, err)
	}

	// Strictness survives: identity disagreement, duplicate shard index,
	// overlapping cells, zero shards.
	other := shard(1, 4, coords[3:6])
	other.Seed = 7
	if _, _, _, err := MergePartial([]Shard{shard(0, 4, coords[:3]), other}); err == nil {
		t.Error("identity disagreement accepted")
	}
	if _, _, _, err := MergePartial([]Shard{shard(0, 4, coords[:3]), shard(0, 4, coords[3:6])}); err == nil {
		t.Error("duplicate shard index accepted")
	}
	if _, _, _, err := MergePartial([]Shard{shard(0, 4, coords[:3]), shard(1, 4, coords[:3])}); err == nil {
		t.Error("overlapping cells accepted")
	}
	if _, _, _, err := MergePartial(nil); err == nil {
		t.Error("zero shards accepted")
	}
}

// FuzzResultsRoundTrip asserts decode never panics on arbitrary input,
// and that accepted input reaches a canonical fixed point: one
// decode+encode canonicalizes, after which Encode(Decode(x)) == x.
func FuzzResultsRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteResults(&seed, testMeta(1, 4), eval.NewResultSet()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	var full bytes.Buffer
	rs := eval.NewResultSet()
	for i, c := range testCoords(6) {
		rs.Put(c, eval.CellStats{Samples: c.N, Compiled: c.N, Passed: i % 2, SumLat: 1.5 * float64(i)})
	}
	if err := WriteResults(&full, testMeta(0, 1), rs); err != nil {
		f.Fatal(err)
	}
	f.Add(full.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"kind":"results","version":1,"backend":"b","seed":0,"shard":0,"shards":1}` + "\n" + `{"model":"m"}`)

	f.Fuzz(func(t *testing.T, data string) {
		sh, err := ReadResults(strings.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it never panics
		}
		var once bytes.Buffer
		if err := WriteResults(&once, sh.Meta, sh.Set); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		sh2, err := ReadResults(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		var twice bytes.Buffer
		if err := WriteResults(&twice, sh2.Meta, sh2.Set); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatal("Encode(Decode(x)) != x on canonical encoding")
		}
	})
}

func TestWritePlanRejectsDuplicates(t *testing.T) {
	c := testCoords(1)
	var buf bytes.Buffer
	if err := WritePlan(&buf, testMeta(0, 1), []eval.Coord{c[0], c[0]}); err == nil {
		t.Fatal("WritePlan with a duplicate cell should fail at the writer")
	}
}
