// Package wire is the serialization layer of distributed sweep
// execution: a versioned, deterministic JSON-lines format for shard
// plans (which cells one worker should evaluate) and shard results (the
// per-cell CellStats it produced), plus the cross-process Merge that
// reassembles a monolithic sweep from its shards.
//
// A file is one header line followed by one line per cell:
//
//	{"kind":"plan","version":1,"backend":"<tag>","seed":1,"shard":0,"shards":4,"cells":702}
//	{"model":"codegen-16B","variant":"FT","problem":3,"level":1,"temp_milli":300,"n":10}
//	...
//
//	{"kind":"results","version":1,"backend":"<tag>","seed":1,"shard":0,"shards":4,"cells":702}
//	{"model":"codegen-16B","variant":"FT","problem":3,"level":1,"temp_milli":300,"n":10,
//	 "samples":10,"compiled":9,"passed":4,"sum_lat":31.25}
//	...
//
// Design points, in the order they matter:
//
//   - Coordinates are wire-stable scalars. Temperature is keyed in
//     thousandths (gen.TempMilli) — the same quantization record/replay
//     use — so a recording, a shard plan, and a shard result can never
//     disagree on float keying.
//   - Encoding is deterministic: result cells are written in canonical
//     coordinate order, plan cells in plan order, and encoding/json emits
//     shortest-round-trip float64, so equal payloads are equal bytes and
//     sum_lat survives the round trip bit-for-bit.
//   - Decode validates. The schema version must match, the header kind
//     must match the reader, the header's cell count must match the body
//     (a file truncated at a line boundary is rejected), every coordinate
//     must resolve to a real (problem, level, variant, n) query, stats
//     must be internally consistent, and a malformed or duplicate line is
//     an error — never a silent drop.
//   - Merge is order-independent and total: shards must agree on
//     (version, backend tag, seed, shard count), indices must cover
//     0..shards-1 exactly once (a missing shard means missing cells), and
//     no cell may appear twice. Each cell arrives whole from exactly one
//     shard, so merging is pure map union — no float addition spans
//     processes, which is what keeps a merged sweep byte-identical to the
//     monolithic run.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/eval"
)

// Version is the schema version written to and required from every file.
const Version = 1

// Meta identifies one shard's place in a distributed sweep: which backend
// configuration produced it (the backend's Describe() tag), the runner
// seed every shard must share, and the shard index/count. Merging shards
// whose metas disagree is refused — their cells would come from different
// sweeps.
type Meta struct {
	Backend string
	Seed    int64
	Shard   int
	Shards  int
}

// header is the first JSONL line of both file kinds. Cells is the exact
// number of cell lines that must follow: JSONL has no framing, so
// without it a file truncated at a line boundary (interrupted copy,
// partial flush on a full disk) would decode cleanly and merge into a
// silently incomplete sweep.
type header struct {
	Kind    string `json:"kind"` // "plan" or "results"
	Version int    `json:"version"`
	Backend string `json:"backend"`
	Seed    int64  `json:"seed"`
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Cells   int    `json:"cells"`
}

// coordLine is one planned cell.
type coordLine struct {
	Model     string `json:"model"`
	Variant   string `json:"variant"`
	Problem   int    `json:"problem"`
	Level     int    `json:"level"`
	TempMilli int    `json:"temp_milli"`
	N         int    `json:"n"`
}

// cellLine is one evaluated cell: coordinate plus stats.
type cellLine struct {
	coordLine
	Samples  int     `json:"samples"`
	Compiled int     `json:"compiled"`
	Passed   int     `json:"passed"`
	SumLat   float64 `json:"sum_lat"`
}

func toCoordLine(c eval.Coord) coordLine {
	return coordLine{
		Model: c.Model, Variant: c.Variant, Problem: c.Problem,
		Level: c.Level, TempMilli: c.TempMilli, N: c.N,
	}
}

func (l coordLine) coord() eval.Coord {
	return eval.Coord{
		Model: l.Model, Variant: l.Variant, Problem: l.Problem,
		Level: l.Level, TempMilli: l.TempMilli, N: l.N,
	}
}

func checkMeta(m Meta) error {
	if m.Backend == "" {
		return fmt.Errorf("wire: empty backend tag")
	}
	if m.Shards <= 0 || m.Shard < 0 || m.Shard >= m.Shards {
		return fmt.Errorf("wire: shard %d of %d out of range", m.Shard, m.Shards)
	}
	return nil
}

func writeHeader(w *bufio.Writer, kind string, m Meta, cells int) error {
	if err := checkMeta(m); err != nil {
		return err
	}
	return writeLine(w, header{
		Kind: kind, Version: Version,
		Backend: m.Backend, Seed: m.Seed, Shard: m.Shard, Shards: m.Shards,
		Cells: cells,
	})
}

func writeLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// readHeader decodes and validates the first line of a file against the
// expected kind and this package's schema version, returning the meta
// and the declared cell count the body must supply.
func readHeader(sc *bufio.Scanner, kind string) (Meta, int, error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Meta{}, 0, err
		}
		return Meta{}, 0, fmt.Errorf("wire: empty input, want a %s header", kind)
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return Meta{}, 0, fmt.Errorf("wire: header: %w", err)
	}
	if h.Version != Version {
		return Meta{}, 0, fmt.Errorf("wire: schema version %d, this build reads %d", h.Version, Version)
	}
	if h.Kind != kind {
		return Meta{}, 0, fmt.Errorf("wire: file kind %q, want %q", h.Kind, kind)
	}
	if h.Cells < 0 {
		return Meta{}, 0, fmt.Errorf("wire: negative cell count %d", h.Cells)
	}
	m := Meta{Backend: h.Backend, Seed: h.Seed, Shard: h.Shard, Shards: h.Shards}
	if err := checkMeta(m); err != nil {
		return Meta{}, 0, err
	}
	return m, h.Cells, nil
}

func scanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
	return sc
}

// WritePlan serializes a shard plan: the header followed by one line per
// planned cell, in plan order. Cells are validated symmetrically with
// ReadPlan — unresolvable or duplicate coordinates fail at the writer, on
// the coordinator, not later on the worker.
func WritePlan(w io.Writer, m Meta, coords []eval.Coord) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, "plan", m, len(coords)); err != nil {
		return err
	}
	seen := make(map[eval.Coord]bool, len(coords))
	for _, c := range coords {
		if _, err := c.Query(); err != nil {
			return fmt.Errorf("wire: plan: %w", err)
		}
		if seen[c] {
			return fmt.Errorf("wire: plan: duplicate cell %+v", c)
		}
		seen[c] = true
		if err := writeLine(bw, toCoordLine(c)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPlan decodes and validates a shard plan: every coordinate must
// resolve to an executable query, and a cell may be planned only once.
func ReadPlan(r io.Reader) (Meta, []eval.Coord, error) {
	sc := scanner(r)
	m, wantCells, err := readHeader(sc, "plan")
	if err != nil {
		return Meta{}, nil, err
	}
	var coords []eval.Coord
	seen := map[eval.Coord]bool{}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var cl coordLine
		if err := json.Unmarshal(sc.Bytes(), &cl); err != nil {
			return Meta{}, nil, fmt.Errorf("wire: plan line %d: %w", line, err)
		}
		c := cl.coord()
		if _, err := c.Query(); err != nil {
			return Meta{}, nil, fmt.Errorf("wire: plan line %d: %w", line, err)
		}
		if seen[c] {
			return Meta{}, nil, fmt.Errorf("wire: plan line %d: duplicate cell %+v", line, c)
		}
		seen[c] = true
		coords = append(coords, c)
	}
	if err := sc.Err(); err != nil {
		return Meta{}, nil, err
	}
	if len(coords) != wantCells {
		return Meta{}, nil, fmt.Errorf("wire: plan declares %d cells, file holds %d (truncated?)", wantCells, len(coords))
	}
	return m, coords, nil
}

// WriteResults serializes one shard's evaluated cells: the header
// followed by one line per cell in canonical coordinate order, so equal
// result sets are equal bytes regardless of evaluation order.
func WriteResults(w io.Writer, m Meta, rs *eval.ResultSet) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, "results", m, rs.Len()); err != nil {
		return err
	}
	for _, c := range rs.Coords() {
		st, _ := rs.Get(c)
		if err := checkStats(c, st); err != nil {
			return err
		}
		if err := writeLine(bw, cellLine{
			coordLine: toCoordLine(c),
			Samples:   st.Samples, Compiled: st.Compiled, Passed: st.Passed,
			SumLat: st.SumLat,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func checkStats(c eval.Coord, st eval.CellStats) error {
	// Passed <= Compiled because the verdict pipeline only runs the test
	// bench on samples that compile: a file claiming otherwise is corrupt.
	if st.Samples < 0 || st.Samples > c.N ||
		st.Compiled < 0 || st.Compiled > st.Samples ||
		st.Passed < 0 || st.Passed > st.Compiled {
		return fmt.Errorf("wire: cell %+v: inconsistent stats %+v", c, st)
	}
	if math.IsNaN(st.SumLat) || math.IsInf(st.SumLat, 0) || st.SumLat < 0 {
		return fmt.Errorf("wire: cell %+v: bad latency sum %v", c, st.SumLat)
	}
	return nil
}

// Shard is one decoded shard-result file.
type Shard struct {
	Meta
	Set *eval.ResultSet
}

// ReadResults decodes and validates one shard-result file: schema
// version, header kind, coordinate resolvability, per-cell stat
// consistency, and cell uniqueness.
func ReadResults(r io.Reader) (Shard, error) {
	sc := scanner(r)
	m, wantCells, err := readHeader(sc, "results")
	if err != nil {
		return Shard{}, err
	}
	set := eval.NewResultSet()
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var cl cellLine
		if err := json.Unmarshal(sc.Bytes(), &cl); err != nil {
			return Shard{}, fmt.Errorf("wire: results line %d: %w", line, err)
		}
		c := cl.coord()
		if _, err := c.Query(); err != nil {
			return Shard{}, fmt.Errorf("wire: results line %d: %w", line, err)
		}
		st := eval.CellStats{
			Samples: cl.Samples, Compiled: cl.Compiled, Passed: cl.Passed,
			SumLat: cl.SumLat,
		}
		if err := checkStats(c, st); err != nil {
			return Shard{}, fmt.Errorf("wire: results line %d: %w", line, err)
		}
		if err := set.Put(c, st); err != nil {
			return Shard{}, fmt.Errorf("wire: results line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Shard{}, err
	}
	if set.Len() != wantCells {
		return Shard{}, fmt.Errorf("wire: results declare %d cells, file holds %d (truncated?)", wantCells, set.Len())
	}
	return Shard{Meta: m, Set: set}, nil
}

// Merge reassembles a sweep from its shards, in any order. All shards
// must carry the same backend tag, seed, and shard count; the indices
// must cover 0..shards-1 exactly once, so both an overlapping and a
// missing shard are refused; and no cell may appear in two shards. The
// returned Meta is the common sweep identity with Shard = -1 (the merged
// whole is no single shard).
func Merge(shards []Shard) (*eval.ResultSet, Meta, error) {
	rs, m, missing, err := MergePartial(shards)
	if err != nil {
		return nil, Meta{}, err
	}
	if len(missing) > 0 {
		return nil, Meta{}, fmt.Errorf("wire: merge: shard %d of %d missing (its cells are unserved)", missing[0], m.Shards)
	}
	return rs, m, nil
}

// MergePartial is Merge for a degraded sweep: shard indices absent from
// the input are reported (ascending) instead of refused, so a coordinator
// that exhausted its retries can still assemble every cell that did
// complete. Everything else — identity agreement, duplicate shards,
// overlapping cells — stays an error: a partial merge must be an exact
// subset of the full one, never a differently wrong one.
func MergePartial(shards []Shard) (*eval.ResultSet, Meta, []int, error) {
	if len(shards) == 0 {
		return nil, Meta{}, nil, fmt.Errorf("wire: merge of zero shards")
	}
	// File-decoded shards arrive pre-validated via readHeader, but a
	// programmatically built Meta must not panic the seen allocation or
	// indexing below — validate every shard before trusting any count.
	for _, s := range shards {
		if err := checkMeta(s.Meta); err != nil {
			return nil, Meta{}, nil, fmt.Errorf("wire: merge: %w", err)
		}
	}
	want := shards[0].Meta
	seen := make([]bool, want.Shards)
	merged := eval.NewResultSet()

	// Deterministic merge order (by shard index) costs nothing and makes
	// error messages stable; the result is a map union either way.
	ordered := append([]Shard(nil), shards...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Shard < ordered[j].Shard })

	for _, s := range ordered {
		if s.Backend != want.Backend || s.Seed != want.Seed || s.Shards != want.Shards {
			return nil, Meta{}, nil, fmt.Errorf(
				"wire: merge: shard %d identity (backend %q, seed %d, shards %d) disagrees with (backend %q, seed %d, shards %d)",
				s.Shard, s.Backend, s.Seed, s.Shards, want.Backend, want.Seed, want.Shards)
		}
		if seen[s.Shard] {
			return nil, Meta{}, nil, fmt.Errorf("wire: merge: shard %d of %d supplied twice", s.Shard, s.Shards)
		}
		seen[s.Shard] = true
		if err := merged.Merge(s.Set); err != nil {
			return nil, Meta{}, nil, fmt.Errorf("wire: merge: shard %d: %w", s.Shard, err)
		}
	}
	var missing []int
	for i, ok := range seen {
		if !ok {
			missing = append(missing, i)
		}
	}
	return merged, Meta{Backend: want.Backend, Seed: want.Seed, Shard: -1, Shards: want.Shards}, missing, nil
}
