// Package vcd implements a Value Change Dump (IEEE 1364 §18) writer. The
// simulator uses it to honour $dumpvars, so waveforms of benchmark runs
// can be inspected with any standard viewer.
package vcd

import (
	"fmt"
	"strings"
)

// Writer accumulates a VCD document.
type Writer struct {
	header   strings.Builder
	body     strings.Builder
	nextID   int
	defsDone bool
	curTime  uint64
	timeSet  bool
}

// NewWriter starts a VCD document with the standard preamble.
func NewWriter(timescale string) *Writer {
	w := &Writer{}
	if timescale == "" {
		timescale = "1ns"
	}
	fmt.Fprintf(&w.header, "$timescale %s $end\n", timescale)
	return w
}

// idCode converts an index into a short printable identifier code.
func idCode(n int) string {
	const lo, hi = 33, 126
	var sb strings.Builder
	for {
		sb.WriteByte(byte(lo + n%(hi-lo+1)))
		n /= hi - lo + 1
		if n == 0 {
			return sb.String()
		}
		n--
	}
}

// BeginScope opens a module scope.
func (w *Writer) BeginScope(name string) {
	fmt.Fprintf(&w.header, "$scope module %s $end\n", sanitize(name))
}

// EndScope closes the innermost scope.
func (w *Writer) EndScope() {
	w.header.WriteString("$upscope $end\n")
}

// DeclareVar registers a signal and returns its identifier code.
func (w *Writer) DeclareVar(kind string, width int, name string) string {
	id := idCode(w.nextID)
	w.nextID++
	if kind == "" {
		kind = "wire"
	}
	if width > 1 {
		fmt.Fprintf(&w.header, "$var %s %d %s %s [%d:0] $end\n", kind, width, id, sanitize(name), width-1)
	} else {
		fmt.Fprintf(&w.header, "$var %s 1 %s %s $end\n", kind, id, sanitize(name))
	}
	return id
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, name)
}

// EndDefinitions closes the declaration section.
func (w *Writer) EndDefinitions() {
	if w.defsDone {
		return
	}
	w.defsDone = true
	w.header.WriteString("$enddefinitions $end\n$dumpvars\n")
}

// Change records a value change; bits is the MSB-first 0/1/x/z string.
// Time stamps are emitted lazily when the simulation time advances.
func (w *Writer) Change(id string, time uint64, bits string) {
	if !w.timeSet || time != w.curTime {
		fmt.Fprintf(&w.body, "#%d\n", time)
		w.curTime = time
		w.timeSet = true
	}
	if len(bits) == 1 {
		fmt.Fprintf(&w.body, "%s%s\n", bits, id)
	} else {
		fmt.Fprintf(&w.body, "b%s %s\n", trimBits(bits), id)
	}
}

// trimBits shortens a vector value per the VCD left-extension rules:
// leading zeros drop entirely (readers extend with 0), while runs of x or
// z keep one sentinel character (readers extend with the MSB character).
func trimBits(bits string) string {
	if len(bits) <= 1 {
		return bits
	}
	first := bits[0]
	if first == '1' {
		return bits
	}
	i := 0
	for i < len(bits)-1 && bits[i] == first {
		i++
	}
	if first == '0' {
		return bits[i:]
	}
	if bits[i] == first { // the whole string is one x/z run
		return bits[i:]
	}
	return bits[i-1:]
}

// String renders the complete document.
func (w *Writer) String() string {
	var sb strings.Builder
	sb.WriteString(w.header.String())
	if !w.defsDone {
		sb.WriteString("$enddefinitions $end\n$dumpvars\n")
	}
	sb.WriteString(w.body.String())
	return sb.String()
}
