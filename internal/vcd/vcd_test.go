package vcd

import (
	"strings"
	"testing"
)

func TestWriterDocumentStructure(t *testing.T) {
	w := NewWriter("1ns")
	w.BeginScope("tb")
	clk := w.DeclareVar("reg", 1, "clk")
	bus := w.DeclareVar("wire", 4, "q")
	w.EndScope()
	w.EndDefinitions()
	w.Change(clk, 0, "x")
	w.Change(bus, 0, "xxxx")
	w.Change(clk, 5, "1")
	w.Change(bus, 5, "0010")
	out := w.String()

	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module tb $end",
		"$var reg 1 ! clk $end",
		"$var wire 4 \" q [3:0] $end",
		"$upscope $end",
		"$enddefinitions $end",
		"#0", "x!", "bx \"",
		"#5", "1!", "b10 \"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("document missing %q:\n%s", want, out)
		}
	}
}

func TestTimeStampEmittedOncePerInstant(t *testing.T) {
	w := NewWriter("")
	a := w.DeclareVar("reg", 1, "a")
	b := w.DeclareVar("reg", 1, "b")
	w.EndDefinitions()
	w.Change(a, 7, "1")
	w.Change(b, 7, "0")
	if got := strings.Count(w.String(), "#7"); got != 1 {
		t.Fatalf("#7 appears %d times", got)
	}
}

func TestIDCodesUnique(t *testing.T) {
	w := NewWriter("")
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		id := w.DeclareVar("wire", 1, "n")
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestTrimBits(t *testing.T) {
	cases := map[string]string{
		"0010": "10",
		"0000": "0",
		"xxxx": "x",
		"zz10": "z10", // mixed leading z only collapses the run
		"1010": "1010",
		"x":    "x",
	}
	for in, want := range cases {
		if got := trimBits(in); got != want {
			t.Errorf("trimBits(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitizeNames(t *testing.T) {
	w := NewWriter("")
	w.BeginScope("a b")
	if !strings.Contains(w.String(), "a_b") {
		t.Fatal("scope name not sanitized")
	}
}
