package problems

// Problems 1-4: Basic difficulty (Table II).

func init() {
	register(&Problem{
		Number:      1,
		Slug:        "simple-wire",
		ModuleName:  "simple_wire",
		Difficulty:  Basic,
		Description: "A simple wire",
		promptL: `// This is a simple wire.
module simple_wire(input in, output out);
`,
		promptM: `// This is a simple wire.
// The output out should always equal the input in.
module simple_wire(input in, output out);
`,
		promptH: `// This is a simple wire.
// The output out should always equal the input in.
// Use a continuous assignment to connect in to out.
module simple_wire(input in, output out);
`,
		RefBody: `  assign out = in;
endmodule
`,
		Testbench: `module tb;
  reg in;
  wire out;
  integer errors;
  simple_wire dut(.in(in), .out(out));
  initial begin
    errors = 0;
    in = 0;
    #1 if (out !== 1'b0) begin errors = errors + 1; $display("FAIL in=0 out=%b", out); end
    in = 1;
    #1 if (out !== 1'b1) begin errors = errors + 1; $display("FAIL in=1 out=%b", out); end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})

	register(&Problem{
		Number:      2,
		Slug:        "and-gate",
		ModuleName:  "and_gate",
		Difficulty:  Basic,
		Description: "A 2-input and gate",
		promptL: `// This is a 2-input and gate.
module and_gate(input a, input b, output y);
`,
		promptM: `// This is a 2-input and gate.
// The output y is high only when both a and b are high.
module and_gate(input a, input b, output y);
`,
		promptH: `// This is a 2-input and gate.
// The output y is high only when both a and b are high.
// Use a continuous assignment: y is the bitwise and of a and b.
module and_gate(input a, input b, output y);
`,
		RefBody: `  assign y = a & b;
endmodule
`,
		Testbench: `module tb;
  reg a, b;
  wire y;
  integer i, errors;
  and_gate dut(.a(a), .b(b), .y(y));
  initial begin
    errors = 0;
    for (i = 0; i < 4; i = i + 1) begin
      a = i[1];
      b = i[0];
      #1 if (y !== (a & b)) begin
        errors = errors + 1;
        $display("FAIL a=%b b=%b y=%b", a, b, y);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})

	register(&Problem{
		Number:      3,
		Slug:        "priority-encoder",
		ModuleName:  "priority_encoder",
		Difficulty:  Basic,
		Description: "A 3-bit priority encoder",
		promptL: `// This is a 3-bit priority encoder. It outputs the position of the first high bit.
module priority_encoder(input [2:0] in, output reg [1:0] pos);
`,
		promptM: `// This is a 3-bit priority encoder. It outputs the position of the first high bit.
// If none of the input bits are high (i.e., input is zero), output zero.
// Assign the position of the lowest high bit of in to pos.
module priority_encoder(input [2:0] in, output reg [1:0] pos);
`,
		promptH: `// This is a 3-bit priority encoder. It outputs the position of the first high bit.
// If none of the input bits are high (i.e., input is zero), output zero.
// Assign the position of the lowest high bit of in to pos.
// If in[0] is high, pos is 0.
// Else if in[1] is high, pos is 1.
// Else if in[2] is high, pos is 2.
// Otherwise pos is 0.
module priority_encoder(input [2:0] in, output reg [1:0] pos);
`,
		RefBody: `  always @(in)
    if (in == 0) pos = 2'h0;
    else if (in[0]) pos = 2'h0;
    else if (in[1]) pos = 2'h1;
    else pos = 2'h2;
endmodule
`,
		Testbench: `module tb;
  reg [2:0] in;
  wire [1:0] pos;
  reg [1:0] expect;
  integer i, errors;
  priority_encoder dut(.in(in), .pos(pos));
  initial begin
    errors = 0;
    for (i = 0; i < 8; i = i + 1) begin
      in = i[2:0];
      if (in == 0) expect = 2'd0;
      else if (in[0]) expect = 2'd0;
      else if (in[1]) expect = 2'd1;
      else expect = 2'd2;
      #1 if (pos !== expect) begin
        errors = errors + 1;
        $display("FAIL in=%b pos=%d expect=%d", in, pos, expect);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})

	register(&Problem{
		Number:      4,
		Slug:        "mux2",
		ModuleName:  "mux2",
		Difficulty:  Basic,
		Description: "A 2-input multiplexer",
		promptL: `// This is a 2-input multiplexer.
module mux2(input a, input b, input sel, output y);
`,
		promptM: `// This is a 2-input multiplexer.
// When sel is low the output y follows a; when sel is high y follows b.
module mux2(input a, input b, input sel, output y);
`,
		promptH: `// This is a 2-input multiplexer.
// When sel is low the output y follows a; when sel is high y follows b.
// Use a conditional (ternary) continuous assignment on sel.
module mux2(input a, input b, input sel, output y);
`,
		RefBody: `  assign y = sel ? b : a;
endmodule
`,
		Testbench: `module tb;
  reg a, b, sel;
  wire y;
  reg expect;
  integer i, errors;
  mux2 dut(.a(a), .b(b), .sel(sel), .y(y));
  initial begin
    errors = 0;
    for (i = 0; i < 8; i = i + 1) begin
      a = i[0];
      b = i[1];
      sel = i[2];
      expect = sel ? b : a;
      #1 if (y !== expect) begin
        errors = errors + 1;
        $display("FAIL a=%b b=%b sel=%b y=%b", a, b, sel, y);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})
}
