package problems

// Problems 13-17: Advanced difficulty (Table II).

func init() {
	register(&Problem{
		Number:      13,
		Slug:        "signed-adder",
		ModuleName:  "sadd8",
		Difficulty:  Advanced,
		Description: "Signed 8-bit adder with overflow",
		promptL: `// This is a signed 8-bit adder with an overflow output.
module sadd8(input signed [7:0] a, input signed [7:0] b, output signed [7:0] s, output ovf);
`,
		promptM: `// This is a signed 8-bit adder with an overflow output.
// s is the two's complement sum of a and b.
// ovf is high when the signed addition overflows.
module sadd8(input signed [7:0] a, input signed [7:0] b, output signed [7:0] s, output ovf);
`,
		promptH: `// This is a signed 8-bit adder with an overflow output.
// s is the two's complement sum of a and b.
// ovf is high when the signed addition overflows.
// Overflow occurs when a and b have the same sign bit and the sign bit of
// s differs from it: ovf = (a[7] == b[7]) && (s[7] != a[7]).
module sadd8(input signed [7:0] a, input signed [7:0] b, output signed [7:0] s, output ovf);
`,
		RefBody: `  assign s = a + b;
  assign ovf = (a[7] == b[7]) && (s[7] != a[7]);
endmodule
`,
		Testbench: `module tb;
  reg signed [7:0] a, b;
  wire signed [7:0] s;
  wire ovf;
  reg signed [7:0] expect_s;
  reg expect_ovf;
  integer i, errors;
  sadd8 dut(.a(a), .b(b), .s(s), .ovf(ovf));
  initial begin
    errors = 0;
    for (i = 0; i < 40; i = i + 1) begin
      case (i % 8)
        0: begin a = 8'sd100; b = 8'sd100; end
        1: begin a = 8'sd127; b = 8'sd1; end
        2: begin a = -8'sd128; b = -8'sd1; end
        3: begin a = 8'sd3; b = 8'sd4; end
        4: begin a = -8'sd100; b = 8'sd50; end
        5: begin a = -8'sd100; b = -8'sd100; end
        6: begin a = 8'sd0; b = 8'sd0; end
        default: begin a = i[7:0]; b = 8'd255 - i[7:0]; end
      endcase
      expect_s = a + b;
      expect_ovf = (a[7] == b[7]) && (expect_s[7] != a[7]);
      #1 begin
        if (s !== expect_s) begin
          errors = errors + 1;
          $display("FAIL a=%d b=%d s=%d expect=%d", a, b, s, expect_s);
        end
        if (ovf !== expect_ovf) begin
          errors = errors + 1;
          $display("FAIL a=%d b=%d ovf=%b expect=%b", a, b, ovf, expect_ovf);
        end
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})

	register(&Problem{
		Number:      14,
		Slug:        "counter-enable",
		ModuleName:  "counter_en",
		Difficulty:  Advanced,
		Description: "Counter with enable signal",
		promptL: `// This is a 4-bit counter with an enable signal.
module counter_en(input clk, input reset, input en, output reg [3:0] q);
`,
		promptM: `// This is a 4-bit counter with an enable signal.
// On reset q goes to 0.
// On each rising clock edge, q increments only when en is high; it holds
// its value when en is low. The counter wraps from 15 back to 0.
module counter_en(input clk, input reset, input en, output reg [3:0] q);
`,
		promptH: `// This is a 4-bit counter with an enable signal.
// On reset q goes to 0.
// On each rising clock edge, q increments only when en is high; it holds
// its value when en is low. The counter wraps from 15 back to 0.
// At posedge clk: if reset is high, q gets 0.
// Else if en is high, q gets q + 1 (natural 4-bit wrap-around).
// Else q is unchanged.
module counter_en(input clk, input reset, input en, output reg [3:0] q);
`,
		RefBody: `  always @(posedge clk) begin
    if (reset) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule
`,
		Testbench: `module tb;
  reg clk, reset, en;
  wire [3:0] q;
  reg [3:0] model;
  integer i, errors;
  counter_en dut(.clk(clk), .reset(reset), .en(en), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; reset = 1; en = 0; errors = 0;
    @(posedge clk);
    #1 if (q !== 4'd0) begin
      errors = errors + 1;
      $display("FAIL after reset q=%d", q);
    end
    reset = 0;
    model = 4'd0;
    for (i = 0; i < 40; i = i + 1) begin
      en = (i % 3 != 0);
      #1;
      @(posedge clk);
      if (en) model = model + 4'd1;
      #1 if (q !== model) begin
        errors = errors + 1;
        $display("FAIL step %0d en=%b q=%d expect=%d", i, en, q, model);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})

	register(&Problem{
		Number:      15,
		Slug:        "fsm-101",
		ModuleName:  "adv_fsm",
		Difficulty:  Advanced,
		Description: "FSM to recognize '101'",
		promptL: `// This is a finite state machine that recognizes the sequence 101 on the input signal x.
module adv_fsm(input clk, input reset, input x, output z);
  reg [1:0] present_state, next_state;
  parameter IDLE=0, S1=1, S10=2, S101=3;
`,
		promptM: `// This is a finite state machine that recognizes the sequence 101 on the input signal x.
// output signal z is asserted to 1 when present_state is S101
// present_state is reset to IDLE when reset is high,
// otherwise it is assigned next_state
module adv_fsm(input clk, input reset, input x, output z);
  reg [1:0] present_state, next_state;
  parameter IDLE=0, S1=1, S10=2, S101=3;
`,
		promptH: `// This is a finite state machine that recognizes the sequence 101 on the input signal x.
// output signal z is asserted to 1 when present_state is S101
// present_state is reset to IDLE when reset is high,
// otherwise it is assigned next_state
// if present_state is IDLE, next_state is assigned S1 if
// x is 1, otherwise next_state stays at IDLE
// if present_state is S1, next_state is assigned S10 if
// x is 0, otherwise next_state stays at IDLE
// if present_state is S10, next_state is assigned S101 if
// x is 1, otherwise next_state stays at IDLE
// if present_state is S101, next_state is assigned IDLE
module adv_fsm(input clk, input reset, input x, output z);
  reg [1:0] present_state, next_state;
  parameter IDLE=0, S1=1, S10=2, S101=3;
`,
		RefBody: `  always @(posedge clk or posedge reset) begin
    if (reset) present_state <= IDLE;
    else present_state <= next_state;
  end
  always @(present_state or x) begin
    case (present_state)
      IDLE: next_state = x ? S1 : IDLE;
      S1: next_state = x ? IDLE : S10;
      S10: next_state = x ? S101 : IDLE;
      S101: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
  assign z = (present_state == S101);
endmodule
`,
		Testbench: `module tb;
  reg clk, reset, x;
  wire z;
  reg [1:0] model;
  reg expect;
  integer i, errors;
  reg [15:0] stimulus;
  adv_fsm dut(.clk(clk), .reset(reset), .x(x), .z(z));
  always #5 clk = ~clk;
  initial begin
    clk = 0; reset = 1; x = 0; errors = 0;
    stimulus = 16'b1011_0101_1101_0010;
    @(posedge clk);
    #1 if (z !== 1'b0) begin
      errors = errors + 1;
      $display("FAIL after reset z=%b", z);
    end
    reset = 0;
    model = 2'd0;
    for (i = 15; i >= 0; i = i - 1) begin
      x = stimulus[i];
      #1;
      @(posedge clk);
      case (model)
        2'd0: model = x ? 2'd1 : 2'd0;
        2'd1: model = x ? 2'd0 : 2'd2;
        2'd2: model = x ? 2'd3 : 2'd0;
        2'd3: model = 2'd0;
      endcase
      expect = (model == 2'd3);
      #1 if (z !== expect) begin
        errors = errors + 1;
        $display("FAIL step %0d x=%b z=%b expect=%b", i, x, z, expect);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})

	register(&Problem{
		Number:      16,
		Slug:        "ashift64",
		ModuleName:  "ashift64",
		Difficulty:  Advanced,
		Description: "64-bit arithmetic shift register",
		promptL: `// This is a 64-bit arithmetic shift register.
module ashift64(input clk, input load, input signed [63:0] din, output reg signed [63:0] q);
`,
		promptM: `// This is a 64-bit arithmetic shift register.
// On the rising clock edge, when load is high q is loaded with din.
// Otherwise q shifts right arithmetically by one (the sign bit is replicated).
module ashift64(input clk, input load, input signed [63:0] din, output reg signed [63:0] q);
`,
		promptH: `// This is a 64-bit arithmetic shift register.
// On the rising clock edge, when load is high q is loaded with din.
// Otherwise q shifts right arithmetically by one (the sign bit is replicated).
// At posedge clk: if load is high, q gets din.
// Else q gets q >>> 1 (arithmetic shift right by one).
module ashift64(input clk, input load, input signed [63:0] din, output reg signed [63:0] q);
`,
		RefBody: `  always @(posedge clk) begin
    if (load) q <= din;
    else q <= q >>> 1;
  end
endmodule
`,
		Testbench: `module tb;
  reg clk, load;
  reg signed [63:0] din;
  wire signed [63:0] q;
  reg signed [63:0] model;
  integer i, errors;
  ashift64 dut(.clk(clk), .load(load), .din(din), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; errors = 0;
    load = 1;
    din = 64'h8000_0000_0000_0001;
    @(posedge clk);
    #1 if (q !== 64'h8000_0000_0000_0001) begin
      errors = errors + 1;
      $display("FAIL load q=%h", q);
    end
    load = 0;
    model = 64'h8000_0000_0000_0001;
    for (i = 0; i < 70; i = i + 1) begin
      @(posedge clk);
      model = model >>> 1;
      #1 if (q !== model) begin
        errors = errors + 1;
        $display("FAIL step %0d q=%h expect=%h", i, q, model);
      end
    end
    load = 1;
    din = 64'sd12345;
    #1;
    @(posedge clk);
    #1 load = 0;
    model = 64'sd12345;
    for (i = 0; i < 20; i = i + 1) begin
      @(posedge clk);
      model = model >>> 1;
      #1 if (q !== model) begin
        errors = errors + 1;
        $display("FAIL pos step %0d q=%h expect=%h", i, q, model);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})

	register(&Problem{
		Number:      17,
		Slug:        "abro",
		ModuleName:  "abro",
		Difficulty:  Advanced,
		Description: "ABRO FSM",
		promptL: `// This is an FSM
// It outputs 1 when 1 is received for signals a and b irrespective of their
// order, either simultaneously or non-simultaneously.
module abro(input clk, input reset, input a, input b, output z);
  parameter IDLE = 0, SA = 1, SB = 2, SAB = 3;
  reg [1:0] cur_state, next_state;
`,
		promptM: `// This is an FSM
// It outputs 1 when 1 is received for signals a and b irrespective of their
// order, either simultaneously or non-simultaneously.
// Update state or reset on every clock edge
// Output z depends only on the state SAB
// The output z is high when cur_state is SAB
// cur_state is reset to IDLE when reset is high. Otherwise, it takes value of next_state.
module abro(input clk, input reset, input a, input b, output z);
  parameter IDLE = 0, SA = 1, SB = 2, SAB = 3;
  reg [1:0] cur_state, next_state;
`,
		promptH: `// This is an FSM
// It outputs 1 when 1 is received for signals a and b irrespective of their
// order, either simultaneously or non-simultaneously.
// Update state or reset on every clock edge
// Output z depends only on the state SAB
// The output z is high when cur_state is SAB
// cur_state is reset to IDLE when reset is high. Otherwise, it takes value of next_state.
// Next state generation logic:
// If cur_state is IDLE and a and b are both high, state changes to SAB
// If cur_state is IDLE, and a is high, state changes to SA
// If cur_state is IDLE, and b is high, state changes to SB
// If cur_state is SA, and b is high, state changes to SAB
// If cur_state is SB, and a is high, state changes to SAB
// If cur_state is SAB, state changes to IDLE
module abro(input clk, input reset, input a, input b, output z);
  parameter IDLE = 0, SA = 1, SB = 2, SAB = 3;
  reg [1:0] cur_state, next_state;
`,
		RefBody: `  always @(posedge clk or posedge reset) begin
    if (reset) cur_state <= IDLE;
    else cur_state <= next_state;
  end
  always @(cur_state or a or b) begin
    case (cur_state)
      IDLE: begin
        if (a && b) next_state = SAB;
        else if (a) next_state = SA;
        else if (b) next_state = SB;
        else next_state = IDLE;
      end
      SA: begin
        if (b) next_state = SAB;
        else next_state = SA;
      end
      SB: begin
        if (a) next_state = SAB;
        else next_state = SB;
      end
      SAB: next_state = IDLE;
      default: next_state = IDLE;
    endcase
  end
  assign z = (cur_state == SAB);
endmodule
`,
		Testbench: `module tb;
  reg clk, reset, a, b;
  wire z;
  reg [1:0] model;
  reg expect;
  integer i, errors;
  reg [11:0] astim, bstim;
  abro dut(.clk(clk), .reset(reset), .a(a), .b(b), .z(z));
  always #5 clk = ~clk;
  initial begin
    clk = 0; reset = 1; a = 0; b = 0; errors = 0;
    astim = 12'b1000_1100_0110;
    bstim = 12'b0100_1010_0110;
    @(posedge clk);
    #1 if (z !== 1'b0) begin
      errors = errors + 1;
      $display("FAIL after reset z=%b", z);
    end
    reset = 0;
    model = 2'd0;
    for (i = 11; i >= 0; i = i - 1) begin
      a = astim[i];
      b = bstim[i];
      #1;
      @(posedge clk);
      case (model)
        2'd0: begin
          if (a && b) model = 2'd3;
          else if (a) model = 2'd1;
          else if (b) model = 2'd2;
        end
        2'd1: if (b) model = 2'd3;
        2'd2: if (a) model = 2'd3;
        2'd3: model = 2'd0;
      endcase
      expect = (model == 2'd3);
      #1 if (z !== expect) begin
        errors = errors + 1;
        $display("FAIL step %0d a=%b b=%b z=%b expect=%b", i, a, b, z, expect);
      end
    end
    if (errors == 0) $display("RESULT: PASS");
    else $display("RESULT: FAIL");
    $finish;
  end
endmodule
`,
	})
}
