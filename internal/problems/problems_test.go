package problems

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/vlog"
	"repro/internal/vlog/elab"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("problem count = %d, want 17", len(all))
	}
	for i, p := range all {
		if p.Number != i+1 {
			t.Errorf("problem %d has number %d", i+1, p.Number)
		}
		if p.ModuleName == "" || p.Slug == "" || p.Description == "" {
			t.Errorf("problem %d missing metadata", p.Number)
		}
	}
	if n := len(ByDifficulty(Basic)); n != 4 {
		t.Errorf("basic count = %d, want 4", n)
	}
	if n := len(ByDifficulty(Intermediate)); n != 8 {
		t.Errorf("intermediate count = %d, want 8", n)
	}
	if n := len(ByDifficulty(Advanced)); n != 5 {
		t.Errorf("advanced count = %d, want 5", n)
	}
}

func TestByNumber(t *testing.T) {
	if ByNumber(0) != nil || ByNumber(18) != nil {
		t.Error("out-of-range ByNumber should be nil")
	}
	if p := ByNumber(17); p == nil || p.Slug != "abro" {
		t.Errorf("ByNumber(17) = %+v", p)
	}
}

func TestPromptLevelsAreMonotone(t *testing.T) {
	// higher levels add detail: strictly more comment text, same tail
	for _, p := range All() {
		l := p.Prompt(LevelLow)
		m := p.Prompt(LevelMedium)
		h := p.Prompt(LevelHigh)
		if !(len(l) < len(m) && len(m) < len(h)) {
			t.Errorf("problem %d prompt lengths not increasing: %d %d %d",
				p.Number, len(l), len(m), len(h))
		}
		for _, pr := range []string{l, m, h} {
			if !strings.Contains(pr, "module "+p.ModuleName) {
				t.Errorf("problem %d prompt missing module header", p.Number)
			}
		}
	}
}

func TestEveryPromptPlusRefBodyCompiles(t *testing.T) {
	for _, p := range All() {
		for _, lvl := range Levels {
			src := p.CompleteWith(lvl, p.RefBody)
			f, err := vlog.Parse(src)
			if err != nil {
				t.Errorf("problem %d level %s: parse: %v", p.Number, lvl, err)
				continue
			}
			if err := elab.CompileCheck(f); err != nil {
				t.Errorf("problem %d level %s: compile: %v", p.Number, lvl, err)
			}
		}
	}
}

func TestReferenceSolutionsPassTestbenches(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Slug, func(t *testing.T) {
			src := p.ReferenceSource() + "\n" + p.Testbench
			f, err := vlog.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			d, err := elab.Elaborate(f, "tb", elab.Options{})
			if err != nil {
				t.Fatalf("elaborate: %v", err)
			}
			res, err := sim.New(d, sim.Options{}).Run()
			if err != nil {
				t.Fatalf("simulate: %v\noutput:\n%s", err, res.Output)
			}
			if !PassVerdict(res.Output) {
				t.Fatalf("reference failed its own test bench:\n%s", res.Output)
			}
		})
	}
}

func TestTestbenchCatchesBrokenDUT(t *testing.T) {
	// sanity: an empty (all-x) implementation must FAIL every test bench
	for _, p := range All() {
		p := p
		t.Run(p.Slug, func(t *testing.T) {
			stub := p.Prompt(LevelLow) + "endmodule\n"
			src := stub + "\n" + p.Testbench
			f, err := vlog.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			d, err := elab.Elaborate(f, "tb", elab.Options{})
			if err != nil {
				t.Fatalf("elaborate: %v", err)
			}
			res, _ := sim.New(d, sim.Options{}).Run()
			if PassVerdict(res.Output) {
				t.Fatalf("stub DUT passed test bench:\n%s", res.Output)
			}
		})
	}
}

func TestPassVerdict(t *testing.T) {
	if !PassVerdict("x\nRESULT: PASS\n") {
		t.Error("pass not detected")
	}
	if PassVerdict("RESULT: FAIL\n") {
		t.Error("fail treated as pass")
	}
	if PassVerdict("nothing") {
		t.Error("no verdict treated as pass")
	}
	if PassVerdict("RESULT: PASS\nRESULT: FAIL") {
		t.Error("mixed verdict treated as pass")
	}
}
