// Package problems defines the paper's 17-problem Verilog benchmark
// (Table II): per problem a difficulty class, three prompt-detail levels
// (L/M/H, Section IV-B), a reference solution, and a self-checking Verilog
// test bench (Section IV-C). Test benches print per-check FAIL lines and a
// final "RESULT: PASS" / "RESULT: FAIL" verdict that the evaluation
// harness inspects.
package problems

import (
	"fmt"
	"strings"
)

// Difficulty is the problem difficulty class from Table II.
type Difficulty int

// Difficulty levels.
const (
	Basic Difficulty = iota
	Intermediate
	Advanced
)

func (d Difficulty) String() string {
	switch d {
	case Basic:
		return "Basic"
	case Intermediate:
		return "Intermediate"
	default:
		return "Advanced"
	}
}

// Level is the prompt description level from Section IV-B.
type Level int

// Prompt description levels: low, medium, high detail.
const (
	LevelLow Level = iota
	LevelMedium
	LevelHigh
)

func (l Level) String() string {
	switch l {
	case LevelLow:
		return "L"
	case LevelMedium:
		return "M"
	default:
		return "H"
	}
}

// Levels lists all prompt levels in order.
var Levels = []Level{LevelLow, LevelMedium, LevelHigh}

// Difficulties lists all difficulty classes in order.
var Difficulties = []Difficulty{Basic, Intermediate, Advanced}

// Problem is one benchmark problem.
type Problem struct {
	Number      int
	Slug        string
	ModuleName  string
	Difficulty  Difficulty
	Description string // Table II description

	promptL string
	promptM string
	promptH string

	// RefBody completes any of the three prompts into the reference
	// module (the prompts differ only in comment detail and all end at
	// the same structural point).
	RefBody string

	// Testbench is a self-checking bench whose top module is named "tb".
	Testbench string
}

// Prompt returns the prompt text at the given detail level.
func (p *Problem) Prompt(l Level) string {
	switch l {
	case LevelLow:
		return p.promptL
	case LevelMedium:
		return p.promptM
	default:
		return p.promptH
	}
}

// ReferenceSource returns the complete reference module.
func (p *Problem) ReferenceSource() string {
	return p.promptL + p.RefBody
}

// CompleteWith returns prompt(level) + completion, the full candidate
// source a model produces for this problem.
func (p *Problem) CompleteWith(l Level, completion string) string {
	return p.Prompt(l) + completion
}

// All returns the 17 problems in Table II order.
func All() []*Problem {
	out := make([]*Problem, 0, len(registry))
	for i := range registry {
		if registry[i] != nil {
			out = append(out, registry[i])
		}
	}
	return out
}

// ByNumber returns problem n (1-based), or nil.
func ByNumber(n int) *Problem {
	if n < 1 || n > len(registry) {
		return nil
	}
	return registry[n-1]
}

// ByDifficulty returns the problems in one difficulty class.
func ByDifficulty(d Difficulty) []*Problem {
	var out []*Problem
	for _, p := range All() {
		if p.Difficulty == d {
			out = append(out, p)
		}
	}
	return out
}

// PassVerdict scans test-bench output for the final verdict line.
func PassVerdict(output string) bool {
	return strings.Contains(output, "RESULT: PASS") && !strings.Contains(output, "RESULT: FAIL")
}

// registry holds the problems indexed by Number-1; init order across data
// files is arbitrary, so registration is slot-based.
var registry [17]*Problem

func register(p *Problem) {
	if p.Number < 1 || p.Number > len(registry) {
		panic(fmt.Sprintf("problems: %q has invalid number %d", p.Slug, p.Number))
	}
	if registry[p.Number-1] != nil {
		panic(fmt.Sprintf("problems: duplicate registration of number %d", p.Number))
	}
	registry[p.Number-1] = p
}
